// Ablation: DynaCut's three removal policies (§3.2.1/§3.2.2), applied to
// the same feature set on identical minikv instances.
//
//   kBlockFirstByte  1 byte per block   cheapest, reversible, leaves
//                                       gadgets inside the feature
//   kWipeBlocks      whole blocks       anti code-reuse, higher restore cost
//   kUnmapPages      page-granular      strongest (memory gone), only whole
//                                       pages; partial pages fall back to
//                                       wiping
//
// Reports: bytes patched / pages unmapped, rewrite time, gadget counts in
// the disabled feature's region, and functional + reversibility checks.
#include <cstdio>

#include "analysis/coverage.hpp"
#include "analysis/gadget.hpp"
#include "apps/minikv.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

core::FeatureSpec discover_set_feature(
    std::shared_ptr<const melf::Binary> bin) {
  bench::ServerPhases undesired = bench::profile_server(
      bin, apps::kMinikvPort, {"SET k v\n", "GET k\n", "PING\n"});
  bench::ServerPhases wanted = bench::profile_server(
      bin, apps::kMinikvPort,
      {"SETRANGE k 0 hello\n", "GET k\n", "GET miss\n", "PING\n", "DEL k\n"});
  core::FeatureSpec spec;
  spec.name = "SET";
  spec.blocks = analysis::feature_diff({undesired.serving_log},
                                       {wanted.serving_log}, "minikv")
                    .blocks();
  spec.redirect_module = "minikv";
  spec.redirect_offset = bin->find_symbol("dispatch_err")->value;
  return spec;
}

struct Row {
  const char* name;
  core::CustomizeReport rep;
  analysis::cutcheck::CheckReport check;  ///< pre-flight verifier findings
  uint64_t gadgets_in_feature = 0;
  bool blocked_ok = false;
  bool restored_ok = false;
};

uint64_t feature_gadgets(const os::Os& vos, int pid,
                         const std::vector<analysis::CovBlock>& blocks) {
  // Count gadget starts inside the disabled feature's own block ranges.
  const os::Process* p = vos.process(pid);
  const os::LoadedModule* m = p->module_named("minikv");
  analysis::GadgetStats all = analysis::scan_gadgets(p->mem);
  (void)all;
  uint64_t count = 0;
  for (const auto& b : blocks) {
    for (uint64_t a = m->base + b.offset; a < m->base + b.offset + b.size;
         ++a) {
      // Reuse the scanner's semantics through a 1-range scan: decode until
      // ret/trap. Cheap local reimplementation via scan over a copy is
      // overkill; instead probe with the public scanner on a cropped view
      // is not available, so count trap-free ret-reachable starts directly.
      uint8_t byte = 0;
      if (!p->mem.read(a, &byte, 1, kProtExec).ok) continue;
      if (byte == 0xCC) continue;
      ++count;  // executable, non-trapped byte inside the feature
    }
  }
  return count;
}

Row run_policy(const char* name, core::RemovalPolicy removal,
               core::TrapPolicy trap, const core::FeatureSpec& spec) {
  os::Os vos;
  int pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(apps::kMinikvPort); });
  auto conn = vos.connect(apps::kMinikvPort);
  bench::request(vos, conn, "PING\n");

  Row row;
  row.name = name;
  core::DynaCut dc(vos, pid);
  // The same verification apply() performs in enforce mode, kept visible so
  // the ablation also contrasts what the linter says about each policy.
  row.check = dc.preflight({spec, removal, trap});
  row.rep = dc.disable_feature({spec, removal, trap});
  row.gadgets_in_feature = feature_gadgets(vos, pid, spec.blocks);

  if (trap == core::TrapPolicy::kRedirect) {
    row.blocked_ok = bench::request(vos, conn, "SET k v\n") ==
                     "-ERR unknown or disabled command\n";
    dc.restore_feature(spec.name);
    row.restored_ok =
        bench::request(vos, conn, "SET k v\n") == "+OK\n" &&
        bench::request(vos, conn, "GET k\n") == "$v\n";
  } else {
    // Unmap cannot redirect (the code is gone, not trapped at a known
    // address): only reversibility is checked.
    dc.restore_feature(spec.name);
    row.blocked_ok = true;
    row.restored_ok =
        bench::request(vos, conn, "SET k v\n") == "+OK\n" &&
        bench::request(vos, conn, "GET k\n") == "$v\n";
  }
  return row;
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: removal policies (int3-first-byte vs full wipe vs page\n"
      "unmap) applied to minikv's SET feature");

  auto bin = apps::build_minikv();
  core::FeatureSpec spec = discover_set_feature(bin);
  std::printf("\nfeature: %zu blocks, %llu bytes total\n", spec.blocks.size(),
              (unsigned long long)[&] {
                uint64_t s = 0;
                for (const auto& b : spec.blocks) s += b.size;
                return s;
              }());

  std::vector<Row> rows;
  rows.push_back(run_policy("first-byte int3",
                            core::RemovalPolicy::kBlockFirstByte,
                            core::TrapPolicy::kRedirect, spec));
  rows.push_back(run_policy("wipe blocks", core::RemovalPolicy::kWipeBlocks,
                            core::TrapPolicy::kRedirect, spec));
  rows.push_back(run_policy("unmap pages", core::RemovalPolicy::kUnmapPages,
                            core::TrapPolicy::kTerminate, spec));

  std::printf("\n%-16s %10s %9s %10s %14s %9s %9s %6s %7s %8s\n", "policy",
              "blocks", "pages_rm", "rewrite_s", "live_feat_B", "blocked",
              "restore", "cc_err", "cc_warn", "gadget_d");
  for (const auto& r : rows) {
    std::printf("%-16s %10zu %9zu %10.3f %14llu %9s %9s %6zu %7zu %8lld\n",
                r.name, r.rep.edits.blocks_patched, r.rep.edits.pages_unmapped,
                r.rep.timing.total_seconds(),
                (unsigned long long)r.gadgets_in_feature,
                r.blocked_ok ? "yes" : "NO", r.restored_ok ? "yes" : "NO",
                r.check.errors(), r.check.warnings(),
                (long long)r.check.gadget_delta);
  }

  std::printf("\ncutcheck findings (unmap-pages policy):\n%s",
              rows.back().check.format().empty()
                  ? "  (none)\n"
                  : rows.back().check.format().c_str());
  std::printf(
      "\nReading: first-byte blocking leaves the feature's bytes executable\n"
      "(code-reuse material) but is cheapest; wiping zeroes that out at the\n"
      "same block count; unmapping additionally drops whole pages. All\n"
      "three reverse cleanly — the paper's security/cost trade-off.\n");
  return 0;
}
