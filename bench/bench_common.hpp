// Shared harness code for the figure/table benches: phase-split profiling
// runs (the drcov + nudge workflow of paper §3.1), bounded OS driving, and
// table formatting.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "os/os.hpp"
#include "trace/trace.hpp"

namespace dynacut::bench {

/// Runs `vos` until `done` holds or the budget is spent. Returns done().
template <typename Pred>
bool run_until(os::Os& vos, Pred done, int rounds = 300,
               uint64_t instr_per_round = 200'000) {
  for (int i = 0; i < rounds && !done(); ++i) vos.run(instr_per_round);
  return done();
}

/// Waits for a reply and drains it.
inline std::string request(os::Os& vos, os::HostConn& conn,
                           const std::string& line) {
  conn.send(line);
  run_until(vos, [&] { return conn.pending() > 0; });
  return conn.recv_all();
}

/// Phase-split coverage of one server run: boot (init phase, dumped at the
/// ready/nudge point), then serve `requests` (serving phase).
struct ServerPhases {
  std::shared_ptr<const melf::Binary> bin;
  trace::TraceLog init_log;
  trace::TraceLog serving_log;
  size_t image_pages = 0;  ///< populated pages at the post-init point

  analysis::CoverageGraph init_cov(const std::string& module) const {
    return analysis::CoverageGraph::from_log(init_log).only_module(module);
  }
  analysis::CoverageGraph serving_cov(const std::string& module) const {
    return analysis::CoverageGraph::from_log(serving_log).only_module(module);
  }
};

/// Boots `bin` in a fresh OS under the tracer, nudges at listener-ready,
/// replays `requests`, dumps the serving trace.
inline ServerPhases profile_server(std::shared_ptr<const melf::Binary> bin,
                                   uint16_t port,
                                   const std::vector<std::string>& requests) {
  ServerPhases out;
  out.bin = bin;
  os::Os vos;
  trace::Tracer tracer(vos);
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  out.image_pages = vos.process(pid)->mem.populated_pages().size();
  out.init_log = tracer.dump_and_reset(pid);  // the nudge
  auto conn = vos.connect(port);
  for (const auto& r : requests) request(vos, conn, r);
  // For multi-process servers the worker handles requests; merge worker
  // coverage into the serving log of the app module by re-dumping every
  // group member and keeping the busiest.
  trace::TraceLog best = tracer.dump(pid);
  for (int gp : vos.process_group(pid)) {
    trace::TraceLog log = tracer.dump(gp);
    if (log.blocks.size() > best.blocks.size()) best = std::move(log);
  }
  out.serving_log = std::move(best);
  return out;
}

/// Phase-split coverage of one specgen benchmark (nudge syscall marks the
/// init/serving boundary).
inline ServerPhases profile_spec(std::shared_ptr<const melf::Binary> bin) {
  ServerPhases out;
  out.bin = bin;
  os::Os vos;
  trace::Tracer tracer(vos);
  int pid = vos.spawn(bin, {apps::build_libc()});
  // Dump-and-reset coverage at the exact nudge instant (the drcov nudge).
  vos.set_nudge_hook([&](const os::Process& p, uint64_t) {
    out.image_pages = p.mem.populated_pages().size();
    out.init_log = tracer.dump_and_reset(p.pid);
  });
  run_until(vos, [&] { return vos.all_exited(); }, 5000);
  out.serving_log = tracer.dump(pid);
  return out;
}

inline double mb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}
inline double kb(uint64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

inline uint64_t text_bytes(const melf::Binary& bin) {
  uint64_t sum = 0;
  for (const auto& sec : bin.sections) {
    if (sec.kind == melf::SectionKind::kText ||
        sec.kind == melf::SectionKind::kPlt) {
      sum += sec.size;
    }
  }
  return sum;
}

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace dynacut::bench
