// Figure 10 reproduction: percentage of live basic blocks over Lighttpd's
// (minihttpd's) lifetime — DynaCut's timeline-aware debloating vs the
// static RAZOR and CHISEL baselines.
//
// Timeline (as in the paper): boot with unwanted features disabled ->
// finish initialization (init code removed) -> serve read-only -> a short
// administrator window re-enables HTTP PUT/DELETE -> disabled again ->
// program terminates. "Live" means: the block's page is mapped and its
// first byte is not a trap — measured by scanning the worker's real memory
// each slot.
#include <cstdio>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/minihttpd.hpp"
#include "baselines/chisel.hpp"
#include "baselines/oracle.hpp"
#include "baselines/razor.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"
#include "obs/bus.hpp"
#include "obs/probes.hpp"
#include "obs/timeline.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

}  // namespace

int main() {
  bench::banner(
      "Figure 10: live basic blocks over time — DynaCut vs RAZOR vs CHISEL\n"
      "(Lighttpd scenario: read-only serving with a brief PUT/DELETE\n"
      "administration window)");

  auto bin = apps::build_minihttpd();
  const std::string module = "minihttpd";
  analysis::StaticCfg cfg = analysis::recover_cfg(*bin);

  // --- offline profiling -------------------------------------------------
  const std::vector<std::string> readonly_reqs = {
      "GET /index\n", "HEAD /index\n", "GET /miss\n", "HEAD /miss\n",
      "PATCH /x\n"};
  const std::vector<std::string> admin_reqs = {
      "GET /index\n", "PUT /f x\n", "GET /f\n", "DELETE /f\n", "PATCH /x\n"};
  bench::ServerPhases readonly_run =
      bench::profile_server(bin, apps::kMinihttpdPort, readonly_reqs);
  bench::ServerPhases admin_run =
      bench::profile_server(bin, apps::kMinihttpdPort, admin_reqs);

  // Init-only must be computed against every serving-phase trace (read-only
  // AND admin window): blocks shared between init and a re-enableable
  // feature (e.g. fs_put, used once by init_fs and again by PUT) must not
  // be classified as init-only, or the later feature restore would bring
  // back a wiped block.
  analysis::CoverageGraph serving_all =
      analysis::CoverageGraph::from_log(readonly_run.serving_log)
          .only_module(module);
  serving_all.merge(analysis::CoverageGraph::from_log(admin_run.serving_log)
                        .only_module(module));
  analysis::CoverageGraph init_only =
      analysis::CoverageGraph::from_log(readonly_run.init_log)
          .only_module(module)
          .diff(serving_all);
  core::FeatureSpec putdel;
  putdel.name = "PUT/DELETE";
  putdel.blocks = analysis::feature_diff({admin_run.serving_log},
                                         {readonly_run.serving_log}, module)
                      .blocks();
  putdel.redirect_module = module;
  putdel.redirect_offset = bin->find_symbol("http_403")->value;

  // --- static baselines ---------------------------------------------------
  baselines::RazorResult razor = baselines::razor_debloat(
      *bin, module, {readonly_run.init_log, readonly_run.serving_log,
                     admin_run.init_log, admin_run.serving_log},
      4);
  // CHISEL minimizes to exactly the declared property set — here the
  // read-only serving spec — so it cuts deeper than RAZOR's keep-what-ran-
  // plus-heuristics (matching the paper's 66% vs 53.1% removal gap).
  auto oracle = baselines::make_server_oracle(
      bin, {apps::build_libc()}, apps::kMinihttpdPort, module,
      {{"GET /index\n", "200 welcome\n"},
       {"GET /miss\n", "404\n"},
       {"HEAD /index\n", "200\n"},
       {"PATCH /x\n", "403 Forbidden\n"}});
  baselines::ChiselResult chisel =
      baselines::chisel_debloat(*bin, module, razor.kept, oracle, 8);
  double razor_pct = 100.0 * razor.kept_fraction();
  double chisel_pct = 100.0 * chisel.kept_fraction();

  // Everything outside RAZOR's kept set is "unwanted" for the read-only
  // scenario; DynaCut disables it at launch (and can bring it back).
  core::FeatureSpec unwanted;
  unwanted.name = "never-needed";
  unwanted.blocks = razor.removed.blocks();

  // --- the live DynaCut timeline -------------------------------------------
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});

  // The live-BB metric is pulled through the obs timeline recorder: the
  // standard probe scans the worker's real memory, and the disabled-feature
  // set rides on each sample straight from committed bus events.
  obs::EventBus bus;
  obs::TimelineRecorder recorder(bus);
  recorder.set_live_probe(obs::make_live_bb_probe(vos, pid, module, cfg));
  vos.set_event_bus(&bus);

  core::DynaCut dc(vos, pid);
  dc.set_observer(&bus);
  dc.disable_feature({.feature = unwanted,
                      .removal = core::RemovalPolicy::kBlockFirstByte,
                      .trap = core::TrapPolicy::kTerminate,
                      .label = "never-needed"});  // launch-time trim
  run_until(vos, [&] { return vos.has_listener(apps::kMinihttpdPort); });
  auto conn = vos.connect(apps::kMinihttpdPort);

  std::vector<double> dyna(13, 0.0);
  std::vector<std::string> events(13);

  dyna[0] = dyna[1] = recorder.sample().live_pct;
  events[1] = "boot + launch trim";
  bench::request(vos, conn, "GET /index\n");

  dc.remove_init_code(init_only, core::RemovalPolicy::kWipeBlocks);
  dc.disable_feature({.feature = putdel,
                      .removal = core::RemovalPolicy::kBlockFirstByte,
                      .trap = core::TrapPolicy::kRedirect});
  events[2] = "finish initialization (init code removed, PUT/DELETE off)";
  for (int t = 2; t < 8; ++t) {
    bench::request(vos, conn, "GET /index\n");
    dyna[t] = recorder.sample().live_pct;
  }
  // A disabled PUT answers 403 through the redirect handler.
  std::string blocked = bench::request(vos, conn, "PUT /f x\n");

  dc.restore_feature("PUT/DELETE");
  events[8] = "enable HTTP PUT/DELETE (admin window)";
  std::string put_ok = bench::request(vos, conn, "PUT /f data\n");
  dyna[8] = recorder.sample().live_pct;

  dc.disable_feature({.feature = putdel,
                      .removal = core::RemovalPolicy::kBlockFirstByte,
                      .trap = core::TrapPolicy::kRedirect});
  events[9] = "PUT/DELETE disabled again";
  for (int t = 9; t < 12; ++t) {
    bench::request(vos, conn, "GET /index\n");
    dyna[t] = recorder.sample().live_pct;
  }
  vos.kill(pid);
  dyna[12] = recorder.sample().live_pct;  // exited process scores 0
  events[12] = "terminate program";

  std::printf("\n%4s %10s %10s %10s   %s\n", "t", "DynaCut%", "RAZOR%",
              "CHISEL%", "event");
  double max_live = 0;
  for (int t = 0; t < 13; ++t) {
    double razor_line = t < 12 ? razor_pct : 0.0;
    double chisel_line = t < 12 ? chisel_pct : 0.0;
    if (t >= 2 && t < 12) max_live = std::max(max_live, dyna[t]);
    std::printf("%4d %9.1f%% %9.1f%% %9.1f%%   %s\n", t, dyna[t], razor_line,
                chisel_line, events[t].c_str());
  }
  std::printf(
      "\nfunctional: blocked PUT -> %s admin-window PUT -> %s",
      blocked.c_str(), put_ok.c_str());
  std::printf(
      "post-init steady-state live blocks: %.1f%% (paper: <17%%); RAZOR "
      "%.1f%% / CHISEL %.1f%% kept forever\n",
      max_live, razor_pct, chisel_pct);
  std::printf(
      "Shape checks: DynaCut stays below both static baselines in every\n"
      "phase after initialization and adapts per phase; the baselines are\n"
      "flat lines — as in the paper.\n");
  std::printf(
      "obs timeline: %zu toggles, %zu live-BB samples recorded from bus "
      "events\n",
      recorder.toggles().size(), recorder.samples().size());
  return 0;
}
