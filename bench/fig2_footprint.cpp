// Figure 2 reproduction: visualization of the process memory footprint of
// executed, unused and initialization-only basic blocks for 605.mcf_s and
// Lighttpd (minihttpd).
//
// Every static basic block of the main module becomes one cell, in address
// order:  '.' never executed (gray)   '#' executed while serving (blue)
//         'I' executed during init only (red)
#include <cstdio>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/minihttpd.hpp"
#include "apps/specgen.hpp"
#include "bench_common.hpp"

namespace {

using namespace dynacut;

void render(const std::string& label, const bench::ServerPhases& phases,
            const std::string& module) {
  analysis::StaticCfg cfg = analysis::recover_cfg(*phases.bin);
  analysis::CoverageGraph init = phases.init_cov(module);
  analysis::CoverageGraph serving = phases.serving_cov(module);

  // A static block is covered by a phase if any traced block overlaps it.
  auto covered_by = [&](const analysis::CoverageGraph& cov, uint64_t off,
                        uint32_t size) {
    for (const auto& b : cov.blocks()) {
      if (b.offset < off + size && off < b.offset + b.size) return true;
    }
    return false;
  };

  size_t unused = 0, init_only = 0, executed = 0;
  std::string map;
  for (const auto& [off, blk] : cfg.blocks) {
    bool in_init = covered_by(init, off, blk.size);
    bool in_serving = covered_by(serving, off, blk.size);
    if (in_serving) {
      map += '#';
      ++executed;
    } else if (in_init) {
      map += 'I';
      ++init_only;
    } else {
      map += '.';
      ++unused;
    }
  }

  size_t total = cfg.block_count();
  std::printf("\n--- %s: %zu static blocks ---\n", label.c_str(), total);
  for (size_t i = 0; i < map.size(); i += 96) {
    std::printf("%s\n", map.substr(i, 96).c_str());
  }
  std::printf(
      "unused (gray) %zu (%.1f%%) | serving (blue) %zu (%.1f%%) | "
      "init-only (red) %zu (%.1f%%)\n",
      unused, 100.0 * unused / total, executed, 100.0 * executed / total,
      init_only, 100.0 * init_only / total);
}

}  // namespace

int main() {
  bench::banner(
      "Figure 2: basic-block liveness maps — most blocks are never\n"
      "executed (gray), and a visible band of executed blocks is used only\n"
      "during initialization (red)");

  render("605.mcf_s", bench::profile_spec(apps::build_spec(
                          apps::spec_suite()[1])),
         "605.mcf_s");
  render("Lighttpd (minihttpd)",
         bench::profile_server(
             apps::build_minihttpd(), apps::kMinihttpdPort,
             {"GET /index\n", "HEAD /index\n", "GET /miss\n", "PUT /f x\n",
              "GET /f\n", "DELETE /f\n", "PATCH /x\n"}),
         "minihttpd");

  std::printf(
      "\nShape check: a significant share of blocks is gray (static\n"
      "debloating opportunity) and the red init-only band exists on top of\n"
      "it (DynaCut's additional dynamic opportunity) — as in the paper.\n");
  return 0;
}
