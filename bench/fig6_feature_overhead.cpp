// Figure 6 reproduction: DynaCut's overhead for dynamically customizing
// code features — per-application breakdown into checkpoint, int3 code
// disable, signal-handler library insertion, and restore.
//
// Workload (as in the paper): disable the WebDAV PUT+DELETE methods of the
// two web servers and the SET command of the key-value store, with the
// fault handler redirecting blocked requests to the app's own error path.
#include <cstdio>

#include "analysis/coverage.hpp"
#include "apps/minihttpd.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

struct Row {
  std::string label;
  double image_mb = 0;
  core::CustomizeReport rep;
  /// The warm re-enable toggle: rides the per-pid baseline, so its dump is
  /// dirty-only and its restore in-place.
  core::CustomizeReport warm;
  double paper_total_s = 0;
};

Row customize(const std::string& label,
              std::shared_ptr<const melf::Binary> bin, uint16_t port,
              const std::string& module,
              const std::vector<std::string>& undesired_reqs,
              const std::vector<std::string>& wanted_reqs,
              const std::string& redirect_symbol, double paper_total_s,
              const std::string& check_blocked_req,
              const std::string& expect_blocked_reply) {
  // Offline profiling runs (paper §3.1): one trace exercising the unwanted
  // feature, one exercising only wanted features; tracediff their coverage.
  bench::ServerPhases undesired = bench::profile_server(bin, port,
                                                        undesired_reqs);
  bench::ServerPhases wanted = bench::profile_server(bin, port, wanted_reqs);
  core::FeatureSpec spec;
  spec.name = "unwanted";
  spec.blocks = analysis::feature_diff({undesired.serving_log},
                                       {wanted.serving_log}, module)
                    .blocks();
  spec.redirect_module = module;
  spec.redirect_offset = bin->find_symbol(redirect_symbol)->value;

  // Production instance.
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  auto conn = vos.connect(port);
  bench::request(vos, conn, wanted_reqs[0]);  // warm the serving path

  core::DynaCut dc(vos, pid);
  Row row;
  row.label = label;
  row.rep = dc.disable_feature({spec, core::RemovalPolicy::kBlockFirstByte,
                               core::TrapPolicy::kRedirect});
  row.image_mb = bench::mb(row.rep.edits.image_pages * kPageSize);
  row.paper_total_s = paper_total_s;

  // Functional check: the blocked feature now answers via the error path.
  std::string got = bench::request(vos, conn, check_blocked_req);
  if (got != expect_blocked_reply) {
    std::printf("!! %s: blocked request answered '%s' (expected '%s')\n",
                label.c_str(), got.c_str(), expect_blocked_reply.c_str());
  }

  // Warm toggle: the requests above dirtied the serving path's working
  // set; everything else of the image rides the baseline from the first
  // customization.
  row.warm = dc.restore_feature("unwanted");
  return row;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 6: overhead of dynamic feature customization\n"
      "(disable web PUT+DELETE / kv SET; redirect to app error path)");

  std::vector<Row> rows;
  rows.push_back(customize(
      "Lighttpd (minihttpd)", apps::build_minihttpd(), apps::kMinihttpdPort,
      "minihttpd", {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
      {"GET /index\n", "HEAD /index\n"}, "http_403", 0.274, "PUT /b y\n",
      "403 Forbidden\n"));
  rows.push_back(customize(
      "Nginx (miniweb)", apps::build_miniweb(), apps::kMiniwebPort,
      "miniweb", {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
      {"GET /index\n", "HEAD /index\n"}, "dav_403", 0.560, "PUT /b y\n",
      "403 Forbidden\n"));
  rows.push_back(customize(
      "Redis (minikv)", apps::build_minikv(), apps::kMinikvPort, "minikv",
      {"SET k v\n", "GET k\n", "PING\n"}, {"GET k\n", "PING\n", "DEL k\n"},
      "dispatch_err", 0.290, "SET k v2\n",
      "-ERR unknown or disabled command\n"));

  std::printf(
      "\n%-22s %9s %7s %12s %11s %9s %9s %8s %8s %8s %12s\n", "application",
      "image_MB", "procs", "insert_sig_s", "int3_s", "ckpt_s", "restore_s",
      "stage_s", "commit_s", "total_s", "paper_total_s");
  for (const auto& r : rows) {
    const auto& t = r.rep.timing;
    // Two-phase split: stage = everything done on frozen images
    // (checkpoint + int3 patching + library insertion); commit = restoring
    // the rewritten images. stage_s + commit_s == total_s — the
    // transactional protocol reorders the work but adds no extra cost.
    double stage_s =
        (t.checkpoint_ns + t.code_update_ns + t.inject_ns) / 1e9;
    double commit_s = t.restore_ns / 1e9;
    std::printf(
        "%-22s %9.2f %7zu %12.3f %11.3f %9.3f %9.3f %8.3f %8.3f %8.3f "
        "%12.3f\n",
        r.label.c_str(), r.image_mb, r.rep.edits.processes,
        t.inject_ns / 1e9, t.code_update_ns / 1e9, t.checkpoint_ns / 1e9,
        t.restore_ns / 1e9, stage_s, commit_s, t.total_seconds(),
        r.paper_total_s);
  }
  std::printf(
      "\nShape checks: totals sub-second for all three apps; Nginx costs the\n"
      "most (two processes to snapshot); per-app cost dominated by\n"
      "checkpoint+restore, int3 patching nearly constant — as in the paper.\n"
      "stage_s+commit_s equals total_s: staged commit adds no overhead.\n");

  // Freeze-window breakdown of the warm (incremental) re-enable toggle:
  // dirty-only dump + in-place restore against the cold toggle above.
  std::printf(
      "\n%-22s %8s %8s %9s %8s %8s %9s %9s %8s\n", "warm re-enable",
      "dump_s", "patch_s", "restore_s", "total_s", "pg_dump", "pg_share",
      "pg_restore", "cold_x");
  for (const auto& r : rows) {
    const auto& t = r.warm.timing;
    double cold_x = static_cast<double>(r.rep.timing.checkpoint_ns +
                                        r.rep.timing.restore_ns) /
                    static_cast<double>(t.checkpoint_ns + t.restore_ns);
    std::printf("%-22s %8.3f %8.3f %9.3f %8.3f %8llu %8llu %9llu %7.1fx\n",
                r.label.c_str(), t.checkpoint_ns / 1e9,
                t.code_update_ns / 1e9, t.restore_ns / 1e9,
                t.total_seconds(),
                static_cast<unsigned long long>(r.warm.edits.pages_dumped),
                static_cast<unsigned long long>(r.warm.edits.pages_shared),
                static_cast<unsigned long long>(r.warm.edits.pages_restored),
                cold_x);
  }
  std::printf(
      "\nShape check: the warm toggle's freeze window (dump+restore) is a\n"
      "small multiple of the dirty working set, not of the image — the\n"
      "incremental checkpoint path.\n");
  return 0;
}
