// Figure 6 reproduction: DynaCut's overhead for dynamically customizing
// code features — per-application breakdown into checkpoint, int3 code
// disable, signal-handler library insertion, and restore.
//
// Workload (as in the paper): disable the WebDAV PUT+DELETE methods of the
// two web servers and the SET command of the key-value store, with the
// fault handler redirecting blocked requests to the app's own error path.
//
// A second phase measures the steady-state price of a denied request under
// both entry-denial mechanisms: trap (int3 + signal round-trip per probe)
// vs stub (callsite redirected into the error path, one branch). Gates —
// written to BENCH_cut.json (--out=PATH) — require the stub's per-request
// overhead to sit within noise of the enabled baseline and at least 5x
// below the trap's, with zero SIGTRAPs delivered on the stub path.
#include <cstdio>
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <set>
#include <span>
#include <sstream>
#include <string>

#include "analysis/coverage.hpp"
#include "apps/minihttpd.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "bench_common.hpp"
#include "apps/libc.hpp"
#include "core/dynacut.hpp"
#include "isa/isa.hpp"
#include "melf/builder.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

struct Row {
  std::string label;
  double image_mb = 0;
  core::CustomizeReport rep;
  /// The warm re-enable toggle: rides the per-pid baseline, so its dump is
  /// dirty-only and its restore in-place.
  core::CustomizeReport warm;
  double paper_total_s = 0;
};

Row customize(const std::string& label,
              std::shared_ptr<const melf::Binary> bin, uint16_t port,
              const std::string& module,
              const std::vector<std::string>& undesired_reqs,
              const std::vector<std::string>& wanted_reqs,
              const std::string& redirect_symbol, double paper_total_s,
              const std::string& check_blocked_req,
              const std::string& expect_blocked_reply) {
  // Offline profiling runs (paper §3.1): one trace exercising the unwanted
  // feature, one exercising only wanted features; tracediff their coverage.
  bench::ServerPhases undesired = bench::profile_server(bin, port,
                                                        undesired_reqs);
  bench::ServerPhases wanted = bench::profile_server(bin, port, wanted_reqs);
  core::FeatureSpec spec;
  spec.name = "unwanted";
  spec.blocks = analysis::feature_diff({undesired.serving_log},
                                       {wanted.serving_log}, module)
                    .blocks();
  spec.redirect_module = module;
  spec.redirect_offset = bin->find_symbol(redirect_symbol)->value;

  // Production instance.
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  auto conn = vos.connect(port);
  bench::request(vos, conn, wanted_reqs[0]);  // warm the serving path

  core::DynaCut dc(vos, pid);
  Row row;
  row.label = label;
  row.rep = dc.disable_feature({spec, core::RemovalPolicy::kBlockFirstByte,
                               core::TrapPolicy::kRedirect});
  row.image_mb = bench::mb(row.rep.edits.image_pages * kPageSize);
  row.paper_total_s = paper_total_s;

  // Functional check: the blocked feature now answers via the error path.
  std::string got = bench::request(vos, conn, check_blocked_req);
  if (got != expect_blocked_reply) {
    std::printf("!! %s: blocked request answered '%s' (expected '%s')\n",
                label.c_str(), got.c_str(), expect_blocked_reply.c_str());
  }

  // Warm toggle: the requests above dirtied the serving path's working
  // set; everything else of the image rides the baseline from the first
  // customization.
  row.warm = dc.restore_feature("unwanted");
  return row;
}

// --- steady-state mechanism comparison -----------------------------------

struct SteadyRow {
  std::string label;
  double enabled = 0;  ///< virtual ns per natively-denied request
  double trap = 0;     ///< per denied request, trap mechanism
  double stub = 0;     ///< per denied request, stub mechanism
  uint64_t trap_signals = 0;
  uint64_t stub_signals = 0;
  size_t callsites_stubbed = 0;
};

int g_failures = 0;

void gate(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("!! GATE FAILED: %s\n", what.c_str());
    ++g_failures;
  }
}

/// Lets the server group drain back to its accept/recv loop so the cut
/// never freezes a process mid-feature (where the int3 net would fire
/// once on resume regardless of mechanism).
void park(os::Os& vos) { vos.run(400'000); }

/// The strict-gate microprobe: a spin loop calling a two-instruction
/// feature with a same-function deny path, one probe per iteration. The
/// enabled baseline and the denied paths differ only by mechanism, so the
/// columns isolate the signal round-trip vs the one-branch stub detour.
SteadyRow micro_steady() {
  namespace sys = os::sys;
  melf::ProgramBuilder b("probe");
  b.func("feat").mov_ri(0, 7).ret();
  auto& m = b.func("main");
  // The deny arm rejoins at "after", and a never-taken compare keeps it
  // statically reachable so CC003 accepts it as a redirect target.
  m.label("spin")
      .mark("arm")
      .call("feat")
      .label("after")
      .mov_sym(3, "iters")
      .load(4, 3, 0)
      .add_ri(4, 1)
      .store(3, 0, 4)
      .cmp_ri(4, -1)
      .je("deny")
      .mov_ri(1, 50)
      .sys(sys::kNanosleep)
      .jmp("spin")
      .label("deny")
      .mark("err_path")
      .jmp("after");
  b.bss("iters", 8);
  b.set_entry("main");
  auto bin = std::make_shared<melf::Binary>(b.link());

  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  uint64_t iters_addr = kAppBase + bin->find_symbol("iters")->value;
  auto iters = [&] {
    auto bytes = vos.process(pid)->mem.peek_bytes(iters_addr, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[i];
    return v;
  };

  const melf::Symbol* feat = bin->find_symbol("feat");
  core::FeatureSpec spec;
  spec.name = "unwanted";
  spec.blocks = {
      analysis::CovBlock{"probe", feat->value,
                         static_cast<uint32_t>(feat->size)},
      analysis::CovBlock{"probe", bin->find_symbol("arm")->value, 5}};
  spec.redirect_module = "probe";
  spec.redirect_offset = bin->find_symbol("err_path")->value;

  constexpr uint64_t kIters = 256;
  auto measure = [&](double* per_iter, uint64_t* signals) {
    uint64_t c0 = iters();
    uint64_t t0 = vos.now();
    uint64_t s0 = vos.total_sigtraps();
    while (iters() < c0 + kIters) vos.run(2000);
    *per_iter = static_cast<double>(vos.now() - t0) /
                static_cast<double>(iters() - c0);
    *signals = vos.total_sigtraps() - s0;
  };

  SteadyRow row;
  row.label = "microprobe";
  vos.run(20'000);  // warm
  uint64_t ignore_sig = 0;
  measure(&row.enabled, &ignore_sig);

  core::DynaCut dc(vos, pid);
  park(vos);
  dc.disable_feature({.feature = spec,
                      .removal = core::RemovalPolicy::kBlockFirstByte,
                      .trap = core::TrapPolicy::kRedirect,
                      .mechanism = core::CutMechanism::kTrap});
  measure(&row.trap, &row.trap_signals);
  dc.restore_feature("unwanted");

  park(vos);
  core::CustomizeReport rep =
      dc.disable_feature({.feature = spec,
                          .removal = core::RemovalPolicy::kBlockFirstByte,
                          .trap = core::TrapPolicy::kRedirect,
                          .mechanism = core::CutMechanism::kStub});
  row.callsites_stubbed = rep.edits.callsites_stubbed;
  measure(&row.stub, &row.stub_signals);

  gate(row.callsites_stubbed >= 1, "microprobe: no callsite was stubbed");
  gate(row.trap_signals >= kIters,
       "microprobe: trap mechanism delivered fewer SIGTRAPs than probes");
  gate(row.stub_signals == 0,
       "microprobe: stub mechanism still delivered SIGTRAPs");
  double trap_over = row.trap - row.enabled;
  double stub_over = row.stub - row.enabled;
  gate(stub_over <= 0.10 * row.enabled,
       "microprobe: stub-denied probe not within 10% of the enabled "
       "baseline");
  gate(trap_over >= 5.0 * std::max(stub_over, 2.0),
       "microprobe: trap round-trip not >=5x the stub overhead");
  return row;
}

SteadyRow steady_state(const std::string& label,
                       std::shared_ptr<const melf::Binary> bin, uint16_t port,
                       const std::string& module,
                       const std::vector<std::string>& undesired_reqs,
                       const std::vector<std::string>& wanted_reqs,
                       const std::string& redirect_symbol,
                       const std::vector<std::string>& handler_funcs,
                       const std::string& probe_req,
                       const std::string& baseline_req,
                       const std::string& expect_blocked_reply) {
  bench::ServerPhases undesired = bench::profile_server(bin, port,
                                                        undesired_reqs);
  bench::ServerPhases wanted = bench::profile_server(bin, port, wanted_reqs);
  std::vector<analysis::CovBlock> diff =
      analysis::feature_diff({undesired.serving_log}, {wanted.serving_log},
                             module)
          .blocks();

  // One cut plan, two mechanisms. The plan cuts the handler functions
  // plus the dispatcher's `call handler` arm blocks; the method-compare
  // blocks stay live, so a denied probe walks the same dispatcher path as
  // the natively-denied baseline before hitting the mechanism. Under trap
  // the arm callsite's int3 costs a signal round-trip per probe; under
  // stub the callsite is retargeted at the error path (skip_trap — the
  // redirect IS the denial) and costs one branch.
  std::set<uint64_t> handler_entries;
  auto in_handler = [&](const analysis::CovBlock& b) {
    for (const std::string& fn : handler_funcs) {
      const melf::Symbol* s = bin->find_symbol(fn);
      if (b.offset >= s->value && b.offset + b.size <= s->value + s->size) {
        return true;
      }
    }
    return false;
  };
  for (const std::string& fn : handler_funcs) {
    handler_entries.insert(bin->find_symbol(fn)->value);
  }
  auto is_arm_call = [&](const analysis::CovBlock& b) {
    const melf::Section* text = bin->section(melf::SectionKind::kText);
    if (b.offset < text->offset ||
        b.offset + isa::kMaxInstrLength > text->offset + text->size) {
      return false;
    }
    auto ins = isa::try_decode(std::span<const uint8_t>(
        text->bytes.data() + (b.offset - text->offset), isa::kMaxInstrLength));
    return ins && ins->op == isa::Op::kCall &&
           handler_entries.count(ins->target(b.offset)) != 0;
  };
  core::FeatureSpec spec;
  spec.name = "unwanted";
  spec.redirect_module = module;
  spec.redirect_offset = bin->find_symbol(redirect_symbol)->value;
  for (const analysis::CovBlock& b : diff) {
    if (in_handler(b) || is_arm_call(b)) spec.blocks.push_back(b);
  }

  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  auto conn = vos.connect(port);
  bench::request(vos, conn, wanted_reqs[0]);
  bench::request(vos, conn, probe_req);     // warm the feature path
  bench::request(vos, conn, baseline_req);  // warm the native error path

  constexpr int kReqs = 32;
  auto measure = [&](const std::string& send, const std::string& expect_reply,
                     double* per_req, uint64_t* signals) {
    uint64_t t0 = vos.now();
    uint64_t s0 = vos.total_sigtraps();
    for (int i = 0; i < kReqs; ++i) {
      // Fine-grained driving: a coarse run() budget would quantize the
      // per-request delta (the multi-process server keeps a poller
      // runnable, so run() burns its whole budget before returning).
      conn.send(send);
      run_until(vos, [&] { return conn.pending() > 0; }, 20000, 250);
      std::string got = conn.recv_all();
      if (got != expect_reply) {
        gate(false, label + ": probe answered '" + got + "' (expected '" +
                        expect_reply + "')");
        break;
      }
    }
    *per_req = static_cast<double>(vos.now() - t0) / kReqs;
    *signals = vos.total_sigtraps() - s0;
  };

  SteadyRow row;
  row.label = label;
  // Baseline: a request the app denies natively — the same error-path
  // reply a cut probe produces, with no mechanism in the way.
  uint64_t ignore_sig = 0;
  measure(baseline_req, expect_blocked_reply, &row.enabled, &ignore_sig);

  core::DynaCut dc(vos, pid);
  park(vos);
  dc.disable_feature({.feature = spec,
                      .removal = core::RemovalPolicy::kBlockFirstByte,
                      .trap = core::TrapPolicy::kRedirect,
                      .expand_to_slice = true,
                      .mechanism = core::CutMechanism::kTrap});
  measure(probe_req, expect_blocked_reply, &row.trap, &row.trap_signals);
  dc.restore_feature("unwanted");

  park(vos);
  core::CustomizeReport rep =
      dc.disable_feature({.feature = spec,
                          .removal = core::RemovalPolicy::kBlockFirstByte,
                          .trap = core::TrapPolicy::kRedirect,
                          .expand_to_slice = true,
                          .mechanism = core::CutMechanism::kStub});
  row.callsites_stubbed = rep.edits.callsites_stubbed;
  measure(probe_req, expect_blocked_reply, &row.stub, &row.stub_signals);

  gate(row.callsites_stubbed >= 1, label + ": no callsite was stubbed");
  gate(row.trap_signals >= kReqs,
       label + ": trap mechanism delivered fewer SIGTRAPs than probes");
  gate(row.stub_signals == 0,
       label + ": stub mechanism still delivered SIGTRAPs");
  // The server columns are informational: the native-deny baseline walks
  // a slightly different strcmp path than the probe and the multi-process
  // server's sleep-pollers ride the clock, so the strict 5x gate lives on
  // the microprobe row where the three paths are identical up to the
  // mechanism.
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_cut.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bench::banner(
      "Figure 6: overhead of dynamic feature customization\n"
      "(disable web PUT+DELETE / kv SET; redirect to app error path)");

  std::vector<Row> rows;
  rows.push_back(customize(
      "Lighttpd (minihttpd)", apps::build_minihttpd(), apps::kMinihttpdPort,
      "minihttpd", {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
      {"GET /index\n", "HEAD /index\n"}, "http_403", 0.274, "PUT /b y\n",
      "403 Forbidden\n"));
  rows.push_back(customize(
      "Nginx (miniweb)", apps::build_miniweb(), apps::kMiniwebPort,
      "miniweb", {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
      {"GET /index\n", "HEAD /index\n"}, "dav_403", 0.560, "PUT /b y\n",
      "403 Forbidden\n"));
  rows.push_back(customize(
      "Redis (minikv)", apps::build_minikv(), apps::kMinikvPort, "minikv",
      {"SET k v\n", "GET k\n", "PING\n"}, {"GET k\n", "PING\n", "DEL k\n"},
      "dispatch_err", 0.290, "SET k v2\n",
      "-ERR unknown or disabled command\n"));

  std::printf(
      "\n%-22s %9s %7s %12s %11s %9s %9s %8s %8s %8s %12s\n", "application",
      "image_MB", "procs", "insert_sig_s", "int3_s", "ckpt_s", "restore_s",
      "stage_s", "commit_s", "total_s", "paper_total_s");
  for (const auto& r : rows) {
    const auto& t = r.rep.timing;
    // Two-phase split: stage = everything done on frozen images
    // (checkpoint + int3 patching + library insertion); commit = restoring
    // the rewritten images. stage_s + commit_s == total_s — the
    // transactional protocol reorders the work but adds no extra cost.
    double stage_s =
        (t.checkpoint_ns + t.code_update_ns + t.inject_ns) / 1e9;
    double commit_s = t.restore_ns / 1e9;
    std::printf(
        "%-22s %9.2f %7zu %12.3f %11.3f %9.3f %9.3f %8.3f %8.3f %8.3f "
        "%12.3f\n",
        r.label.c_str(), r.image_mb, r.rep.edits.processes,
        t.inject_ns / 1e9, t.code_update_ns / 1e9, t.checkpoint_ns / 1e9,
        t.restore_ns / 1e9, stage_s, commit_s, t.total_seconds(),
        r.paper_total_s);
  }
  std::printf(
      "\nShape checks: totals sub-second for all three apps; Nginx costs the\n"
      "most (two processes to snapshot); per-app cost dominated by\n"
      "checkpoint+restore, int3 patching nearly constant — as in the paper.\n"
      "stage_s+commit_s equals total_s: staged commit adds no overhead.\n");

  // Freeze-window breakdown of the warm (incremental) re-enable toggle:
  // dirty-only dump + in-place restore against the cold toggle above.
  std::printf(
      "\n%-22s %8s %8s %9s %8s %8s %9s %9s %8s\n", "warm re-enable",
      "dump_s", "patch_s", "restore_s", "total_s", "pg_dump", "pg_share",
      "pg_restore", "cold_x");
  for (const auto& r : rows) {
    const auto& t = r.warm.timing;
    double cold_x = static_cast<double>(r.rep.timing.checkpoint_ns +
                                        r.rep.timing.restore_ns) /
                    static_cast<double>(t.checkpoint_ns + t.restore_ns);
    std::printf("%-22s %8.3f %8.3f %9.3f %8.3f %8llu %8llu %9llu %7.1fx\n",
                r.label.c_str(), t.checkpoint_ns / 1e9,
                t.code_update_ns / 1e9, t.restore_ns / 1e9,
                t.total_seconds(),
                static_cast<unsigned long long>(r.warm.edits.pages_dumped),
                static_cast<unsigned long long>(r.warm.edits.pages_shared),
                static_cast<unsigned long long>(r.warm.edits.pages_restored),
                cold_x);
  }
  std::printf(
      "\nShape check: the warm toggle's freeze window (dump+restore) is a\n"
      "small multiple of the dirty working set, not of the image — the\n"
      "incremental checkpoint path.\n");

  // Steady-state per-request cost of a denied feature probe, by mechanism.
  bench::banner(
      "Steady state: denied-probe cost, trap vs stub mechanism\n"
      "(virtual ns per request; 1 tick ~ 1ns)");
  std::vector<SteadyRow> steady;
  steady.push_back(micro_steady());
  steady.push_back(steady_state(
      "Lighttpd (minihttpd)", apps::build_minihttpd(), apps::kMinihttpdPort,
      "minihttpd", {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
      {"GET /index\n", "HEAD /index\n"}, "http_403",
      {"serve_put", "serve_delete"}, "PUT /b y\n", "PATCH /b y\n",
      "403 Forbidden\n"));
  steady.push_back(steady_state(
      "Nginx (miniweb)", apps::build_miniweb(), apps::kMiniwebPort,
      "miniweb", {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
      {"GET /index\n", "HEAD /index\n"}, "dav_403", {"do_put", "do_delete"},
      "PUT /b y\n", "PATCH /b y\n", "403 Forbidden\n"));
  steady.push_back(steady_state(
      "Redis (minikv)", apps::build_minikv(), apps::kMinikvPort, "minikv",
      {"SET k v\n", "GET k\n", "PING\n"}, {"GET k\n", "PING\n", "DEL k\n"},
      "dispatch_err", {"cmd_set"}, "SET k v2\n", "BLAH k v\n",
      "-ERR unknown or disabled command\n"));

  std::printf("\n%-22s %10s %10s %10s %10s %10s %7s %7s %6s\n",
              "application", "baseline", "trap", "stub", "trap_over",
              "stub_over", "trapsig", "stubsig", "stubs");
  for (const auto& s : steady) {
    std::printf(
        "%-22s %10.1f %10.1f %10.1f %10.1f %10.1f %7llu %7llu %6zu\n",
        s.label.c_str(), s.enabled, s.trap, s.stub, s.trap - s.enabled,
        s.stub - s.enabled, static_cast<unsigned long long>(s.trap_signals),
        static_cast<unsigned long long>(s.stub_signals),
        s.callsites_stubbed);
  }
  std::printf(
      "\nShape checks: the stub column sits at the enabled baseline (the\n"
      "denied probe branches straight to the app's error path), the trap\n"
      "column pays a signal round-trip per probe (>=5x the stub overhead),\n"
      "and the stub rows deliver zero SIGTRAPs.\n");

  std::ostringstream json;
  json << "{\n  \"steady_state\": [\n";
  for (size_t i = 0; i < steady.size(); ++i) {
    const auto& s = steady[i];
    json << "    {\"app\": \"" << s.label << "\", \"baseline_ns\": "
         << s.enabled << ", \"trap_ns\": " << s.trap
         << ", \"stub_ns\": " << s.stub
         << ", \"trap_overhead\": " << s.trap - s.enabled
         << ", \"stub_overhead\": " << s.stub - s.enabled
         << ", \"trap_signals\": " << s.trap_signals
         << ", \"stub_signals\": " << s.stub_signals
         << ", \"callsites_stubbed\": " << s.callsites_stubbed << "}"
         << (i + 1 < steady.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"gate_failures\": " << g_failures << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nWrote %s (gate_failures=%d)\n", out_path.c_str(),
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
