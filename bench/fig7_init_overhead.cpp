// Figure 7 reproduction: DynaCut's overhead for removing initialization
// code from process images — checkpoint/restore time vs code-update time,
// with the per-application code-size and image-size table.
#include <cstdio>

#include <set>

#include "analysis/coverage.hpp"
#include "apps/minihttpd.hpp"
#include "apps/miniweb.hpp"
#include "apps/specgen.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

struct Row {
  std::string label;
  double code_kb = 0;
  double image_mb = 0;
  /// Image-store footprint: logical (every stored image counted in full)
  /// vs resident (COW page blocks deduplicated). The gap is what sharing
  /// between the pristine and rewritten images saves.
  double store_logical_mb = 0;
  double store_resident_mb = 0;
  /// Fleet scale-out footprint: 8 workers forked from the customized image
  /// (image::spawn_from_image). fleet_store_MB counts every worker's pages in
  /// full (what a fleet without sharing would pay); fleet_resid_MB threads
  /// one `seen` set through the workers' live address spaces and the image
  /// store, so content-addressed blocks count once machine-wide.
  double fleet_store_mb = 0;
  double fleet_resid_mb = 0;
  size_t init_blocks = 0;
  core::TimingBreakdown timing;
  double paper_code_kb = 0;
  double paper_image_mb = 0;
};

/// Forks kFleetWorkers processes from the customized image and fills the
/// fleet accounting columns: logical vs dedup-aware resident bytes across
/// the spawned fleet plus the image store.
void add_fleet_columns(core::DynaCut& dc, int pid, Row& row) {
  constexpr int kFleetWorkers = 8;
  image::ProcessImage img = dc.store().get(dc.image_key(pid));
  os::Os fleet;
  uint64_t logical = dc.store().bytes_used();
  for (int i = 0; i < kFleetWorkers; ++i) {
    int wp = image::spawn_from_image(
        fleet, img, {.listen_port = static_cast<uint16_t>(9400 + i)});
    logical += fleet.process(wp)->mem.populated_pages().size() * kPageSize;
  }
  std::set<const void*> seen;
  row.fleet_resid_mb = bench::mb(fleet.resident_pages_bytes(&seen) +
                                 dc.store().resident_bytes(&seen));
  row.fleet_store_mb = bench::mb(logical);
}

/// Removes init-only code from a freshly booted live instance of a server.
Row server_row(const std::string& label,
               std::shared_ptr<const melf::Binary> bin, uint16_t port,
               const std::string& module,
               const std::vector<std::string>& serving_reqs,
               double paper_code_kb, double paper_image_mb) {
  bench::ServerPhases phases = bench::profile_server(bin, port, serving_reqs);
  analysis::CoverageGraph init_only =
      analysis::init_only(phases.init_log, phases.serving_log, module);

  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  core::DynaCut dc(vos, pid);
  core::CustomizeReport rep =
      dc.remove_init_code(init_only, core::RemovalPolicy::kWipeBlocks);

  // Service must survive init removal.
  auto conn = vos.connect(port);
  std::string got = bench::request(vos, conn, serving_reqs[0]);
  if (got.empty()) std::printf("!! %s dead after init removal\n", label.c_str());

  Row row;
  row.label = label;
  row.code_kb = bench::kb(bench::text_bytes(*bin));
  row.image_mb = bench::mb(rep.edits.image_pages * kPageSize / rep.edits.processes);
  row.store_logical_mb = bench::mb(dc.store().bytes_used());
  row.store_resident_mb = bench::mb(dc.store().resident_bytes());
  add_fleet_columns(dc, pid, row);
  row.init_blocks = init_only.size();
  row.timing = rep.timing;
  row.paper_code_kb = paper_code_kb;
  row.paper_image_mb = paper_image_mb;
  return row;
}

Row spec_row(const apps::SpecBench& bench_def) {
  auto bin = apps::build_spec(bench_def);
  bench::ServerPhases phases = bench::profile_spec(bin);
  analysis::CoverageGraph init_only = analysis::init_only(
      phases.init_log, phases.serving_log, bench_def.name);

  // Customize a fresh instance exactly at its init point: the nudge hook
  // freezes the process so the rewrite happens at the boundary even for
  // benchmarks whose serving phase is brief.
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.set_nudge_hook(
      [&](const os::Process& p, uint64_t) { vos.freeze(p.pid); });
  run_until(vos,
            [&] {
              const os::Process* p = vos.process(pid);
              return p->state == os::Process::State::kFrozen ||
                     vos.all_exited();
            },
            5000);
  vos.set_nudge_hook(nullptr);
  vos.thaw(pid);  // DynaCut re-freezes during its own checkpoint
  core::DynaCut dc(vos, pid);
  core::CustomizeReport rep =
      dc.remove_init_code(init_only, core::RemovalPolicy::kWipeBlocks);
  run_until(vos, [&] { return vos.all_exited(); }, 3000);
  if (vos.process(pid)->term_signal != 0) {
    std::printf("!! %s crashed after init removal\n", bench_def.name.c_str());
  }

  Row row;
  row.label = bench_def.name;
  row.code_kb = bench::kb(bench::text_bytes(*bin));
  row.image_mb = bench::mb(rep.edits.image_pages * kPageSize);
  row.store_logical_mb = bench::mb(dc.store().bytes_used());
  row.store_resident_mb = bench::mb(dc.store().resident_bytes());
  add_fleet_columns(dc, pid, row);
  row.init_blocks = init_only.size();
  row.timing = rep.timing;
  row.paper_code_kb = bench_def.paper_code_size_kb;
  row.paper_image_mb = bench_def.paper_image_size_mb;
  return row;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 7: overhead of removing initialization code from process\n"
      "images (checkpoint/restore vs code update). Substrate scale factors:\n"
      "code ~1:10, image ~1:100 of the paper's binaries (see EXPERIMENTS.md)");

  std::vector<Row> rows;
  const std::vector<std::string> web_reqs = {
      "GET /index\n", "HEAD /index\n", "GET /miss\n",  "HEAD /miss\n",
      "PUT /f x\n",   "GET /f\n",      "DELETE /f\n",  "PATCH /x\n"};
  rows.push_back(server_row("Lighttpd", apps::build_minihttpd(),
                            apps::kMinihttpdPort, "minihttpd", web_reqs, 335,
                            2.3));
  rows.push_back(server_row("Nginx", apps::build_miniweb(),
                            apps::kMiniwebPort, "miniweb", web_reqs, 853,
                            4.9));
  for (const auto& sb : apps::spec_suite()) {
    if (sb.name == "631.deepsjeng_s") continue;  // not in the paper's Fig. 7
    rows.push_back(spec_row(sb));
  }

  std::printf(
      "\n%-18s %9s %9s %9s %9s %14s %14s %11s %9s %11s %8s %13s %13s\n",
      "application", "code_KB", "image_MB", "store_MB", "resid_MB",
      "fleet_store_MB", "fleet_resid_MB", "init_blks", "ckpt+rst_s",
      "update_s", "total_s", "paper_code_KB", "paper_img_MB");
  for (const auto& r : rows) {
    std::printf(
        "%-18s %9.1f %9.2f %9.2f %9.2f %14.2f %14.2f %11zu %9.3f %11.3f "
        "%8.3f %13.1f %13.1f\n",
        r.label.c_str(), r.code_kb, r.image_mb, r.store_logical_mb,
        r.store_resident_mb, r.fleet_store_mb, r.fleet_resid_mb,
        r.init_blocks, (r.timing.checkpoint_ns + r.timing.restore_ns) / 1e9,
        r.timing.code_update_ns / 1e9, r.timing.total_seconds(),
        r.paper_code_kb, r.paper_image_mb);
  }
  std::printf(
      "\nShape checks: 600.perlbench_s is the most expensive case (largest\n"
      "init-block list), 605.mcf_s is negligible, code-update time is\n"
      "proportional to the init-block count — matching the paper.\n"
      "store_MB counts the pristine + rewritten images in full; resid_MB is\n"
      "what they actually occupy with COW page sharing — roughly one image\n"
      "plus the edited pages. fleet_store_MB/fleet_resid_MB do the same for\n"
      "an 8-worker fleet forked from the customized image\n"
      "(image::spawn_from_image): resident stays ~one shared image because\n"
      "the content-addressed BlockStore dedups every identical page.\n");
  return 0;
}
