// Figure 8 reproduction: Redis (minikv) throughput over a 70-second
// timeline while DynaCut disables the SET command at t≈18 s and re-enables
// it at t≈48 s, compared against an unmodified server.
//
// A guest benchmark client (kvbench) loops GET requests and counts
// completed replies in guest memory; the host samples the counter once per
// virtual second. The customization window freezes the server, so the dip
// in the affected bucket is emergent, not scripted.
#include <cstdio>

#include "analysis/coverage.hpp"
#include "apps/minikv.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"
#include "obs/bus.hpp"
#include "obs/timeline.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

constexpr int kSeconds = 70;
constexpr int kDisableAt = 18;
constexpr int kReenableAt = 48;
constexpr uint64_t kTick = 1'000'000'000;  // 1 virtual second

struct Timeline {
  std::vector<double> kreq_per_s;
  core::CustomizeReport disable_rep;
  core::CustomizeReport reenable_rep;
  /// Toggle markers as observed on the event bus (not scripted): the
  /// TimelineRecorder derives them from committed txn.commit events.
  std::vector<obs::TimelineRecorder::Toggle> toggles;
  uint64_t start = 0;
};

uint64_t read_ops(const os::Os& vos, int client) {
  const os::Process* c = vos.process(client);
  const os::LoadedModule* m = c->module_named("kvbench");
  uint64_t ops = 0;
  c->mem.peek(m->base + m->binary->find_symbol("ops")->value, &ops, 8);
  return ops;
}

Timeline run_timeline(bool with_dynacut) {
  // Calibrated per-syscall cost so one virtual second holds a realistic
  // number of request round-trips without an impractically slow simulation.
  os::Os vos;
  vos.costs().base = 20'000;  // 20 µs per syscall

  auto kv = apps::build_minikv();
  int server = vos.spawn(kv, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(apps::kMinikvPort); });
  int client = vos.spawn(apps::build_kvbench(), {apps::build_libc()});

  // Feature discovery (offline, like the paper's profiling step).
  core::FeatureSpec set_spec;
  if (with_dynacut) {
    // The wanted trace must cover the GET-hit path without using SET, or
    // tracediff over-eliminates shared lookup code (paper §3.2.3) — here
    // SETRANGE populates the key the wanted GET then finds.
    bench::ServerPhases undesired = bench::profile_server(
        kv, apps::kMinikvPort, {"SET k v\n", "GET k\n", "PING\n"});
    bench::ServerPhases wanted = bench::profile_server(
        kv, apps::kMinikvPort,
        {"SETRANGE k 0 hello\n", "GET k\n", "GET miss\n", "PING\n",
         "DEL k\n"});
    set_spec.name = "SET";
    set_spec.blocks = analysis::feature_diff({undesired.serving_log},
                                             {wanted.serving_log}, "minikv")
                          .blocks();
    set_spec.redirect_module = "minikv";
    set_spec.redirect_offset = kv->find_symbol("dispatch_err")->value;
  }

  // The toggle timeline is consumed from the obs layer, not kept by hand:
  // the recorder sees only committed customizations.
  obs::EventBus bus;
  obs::TimelineRecorder recorder(bus);
  vos.set_event_bus(&bus);

  core::DynaCut dc(vos, server);
  dc.set_observer(&bus);
  Timeline out;
  uint64_t prev_ops = 0;
  const uint64_t start = vos.now();
  out.start = start;
  for (int t = 0; t < kSeconds; ++t) {
    if (with_dynacut && t == kDisableAt) {
      // Cold toggle: no baseline yet, so the dump is full.
      out.disable_rep =
          dc.disable_feature({.feature = set_spec,
                              .removal = core::RemovalPolicy::kBlockFirstByte,
                              .trap = core::TrapPolicy::kRedirect});
    }
    if (with_dynacut && t == kReenableAt) {
      // Warm toggle: 30 virtual seconds of serving dirtied the working
      // set; the incremental dump shares the rest from the baseline.
      out.reenable_rep = dc.restore_feature("SET");
    }
    // Absolute schedule: the rewrite window (which advanced the clock while
    // the server was frozen) eats into its bucket — the throughput dip.
    uint64_t deadline = start + static_cast<uint64_t>(t + 1) * kTick;
    if (deadline > vos.now()) vos.run_ticks(deadline - vos.now());
    uint64_t ops = read_ops(vos, client);
    out.kreq_per_s.push_back(static_cast<double>(ops - prev_ops) / 1000.0);
    prev_ops = ops;
  }
  out.toggles = recorder.toggles();
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 8: minikv throughput under DynaCut — disable SET at t=18s,\n"
      "re-enable at t=48s (guest GET-loop client; counter sampled per\n"
      "virtual second)");

  Timeline vanilla = run_timeline(false);
  Timeline dyna = run_timeline(true);

  // Toggle markers come from the obs timeline, bucketed onto the virtual-
  // second grid — the recorder observed the commits, nothing is scripted.
  std::vector<std::string> markers(kSeconds);
  for (const auto& tg : dyna.toggles) {
    int bucket = static_cast<int>((tg.vclock - dyna.start) / kTick);
    if (bucket < 0 || bucket >= kSeconds) continue;
    markers[bucket] += "  <- ";
    markers[bucket] += tg.disabled ? "disable " : "re-enable ";
    markers[bucket] += tg.feature;
  }

  std::printf("\n%6s %14s %14s\n", "t_s", "vanilla_kreq/s", "dynacut_kreq/s");
  for (int t = 0; t < kSeconds; ++t) {
    std::printf("%6d %14.2f %14.2f%s\n", t, vanilla.kreq_per_s[t],
                dyna.kreq_per_s[t], markers[t].c_str());
  }

  auto avg = [](const std::vector<double>& v, int from, int to) {
    double s = 0;
    for (int i = from; i < to; ++i) s += v[i];
    return s / (to - from);
  };
  double steady = avg(dyna.kreq_per_s, 5, kDisableAt);
  double during = dyna.kreq_per_s[kDisableAt];
  double after = avg(dyna.kreq_per_s, kDisableAt + 2, kReenableAt);
  std::printf(
      "\nservice interruption: disable rewrite %.3f s, re-enable rewrite "
      "%.3f s\n",
      dyna.disable_rep.timing.total_seconds(),
      dyna.reenable_rep.timing.total_seconds());

  // Freeze-window breakdown: the disable pays a full dump (no baseline),
  // the re-enable rides the incremental path.
  std::printf("\n%-12s %8s %8s %9s %8s %8s %9s %10s\n", "toggle", "dump_s",
              "patch_s", "restore_s", "total_s", "pg_dump", "pg_share",
              "pg_restore");
  for (const auto& [name, rep] :
       {std::pair<const char*, const core::CustomizeReport*>{
            "disable", &dyna.disable_rep},
        {"re-enable", &dyna.reenable_rep}}) {
    const auto& tm = rep->timing;
    std::printf("%-12s %8.3f %8.3f %9.3f %8.3f %8llu %8llu %9llu\n", name,
                tm.checkpoint_ns / 1e9, tm.code_update_ns / 1e9,
                tm.restore_ns / 1e9, tm.total_seconds(),
                static_cast<unsigned long long>(rep->edits.pages_dumped),
                static_cast<unsigned long long>(rep->edits.pages_shared),
                static_cast<unsigned long long>(rep->edits.pages_restored));
  }
  std::printf(
      "steady %.2f kreq/s -> dip bucket %.2f kreq/s -> recovered %.2f "
      "kreq/s\n",
      steady, during, after);
  std::printf(
      "Shape checks: no termination, a sub-second dip at both rewrite\n"
      "points, and full recovery to the vanilla level — as in the paper.\n");

  // The obs-derived toggle timeline must agree with the schedule the bench
  // drove: one disable in the t=18 bucket, one re-enable in the t=48 bucket.
  if (dyna.toggles.size() != 2 ||
      static_cast<int>((dyna.toggles[0].vclock - dyna.start) / kTick) !=
          kDisableAt ||
      !dyna.toggles[0].disabled ||
      static_cast<int>((dyna.toggles[1].vclock - dyna.start) / kTick) !=
          kReenableAt ||
      dyna.toggles[1].disabled) {
    std::printf("FAIL: obs toggle timeline does not match the schedule\n");
    return 1;
  }
  std::printf("obs timeline: %zu toggles, buckets match the schedule\n",
              dyna.toggles.size());

  // The incremental path must shrink the freeze window (checkpoint +
  // restore) of the warm toggle by at least 5x against the cold one.
  double cold_freeze = (dyna.disable_rep.timing.checkpoint_ns +
                        dyna.disable_rep.timing.restore_ns) /
                       1e9;
  double warm_freeze = (dyna.reenable_rep.timing.checkpoint_ns +
                        dyna.reenable_rep.timing.restore_ns) /
                       1e9;
  if (warm_freeze * 5 > cold_freeze) {
    std::printf("FAIL: warm freeze window %.3f s not 5x below cold %.3f s\n",
                warm_freeze, cold_freeze);
    return 1;
  }
  std::printf("freeze window: cold %.3f s -> warm %.3f s (%.1fx)\n",
              cold_freeze, warm_freeze, cold_freeze / warm_freeze);
  return 0;
}
