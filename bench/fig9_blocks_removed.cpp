// Figure 9 reproduction: per application — executed basic blocks, basic
// blocks removed as initialization-only, total static blocks (the Angr
// number), code size, and the size of removed init code.
#include <cstdio>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/minihttpd.hpp"
#include "apps/miniweb.hpp"
#include "apps/specgen.hpp"
#include "bench_common.hpp"

namespace {

using namespace dynacut;

struct Row {
  std::string label;
  size_t total_blocks = 0;    // static CFG (Angr stand-in)
  size_t executed_blocks = 0; // deduped traced blocks, app module
  size_t removed_blocks = 0;  // init-only
  double code_kb = 0;
  double init_removed_kb = 0;
  double paper_removed_pct = 0;  // paper's % of executed blocks removed
};

Row make_row(const std::string& label, const bench::ServerPhases& phases,
             const std::string& module, double paper_removed_pct) {
  analysis::CoverageGraph init = phases.init_cov(module);
  analysis::CoverageGraph serving = phases.serving_cov(module);
  analysis::CoverageGraph executed = init;
  executed.merge(serving);
  analysis::CoverageGraph init_only = init.diff(serving);

  Row row;
  row.label = label;
  row.total_blocks = analysis::total_block_count(*phases.bin);
  row.executed_blocks = executed.size();
  row.removed_blocks = init_only.size();
  row.code_kb = bench::kb(bench::text_bytes(*phases.bin));
  row.init_removed_kb = bench::kb(init_only.total_bytes());
  row.paper_removed_pct = paper_removed_pct;
  return row;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 9: executed basic blocks vs init-only blocks removed by\n"
      "DynaCut (plus total-BB / code-size table)");

  std::vector<Row> rows;
  const std::vector<std::string> web_reqs = {
      "GET /index\n", "HEAD /index\n", "GET /miss\n",  "HEAD /miss\n",
      "PUT /f x\n",   "GET /f\n",      "DELETE /f\n",  "PATCH /x\n"};
  rows.push_back(make_row(
      "Lighttpd",
      bench::profile_server(apps::build_minihttpd(), apps::kMinihttpdPort,
                            web_reqs),
      "minihttpd", 46.0));
  rows.push_back(make_row(
      "Nginx",
      bench::profile_server(apps::build_miniweb(), apps::kMiniwebPort,
                            web_reqs),
      "miniweb", 56.0));
  for (const auto& sb : apps::spec_suite()) {
    rows.push_back(make_row(sb.name, bench::profile_spec(apps::build_spec(sb)),
                            sb.name, sb.paper_init_removed_pct));
  }

  std::printf("\n%-18s %9s %9s %9s %10s %9s %12s %10s\n", "application",
              "total_BB", "exec_BB", "rm_BB", "rm_pct", "code_KB",
              "init_rm_KB", "paper_pct");
  double pct_sum = 0;
  int spec_count = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    double pct = r.executed_blocks == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(r.removed_blocks) /
                           static_cast<double>(r.executed_blocks);
    if (i >= 2) {
      pct_sum += pct;
      ++spec_count;
    }
    std::printf("%-18s %9zu %9zu %9zu %9.1f%% %9.1f %12.2f %9.1f%%\n",
                r.label.c_str(), r.total_blocks, r.executed_blocks,
                r.removed_blocks, pct, r.code_kb, r.init_removed_kb,
                r.paper_removed_pct);
  }
  std::printf(
      "\nSPEC average removed-%%: %.1f%% (paper: 22.3%%, range 8.4-41.4%%)\n",
      pct_sum / spec_count);
  std::printf(
      "Shape checks: web servers lose the largest share of executed blocks\n"
      "(init-heavy); 600.perlbench_s leads SPEC; 605.mcf_s is smallest.\n");
  return 0;
}
