// Fleet-scale serving benchmark (fig8 "fleet mode"): hundreds of minikv
// server processes on a multi-core osim, customized one-by-one with a
// rolling DynaCut toggle while the rest of the fleet keeps serving.
//
// Three phases, each with a CI gate, all written to BENCH_fleet.json:
//
//   1. scaling     — aggregate retired instructions per virtual second on
//                    a loaded minikv fleet at 1/2/4(/8) virtual cores.
//                    Gate: >= 3x at 4 cores vs 1.
//   2. toggle      — 112 servers, one host connection each; a rolling
//                    disable+re-enable of the SET feature walks the fleet
//                    while every connection keeps a PING outstanding.
//                    Gates: p99 request latency inside the toggle window
//                    stays within the poll quantum (the frozen servers are
//                    < 1% of requests), per-step reply ratio never drops
//                    below 0.9 and aggregate throughput stays >= 0.5x the
//                    steady-state rate — no global stall.
//   3. determinism — the same seeded scenario (4 cores, guest load, two
//                    toggles) twice; per-core retired-instruction counts
//                    and the obs event digest must match bit-for-bit.
//   4. spawn storm — one template minikv is booted, customized (SET
//                    disabled) and its image filed in the store; 100
//                    workers (24 in --light) are then forked from that
//                    image via image::spawn_from_image and each answers a
//                    PING. Gates: machine-wide resident bytes stay at
//                    ~one shared image plus a small per-pid delta (the
//                    content-addressed BlockStore dedups identical
//                    pages; dedup ratio >= 3x), host-side spawn latency
//                    beats a full spawn+boot+customize replay, and the
//                    whole storm run twice same-seed is bit-identical.
//   5. probe storm — half the fleet has SET disabled and every client
//                    probes the disabled command once per request slice,
//                    once under the trap mechanism and once under stub
//                    callsite redirection. Gates: the trap run pays one
//                    SIGTRAP per denied probe while the stub run pays
//                    zero, every probe is denied with the app's own
//                    error reply, the enabled half keeps serving, and
//                    the stub run's denied-probe tail (p99) does not
//                    exceed the trap run's.
//
// Latency is measured in virtual ticks and quantized at the poll slice:
// the host observes replies only between run_ticks() calls, so a healthy
// request reads as one slice. What the gates pin down is the *tail*: a
// frozen server parks its reply for the whole charged rewrite window
// (p_max ~ downtime), and nobody else does.
//
// --light shrinks the toggle walk and the scaling window for the
// sanitizer CI job; --out=PATH overrides the JSON destination.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <memory>
#include <span>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/minikv.hpp"
#include "isa/isa.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"
#include "obs/bus.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

constexpr uint16_t kFleetBasePort = 7100;
constexpr int kFleetSize = 112;      // >= 100 per the acceptance gate
constexpr uint32_t kFleetHeapKb = 64;  // tiny heap: fleet instances boot fast
constexpr uint64_t kSlice = 500'000;   // poll quantum, virtual ticks

/// Costs scaled for small fleet instances (the full CRIU-calibrated model
/// charges a 30 ms setup per toggle — appropriate for a 4 MB redis image,
/// 200x the whole working set of a 64 KB fleet instance). Coefficients keep
/// the model's *shape*: per-page and per-block terms dominate.
core::CostModel fleet_cost_model() {
  core::CostModel m;
  m.checkpoint_base_ns = 200'000;
  m.restore_base_ns = 200'000;
  m.checkpoint_delta_base_ns = 50'000;
  m.restore_delta_base_ns = 50'000;
  m.checkpoint_per_page_ns = 2'000;
  m.restore_per_page_ns = 2'000;
  m.patch_per_block_ns = 20'000;
  m.inject_base_ns = 500'000;
  m.inject_per_reloc_ns = 5'000;
  return m;
}

// --------------------------------------------------------------------------
// Phase 1: throughput vs cores
// --------------------------------------------------------------------------

struct ScalePoint {
  size_t cores = 0;
  uint64_t steps = 0;
  uint64_t vticks = 0;
  double steps_per_vtick() const {
    return vticks == 0 ? 0.0 : static_cast<double>(steps) / vticks;
  }
};

ScalePoint run_scaling(size_t cores, uint64_t window, int pairs) {
  os::Os vos;
  vos.set_seed(42);
  vos.set_cores(cores);
  auto libc = apps::build_libc();
  // Server/client pairs, each pair on its own port: the kvbench guests
  // drive a GET loop forever, so every core always has runnable work.
  std::vector<uint16_t> ports;
  for (int i = 0; i < pairs; ++i) {
    uint16_t port = static_cast<uint16_t>(kFleetBasePort + i);
    ports.push_back(port);
    vos.spawn(apps::build_minikv(port, kFleetHeapKb), {libc});
  }
  run_until(vos, [&] {
    for (uint16_t port : ports) {
      if (!vos.has_listener(port)) return false;
    }
    return true;
  });
  for (uint16_t port : ports) vos.spawn(apps::build_kvbench(port), {libc});
  vos.run_ticks(window / 4);  // warm-up: clients connect, caches build

  ScalePoint out;
  out.cores = cores;
  const uint64_t r0 = vos.total_retired();
  const uint64_t t0 = vos.now();
  vos.run_ticks(window);
  out.steps = vos.total_retired() - r0;
  out.vticks = vos.now() - t0;
  return out;
}

// --------------------------------------------------------------------------
// Phase 2: rolling toggle across the fleet
// --------------------------------------------------------------------------

struct FleetConn {
  os::HostConn conn;
  uint64_t sent_at = 0;
  bool in_flight = false;
};

struct LatencyStats {
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  size_t n = 0;
};

LatencyStats percentiles(std::vector<uint64_t> lat) {
  LatencyStats s;
  s.n = lat.size();
  if (lat.empty()) return s;
  std::sort(lat.begin(), lat.end());
  s.p50 = lat[lat.size() / 2];
  s.p99 = lat[(lat.size() * 99) / 100];
  s.max = lat.back();
  return s;
}

struct ToggleResult {
  LatencyStats steady;
  LatencyStats window;  ///< inside the rolling-toggle window
  double steady_rate = 0.0;   ///< replies per slice, before any toggle
  double window_rate = 0.0;   ///< replies per slice, during the walk
  double min_step_ratio = 1.0;  ///< worst per-step replies/active-servers
  int toggles = 0;
  size_t connections = 0;
  uint64_t max_downtime_ns = 0;  ///< largest charged rewrite window
  bool ok = true;
  std::string why;
};

/// Sends a PING on every idle connection, advances one slice, then collects
/// replies. Returns the number of replies and appends their latencies.
size_t drive_slice(os::Os& vos, std::vector<FleetConn>& conns,
                   std::vector<uint64_t>* latencies) {
  for (auto& fc : conns) {
    if (!fc.in_flight) {
      fc.conn.send("PING\n");
      fc.sent_at = vos.now();
      fc.in_flight = true;
    }
  }
  vos.run_ticks(kSlice);
  size_t replies = 0;
  for (auto& fc : conns) {
    if (fc.in_flight && !fc.conn.recv_line().empty()) {
      fc.in_flight = false;
      ++replies;
      if (latencies != nullptr) latencies->push_back(vos.now() - fc.sent_at);
    }
  }
  return replies;
}

ToggleResult run_toggle(size_t cores, int toggles) {
  ToggleResult out;
  os::Os vos;
  vos.set_seed(42);
  vos.set_cores(cores);
  obs::EventBus bus;
  vos.set_event_bus(&bus);
  auto libc = apps::build_libc();

  std::vector<int> server_pids;
  for (int i = 0; i < kFleetSize; ++i) {
    uint16_t port = static_cast<uint16_t>(kFleetBasePort + i);
    server_pids.push_back(
        vos.spawn(apps::build_minikv(port, kFleetHeapKb), {libc}));
  }
  if (!run_until(vos, [&] {
        for (int i = 0; i < kFleetSize; ++i) {
          if (!vos.has_listener(static_cast<uint16_t>(kFleetBasePort + i))) {
            return false;
          }
        }
        return true;
      })) {
    out.ok = false;
    out.why = "fleet failed to boot";
    return out;
  }

  std::vector<FleetConn> conns(kFleetSize);
  for (int i = 0; i < kFleetSize; ++i) {
    conns[i].conn = vos.connect(static_cast<uint16_t>(kFleetBasePort + i));
  }
  out.connections = conns.size();

  // Feature discovery once, offline, on a representative instance — all
  // fleet binaries share the block layout (only the port immediate varies).
  auto proto = apps::build_minikv(kFleetBasePort, kFleetHeapKb);
  bench::ServerPhases undesired = bench::profile_server(
      proto, kFleetBasePort, {"SET k v\n", "GET k\n", "PING\n"});
  bench::ServerPhases wanted = bench::profile_server(
      proto, kFleetBasePort,
      {"SETRANGE k 0 hello\n", "GET k\n", "GET miss\n", "PING\n", "DEL k\n"});
  core::FeatureSpec set_spec;
  set_spec.name = "SET";
  set_spec.blocks = analysis::feature_diff({undesired.serving_log},
                                           {wanted.serving_log}, "minikv")
                        .blocks();
  set_spec.redirect_module = "minikv";
  set_spec.redirect_offset = proto->find_symbol("dispatch_err")->value;

  // Steady state: latency and reply rate with no toggles in flight.
  constexpr int kSteadySlices = 8;
  std::vector<uint64_t> steady_lat;
  size_t steady_replies = 0;
  for (int s = 0; s < kSteadySlices; ++s) {
    steady_replies += drive_slice(vos, conns, &steady_lat);
  }
  out.steady = percentiles(std::move(steady_lat));
  out.steady_rate = static_cast<double>(steady_replies) / kSteadySlices;

  // The rolling walk: toggle (disable, slice, re-enable, slice) one server
  // per step. Each server keeps its own DynaCut (baselines make the
  // re-enable ride the incremental path, like a real fleet operator would).
  std::vector<uint64_t> window_lat;
  size_t window_replies = 0;
  size_t window_slices = 0;
  out.min_step_ratio = 1.0;
  for (int step = 0; step < toggles; ++step) {
    int victim = step % kFleetSize;
    core::DynaCut dc(vos, server_pids[victim], fleet_cost_model());
    dc.set_observer(&bus);
    core::CustomizeReport rep =
        dc.disable_feature({.feature = set_spec,
                            .removal = core::RemovalPolicy::kBlockFirstByte,
                            .trap = core::TrapPolicy::kRedirect});
    out.max_downtime_ns = std::max(out.max_downtime_ns,
                                   rep.timing.total_ns());
    size_t got = drive_slice(vos, conns, &window_lat);
    core::CustomizeReport rep2 = dc.restore_feature("SET");
    out.max_downtime_ns = std::max(out.max_downtime_ns,
                                   rep2.timing.total_ns());
    got += drive_slice(vos, conns, &window_lat);
    window_replies += got;
    window_slices += 2;
    out.toggles += 2;
    // Per-step serving floor: every non-frozen server should have answered
    // at least once across the step's two slices. `got` counts replies;
    // the gated victims (downtime spans several steps) are the only ones
    // allowed to be silent.
    double ratio = static_cast<double>(got) / (2.0 * kFleetSize);
    out.min_step_ratio = std::min(out.min_step_ratio, ratio);
  }
  // Drain: victims gated near the end of the walk are still serving their
  // charged rewrite window; give their parked replies time to land so the
  // tail statistics include every frozen request.
  const int drain =
      static_cast<int>(out.max_downtime_ns / kSlice) + 2;
  for (int s = 0; s < drain; ++s) drive_slice(vos, conns, &window_lat);
  out.window = percentiles(std::move(window_lat));
  out.window_rate =
      window_slices == 0 ? 0.0
                         : static_cast<double>(window_replies) / window_slices;
  return out;
}

// --------------------------------------------------------------------------
// Phase 3: determinism
// --------------------------------------------------------------------------

/// FNV-1a digest over every delivered event's identity: type, pid, vclock,
/// seq and numeric attributes. Two runs of the same seeded scenario must
/// produce the same digest — the obs timeline is part of the contract.
class DigestSink : public obs::Sink {
 public:
  void on_event(const obs::Event& e) override {
    mix_str(e.type);
    mix(static_cast<uint64_t>(e.pid));
    mix(e.vclock);
    mix(e.seq);
    for (const auto& a : e.attrs) {
      mix_str(a.key);
      if (a.is_num) mix(a.num);
      else mix_str(a.str);
    }
    ++events_;
  }
  uint64_t digest() const { return h_; }
  uint64_t events() const { return events_; }

 private:
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix_str(const std::string& s) {
    for (char ch : s) {
      h_ ^= static_cast<uint8_t>(ch);
      h_ *= 0x100000001b3ULL;
    }
  }
  uint64_t h_ = 0xcbf29ce484222325ULL;
  uint64_t events_ = 0;
};

struct DetRun {
  uint64_t total_retired = 0;
  std::vector<uint64_t> per_core_retired;
  uint64_t digest = 0;
  uint64_t events = 0;
};

DetRun run_deterministic(const core::FeatureSpec& spec, uint64_t window) {
  os::Os vos;
  vos.set_seed(7);
  vos.set_cores(4);
  obs::EventBus bus;
  DigestSink sink;
  bus.add_sink(&sink);
  vos.set_event_bus(&bus);
  auto libc = apps::build_libc();

  constexpr int kPairs = 8;
  std::vector<int> servers;
  for (int i = 0; i < kPairs; ++i) {
    uint16_t port = static_cast<uint16_t>(kFleetBasePort + i);
    servers.push_back(vos.spawn(apps::build_minikv(port, kFleetHeapKb), {libc}));
  }
  run_until(vos, [&] {
    for (int i = 0; i < kPairs; ++i) {
      if (!vos.has_listener(static_cast<uint16_t>(kFleetBasePort + i))) {
        return false;
      }
    }
    return true;
  });
  for (int i = 0; i < kPairs; ++i) {
    vos.spawn(apps::build_kvbench(static_cast<uint16_t>(kFleetBasePort + i)),
              {libc});
  }
  vos.run_ticks(window);

  core::DynaCut dc0(vos, servers[0], fleet_cost_model());
  dc0.set_observer(&bus);
  dc0.disable_feature({.feature = spec,
                       .removal = core::RemovalPolicy::kBlockFirstByte,
                       .trap = core::TrapPolicy::kRedirect});
  vos.run_ticks(window);
  dc0.restore_feature("SET");
  core::DynaCut dc3(vos, servers[3], fleet_cost_model());
  dc3.set_observer(&bus);
  dc3.disable_feature({.feature = spec,
                       .removal = core::RemovalPolicy::kBlockFirstByte,
                       .trap = core::TrapPolicy::kRedirect});
  vos.run_ticks(window);

  DetRun out;
  out.total_retired = vos.total_retired();
  for (size_t c = 0; c < vos.num_cores(); ++c) {
    out.per_core_retired.push_back(vos.core_stats(c).retired);
  }
  out.digest = sink.digest();
  out.events = sink.events();
  return out;
}

// --------------------------------------------------------------------------
// Phase 4: spawn storm — instant scale-out from a customized image
// --------------------------------------------------------------------------

constexpr uint16_t kStormBasePort = 7400;
constexpr int kReplaySample = 4;
/// Per-pid resident allowance after one served PING: the pages a worker
/// dirties on its own (stack, touched globals) plus slack. Everything else
/// must stay shared with the template image through the BlockStore.
constexpr uint64_t kDeltaCapPages = 24;

struct StormResult {
  int workers = 0;
  uint64_t image_logical_bytes = 0;   ///< one customized image, counted full
  uint64_t fleet_logical_bytes = 0;   ///< every worker's pages counted full
  uint64_t fleet_resident_bytes = 0;  ///< seen-threaded: store + live fleet
  double dedup_ratio = 0.0;
  double mean_spawn_ns = 0.0;    ///< host ns per image::spawn_from_image
  double mean_replay_ns = 0.0;   ///< host ns per spawn + boot + customize
  size_t pings_answered = 0;
  uint64_t total_retired = 0;
  uint64_t digest = 0;
  uint64_t events = 0;
  bool ok = true;
  std::string why;
};

double host_ns(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

StormResult run_storm(const core::FeatureSpec& spec, int workers) {
  StormResult out;
  out.workers = workers;
  os::Os vos;
  vos.set_seed(11);
  vos.set_cores(4);
  obs::EventBus bus;
  DigestSink sink;
  bus.add_sink(&sink);
  vos.set_event_bus(&bus);
  auto libc = apps::build_libc();

  // Template: boot one instance, disable SET, pull the committed image out
  // of the DynaCut store under its typed key {pid, "SET"}.
  int tpid = vos.spawn(apps::build_minikv(kStormBasePort, kFleetHeapKb), {libc});
  if (!run_until(vos, [&] { return vos.has_listener(kStormBasePort); })) {
    out.ok = false;
    out.why = "storm template failed to boot";
    return out;
  }
  core::DynaCut dc(vos, tpid, fleet_cost_model());
  dc.set_observer(&bus);
  dc.disable_feature({.feature = spec,
                      .removal = core::RemovalPolicy::kBlockFirstByte,
                      .trap = core::TrapPolicy::kRedirect});
  image::ProcessImage img = dc.store().get(dc.image_key(tpid));

  // The storm: fork the whole serving fleet from the stored image. No
  // guest instruction runs during the spawns — fresh pid/port, shared
  // pages.
  std::vector<int> wpids;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < workers; ++i) {
    wpids.push_back(image::spawn_from_image(
        vos, img,
        {.listen_port = static_cast<uint16_t>(kStormBasePort + 1 + i)}));
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.mean_spawn_ns = host_ns(t0, t1) / workers;

  // Every worker answers a PING: proof each fork is a live server, and the
  // realistic per-pid dirty delta the resident gate charges for.
  std::vector<os::HostConn> conns;
  for (int i = 0; i < workers; ++i) {
    conns.push_back(vos.connect(static_cast<uint16_t>(kStormBasePort + 1 + i)));
  }
  for (auto& c : conns) c.send("PING\n");
  std::vector<bool> got(static_cast<size_t>(workers), false);
  for (int s = 0; s < 200 && out.pings_answered < conns.size(); ++s) {
    vos.run_ticks(kSlice);
    for (size_t i = 0; i < conns.size(); ++i) {
      if (!got[i] && !conns[i].recv_line().empty()) {
        got[i] = true;
        ++out.pings_answered;
      }
    }
  }

  // Accounting while the Os holds exactly template + storm workers. The
  // `seen` set threads through every live address space and the image
  // store, so a content-addressed block counts once machine-wide.
  out.image_logical_bytes =
      vos.process(wpids[0])->mem.populated_pages().size() * kPageSize;
  out.fleet_logical_bytes = dc.store().bytes_used();
  for (int pid : wpids) {
    out.fleet_logical_bytes +=
        vos.process(pid)->mem.populated_pages().size() * kPageSize;
  }
  std::set<const void*> seen;
  out.fleet_resident_bytes =
      vos.resident_pages_bytes(&seen) + dc.store().resident_bytes(&seen);
  out.dedup_ratio =
      out.fleet_resident_bytes == 0
          ? 0.0
          : static_cast<double>(out.fleet_logical_bytes) /
                static_cast<double>(out.fleet_resident_bytes);

  // Replay baseline: what scale-out costs without the image — spawn from
  // the binary, boot to the listener, re-run the customization. Sampled on
  // a few workers; the gate compares host-side means.
  const auto t2 = std::chrono::steady_clock::now();
  for (int j = 0; j < kReplaySample; ++j) {
    uint16_t port = static_cast<uint16_t>(kStormBasePort + 1 + workers + j);
    int rp = vos.spawn(apps::build_minikv(port, kFleetHeapKb), {libc});
    if (!run_until(vos, [&] { return vos.has_listener(port); })) {
      out.ok = false;
      out.why = "replay-baseline worker failed to boot";
      return out;
    }
    core::DynaCut rdc(vos, rp, fleet_cost_model());
    rdc.set_observer(&bus);
    rdc.disable_feature({.feature = spec,
                         .removal = core::RemovalPolicy::kBlockFirstByte,
                         .trap = core::TrapPolicy::kRedirect});
  }
  const auto t3 = std::chrono::steady_clock::now();
  out.mean_replay_ns = host_ns(t2, t3) / kReplaySample;

  out.total_retired = vos.total_retired();
  out.digest = sink.digest();
  out.events = sink.events();
  return out;
}

// --------------------------------------------------------------------------
// Phase 5: probe storm — disabled-feature probes, trap vs stub mechanism
// --------------------------------------------------------------------------

constexpr uint16_t kProbeBasePort = 7700;

struct ProbeResult {
  LatencyStats denied_lat;   ///< latency of denied probes (disabled half)
  size_t denied = 0;         ///< probes answered with the error reply
  size_t served = 0;         ///< probes served by the enabled half
  uint64_t sigtraps = 0;     ///< SIGTRAPs delivered during the probe window
  bool ok = true;
  std::string why;
};

/// Boots `fleet` minikv servers, disables SET on the first half with the
/// given mechanism, then has every connection probe "SET k v" once per
/// slice. The cut spec is narrowed to cmd_set plus the dispatcher's arm
/// call so the probe path is identical under both mechanisms up to the
/// denial itself.
ProbeResult run_probe(int fleet, core::CutMechanism mech, int slices) {
  ProbeResult out;
  os::Os vos;
  vos.set_seed(42);
  vos.set_cores(4);
  auto libc = apps::build_libc();

  std::vector<int> pids;
  for (int i = 0; i < fleet; ++i) {
    uint16_t port = static_cast<uint16_t>(kProbeBasePort + i);
    pids.push_back(vos.spawn(apps::build_minikv(port, kFleetHeapKb), {libc}));
  }
  if (!run_until(vos, [&] {
        for (int i = 0; i < fleet; ++i) {
          if (!vos.has_listener(static_cast<uint16_t>(kProbeBasePort + i))) {
            return false;
          }
        }
        return true;
      })) {
    out.ok = false;
    out.why = "probe fleet failed to boot";
    return out;
  }

  // Narrowed spec from the shared binary layout: the cmd_set blocks plus
  // the dispatch_command block whose call targets it (stubbable callsite).
  auto proto = apps::build_minikv(kProbeBasePort, kFleetHeapKb);
  const melf::Symbol* handler = proto->find_symbol("cmd_set");
  core::FeatureSpec spec;
  spec.name = "SET";
  analysis::StaticCfg cfg = analysis::recover_cfg(*proto);
  for (const auto& [boff, blk] : cfg.blocks) {
    if (boff >= handler->value && boff < handler->value + handler->size) {
      spec.blocks.push_back(analysis::CovBlock{
          "minikv", boff, static_cast<uint32_t>(blk.size)});
    }
  }
  const melf::Symbol* disp = proto->find_symbol("dispatch_command");
  const melf::Section* text = proto->section(melf::SectionKind::kText);
  for (uint64_t off = disp->value; off < disp->value + disp->size;) {
    size_t avail = std::min<size_t>(isa::kMaxInstrLength,
                                    text->offset + text->size - off);
    auto ins = isa::try_decode(std::span<const uint8_t>(
        text->bytes.data() + (off - text->offset), avail));
    if (!ins) break;
    if (ins->op == isa::Op::kCall && ins->target(off) == handler->value) {
      spec.blocks.push_back(analysis::CovBlock{"minikv", off, ins->length});
    }
    off += ins->length;
  }
  spec.redirect_module = "minikv";
  spec.redirect_offset = proto->find_symbol("dispatch_err")->value;

  // Park the fleet (no ip stranded mid-call at a cut entry), then disable
  // SET on the first half. The DynaCut objects stay alive for the window.
  for (bool all = false; !all;) {
    all = true;
    for (int pid : pids) {
      if (vos.process(pid)->state == os::Process::State::kRunnable) {
        all = false;
      }
    }
    if (!all) vos.run(500);
  }
  const int half = fleet / 2;
  std::vector<std::unique_ptr<core::DynaCut>> cuts;
  for (int i = 0; i < half; ++i) {
    cuts.push_back(std::make_unique<core::DynaCut>(vos, pids[i],
                                                   fleet_cost_model()));
    cuts.back()->disable_feature(
        {.feature = spec,
         .removal = core::RemovalPolicy::kBlockFirstByte,
         .trap = core::TrapPolicy::kRedirect,
         .mechanism = mech});
  }

  std::vector<FleetConn> conns(static_cast<size_t>(fleet));
  for (int i = 0; i < fleet; ++i) {
    conns[static_cast<size_t>(i)].conn =
        vos.connect(static_cast<uint16_t>(kProbeBasePort + i));
  }

  // Warm-up: let the charged rewrite windows expire and land one probe on
  // every connection so the measured slices see only steady-state denials.
  vos.run_ticks(8 * kSlice);
  for (auto& fc : conns) {
    fc.conn.send("SET k v\n");
    fc.sent_at = vos.now();
    fc.in_flight = true;
  }
  for (int s = 0; s < 16; ++s) {
    vos.run_ticks(kSlice);
    bool pending = false;
    for (auto& fc : conns) {
      if (fc.in_flight && !fc.conn.recv_line().empty()) fc.in_flight = false;
      pending |= fc.in_flight;
    }
    if (!pending) break;
  }

  std::vector<uint64_t> denied_lat;
  const uint64_t traps0 = vos.total_sigtraps();
  for (int s = 0; s < slices; ++s) {
    for (auto& fc : conns) {
      if (!fc.in_flight) {
        fc.conn.send("SET k v\n");
        fc.sent_at = vos.now();
        fc.in_flight = true;
      }
    }
    vos.run_ticks(kSlice);
    for (size_t i = 0; i < conns.size(); ++i) {
      auto& fc = conns[i];
      if (!fc.in_flight) continue;
      std::string line = fc.conn.recv_line();
      if (line.empty()) continue;
      fc.in_flight = false;
      if (i < static_cast<size_t>(half)) {
        if (line.rfind("-ERR", 0) == 0) {
          ++out.denied;
          denied_lat.push_back(vos.now() - fc.sent_at);
        }
      } else if (line.rfind("+OK", 0) == 0) {
        ++out.served;
      }
    }
  }
  out.sigtraps = vos.total_sigtraps() - traps0;
  out.denied_lat = percentiles(std::move(denied_lat));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool light = false;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--light") == 0) light = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::banner(
      "Fleet bench (fig8 fleet mode): multi-core osim scaling, rolling\n"
      "DynaCut toggle across a 112-process minikv fleet, same-seed\n"
      "determinism, and a spawn storm forked from one customized image.");

  int failures = 0;

  // --- Phase 1: scaling ----------------------------------------------------
  const uint64_t scale_window = light ? 600'000 : 2'000'000;
  const int scale_pairs = 12;
  std::vector<ScalePoint> scaling;
  for (size_t cores : light ? std::vector<size_t>{1, 4}
                            : std::vector<size_t>{1, 2, 4, 8}) {
    scaling.push_back(run_scaling(cores, scale_window, scale_pairs));
  }
  std::printf("\n%8s %14s %14s %16s\n", "cores", "steps", "vticks",
              "steps/vtick");
  double base_rate = 0.0, four_rate = 0.0;
  for (const auto& p : scaling) {
    if (p.cores == 1) base_rate = p.steps_per_vtick();
    if (p.cores == 4) four_rate = p.steps_per_vtick();
    std::printf("%8zu %14" PRIu64 " %14" PRIu64 " %16.3f\n", p.cores, p.steps,
                p.vticks, p.steps_per_vtick());
  }
  const double scaling_x = base_rate > 0 ? four_rate / base_rate : 0.0;
  std::printf("scaling at 4 cores: %.2fx over 1 core\n", scaling_x);
  if (scaling_x < 3.0) {
    std::printf("FAIL: aggregate steps/vtick at 4 cores below the 3x gate\n");
    ++failures;
  }

  // --- Phase 2: rolling toggle ----------------------------------------------
  const int toggles = light ? 24 : kFleetSize;
  ToggleResult tg = run_toggle(/*cores=*/4, toggles);
  if (!tg.ok) {
    std::printf("FAIL: %s\n", tg.why.c_str());
    ++failures;
  } else {
    std::printf(
        "\nfleet of %d servers, %d toggles rolled; %zu requests in window\n",
        kFleetSize, tg.toggles, tg.window.n);
    std::printf("steady: p50 %" PRIu64 " p99 %" PRIu64 " max %" PRIu64
                " ticks, %.1f replies/slice\n",
                tg.steady.p50, tg.steady.p99, tg.steady.max, tg.steady_rate);
    std::printf("toggle window: p50 %" PRIu64 " p99 %" PRIu64 " max %" PRIu64
                " ticks, %.1f replies/slice (min step ratio %.2f)\n",
                tg.window.p50, tg.window.p99, tg.window.max, tg.window_rate,
                tg.min_step_ratio);
    std::printf("largest charged rewrite window: %.3f virtual ms\n",
                tg.max_downtime_ns / 1e6);
    // The frozen victims are < 1% of in-window requests, so a healthy p99
    // sits at the poll quantum; 3 slices of slack absorbs boundary effects.
    if (tg.window.p99 > 3 * kSlice) {
      std::printf("FAIL: toggle-window p99 %" PRIu64
                  " exceeds 3 poll slices (%" PRIu64 ") — tail not bounded\n",
                  tg.window.p99, 3 * kSlice);
      ++failures;
    }
    if (tg.window_rate < 0.5 * tg.steady_rate) {
      std::printf("FAIL: toggle-window throughput %.1f below 0.5x steady %.1f "
                  "— global stall\n",
                  tg.window_rate, tg.steady_rate);
      ++failures;
    }
    if (tg.min_step_ratio < 0.9) {
      std::printf("FAIL: a toggle step saw only %.2f of the fleet serving\n",
                  tg.min_step_ratio);
      ++failures;
    }
    // Sanity: the frozen server really did stall for its rewrite window —
    // otherwise the tail gates above test nothing.
    if (tg.window.max < kSlice * 2) {
      std::printf("FAIL: max in-window latency %" PRIu64
                  " shows no frozen request at all\n",
                  tg.window.max);
      ++failures;
    }
  }

  // --- Phase 3: determinism --------------------------------------------------
  auto proto = apps::build_minikv(kFleetBasePort, kFleetHeapKb);
  bench::ServerPhases undesired = bench::profile_server(
      proto, kFleetBasePort, {"SET k v\n", "GET k\n", "PING\n"});
  bench::ServerPhases wanted = bench::profile_server(
      proto, kFleetBasePort,
      {"SETRANGE k 0 hello\n", "GET k\n", "GET miss\n", "PING\n", "DEL k\n"});
  core::FeatureSpec det_spec;
  det_spec.name = "SET";
  det_spec.blocks = analysis::feature_diff({undesired.serving_log},
                                           {wanted.serving_log}, "minikv")
                        .blocks();
  det_spec.redirect_module = "minikv";
  det_spec.redirect_offset = proto->find_symbol("dispatch_err")->value;

  const uint64_t det_window = light ? 400'000 : 1'500'000;
  DetRun a = run_deterministic(det_spec, det_window);
  DetRun b = run_deterministic(det_spec, det_window);
  std::printf("\ndeterminism: run A retired %" PRIu64 " (digest %016" PRIx64
              ", %" PRIu64 " events), run B retired %" PRIu64
              " (digest %016" PRIx64 ", %" PRIu64 " events)\n",
              a.total_retired, a.digest, a.events, b.total_retired, b.digest,
              b.events);
  const bool det_ok = a.total_retired == b.total_retired &&
                      a.per_core_retired == b.per_core_retired &&
                      a.digest == b.digest && a.events == b.events;
  if (!det_ok) {
    std::printf("FAIL: same-seed runs diverged\n");
    ++failures;
  }

  // --- Phase 4: spawn storm --------------------------------------------------
  const int storm_workers = light ? 24 : 100;
  StormResult st = run_storm(det_spec, storm_workers);
  StormResult st2 = run_storm(det_spec, storm_workers);
  if (!st.ok) {
    std::printf("FAIL: %s\n", st.why.c_str());
    ++failures;
  } else {
    std::printf(
        "\nspawn storm: %d workers forked from one customized image\n",
        st.workers);
    std::printf(
        "  fleet logical %.2f MB, resident %.2f MB (image %.2f MB) — "
        "dedup %.1fx, per-worker delta %.1f pages\n",
        st.fleet_logical_bytes / 1048576.0, st.fleet_resident_bytes / 1048576.0,
        st.image_logical_bytes / 1048576.0, st.dedup_ratio,
        st.fleet_resident_bytes <= st.image_logical_bytes
            ? 0.0
            : static_cast<double>(st.fleet_resident_bytes -
                                  st.image_logical_bytes) /
                  (kPageSize * st.workers));
    std::printf("  spawn_from_image %.0f ns/worker vs full replay %.0f "
                "ns/worker (host time)\n",
                st.mean_spawn_ns, st.mean_replay_ns);
    std::printf("  %zu/%d workers answered PING\n", st.pings_answered,
                st.workers);
    if (st.pings_answered != static_cast<size_t>(st.workers)) {
      std::printf("FAIL: not every spawned worker served a request\n");
      ++failures;
    }
    const uint64_t resid_cap =
        st.image_logical_bytes +
        static_cast<uint64_t>(st.workers + 1) * kDeltaCapPages * kPageSize;
    if (st.fleet_resident_bytes > resid_cap) {
      std::printf("FAIL: fleet resident %" PRIu64 " exceeds O(1 image + "
                  "per-pid delta) cap %" PRIu64 "\n",
                  st.fleet_resident_bytes, resid_cap);
      ++failures;
    }
    if (st.dedup_ratio < 3.0) {
      std::printf("FAIL: dedup ratio %.2f below the 3x gate\n",
                  st.dedup_ratio);
      ++failures;
    }
    if (st.mean_spawn_ns >= st.mean_replay_ns) {
      std::printf("FAIL: spawn_from_image (%.0f ns) not faster than full "
                  "replay (%.0f ns)\n",
                  st.mean_spawn_ns, st.mean_replay_ns);
      ++failures;
    }
    const bool storm_det = st.total_retired == st2.total_retired &&
                           st.digest == st2.digest && st.events == st2.events;
    std::printf("  same-seed storm runs: retired %" PRIu64 "/%" PRIu64
                ", digest %016" PRIx64 "/%016" PRIx64 " — %s\n",
                st.total_retired, st2.total_retired, st.digest, st2.digest,
                storm_det ? "identical" : "DIVERGED");
    if (!storm_det) {
      std::printf("FAIL: same-seed storm runs diverged\n");
      ++failures;
    }
  }

  // --- Phase 5: probe storm ---------------------------------------------------
  const int probe_fleet = light ? 24 : kFleetSize;
  const int probe_slices = 8;
  ProbeResult pt = run_probe(probe_fleet, core::CutMechanism::kTrap,
                             probe_slices);
  ProbeResult ps = run_probe(probe_fleet, core::CutMechanism::kStub,
                             probe_slices);
  if (!pt.ok || !ps.ok) {
    std::printf("FAIL: %s%s\n", pt.why.c_str(), ps.why.c_str());
    ++failures;
  } else {
    std::printf(
        "\nprobe storm: %d servers, SET disabled on %d, one disabled-feature "
        "probe per request\n",
        probe_fleet, probe_fleet / 2);
    std::printf("  trap: %zu denied (p50 %" PRIu64 " p99 %" PRIu64
                " ticks), %zu served, %" PRIu64 " SIGTRAPs\n",
                pt.denied, pt.denied_lat.p50, pt.denied_lat.p99, pt.served,
                pt.sigtraps);
    std::printf("  stub: %zu denied (p50 %" PRIu64 " p99 %" PRIu64
                " ticks), %zu served, %" PRIu64 " SIGTRAPs\n",
                ps.denied, ps.denied_lat.p50, ps.denied_lat.p99, ps.served,
                ps.sigtraps);
    const size_t floor = static_cast<size_t>(probe_fleet / 2) *
                         (static_cast<size_t>(probe_slices) - 1);
    if (pt.denied < floor || ps.denied < floor) {
      std::printf("FAIL: denied-probe count below the serving floor %zu\n",
                  floor);
      ++failures;
    }
    if (pt.served < floor || ps.served < floor) {
      std::printf("FAIL: enabled half stopped serving during the probes\n");
      ++failures;
    }
    if (pt.sigtraps < pt.denied) {
      std::printf("FAIL: trap run delivered %" PRIu64
                  " SIGTRAPs for %zu denied probes\n",
                  pt.sigtraps, pt.denied);
      ++failures;
    }
    if (ps.sigtraps != 0) {
      std::printf("FAIL: stub run still delivered %" PRIu64 " SIGTRAPs\n",
                  ps.sigtraps);
      ++failures;
    }
    if (ps.denied_lat.p99 > pt.denied_lat.p99) {
      std::printf("FAIL: stub denied-probe p99 %" PRIu64
                  " exceeds the trap run's %" PRIu64 "\n",
                  ps.denied_lat.p99, pt.denied_lat.p99);
      ++failures;
    }
  }

  // --- JSON -------------------------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"light\": " << (light ? "true" : "false")
       << ",\n  \"scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const auto& p = scaling[i];
    json << "    {\"cores\": " << p.cores << ", \"steps\": " << p.steps
         << ", \"vticks\": " << p.vticks
         << ", \"steps_per_vtick\": " << p.steps_per_vtick() << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"scaling_4c_over_1c\": " << scaling_x
       << ",\n  \"toggle\": {\n    \"fleet\": " << kFleetSize
       << ",\n    \"connections\": " << tg.connections
       << ",\n    \"toggles\": " << tg.toggles
       << ",\n    \"requests_in_window\": " << tg.window.n
       << ",\n    \"steady_p50_ticks\": " << tg.steady.p50
       << ",\n    \"steady_p99_ticks\": " << tg.steady.p99
       << ",\n    \"window_p50_ticks\": " << tg.window.p50
       << ",\n    \"window_p99_ticks\": " << tg.window.p99
       << ",\n    \"window_max_ticks\": " << tg.window.max
       << ",\n    \"steady_replies_per_slice\": " << tg.steady_rate
       << ",\n    \"window_replies_per_slice\": " << tg.window_rate
       << ",\n    \"min_step_reply_ratio\": " << tg.min_step_ratio
       << ",\n    \"max_downtime_ns\": " << tg.max_downtime_ns
       << "\n  },\n  \"determinism\": {\n    \"retired_a\": "
       << a.total_retired << ",\n    \"retired_b\": " << b.total_retired
       << ",\n    \"digest_a\": \"" << std::hex << a.digest
       << "\",\n    \"digest_b\": \"" << b.digest << "\"" << std::dec
       << ",\n    \"events_a\": " << a.events
       << ",\n    \"events_b\": " << b.events
       << ",\n    \"identical\": " << (det_ok ? "true" : "false")
       << "\n  },\n  \"storm\": {\n    \"workers\": " << st.workers
       << ",\n    \"image_logical_bytes\": " << st.image_logical_bytes
       << ",\n    \"fleet_logical_bytes\": " << st.fleet_logical_bytes
       << ",\n    \"fleet_resident_bytes\": " << st.fleet_resident_bytes
       << ",\n    \"dedup_ratio\": " << st.dedup_ratio
       << ",\n    \"mean_spawn_ns\": " << st.mean_spawn_ns
       << ",\n    \"mean_replay_ns\": " << st.mean_replay_ns
       << ",\n    \"pings_answered\": " << st.pings_answered
       << ",\n    \"retired_a\": " << st.total_retired
       << ",\n    \"retired_b\": " << st2.total_retired
       << ",\n    \"digest_a\": \"" << std::hex << st.digest
       << "\",\n    \"digest_b\": \"" << st2.digest << "\"" << std::dec
       << "\n  },\n  \"probe_storm\": {\n    \"fleet\": " << probe_fleet
       << ",\n    \"disabled\": " << probe_fleet / 2
       << ",\n    \"trap_denied\": " << pt.denied
       << ",\n    \"trap_denied_p50_ticks\": " << pt.denied_lat.p50
       << ",\n    \"trap_denied_p99_ticks\": " << pt.denied_lat.p99
       << ",\n    \"trap_sigtraps\": " << pt.sigtraps
       << ",\n    \"stub_denied\": " << ps.denied
       << ",\n    \"stub_denied_p50_ticks\": " << ps.denied_lat.p50
       << ",\n    \"stub_denied_p99_ticks\": " << ps.denied_lat.p99
       << ",\n    \"stub_sigtraps\": " << ps.sigtraps
       << "\n  },\n  \"gate_failures\": " << failures << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (failures > 0) {
    std::printf("%d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all fleet gates passed\n");
  return 0;
}
