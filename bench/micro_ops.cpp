// Microbenchmarks (google-benchmark) of DynaCut's primitive operations on
// realistically sized processes: checkpoint, restore, int3 patching, block
// wiping, library injection, trace diffing, image serialization, and static
// CFG recovery. These measure *host* wall-clock cost of the framework
// itself (the simulator substrate), complementing the virtual-time figures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/handler_lib.hpp"
#include "image/checkpoint.hpp"
#include "isa/encode.hpp"
#include "rewriter/rewriter.hpp"
#include "trace/trace.hpp"
#include "vm/exec.hpp"
#include "vm/superblock.hpp"

namespace {

using namespace dynacut;

/// A booted minikv instance reused across iterations.
struct KvFixture {
  os::Os vos;
  int pid;

  KvFixture() {
    pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
    bench::run_until(vos,
                     [&] { return vos.has_listener(apps::kMinikvPort); });
  }
};

KvFixture& fixture() {
  static KvFixture fx;
  return fx;
}

void BM_Checkpoint(benchmark::State& state) {
  KvFixture& fx = fixture();
  for (auto _ : state) {
    image::ProcessImage img =
        image::checkpoint(fx.vos, {.pid = fx.pid}).img;

    benchmark::DoNotOptimize(img.pages.size());
    fx.vos.thaw(fx.pid);
  }
  state.SetLabel("minikv, ~4MB image");
}
BENCHMARK(BM_Checkpoint);

void BM_CheckpointRestore(benchmark::State& state) {
  KvFixture& fx = fixture();
  for (auto _ : state) {
    image::ProcessImage img =
        image::checkpoint(fx.vos, {.pid = fx.pid}).img;

    image::restore(fx.vos, {.pid = fx.pid, .img = &img});
  }
}
BENCHMARK(BM_CheckpointRestore);

void BM_Int3PatchBlock(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, {.pid = fx.pid}).img;
  fx.vos.thaw(fx.pid);
  rw::ImageRewriter rewriter(img);
  uint64_t addr = rewriter.symbol_addr("minikv", "cmd_set");
  for (auto _ : state) {
    rw::PatchRecord rec = rewriter.block_first_byte(addr);
    rewriter.undo(rec);
  }
}
BENCHMARK(BM_Int3PatchBlock);

void BM_WipeBlock64(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, {.pid = fx.pid}).img;
  fx.vos.thaw(fx.pid);
  rw::ImageRewriter rewriter(img);
  uint64_t addr = rewriter.symbol_addr("minikv", "cmd_set");
  for (auto _ : state) {
    rw::PatchRecord rec = rewriter.wipe(addr, 64);
    rewriter.undo(rec);
  }
}
BENCHMARK(BM_WipeBlock64);

void BM_InjectHandlerLibrary(benchmark::State& state) {
  KvFixture& fx = fixture();
  auto lib = core::build_redirect_lib(256);
  for (auto _ : state) {
    state.PauseTiming();
    image::ProcessImage img = image::checkpoint(fx.vos, {.pid = fx.pid}).img;
    fx.vos.thaw(fx.pid);
    rw::ImageRewriter rewriter(img);
    state.ResumeTiming();
    benchmark::DoNotOptimize(rewriter.inject_library(lib));
  }
}
BENCHMARK(BM_InjectHandlerLibrary);

void BM_ImageEncodeDecode(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, {.pid = fx.pid}).img;
  fx.vos.thaw(fx.pid);
  for (auto _ : state) {
    auto bytes = img.encode();
    image::ProcessImage back = image::ProcessImage::decode(bytes);
    benchmark::DoNotOptimize(back.pages.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(img.encode().size()));
}
BENCHMARK(BM_ImageEncodeDecode);

void BM_TraceDiff(benchmark::State& state) {
  auto kv = apps::build_minikv();
  bench::ServerPhases undesired = bench::profile_server(
      kv, apps::kMinikvPort, {"SET k v\n", "GET k\n", "PING\n"});
  bench::ServerPhases wanted = bench::profile_server(
      kv, apps::kMinikvPort,
      {"SETRANGE k 0 h\n", "GET k\n", "PING\n", "DEL k\n"});
  for (auto _ : state) {
    analysis::CoverageGraph diff = analysis::feature_diff(
        {undesired.serving_log}, {wanted.serving_log}, "minikv");
    benchmark::DoNotOptimize(diff.size());
  }
}
BENCHMARK(BM_TraceDiff);

void BM_StaticCfgRecovery(benchmark::State& state) {
  auto kv = apps::build_minikv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::total_block_count(*kv));
  }
  state.SetLabel("minikv .text");
}
BENCHMARK(BM_StaticCfgRecovery);

void BM_GuestExecution(benchmark::State& state) {
  KvFixture& fx = fixture();
  auto conn = fx.vos.connect(apps::kMinikvPort);
  for (auto _ : state) {
    conn.send("PING\n");
    bench::run_until(fx.vos, [&] { return conn.pending() > 0; });
    benchmark::DoNotOptimize(conn.recv_all());
  }
  state.SetLabel("one PING round-trip");
}
BENCHMARK(BM_GuestExecution);

// ---------------------------------------------------------------------------
// --vm_steps mode: raw guest execution throughput (steps/sec) across the
// three execution engines — bare interpreter, decode cache, superblock
// (fused-trace) cache — over a serving-style arithmetic loop, the workload
// where fetch/decode/dispatch elision shows up undiluted by syscalls or
// I/O. Gates CI on the superblock engine clearing >=3x over the decode
// cache (ROADMAP open item 1).
// ---------------------------------------------------------------------------

constexpr double kSbGateSpeedup = 3.0;

// Each engine is timed best-of-N with fresh caches per repetition:
// background load on a shared CI runner only ever slows a run down, so the
// max over repetitions is the least-noisy throughput estimate, and the
// gate ratio compares engines at their respective bests.
constexpr int kVmStepsReps = 3;

struct VmStepsReport {
  uint64_t steps = 0;
  double off_steps_per_sec = 0;
  double on_steps_per_sec = 0;
  double sb_steps_per_sec = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cached_pages = 0;
  uint64_t sb_builds = 0;
  uint64_t sb_retires = 0;
  uint64_t sb_entries = 0;
  uint64_t sb_instrs = 0;
};

constexpr uint64_t kVmCodeBase = 0x1000;

/// Builds the benchmark guest: a loop of ~60 register-register ALU ops, a
/// counter increment, and a conditional back-edge; a TRAP byte terminates.
void build_vm_loop(vm::AddressSpace& mem, vm::Cpu& cpu) {
  std::vector<uint8_t> code;
  isa::Encoder e(code);
  const size_t loop_top = e.offset();
  for (int i = 0; i < 40; ++i) {
    e.add_rr(1, 2);
    e.xor_rr(3, 4);
    e.sub_rr(5, 6);
  }
  e.add_ri(0, 1);
  e.cmp_ri(0, INT32_MAX);  // never reached within any realistic budget
  const size_t back = e.branch(isa::Op::kJlt, 0);
  e.patch_rel32(back, static_cast<int32_t>(loop_top - (back + 5)));
  e.trap();

  mem.map(kVmCodeBase, page_ceil(code.size()), kProtRead | kProtExec,
          "bench:.text");
  mem.poke_bytes(kVmCodeBase, code);
  cpu = vm::Cpu{};
  cpu.ip = kVmCodeBase;
}

double measure_steps_per_sec(uint64_t steps, vm::DecodeCache* cache,
                             vm::SuperblockCache* sbc = nullptr) {
  vm::AddressSpace mem;
  vm::Cpu cpu;
  build_vm_loop(mem, cpu);

  const auto t0 = std::chrono::steady_clock::now();
  uint64_t retired = 0;
  if (cache != nullptr || sbc != nullptr) {
    while (retired < steps) {
      uint64_t n = 0;
      vm::StepResult r =
          vm::run_block(mem, cpu, cache, sbc, steps - retired, n);
      retired += n;
      if (r.kind != vm::StepKind::kOk) break;  // unexpected: trap/fault
    }
  } else {
    while (retired < steps) {
      vm::StepResult r = vm::step(mem, cpu);
      ++retired;
      if (r.kind != vm::StepKind::kOk) break;
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(retired) / dt.count();
}

int run_vm_steps(uint64_t steps, const std::string& out_path) {
  VmStepsReport rep;
  rep.steps = steps;
  for (int i = 0; i < kVmStepsReps; ++i) {
    const double s = measure_steps_per_sec(steps, nullptr);
    if (s > rep.off_steps_per_sec) rep.off_steps_per_sec = s;
  }
  for (int i = 0; i < kVmStepsReps; ++i) {
    vm::DecodeCache cache;
    const double s = measure_steps_per_sec(steps, &cache);
    // Cache behavior is deterministic per run (fresh cache, identical
    // guest), so the stats are identical across repetitions; keep the
    // best rep's for the report.
    if (s > rep.on_steps_per_sec) {
      rep.on_steps_per_sec = s;
      rep.cache_hits = cache.hits();
      rep.cache_misses = cache.misses();
      rep.cache_invalidations = cache.invalidations();
      rep.cached_pages = cache.cached_pages();
    }
  }
  // Superblock row: decode cache underneath (it serves the cold instructions
  // before the trace goes hot), fused-trace dispatch on top — the engine
  // stack the OS scheduler runs.
  for (int i = 0; i < kVmStepsReps; ++i) {
    vm::DecodeCache sb_dcache;
    vm::SuperblockCache sbcache;
    const double s = measure_steps_per_sec(steps, &sb_dcache, &sbcache);
    if (s > rep.sb_steps_per_sec) {
      rep.sb_steps_per_sec = s;
      rep.sb_builds = sbcache.builds();
      rep.sb_retires = sbcache.retires();
      rep.sb_entries = sbcache.entries();
      rep.sb_instrs = sbcache.sb_instrs();
    }
  }
  const double speedup = rep.on_steps_per_sec / rep.off_steps_per_sec;
  const double sb_speedup = rep.sb_steps_per_sec / rep.off_steps_per_sec;
  const double sb_vs_cache = rep.sb_steps_per_sec / rep.on_steps_per_sec;
  const bool pass = sb_vs_cache >= kSbGateSpeedup;

  std::printf("vm_steps: %llu instructions/run\n",
              static_cast<unsigned long long>(rep.steps));
  std::printf("  interpreter: %.3e steps/sec\n", rep.off_steps_per_sec);
  std::printf("  decode cache: %.3e steps/sec (%.2fx)\n",
              rep.on_steps_per_sec, speedup);
  std::printf("  superblock:  %.3e steps/sec (%.2fx, %.2fx vs cache)\n",
              rep.sb_steps_per_sec, sb_speedup, sb_vs_cache);
  std::printf("  cache: %llu hits, %llu misses, %llu invalidations, "
              "%llu pages\n",
              static_cast<unsigned long long>(rep.cache_hits),
              static_cast<unsigned long long>(rep.cache_misses),
              static_cast<unsigned long long>(rep.cache_invalidations),
              static_cast<unsigned long long>(rep.cached_pages));
  std::printf("  superblocks: %llu built, %llu retired, %llu entries, "
              "%llu instrs in-trace\n",
              static_cast<unsigned long long>(rep.sb_builds),
              static_cast<unsigned long long>(rep.sb_retires),
              static_cast<unsigned long long>(rep.sb_entries),
              static_cast<unsigned long long>(rep.sb_instrs));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"vm_steps\",\n"
      << "  \"steps\": " << rep.steps << ",\n"
      << "  \"cache_off_steps_per_sec\": " << rep.off_steps_per_sec << ",\n"
      << "  \"cache_on_steps_per_sec\": " << rep.on_steps_per_sec << ",\n"
      << "  \"sb_steps_per_sec\": " << rep.sb_steps_per_sec << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"sb_speedup\": " << sb_speedup << ",\n"
      << "  \"sb_speedup_vs_cache\": " << sb_vs_cache << ",\n"
      << "  \"cache_hits\": " << rep.cache_hits << ",\n"
      << "  \"cache_misses\": " << rep.cache_misses << ",\n"
      << "  \"cache_invalidations\": " << rep.cache_invalidations << ",\n"
      << "  \"cached_pages\": " << rep.cached_pages << ",\n"
      << "  \"sb_builds\": " << rep.sb_builds << ",\n"
      << "  \"sb_retires\": " << rep.sb_retires << ",\n"
      << "  \"sb_entries\": " << rep.sb_entries << ",\n"
      << "  \"sb_instrs\": " << rep.sb_instrs << ",\n"
      << "  \"gate_min_sb_speedup\": " << kSbGateSpeedup << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: superblock engine did not clear the %.0fx gate over "
                 "the decode cache (got %.2fx)\n",
                 kSbGateSpeedup, sb_vs_cache);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --ckpt_pages mode: freeze-window comparison of the full checkpoint/restore
// cycle against the incremental one (dirty-only dump + in-place delta
// restore) on a minikv instance grown to N populated pages — the fig8 Redis
// workload at dataset scale. Gates CI on a >=5x freeze-window reduction.
// ---------------------------------------------------------------------------

constexpr double kCkptGateSpeedup = 5.0;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int run_ckpt_bench(uint64_t extra_pages, const std::string& out_path) {
  constexpr int kCycles = 5;
  constexpr uint64_t kDirtyPages = 16;  // per-cycle guest working set

  os::Os vos;
  int pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
  bench::run_until(vos, [&] { return vos.has_listener(apps::kMinikvPort); });

  // Grow the image to a realistic dataset size: one anonymous region,
  // every page touched so the dump actually captures it.
  os::Process* p = vos.process(pid);
  uint64_t heap = p->mem.find_free(0x10000, extra_pages * kPageSize);
  p->mem.map(heap, extra_pages * kPageSize, kProtRead | kProtWrite,
             "heap:bench");
  for (uint64_t i = 0; i < extra_pages; ++i) {
    p->mem.poke(heap + i * kPageSize, &i, sizeof(i));
  }

  auto dirty_working_set = [&] {
    for (uint64_t i = 0; i < kDirtyPages && i < extra_pages; ++i) {
      uint64_t v = i + 1;
      vos.process(pid)->mem.poke(heap + i * kPageSize, &v, sizeof(v));
    }
  };

  // Full cycles: every page dumped, whole address space rebuilt.
  image::CkptStats full_ckpt;
  image::RestoreStats full_rst;
  auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kCycles; ++k) {
    dirty_working_set();
    auto [img, st] = image::checkpoint(vos, {.pid = pid});
    full_ckpt = st;
    full_rst = image::restore(
        vos, {.pid = pid, .img = &img, .mode = image::RestoreMode::kFull});
  }
  double full_host_s = seconds_since(t0) / kCycles;

  // Seed the baseline (one more full dump), then incremental cycles: the
  // dump shares everything but the working set, the restore reconciles in
  // place. The baseline is not refreshed, so each cycle sees the same
  // dirty set — a steady-state toggle.
  image::ProcessImage base_img = image::checkpoint(vos, {.pid = pid}).img;
  image::Baseline baseline{base_img, vos.mem_epoch(pid)};
  image::restore(vos, {.pid = pid, .img = &base_img});

  image::CkptStats delta_ckpt;
  image::RestoreStats delta_rst;
  t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < kCycles; ++k) {
    dirty_working_set();
    auto [img, st] =
        image::checkpoint(vos, {.pid = pid, .baseline = &baseline});
    delta_ckpt = st;
    delta_rst = image::restore(
        vos, {.pid = pid, .img = &img, .mode = image::RestoreMode::kDelta});
  }
  double delta_host_s = seconds_since(t0) / kCycles;

  // The virtual-clock freeze window (what fig6/fig8 charge the guest).
  core::CostModel m;
  double full_freeze_s =
      (m.checkpoint_cost(full_ckpt.pages_total) +
       m.restore_cost(full_rst.pages_total)) /
      1e9;
  double delta_freeze_s = (m.checkpoint_delta_cost(delta_ckpt.pages_dumped) +
                           m.restore_delta_cost(delta_rst.pages_restored)) /
                          1e9;

  // The gate is on the freeze window — the virtual-time service
  // interruption the guest observes (the paper's metric). Host wall-clock
  // must merely not regress: the delta cycle still pays an O(pages)
  // refcount-bump copy of the baseline page table, so its host win is
  // bounded by map-node vs page-copy cost, not by the dirty ratio.
  double host_speedup = full_host_s / delta_host_s;
  double virtual_speedup = full_freeze_s / delta_freeze_s;
  bool pass = delta_ckpt.incremental && delta_ckpt.pages_dumped > 0 &&
              virtual_speedup >= kCkptGateSpeedup && host_speedup > 1.0;

  std::printf("ckpt_pages: minikv + %llu-page heap, %d cycles, %llu dirty "
              "pages/cycle\n",
              static_cast<unsigned long long>(extra_pages), kCycles,
              static_cast<unsigned long long>(kDirtyPages));
  std::printf("  full:  %.3f ms/cycle host, %.3f s freeze window, "
              "%llu pages dumped\n",
              full_host_s * 1e3, full_freeze_s,
              static_cast<unsigned long long>(full_ckpt.pages_dumped));
  std::printf("  delta: %.3f ms/cycle host, %.3f s freeze window, "
              "%llu pages dumped, %llu shared\n",
              delta_host_s * 1e3, delta_freeze_s,
              static_cast<unsigned long long>(delta_ckpt.pages_dumped),
              static_cast<unsigned long long>(delta_ckpt.pages_shared));
  std::printf("  speedup: %.1fx host, %.1fx freeze window (gate: freeze "
              ">=%.0fx, host >1x)\n",
              host_speedup, virtual_speedup, kCkptGateSpeedup);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"ckpt_delta\",\n"
      << "  \"pages_total\": " << full_ckpt.pages_total << ",\n"
      << "  \"dirty_pages_per_cycle\": " << kDirtyPages << ",\n"
      << "  \"full_host_s_per_cycle\": " << full_host_s << ",\n"
      << "  \"full_freeze_s\": " << full_freeze_s << ",\n"
      << "  \"full_pages_dumped\": " << full_ckpt.pages_dumped << ",\n"
      << "  \"delta_host_s_per_cycle\": " << delta_host_s << ",\n"
      << "  \"delta_freeze_s\": " << delta_freeze_s << ",\n"
      << "  \"delta_pages_dumped\": " << delta_ckpt.pages_dumped << ",\n"
      << "  \"delta_pages_shared\": " << delta_ckpt.pages_shared << ",\n"
      << "  \"delta_pages_restored\": " << delta_rst.pages_restored << ",\n"
      << "  \"host_speedup\": " << host_speedup << ",\n"
      << "  \"virtual_speedup\": " << virtual_speedup << ",\n"
      << "  \"gate_min_speedup\": " << kCkptGateSpeedup << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: incremental checkpoint/restore did not clear the "
                 "%.0fx freeze-window gate\n",
                 kCkptGateSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t vm_steps = 0;
  std::string vm_out = "BENCH_vm.json";
  bool vm_mode = false;
  uint64_t ckpt_pages = 0;
  std::string ckpt_out = "BENCH_ckpt.json";
  bool ckpt_mode = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--vm_steps") == 0) {
      vm_mode = true;
      vm_steps = 4'000'000;
    } else if (std::strncmp(a, "--vm_steps=", 11) == 0) {
      vm_mode = true;
      vm_steps = std::stoull(a + 11);
    } else if (std::strncmp(a, "--vm_out=", 9) == 0) {
      vm_out = a + 9;
    } else if (std::strcmp(a, "--ckpt_pages") == 0) {
      ckpt_mode = true;
      ckpt_pages = 4096;
    } else if (std::strncmp(a, "--ckpt_pages=", 13) == 0) {
      ckpt_mode = true;
      ckpt_pages = std::stoull(a + 13);
    } else if (std::strncmp(a, "--ckpt_out=", 11) == 0) {
      ckpt_out = a + 11;
    }
  }
  if (vm_mode) return run_vm_steps(vm_steps, vm_out);
  if (ckpt_mode) return run_ckpt_bench(ckpt_pages, ckpt_out);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
