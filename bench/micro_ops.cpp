// Microbenchmarks (google-benchmark) of DynaCut's primitive operations on
// realistically sized processes: checkpoint, restore, int3 patching, block
// wiping, library injection, trace diffing, image serialization, and static
// CFG recovery. These measure *host* wall-clock cost of the framework
// itself (the simulator substrate), complementing the virtual-time figures.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "bench_common.hpp"
#include "core/handler_lib.hpp"
#include "image/checkpoint.hpp"
#include "isa/encode.hpp"
#include "rewriter/rewriter.hpp"
#include "trace/trace.hpp"
#include "vm/exec.hpp"

namespace {

using namespace dynacut;

/// A booted minikv instance reused across iterations.
struct KvFixture {
  os::Os vos;
  int pid;

  KvFixture() {
    pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
    bench::run_until(vos,
                     [&] { return vos.has_listener(apps::kMinikvPort); });
  }
};

KvFixture& fixture() {
  static KvFixture fx;
  return fx;
}

void BM_Checkpoint(benchmark::State& state) {
  KvFixture& fx = fixture();
  for (auto _ : state) {
    image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
    benchmark::DoNotOptimize(img.pages.size());
    fx.vos.thaw(fx.pid);
  }
  state.SetLabel("minikv, ~4MB image");
}
BENCHMARK(BM_Checkpoint);

void BM_CheckpointRestore(benchmark::State& state) {
  KvFixture& fx = fixture();
  for (auto _ : state) {
    image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
    image::restore(fx.vos, fx.pid, img);
  }
}
BENCHMARK(BM_CheckpointRestore);

void BM_Int3PatchBlock(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
  fx.vos.thaw(fx.pid);
  rw::ImageRewriter rewriter(img);
  uint64_t addr = rewriter.symbol_addr("minikv", "cmd_set");
  for (auto _ : state) {
    rw::PatchRecord rec = rewriter.block_first_byte(addr);
    rewriter.undo(rec);
  }
}
BENCHMARK(BM_Int3PatchBlock);

void BM_WipeBlock64(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
  fx.vos.thaw(fx.pid);
  rw::ImageRewriter rewriter(img);
  uint64_t addr = rewriter.symbol_addr("minikv", "cmd_set");
  for (auto _ : state) {
    rw::PatchRecord rec = rewriter.wipe(addr, 64);
    rewriter.undo(rec);
  }
}
BENCHMARK(BM_WipeBlock64);

void BM_InjectHandlerLibrary(benchmark::State& state) {
  KvFixture& fx = fixture();
  auto lib = core::build_redirect_lib(256);
  for (auto _ : state) {
    state.PauseTiming();
    image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
    fx.vos.thaw(fx.pid);
    rw::ImageRewriter rewriter(img);
    state.ResumeTiming();
    benchmark::DoNotOptimize(rewriter.inject_library(lib));
  }
}
BENCHMARK(BM_InjectHandlerLibrary);

void BM_ImageEncodeDecode(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
  fx.vos.thaw(fx.pid);
  for (auto _ : state) {
    auto bytes = img.encode();
    image::ProcessImage back = image::ProcessImage::decode(bytes);
    benchmark::DoNotOptimize(back.pages.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(img.encode().size()));
}
BENCHMARK(BM_ImageEncodeDecode);

void BM_TraceDiff(benchmark::State& state) {
  auto kv = apps::build_minikv();
  bench::ServerPhases undesired = bench::profile_server(
      kv, apps::kMinikvPort, {"SET k v\n", "GET k\n", "PING\n"});
  bench::ServerPhases wanted = bench::profile_server(
      kv, apps::kMinikvPort,
      {"SETRANGE k 0 h\n", "GET k\n", "PING\n", "DEL k\n"});
  for (auto _ : state) {
    analysis::CoverageGraph diff = analysis::feature_diff(
        {undesired.serving_log}, {wanted.serving_log}, "minikv");
    benchmark::DoNotOptimize(diff.size());
  }
}
BENCHMARK(BM_TraceDiff);

void BM_StaticCfgRecovery(benchmark::State& state) {
  auto kv = apps::build_minikv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::total_block_count(*kv));
  }
  state.SetLabel("minikv .text");
}
BENCHMARK(BM_StaticCfgRecovery);

void BM_GuestExecution(benchmark::State& state) {
  KvFixture& fx = fixture();
  auto conn = fx.vos.connect(apps::kMinikvPort);
  for (auto _ : state) {
    conn.send("PING\n");
    bench::run_until(fx.vos, [&] { return conn.pending() > 0; });
    benchmark::DoNotOptimize(conn.recv_all());
  }
  state.SetLabel("one PING round-trip");
}
BENCHMARK(BM_GuestExecution);

// ---------------------------------------------------------------------------
// --vm_steps mode: raw guest execution throughput (steps/sec), decode cache
// off vs on, over a straight-line arithmetic loop — the workload where the
// cache's fetch/decode elision shows up undiluted by syscalls or I/O.
// ---------------------------------------------------------------------------

struct VmStepsReport {
  uint64_t steps = 0;
  double off_steps_per_sec = 0;
  double on_steps_per_sec = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cached_pages = 0;
};

constexpr uint64_t kVmCodeBase = 0x1000;

/// Builds the benchmark guest: a loop of ~60 register-register ALU ops, a
/// counter increment, and a conditional back-edge; a TRAP byte terminates.
void build_vm_loop(vm::AddressSpace& mem, vm::Cpu& cpu) {
  std::vector<uint8_t> code;
  isa::Encoder e(code);
  const size_t loop_top = e.offset();
  for (int i = 0; i < 40; ++i) {
    e.add_rr(1, 2);
    e.xor_rr(3, 4);
    e.sub_rr(5, 6);
  }
  e.add_ri(0, 1);
  e.cmp_ri(0, INT32_MAX);  // never reached within any realistic budget
  const size_t back = e.branch(isa::Op::kJlt, 0);
  e.patch_rel32(back, static_cast<int32_t>(loop_top - (back + 5)));
  e.trap();

  mem.map(kVmCodeBase, page_ceil(code.size()), kProtRead | kProtExec,
          "bench:.text");
  mem.poke_bytes(kVmCodeBase, code);
  cpu = vm::Cpu{};
  cpu.ip = kVmCodeBase;
}

double measure_steps_per_sec(uint64_t steps, vm::DecodeCache* cache) {
  vm::AddressSpace mem;
  vm::Cpu cpu;
  build_vm_loop(mem, cpu);

  const auto t0 = std::chrono::steady_clock::now();
  uint64_t retired = 0;
  if (cache != nullptr) {
    while (retired < steps) {
      uint64_t n = 0;
      vm::StepResult r = vm::run_block(mem, cpu, cache, steps - retired, n);
      retired += n;
      if (r.kind != vm::StepKind::kOk) break;  // unexpected: trap/fault
    }
  } else {
    while (retired < steps) {
      vm::StepResult r = vm::step(mem, cpu);
      ++retired;
      if (r.kind != vm::StepKind::kOk) break;
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(retired) / dt.count();
}

int run_vm_steps(uint64_t steps, const std::string& out_path) {
  VmStepsReport rep;
  rep.steps = steps;
  rep.off_steps_per_sec = measure_steps_per_sec(steps, nullptr);
  vm::DecodeCache cache;
  rep.on_steps_per_sec = measure_steps_per_sec(steps, &cache);
  rep.cache_hits = cache.hits();
  rep.cache_misses = cache.misses();
  rep.cache_invalidations = cache.invalidations();
  rep.cached_pages = cache.cached_pages();
  const double speedup = rep.on_steps_per_sec / rep.off_steps_per_sec;

  std::printf("vm_steps: %llu instructions/run\n",
              static_cast<unsigned long long>(rep.steps));
  std::printf("  cache off: %.3e steps/sec\n", rep.off_steps_per_sec);
  std::printf("  cache on:  %.3e steps/sec (%.2fx)\n", rep.on_steps_per_sec,
              speedup);
  std::printf("  cache: %llu hits, %llu misses, %llu invalidations, "
              "%llu pages\n",
              static_cast<unsigned long long>(rep.cache_hits),
              static_cast<unsigned long long>(rep.cache_misses),
              static_cast<unsigned long long>(rep.cache_invalidations),
              static_cast<unsigned long long>(rep.cached_pages));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"vm_steps\",\n"
      << "  \"steps\": " << rep.steps << ",\n"
      << "  \"cache_off_steps_per_sec\": " << rep.off_steps_per_sec << ",\n"
      << "  \"cache_on_steps_per_sec\": " << rep.on_steps_per_sec << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"cache_hits\": " << rep.cache_hits << ",\n"
      << "  \"cache_misses\": " << rep.cache_misses << ",\n"
      << "  \"cache_invalidations\": " << rep.cache_invalidations << ",\n"
      << "  \"cached_pages\": " << rep.cached_pages << "\n"
      << "}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t vm_steps = 0;
  std::string vm_out = "BENCH_vm.json";
  bool vm_mode = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--vm_steps") == 0) {
      vm_mode = true;
      vm_steps = 4'000'000;
    } else if (std::strncmp(a, "--vm_steps=", 11) == 0) {
      vm_mode = true;
      vm_steps = std::stoull(a + 11);
    } else if (std::strncmp(a, "--vm_out=", 9) == 0) {
      vm_out = a + 9;
    }
  }
  if (vm_mode) return run_vm_steps(vm_steps, vm_out);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
