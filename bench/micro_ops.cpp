// Microbenchmarks (google-benchmark) of DynaCut's primitive operations on
// realistically sized processes: checkpoint, restore, int3 patching, block
// wiping, library injection, trace diffing, image serialization, and static
// CFG recovery. These measure *host* wall-clock cost of the framework
// itself (the simulator substrate), complementing the virtual-time figures.
#include <benchmark/benchmark.h>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "bench_common.hpp"
#include "core/handler_lib.hpp"
#include "image/checkpoint.hpp"
#include "rewriter/rewriter.hpp"
#include "trace/trace.hpp"

namespace {

using namespace dynacut;

/// A booted minikv instance reused across iterations.
struct KvFixture {
  os::Os vos;
  int pid;

  KvFixture() {
    pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
    bench::run_until(vos,
                     [&] { return vos.has_listener(apps::kMinikvPort); });
  }
};

KvFixture& fixture() {
  static KvFixture fx;
  return fx;
}

void BM_Checkpoint(benchmark::State& state) {
  KvFixture& fx = fixture();
  for (auto _ : state) {
    image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
    benchmark::DoNotOptimize(img.pages.size());
    fx.vos.thaw(fx.pid);
  }
  state.SetLabel("minikv, ~4MB image");
}
BENCHMARK(BM_Checkpoint);

void BM_CheckpointRestore(benchmark::State& state) {
  KvFixture& fx = fixture();
  for (auto _ : state) {
    image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
    image::restore(fx.vos, fx.pid, img);
  }
}
BENCHMARK(BM_CheckpointRestore);

void BM_Int3PatchBlock(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
  fx.vos.thaw(fx.pid);
  rw::ImageRewriter rewriter(img);
  uint64_t addr = rewriter.symbol_addr("minikv", "cmd_set");
  for (auto _ : state) {
    rw::PatchRecord rec = rewriter.block_first_byte(addr);
    rewriter.undo(rec);
  }
}
BENCHMARK(BM_Int3PatchBlock);

void BM_WipeBlock64(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
  fx.vos.thaw(fx.pid);
  rw::ImageRewriter rewriter(img);
  uint64_t addr = rewriter.symbol_addr("minikv", "cmd_set");
  for (auto _ : state) {
    rw::PatchRecord rec = rewriter.wipe(addr, 64);
    rewriter.undo(rec);
  }
}
BENCHMARK(BM_WipeBlock64);

void BM_InjectHandlerLibrary(benchmark::State& state) {
  KvFixture& fx = fixture();
  auto lib = core::build_redirect_lib(256);
  for (auto _ : state) {
    state.PauseTiming();
    image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
    fx.vos.thaw(fx.pid);
    rw::ImageRewriter rewriter(img);
    state.ResumeTiming();
    benchmark::DoNotOptimize(rewriter.inject_library(lib));
  }
}
BENCHMARK(BM_InjectHandlerLibrary);

void BM_ImageEncodeDecode(benchmark::State& state) {
  KvFixture& fx = fixture();
  image::ProcessImage img = image::checkpoint(fx.vos, fx.pid);
  fx.vos.thaw(fx.pid);
  for (auto _ : state) {
    auto bytes = img.encode();
    image::ProcessImage back = image::ProcessImage::decode(bytes);
    benchmark::DoNotOptimize(back.pages.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(img.encode().size()));
}
BENCHMARK(BM_ImageEncodeDecode);

void BM_TraceDiff(benchmark::State& state) {
  auto kv = apps::build_minikv();
  bench::ServerPhases undesired = bench::profile_server(
      kv, apps::kMinikvPort, {"SET k v\n", "GET k\n", "PING\n"});
  bench::ServerPhases wanted = bench::profile_server(
      kv, apps::kMinikvPort,
      {"SETRANGE k 0 h\n", "GET k\n", "PING\n", "DEL k\n"});
  for (auto _ : state) {
    analysis::CoverageGraph diff = analysis::feature_diff(
        {undesired.serving_log}, {wanted.serving_log}, "minikv");
    benchmark::DoNotOptimize(diff.size());
  }
}
BENCHMARK(BM_TraceDiff);

void BM_StaticCfgRecovery(benchmark::State& state) {
  auto kv = apps::build_minikv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::total_block_count(*kv));
  }
  state.SetLabel("minikv .text");
}
BENCHMARK(BM_StaticCfgRecovery);

void BM_GuestExecution(benchmark::State& state) {
  KvFixture& fx = fixture();
  auto conn = fx.vos.connect(apps::kMinikvPort);
  for (auto _ : state) {
    conn.send("PING\n");
    bench::run_until(fx.vos, [&] { return conn.pending() > 0; });
    benchmark::DoNotOptimize(conn.recv_all());
  }
  state.SetLabel("one PING round-trip");
}
BENCHMARK(BM_GuestExecution);

}  // namespace

BENCHMARK_MAIN();
