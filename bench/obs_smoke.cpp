// Observability smoke (CI gate): drives a full customization scenario —
// disable, trap hits, restore, and a fault-injected abort — with the obs
// layer attached, then checks the event-trace contract end to end:
//
//   * every JSONL line the sink wrote is valid JSON (RFC 8259 grammar),
//   * every customization is bracketed by exactly one txn.commit, or by
//     txn.abort + txn.rollback with all staged events retracted,
//   * an aborted customization leaks no rewrite.*/checkpoint.* events to
//     sinks and charges no success counters,
//   * the registry snapshot is valid JSON.
//
// Writes the combined trace + metrics to BENCH_obs.json (or --out=PATH).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"
#include "core/txn.hpp"
#include "melf/builder.hpp"
#include "obs/bus.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "obs/timeline.hpp"

namespace {

using namespace dynacut;
using core::CustomizeError;
using core::DynaCut;
using core::FaultPlan;
using core::FaultStage;
using core::FeatureSpec;
using core::RemovalPolicy;
using core::TrapPolicy;

/// A two-process guest whose workers call feat() in a loop, so a disabled
/// feature actually takes trap hits.
std::shared_ptr<const melf::Binary> guest() {
  static std::shared_ptr<const melf::Binary> bin = [] {
    namespace sys = os::sys;
    melf::ProgramBuilder b("grp");
    auto& f = b.func("feat");
    for (int i = 0; i < 64; ++i) f.nop();
    f.mov_ri(0, 7).ret();
    f.label("err").mark("feat_err").mov_ri(0, 1).ret();
    auto& m = b.func("main");
    m.sys(sys::kFork);
    m.label("loop")
        .call("feat")
        .mov_ri(1, 500)
        .sys(sys::kNanosleep)
        .jmp("loop");
    b.set_entry("main");
    return std::make_shared<melf::Binary>(b.link());
  }();
  return bin;
}

FeatureSpec feat_spec() {
  auto bin = guest();
  FeatureSpec s;
  s.name = "feat";
  s.blocks = {analysis::CovBlock{"grp", bin->find_symbol("feat")->value, 64}};
  s.redirect_module = "grp";
  s.redirect_offset = bin->find_symbol("feat_err")->value;
  return s;
}

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("!! FAIL: %s\n", what.c_str());
    ++failures;
  }
}

size_t count_prefix(const obs::RingBufferSink& ring, const char* prefix) {
  size_t n = 0;
  for (const auto& e : ring.events()) {
    if (e.type.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::banner(
      "obs smoke: event-trace contract over disable / trap / restore /\n"
      "fault-injected abort (JSONL validity, txn bracketing, retraction)");

  os::Os vos;
  int pid = vos.spawn(guest());
  vos.run(3000);

  obs::EventBus bus;
  obs::RingBufferSink ring;
  std::ostringstream jsonl;
  obs::JsonlSink jsonl_sink(jsonl);
  obs::TimelineRecorder recorder(bus);
  bus.add_sink(&ring);
  bus.add_sink(&jsonl_sink);
  vos.set_event_bus(&bus);

  obs::Registry reg;
  DynaCut dc(vos, pid, {}, core::CheckMode::kOff);
  dc.set_observer(&bus, &reg);
  const FeatureSpec spec = feat_spec();

  // --- 1. a committed disable, with trap traffic -------------------------
  auto rep = dc.disable_feature({.feature = spec,
                                 .removal = RemovalPolicy::kBlockFirstByte,
                                 .trap = TrapPolicy::kRedirect,
                                 .tags = {{"scenario", "smoke"}}});
  check(rep.obs.txn != 0, "committed disable carries a bus txn id");
  check(rep.obs.events > 0, "committed disable delivered staged events");
  check(ring.count(obs::ev::kTxnCommit) == 1, "one txn.commit after disable");
  check(count_prefix(ring, "rewrite.") > 0, "rewrite events committed");
  check(count_prefix(ring, "checkpoint.") > 0, "checkpoint events committed");

  vos.run(60'000);  // workers keep calling feat() -> redirected trap hits
  size_t trap_events = ring.count(obs::ev::kTrapHit);
  check(trap_events > 0, "trap.hit events observed after disable");
  check(reg.counter("trap.hits") == trap_events,
        "trap.hits counter matches trap.hit events");
  bool annotated = true;
  for (const obs::Event* e : ring.of_type(obs::ev::kTrapHit)) {
    annotated = annotated && e->attr_str("feature") == "feat" &&
                !e->attr_str("policy").empty();
  }
  check(annotated, "every trap.hit annotated with feature + policy");

  // --- 2. a committed restore --------------------------------------------
  dc.restore_feature("feat");
  check(ring.count(obs::ev::kTxnCommit) == 2, "one txn.commit after restore");
  check(recorder.toggles().size() == 2 && !recorder.toggles()[1].disabled,
        "timeline recorder saw disable + restore toggles");
  check(recorder.disabled_features().empty(),
        "recorder disabled-set empty after restore");

  // --- 3. a fault-injected abort: staged events must be retracted --------
  size_t rewrites_before = count_prefix(ring, "rewrite.");
  size_t checkpoints_before = count_prefix(ring, "checkpoint.");
  uint64_t commits_before = reg.counter("txn.commits");
  FaultPlan plan = FaultPlan::fail_at(FaultStage::kRestore, 0);
  dc.set_fault_plan(&plan);
  bool aborted = false;
  try {
    dc.disable_feature({.feature = spec,
                        .removal = RemovalPolicy::kBlockFirstByte,
                        .trap = TrapPolicy::kTerminate});
  } catch (const CustomizeError&) {
    aborted = true;
  }
  dc.set_fault_plan(nullptr);
  check(aborted, "injected restore fault aborted the customization");
  check(ring.count(obs::ev::kTxnAbort) == 1, "abort emitted txn.abort");
  check(ring.count(obs::ev::kTxnRollback) == 1, "abort emitted txn.rollback");
  check(count_prefix(ring, "rewrite.") == rewrites_before,
        "no rewrite event of the aborted txn reached a sink");
  check(count_prefix(ring, "checkpoint.") == checkpoints_before,
        "no checkpoint event of the aborted txn reached a sink");
  check(bus.events_retracted() > 0, "staged events were retracted");
  check(reg.counter("txn.commits") == commits_before,
        "aborted txn charged no commit counter");
  check(reg.counter("txn.aborts") == 1, "aborted txn charged txn.aborts");
  check(recorder.toggles().size() == 2,
        "aborted txn added no timeline toggle");

  // --- 4. every JSONL line and the registry snapshot are valid JSON -----
  size_t lines = 0;
  std::string line;
  std::istringstream in(jsonl.str());
  while (std::getline(in, line)) {
    ++lines;
    std::string why;
    if (!obs::json_valid(line, &why)) {
      check(false, "invalid JSONL line " + std::to_string(lines) + " (" +
                       why + "): " + line);
    }
  }
  check(lines == jsonl_sink.lines(), "sink line count matches stream");
  check(lines == bus.events_delivered(), "one JSONL line per delivered event");
  std::string snapshot = reg.snapshot_json();
  check(obs::json_valid(snapshot, nullptr), "registry snapshot is valid JSON");
  check(obs::json_valid(recorder.json(), nullptr),
        "timeline json is valid JSON");

  // --- 5. artifact --------------------------------------------------------
  std::string doc = "{\"events\":[";
  {
    std::istringstream again(jsonl.str());
    bool first = true;
    while (std::getline(again, line)) {
      if (!first) doc += ",";
      first = false;
      doc += line;
    }
  }
  doc += "],\"metrics\":";
  doc += snapshot;
  doc += ",\"timeline\":";
  doc += recorder.json();
  doc += "}";
  check(obs::json_valid(doc, nullptr), "combined artifact is valid JSON");
  std::ofstream out(out_path);
  out << doc << "\n";
  check(static_cast<bool>(out), "artifact written to " + out_path);

  std::printf(
      "%zu events delivered, %zu retracted, %zu JSONL lines validated, "
      "%zu trap hits\n",
      static_cast<size_t>(bus.events_delivered()),
      static_cast<size_t>(bus.events_retracted()), lines, trap_events);
  if (failures != 0) {
    std::printf("\n%d obs contract violation(s)\n", failures);
    return 1;
  }
  std::printf("All obs contract checks passed; artifact: %s\n",
              out_path.c_str());
  return 0;
}
