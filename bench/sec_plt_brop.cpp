// §4.2 attack-surface case study: executed-PLT-entry removal (ret2plt) and
// BROP viability after initialization-code removal.
//
// Paper results being reproduced in shape:
//   * Nginx: 43 of 56 executed PLT entries removable post-init, including
//     fork() — defeating ret2plt-to-fork and starving BROP's re-spawn
//     requirement.
//   * Lighttpd: 33 of 57 executed PLT entries removable (socket(), ...).
//   * Wiping blocks also removes ROP gadgets (measured by the scanner).
// A second phase re-cuts each hardened instance with the stub mechanism
// (callsite redirection instead of int3) and asserts the attack surface of
// the ORIGINAL modules does not grow: gadget starts stay flat-or-lower,
// denied probes take zero SIGTRAPs, and the service keeps answering.
#include <cstdio>

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "apps/minihttpd.hpp"
#include "apps/miniweb.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"
#include "isa/isa.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

int g_failures = 0;

void gate(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("!! GATE FAILED: %s\n", what.c_str());
    ++g_failures;
  }
}

/// Parks every process of the group in a blocking syscall so a cut cannot
/// land while an instruction pointer sits mid-call at a feature entry.
void park(os::Os& vos, int pid) {
  for (bool all = false; !all;) {
    all = true;
    for (int qp : vos.process_group(pid)) {
      const os::Process* q = vos.process(qp);
      if (q->state == os::Process::State::kRunnable) all = false;
    }
    if (!all) vos.run(200);
  }
}

/// Gadget surface of the original modules only — injected libdynacut_*
/// helper libraries are new code by design and excluded from the
/// "surface must not grow" comparison.
analysis::GadgetStats original_module_gadgets(const os::Os& vos, int victim) {
  analysis::GadgetStats sum;
  const os::Process* p = vos.process(victim);
  for (const auto& mod : p->modules) {
    if (mod.name.rfind("libdynacut", 0) == 0) continue;
    analysis::GadgetStats s =
        analysis::scan_gadgets(p->mem, mod.base, mod.base + mod.size);
    sum.gadget_starts += s.gadget_starts;
    sum.executable_bytes += s.executable_bytes;
  }
  return sum;
}

void study(const std::string& label, std::shared_ptr<const melf::Binary> bin,
           uint16_t port, const std::string& module, int paper_removed,
           int paper_executed, const std::string& dispatcher,
           const std::vector<std::string>& handlers,
           const std::string& err_label, const std::string& probe_req,
           const std::string& probe_deny) {
  const std::vector<std::string> reqs = {
      "GET /index\n", "HEAD /index\n", "GET /miss\n", "PUT /f x\n",
      "GET /f\n",     "DELETE /f\n",   "PATCH /x\n"};
  bench::ServerPhases phases = bench::profile_server(bin, port, reqs);
  analysis::CoverageGraph init_cov = phases.init_cov(module);
  analysis::CoverageGraph serving_cov = phases.serving_cov(module);
  analysis::PltUsage plt =
      analysis::analyze_plt(*bin, module, init_cov, serving_cov);

  std::printf("\n--- %s ---\n", label.c_str());
  std::printf(
      "PLT entries: %zu total, %zu executed, %zu executed-init-only "
      "(removable)   [paper: %d of %d]\n",
      plt.total_entries, plt.executed.size(), plt.init_only.size(),
      paper_removed, paper_executed);
  std::printf("removable entries:");
  for (const auto& e : plt.init_only) std::printf(" %s", e.c_str());
  std::printf("\nstill-live entries:");
  for (const auto& e : plt.serving) std::printf(" %s", e.c_str());
  std::printf("\n");

  // Apply: wipe init-only code AND the init-only PLT stubs on a live
  // instance; measure gadgets before/after.
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  // Measure the worker (request-facing) process where one exists.
  int victim = vos.process_group(pid).back();
  analysis::GadgetStats before =
      analysis::scan_gadgets(vos.process(victim)->mem);

  analysis::CoverageGraph to_remove = init_cov.diff(serving_cov);
  for (const auto& blk :
       analysis::plt_blocks(*bin, module, plt.init_only)) {
    to_remove.insert(blk);
  }
  core::DynaCut dc(vos, pid);
  dc.remove_init_code(to_remove, core::RemovalPolicy::kWipeBlocks);

  analysis::GadgetStats after =
      analysis::scan_gadgets(vos.process(victim)->mem);

  // ret2plt / BROP checks on live memory.
  const os::Process* p = vos.process(victim);
  const os::LoadedModule* m = p->module_named(module);
  bool fork_dead = true;
  if (auto stub = bin->plt_stub_offset("fork")) {
    uint8_t byte = 0;
    p->mem.peek(m->base + *stub, &byte, 1);
    fork_dead = byte == 0xCC;
    std::printf("fork@plt first byte after init removal: 0x%02x (%s)\n",
                byte, fork_dead ? "trapped - ret2plt to fork() defeated"
                                : "STILL LIVE");
  } else {
    std::printf("fork@plt: not imported by this app (single-process)\n");
  }
  std::printf(
      "ROP gadget starts in %s's executable memory: %llu -> %llu "
      "(-%.1f%%)\n",
      label.c_str(), (unsigned long long)before.gadget_starts,
      (unsigned long long)after.gadget_starts,
      100.0 * (1.0 - static_cast<double>(after.gadget_starts) /
                         static_cast<double>(before.gadget_starts)));

  // The server must still serve.
  auto conn = vos.connect(port);
  std::string got = bench::request(vos, conn, "GET /index\n");
  std::printf("service after hardening: GET /index -> %s", got.c_str());

  // --- Phase 2: stub-mechanism write-method cut on the hardened instance.
  // The stub lib adds executable bytes of its own, so the before/after
  // comparison is scoped to the original modules: redirecting callsites
  // must not mint new ret-reachable sequences there, and the wiped PLT
  // stubs must stay dead.
  analysis::GadgetStats pre_stub = original_module_gadgets(vos, victim);

  core::FeatureSpec spec;
  spec.name = "write-methods";
  std::set<uint64_t> entries;
  // The stub planner only redirects calls into *wholly* cut functions, and
  // it reasons at CFG-block granularity — enumerate each handler's blocks
  // rather than covering the symbol with one span.
  analysis::StaticCfg cfg = analysis::recover_cfg(*bin);
  for (const auto& h : handlers) {
    const melf::Symbol* sym = bin->find_symbol(h);
    for (const auto& [boff, blk] : cfg.blocks) {
      if (boff >= sym->value && boff < sym->value + sym->size) {
        spec.blocks.push_back(analysis::CovBlock{
            module, boff, static_cast<uint32_t>(blk.size)});
      }
    }
    entries.insert(sym->value);
  }
  // Linear-sweep the dispatcher for call sites targeting a disabled
  // handler: those blocks join the cut so the stub pass retargets them.
  const melf::Symbol* disp = bin->find_symbol(dispatcher);
  const melf::Section* text = bin->section(melf::SectionKind::kText);
  uint64_t off = disp->value;
  while (off < disp->value + disp->size) {
    size_t avail = std::min<size_t>(isa::kMaxInstrLength,
                                    text->offset + text->size - off);
    auto ins = isa::try_decode(
        std::span<const uint8_t>(text->bytes.data() + (off - text->offset),
                                 avail));
    if (!ins) break;
    if (ins->op == isa::Op::kCall && entries.count(ins->target(off))) {
      spec.blocks.push_back(
          analysis::CovBlock{module, off, ins->length});
    }
    off += ins->length;
  }
  spec.redirect_module = module;
  spec.redirect_offset = bin->find_symbol(err_label)->value;

  park(vos, pid);
  uint64_t traps_before = vos.total_sigtraps();
  core::CustomizeReport rep = dc.disable_feature(
      {.feature = spec,
       .removal = core::RemovalPolicy::kBlockFirstByte,
       .trap = core::TrapPolicy::kRedirect,
       .mechanism = core::CutMechanism::kStub});
  analysis::GadgetStats post_stub = original_module_gadgets(vos, victim);

  // Reuse the live connection: the single-threaded servers keep serving
  // the first accepted stream until it closes.
  std::string deny = bench::request(vos, conn, probe_req);
  std::string still = bench::request(vos, conn, "GET /index\n");
  uint64_t traps_delta = vos.total_sigtraps() - traps_before;

  bool plt_still_dead = true;
  if (auto stub = bin->plt_stub_offset("fork")) {
    // Re-resolve the module: injecting the stub lib grows the process's
    // module list, invalidating pointers taken before the cut.
    const os::Process* pv = vos.process(victim);
    const os::LoadedModule* mv = pv->module_named(module);
    uint8_t byte = 0;
    pv->mem.peek(mv->base + *stub, &byte, 1);
    plt_still_dead = byte == 0xCC;
  }
  std::printf(
      "stub-mechanism cut: %zu callsite(s) redirected, %zu GOT slot(s); "
      "original-module gadget starts %llu -> %llu; probe -> %s",
      static_cast<size_t>(rep.edits.callsites_stubbed),
      static_cast<size_t>(rep.edits.got_slots_stubbed),
      (unsigned long long)pre_stub.gadget_starts,
      (unsigned long long)post_stub.gadget_starts, deny.c_str());

  gate(rep.edits.callsites_stubbed >= 1,
       label + ": stub cut redirected no callsites");
  gate(post_stub.gadget_starts <= pre_stub.gadget_starts,
       label + ": stub cut grew the original-module gadget surface");
  gate(deny == probe_deny, label + ": stubbed probe not denied (got '" +
                               deny + "')");
  gate(traps_delta == 0,
       label + ": stub-denied probes still took SIGTRAPs");
  gate(plt_still_dead,
       label + ": init-wiped fork@plt came back to life under the stub cut");
  gate(still == got, label + ": service changed after the stub cut");
}

}  // namespace

int main() {
  bench::banner(
      "Security case study (paper §4.2): executed-PLT-entry removal after\n"
      "initialization (ret2plt / BROP) and gadget reduction");

  study("Nginx (miniweb)", apps::build_miniweb(), apps::kMiniwebPort,
        "miniweb", 43, 56, "dav_handler", {"do_put", "do_delete"},
        "dav_403", "PUT /f2 y\n", "403 Forbidden\n");
  study("Lighttpd (minihttpd)", apps::build_minihttpd(),
        apps::kMinihttpdPort, "minihttpd", 33, 57, "http_dispatch",
        {"serve_put", "serve_delete"}, "http_403", "PUT /f2 y\n",
        "403 Forbidden\n");

  std::printf(
      "\nShape checks: a majority of executed PLT entries is init-only and\n"
      "removable (incl. fork/socket/bind/listen), gadget count drops after\n"
      "wiping, and the service keeps answering — matching the paper's\n"
      "ret2plt and BROP analysis. The stub-mechanism re-cut keeps the\n"
      "original modules' gadget surface flat, keeps wiped PLT stubs dead,\n"
      "and denies write probes without a single SIGTRAP.\n");
  if (g_failures) std::printf("\n%d gate(s) FAILED\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}
