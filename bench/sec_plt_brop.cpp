// §4.2 attack-surface case study: executed-PLT-entry removal (ret2plt) and
// BROP viability after initialization-code removal.
//
// Paper results being reproduced in shape:
//   * Nginx: 43 of 56 executed PLT entries removable post-init, including
//     fork() — defeating ret2plt-to-fork and starving BROP's re-spawn
//     requirement.
//   * Lighttpd: 33 of 57 executed PLT entries removable (socket(), ...).
//   * Wiping blocks also removes ROP gadgets (measured by the scanner).
#include <cstdio>

#include "analysis/coverage.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "apps/minihttpd.hpp"
#include "apps/miniweb.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

void study(const std::string& label, std::shared_ptr<const melf::Binary> bin,
           uint16_t port, const std::string& module, int paper_removed,
           int paper_executed) {
  const std::vector<std::string> reqs = {
      "GET /index\n", "HEAD /index\n", "GET /miss\n", "PUT /f x\n",
      "GET /f\n",     "DELETE /f\n",   "PATCH /x\n"};
  bench::ServerPhases phases = bench::profile_server(bin, port, reqs);
  analysis::CoverageGraph init_cov = phases.init_cov(module);
  analysis::CoverageGraph serving_cov = phases.serving_cov(module);
  analysis::PltUsage plt =
      analysis::analyze_plt(*bin, module, init_cov, serving_cov);

  std::printf("\n--- %s ---\n", label.c_str());
  std::printf(
      "PLT entries: %zu total, %zu executed, %zu executed-init-only "
      "(removable)   [paper: %d of %d]\n",
      plt.total_entries, plt.executed.size(), plt.init_only.size(),
      paper_removed, paper_executed);
  std::printf("removable entries:");
  for (const auto& e : plt.init_only) std::printf(" %s", e.c_str());
  std::printf("\nstill-live entries:");
  for (const auto& e : plt.serving) std::printf(" %s", e.c_str());
  std::printf("\n");

  // Apply: wipe init-only code AND the init-only PLT stubs on a live
  // instance; measure gadgets before/after.
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(port); });
  // Measure the worker (request-facing) process where one exists.
  int victim = vos.process_group(pid).back();
  analysis::GadgetStats before =
      analysis::scan_gadgets(vos.process(victim)->mem);

  analysis::CoverageGraph to_remove = init_cov.diff(serving_cov);
  for (const auto& blk :
       analysis::plt_blocks(*bin, module, plt.init_only)) {
    to_remove.insert(blk);
  }
  core::DynaCut dc(vos, pid);
  dc.remove_init_code(to_remove, core::RemovalPolicy::kWipeBlocks);

  analysis::GadgetStats after =
      analysis::scan_gadgets(vos.process(victim)->mem);

  // ret2plt / BROP checks on live memory.
  const os::Process* p = vos.process(victim);
  const os::LoadedModule* m = p->module_named(module);
  bool fork_dead = true;
  if (auto stub = bin->plt_stub_offset("fork")) {
    uint8_t byte = 0;
    p->mem.peek(m->base + *stub, &byte, 1);
    fork_dead = byte == 0xCC;
    std::printf("fork@plt first byte after init removal: 0x%02x (%s)\n",
                byte, fork_dead ? "trapped - ret2plt to fork() defeated"
                                : "STILL LIVE");
  } else {
    std::printf("fork@plt: not imported by this app (single-process)\n");
  }
  std::printf(
      "ROP gadget starts in %s's executable memory: %llu -> %llu "
      "(-%.1f%%)\n",
      label.c_str(), (unsigned long long)before.gadget_starts,
      (unsigned long long)after.gadget_starts,
      100.0 * (1.0 - static_cast<double>(after.gadget_starts) /
                         static_cast<double>(before.gadget_starts)));

  // The server must still serve.
  auto conn = vos.connect(port);
  std::string got = bench::request(vos, conn, "GET /index\n");
  std::printf("service after hardening: GET /index -> %s", got.c_str());
}

}  // namespace

int main() {
  bench::banner(
      "Security case study (paper §4.2): executed-PLT-entry removal after\n"
      "initialization (ret2plt / BROP) and gadget reduction");

  study("Nginx (miniweb)", apps::build_miniweb(), apps::kMiniwebPort,
        "miniweb", 43, 56);
  study("Lighttpd (minihttpd)", apps::build_minihttpd(),
        apps::kMinihttpdPort, "minihttpd", 33, 57);

  std::printf(
      "\nShape checks: a majority of executed PLT entries is init-only and\n"
      "removable (incl. fork/socket/bind/listen), gadget count drops after\n"
      "wiping, and the service keeps answering — matching the paper's\n"
      "ret2plt and BROP analysis.\n");
  return 0;
}
