// Slicer smoke + gate bench.
//
// Part 1 (static sweep): runs the interprocedural slicer and the full
// cutcheck rule set (CC001-CC012, uncut plan) over every src/apps guest.
// Hard requirements: every indirect transfer resolves (PLT stub, jump
// table or exact offset) and an uncut binary produces zero
// CC007-indirect-escape findings — the rule's false-positive bar.
//
// Part 2 (expansion gate): profiles the minikv SET command and the miniweb
// WebDAV writes the way the figure benches do (tracediff of an exercising
// run against a baseline run), plans a coverage-only cut, expands it to the
// static feature slice, and gates on the slice-closed plan removing >= 20%
// more blocks than observed coverage alone while both plans verify clean
// (no cutcheck errors).
//
// Writes BENCH_slice.json (or --out=PATH) with per-guest resolution stats,
// rule-check wall times, and the per-app observed/slice block counts.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/cutcheck/checker.hpp"
#include "analysis/slicer/slicer.hpp"
#include "apps/minihttpd.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "apps/specgen.hpp"
#include "bench_common.hpp"

namespace {

using namespace dynacut;
namespace cutcheck = analysis::cutcheck;
namespace slicer = analysis::slicer;

int failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++failures;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepRow {
  std::string name;
  size_t blocks = 0;
  size_t sites = 0;
  size_t plt = 0, table = 0, direct = 0, unresolved = 0;
  double analyze_ms = 0;
  double check_ms = 0;
  size_t cc007 = 0;
};

SweepRow sweep(std::shared_ptr<const melf::Binary> bin) {
  SweepRow row;
  row.name = bin->name;
  auto t0 = std::chrono::steady_clock::now();
  slicer::SliceModel m = slicer::analyze(*bin);
  row.analyze_ms = ms_since(t0);
  row.blocks = m.cfg.block_count();
  row.sites = m.indirect.size();
  for (const auto& s : m.indirect) {
    switch (s.kind) {
      case slicer::IndirectSite::Kind::kPltImport: ++row.plt; break;
      case slicer::IndirectSite::Kind::kTable: ++row.table; break;
      case slicer::IndirectSite::Kind::kDirect: ++row.direct; break;
      case slicer::IndirectSite::Kind::kUnresolved: ++row.unresolved; break;
    }
  }
  // Full rule set over the uncut binary: must stay silent on CC007.
  cutcheck::CutPlan plan;
  plan.feature = "uncut";
  plan.module = bin->name;
  plan.binary = bin;
  t0 = std::chrono::steady_clock::now();
  cutcheck::CheckReport r = cutcheck::check_plan(plan);
  row.check_ms = ms_since(t0);
  row.cc007 = r.by_rule(cutcheck::kRuleIndirect).size();
  return row;
}

struct GateRow {
  std::string name;
  size_t observed = 0;       ///< coverage-only plan blocks
  size_t slice = 0;          ///< slice-closed plan blocks
  double growth = 0;         ///< slice / observed
  bool observed_clean = false;
  bool slice_clean = false;
  double check_ms = 0;       ///< rule-check wall time, slice-closed plan
};

GateRow gate(const std::string& name,
             std::shared_ptr<const melf::Binary> bin, uint16_t port,
             const std::string& module,
             const std::vector<std::string>& undesired_reqs,
             const std::vector<std::string>& wanted_reqs) {
  bench::ServerPhases undesired =
      bench::profile_server(bin, port, undesired_reqs);
  bench::ServerPhases wanted = bench::profile_server(bin, port, wanted_reqs);
  std::vector<analysis::CovBlock> observed =
      analysis::feature_diff({undesired.serving_log}, {wanted.serving_log},
                             module)
          .blocks();

  cutcheck::CutPlan plan;
  plan.feature = "unwanted";
  plan.module = module;
  plan.binary = bin;
  plan.blocks = observed;

  GateRow row;
  row.name = name;
  row.observed = observed.size();
  row.observed_clean = cutcheck::check_plan(plan).ok();

  slicer::expand_plan(plan);
  row.slice = plan.blocks.size();
  row.growth = row.observed == 0
                   ? 0.0
                   : static_cast<double>(row.slice) /
                         static_cast<double>(row.observed);
  auto t0 = std::chrono::steady_clock::now();
  cutcheck::CheckReport r = cutcheck::check_plan(plan);
  row.check_ms = ms_since(t0);
  row.slice_clean = r.ok();
  if (!row.slice_clean) std::printf("%s", r.format().c_str());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_slice.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::banner(
      "Slicer sweep (indirect resolution + CC001-CC012 over every guest)\n"
      "and the slice-closed vs coverage-only expansion gate");

  std::vector<std::shared_ptr<const melf::Binary>> guests = {
      apps::build_minikv(), apps::build_miniweb(), apps::build_minihttpd(),
      apps::build_kvbench(), apps::build_libc()};
  for (const auto& sb : apps::spec_suite()) guests.push_back(apps::build_spec(sb));

  std::printf("\n%-16s %8s %6s %5s %6s %7s %7s %11s %9s\n", "guest", "blocks",
              "sites", "plt", "table", "direct", "unres", "analyze_ms",
              "check_ms");
  std::vector<SweepRow> rows;
  for (const auto& bin : guests) {
    SweepRow row = sweep(bin);
    std::printf("%-16s %8zu %6zu %5zu %6zu %7zu %7zu %11.2f %9.2f\n",
                row.name.c_str(), row.blocks, row.sites, row.plt, row.table,
                row.direct, row.unresolved, row.analyze_ms, row.check_ms);
    rows.push_back(row);
  }
  for (const auto& row : rows) {
    check(row.unresolved == 0, row.name + ": all indirect sites resolve");
    check(row.cc007 == 0, row.name + ": zero CC007 findings uncut");
  }

  std::printf("\n");
  std::vector<GateRow> gates;
  gates.push_back(gate("minikv-SET", apps::build_minikv(), apps::kMinikvPort,
                       "minikv", {"SET k v\n", "GET k\n", "PING\n"},
                       {"GET k\n", "PING\n", "DEL k\n"}));
  gates.push_back(gate("miniweb-DAV", apps::build_miniweb(),
                       apps::kMiniwebPort, "miniweb",
                       {"GET /index\n", "PUT /a x\n", "DELETE /a\n"},
                       {"GET /index\n", "HEAD /index\n"}));

  std::printf("%-14s %9s %7s %8s %10s %9s\n", "feature", "observed", "slice",
              "growth", "check_ms", "clean");
  for (const auto& g : gates) {
    std::printf("%-14s %9zu %7zu %7.2fx %10.2f %9s\n", g.name.c_str(),
                g.observed, g.slice, g.growth, g.check_ms,
                g.slice_clean ? "yes" : "NO");
  }
  std::printf("\n");
  for (const auto& g : gates) {
    check(g.observed_clean, g.name + ": coverage-only plan verifies clean");
    check(g.slice_clean, g.name + ": slice-closed plan verifies clean");
    check(g.growth >= 1.2,
          g.name + ": slice removes >= 20% more blocks than coverage alone");
  }

  std::ostringstream json;
  json << "{\n  \"guests\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    json << "    {\"name\": \"" << r.name << "\", \"blocks\": " << r.blocks
         << ", \"indirect_sites\": " << r.sites << ", \"plt\": " << r.plt
         << ", \"table\": " << r.table << ", \"direct\": " << r.direct
         << ", \"unresolved\": " << r.unresolved
         << ", \"analyze_ms\": " << r.analyze_ms
         << ", \"rule_check_ms\": " << r.check_ms
         << ", \"cc007_uncut\": " << r.cc007 << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"expansion\": [\n";
  for (size_t i = 0; i < gates.size(); ++i) {
    const GateRow& g = gates[i];
    json << "    {\"feature\": \"" << g.name
         << "\", \"observed_blocks\": " << g.observed
         << ", \"slice_blocks\": " << g.slice << ", \"growth\": " << g.growth
         << ", \"rule_check_ms\": " << g.check_ms << ", \"clean\": "
         << (g.slice_clean ? "true" : "false") << "}"
         << (i + 1 < gates.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"gate_failures\": " << failures << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  std::printf("wrote %s\n", out_path.c_str());

  if (failures != 0) {
    std::printf("\n%d gate check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
