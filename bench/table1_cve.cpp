// Table 1 reproduction: Redis CVEs mitigated by DynaCut's feature blocking.
//
// minikv plants analogues of the paper's five CVEs:
//   CVE-2021-32625 / CVE-2021-29477  STRALGO LCS missing combined length
//                                    check -> clobbers the "secret" buffer
//   CVE-2019-10192 / CVE-2019-10193  SETRANGE unchecked offset -> corrupts
//                                    the adjacent key slot
//   CVE-2016-8339                    CONFIG SET value overflow -> flips the
//                                    adjacent "admin_mode" word
//
// Each exploit is fired twice: against a vanilla server (it must succeed)
// and against a server whose vulnerable command DynaCut disabled at runtime
// (it must be answered by the error path with all state intact).
#include <cstdio>

#include "analysis/coverage.hpp"
#include "apps/minikv.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"

namespace {

using namespace dynacut;
using bench::run_until;

struct KvInstance {
  os::Os vos;
  int pid = 0;
  os::HostConn conn;
  std::shared_ptr<const melf::Binary> bin;

  KvInstance() {
    bin = apps::build_minikv();
    pid = vos.spawn(bin, {apps::build_libc()});
    run_until(vos, [&] { return vos.has_listener(apps::kMinikvPort); });
    conn = vos.connect(apps::kMinikvPort);
  }

  std::string request(const std::string& line) {
    return bench::request(vos, conn, line);
  }

  uint64_t peek_u64(const std::string& symbol) {
    const os::Process* p = vos.process(pid);
    const os::LoadedModule* m = p->module_named("minikv");
    uint64_t v = 0;
    p->mem.peek(m->base + m->binary->find_symbol(symbol)->value, &v, 8);
    return v;
  }
};

struct Exploit {
  const char* cve;
  const char* description;
  std::string command;                       // vulnerable feature name
  std::vector<std::string> setup_requests;   // benign state preparation
  std::string attack_request;
  // Returns true if the attack corrupted the instance's state.
  bool (*corrupted)(KvInstance&);
};

bool secret_corrupted(KvInstance& kv) {
  return (kv.peek_u64("secret") & 0xff) != 0x5a;
}
bool victim_slot_corrupted(KvInstance& kv) {
  return kv.request("GET attacker\n") == "$-1\n";  // adjacent key destroyed
}
bool admin_mode_set(KvInstance& kv) { return kv.peek_u64("admin_mode") != 0; }

std::vector<Exploit> exploits() {
  std::string long40a(40, 'X'), long40b(40, 'Y');
  return {
      {"CVE-2021-32625", "STRALGO LCS integer overflow (6.0+)", "STRALGO",
       {},
       "STRALGO LCS " + long40a + " " + long40b + "\n",
       secret_corrupted},
      {"CVE-2021-29477", "STRALGO LCS integer overflow (6.0+)", "STRALGO",
       {},
       "STRALGO LCS " + long40b + " " + long40a + "\n",
       secret_corrupted},
      {"CVE-2019-10193", "SETRANGE stack-buffer overflow", "SETRANGE",
       {"SET victim precious\n", "SET attacker x\n"},
       "SETRANGE victim 72 HACKED\n",
       victim_slot_corrupted},
      {"CVE-2019-10192", "SETRANGE heap-buffer overflow", "SETRANGE",
       {"SET victim2 data\n", "SET attacker x\n"},
       "SETRANGE victim2 80 OWNED\n",
       victim_slot_corrupted},
      {"CVE-2016-8339", "CONFIG SET buffer overflow (3.2.x)", "CONFIG",
       {},
       "CONFIG SET maxmem 0123456789012345678999\n",
       admin_mode_set},
  };
}

/// tracediff-discovered blocks for one vulnerable command.
core::FeatureSpec feature_for(const std::string& command,
                              std::shared_ptr<const melf::Binary> bin) {
  std::vector<std::string> undesired_reqs, wanted_reqs = {
      "SETRANGE base 0 hello\n", "GET base\n", "GET miss\n", "PING\n",
      "SET k v\n", "DEL k\n"};
  if (command == "STRALGO") {
    undesired_reqs = {"STRALGO LCS ab cd\n", "PING\n"};
  } else if (command == "SETRANGE") {
    undesired_reqs = {"SETRANGE k 0 xy\n", "PING\n"};
    // The wanted profile must then avoid SETRANGE.
    wanted_reqs = {"SET k hello\n", "GET k\n", "GET miss\n", "PING\n",
                   "DEL k\n"};
  } else {  // CONFIG
    undesired_reqs = {"CONFIG SET maxmem 1\n", "PING\n"};
  }
  bench::ServerPhases undesired = bench::profile_server(
      bin, apps::kMinikvPort, undesired_reqs);
  bench::ServerPhases wanted =
      bench::profile_server(bin, apps::kMinikvPort, wanted_reqs);
  core::FeatureSpec spec;
  spec.name = command;
  spec.blocks = analysis::feature_diff({undesired.serving_log},
                                       {wanted.serving_log}, "minikv")
                    .blocks();
  spec.redirect_module = "minikv";
  spec.redirect_offset = bin->find_symbol("dispatch_err")->value;
  return spec;
}

}  // namespace

int main() {
  bench::banner(
      "Table 1: Redis CVEs mitigated by DynaCut feature blocking\n"
      "(planted vulnerability analogues in minikv; exploit fired against a\n"
      "vanilla instance and a DynaCut-customized instance)");

  std::printf("\n%-16s %-38s %-10s %-22s %-22s\n", "CVE", "description",
              "command", "vanilla", "DynaCut-blocked");
  int mitigated = 0;
  for (auto& e : exploits()) {
    // Vanilla instance: the exploit must land.
    KvInstance vanilla;
    for (const auto& r : e.setup_requests) vanilla.request(r);
    vanilla.request(e.attack_request);
    bool vanilla_hit = e.corrupted(vanilla);

    // Customized instance: DynaCut disables the vulnerable command first.
    KvInstance guarded;
    for (const auto& r : e.setup_requests) guarded.request(r);
    core::DynaCut dc(guarded.vos, guarded.pid);
    dc.disable_feature({feature_for(e.command, guarded.bin),
                       core::RemovalPolicy::kBlockFirstByte,
                       core::TrapPolicy::kRedirect});
    std::string reply = guarded.request(e.attack_request);
    bool guarded_hit = e.corrupted(guarded);
    bool alive = guarded.request("PING\n") == "+PONG\n";
    bool ok = vanilla_hit && !guarded_hit && alive &&
              reply == "-ERR unknown or disabled command\n";
    if (ok) ++mitigated;

    std::printf("%-16s %-38s %-10s %-22s %-22s\n", e.cve, e.description,
                e.command.c_str(),
                vanilla_hit ? "EXPLOITED (state hit)" : "no effect (?)",
                !guarded_hit && alive ? "blocked, server alive"
                                      : "NOT MITIGATED");
  }
  std::printf("\n%d/5 CVEs mitigated by dynamic feature blocking (paper: 5/5)\n",
              mitigated);
  return 0;
}
