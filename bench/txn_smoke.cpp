// Fault-injection smoke: drives the transactional customization protocol
// through every deterministic fault point of every RemovalPolicy ×
// TrapPolicy combination and checks the group-atomicity contract outside
// the unit-test harness (CI runs this under ASan/UBSan).
//
//   txn_smoke              one quick scenario per removal policy
//   txn_smoke --faults=all the full matrix (every stage × occurrence)
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "bench_common.hpp"
#include "core/dynacut.hpp"
#include "core/txn.hpp"
#include "melf/builder.hpp"

namespace {

using namespace dynacut;
using core::CustomizeError;
using core::DynaCut;
using core::FaultPlan;
using core::FaultStage;
using core::FeatureSpec;
using core::RemovalPolicy;
using core::TrapPolicy;

std::shared_ptr<const melf::Binary> group_guest() {
  static std::shared_ptr<const melf::Binary> bin = [] {
    namespace sys = os::sys;
    melf::ProgramBuilder b("grp");
    auto& f = b.func("feat");
    for (size_t i = 0; i < 2 * kPageSize + 128; ++i) f.nop();
    f.mov_ri(0, 7).ret();
    f.label("err").mark("feat_err").mov_ri(0, 1).ret();
    auto& m = b.func("main");
    m.sys(sys::kFork);
    m.label("spin").mov_ri(1, 500).sys(sys::kNanosleep).jmp("spin");
    b.set_entry("main");
    return std::make_shared<melf::Binary>(b.link());
  }();
  return bin;
}

FeatureSpec matrix_spec() {
  auto bin = group_guest();
  FeatureSpec s;
  s.name = "feat";
  s.blocks = {analysis::CovBlock{"grp", bin->find_symbol("feat")->value,
                                 static_cast<uint32_t>(2 * kPageSize)}};
  s.redirect_module = "grp";
  s.redirect_offset = bin->find_symbol("feat_err")->value;
  return s;
}

/// Byte-level process fingerprint: page contents + VMAs + sigactions.
std::string fingerprint(const os::Process& p) {
  std::string out;
  for (uint64_t page : p.mem.populated_pages()) {
    auto bytes = p.mem.page_bytes(page);
    out.append(reinterpret_cast<const char*>(&page), sizeof(page));
    out.append(bytes.begin(), bytes.end());
  }
  for (const auto& [start, v] : p.mem.vmas()) {
    out += v.name + ":" + std::to_string(v.start) + "-" +
           std::to_string(v.end) + "/" + std::to_string(v.prot) + ";";
  }
  for (const auto& sa : p.sigactions) {
    out += std::to_string(sa.handler) + ",";
  }
  return out;
}

struct Combo {
  RemovalPolicy removal;
  TrapPolicy trap;
  const char* name;
};

constexpr Combo kCombos[] = {
    {RemovalPolicy::kBlockFirstByte, TrapPolicy::kTerminate, "int3+term"},
    {RemovalPolicy::kBlockFirstByte, TrapPolicy::kRedirect, "int3+redir"},
    {RemovalPolicy::kBlockFirstByte, TrapPolicy::kVerify, "int3+verify"},
    {RemovalPolicy::kWipeBlocks, TrapPolicy::kTerminate, "wipe+term"},
    {RemovalPolicy::kWipeBlocks, TrapPolicy::kRedirect, "wipe+redir"},
    {RemovalPolicy::kUnmapPages, TrapPolicy::kTerminate, "unmap+term"},
    {RemovalPolicy::kUnmapPages, TrapPolicy::kRedirect, "unmap+redir"},
};

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("!! FAIL: %s\n", what.c_str());
    ++failures;
  }
}

/// Runs the (removal, trap) scenario: counts fault points, then (in full
/// mode) aborts at every one of them and checks rollback + clean retry.
void run_combo(const Combo& combo, bool all_faults) {
  const FeatureSpec spec = matrix_spec();

  std::array<size_t, kNumFaultStages> totals{};
  {
    os::Os vos;
    int pid = vos.spawn(group_guest());
    vos.run(3000);
    DynaCut dc(vos, pid, {}, core::CheckMode::kOff);
    FaultPlan counter;
    dc.set_fault_plan(&counter);
    dc.disable_feature({spec, combo.removal, combo.trap});
    for (size_t s = 0; s < kNumFaultStages; ++s) {
      totals[s] = counter.count(static_cast<FaultStage>(s));
    }
  }

  size_t points = 0, aborted = 0, rolled_back = 0, retried = 0;
  for (size_t si = 0; si < kNumFaultStages; ++si) {
    const auto fstage = static_cast<FaultStage>(si);
    size_t n = all_faults ? totals[si] : (totals[si] > 0 ? 1 : 0);
    for (size_t i = 0; i < n; ++i, ++points) {
      os::Os vos;
      int pid = vos.spawn(group_guest());
      vos.run(3000);
      std::vector<int> group = vos.process_group(pid);
      std::map<int, std::string> before;
      for (int p : group) before[p] = fingerprint(*vos.process(p));

      DynaCut dc(vos, pid, {}, core::CheckMode::kOff);
      FaultPlan plan = FaultPlan::fail_at(fstage, i);
      dc.set_fault_plan(&plan);
      std::string tag = std::string(combo.name) + " @" +
                        fault_stage_name(fstage) + "#" +
                        std::to_string(i);
      try {
        dc.disable_feature({spec, combo.removal, combo.trap});
        check(false, tag + ": fault did not abort the customization");
      } catch (const CustomizeError&) {
        ++aborted;
      }

      bool identical = !dc.feature_disabled(spec.name);
      for (int p : group) {
        identical = identical && fingerprint(*vos.process(p)) == before[p];
      }
      check(identical, tag + ": group not rolled back bit-identically");
      if (identical) ++rolled_back;

      dc.set_fault_plan(nullptr);
      try {
        dc.disable_feature({spec, combo.removal, combo.trap});
        check(dc.feature_disabled(spec.name), tag + ": retry not recorded");
        ++retried;
      } catch (const Error& e) {
        check(false, tag + ": clean retry failed: " + e.what());
      }
    }
  }
  std::printf("%-12s %8zu %8zu %12zu %8zu\n", combo.name, points, aborted,
              rolled_back, retried);
}

}  // namespace

int main(int argc, char** argv) {
  bool all_faults = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults=all") == 0) all_faults = true;
  }

  bench::banner(all_faults
                    ? "txn smoke: full fault-injection matrix"
                    : "txn smoke: one fault per stage (use --faults=all)");
  std::printf("%-12s %8s %8s %12s %8s\n", "combo", "faults", "aborted",
              "rolled_back", "retried");
  for (const auto& combo : kCombos) run_combo(combo, all_faults);

  if (failures != 0) {
    std::printf("\n%d atomicity violation(s)\n", failures);
    return 1;
  }
  std::printf("\nAll injected faults rolled back bit-identically; every "
              "clean retry succeeded.\n");
  return 0;
}
