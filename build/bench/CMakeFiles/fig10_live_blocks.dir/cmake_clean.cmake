file(REMOVE_RECURSE
  "CMakeFiles/fig10_live_blocks.dir/fig10_live_blocks.cpp.o"
  "CMakeFiles/fig10_live_blocks.dir/fig10_live_blocks.cpp.o.d"
  "fig10_live_blocks"
  "fig10_live_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_live_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
