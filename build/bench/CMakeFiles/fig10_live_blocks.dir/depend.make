# Empty dependencies file for fig10_live_blocks.
# This may be replaced when dependencies are built.
