file(REMOVE_RECURSE
  "CMakeFiles/fig2_footprint.dir/fig2_footprint.cpp.o"
  "CMakeFiles/fig2_footprint.dir/fig2_footprint.cpp.o.d"
  "fig2_footprint"
  "fig2_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
