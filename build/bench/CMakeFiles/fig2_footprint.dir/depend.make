# Empty dependencies file for fig2_footprint.
# This may be replaced when dependencies are built.
