file(REMOVE_RECURSE
  "CMakeFiles/fig6_feature_overhead.dir/fig6_feature_overhead.cpp.o"
  "CMakeFiles/fig6_feature_overhead.dir/fig6_feature_overhead.cpp.o.d"
  "fig6_feature_overhead"
  "fig6_feature_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_feature_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
