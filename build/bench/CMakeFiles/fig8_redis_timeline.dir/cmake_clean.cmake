file(REMOVE_RECURSE
  "CMakeFiles/fig8_redis_timeline.dir/fig8_redis_timeline.cpp.o"
  "CMakeFiles/fig8_redis_timeline.dir/fig8_redis_timeline.cpp.o.d"
  "fig8_redis_timeline"
  "fig8_redis_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_redis_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
