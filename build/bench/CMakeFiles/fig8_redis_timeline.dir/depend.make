# Empty dependencies file for fig8_redis_timeline.
# This may be replaced when dependencies are built.
