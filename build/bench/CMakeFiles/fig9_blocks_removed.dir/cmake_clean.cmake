file(REMOVE_RECURSE
  "CMakeFiles/fig9_blocks_removed.dir/fig9_blocks_removed.cpp.o"
  "CMakeFiles/fig9_blocks_removed.dir/fig9_blocks_removed.cpp.o.d"
  "fig9_blocks_removed"
  "fig9_blocks_removed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_blocks_removed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
