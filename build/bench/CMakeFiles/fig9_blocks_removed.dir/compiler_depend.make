# Empty compiler generated dependencies file for fig9_blocks_removed.
# This may be replaced when dependencies are built.
