file(REMOVE_RECURSE
  "CMakeFiles/sec_plt_brop.dir/sec_plt_brop.cpp.o"
  "CMakeFiles/sec_plt_brop.dir/sec_plt_brop.cpp.o.d"
  "sec_plt_brop"
  "sec_plt_brop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_plt_brop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
