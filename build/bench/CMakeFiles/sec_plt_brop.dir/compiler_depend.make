# Empty compiler generated dependencies file for sec_plt_brop.
# This may be replaced when dependencies are built.
