file(REMOVE_RECURSE
  "CMakeFiles/table1_cve.dir/table1_cve.cpp.o"
  "CMakeFiles/table1_cve.dir/table1_cve.cpp.o.d"
  "table1_cve"
  "table1_cve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
