# Empty compiler generated dependencies file for table1_cve.
# This may be replaced when dependencies are built.
