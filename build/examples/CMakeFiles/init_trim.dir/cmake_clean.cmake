file(REMOVE_RECURSE
  "CMakeFiles/init_trim.dir/init_trim.cpp.o"
  "CMakeFiles/init_trim.dir/init_trim.cpp.o.d"
  "init_trim"
  "init_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/init_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
