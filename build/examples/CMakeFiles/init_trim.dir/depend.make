# Empty dependencies file for init_trim.
# This may be replaced when dependencies are built.
