file(REMOVE_RECURSE
  "CMakeFiles/kv_live_toggle.dir/kv_live_toggle.cpp.o"
  "CMakeFiles/kv_live_toggle.dir/kv_live_toggle.cpp.o.d"
  "kv_live_toggle"
  "kv_live_toggle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_live_toggle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
