# Empty dependencies file for kv_live_toggle.
# This may be replaced when dependencies are built.
