file(REMOVE_RECURSE
  "CMakeFiles/webdav_lockdown.dir/webdav_lockdown.cpp.o"
  "CMakeFiles/webdav_lockdown.dir/webdav_lockdown.cpp.o.d"
  "webdav_lockdown"
  "webdav_lockdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webdav_lockdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
