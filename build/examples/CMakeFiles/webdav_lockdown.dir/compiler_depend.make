# Empty compiler generated dependencies file for webdav_lockdown.
# This may be replaced when dependencies are built.
