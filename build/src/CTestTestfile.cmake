# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("melf")
subdirs("vm")
subdirs("os")
subdirs("trace")
subdirs("image")
subdirs("analysis")
subdirs("rewriter")
subdirs("core")
subdirs("apps")
subdirs("baselines")
