
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cpp" "src/analysis/CMakeFiles/dynacut_analysis.dir/cfg.cpp.o" "gcc" "src/analysis/CMakeFiles/dynacut_analysis.dir/cfg.cpp.o.d"
  "/root/repo/src/analysis/coverage.cpp" "src/analysis/CMakeFiles/dynacut_analysis.dir/coverage.cpp.o" "gcc" "src/analysis/CMakeFiles/dynacut_analysis.dir/coverage.cpp.o.d"
  "/root/repo/src/analysis/gadget.cpp" "src/analysis/CMakeFiles/dynacut_analysis.dir/gadget.cpp.o" "gcc" "src/analysis/CMakeFiles/dynacut_analysis.dir/gadget.cpp.o.d"
  "/root/repo/src/analysis/plt.cpp" "src/analysis/CMakeFiles/dynacut_analysis.dir/plt.cpp.o" "gcc" "src/analysis/CMakeFiles/dynacut_analysis.dir/plt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/dynacut_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/melf/CMakeFiles/dynacut_melf.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dynacut_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynacut_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynacut_os.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dynacut_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
