file(REMOVE_RECURSE
  "CMakeFiles/dynacut_analysis.dir/cfg.cpp.o"
  "CMakeFiles/dynacut_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/dynacut_analysis.dir/coverage.cpp.o"
  "CMakeFiles/dynacut_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/dynacut_analysis.dir/gadget.cpp.o"
  "CMakeFiles/dynacut_analysis.dir/gadget.cpp.o.d"
  "CMakeFiles/dynacut_analysis.dir/plt.cpp.o"
  "CMakeFiles/dynacut_analysis.dir/plt.cpp.o.d"
  "libdynacut_analysis.a"
  "libdynacut_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
