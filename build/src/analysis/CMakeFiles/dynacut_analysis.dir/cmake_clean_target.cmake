file(REMOVE_RECURSE
  "libdynacut_analysis.a"
)
