# Empty dependencies file for dynacut_analysis.
# This may be replaced when dependencies are built.
