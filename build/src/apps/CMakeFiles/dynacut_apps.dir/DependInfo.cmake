
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/libc.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/libc.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/libc.cpp.o.d"
  "/root/repo/src/apps/minihttpd.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/minihttpd.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/minihttpd.cpp.o.d"
  "/root/repo/src/apps/minikv.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/minikv.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/minikv.cpp.o.d"
  "/root/repo/src/apps/miniweb.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/miniweb.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/miniweb.cpp.o.d"
  "/root/repo/src/apps/specgen.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/specgen.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/specgen.cpp.o.d"
  "/root/repo/src/apps/synth.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/synth.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/synth.cpp.o.d"
  "/root/repo/src/apps/webcommon.cpp" "src/apps/CMakeFiles/dynacut_apps.dir/webcommon.cpp.o" "gcc" "src/apps/CMakeFiles/dynacut_apps.dir/webcommon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/melf/CMakeFiles/dynacut_melf.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynacut_os.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynacut_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dynacut_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dynacut_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
