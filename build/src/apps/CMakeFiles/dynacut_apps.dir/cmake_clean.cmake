file(REMOVE_RECURSE
  "CMakeFiles/dynacut_apps.dir/libc.cpp.o"
  "CMakeFiles/dynacut_apps.dir/libc.cpp.o.d"
  "CMakeFiles/dynacut_apps.dir/minihttpd.cpp.o"
  "CMakeFiles/dynacut_apps.dir/minihttpd.cpp.o.d"
  "CMakeFiles/dynacut_apps.dir/minikv.cpp.o"
  "CMakeFiles/dynacut_apps.dir/minikv.cpp.o.d"
  "CMakeFiles/dynacut_apps.dir/miniweb.cpp.o"
  "CMakeFiles/dynacut_apps.dir/miniweb.cpp.o.d"
  "CMakeFiles/dynacut_apps.dir/specgen.cpp.o"
  "CMakeFiles/dynacut_apps.dir/specgen.cpp.o.d"
  "CMakeFiles/dynacut_apps.dir/synth.cpp.o"
  "CMakeFiles/dynacut_apps.dir/synth.cpp.o.d"
  "CMakeFiles/dynacut_apps.dir/webcommon.cpp.o"
  "CMakeFiles/dynacut_apps.dir/webcommon.cpp.o.d"
  "libdynacut_apps.a"
  "libdynacut_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
