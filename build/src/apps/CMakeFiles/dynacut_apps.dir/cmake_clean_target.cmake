file(REMOVE_RECURSE
  "libdynacut_apps.a"
)
