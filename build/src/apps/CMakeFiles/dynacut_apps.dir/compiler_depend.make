# Empty compiler generated dependencies file for dynacut_apps.
# This may be replaced when dependencies are built.
