file(REMOVE_RECURSE
  "CMakeFiles/dynacut_baselines.dir/chisel.cpp.o"
  "CMakeFiles/dynacut_baselines.dir/chisel.cpp.o.d"
  "CMakeFiles/dynacut_baselines.dir/oracle.cpp.o"
  "CMakeFiles/dynacut_baselines.dir/oracle.cpp.o.d"
  "CMakeFiles/dynacut_baselines.dir/razor.cpp.o"
  "CMakeFiles/dynacut_baselines.dir/razor.cpp.o.d"
  "libdynacut_baselines.a"
  "libdynacut_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
