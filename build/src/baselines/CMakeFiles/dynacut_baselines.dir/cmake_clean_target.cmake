file(REMOVE_RECURSE
  "libdynacut_baselines.a"
)
