# Empty compiler generated dependencies file for dynacut_baselines.
# This may be replaced when dependencies are built.
