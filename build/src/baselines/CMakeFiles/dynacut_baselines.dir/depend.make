# Empty dependencies file for dynacut_baselines.
# This may be replaced when dependencies are built.
