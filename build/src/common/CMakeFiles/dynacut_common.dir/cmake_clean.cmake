file(REMOVE_RECURSE
  "CMakeFiles/dynacut_common.dir/bytes.cpp.o"
  "CMakeFiles/dynacut_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dynacut_common.dir/hex.cpp.o"
  "CMakeFiles/dynacut_common.dir/hex.cpp.o.d"
  "CMakeFiles/dynacut_common.dir/log.cpp.o"
  "CMakeFiles/dynacut_common.dir/log.cpp.o.d"
  "libdynacut_common.a"
  "libdynacut_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
