file(REMOVE_RECURSE
  "libdynacut_common.a"
)
