# Empty compiler generated dependencies file for dynacut_common.
# This may be replaced when dependencies are built.
