file(REMOVE_RECURSE
  "CMakeFiles/dynacut_core.dir/dynacut.cpp.o"
  "CMakeFiles/dynacut_core.dir/dynacut.cpp.o.d"
  "CMakeFiles/dynacut_core.dir/handler_lib.cpp.o"
  "CMakeFiles/dynacut_core.dir/handler_lib.cpp.o.d"
  "libdynacut_core.a"
  "libdynacut_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
