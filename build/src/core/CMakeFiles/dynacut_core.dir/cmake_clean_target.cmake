file(REMOVE_RECURSE
  "libdynacut_core.a"
)
