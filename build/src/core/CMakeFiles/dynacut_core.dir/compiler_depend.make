# Empty compiler generated dependencies file for dynacut_core.
# This may be replaced when dependencies are built.
