file(REMOVE_RECURSE
  "CMakeFiles/dynacut_image.dir/checkpoint.cpp.o"
  "CMakeFiles/dynacut_image.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dynacut_image.dir/crit.cpp.o"
  "CMakeFiles/dynacut_image.dir/crit.cpp.o.d"
  "CMakeFiles/dynacut_image.dir/image.cpp.o"
  "CMakeFiles/dynacut_image.dir/image.cpp.o.d"
  "libdynacut_image.a"
  "libdynacut_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
