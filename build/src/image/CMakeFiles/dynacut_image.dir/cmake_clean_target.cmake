file(REMOVE_RECURSE
  "libdynacut_image.a"
)
