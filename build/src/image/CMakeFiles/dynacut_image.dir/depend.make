# Empty dependencies file for dynacut_image.
# This may be replaced when dependencies are built.
