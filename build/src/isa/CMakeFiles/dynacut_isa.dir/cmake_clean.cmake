file(REMOVE_RECURSE
  "CMakeFiles/dynacut_isa.dir/disasm.cpp.o"
  "CMakeFiles/dynacut_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/dynacut_isa.dir/encode.cpp.o"
  "CMakeFiles/dynacut_isa.dir/encode.cpp.o.d"
  "CMakeFiles/dynacut_isa.dir/isa.cpp.o"
  "CMakeFiles/dynacut_isa.dir/isa.cpp.o.d"
  "libdynacut_isa.a"
  "libdynacut_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
