file(REMOVE_RECURSE
  "libdynacut_isa.a"
)
