# Empty dependencies file for dynacut_isa.
# This may be replaced when dependencies are built.
