file(REMOVE_RECURSE
  "CMakeFiles/dynacut_melf.dir/binary.cpp.o"
  "CMakeFiles/dynacut_melf.dir/binary.cpp.o.d"
  "CMakeFiles/dynacut_melf.dir/builder.cpp.o"
  "CMakeFiles/dynacut_melf.dir/builder.cpp.o.d"
  "CMakeFiles/dynacut_melf.dir/dump.cpp.o"
  "CMakeFiles/dynacut_melf.dir/dump.cpp.o.d"
  "libdynacut_melf.a"
  "libdynacut_melf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_melf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
