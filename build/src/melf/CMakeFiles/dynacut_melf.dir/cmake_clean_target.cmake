file(REMOVE_RECURSE
  "libdynacut_melf.a"
)
