# Empty dependencies file for dynacut_melf.
# This may be replaced when dependencies are built.
