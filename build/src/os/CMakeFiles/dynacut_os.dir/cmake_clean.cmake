file(REMOVE_RECURSE
  "CMakeFiles/dynacut_os.dir/loader.cpp.o"
  "CMakeFiles/dynacut_os.dir/loader.cpp.o.d"
  "CMakeFiles/dynacut_os.dir/os.cpp.o"
  "CMakeFiles/dynacut_os.dir/os.cpp.o.d"
  "libdynacut_os.a"
  "libdynacut_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
