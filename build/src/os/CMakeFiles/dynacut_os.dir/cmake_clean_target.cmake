file(REMOVE_RECURSE
  "libdynacut_os.a"
)
