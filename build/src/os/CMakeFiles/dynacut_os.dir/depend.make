# Empty dependencies file for dynacut_os.
# This may be replaced when dependencies are built.
