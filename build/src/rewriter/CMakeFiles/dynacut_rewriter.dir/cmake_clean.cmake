file(REMOVE_RECURSE
  "CMakeFiles/dynacut_rewriter.dir/rewriter.cpp.o"
  "CMakeFiles/dynacut_rewriter.dir/rewriter.cpp.o.d"
  "libdynacut_rewriter.a"
  "libdynacut_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
