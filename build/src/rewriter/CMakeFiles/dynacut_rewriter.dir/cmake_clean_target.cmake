file(REMOVE_RECURSE
  "libdynacut_rewriter.a"
)
