# Empty dependencies file for dynacut_rewriter.
# This may be replaced when dependencies are built.
