file(REMOVE_RECURSE
  "CMakeFiles/dynacut_trace.dir/trace.cpp.o"
  "CMakeFiles/dynacut_trace.dir/trace.cpp.o.d"
  "libdynacut_trace.a"
  "libdynacut_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
