file(REMOVE_RECURSE
  "libdynacut_trace.a"
)
