# Empty compiler generated dependencies file for dynacut_trace.
# This may be replaced when dependencies are built.
