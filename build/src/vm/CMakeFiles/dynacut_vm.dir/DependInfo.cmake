
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/addrspace.cpp" "src/vm/CMakeFiles/dynacut_vm.dir/addrspace.cpp.o" "gcc" "src/vm/CMakeFiles/dynacut_vm.dir/addrspace.cpp.o.d"
  "/root/repo/src/vm/exec.cpp" "src/vm/CMakeFiles/dynacut_vm.dir/exec.cpp.o" "gcc" "src/vm/CMakeFiles/dynacut_vm.dir/exec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/dynacut_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynacut_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
