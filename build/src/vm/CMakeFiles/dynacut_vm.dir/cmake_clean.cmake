file(REMOVE_RECURSE
  "CMakeFiles/dynacut_vm.dir/addrspace.cpp.o"
  "CMakeFiles/dynacut_vm.dir/addrspace.cpp.o.d"
  "CMakeFiles/dynacut_vm.dir/exec.cpp.o"
  "CMakeFiles/dynacut_vm.dir/exec.cpp.o.d"
  "libdynacut_vm.a"
  "libdynacut_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
