file(REMOVE_RECURSE
  "libdynacut_vm.a"
)
