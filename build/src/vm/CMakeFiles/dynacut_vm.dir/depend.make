# Empty dependencies file for dynacut_vm.
# This may be replaced when dependencies are built.
