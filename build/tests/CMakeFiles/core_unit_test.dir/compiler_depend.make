# Empty compiler generated dependencies file for core_unit_test.
# This may be replaced when dependencies are built.
