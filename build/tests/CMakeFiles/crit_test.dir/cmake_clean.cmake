file(REMOVE_RECURSE
  "CMakeFiles/crit_test.dir/crit_test.cpp.o"
  "CMakeFiles/crit_test.dir/crit_test.cpp.o.d"
  "crit_test"
  "crit_test.pdb"
  "crit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
