file(REMOVE_RECURSE
  "CMakeFiles/dynacut_test.dir/dynacut_test.cpp.o"
  "CMakeFiles/dynacut_test.dir/dynacut_test.cpp.o.d"
  "dynacut_test"
  "dynacut_test.pdb"
  "dynacut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynacut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
