# Empty compiler generated dependencies file for dynacut_test.
# This may be replaced when dependencies are built.
