file(REMOVE_RECURSE
  "CMakeFiles/melf_test.dir/melf_test.cpp.o"
  "CMakeFiles/melf_test.dir/melf_test.cpp.o.d"
  "melf_test"
  "melf_test.pdb"
  "melf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/melf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
