# Empty dependencies file for melf_test.
# This may be replaced when dependencies are built.
