file(REMOVE_RECURSE
  "CMakeFiles/phase_detect_test.dir/phase_detect_test.cpp.o"
  "CMakeFiles/phase_detect_test.dir/phase_detect_test.cpp.o.d"
  "phase_detect_test"
  "phase_detect_test.pdb"
  "phase_detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
