# Empty dependencies file for phase_detect_test.
# This may be replaced when dependencies are built.
