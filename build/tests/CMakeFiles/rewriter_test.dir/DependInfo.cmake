
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rewriter_test.cpp" "tests/CMakeFiles/rewriter_test.dir/rewriter_test.cpp.o" "gcc" "tests/CMakeFiles/rewriter_test.dir/rewriter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rewriter/CMakeFiles/dynacut_rewriter.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dynacut_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dynacut_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/dynacut_image.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dynacut_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dynacut_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dynacut_os.dir/DependInfo.cmake"
  "/root/repo/build/src/melf/CMakeFiles/dynacut_melf.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dynacut_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dynacut_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynacut_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
