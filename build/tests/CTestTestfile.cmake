# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/melf_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/guestlib_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/dynacut_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/crit_test[1]_include.cmake")
include("/root/repo/build/tests/phase_detect_test[1]_include.cmake")
include("/root/repo/build/tests/core_unit_test[1]_include.cmake")
include("/root/repo/build/tests/dump_test[1]_include.cmake")
