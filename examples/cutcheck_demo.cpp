// cutcheck demo: the static cut-plan verifier rejecting malformed
// customizations before any byte of the running process is touched, then
// accepting the repaired plan.
//
//   1. boot a tiny server and tracediff an unwanted feature (as quickstart)
//   2. try three broken plans; each is rejected by a different rule:
//        a. block starting mid-instruction            -> CC001-boundary
//        b. duplicated blocks tricking the unmap page
//           accounting into dropping live code        -> CC005-page-safety
//        c. redirect target in a different function   -> CC003-redirect
//   3. preflight + apply the repaired plan, watch the feature answer
//      through the error path, and re-enable it
//   4. coverage seed -> closed slice: the tracediff seed misses a branch
//      of the feature that never ran while profiling; CC008-partial-slice
//      flags the dead-but-reachable remainder, and expand_to_slice grows
//      the cut to the full static feature slice before applying it
//
// Build & run:  cmake --build build && ./build/examples/cutcheck_demo
#include <cstdio>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "common/error.hpp"
#include "core/dynacut.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "trace/trace.hpp"

using namespace dynacut;

// Same shape as the quickstart server ("A" -> "alpha", "B" -> "beta",
// other -> "err"), plus a fat filler function so .text spans enough bytes
// for the page-accounting demonstration to be about real code.
std::shared_ptr<const melf::Binary> build_demo_server() {
  namespace sys = os::sys;
  melf::ProgramBuilder b("demo");
  b.rodata_str("alpha", "alpha\n");
  b.rodata_str("beta", "beta\n");
  b.rodata_str("err", "err\n");
  b.bss("buf", 64);

  // B's handler has a branch ("B!") no profiling run ever takes: coverage
  // alone will seed a cut that misses it, which is what step 4 is about.
  auto& hb = b.func("handle_b");
  hb.mov_sym(6, "buf").loadb(7, 6, 1);
  hb.cmp_ri(7, '!').je("loud");
  hb.mov_sym(2, "beta").ret();
  hb.label("loud").mov_sym(2, "beta").ret();

  auto& d = b.func("dispatch");
  d.mov_sym(6, "buf").loadb(7, 6, 0);
  d.cmp_ri(7, 'A').je("a").cmp_ri(7, 'B').je("b").jmp("e");
  d.label("a").mov_sym(2, "alpha").jmp("send");
  d.label("b").call("handle_b").jmp("send");
  d.label("e").mark("error_path").mov_sym(2, "err");
  d.label("send").mov_rr(1, 13).call_import("write_str").ret();

  auto& f = b.func("filler");
  for (int i = 0; i < 2200; ++i) f.nop();
  f.ret();

  auto& m = b.func("main");
  m.sys(sys::kSocket).mov_rr(12, 0);
  m.mov_rr(1, 12).mov_ri(2, 7777).sys(sys::kBind);
  m.mov_rr(1, 12).sys(sys::kListen);
  m.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  m.label("loop")
      .mov_rr(1, 13)
      .mov_sym(2, "buf")
      .mov_ri(3, 64)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .call("dispatch")
      .jmp("loop");
  m.label("done").mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

trace::TraceLog profile(std::shared_ptr<const melf::Binary> bin,
                        const char* requests) {
  os::Os vos;
  trace::Tracer tracer(vos);
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(7777);
  conn.send(requests);
  vos.run();
  return tracer.dump(pid);
}

// Applies the plan and reports whether the enforcing verifier let it pass.
bool attempt(core::DynaCut& dc, const char* what,
             const core::FeatureSpec& spec, core::RemovalPolicy removal,
             core::TrapPolicy trap) {
  std::printf("--- attempt: %s\n", what);
  try {
    dc.disable_feature({spec, removal, trap});
    std::printf("    accepted\n\n");
    return true;
  } catch (const StateError& e) {
    std::printf("    REJECTED:\n%s\n", e.what());
    return false;
  }
}

int main() {
  auto bin = build_demo_server();

  trace::TraceLog with_b = profile(bin, "A\nB\n");
  trace::TraceLog without_b = profile(bin, "A\nA\n");
  std::vector<analysis::CovBlock> feature_blocks =
      analysis::feature_diff({with_b}, {without_b}, "demo").blocks();
  std::printf("tracediff found %zu blocks unique to feature B\n\n",
              feature_blocks.size());

  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(7777);
  auto ask = [&](const char* line) {
    conn.send(line);
    vos.run();
    return conn.recv_all();
  };

  core::DynaCut dc(vos, pid);  // CheckMode::kEnforce by default

  // (a) Off-by-one offset: the patch would land inside an instruction's
  // encoding, corrupting whatever still executes around it.
  core::FeatureSpec skewed;
  skewed.name = "B-skewed";
  skewed.blocks = feature_blocks;
  skewed.blocks.front().offset += 1;
  attempt(dc, "feature blocks with an off-by-one offset", skewed,
          core::RemovalPolicy::kBlockFirstByte, core::TrapPolicy::kTerminate);

  // (b) The same coverage pasted together twice (no dedup) around the
  // filler function. The rewriter's per-range page accounting sums the
  // duplicates to a full page and unmaps it — dispatch/main live on that
  // page and were never part of the plan.
  uint64_t filler_off = bin->find_symbol("filler")->value;
  core::FeatureSpec doubled;
  doubled.name = "filler-doubled";
  for (int copy = 0; copy < 2; ++copy) {
    doubled.blocks.push_back({"demo", filler_off, 2048});
  }
  attempt(dc, "duplicated blocks vs. unmap page accounting", doubled,
          core::RemovalPolicy::kUnmapPages, core::TrapPolicy::kTerminate);

  // (c) Redirecting feature B's traps into main: the handler would rewrite
  // the IP across a call frame.
  core::FeatureSpec cross;
  cross.name = "B-cross";
  cross.blocks = feature_blocks;
  cross.redirect_module = "demo";
  cross.redirect_offset = bin->find_symbol("main")->value;
  attempt(dc, "redirect target outside the cut function", cross,
          core::RemovalPolicy::kBlockFirstByte, core::TrapPolicy::kRedirect);

  // Repaired plan: correct offsets, deduplicated blocks, same-function
  // redirect. preflight() shows what apply() will see, then the real run.
  core::FeatureSpec good;
  good.name = "B";
  good.blocks = feature_blocks;
  good.redirect_module = "demo";
  good.redirect_offset = bin->find_symbol("error_path")->value;
  auto report = dc.preflight({good, core::RemovalPolicy::kBlockFirstByte,
                             core::TrapPolicy::kRedirect});
  std::printf("--- repaired plan preflight: %zu error(s), %zu warning(s), "
              "%zu note(s), gadget delta %lld\n",
              report.errors(), report.warnings(), report.notes(),
              (long long)report.gadget_delta);

  std::printf("before:   B -> %s", ask("B\n").c_str());
  dc.disable_feature({good, core::RemovalPolicy::kBlockFirstByte,
                     core::TrapPolicy::kRedirect});
  std::printf("disabled: B -> %s", ask("B\n").c_str());
  std::printf("          A -> %s", ask("A\n").c_str());
  dc.restore_feature("B");
  std::printf("restored: B -> %s", ask("B\n").c_str());

  // (4) Coverage seed -> closed slice. The profiling runs above never sent
  // "B!", so handle_b's loud branch has no coverage: the seeded cut leaves
  // it dead-but-reachable and CC008-partial-slice says so. Setting
  // expand_to_slice closes the plan over the static feature slice
  // (dominated blocks + exclusively-called callees) before the rewrite.
  core::CutRequest seeded{good, core::RemovalPolicy::kBlockFirstByte,
                          core::TrapPolicy::kRedirect};
  seeded.feature.name = "B-slice";
  auto seed_pf = dc.preflight(seeded);
  std::printf("\n--- coverage-seeded plan, CC008:\n");
  for (const auto* diag :
       seed_pf.by_rule(analysis::cutcheck::kRulePartialSlice)) {
    std::printf("    %s\n", diag->format().c_str());
  }
  seeded.expand_to_slice = true;
  auto closed_pf = dc.preflight(seeded);
  std::printf("--- slice-closed plan, CC008 findings: %zu\n",
              closed_pf.by_rule(analysis::cutcheck::kRulePartialSlice).size());

  auto cut = dc.disable_feature(seeded);
  std::printf("expanded cut patched %zu blocks from a %zu-block seed\n",
              cut.edits.blocks_patched, feature_blocks.size());
  std::printf("disabled: B! -> %s", ask("B!\n").c_str());
  dc.restore_feature("B-slice");
  std::printf("restored: B! -> %s", ask("B!\n").c_str());

  std::printf("\ncutcheck_demo complete: three malformed plans rejected "
              "before any\nrewrite, the repaired plan verified and applied "
              "live, and the\ncoverage seed closed over the static feature "
              "slice.\n");
  return 0;
}
