// Example: dropping initialization code from a long-running server after
// boot — the paper's temporal-debloating use case (§3.1, Figure 9), plus
// the fast-boot trick from footnote 5 (restore a stored post-init image
// instead of rerunning initialization).
//
// Build & run:  cmake --build build && ./build/examples/init_trim
#include <cstdio>

#include "analysis/coverage.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "apps/libc.hpp"
#include "apps/minihttpd.hpp"
#include "core/dynacut.hpp"
#include "image/checkpoint.hpp"
#include "os/os.hpp"
#include "trace/trace.hpp"

using namespace dynacut;

namespace {
template <typename Pred>
void run_until(os::Os& vos, Pred done) {
  for (int i = 0; i < 300 && !done(); ++i) vos.run(200'000);
}
}  // namespace

int main() {
  auto bin = apps::build_minihttpd();

  // --- phase-split profiling: nudge at ready, then serve -----------------
  os::Os prof;
  trace::Tracer tracer(prof);
  int ppid = prof.spawn(bin, {apps::build_libc()});
  run_until(prof, [&] { return prof.has_listener(apps::kMinihttpdPort); });
  trace::TraceLog init_log = tracer.dump_and_reset(ppid);  // the nudge
  // Two connections: the serving trace must cover accept/close paths too,
  // or tracediff would misclassify them as init-only (the over-elimination
  // pitfall of §3.2.3).
  for (int round = 0; round < 2; ++round) {
    auto pconn = prof.connect(apps::kMinihttpdPort);
    for (const char* r : {"GET /index\n", "HEAD /index\n", "GET /miss\n",
                          "PUT /f x\n", "DELETE /f\n", "PATCH /x\n"}) {
      pconn.send(r);
      run_until(prof, [&] { return pconn.pending() > 0; });
      pconn.recv_all();
    }
    pconn.close();
    prof.run(200'000);  // let the server observe EOF and re-enter accept
  }
  trace::TraceLog serving_log = tracer.dump(ppid);

  analysis::CoverageGraph init_only =
      analysis::init_only(init_log, serving_log, "minihttpd");
  analysis::CoverageGraph init_cov =
      analysis::CoverageGraph::from_log(init_log).only_module("minihttpd");
  std::printf("init phase executed %zu blocks; %zu of them (%.0f%%) never\n"
              "run again after initialization\n\n",
              init_cov.size(), init_only.size(),
              100.0 * init_only.size() / init_cov.size());

  // --- trim a live server --------------------------------------------------
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(apps::kMinihttpdPort); });

  analysis::GadgetStats before = analysis::scan_gadgets(vos.process(pid)->mem);
  core::DynaCut dc(vos, pid);
  core::CustomizeReport rep =
      dc.remove_init_code(init_only, core::RemovalPolicy::kWipeBlocks);
  analysis::GadgetStats after = analysis::scan_gadgets(vos.process(pid)->mem);

  std::printf("wiped %zu init-only blocks in %.3f virtual seconds\n",
              rep.edits.blocks_patched, rep.timing.total_seconds());
  std::printf("ROP gadget starts: %llu -> %llu\n",
              (unsigned long long)before.gadget_starts,
              (unsigned long long)after.gadget_starts);

  auto conn = vos.connect(apps::kMinihttpdPort);
  conn.send("GET /index\n");
  run_until(vos, [&] { return conn.pending() > 0; });
  std::printf("service after trim: GET /index -> %s\n",
              conn.recv_all().c_str());

  // --- footnote 5: boot the next instance from the trimmed image ----------
  image::ProcessImage img = image::checkpoint(vos, {.pid = pid}).img;
  image::ImageStore store;
  const image::ImageKey trimmed_key{pid, "trimmed"};
  store.put(trimmed_key, img);
  vos.kill(pid);
  std::printf("\nstored trimmed post-init image (%.2f MB) to the tmpfs store\n",
              static_cast<double>(store.bytes_used()) / (1024 * 1024));

  image::ProcessImage trimmed = store.get(trimmed_key);
  int pid2 = image::spawn_from_image(vos, trimmed, {.warm_code = true});
  run_until(vos, [&] { return vos.has_listener(apps::kMinihttpdPort); });
  auto conn2 = vos.connect(apps::kMinihttpdPort);
  conn2.send("GET /index\n");
  run_until(vos, [&] { return conn2.pending() > 0; });
  std::printf("new instance (pid %d) restored WITHOUT rerunning init:\n"
              "  GET /index -> %s",
              pid2, conn2.recv_all().c_str());
  std::printf("  (its stdout is empty — no second 'ready' banner: %s)\n",
              vos.process(pid2)->stdout_buf.empty() ? "confirmed" : "NO");
  return 0;
}
