// Example: shielding a key-value store from a vulnerable new command — the
// paper's Redis/STRALGO use case (Table 1).
//
// A "new software version" ships the STRALGO command with a latent buffer
// overflow. The operator uses DynaCut to keep the new command disabled
// until it is actually needed, re-enabling and re-disabling it at runtime.
// The exploit attempt is demonstrated against both configurations.
//
// Build & run:  cmake --build build && ./build/examples/kv_live_toggle
#include <cstdio>
#include <string>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "core/dynacut.hpp"
#include "os/os.hpp"
#include "trace/trace.hpp"

using namespace dynacut;

namespace {

template <typename Pred>
void run_until(os::Os& vos, Pred done) {
  for (int i = 0; i < 300 && !done(); ++i) vos.run(200'000);
}

struct Kv {
  os::Os vos;
  int pid;
  os::HostConn conn;

  Kv() {
    pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
    run_until(vos, [&] { return vos.has_listener(apps::kMinikvPort); });
    conn = vos.connect(apps::kMinikvPort);
  }
  std::string ask(const std::string& line) {
    conn.send(line);
    run_until(vos, [&] { return conn.pending() > 0; });
    return conn.recv_all();
  }
  bool secret_intact() {
    const os::Process* p = vos.process(pid);
    const os::LoadedModule* m = p->module_named("minikv");
    uint64_t v = 0;
    p->mem.peek(m->base + m->binary->find_symbol("secret")->value, &v, 8);
    return (v & 0xff) == 0x5a;
  }
};

trace::TraceLog profile(const std::vector<std::string>& reqs) {
  Kv kv;
  trace::Tracer tracer(kv.vos);
  // Re-boot a traced instance (tracer must observe from the start).
  os::Os vos;
  trace::Tracer t2(vos);
  int pid = vos.spawn(apps::build_minikv(), {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(apps::kMinikvPort); });
  t2.dump_and_reset(pid);
  auto conn = vos.connect(apps::kMinikvPort);
  for (const auto& r : reqs) {
    conn.send(r);
    run_until(vos, [&] { return conn.pending() > 0; });
    conn.recv_all();
  }
  return t2.dump(pid);
}

}  // namespace

int main() {
  const std::string exploit =
      "STRALGO LCS " + std::string(40, 'X') + " " + std::string(40, 'Y') +
      "\n";

  std::printf("== exploit against a vanilla server ==\n");
  {
    Kv kv;
    kv.ask(exploit);
    std::printf("   secret buffer intact after attack: %s\n\n",
                kv.secret_intact() ? "yes (?)" : "NO — exploited");
  }

  std::printf("== operator disables STRALGO on the production server ==\n");
  trace::TraceLog undesired = profile({"STRALGO LCS ab cd\n", "PING\n"});
  trace::TraceLog wanted = profile(
      {"SET k v\n", "GET k\n", "GET miss\n", "PING\n", "DEL k\n",
       "SETRANGE k 0 hello\n"});
  core::FeatureSpec stralgo;
  stralgo.name = "STRALGO";
  stralgo.blocks =
      analysis::feature_diff({undesired}, {wanted}, "minikv").blocks();
  stralgo.redirect_module = "minikv";
  auto kv_bin = apps::build_minikv();
  stralgo.redirect_offset = kv_bin->find_symbol("dispatch_err")->value;

  Kv kv;
  kv.ask("SET greeting hello\n");
  core::DynaCut dc(kv.vos, kv.pid);
  dc.disable_feature({stralgo, core::RemovalPolicy::kBlockFirstByte,
                     core::TrapPolicy::kRedirect});

  std::printf("   attack reply: %s", kv.ask(exploit).c_str());
  std::printf("   secret buffer intact: %s\n",
              kv.secret_intact() ? "yes — CVE mitigated" : "NO");
  std::printf("   normal traffic:  GET greeting -> %s\n",
              kv.ask("GET greeting\n").c_str());

  std::printf("== a legacy job needs STRALGO once: enable, use, disable ==\n");
  dc.restore_feature("STRALGO");
  std::printf("   STRALGO LCS ab cd -> %s",
              kv.ask("STRALGO LCS ab cd\n").c_str());
  dc.disable_feature({stralgo, core::RemovalPolicy::kBlockFirstByte,
                     core::TrapPolicy::kRedirect});
  std::printf("   STRALGO LCS ab cd -> %s",
              kv.ask("STRALGO LCS ab cd\n").c_str());

  std::printf(
      "\nThe vulnerable command existed in the binary the whole time, but\n"
      "was executable only inside the operator-approved window.\n");
  return 0;
}
