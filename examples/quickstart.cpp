// Quickstart: the whole DynaCut workflow in ~100 lines.
//
//   1. build a tiny guest server (assembler DSL) and boot it in osim
//   2. trace two profiling runs and tracediff them to find the blocks of
//      an unwanted feature
//   3. checkpoint -> rewrite (int3 + injected fault handler) -> restore,
//      all while the server keeps its connection
//   4. watch the disabled feature answer through the error path, then
//      re-enable it
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <sstream>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "common/log.hpp"
#include "core/dynacut.hpp"
#include "melf/builder.hpp"
#include "obs/bus.hpp"
#include "obs/sinks.hpp"
#include "os/os.hpp"
#include "trace/trace.hpp"

using namespace dynacut;

// A miniature server: "A" -> "alpha", "B" -> "beta", other -> "err".
std::shared_ptr<const melf::Binary> build_demo_server() {
  namespace sys = os::sys;
  melf::ProgramBuilder b("demo");
  b.rodata_str("alpha", "alpha\n");
  b.rodata_str("beta", "beta\n");
  b.rodata_str("err", "err\n");
  b.bss("buf", 64);

  auto& d = b.func("dispatch");
  d.mov_sym(6, "buf").loadb(7, 6, 0);
  d.cmp_ri(7, 'A').je("a").cmp_ri(7, 'B').je("b").jmp("e");
  d.label("a").mov_sym(2, "alpha").jmp("send");
  d.label("b").mov_sym(2, "beta").jmp("send");
  d.label("e").mark("error_path").mov_sym(2, "err");
  d.label("send").mov_rr(1, 13).call_import("write_str").ret();

  auto& m = b.func("main");
  m.sys(sys::kSocket).mov_rr(12, 0);
  m.mov_rr(1, 12).mov_ri(2, 7777).sys(sys::kBind);
  m.mov_rr(1, 12).sys(sys::kListen);
  m.mov_rr(1, 12).sys(sys::kAccept).mov_rr(13, 0);
  m.label("loop")
      .mov_rr(1, 13)
      .mov_sym(2, "buf")
      .mov_ri(3, 64)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .call("dispatch")
      .jmp("loop");
  m.label("done").mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

trace::TraceLog profile(std::shared_ptr<const melf::Binary> bin,
                        const char* requests) {
  os::Os vos;
  trace::Tracer tracer(vos);
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(7777);
  conn.send(requests);
  vos.run();
  return tracer.dump(pid);
}

int main() {
  set_log_level(LogLevel::kInfo);
  auto bin = build_demo_server();

  // --- step 1+2: profiling and tracediff ---------------------------------
  trace::TraceLog with_b = profile(bin, "A\nB\n");
  trace::TraceLog without_b = profile(bin, "A\nA\n");
  core::FeatureSpec feature_b;
  feature_b.name = "B";
  feature_b.blocks =
      analysis::feature_diff({with_b}, {without_b}, "demo").blocks();
  feature_b.redirect_module = "demo";
  feature_b.redirect_offset = bin->find_symbol("error_path")->value;
  std::printf("tracediff found %zu blocks unique to feature B\n",
              feature_b.blocks.size());

  // --- step 3: boot the production instance and customize it live --------
  os::Os vos;
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(7777);
  auto ask = [&](const char* line) {
    conn.send(line);
    vos.run();
    return conn.recv_all();
  };

  std::printf("before:   B -> %s", ask("B\n").c_str());

  core::DynaCut dc(vos, pid);

  // Optional: watch the pipeline through the obs layer — every stage emits
  // a virtual-clock-stamped event as one JSON line, and a customization
  // that aborts retracts everything it staged (DESIGN.md §9).
  obs::EventBus bus;
  std::ostringstream events;
  obs::JsonlSink sink(events);
  bus.add_sink(&sink);
  vos.set_event_bus(&bus);
  dc.set_observer(&bus);

  // Customizations are transactional: if anything fails mid-flight (here a
  // deliberately injected fault in the library-injection step), the whole
  // group rolls back untouched and a CustomizeError names the failing pid
  // and stage. The server keeps running on the same connection.
  core::FaultPlan fault =
      core::FaultPlan::fail_at(core::FaultStage::kInject, 0);
  dc.set_fault_plan(&fault);
  try {
    dc.disable_feature({.feature = feature_b,
                        .removal = core::RemovalPolicy::kBlockFirstByte,
                        .trap = core::TrapPolicy::kRedirect});
  } catch (const core::CustomizeError& e) {
    std::printf("aborted:  %s\n", e.what());
    std::printf("          B -> %s", ask("B\n").c_str());  // still "beta"
  }
  dc.set_fault_plan(nullptr);

  core::CustomizeReport rep =
      dc.disable_feature({.feature = feature_b,
                          .removal = core::RemovalPolicy::kBlockFirstByte,
                          .trap = core::TrapPolicy::kRedirect});
  std::printf("disabled feature B in %.3f virtual seconds (%zu blocks)\n",
              rep.timing.total_seconds(), rep.edits.blocks_patched);

  // --- step 4: observe, then re-enable ------------------------------------
  std::printf("disabled: B -> %s", ask("B\n").c_str());  // "err"
  std::printf("          A -> %s", ask("A\n").c_str());  // unaffected

  dc.restore_feature("B");
  std::printf("restored: B -> %s", ask("B\n").c_str());  // "beta" again

  std::printf(
      "\nobs: %zu events delivered as JSONL (%zu retracted by the aborted\n"
      "attempt); first line: %s",
      static_cast<size_t>(bus.events_delivered()),
      static_cast<size_t>(bus.events_retracted()),
      events.str().substr(0, events.str().find('\n') + 1).c_str());

  std::printf("\nquickstart complete: dynamic disable + re-enable without\n"
              "restarting the process or dropping the connection.\n");
  return 0;
}
