// Example: locking down a production web server's WebDAV write methods —
// the paper's Nginx scenario (Listing 1 / Figure 5).
//
// An administrator keeps a master+worker web server read-only during peak
// hours: PUT/DELETE are disabled at runtime, and clients that still try
// them receive "403 Forbidden" through the injected fault handler instead
// of crashing the server. During a maintenance window the methods are
// re-enabled, files are updated, and the window is closed again.
//
// Build & run:  cmake --build build && ./build/examples/webdav_lockdown
#include <cstdio>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "apps/miniweb.hpp"
#include "core/dynacut.hpp"
#include "os/os.hpp"
#include "trace/trace.hpp"

using namespace dynacut;

namespace {

template <typename Pred>
void run_until(os::Os& vos, Pred done) {
  for (int i = 0; i < 300 && !done(); ++i) vos.run(200'000);
}

trace::TraceLog profile(std::shared_ptr<const melf::Binary> bin,
                        const std::vector<std::string>& reqs) {
  os::Os vos;
  trace::Tracer tracer(vos);
  int pid = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(apps::kMiniwebPort); });
  tracer.dump_and_reset(pid);  // drop init coverage; we diff serving only
  auto conn = vos.connect(apps::kMiniwebPort);
  for (const auto& r : reqs) {
    conn.send(r);
    run_until(vos, [&] { return conn.pending() > 0; });
    conn.recv_all();
  }
  // The worker process serves the requests; dump the busiest trace.
  trace::TraceLog best = tracer.dump(pid);
  for (int gp : vos.process_group(pid)) {
    trace::TraceLog log = tracer.dump(gp);
    if (log.blocks.size() > best.blocks.size()) best = std::move(log);
  }
  return best;
}

}  // namespace

int main() {
  auto bin = apps::build_miniweb();

  std::printf("== profiling: discovering the PUT/DELETE code paths ==\n");
  trace::TraceLog with_writes = profile(
      bin, {"GET /index\n", "PUT /f x\n", "DELETE /f\n", "PATCH /x\n"});
  trace::TraceLog read_only = profile(
      bin, {"GET /index\n", "HEAD /index\n", "GET /miss\n", "PATCH /x\n"});

  core::FeatureSpec webdav_writes;
  webdav_writes.name = "webdav-writes";
  webdav_writes.blocks =
      analysis::feature_diff({with_writes}, {read_only}, "miniweb").blocks();
  webdav_writes.redirect_module = "miniweb";
  webdav_writes.redirect_offset = bin->find_symbol("dav_403")->value;
  std::printf("   %zu blocks implement PUT/DELETE\n\n",
              webdav_writes.blocks.size());

  std::printf("== production: master+worker server goes read-only ==\n");
  os::Os vos;
  int master = vos.spawn(bin, {apps::build_libc()});
  run_until(vos, [&] { return vos.has_listener(apps::kMiniwebPort); });
  std::printf("   server group: %zu processes\n",
              vos.process_group(master).size());
  auto conn = vos.connect(apps::kMiniwebPort);
  auto ask = [&](const char* line) {
    conn.send(line);
    run_until(vos, [&] { return conn.pending() > 0; });
    return conn.recv_all();
  };

  core::DynaCut dc(vos, master);
  core::CustomizeReport rep = dc.disable_feature({
      webdav_writes, core::RemovalPolicy::kBlockFirstByte,
      core::TrapPolicy::kRedirect});
  std::printf("   lockdown applied to %zu processes in %.3f virtual s\n",
              rep.edits.processes, rep.timing.total_seconds());

  std::printf("   GET /index   -> %s", ask("GET /index\n").c_str());
  std::printf("   PUT /web x   -> %s", ask("PUT /web x\n").c_str());
  std::printf("   DELETE /web  -> %s\n", ask("DELETE /web\n").c_str());

  std::printf("== maintenance window: re-enable writes, update, re-lock ==\n");
  dc.restore_feature("webdav-writes");
  std::printf("   PUT /news v2 -> %s", ask("PUT /news v2\n").c_str());
  std::printf("   GET /news    -> %s", ask("GET /news\n").c_str());
  dc.disable_feature({webdav_writes, core::RemovalPolicy::kBlockFirstByte,
                     core::TrapPolicy::kRedirect});
  std::printf("   PUT /news v3 -> %s", ask("PUT /news v3\n").c_str());
  std::printf("   GET /news    -> %s", ask("GET /news\n").c_str());

  std::printf(
      "\nThe content updated during the window is still served while the\n"
      "write methods are blocked again — no restart, no dropped client.\n");
  return 0;
}
