#include "analysis/cfg.hpp"

#include <deque>
#include <set>

#include "isa/isa.hpp"

namespace dynacut::analysis {

namespace {

/// Reads the instruction at module-relative `off` from whichever executable
/// section covers it. Returns false outside code or on invalid encodings.
bool decode_at(const melf::Binary& bin, uint64_t off, isa::Instr& out) {
  for (const auto& sec : bin.sections) {
    if (sec.kind != melf::SectionKind::kText &&
        sec.kind != melf::SectionKind::kPlt) {
      continue;
    }
    if (off < sec.offset || off >= sec.offset + sec.bytes.size()) continue;
    uint64_t rel = off - sec.offset;
    auto ins = isa::try_decode(
        std::span(sec.bytes).subspan(rel));
    if (!ins) return false;
    out = *ins;
    return true;
  }
  return false;
}

}  // namespace

StaticCfg recover_cfg(const melf::Binary& bin) {
  // Pass 1: instruction-level reachability from all function entries.
  std::set<uint64_t> leaders;
  std::deque<uint64_t> work;
  for (const auto& sym : bin.symbols) {
    if (sym.is_function) {
      work.push_back(sym.value);
      leaders.insert(sym.value);
    }
  }

  std::map<uint64_t, isa::Instr> instrs;  // reachable instruction starts
  while (!work.empty()) {
    uint64_t off = work.front();
    work.pop_front();
    if (instrs.count(off)) continue;
    isa::Instr ins;
    if (!decode_at(bin, off, ins)) continue;
    instrs[off] = ins;

    uint64_t next = off + ins.length;
    if (isa::is_direct_transfer(ins.op)) {
      uint64_t target = ins.target(off);
      leaders.insert(target);
      work.push_back(target);
      if (isa::is_cond_branch(ins.op) || ins.op == isa::Op::kCall) {
        leaders.insert(next);
        work.push_back(next);
      }
    } else if (!isa::is_terminator(ins.op)) {
      work.push_back(next);
    } else if (ins.op == isa::Op::kSyscall) {
      // Syscalls fall through (except exit, which we can't know statically).
      leaders.insert(next);
      work.push_back(next);
    }
    // ret / indirect jumps end the path.
  }

  // Pass 2: form blocks between leaders.
  StaticCfg cfg;
  for (uint64_t leader : leaders) {
    auto it = instrs.find(leader);
    if (it == instrs.end()) continue;
    CfgBlock blk;
    blk.offset = leader;
    uint64_t cur = leader;
    while (true) {
      auto iit = instrs.find(cur);
      if (iit == instrs.end()) break;
      const isa::Instr& ins = iit->second;
      blk.size = static_cast<uint32_t>(cur + ins.length - leader);
      blk.instr_count += 1;
      uint64_t next = cur + ins.length;
      if (isa::is_terminator(ins.op)) {
        if (isa::is_direct_transfer(ins.op)) {
          blk.succs.push_back(ins.target(cur));
        }
        if (isa::is_cond_branch(ins.op) || ins.op == isa::Op::kCall ||
            ins.op == isa::Op::kSyscall) {
          blk.succs.push_back(next);
        }
        break;
      }
      if (leaders.count(next)) {  // a leader splits the straight line
        blk.succs.push_back(next);
        break;
      }
      cur = next;
    }
    if (blk.size > 0) cfg.blocks[leader] = blk;
  }
  return cfg;
}

size_t total_block_count(const melf::Binary& bin) {
  return recover_cfg(bin).block_count();
}

}  // namespace dynacut::analysis
