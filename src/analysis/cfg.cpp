#include "analysis/cfg.hpp"

#include <algorithm>
#include <deque>

namespace dynacut::analysis {

bool decode_at(const melf::Binary& bin, uint64_t off, isa::Instr& out) {
  for (const auto& sec : bin.sections) {
    if (sec.kind != melf::SectionKind::kText &&
        sec.kind != melf::SectionKind::kPlt) {
      continue;
    }
    if (off < sec.offset || off >= sec.offset + sec.bytes.size()) continue;
    uint64_t rel = off - sec.offset;
    auto ins = isa::try_decode(
        std::span(sec.bytes).subspan(rel));
    if (!ins) return false;
    out = *ins;
    return true;
  }
  return false;
}

const CfgBlock* StaticCfg::block_at(uint64_t off) const {
  auto it = blocks.find(off);
  return it == blocks.end() ? nullptr : &it->second;
}

const CfgBlock* StaticCfg::block_containing(uint64_t off) const {
  auto it = blocks.upper_bound(off);
  if (it == blocks.begin()) return nullptr;
  --it;
  const CfgBlock& b = it->second;
  return off < b.offset + b.size ? &b : nullptr;
}

StaticCfg recover_cfg(const melf::Binary& bin) {
  // Pass 1: instruction-level reachability from all function entries.
  std::set<uint64_t> leaders;
  std::deque<uint64_t> work;
  for (const auto& sym : bin.symbols) {
    if (sym.is_function) {
      work.push_back(sym.value);
      leaders.insert(sym.value);
    }
  }

  std::map<uint64_t, isa::Instr> instrs;  // reachable instruction starts
  while (!work.empty()) {
    uint64_t off = work.front();
    work.pop_front();
    if (instrs.count(off)) continue;
    isa::Instr ins;
    if (!decode_at(bin, off, ins)) continue;
    instrs[off] = ins;

    uint64_t next = off + ins.length;
    if (isa::is_direct_transfer(ins.op)) {
      uint64_t target = ins.target(off);
      leaders.insert(target);
      work.push_back(target);
      if (isa::is_cond_branch(ins.op) || ins.op == isa::Op::kCall) {
        leaders.insert(next);
        work.push_back(next);
      }
    } else if (!isa::is_terminator(ins.op)) {
      work.push_back(next);
    } else if (ins.op == isa::Op::kSyscall ||
               ins.op == isa::Op::kCallR) {
      // Syscalls fall through (except exit, which we can't know statically);
      // register calls return to the next instruction like direct calls,
      // even though their outgoing edge is only known to the slicer.
      leaders.insert(next);
      work.push_back(next);
    }
    // ret / indirect jumps end the path.
  }

  // Pass 2: form blocks between leaders.
  StaticCfg cfg;
  for (const auto& [off, ins] : instrs) cfg.instr_starts.insert(off);
  for (uint64_t leader : leaders) {
    auto it = instrs.find(leader);
    if (it == instrs.end()) continue;
    CfgBlock blk;
    blk.offset = leader;
    uint64_t cur = leader;
    while (true) {
      auto iit = instrs.find(cur);
      if (iit == instrs.end()) break;
      const isa::Instr& ins = iit->second;
      blk.size = static_cast<uint32_t>(cur + ins.length - leader);
      blk.instr_count += 1;
      uint64_t next = cur + ins.length;
      if (isa::is_terminator(ins.op)) {
        blk.term = ins.op;
        if (isa::is_direct_transfer(ins.op)) {
          blk.succs.push_back(ins.target(cur));
        }
        if (isa::is_cond_branch(ins.op) || ins.op == isa::Op::kCall ||
            ins.op == isa::Op::kSyscall || ins.op == isa::Op::kCallR) {
          blk.succs.push_back(next);
        }
        break;
      }
      if (leaders.count(next)) {  // a leader splits the straight line
        blk.succs.push_back(next);
        break;
      }
      cur = next;
    }
    if (blk.size > 0) cfg.blocks[leader] = blk;
  }
  return cfg;
}

size_t total_block_count(const melf::Binary& bin) {
  return recover_cfg(bin).block_count();
}

std::map<uint64_t, std::vector<uint64_t>> predecessors(const StaticCfg& cfg) {
  std::map<uint64_t, std::vector<uint64_t>> preds;
  for (const auto& [off, blk] : cfg.blocks) {
    for (uint64_t t : blk.succs) {
      if (cfg.blocks.count(t)) preds[t].push_back(off);
    }
  }
  return preds;
}

std::map<uint64_t, FuncCfg> split_functions(const StaticCfg& cfg,
                                            const melf::Binary& bin) {
  std::map<uint64_t, FuncCfg> funcs;
  // Block -> owning function entry, resolved through the symbol table.
  std::map<uint64_t, uint64_t> owner;
  for (const auto& [off, blk] : cfg.blocks) {
    const melf::Symbol* fn = bin.symbol_containing(off);
    if (fn == nullptr) continue;
    owner[off] = fn->value;
    FuncCfg& f = funcs[fn->value];
    f.entry = fn->value;
    f.blocks.insert(off);
  }
  for (const auto& [off, fn_entry] : owner) {
    FuncCfg& f = funcs[fn_entry];
    for (uint64_t t : cfg.blocks.at(off).succs) {
      auto oit = owner.find(t);
      if (oit != owner.end() && oit->second == fn_entry) {
        f.succs[off].push_back(t);
      }
    }
  }
  return funcs;
}

std::map<uint64_t, uint64_t> dominator_tree(const FuncCfg& f) {
  if (f.blocks.count(f.entry) == 0) return {};

  // Reverse postorder over the intra-function edges.
  std::vector<uint64_t> rpo;
  std::map<uint64_t, int> rpo_index;
  {
    std::set<uint64_t> visited;
    std::vector<std::pair<uint64_t, size_t>> stack;  // (block, next succ idx)
    stack.emplace_back(f.entry, 0);
    visited.insert(f.entry);
    std::vector<uint64_t> postorder;
    while (!stack.empty()) {
      auto& [blk, idx] = stack.back();
      auto sit = f.succs.find(blk);
      const std::vector<uint64_t>* succs =
          sit == f.succs.end() ? nullptr : &sit->second;
      if (succs != nullptr && idx < succs->size()) {
        uint64_t next = (*succs)[idx++];
        if (f.blocks.count(next) != 0 && visited.insert(next).second) {
          stack.emplace_back(next, 0);
        }
      } else {
        postorder.push_back(blk);
        stack.pop_back();
      }
    }
    rpo.assign(postorder.rbegin(), postorder.rend());
    for (size_t i = 0; i < rpo.size(); ++i) {
      rpo_index[rpo[i]] = static_cast<int>(i);
    }
  }

  // Predecessors restricted to reachable intra-function blocks.
  std::map<uint64_t, std::vector<uint64_t>> preds;
  for (const auto& [blk, succs] : f.succs) {
    if (rpo_index.count(blk) == 0) continue;
    for (uint64_t t : succs) {
      if (rpo_index.count(t) != 0) preds[t].push_back(blk);
    }
  }

  // Cooper–Harvey–Kennedy: iterate idom intersection to a fixed point.
  std::map<uint64_t, uint64_t> idom;
  idom[f.entry] = f.entry;
  auto intersect = [&](uint64_t a, uint64_t b) {
    while (a != b) {
      while (rpo_index.at(a) > rpo_index.at(b)) a = idom.at(a);
      while (rpo_index.at(b) > rpo_index.at(a)) b = idom.at(b);
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint64_t blk : rpo) {
      if (blk == f.entry) continue;
      uint64_t new_idom = 0;
      bool seeded = false;
      for (uint64_t p : preds[blk]) {
        if (idom.count(p) == 0) continue;  // predecessor not processed yet
        if (!seeded) {
          new_idom = p;
          seeded = true;
        } else {
          new_idom = intersect(new_idom, p);
        }
      }
      if (!seeded) continue;  // only unreachable predecessors
      auto it = idom.find(blk);
      if (it == idom.end() || it->second != new_idom) {
        idom[blk] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

std::map<uint64_t, std::vector<uint64_t>> call_sites(const StaticCfg& cfg,
                                                     const melf::Binary& bin) {
  std::map<uint64_t, std::vector<uint64_t>> sites;
  for (const auto& [off, blk] : cfg.blocks) {
    const melf::Symbol* from = bin.symbol_containing(off);
    for (uint64_t t : blk.succs) {
      const melf::Symbol* to = bin.symbol_containing(t);
      if (to == nullptr || to == from) continue;
      if (t != to->value) continue;  // only transfers to function entries
      sites[to->value].push_back(off);
    }
  }
  return sites;
}

}  // namespace dynacut::analysis
