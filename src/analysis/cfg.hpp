// Static CFG recovery over MELF binaries — the Angr stand-in the paper uses
// to count each binary's total basic blocks (Fig. 9's "total BB #" row).
//
// Recursive traversal from every function symbol: instruction-level
// reachability first, then leaders (function entries, branch targets,
// post-terminator fallthroughs) delimit basic blocks. Indirect transfer
// targets are not resolved (same limitation as any static recovery).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "melf/binary.hpp"

namespace dynacut::analysis {

struct CfgBlock {
  uint64_t offset = 0;  ///< module-relative start
  uint32_t size = 0;
  uint32_t instr_count = 0;
  std::vector<uint64_t> succs;  ///< static successors (module-relative)
};

struct StaticCfg {
  std::map<uint64_t, CfgBlock> blocks;  ///< keyed by start offset

  size_t block_count() const { return blocks.size(); }
  uint64_t code_bytes() const {
    uint64_t sum = 0;
    for (const auto& [off, b] : blocks) sum += b.size;
    return sum;
  }
};

/// Recovers the CFG of `bin`'s .text (+ .plt) from its function symbols.
StaticCfg recover_cfg(const melf::Binary& bin);

/// Total static basic-block count (the paper's Angr number).
size_t total_block_count(const melf::Binary& bin);

}  // namespace dynacut::analysis
