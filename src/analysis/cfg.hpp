// Static CFG recovery over MELF binaries — the Angr stand-in the paper uses
// to count each binary's total basic blocks (Fig. 9's "total BB #" row).
//
// Recursive traversal from every function symbol: instruction-level
// reachability first, then leaders (function entries, branch targets,
// post-terminator fallthroughs) delimit basic blocks. Register calls
// (kCallR) get a fallthrough successor like direct calls; their outgoing
// edge — and every other indirect target — is left unresolved here and
// recovered, where possible, by the slicer's constant/offset propagation
// (src/analysis/slicer).
//
// Beyond block counting, the recovered graph carries enough structure for
// the cutcheck static verifier (src/analysis/cutcheck): the set of
// instruction starts (boundary checking), per-block terminators, reverse
// edges, per-function subgraphs with dominator trees, and the direct call
// graph.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "isa/isa.hpp"
#include "melf/binary.hpp"

namespace dynacut::analysis {

struct CfgBlock {
  uint64_t offset = 0;  ///< module-relative start
  uint32_t size = 0;
  uint32_t instr_count = 0;
  std::vector<uint64_t> succs;  ///< static successors (module-relative)
  /// Opcode ending the block; kNop when the block ends only because the
  /// next instruction is a leader (straight-line split, pure fallthrough).
  isa::Op term = isa::Op::kNop;
};

struct StaticCfg {
  std::map<uint64_t, CfgBlock> blocks;  ///< keyed by start offset
  /// Every statically reachable instruction start. Supersets the block
  /// starts; overlapping decodings (a jump into an immediate) contribute
  /// every offset the traversal actually decoded at.
  std::set<uint64_t> instr_starts;

  size_t block_count() const { return blocks.size(); }
  uint64_t code_bytes() const {
    uint64_t sum = 0;
    for (const auto& [off, b] : blocks) sum += b.size;
    return sum;
  }

  bool is_instr_start(uint64_t off) const {
    return instr_starts.count(off) != 0;
  }
  /// The block starting exactly at `off`, or nullptr.
  const CfgBlock* block_at(uint64_t off) const;
  /// The block whose [offset, offset+size) covers `off`, or nullptr.
  const CfgBlock* block_containing(uint64_t off) const;
};

/// Recovers the CFG of `bin`'s .text (+ .plt) from its function symbols.
StaticCfg recover_cfg(const melf::Binary& bin);

/// Total static basic-block count (the paper's Angr number).
size_t total_block_count(const melf::Binary& bin);

/// Decodes the instruction at module-relative `off` from whichever
/// executable section covers it. Returns false outside code or on invalid
/// encodings.
bool decode_at(const melf::Binary& bin, uint64_t off, isa::Instr& out);

/// Reverse edges: block start -> starts of the blocks with an edge into it.
/// Only targets that are block starts appear as keys.
std::map<uint64_t, std::vector<uint64_t>> predecessors(const StaticCfg& cfg);

/// Intra-procedural view of one function: the blocks owned by its symbol
/// and the edges staying inside it. Call and tail-jump edges into other
/// functions are dropped; a call's fallthrough edge keeps straight-line
/// continuity.
struct FuncCfg {
  uint64_t entry = 0;
  std::set<uint64_t> blocks;
  std::map<uint64_t, std::vector<uint64_t>> succs;
};

/// Partitions `cfg` into per-function subgraphs keyed by function entry,
/// assigning each block to the function symbol containing it. Blocks outside
/// every function symbol (e.g. PLT stubs) are not part of any subgraph.
std::map<uint64_t, FuncCfg> split_functions(const StaticCfg& cfg,
                                            const melf::Binary& bin);

/// Immediate dominators of every block reachable from `f.entry`; the entry
/// maps to itself, unreachable blocks are absent. Cooper–Harvey–Kennedy
/// iteration over a reverse-postorder numbering.
std::map<uint64_t, uint64_t> dominator_tree(const FuncCfg& f);

/// Direct call graph, callee-indexed: function entry -> the call-site blocks
/// in *other* functions that transfer into it (calls and tail jumps).
/// Indirect calls are invisible, as everywhere in static recovery.
std::map<uint64_t, std::vector<uint64_t>> call_sites(const StaticCfg& cfg,
                                                     const melf::Binary& bin);

}  // namespace dynacut::analysis
