#include "analysis/coverage.hpp"

namespace dynacut::analysis {

CoverageGraph CoverageGraph::from_log(const trace::TraceLog& log) {
  CoverageGraph g;
  for (const auto& b : log.blocks) {
    const auto& m = log.modules[b.module_id];
    g.insert(CovBlock{m.name, b.offset, b.size});
  }
  return g;
}

CoverageGraph CoverageGraph::from_logs(
    const std::vector<trace::TraceLog>& logs) {
  CoverageGraph g;
  for (const auto& log : logs) g.merge(from_log(log));
  return g;
}

void CoverageGraph::insert(CovBlock block) {
  blocks_[{std::move(block.module), block.offset}] = block.size;
}

void CoverageGraph::merge(const CoverageGraph& other) {
  for (const auto& [key, size] : other.blocks_) blocks_[key] = size;
}

CoverageGraph CoverageGraph::diff(const CoverageGraph& other) const {
  CoverageGraph out;
  for (const auto& [key, size] : blocks_) {
    if (other.blocks_.find(key) == other.blocks_.end()) {
      out.blocks_[key] = size;
    }
  }
  return out;
}

CoverageGraph CoverageGraph::intersect(const CoverageGraph& other) const {
  CoverageGraph out;
  for (const auto& [key, size] : blocks_) {
    if (other.blocks_.find(key) != other.blocks_.end()) {
      out.blocks_[key] = size;
    }
  }
  return out;
}

CoverageGraph CoverageGraph::only_module(const std::string& module) const {
  CoverageGraph out;
  for (const auto& [key, size] : blocks_) {
    if (key.first == module) out.blocks_[key] = size;
  }
  return out;
}

CoverageGraph CoverageGraph::without_module(const std::string& module) const {
  CoverageGraph out;
  for (const auto& [key, size] : blocks_) {
    if (key.first != module) out.blocks_[key] = size;
  }
  return out;
}

bool CoverageGraph::contains(const std::string& module,
                             uint64_t offset) const {
  return blocks_.find({module, offset}) != blocks_.end();
}

std::vector<CovBlock> CoverageGraph::blocks() const {
  std::vector<CovBlock> out;
  out.reserve(blocks_.size());
  for (const auto& [key, size] : blocks_) {
    out.push_back(CovBlock{key.first, key.second, size});
  }
  return out;
}

uint64_t CoverageGraph::total_bytes() const {
  uint64_t sum = 0;
  for (const auto& [key, size] : blocks_) sum += size;
  return sum;
}

CoverageGraph feature_diff(const std::vector<trace::TraceLog>& undesired,
                           const std::vector<trace::TraceLog>& wanted,
                           const std::string& main_module) {
  CoverageGraph u = CoverageGraph::from_logs(undesired).only_module(main_module);
  CoverageGraph w = CoverageGraph::from_logs(wanted).only_module(main_module);
  return u.diff(w);
}

CoverageGraph init_only(const trace::TraceLog& init_phase,
                        const trace::TraceLog& serving_phase,
                        const std::string& main_module) {
  CoverageGraph i =
      CoverageGraph::from_log(init_phase).only_module(main_module);
  CoverageGraph s =
      CoverageGraph::from_log(serving_phase).only_module(main_module);
  return i.diff(s);
}

}  // namespace dynacut::analysis
