// Coverage graphs and the differential analyses of paper §3.1:
//   * tracediff feature discovery:  blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted
//   * init-phase identification:    blk ∈ CovG_init      ∧ blk ∉ CovG_serving
// with library-block filtering ("narrow down by filtering out basic blocks
// that appear in program libraries").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace dynacut::analysis {

/// A basic block identified by module name + module-relative offset.
struct CovBlock {
  std::string module;
  uint64_t offset = 0;
  uint32_t size = 0;

  friend auto operator<=>(const CovBlock& a, const CovBlock& b) {
    if (auto c = a.module <=> b.module; c != 0) return c;
    return a.offset <=> b.offset;
  }
  friend bool operator==(const CovBlock& a, const CovBlock& b) {
    return a.module == b.module && a.offset == b.offset;
  }
};

/// A set of covered basic blocks with set-algebra operations. Block identity
/// is (module, offset); sizes are carried along.
class CoverageGraph {
 public:
  CoverageGraph() = default;

  static CoverageGraph from_log(const trace::TraceLog& log);
  static CoverageGraph from_logs(const std::vector<trace::TraceLog>& logs);

  void insert(CovBlock block);
  /// Union with another graph (trace-log merging).
  void merge(const CoverageGraph& other);

  /// Blocks present here but absent from `other`.
  CoverageGraph diff(const CoverageGraph& other) const;
  /// Blocks present in both.
  CoverageGraph intersect(const CoverageGraph& other) const;

  /// Keeps only blocks of `module` (e.g. the main executable).
  CoverageGraph only_module(const std::string& module) const;
  /// Drops blocks of `module` (library filtering).
  CoverageGraph without_module(const std::string& module) const;

  bool contains(const std::string& module, uint64_t offset) const;
  size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }

  /// Sorted view of the blocks.
  std::vector<CovBlock> blocks() const;

  /// Total byte size of all blocks (code-size accounting for Fig. 9).
  uint64_t total_bytes() const;

 private:
  std::map<std::pair<std::string, uint64_t>, uint32_t> blocks_;
};

/// tracediff.py: blocks unique to the undesired feature's traces, restricted
/// to `main_module` (library blocks are shared and filtered out).
CoverageGraph feature_diff(const std::vector<trace::TraceLog>& undesired,
                           const std::vector<trace::TraceLog>& wanted,
                           const std::string& main_module);

/// Init-phase analysis: blocks executed only before the nudge.
CoverageGraph init_only(const trace::TraceLog& init_phase,
                        const trace::TraceLog& serving_phase,
                        const std::string& main_module);

}  // namespace dynacut::analysis
