#include "analysis/cutcheck/checker.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "common/constants.hpp"
#include "common/hex.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::analysis::cutcheck {
namespace {

bool is_exec_kind(melf::SectionKind k) {
  return k == melf::SectionKind::kText || k == melf::SectionKind::kPlt;
}

bool in_exec_section(const melf::Binary& bin, uint64_t off) {
  for (const auto& sec : bin.sections) {
    if (!is_exec_kind(sec.kind)) continue;
    if (off >= sec.offset && off < sec.offset + sec.bytes.size()) return true;
  }
  return false;
}

/// Everything the rules share, derived once per plan.
struct Ctx {
  Ctx(const CutPlan& p, const melf::Binary& b) : plan(p), bin(b) {}

  const CutPlan& plan;
  const melf::Binary& bin;
  StaticCfg cfg;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (offset, size)
  std::set<uint64_t> range_starts;
  ByteSet range_bytes;  ///< exactly the bytes the plan names
  ByteSet dead;         ///< bytes actually killed under the removal policy
  std::vector<uint64_t> dropped_pages;  ///< kUnmapPages only
  std::set<uint64_t> dropped_set;
  CheckReport report;

  void add(const char* rule, Severity sev, uint64_t off, std::string msg,
           std::string hint = "") {
    report.add({rule, sev, plan.module, off, std::move(msg), std::move(hint)});
  }

  bool live_block(uint64_t block_start) const {
    return !dead.contains(block_start);
  }
};

/// The reachable instruction whose encoding covers `off` (as its first byte
/// or an interior byte), if any.
std::optional<uint64_t> covering_instr(const Ctx& c, uint64_t off) {
  auto it = c.cfg.instr_starts.upper_bound(off);
  if (it == c.cfg.instr_starts.begin()) return std::nullopt;
  --it;
  isa::Instr ins;
  if (!decode_at(c.bin, *it, ins)) return std::nullopt;
  if (off < *it + ins.length) return *it;
  return std::nullopt;
}

// --- CC001: block boundaries --------------------------------------------

void check_boundary(Ctx& c) {
  for (const auto& [off, size] : c.ranges) {
    if (!in_exec_section(c.bin, off)) {
      c.add(kRuleBoundary, Severity::kError, off,
            "block start lies outside every executable section",
            "drop the block or fix its module-relative offset");
      continue;
    }
    if (!c.cfg.is_instr_start(off)) {
      if (auto host = covering_instr(c, off)) {
        c.add(kRuleBoundary, Severity::kError, off,
              "block starts mid-instruction, inside the encoding at " +
                  hex_addr(*host) + "; patching here corrupts a live " +
                  "instruction",
              "align the block to the instruction boundary at " +
                  hex_addr(*host));
      } else {
        c.add(kRuleBoundary, Severity::kWarning, off,
              "block start is not statically reachable; boundary checks "
              "cannot be validated here",
              "confirm the block comes from a trusted trace");
      }
      continue;
    }
    if (c.plan.removal == Removal::kBlockFirstByte) continue;

    // Wipe/unmap consume the whole range: its end must not tear code.
    uint64_t end = off + size;
    if (!in_exec_section(c.bin, end - 1)) {
      c.add(kRuleBoundary, Severity::kWarning, off,
            "block [" + hex_addr(off) + ", " + hex_addr(end) +
                ") extends past the executable section holding its start",
            "trim the block to the section's code bytes");
      continue;
    }
    if (c.cfg.block_containing(end) != nullptr && !c.cfg.is_instr_start(end)) {
      c.add(kRuleBoundary, Severity::kError, off,
            "block end " + hex_addr(end) +
                " falls mid-instruction; wiping up to it tears the "
                "surviving instruction stream",
            "extend or shrink the block to an instruction boundary");
    }
  }
}

// --- CC002: stray edges into removed code -------------------------------

void check_stray_edges(Ctx& c) {
  // First-byte removal leaves every interior byte intact, so edges into the
  // interior still execute original code — that is the policy's documented
  // (weaker) contract, not a plan defect.
  if (c.plan.removal == Removal::kBlockFirstByte) return;

  for (const auto& [boff, blk] : c.cfg.blocks) {
    if (!c.live_block(boff)) continue;  // removed blocks are not sources
    for (uint64_t t : blk.succs) {
      if (c.plan.removal == Removal::kUnmapPages &&
          c.dropped_set.count(page_floor(t)) != 0) {
        c.add(kRuleStrayEdge, Severity::kError, t,
              "live block " + hex_addr(boff) + " transfers to " +
                  hex_addr(t) +
                  " on a page the plan unmaps; reaching it raises SIGSEGV, "
                  "which no trap policy handles",
              "keep the page mapped (wipe-blocks) or cut the source block "
              "too");
        continue;
      }
      if (c.dead.contains(t) && c.range_starts.count(t) == 0) {
        // A trap fires at a byte the handler has no table entry for.
        Severity sev = c.plan.trap == Trap::kTerminate ? Severity::kWarning
                                                       : Severity::kError;
        c.add(kRuleStrayEdge, sev, t,
              "live block " + hex_addr(boff) +
                  " branches into the interior of a removed range at " +
                  hex_addr(t) +
                  "; the trap handler only recognises block entry points",
              "start a plan block exactly at " + hex_addr(t) +
                  " or cut the source block");
      }
    }
  }
}

// --- CC003: redirect-target validity ------------------------------------

void check_redirect(Ctx& c) {
  if (c.plan.trap != Trap::kRedirect || !c.plan.has_redirect) return;
  uint64_t tgt = c.plan.redirect_offset;

  if (!c.cfg.is_instr_start(tgt)) {
    c.add(kRuleRedirect, Severity::kError, tgt,
          "redirect target is not a reachable instruction start",
          "point the redirect at a decoded instruction boundary");
    return;
  }
  const melf::Symbol* fn = c.bin.symbol_containing(tgt);
  if (fn == nullptr) {
    c.add(kRuleRedirect, Severity::kError, tgt,
          "redirect target lies outside every function symbol",
          "redirect into a function's error path");
    return;
  }

  bool same_fn = false;
  size_t outside = 0;
  for (const auto& [off, size] : c.ranges) {
    if (c.bin.symbol_containing(off) == fn) {
      same_fn = true;
    } else {
      ++outside;
    }
  }
  if (!same_fn) {
    c.add(kRuleRedirect, Severity::kError, tgt,
          "no removed block shares function '" + fn->name +
              "' with the redirect target; redirecting would rewrite the IP "
              "across a call frame",
          "choose an error path inside the function being cut, or use the "
          "terminate policy");
    return;
  }
  if (outside > 0) {
    c.add(kRuleRedirect, Severity::kNote, tgt,
          std::to_string(outside) + " removed block(s) fall outside '" +
              fn->name +
              "'; traps there terminate instead of redirecting "
              "(same-function restriction)");
  }

  // The redirect only helps if the error path can actually finish the
  // request: walk live intra-function blocks from the target and look for a
  // return or a syscall.
  const CfgBlock* start = c.cfg.block_containing(tgt);
  if (start == nullptr) return;
  std::set<uint64_t> seen;
  std::deque<uint64_t> work{start->offset};
  bool exits = false;
  while (!work.empty() && !exits) {
    uint64_t off = work.front();
    work.pop_front();
    if (!seen.insert(off).second) continue;
    const CfgBlock* b = c.cfg.block_at(off);
    if (b == nullptr || !c.live_block(off)) continue;
    if (b->term == isa::Op::kRet || b->term == isa::Op::kSyscall) {
      exits = true;
      break;
    }
    for (uint64_t t : b->succs) {
      if (c.bin.symbol_containing(t) == fn) work.push_back(t);
    }
  }
  if (!exits) {
    c.add(kRuleRedirect, Severity::kWarning, tgt,
          "redirect target cannot reach a return or syscall through live "
          "blocks of '" +
              fn->name + "'; redirected requests may never complete",
          "verify the error path survives the cut");
  }
}

// --- CC004: reachability amplification ----------------------------------

void check_reach_amp(Ctx& c) {
  auto funcs = split_functions(c.cfg, c.bin);
  for (const auto& [entry, f] : funcs) {
    std::set<uint64_t> cut;
    for (uint64_t b : f.blocks) {
      if (c.dead.contains(b)) cut.insert(b);
    }
    if (cut.empty()) continue;

    auto idom = dominator_tree(f);
    size_t amplified = 0;
    for (uint64_t b : f.blocks) {
      if (b == entry || cut.count(b) != 0 || idom.count(b) == 0) continue;
      for (uint64_t cur = b; cur != entry;) {
        auto it = idom.find(cur);
        if (it == idom.end() || it->second == cur) break;
        cur = it->second;
        if (cut.count(cur) != 0) {
          ++amplified;
          break;
        }
      }
    }
    if (amplified > 0) {
      const melf::Symbol* sym = c.bin.symbol_containing(entry);
      c.add(kRuleReachAmp, Severity::kNote, entry,
            std::to_string(amplified) + " live block(s) in '" +
                (sym != nullptr ? sym->name : hex_addr(entry)) +
                "' are dominated by removed blocks and become unreachable "
                "with the cut",
            "grow the cut to the dominated region to reclaim more bytes");
    }
  }

  // Call-graph amplification: a function all of whose direct call sites are
  // removed cannot be reached any more (modulo indirect calls).
  for (const auto& [entry, sites] : call_sites(c.cfg, c.bin)) {
    if (sites.empty() || c.dead.contains(entry)) continue;
    bool all_cut = std::all_of(sites.begin(), sites.end(), [&](uint64_t s) {
      return c.dead.contains(s);
    });
    if (all_cut) {
      const melf::Symbol* sym = c.bin.symbol_containing(entry);
      c.add(kRuleReachAmp, Severity::kNote, entry,
            "function '" + (sym != nullptr ? sym->name : hex_addr(entry)) +
                "' is only reached through removed call sites; it is dead "
                "after the cut",
            "consider adding the whole function to the plan");
    }
  }
}

// --- CC005: page safety under kUnmapPages -------------------------------

void check_page_safety(Ctx& c) {
  if (c.plan.removal != Removal::kUnmapPages) return;

  for (uint64_t page : c.dropped_pages) {
    uint64_t pend = page + kPageSize;

    // The rewriter's per-range accounting sums range lengths per page, so
    // overlapping or duplicate blocks can add up to kPageSize while the
    // union of their bytes does not cover the page. Diff against the true
    // byte coverage.
    for (const auto& [gb, ge] : c.range_bytes.gaps(page, pend)) {
      auto it = c.cfg.instr_starts.lower_bound(gb);
      bool has_code = it != c.cfg.instr_starts.end() && *it < ge;
      if (!has_code) has_code = c.cfg.block_containing(gb) != nullptr;
      if (has_code) {
        c.add(kRulePageSafety, Severity::kError, gb,
              "page " + hex_addr(page) +
                  " is dropped by per-range accounting, but [" +
                  hex_addr(gb) + ", " + hex_addr(ge) +
                  ") holds reachable code the plan never covered",
              "deduplicate overlapping plan blocks or switch to "
              "wipe-blocks");
      } else {
        c.add(kRulePageSafety, Severity::kWarning, gb,
              "page " + hex_addr(page) + " is dropped with " +
                  std::to_string(ge - gb) +
                  " byte(s) at " + hex_addr(gb) +
                  " not named by the plan (no code recovered there)");
      }
    }

    // A live block starting on an earlier page that runs into this page
    // falls off a cliff at the page boundary.
    const CfgBlock* straddler = c.cfg.block_containing(page);
    if (straddler != nullptr && straddler->offset < page &&
        !c.range_bytes.contains(straddler->offset)) {
      c.add(kRulePageSafety, Severity::kError, straddler->offset,
            "live block " + hex_addr(straddler->offset) +
                " runs into unmapped page " + hex_addr(page),
            "cut the whole block or keep the page mapped");
    }

    // Import plumbing on the page (reuses the PLT analysis).
    for (const auto& import : c.bin.imports) {
      for (const auto& stub : plt_blocks(c.bin, c.plan.module, {import})) {
        uint64_t sb = stub.offset;
        uint64_t se = stub.offset + stub.size;
        if (se <= page || sb >= pend) continue;
        bool referenced = false;
        for (const auto& [boff, blk] : c.cfg.blocks) {
          if (!c.live_block(boff)) continue;
          for (uint64_t t : blk.succs) {
            if (t == sb) referenced = true;
          }
        }
        if (referenced) {
          c.add(kRulePageSafety, Severity::kError, sb,
                "PLT stub for '" + import + "' sits on dropped page " +
                    hex_addr(page) + " but live code still calls it",
                "keep the import's stub or cut its callers too");
        } else if (!c.range_bytes.contains(sb)) {
          c.add(kRulePageSafety, Severity::kWarning, sb,
                "PLT stub for '" + import + "' vanishes with page " +
                    hex_addr(page) + " without being named by the plan");
        }
      }
    }
    for (size_t i = 0; i < c.bin.imports.size(); ++i) {
      uint64_t got = c.bin.got_slot_offset(i);
      if (got < page || got >= pend) continue;
      auto stub = c.bin.plt_stub_offset(c.bin.imports[i]);
      if (stub.has_value() && !c.dead.contains(*stub)) {
        c.add(kRulePageSafety, Severity::kError, got,
              "GOT slot of '" + c.bin.imports[i] + "' sits on dropped page " +
                  hex_addr(page) + " while its PLT stub stays live",
              "the stub's indirect jump would fault; cut the stub as well");
      }
    }
  }
}

// --- CC006: gadget delta ------------------------------------------------

void check_gadget_delta(Ctx& c, const CheckOptions& opts) {
  if (!opts.gadget_delta) return;

  // Rebuild the module's executable memory in a scratch address space and
  // apply the plan the way the rewriter would.
  vm::AddressSpace mem;
  std::vector<std::pair<uint64_t, uint64_t>> extents;  // code byte ranges
  for (const auto& sec : c.bin.sections) {
    if (!is_exec_kind(sec.kind) || sec.bytes.empty()) continue;
    uint64_t start = kAppBase + sec.offset;
    mem.map(start, page_ceil(sec.bytes.size()), kProtRead | kProtExec,
            c.plan.module + ":" + melf::section_name(sec.kind));
    mem.poke_bytes(start, sec.bytes);
    extents.emplace_back(sec.offset, sec.offset + sec.bytes.size());
  }
  if (extents.empty()) return;

  GadgetStats before = scan_gadgets(mem, opts.gadget_max_instrs);

  // Clamped trap fill: plans may (legitimately, with a CC001 warning) name
  // ranges past the recovered code; the rewriter would fault the guest, the
  // simulation just ignores the out-of-code remainder.
  auto fill = [&](uint64_t off, uint64_t len) {
    for (const auto& [eb, ee] : extents) {
      uint64_t lo = std::max(off, eb);
      uint64_t hi = std::min(off + len, ee);
      if (lo >= hi) continue;
      std::vector<uint8_t> trap(hi - lo,
                                static_cast<uint8_t>(isa::Op::kTrap));
      mem.poke_bytes(kAppBase + lo, trap);
    }
  };

  switch (c.plan.removal) {
    case Removal::kBlockFirstByte:
      for (const auto& [off, size] : c.ranges) fill(off, 1);
      break;
    case Removal::kWipeBlocks:
      for (const auto& [off, size] : c.ranges) fill(off, size);
      break;
    case Removal::kUnmapPages:
      for (const auto& [off, size] : c.ranges) fill(off, size);
      for (uint64_t page : c.dropped_pages) {
        uint64_t addr = kAppBase + page;
        const vm::Vma* v = mem.vma_at(addr);
        if (v != nullptr && v->contains(addr + kPageSize - 1)) {
          mem.unmap(addr, kPageSize);
        }
      }
      break;
  }

  GadgetStats after = scan_gadgets(mem, opts.gadget_max_instrs);
  int64_t delta = static_cast<int64_t>(after.gadget_starts) -
                  static_cast<int64_t>(before.gadget_starts);
  c.report.gadget_delta = delta;

  uint64_t anchor = c.ranges.empty() ? 0 : c.ranges.front().first;
  std::string counts = std::to_string(before.gadget_starts) + " -> " +
                       std::to_string(after.gadget_starts);
  if (delta > 0) {
    c.add(kRuleGadget, Severity::kWarning, anchor,
          "the cut adds " + std::to_string(delta) +
              " ROP gadget start(s) (" + counts + ")",
          "prefer wipe-blocks/unmap-pages over partial patches");
  } else {
    c.add(kRuleGadget, Severity::kNote, anchor,
          "gadget starts " + counts + " (delta " + std::to_string(delta) +
              ")");
  }
}

}  // namespace

CheckReport check_plan(const CutPlan& plan, const CheckOptions& opts) {
  if (plan.binary == nullptr) {
    CheckReport r;
    if (plan.has_redirect) {
      r.add({kRuleRedirect, Severity::kError, plan.module, 0,
             "redirect module '" + plan.module + "' is not loaded",
             "load the module or drop the redirect"});
    } else {
      r.add({kRuleBoundary, Severity::kWarning, plan.module, 0,
             "module '" + plan.module +
                 "' is not loaded; the rewriter will silently skip its " +
                 std::to_string(plan.blocks.size()) + " block(s)",
             "load the module or drop its blocks from the feature"});
    }
    return r;
  }

  Ctx c{plan, *plan.binary};
  c.cfg = recover_cfg(c.bin);
  c.ranges = plan.ranges();
  for (const auto& [off, size] : c.ranges) {
    c.range_starts.insert(off);
    c.range_bytes.add(off, off + size);
  }
  switch (plan.removal) {
    case Removal::kBlockFirstByte:
      for (const auto& [off, size] : c.ranges) c.dead.add(off, off + 1);
      break;
    case Removal::kWipeBlocks:
      for (const auto& [off, size] : c.ranges) c.dead.add(off, off + size);
      break;
    case Removal::kUnmapPages:
      for (const auto& [off, size] : c.ranges) c.dead.add(off, off + size);
      c.dropped_pages = accounted_full_pages(plan);
      for (uint64_t p : c.dropped_pages) {
        c.dropped_set.insert(p);
        c.dead.add(p, p + kPageSize);
      }
      break;
  }

  check_boundary(c);
  check_stray_edges(c);
  check_redirect(c);
  check_reach_amp(c);
  check_page_safety(c);
  check_gadget_delta(c, opts);
  return std::move(c.report);
}

CheckReport check_plans(const std::vector<CutPlan>& plans,
                        const CheckOptions& opts) {
  CheckReport merged;
  for (const auto& p : plans) merged.merge(check_plan(p, opts));
  return merged;
}

}  // namespace dynacut::analysis::cutcheck
