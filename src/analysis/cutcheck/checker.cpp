#include "analysis/cutcheck/checker.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "analysis/slicer/slicer.hpp"
#include "common/constants.hpp"
#include "common/hex.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::analysis::cutcheck {
namespace {

bool is_exec_kind(melf::SectionKind k) {
  return k == melf::SectionKind::kText || k == melf::SectionKind::kPlt;
}

bool in_exec_section(const melf::Binary& bin, uint64_t off) {
  for (const auto& sec : bin.sections) {
    if (!is_exec_kind(sec.kind)) continue;
    if (off >= sec.offset && off < sec.offset + sec.bytes.size()) return true;
  }
  return false;
}

/// Applies the per-rule option knobs and the function/range enrichment one
/// diagnostic at a time. Returns false when the rule is suppressed.
bool emit_diag(CheckReport& report, const CheckOptions& opts,
               const melf::Binary* bin, const char* rule, Severity sev,
               const std::string& module, uint64_t off, std::string msg,
               std::string hint, uint64_t end = 0) {
  if (opts.suppress.count(rule) != 0) return false;
  if (auto it = opts.severity_override.find(rule);
      it != opts.severity_override.end()) {
    sev = it->second;
  }
  Diagnostic d{rule, sev, module, off, std::move(msg), std::move(hint)};
  d.end_offset = end;
  if (bin != nullptr) {
    const melf::Symbol* fn = bin->symbol_containing(off);
    if (fn != nullptr) d.function = fn->name;
  }
  report.add(std::move(d));
  return true;
}

/// Everything the rules share, derived once per plan.
struct Ctx {
  Ctx(const CutPlan& p, const melf::Binary& b, const CheckOptions& o)
      : plan(p), bin(b), opts(o) {}

  const CutPlan& plan;
  const melf::Binary& bin;
  const CheckOptions& opts;
  StaticCfg cfg;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (offset, size)
  std::set<uint64_t> range_starts;
  ByteSet range_bytes;  ///< exactly the bytes the plan names
  ByteSet dead;         ///< bytes actually killed under the removal policy
  std::vector<uint64_t> dropped_pages;  ///< kUnmapPages only
  std::set<uint64_t> dropped_set;
  CheckReport report;

  void add(const char* rule, Severity sev, uint64_t off, std::string msg,
           std::string hint = "", uint64_t end = 0) {
    emit_diag(report, opts, &bin, rule, sev, plan.module, off, std::move(msg),
              std::move(hint), end);
  }

  bool live_block(uint64_t block_start) const {
    return !dead.contains(block_start);
  }

  /// " (in 'dispatch')" for offsets inside a function, "" otherwise — used
  /// to name the source of a stray edge inside messages.
  std::string in_function(uint64_t off) const {
    const melf::Symbol* fn = bin.symbol_containing(off);
    return fn != nullptr ? " (in '" + fn->name + "')" : std::string();
  }
};

/// The reachable instruction whose encoding covers `off` (as its first byte
/// or an interior byte), if any.
std::optional<uint64_t> covering_instr(const Ctx& c, uint64_t off) {
  auto it = c.cfg.instr_starts.upper_bound(off);
  if (it == c.cfg.instr_starts.begin()) return std::nullopt;
  --it;
  isa::Instr ins;
  if (!decode_at(c.bin, *it, ins)) return std::nullopt;
  if (off < *it + ins.length) return *it;
  return std::nullopt;
}

// --- CC001: block boundaries --------------------------------------------

void check_boundary(Ctx& c) {
  for (const auto& [off, size] : c.ranges) {
    if (!in_exec_section(c.bin, off)) {
      c.add(kRuleBoundary, Severity::kError, off,
            "block start lies outside every executable section",
            "drop the block or fix its module-relative offset");
      continue;
    }
    if (!c.cfg.is_instr_start(off)) {
      if (auto host = covering_instr(c, off)) {
        c.add(kRuleBoundary, Severity::kError, off,
              "block starts mid-instruction, inside the encoding at " +
                  hex_addr(*host) + "; patching here corrupts a live " +
                  "instruction",
              "align the block to the instruction boundary at " +
                  hex_addr(*host));
      } else {
        c.add(kRuleBoundary, Severity::kWarning, off,
              "block start is not statically reachable; boundary checks "
              "cannot be validated here",
              "confirm the block comes from a trusted trace");
      }
      continue;
    }
    if (c.plan.removal == Removal::kBlockFirstByte) continue;

    // Wipe/unmap consume the whole range: its end must not tear code.
    uint64_t end = off + size;
    if (!in_exec_section(c.bin, end - 1)) {
      c.add(kRuleBoundary, Severity::kWarning, off,
            "block [" + hex_addr(off) + ", " + hex_addr(end) +
                ") extends past the executable section holding its start",
            "trim the block to the section's code bytes");
      continue;
    }
    if (c.cfg.block_containing(end) != nullptr && !c.cfg.is_instr_start(end)) {
      c.add(kRuleBoundary, Severity::kError, off,
            "block end " + hex_addr(end) +
                " falls mid-instruction; wiping up to it tears the "
                "surviving instruction stream",
            "extend or shrink the block to an instruction boundary");
    }
  }
}

// --- CC002: stray edges into removed code -------------------------------

void check_stray_edges(Ctx& c) {
  // First-byte removal leaves every interior byte intact, so edges into the
  // interior still execute original code — that is the policy's documented
  // (weaker) contract, not a plan defect.
  if (c.plan.removal == Removal::kBlockFirstByte) return;

  for (const auto& [boff, blk] : c.cfg.blocks) {
    if (!c.live_block(boff)) continue;  // removed blocks are not sources
    for (uint64_t t : blk.succs) {
      if (c.plan.removal == Removal::kUnmapPages &&
          c.dropped_set.count(page_floor(t)) != 0) {
        c.add(kRuleStrayEdge, Severity::kError, t,
              "live block " + hex_addr(boff) + c.in_function(boff) +
                  " transfers to " + hex_addr(t) +
                  " on a page the plan unmaps; reaching it raises SIGSEGV, "
                  "which no trap policy handles",
              "keep the page mapped (wipe-blocks) or cut the source block "
              "too");
        continue;
      }
      if (c.dead.contains(t) && c.range_starts.count(t) == 0) {
        // A trap fires at a byte the handler has no table entry for.
        Severity sev = c.plan.trap == Trap::kTerminate ? Severity::kWarning
                                                       : Severity::kError;
        c.add(kRuleStrayEdge, sev, t,
              "live block " + hex_addr(boff) + c.in_function(boff) +
                  " branches into the interior of a removed range at " +
                  hex_addr(t) +
                  "; the trap handler only recognises block entry points",
              "start a plan block exactly at " + hex_addr(t) +
                  " or cut the source block");
      }
    }
  }
}

// --- CC003: redirect-target validity ------------------------------------

void check_redirect(Ctx& c) {
  if (c.plan.trap != Trap::kRedirect || !c.plan.has_redirect) return;
  uint64_t tgt = c.plan.redirect_offset;

  if (!c.cfg.is_instr_start(tgt)) {
    c.add(kRuleRedirect, Severity::kError, tgt,
          "redirect target is not a reachable instruction start",
          "point the redirect at a decoded instruction boundary");
    return;
  }
  const melf::Symbol* fn = c.bin.symbol_containing(tgt);
  if (fn == nullptr) {
    c.add(kRuleRedirect, Severity::kError, tgt,
          "redirect target lies outside every function symbol",
          "redirect into a function's error path");
    return;
  }

  bool same_fn = false;
  size_t outside = 0;
  for (const auto& [off, size] : c.ranges) {
    if (c.bin.symbol_containing(off) == fn) {
      same_fn = true;
    } else {
      ++outside;
    }
  }
  if (!same_fn) {
    c.add(kRuleRedirect, Severity::kError, tgt,
          "no removed block shares function '" + fn->name +
              "' with the redirect target; redirecting would rewrite the IP "
              "across a call frame",
          "choose an error path inside the function being cut, or use the "
          "terminate policy");
    return;
  }
  if (outside > 0) {
    c.add(kRuleRedirect, Severity::kNote, tgt,
          std::to_string(outside) + " removed block(s) fall outside '" +
              fn->name +
              "'; traps there terminate instead of redirecting "
              "(same-function restriction)");
  }

  // The redirect only helps if the error path can actually finish the
  // request: walk live intra-function blocks from the target and look for a
  // return or a syscall.
  const CfgBlock* start = c.cfg.block_containing(tgt);
  if (start == nullptr) return;
  std::set<uint64_t> seen;
  std::deque<uint64_t> work{start->offset};
  bool exits = false;
  while (!work.empty() && !exits) {
    uint64_t off = work.front();
    work.pop_front();
    if (!seen.insert(off).second) continue;
    const CfgBlock* b = c.cfg.block_at(off);
    if (b == nullptr || !c.live_block(off)) continue;
    if (b->term == isa::Op::kRet || b->term == isa::Op::kSyscall) {
      exits = true;
      break;
    }
    for (uint64_t t : b->succs) {
      if (c.bin.symbol_containing(t) == fn) work.push_back(t);
    }
  }
  if (!exits) {
    c.add(kRuleRedirect, Severity::kWarning, tgt,
          "redirect target cannot reach a return or syscall through live "
          "blocks of '" +
              fn->name + "'; redirected requests may never complete",
          "verify the error path survives the cut");
  }
}

// --- CC004: reachability amplification ----------------------------------

void check_reach_amp(Ctx& c) {
  auto funcs = split_functions(c.cfg, c.bin);
  for (const auto& [entry, f] : funcs) {
    std::set<uint64_t> cut;
    for (uint64_t b : f.blocks) {
      if (c.dead.contains(b)) cut.insert(b);
    }
    if (cut.empty()) continue;

    auto idom = dominator_tree(f);
    size_t amplified = 0;
    uint64_t example = 0, example_dom = 0;
    for (uint64_t b : f.blocks) {
      if (b == entry || cut.count(b) != 0 || idom.count(b) == 0) continue;
      for (uint64_t cur = b; cur != entry;) {
        auto it = idom.find(cur);
        if (it == idom.end() || it->second == cur) break;
        cur = it->second;
        if (cut.count(cur) != 0) {
          if (amplified == 0) {
            example = b;
            example_dom = cur;
          }
          ++amplified;
          break;
        }
      }
    }
    if (amplified > 0) {
      const melf::Symbol* sym = c.bin.symbol_containing(entry);
      c.add(kRuleReachAmp, Severity::kNote, entry,
            std::to_string(amplified) + " live block(s) in '" +
                (sym != nullptr ? sym->name : hex_addr(entry)) +
                "' are dominated by removed blocks and become unreachable "
                "with the cut (e.g. " +
                hex_addr(example) + " below removed block " +
                hex_addr(example_dom) + ")",
            "grow the cut to the dominated region to reclaim more bytes");
    }
  }

  // Call-graph amplification: a function all of whose direct call sites are
  // removed cannot be reached any more (modulo indirect calls).
  for (const auto& [entry, sites] : call_sites(c.cfg, c.bin)) {
    if (sites.empty() || c.dead.contains(entry)) continue;
    bool all_cut = std::all_of(sites.begin(), sites.end(), [&](uint64_t s) {
      return c.dead.contains(s);
    });
    if (all_cut) {
      const melf::Symbol* sym = c.bin.symbol_containing(entry);
      std::string site_list;
      for (uint64_t s : sites) {
        if (!site_list.empty()) site_list += ", ";
        site_list += hex_addr(s) + c.in_function(s);
      }
      c.add(kRuleReachAmp, Severity::kNote, entry,
            "function '" + (sym != nullptr ? sym->name : hex_addr(entry)) +
                "' is only reached through removed call sites (" + site_list +
                "); it is dead after the cut",
            "consider adding the whole function to the plan");
    }
  }
}

// --- CC005: page safety under kUnmapPages -------------------------------

void check_page_safety(Ctx& c) {
  if (c.plan.removal != Removal::kUnmapPages) return;

  for (uint64_t page : c.dropped_pages) {
    uint64_t pend = page + kPageSize;

    // The rewriter's per-range accounting sums range lengths per page, so
    // overlapping or duplicate blocks can add up to kPageSize while the
    // union of their bytes does not cover the page. Diff against the true
    // byte coverage.
    for (const auto& [gb, ge] : c.range_bytes.gaps(page, pend)) {
      auto it = c.cfg.instr_starts.lower_bound(gb);
      bool has_code = it != c.cfg.instr_starts.end() && *it < ge;
      if (!has_code) has_code = c.cfg.block_containing(gb) != nullptr;
      if (has_code) {
        c.add(kRulePageSafety, Severity::kError, gb,
              "page " + hex_addr(page) +
                  " is dropped by per-range accounting, but [" +
                  hex_addr(gb) + ", " + hex_addr(ge) +
                  ") holds reachable code the plan never covered",
              "deduplicate overlapping plan blocks or switch to "
              "wipe-blocks");
      } else {
        c.add(kRulePageSafety, Severity::kWarning, gb,
              "page " + hex_addr(page) + " is dropped with " +
                  std::to_string(ge - gb) +
                  " byte(s) at " + hex_addr(gb) +
                  " not named by the plan (no code recovered there)");
      }
    }

    // A live block starting on an earlier page that runs into this page
    // falls off a cliff at the page boundary.
    const CfgBlock* straddler = c.cfg.block_containing(page);
    if (straddler != nullptr && straddler->offset < page &&
        !c.range_bytes.contains(straddler->offset)) {
      c.add(kRulePageSafety, Severity::kError, straddler->offset,
            "live block " + hex_addr(straddler->offset) +
                " runs into unmapped page " + hex_addr(page),
            "cut the whole block or keep the page mapped");
    }

    // Import plumbing on the page (reuses the PLT analysis).
    for (const auto& import : c.bin.imports) {
      for (const auto& stub : plt_blocks(c.bin, c.plan.module, {import})) {
        uint64_t sb = stub.offset;
        uint64_t se = stub.offset + stub.size;
        if (se <= page || sb >= pend) continue;
        bool referenced = false;
        for (const auto& [boff, blk] : c.cfg.blocks) {
          if (!c.live_block(boff)) continue;
          for (uint64_t t : blk.succs) {
            if (t == sb) referenced = true;
          }
        }
        if (referenced) {
          c.add(kRulePageSafety, Severity::kError, sb,
                "PLT stub for '" + import + "' sits on dropped page " +
                    hex_addr(page) + " but live code still calls it",
                "keep the import's stub or cut its callers too");
        } else if (!c.range_bytes.contains(sb)) {
          c.add(kRulePageSafety, Severity::kWarning, sb,
                "PLT stub for '" + import + "' vanishes with page " +
                    hex_addr(page) + " without being named by the plan");
        }
      }
    }
    for (size_t i = 0; i < c.bin.imports.size(); ++i) {
      uint64_t got = c.bin.got_slot_offset(i);
      if (got < page || got >= pend) continue;
      auto stub = c.bin.plt_stub_offset(c.bin.imports[i]);
      if (stub.has_value() && !c.dead.contains(*stub)) {
        c.add(kRulePageSafety, Severity::kError, got,
              "GOT slot of '" + c.bin.imports[i] + "' sits on dropped page " +
                  hex_addr(page) + " while its PLT stub stays live",
              "the stub's indirect jump would fault; cut the stub as well");
      }
    }
  }
}

// --- CC006: gadget delta ------------------------------------------------

void check_gadget_delta(Ctx& c, const CheckOptions& opts) {
  if (!opts.gadget_delta) return;

  // Rebuild the module's executable memory in a scratch address space and
  // apply the plan the way the rewriter would.
  vm::AddressSpace mem;
  std::vector<std::pair<uint64_t, uint64_t>> extents;  // code byte ranges
  for (const auto& sec : c.bin.sections) {
    if (!is_exec_kind(sec.kind) || sec.bytes.empty()) continue;
    uint64_t start = kAppBase + sec.offset;
    mem.map(start, page_ceil(sec.bytes.size()), kProtRead | kProtExec,
            c.plan.module + ":" + melf::section_name(sec.kind));
    mem.poke_bytes(start, sec.bytes);
    extents.emplace_back(sec.offset, sec.offset + sec.bytes.size());
  }
  if (extents.empty()) return;

  GadgetStats before = scan_gadgets(mem, opts.gadget_max_instrs);

  // Clamped trap fill: plans may (legitimately, with a CC001 warning) name
  // ranges past the recovered code; the rewriter would fault the guest, the
  // simulation just ignores the out-of-code remainder.
  auto fill = [&](uint64_t off, uint64_t len) {
    for (const auto& [eb, ee] : extents) {
      uint64_t lo = std::max(off, eb);
      uint64_t hi = std::min(off + len, ee);
      if (lo >= hi) continue;
      std::vector<uint8_t> trap(hi - lo,
                                static_cast<uint8_t>(isa::Op::kTrap));
      mem.poke_bytes(kAppBase + lo, trap);
    }
  };

  switch (c.plan.removal) {
    case Removal::kBlockFirstByte:
      for (const auto& [off, size] : c.ranges) fill(off, 1);
      break;
    case Removal::kWipeBlocks:
      for (const auto& [off, size] : c.ranges) fill(off, size);
      break;
    case Removal::kUnmapPages:
      for (const auto& [off, size] : c.ranges) fill(off, size);
      for (uint64_t page : c.dropped_pages) {
        uint64_t addr = kAppBase + page;
        const vm::Vma* v = mem.vma_at(addr);
        if (v != nullptr && v->contains(addr + kPageSize - 1)) {
          mem.unmap(addr, kPageSize);
        }
      }
      break;
  }

  GadgetStats after = scan_gadgets(mem, opts.gadget_max_instrs);
  int64_t delta = static_cast<int64_t>(after.gadget_starts) -
                  static_cast<int64_t>(before.gadget_starts);
  c.report.gadget_delta = delta;

  uint64_t anchor = c.ranges.empty() ? 0 : c.ranges.front().first;
  std::string counts = std::to_string(before.gadget_starts) + " -> " +
                       std::to_string(after.gadget_starts);
  if (delta > 0) {
    c.add(kRuleGadget, Severity::kWarning, anchor,
          "the cut adds " + std::to_string(delta) +
              " ROP gadget start(s) (" + counts + ")",
          "prefer wipe-blocks/unmap-pages over partial patches");
  } else {
    c.add(kRuleGadget, Severity::kNote, anchor,
          "gadget starts " + counts + " (delta " + std::to_string(delta) +
              ")");
  }
}

// --- CC007: indirect transfers escaping into removed code ---------------

void check_indirect(Ctx& c, const slicer::SliceModel& m) {
  for (const auto& site : m.indirect) {
    if (!c.live_block(site.block)) continue;
    const char* what = site.is_call ? "call" : "jump";
    if (site.kind == slicer::IndirectSite::Kind::kPltImport) {
      continue;  // resolves to an import in another module
    }
    if (site.kind == slicer::IndirectSite::Kind::kUnresolved) {
      // Nothing is known about where this lands; flag it only when the plan
      // actually removes something it could land on.
      if (!c.dead.empty()) {
        c.add(kRuleIndirect, Severity::kWarning, site.instr,
              std::string("indirect ") + what + " in live block " +
                  hex_addr(site.block) + c.in_function(site.block) +
                  " cannot be resolved statically; it may land inside the "
                  "removed region",
              "cut the transfer's block too, or route the target through a "
              "resolvable pointer table");
      }
      continue;
    }
    for (uint64_t t : site.targets) {
      if (c.plan.removal == Removal::kUnmapPages &&
          c.dropped_set.count(page_floor(t)) != 0) {
        c.add(kRuleIndirect, Severity::kError, t,
              std::string("indirect ") + what + " at " +
                  hex_addr(site.instr) + c.in_function(site.instr) +
                  " targets " + hex_addr(t) +
                  " on a page the plan unmaps; reaching it raises SIGSEGV",
              "cut the transfer's block or keep the page mapped");
        continue;
      }
      if (c.dead.contains(t) && c.range_starts.count(t) == 0) {
        Severity sev = c.plan.trap == Trap::kTerminate ? Severity::kWarning
                                                       : Severity::kError;
        c.add(kRuleIndirect, sev, t,
              std::string("indirect ") + what + " at " +
                  hex_addr(site.instr) + c.in_function(site.instr) +
                  " escapes into the interior of a removed range at " +
                  hex_addr(t) +
                  "; the trap handler only recognises block entry points",
              "start a plan block exactly at " + hex_addr(t) +
                  " or cut the transfer's block");
      }
    }
  }
}

// --- CC008: the plan cuts a strict subset of its slice ------------------

void check_partial_slice(Ctx& c, const slicer::SliceModel& m) {
  std::set<uint64_t> seeds;
  for (uint64_t s : c.range_starts) {
    const CfgBlock* blk = m.cfg.block_containing(s);
    if (blk != nullptr) seeds.insert(blk->offset);
  }
  if (seeds.empty()) return;
  slicer::SliceOptions sopts;
  if (c.plan.trap == Trap::kRedirect && c.plan.has_redirect) {
    const CfgBlock* rb = m.cfg.block_containing(c.plan.redirect_offset);
    if (rb != nullptr) sopts.keep_blocks.insert(rb->offset);
  }
  slicer::FeatureSlice slice = slicer::feature_slice(m, seeds, sopts);
  std::vector<const slicer::Witness*> extra;
  for (const auto& w : slice.witnesses) {
    if (w.kind != slicer::Witness::Kind::kSeed && !c.dead.contains(w.block)) {
      extra.push_back(&w);
    }
  }
  if (extra.empty()) return;
  const slicer::Witness* ex = extra.front();
  c.add(kRulePartialSlice, Severity::kNote, ex->block,
        "the plan cuts " + std::to_string(seeds.size()) +
            " block(s) of a " + std::to_string(slice.blocks.size()) +
            "-block static slice; " + std::to_string(extra.size()) +
            " dead-but-reachable block(s) remain (e.g. " +
            hex_addr(ex->block) + ", " + ex->detail + ")",
        "expand the plan to the slice (CutRequest.expand_to_slice) to "
        "remove them");
}

// --- CC009: surviving data pointers into removed code -------------------

void check_data_reach(Ctx& c) {
  for (const auto& rel : c.bin.relocs) {
    if (rel.kind != melf::RelocKind::kAbs64) continue;
    // Code immediates are visible to the CFG/slicer rules; this rule owns
    // the pointers living in data sections (vtable/jump-table style).
    if (in_exec_section(c.bin, rel.offset)) continue;
    uint64_t t = static_cast<uint64_t>(rel.addend);
    if (!in_exec_section(c.bin, t)) continue;
    if (c.plan.removal == Removal::kUnmapPages &&
        c.dropped_set.count(page_floor(t)) != 0) {
      c.add(kRuleDataReach, Severity::kError, rel.offset,
            "data pointer at " + hex_addr(rel.offset) + " targets " +
                hex_addr(t) + c.in_function(t) +
                " on a page the plan unmaps; calling through it raises "
                "SIGSEGV",
            "retarget or clear the pointer, or keep the page mapped");
      continue;
    }
    if (c.dead.contains(t) && c.range_starts.count(t) == 0) {
      Severity sev = c.plan.trap == Trap::kTerminate ? Severity::kWarning
                                                     : Severity::kError;
      c.add(kRuleDataReach, sev, rel.offset,
            "data pointer at " + hex_addr(rel.offset) +
                " survives the cut but targets the interior of a removed "
                "range at " +
                hex_addr(t) + c.in_function(t),
            "start a plan block exactly at " + hex_addr(t) +
                " or cut the pointer's consumers");
    }
  }
}

// --- CC010: stack depth across redirects --------------------------------

/// SP depth at `off` relative to its function entry; kUnknownDepth when the
/// block-entry depth is unknown or SP escapes tracking on the way.
int64_t sp_depth_at(const Ctx& c, const slicer::FuncDataflow& fd,
                    uint64_t off) {
  const CfgBlock* blk = c.cfg.block_containing(off);
  if (blk == nullptr) return slicer::kUnknownDepth;
  auto dit = fd.depth_in.find(blk->offset);
  if (dit == fd.depth_in.end() || dit->second == slicer::kUnknownDepth) {
    return slicer::kUnknownDepth;
  }
  int64_t depth = dit->second;
  uint64_t cur = blk->offset;
  isa::Instr ins;
  while (cur < off && decode_at(c.bin, cur, ins)) {
    switch (ins.op) {
      case isa::Op::kPush: depth -= 8; break;
      case isa::Op::kPop:
        if (ins.r1 == isa::kSpReg) return slicer::kUnknownDepth;
        depth += 8;
        break;
      case isa::Op::kAddRI:
        if (ins.r1 == isa::kSpReg) depth += ins.imm;
        break;
      case isa::Op::kSubRI:
        if (ins.r1 == isa::kSpReg) depth -= ins.imm;
        break;
      case isa::Op::kMovRI:
      case isa::Op::kMovRR:
      case isa::Op::kLea:
      case isa::Op::kLoad:
      case isa::Op::kLoadB:
        if (ins.r1 == isa::kSpReg) return slicer::kUnknownDepth;
        break;
      default: break;
    }
    cur += ins.length;
  }
  return cur == off ? depth : slicer::kUnknownDepth;
}

void check_stack_imbalance(Ctx& c, const slicer::SliceModel& m) {
  if (c.plan.trap != Trap::kRedirect || !c.plan.has_redirect) return;
  uint64_t tgt = c.plan.redirect_offset;
  const melf::Symbol* fn = c.bin.symbol_containing(tgt);
  if (fn == nullptr) return;  // CC003 already rejects this
  auto fit = m.fdf.find(fn->value);
  if (fit == m.fdf.end()) return;
  int64_t want = sp_depth_at(c, fit->second, tgt);

  for (uint64_t s : c.range_starts) {
    // Only same-function trap sites redirect; the rest terminate (CC003).
    if (c.bin.symbol_containing(s) != fn) continue;
    int64_t have = sp_depth_at(c, fit->second, s);
    if (want == slicer::kUnknownDepth || have == slicer::kUnknownDepth) {
      c.add(kRuleStackImbalance, Severity::kWarning, s,
            "cannot prove the stack depth at trap site " + hex_addr(s) +
                " matches the redirect target " + hex_addr(tgt) +
                " (SP escapes static tracking or paths disagree)",
            "keep pushes and pops balanced on every path through '" +
                fn->name + "'");
    } else if (have != want) {
      c.add(kRuleStackImbalance, Severity::kError, s,
            "redirecting from " + hex_addr(s) + " (stack depth " +
                std::to_string(have) + ") to " + hex_addr(tgt) + " (depth " +
                std::to_string(want) + ") unbalances the stack by " +
                std::to_string(have - want) +
                " byte(s); the error path would pop or leak a stale frame",
            "cut at a matching depth or move the error stub past the "
            "push/pop pairs");
    }
  }
}

// --- CC011: stores orphaned by the cut ----------------------------------

void check_dead_store(Ctx& c, const slicer::SliceModel& m) {
  // Heuristic (note severity): resolvable accesses only — an unresolved
  // load through an escaped pointer is invisible here, so this is a shrink
  // hint, never a rejection.
  for (const auto& sym : c.bin.symbols) {
    if (sym.is_function || sym.size == 0) continue;
    if (sym.section == melf::SectionKind::kText ||
        sym.section == melf::SectionKind::kPlt ||
        sym.section == melf::SectionKind::kGot) {
      continue;
    }
    std::set<uint64_t> readers, writers;
    for (const auto& ref : m.mdf.mem_refs) {
      if (ref.target < sym.value || ref.target >= sym.value + sym.size) {
        continue;
      }
      (ref.is_store ? writers : readers).insert(ref.block);
    }
    if (readers.empty() || writers.empty()) continue;
    bool readers_dead = std::all_of(
        readers.begin(), readers.end(),
        [&](uint64_t b) { return c.dead.contains(b); });
    if (!readers_dead) continue;
    std::vector<uint64_t> live_writers;
    for (uint64_t w : writers) {
      if (c.live_block(w)) live_writers.push_back(w);
    }
    if (live_writers.empty()) continue;
    c.add(kRuleDeadStore, Severity::kNote, sym.value,
          "every resolvable reader of '" + sym.name +
              "' is removed, but " + std::to_string(live_writers.size()) +
              " writer block(s) survive (e.g. " +
              hex_addr(live_writers.front()) +
              c.in_function(live_writers.front()) +
              "); the surviving stores are dead",
          "extend the cut to the writers to reclaim them",
          sym.value + sym.size);
  }
}

// --- CC012: redirect stub liveness and recoverability -------------------

void check_stub_reach(Ctx& c) {
  if (c.plan.trap != Trap::kRedirect || !c.plan.has_redirect) return;
  uint64_t tgt = c.plan.redirect_offset;

  if (c.plan.removal == Removal::kUnmapPages) {
    c.add(kRuleStubReach, Severity::kError, tgt,
          "redirect cannot recover code removed by unmap-pages: reaching a "
          "dropped page raises SIGSEGV, not SIGTRAP, so the handler never "
          "runs",
          "use first-byte or wipe-blocks removal with the redirect policy");
  }
  if (c.dead.contains(tgt)) {
    c.add(kRuleStubReach, Severity::kError, tgt,
          "the redirect target is itself removed by the plan; every "
          "redirected trap would land on another trap",
          "keep the error stub's block out of the plan");
    return;
  }
  const melf::Symbol* fn = c.bin.symbol_containing(tgt);
  const CfgBlock* tb = c.cfg.block_containing(tgt);
  if (fn == nullptr || tb == nullptr) return;  // CC003 covers these

  // The stub must stay reachable from the function entry after the cut —
  // either through live blocks, or through a removed same-function block
  // whose trap redirects straight to the stub. A stub failing both is dead
  // code the redirect table can never deliver control to.
  std::set<uint64_t> seen;
  std::deque<uint64_t> work{fn->value};
  bool reached = false;
  while (!work.empty() && !reached) {
    uint64_t off = work.front();
    work.pop_front();
    if (!seen.insert(off).second) continue;
    const CfgBlock* b = c.cfg.block_at(off);
    if (b == nullptr) continue;
    if (!c.live_block(off)) {
      // Trapping here redirects to the stub (same-function restriction);
      // any other removed block terminates and the walk stops.
      if (c.range_starts.count(off) != 0 &&
          c.bin.symbol_containing(off) == fn) {
        reached = true;
      }
      continue;
    }
    if (off == tb->offset) {
      reached = true;
      break;
    }
    for (uint64_t t : b->succs) {
      if (c.bin.symbol_containing(t) == fn) work.push_back(t);
    }
  }
  if (!reached) {
    c.add(kRuleStubReach, Severity::kError, tgt,
          "error stub at " + hex_addr(tgt) + " is unreachable from '" +
              fn->name +
              "' after the cut: no live path and no redirecting trap leads "
              "to it",
          "keep a live path from the function entry to the stub, or pick a "
          "reachable error path");
  }
}

// --- CC013: stub-mechanism entry reachability ---------------------------

void check_stub_reachability(Ctx& c, const slicer::SliceModel& m,
                             const slicer::StubPlan& sp) {
  if (c.plan.mechanism == Mechanism::kTrap) return;

  if (c.plan.removal == Removal::kUnmapPages) {
    c.add(kRuleStubReachability, Severity::kError, 0,
          "the stub mechanism needs mapped code for its int3 safety net; "
          "unmap-pages turns residual reachability into SIGSEGV instead of "
          "a recoverable SIGTRAP",
          "use first-byte or wipe-blocks removal with mechanism=stub/auto");
  }

  // Entries reachable through pointers the callsite pass cannot retarget —
  // recomputed exactly as plan_stubs demotes them under kAuto.
  std::set<uint64_t> pointer_reachable(m.deps.address_taken);
  for (const slicer::IndirectSite& site : m.indirect) {
    if (site.kind == slicer::IndirectSite::Kind::kTable ||
        site.kind == slicer::IndirectSite::Kind::kDirect) {
      pointer_reachable.insert(site.targets.begin(), site.targets.end());
    }
  }
  std::set<uint64_t> explicit_set(c.plan.stub_entries.begin(),
                                  c.plan.stub_entries.end());

  for (uint64_t e : c.plan.stub_entries) {
    const melf::Symbol* sym = c.bin.symbol_containing(e);
    if (sym == nullptr || sym->value != e || !sym->is_function) {
      c.add(kRuleStubReachability, Severity::kError, e,
            "stub entry " + hex_addr(e) +
                " is not a function-entry symbol; a callsite redirect can "
                "only stand in for a whole function call",
            "stub function entries only; interior blocks keep the int3 net");
      continue;
    }
    if (c.range_starts.count(e) == 0) {
      c.add(kRuleStubReachability, Severity::kError, e,
            "stub entry '" + sym->name +
                "' is not in the cut: the stub would deny a feature the "
                "plan keeps live",
            "add the function's blocks to the plan or drop the entry");
      continue;
    }
    auto fit = m.funcs.find(e);
    if (fit != m.funcs.end()) {
      bool whole = true;
      for (uint64_t b : fit->second.blocks) {
        if (c.range_starts.count(b) == 0) {
          whole = false;
          break;
        }
      }
      if (!whole) {
        c.add(kRuleStubReachability, Severity::kWarning, e,
              "stub entry '" + sym->name +
                  "' is only partially cut; live interior blocks stay "
                  "reachable through non-callsite edges while every direct "
                  "call is denied",
              "cut the whole function or use mechanism=trap for it");
      }
    }
  }

  for (uint64_t e : sp.trap_only) {
    const melf::Symbol* sym = c.bin.symbol_containing(e);
    std::string name = sym != nullptr ? "'" + sym->name + "'" : hex_addr(e);
    if (explicit_set.count(e) != 0) {
      c.add(kRuleStubReachability, Severity::kError, e,
            "explicitly pinned stub entry " + name +
                " is address-taken or an indirect-transfer target; "
                "mechanism=auto demotes it to trap, contradicting the pin",
            "drop the pin or use mechanism=stub to accept the int3 net");
    } else {
      c.add(kRuleStubReachability, Severity::kNote, e,
            "entry " + name +
                " is pointer-reachable; mechanism=auto keeps the trap "
                "mechanism for it",
            "");
    }
  }
  if (c.plan.mechanism == Mechanism::kStub) {
    for (uint64_t e : sp.entries) {
      if (pointer_reachable.count(e) == 0) continue;
      const melf::Symbol* sym = c.bin.symbol_containing(e);
      std::string name = sym != nullptr ? "'" + sym->name + "'" : hex_addr(e);
      c.add(kRuleStubReachability, Severity::kNote, e,
            "stubbed entry " + name +
                " is also pointer-reachable; those paths bypass the stub "
                "and fall onto the int3 safety net",
            "mechanism=auto would keep it on the trap mechanism");
    }
  }

  // Redirect-mode stubs jump into the app's error path: the stack depth at
  // the (post-pop) callsite must match the depth at the redirect target,
  // exactly as CC010 demands of trap redirects.
  if (c.plan.trap == Trap::kRedirect && c.plan.has_redirect) {
    uint64_t tgt = c.plan.redirect_offset;
    const melf::Symbol* tfn = c.bin.symbol_containing(tgt);
    auto tdf = tfn != nullptr ? m.fdf.find(tfn->value) : m.fdf.end();
    if (tfn != nullptr && tdf != m.fdf.end()) {
      int64_t want = sp_depth_at(c, tdf->second, tgt);
      for (const slicer::StubSite& s : sp.sites) {
        if (c.bin.symbol_containing(s.instr) != tfn) continue;  // deny-ret
        int64_t have = sp_depth_at(c, tdf->second, s.instr);
        if (want == slicer::kUnknownDepth || have == slicer::kUnknownDepth) {
          c.add(kRuleStubReachability, Severity::kWarning, s.instr,
                "cannot prove the stack depth at stubbed callsite " +
                    hex_addr(s.instr) + " matches the redirect target " +
                    hex_addr(tgt),
                "keep pushes and pops balanced on every path to the "
                "callsite");
        } else if (have != want) {
          c.add(kRuleStubReachability, Severity::kError, s.instr,
                "stub redirect from callsite " + hex_addr(s.instr) +
                    " (stack depth " + std::to_string(have) + ") to " +
                    hex_addr(tgt) + " (depth " + std::to_string(want) +
                    ") unbalances the stack by " +
                    std::to_string(have - want) + " byte(s)",
                "cut at a matching depth or let the stub deny by return "
                "value");
        }
      }
    }
  }

  for (const slicer::StubSite& s : sp.int3_covered) {
    c.add(kRuleStubReachability, Severity::kNote, s.instr,
          "callsite " + hex_addr(s.instr) + " at stubbed entry " +
              hex_addr(s.entry) +
              " sits mid-block inside the cut; it stays on the int3 net "
              "(the block's first byte denies it before the call decodes)",
          "");
  }
}

// --- CC014: stub patch reversibility ------------------------------------

void check_stub_reversibility(Ctx& c, const slicer::StubPlan& sp) {
  if (c.plan.mechanism == Mechanism::kTrap) return;

  // The bytes the removal pass will actually rewrite: the plan's dead bytes
  // minus the skip_trap blocks plan_stubs carves out (there, the redirect
  // IS the denial and removal stands down).
  ByteSet rewritten;
  for (const auto& [off, size] : c.ranges) {
    if (sp.skip_trap_blocks.count(off) != 0) continue;
    switch (c.plan.removal) {
      case Removal::kBlockFirstByte:
        rewritten.add(off, off + 1);
        break;
      case Removal::kWipeBlocks:
      case Removal::kUnmapPages:
        rewritten.add(off, off + size);
        break;
    }
  }

  for (const slicer::StubSite& s : sp.sites) {
    // A branch redirect rewrites [instr, instr+5): the opcode byte must
    // survive and the rel32 must not land inside removal-rewritten bytes.
    bool overlaps = false;
    for (uint64_t b = s.instr; b < s.instr + 5; ++b) {
      if (rewritten.contains(b)) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) {
      c.add(kRuleStubReversibility, Severity::kError, s.instr,
            "stub patch at " + hex_addr(s.instr) +
                " overlaps bytes the removal policy rewrites; overlapping "
                "edits have order-dependent pre-images, so undoing the stub "
                "alone (a mechanism flip) cannot restore bit-identical "
                "pages",
            "let the int3 net cover this callsite or exclude its block "
            "from the removal");
    }
  }
}

}  // namespace

CheckReport check_plan(const CutPlan& plan, const CheckOptions& opts) {
  if (plan.binary == nullptr) {
    CheckReport r;
    if (plan.has_redirect) {
      emit_diag(r, opts, nullptr, kRuleRedirect, Severity::kError,
                plan.module, 0,
                "redirect module '" + plan.module + "' is not loaded",
                "load the module or drop the redirect");
    } else {
      emit_diag(r, opts, nullptr, kRuleBoundary, Severity::kWarning,
                plan.module, 0,
                "module '" + plan.module +
                    "' is not loaded; the rewriter will silently skip its " +
                    std::to_string(plan.blocks.size()) + " block(s)",
                "load the module or drop its blocks from the feature");
    }
    return r;
  }

  Ctx c{plan, *plan.binary, opts};
  c.cfg = recover_cfg(c.bin);
  c.ranges = plan.ranges();
  for (const auto& [off, size] : c.ranges) {
    c.range_starts.insert(off);
    c.range_bytes.add(off, off + size);
  }
  switch (plan.removal) {
    case Removal::kBlockFirstByte:
      for (const auto& [off, size] : c.ranges) c.dead.add(off, off + 1);
      break;
    case Removal::kWipeBlocks:
      for (const auto& [off, size] : c.ranges) c.dead.add(off, off + size);
      break;
    case Removal::kUnmapPages:
      for (const auto& [off, size] : c.ranges) c.dead.add(off, off + size);
      c.dropped_pages = accounted_full_pages(plan);
      for (uint64_t p : c.dropped_pages) {
        c.dropped_set.insert(p);
        c.dead.add(p, p + kPageSize);
      }
      break;
  }

  check_boundary(c);
  check_stray_edges(c);
  check_redirect(c);
  check_reach_amp(c);
  check_page_safety(c);
  check_gadget_delta(c, opts);

  // The slicer-backed rules share one model (dataflow fixpoint, dominators,
  // indirect-site classification); reuse the CFG recovered above.
  slicer::SliceModel model = slicer::analyze(c.bin, c.cfg);
  check_indirect(c, model);
  check_partial_slice(c, model);
  check_data_reach(c);
  check_stack_imbalance(c, model);
  check_dead_store(c, model);
  check_stub_reach(c);
  slicer::StubPlan stubs = slicer::plan_stubs(model, plan);
  check_stub_reachability(c, model, stubs);
  check_stub_reversibility(c, stubs);
  return std::move(c.report);
}

CheckReport check_plans(const std::vector<CutPlan>& plans,
                        const CheckOptions& opts) {
  CheckReport merged;
  for (const auto& p : plans) merged.merge(check_plan(p, opts));
  return merged;
}

}  // namespace dynacut::analysis::cutcheck
