// cutcheck: a static cut-plan verifier that lints customizations before the
// image is rewritten.
//
// DynaCut's rewriter applies whatever plan it is handed; a malformed plan
// (a patch landing mid-instruction, an unmapped page that still holds live
// code, a redirect across a call frame) produces a process that faults in
// ways the trap handler cannot recover. check_plan runs six rules over the
// plan and the module's statically recovered CFG and reports findings with
// stable IDs, so the facade can reject provably unsafe cuts up front
// (CheckMode::kEnforce) instead of debugging a corrupted guest later.
//
// Rules:
//   CC001-boundary         block boundaries vs. decoded instruction starts
//   CC002-stray-edge       live control flow into wiped interiors/dropped
//                          pages
//   CC003-redirect         redirect-target validity (same-function
//                          restriction)
//   CC004-reach-amp        dominator/call-graph reachability amplification
//   CC005-page-safety      per-range page accounting vs. true byte coverage,
//                          PLT stubs and GOT slots on dropped pages
//   CC006-gadget-delta     simulated ROP-gadget-start change of the rewrite
//   CC007-indirect-escape  resolved indirect transfers landing in removed
//                          code; unresolved ones next to any cut
//   CC008-partial-slice    the plan cuts a strict subset of its static
//                          feature slice (dead-but-reachable code remains)
//   CC009-data-reach       data-section pointers into removed code survive
//   CC010-stack-imbalance  redirect entry/target stack depths disagree
//   CC011-dead-store       live writes whose every reader is cut
//   CC012-stub-reach       redirect error stubs must stay live, reachable
//                          and recoverable (no redirect over unmap)
//   CC013-stub-reachability  (Mechanism::kStub/kAuto) every stubbed entry is
//                          a wholly-cut function entry, pointer-reachable
//                          entries keep the int3 net, redirect-mode stubs
//                          land at a matching stack depth
//   CC014-stub-reversibility (Mechanism::kStub/kAuto) stub patches must not
//                          overlap removal-rewritten bytes — overlapping
//                          edits have order-dependent pre-images, so a
//                          mechanism flip could not undo bit-identically
//
// CC007–CC012 lean on the interprocedural slicer (src/analysis/slicer) for
// indirect-target resolution, dominators, stack-depth and def-use facts.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/cutcheck/diagnostics.hpp"
#include "analysis/cutcheck/plan.hpp"

namespace dynacut::analysis::cutcheck {

inline constexpr char kRuleBoundary[] = "CC001-boundary";
inline constexpr char kRuleStrayEdge[] = "CC002-stray-edge";
inline constexpr char kRuleRedirect[] = "CC003-redirect";
inline constexpr char kRuleReachAmp[] = "CC004-reach-amp";
inline constexpr char kRulePageSafety[] = "CC005-page-safety";
inline constexpr char kRuleGadget[] = "CC006-gadget-delta";
inline constexpr char kRuleIndirect[] = "CC007-indirect-escape";
inline constexpr char kRulePartialSlice[] = "CC008-partial-slice";
inline constexpr char kRuleDataReach[] = "CC009-data-reach";
inline constexpr char kRuleStackImbalance[] = "CC010-stack-imbalance";
inline constexpr char kRuleDeadStore[] = "CC011-dead-store";
inline constexpr char kRuleStubReach[] = "CC012-stub-reach";
inline constexpr char kRuleStubReachability[] = "CC013-stub-reachability";
inline constexpr char kRuleStubReversibility[] = "CC014-stub-reversibility";

struct CheckOptions {
  /// Simulate the rewrite and diff gadget-start counts (CC006). The
  /// simulation maps every executable section into a scratch address space;
  /// disable for very hot paths.
  bool gadget_delta = true;
  int gadget_max_instrs = 5;  ///< scan_gadgets window

  /// Rules (exact IDs, e.g. "CC007-indirect-escape") whose findings are
  /// dropped entirely — per-fleet opt-outs while a rule is being tuned.
  std::set<std::string> suppress;
  /// Per-rule severity overrides — the staging knob: run a new rule
  /// warn-only before letting it reject plans under CheckMode::kEnforce.
  std::map<std::string, Severity> severity_override;
};

/// Verifies one module's cut plan. Never mutates anything; safe to call on
/// a live system at any time.
CheckReport check_plan(const CutPlan& plan, const CheckOptions& opts = {});

/// Verifies every per-module plan of a feature and merges the reports.
CheckReport check_plans(const std::vector<CutPlan>& plans,
                        const CheckOptions& opts = {});

}  // namespace dynacut::analysis::cutcheck
