#include "analysis/cutcheck/diagnostics.hpp"

#include <algorithm>

#include "common/hex.hpp"

namespace dynacut::analysis::cutcheck {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::string anchor = module + "+" + hex_addr(offset);
  if (end_offset > offset) anchor += ".." + hex_addr(end_offset);
  if (!function.empty()) anchor += " (in '" + function + "')";
  std::string line = std::string(severity_name(severity)) + " " + rule + " " +
                     anchor + ": " + message;
  if (!fix_hint.empty()) line += " (fix: " + fix_hint + ")";
  return line;
}

void CheckReport::merge(CheckReport other) {
  diags.insert(diags.end(), std::make_move_iterator(other.diags.begin()),
               std::make_move_iterator(other.diags.end()));
  gadget_delta += other.gadget_delta;
}

std::vector<const Diagnostic*> CheckReport::by_rule(
    const std::string& rule) const {
  std::vector<const Diagnostic*> out;
  for (const auto& d : diags) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

std::string CheckReport::format() const {
  std::vector<const Diagnostic*> ordered;
  ordered.reserve(diags.size());
  for (const auto& d : diags) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return static_cast<int>(a->severity) >
                            static_cast<int>(b->severity);
                   });
  std::string out;
  for (const Diagnostic* d : ordered) {
    out += d->format();
    out += '\n';
  }
  return out;
}

size_t CheckReport::count(Severity s) const {
  size_t n = 0;
  for (const auto& d : diags) {
    if (d.severity == s) ++n;
  }
  return n;
}

}  // namespace dynacut::analysis::cutcheck
