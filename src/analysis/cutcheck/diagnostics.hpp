// Structured diagnostics emitted by the cutcheck static verifier.
//
// Every finding carries a stable rule ID (CC001..CC006), a severity, the
// module-relative anchor it refers to and a fix hint, so operators (and
// tests) can gate on specific rules instead of parsing prose. A CheckReport
// aggregates the findings of all rules over all per-module plans; only
// kError findings make a plan rejectable in CheckMode::kEnforce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dynacut::analysis::cutcheck {

enum class Severity {
  kNote,     ///< informational (e.g. free extra removal candidates)
  kWarning,  ///< suspicious but not provably unsafe; plan still applies
  kError,    ///< provably unsafe cut; rejected under CheckMode::kEnforce
};

const char* severity_name(Severity s);

struct Diagnostic {
  std::string rule;  ///< stable ID, e.g. "CC001-boundary"
  Severity severity = Severity::kNote;
  std::string module;   ///< module the finding anchors to
  uint64_t offset = 0;  ///< module-relative anchor
  std::string message;
  std::string fix_hint;  ///< empty when no repair is suggested
  /// Exclusive end of the anchored range; 0 (or <= offset) collapses the
  /// range to the single anchor offset.
  uint64_t end_offset = 0;
  /// Function symbol enclosing the anchor; empty outside every function.
  std::string function;

  /// "error CC005-page-safety toysrv+0x1040..0x1080 (in 'dispatch'): ...
  ///  (fix: ...)" — the range and function parts appear only when known.
  std::string format() const;
};

class CheckReport {
 public:
  std::vector<Diagnostic> diags;
  /// Net ROP-gadget-start change the plan would cause (CC006); negative is
  /// an attack-surface reduction. Summed across merged reports.
  int64_t gadget_delta = 0;

  /// True when the plan carries no kError finding (warnings/notes pass).
  bool ok() const { return errors() == 0; }
  size_t errors() const { return count(Severity::kError); }
  size_t warnings() const { return count(Severity::kWarning); }
  size_t notes() const { return count(Severity::kNote); }

  void add(Diagnostic d) { diags.push_back(std::move(d)); }
  void merge(CheckReport other);

  /// Findings of one rule, in emission order.
  std::vector<const Diagnostic*> by_rule(const std::string& rule) const;

  /// One line per finding, errors first within emission order.
  std::string format() const;

 private:
  size_t count(Severity s) const;
};

}  // namespace dynacut::analysis::cutcheck
