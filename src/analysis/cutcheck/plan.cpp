#include "analysis/cutcheck/plan.hpp"

#include <algorithm>

#include "common/constants.hpp"

namespace dynacut::analysis::cutcheck {

const char* removal_name(Removal r) {
  switch (r) {
    case Removal::kBlockFirstByte:
      return "block-first-byte";
    case Removal::kWipeBlocks:
      return "wipe-blocks";
    case Removal::kUnmapPages:
      return "unmap-pages";
  }
  return "?";
}

const char* trap_name(Trap t) {
  switch (t) {
    case Trap::kTerminate:
      return "terminate";
    case Trap::kRedirect:
      return "redirect";
    case Trap::kVerify:
      return "verify";
  }
  return "?";
}

const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kTrap:
      return "trap";
    case Mechanism::kStub:
      return "stub";
    case Mechanism::kAuto:
      return "auto";
  }
  return "?";
}

std::vector<std::pair<uint64_t, uint64_t>> CutPlan::ranges() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(blocks.size());
  for (const auto& b : blocks) {
    out.emplace_back(b.offset, b.size == 0 ? 1 : b.size);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CutPlan::total_bytes() const {
  uint64_t sum = 0;
  for (const auto& b : blocks) sum += b.size == 0 ? 1 : b.size;
  return sum;
}

void ByteSet::add(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  // Absorb every interval overlapping or touching [begin, end).
  auto it = iv_.upper_bound(begin);
  if (it != iv_.begin()) {
    --it;
    if (it->second < begin) ++it;
  }
  while (it != iv_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = iv_.erase(it);
  }
  iv_[begin] = end;
}

bool ByteSet::contains(uint64_t off) const {
  auto it = iv_.upper_bound(off);
  if (it == iv_.begin()) return false;
  --it;
  return off < it->second;
}

bool ByteSet::covers(uint64_t begin, uint64_t end) const {
  if (begin >= end) return true;
  auto it = iv_.upper_bound(begin);
  if (it == iv_.begin()) return false;
  --it;
  return begin >= it->first && end <= it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> ByteSet::gaps(uint64_t begin,
                                                         uint64_t end) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  uint64_t cur = begin;
  auto it = iv_.upper_bound(begin);
  if (it != iv_.begin() && std::prev(it)->second > begin) --it;
  for (; it != iv_.end() && it->first < end && cur < end; ++it) {
    if (it->first > cur) out.emplace_back(cur, it->first);
    cur = std::max(cur, it->second);
  }
  if (cur < end) out.emplace_back(cur, end);
  return out;
}

std::vector<uint64_t> accounted_full_pages(const CutPlan& plan) {
  std::map<uint64_t, uint64_t> covered;  // page -> accounted bytes
  for (const auto& [off, size] : plan.ranges()) {
    uint64_t cur = off;
    uint64_t end = off + size;
    while (cur < end) {
      uint64_t page = page_floor(cur);
      uint64_t chunk = std::min(end, page + kPageSize) - cur;
      covered[page] += chunk;
      cur += chunk;
    }
  }
  std::vector<uint64_t> full;
  for (const auto& [page, bytes] : covered) {
    if (bytes >= kPageSize) full.push_back(page);
  }
  return full;
}

}  // namespace dynacut::analysis::cutcheck
