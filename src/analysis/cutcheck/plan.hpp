// The cut-plan model shared by the DynaCut facade and the cutcheck static
// verifier: which blocks of which module are removed, how (removal policy),
// and what happens when removed code is reached (trap policy).
//
// The Removal/Trap enumerators are the paper's §3.2.1/§3.2.2 policies; the
// core facade aliases them (core::RemovalPolicy / core::TrapPolicy) so the
// verifier and the rewriter reason about the exact same vocabulary. A
// CutPlan is one module's slice of a customization — rw::extract_plans
// splits a FeatureSpec into per-module plans before any image byte moves.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/coverage.hpp"
#include "melf/binary.hpp"

namespace dynacut::analysis::cutcheck {

/// How undesired code is removed (paper §3.2.1).
enum class Removal {
  kBlockFirstByte,  ///< int3 on each block's first byte (cheap, reversible)
  kWipeBlocks,      ///< fill whole blocks with int3 (anti code-reuse)
  kUnmapPages,      ///< drop fully-covered pages; wipe partial remainders
};

/// What happens when blocked code is reached (paper §3.2.2).
enum class Trap {
  kTerminate,  ///< no handler: default SIGTRAP disposition kills the process
  kRedirect,   ///< injected handler redirects to the app's error path
  kVerify,     ///< injected verifier heals the byte and logs the address
};

/// How disabled code is *reached-and-denied* (ROADMAP item 3). kTrap is the
/// paper's mechanism: every entry into cut code raises SIGTRAP and pays a
/// signal round-trip. kStub retargets PLT slots and direct call/jmp callsites
/// at wholly-cut functions to a tiny injected error stub (one branch, no
/// signal), keeping int3 as the safety net for non-callsite reachability.
/// kAuto picks per entry point: stub where the slicer proves every inbound
/// edge is a direct callsite, trap where the entry is address-taken or an
/// indirect-transfer target.
enum class Mechanism {
  kTrap,  ///< int3 + signal round-trip on every entry (paper §3.2)
  kStub,  ///< callsite/PLT redirection to an injected deny stub
  kAuto,  ///< stub where provably callsite-only, trap elsewhere
};

const char* removal_name(Removal r);
const char* trap_name(Trap t);
const char* mechanism_name(Mechanism m);

/// A proposed cut of one module: the feature's basic blocks that fall inside
/// it plus the policies they will be applied with.
struct CutPlan {
  std::string feature;
  std::string module;
  /// The loaded module's binary; the checker recovers CFG/call graph from
  /// it. Must be non-null for check_plan.
  std::shared_ptr<const melf::Binary> binary;
  /// Module-relative blocks (the CovBlock::module field is not consulted).
  std::vector<CovBlock> blocks;
  Removal removal = Removal::kBlockFirstByte;
  Trap trap = Trap::kTerminate;
  /// True when this module hosts the redirect target (Trap::kRedirect).
  bool has_redirect = false;
  uint64_t redirect_offset = 0;
  /// Entry-denial mechanism (kStub/kAuto add callsite redirection; the
  /// removal policy above still applies to non-callsite reachability).
  Mechanism mechanism = Mechanism::kTrap;
  /// Module-relative offsets of the function entries to stub. Empty means
  /// "derive from the plan": slicer::plan_stubs picks the wholly-cut
  /// function-entry symbols. Non-empty pins the set explicitly (checker and
  /// test surface — lets CC013/CC014 examine entries the deriver would have
  /// excluded).
  std::vector<uint64_t> stub_entries;

  /// (offset, size) ranges sorted by offset; a zero block size counts as one
  /// byte, mirroring DynaCut::remove_blocks.
  std::vector<std::pair<uint64_t, uint64_t>> ranges() const;
  uint64_t total_bytes() const;
};

/// A merged, disjoint set of byte intervals — the exact bytes a plan kills.
/// Used to contrast true coverage with the rewriter's per-range page
/// accounting (which double-counts overlapping blocks).
class ByteSet {
 public:
  /// Inserts [begin, end), merging with neighbours.
  void add(uint64_t begin, uint64_t end);
  bool contains(uint64_t off) const;
  /// True when [begin, end) is fully covered.
  bool covers(uint64_t begin, uint64_t end) const;
  /// The sub-intervals of [begin, end) NOT covered, in order.
  std::vector<std::pair<uint64_t, uint64_t>> gaps(uint64_t begin,
                                                  uint64_t end) const;
  bool empty() const { return iv_.empty(); }

 private:
  std::map<uint64_t, uint64_t> iv_;  ///< begin -> end, disjoint, sorted
};

/// The pages Removal::kUnmapPages would drop for this plan — the same
/// per-range accounting DynaCut::remove_blocks performs, overlap
/// double-counting included, so the checker predicts exactly what the
/// rewriter will do (CC005 exists precisely because this arithmetic can
/// claim a page is "fully covered" when its bytes are not).
std::vector<uint64_t> accounted_full_pages(const CutPlan& plan);

}  // namespace dynacut::analysis::cutcheck
