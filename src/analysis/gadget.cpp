#include "analysis/gadget.hpp"

#include "isa/isa.hpp"
#include <algorithm>
#include <cstdint>

namespace dynacut::analysis {

namespace {

bool gadget_at(const vm::AddressSpace& mem, uint64_t addr, int max_instrs) {
  uint64_t cur = addr;
  for (int i = 0; i < max_instrs; ++i) {
    uint8_t buf[16];
    if (!mem.read(cur, buf, 1, kProtExec).ok) return false;
    uint8_t len = isa::instr_length(buf[0]);
    if (len == 0) return false;
    if (len > 1 && !mem.read(cur + 1, buf + 1, len - 1, kProtExec).ok) {
      return false;
    }
    auto ins = isa::try_decode({buf, len});
    if (!ins) return false;
    if (ins->op == isa::Op::kRet) return true;
    if (ins->op == isa::Op::kTrap) return false;  // wiped / blocked code
    // Any other terminator diverts control away from the sequence.
    if (isa::is_terminator(ins->op)) return false;
    cur += len;
  }
  return false;
}

}  // namespace

GadgetStats scan_gadgets(const vm::AddressSpace& mem, int max_instrs) {
  return scan_gadgets(mem, 0, UINT64_MAX, max_instrs);
}

GadgetStats scan_gadgets(const vm::AddressSpace& mem, uint64_t lo,
                         uint64_t hi, int max_instrs) {
  GadgetStats stats;
  for (const auto& [start, vma] : mem.vmas()) {
    if ((vma.prot & kProtExec) == 0) continue;
    uint64_t from = std::max(vma.start, lo);
    uint64_t to = std::min(vma.end, hi);
    if (from >= to) continue;
    stats.executable_bytes += to - from;
    for (uint64_t addr = from; addr < to; ++addr) {
      if (gadget_at(mem, addr, max_instrs)) ++stats.gadget_starts;
    }
  }
  return stats;
}

}  // namespace dynacut::analysis
