// Code-reuse gadget scanner for the BROP/ROP case study (paper §4.2):
// counts ret-terminated instruction sequences reachable at any byte offset
// of the executable VMAs — the attacker's raw material. Wiping blocks with
// TRAP bytes and unmapping pages removes gadgets, which this scanner makes
// measurable.
#pragma once

#include <cstdint>

#include "vm/addrspace.hpp"

namespace dynacut::analysis {

struct GadgetStats {
  uint64_t gadget_starts = 0;    ///< distinct addresses beginning a gadget
  uint64_t executable_bytes = 0; ///< total bytes in executable VMAs
};

/// Scans every executable VMA: an address starts a gadget if decoding at
/// most `max_instrs` instructions from it reaches a RET without hitting an
/// invalid byte, a TRAP, or a non-executable boundary.
GadgetStats scan_gadgets(const vm::AddressSpace& mem, int max_instrs = 5);

/// Same scan restricted to the address window [lo, hi) — used to measure a
/// specific module's surface while ignoring injected helper libraries.
GadgetStats scan_gadgets(const vm::AddressSpace& mem, uint64_t lo,
                         uint64_t hi, int max_instrs = 5);

}  // namespace dynacut::analysis
