#include "analysis/plt.hpp"

namespace dynacut::analysis {

PltUsage analyze_plt(const melf::Binary& app, const std::string& module_name,
                     const CoverageGraph& init_cov,
                     const CoverageGraph& serving_cov) {
  PltUsage out;
  out.total_entries = app.imports.size();
  for (const auto& import : app.imports) {
    auto stub = app.plt_stub_offset(import);
    if (!stub) continue;
    bool in_init = init_cov.contains(module_name, *stub);
    bool in_serving = serving_cov.contains(module_name, *stub);
    if (in_init || in_serving) out.executed.push_back(import);
    if (in_serving) {
      out.serving.push_back(import);
    } else if (in_init) {
      out.init_only.push_back(import);
    }
  }
  return out;
}

std::vector<CovBlock> plt_blocks(const melf::Binary& app,
                                 const std::string& module_name,
                                 const std::vector<std::string>& entries) {
  std::vector<CovBlock> out;
  for (const auto& entry : entries) {
    auto stub = app.plt_stub_offset(entry);
    if (!stub) continue;
    out.push_back(CovBlock{
        module_name, *stub,
        static_cast<uint32_t>(melf::Binary::kPltStubSize)});
  }
  return out;
}

}  // namespace dynacut::analysis
