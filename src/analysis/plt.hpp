// Executed-PLT-entry analysis (paper §4.2, "Attack surface reduction"):
// which import trampolines run at all, which run only during
// initialization (and can thus be wiped post-init, defeating ret2plt /
// narrowing BROP), and which remain live while serving.
#pragma once

#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "melf/binary.hpp"

namespace dynacut::analysis {

struct PltUsage {
  std::vector<std::string> executed;        ///< entries seen in any trace
  std::vector<std::string> init_only;       ///< executed but never serving
  std::vector<std::string> serving;         ///< executed while serving
  size_t total_entries = 0;                 ///< all PLT stubs in the binary
};

/// Classifies `app`'s PLT stubs against init-phase and serving-phase
/// coverage of module `module_name`.
PltUsage analyze_plt(const melf::Binary& app, const std::string& module_name,
                     const CoverageGraph& init_cov,
                     const CoverageGraph& serving_cov);

/// The removable PLT stubs as coverage blocks (feed to
/// DynaCut::remove_init_code / disable_feature).
std::vector<CovBlock> plt_blocks(const melf::Binary& app,
                                 const std::string& module_name,
                                 const std::vector<std::string>& entries);

}  // namespace dynacut::analysis
