#include "analysis/slicer/dataflow.hpp"

#include <algorithm>
#include <deque>
#include <optional>

namespace dynacut::analysis::slicer {
namespace {

using isa::Op;

constexpr uint16_t kCallerSavedMask = 0x0FFF;  // r0..r11 (r11: PLT scratch)
constexpr uint16_t kArgMask = 0x003E;          // r1..r5

uint16_t bit(int reg) { return static_cast<uint16_t>(1u << reg); }

/// Immutable per-module context shared by both analyses.
struct ModCtx {
  const melf::Binary& bin;
  const StaticCfg& cfg;
  std::map<uint64_t, int64_t> abs_relocs;  ///< offset -> addend (kAbs64)
  uint64_t got_begin = 0, got_end = 0;
  std::vector<std::pair<uint64_t, uint64_t>> data_extents;  // rodata+data

  explicit ModCtx(const melf::Binary& b, const StaticCfg& c)
      : bin(b), cfg(c) {
    for (const auto& rel : b.relocs) {
      if (rel.kind == melf::RelocKind::kAbs64) {
        abs_relocs[rel.offset] = rel.addend;
      }
    }
    for (const auto& sec : b.sections) {
      if (sec.kind == melf::SectionKind::kGot) {
        got_begin = sec.offset;
        got_end = sec.offset + sec.size;
      } else if (sec.kind == melf::SectionKind::kRodata ||
                 sec.kind == melf::SectionKind::kData) {
        data_extents.emplace_back(sec.offset, sec.offset + sec.size);
      }
    }
  }

  bool in_data(uint64_t off) const {
    for (const auto& [b, e] : data_extents) {
      if (off >= b && off < e) return true;
    }
    return false;
  }

  std::optional<size_t> got_slot(uint64_t off) const {
    if (off < got_begin || off >= got_end || (off - got_begin) % 8 != 0) {
      return std::nullopt;
    }
    return (off - got_begin) / 8;
  }
};

AbsVal add_vals(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  if (a.kind == K::kConst && b.kind == K::kConst) {
    return AbsVal::konst(a.value + b.value);
  }
  // offset + constant keeps exactness; offset + unknown keeps the base.
  auto mix = [](const AbsVal& off, const AbsVal& other) -> AbsVal {
    if (other.kind == K::kConst) {
      if (off.kind == K::kModOff) return AbsVal::mod_off(off.value + other.value);
      return AbsVal::mod_off_var(off.value);
    }
    if (other.kind == K::kUnknown) return AbsVal::mod_off_var(off.value);
    return AbsVal::unknown();
  };
  if (a.kind == K::kModOff || a.kind == K::kModOffVar) return mix(a, b);
  if (b.kind == K::kModOff || b.kind == K::kModOffVar) return mix(b, a);
  return AbsVal::unknown();
}

AbsVal sub_vals(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  if (a.kind == K::kConst && b.kind == K::kConst) {
    return AbsVal::konst(a.value - b.value);
  }
  if (a.kind == K::kModOff && b.kind == K::kConst) {
    return AbsVal::mod_off(a.value - b.value);
  }
  if (a.kind == K::kModOffVar) return AbsVal::mod_off_var(a.value);
  return AbsVal::unknown();
}

/// The address an instruction's memory operand resolves to, if any.
struct ResolvedAddr {
  uint64_t target = 0;
  bool exact = false;
  bool ok = false;
};

ResolvedAddr resolve_addr(const AbsVal& base, int64_t disp) {
  using K = AbsVal::Kind;
  if (base.kind == K::kModOff) {
    return {base.value + static_cast<uint64_t>(disp), true, true};
  }
  if (base.kind == K::kModOffVar) return {base.value, false, true};
  return {};
}

/// Applies one instruction to the register state; records resolvable memory
/// accesses into `refs` when non-null.
void transfer(const ModCtx& mc, uint64_t off, uint64_t block,
              const isa::Instr& ins, RegState& s,
              std::vector<MemRef>* refs) {
  using K = AbsVal::Kind;
  switch (ins.op) {
    case Op::kMovRI: {
      auto rit = mc.abs_relocs.find(off + 2);  // imm64 field (mov_sym)
      s[ins.r1] = rit != mc.abs_relocs.end()
                      ? AbsVal::mod_off(static_cast<uint64_t>(rit->second))
                      : AbsVal::konst(static_cast<uint64_t>(ins.imm));
      break;
    }
    case Op::kMovRR:
      s[ins.r1] = s[ins.r2];
      break;
    case Op::kLea:
      s[ins.r1] = AbsVal::mod_off(off + ins.length +
                                  static_cast<uint64_t>(ins.imm));
      break;
    case Op::kLoad:
    case Op::kLoadB: {
      ResolvedAddr a = resolve_addr(s[ins.r2], ins.imm);
      if (a.ok && refs != nullptr) {
        refs->push_back({off, block, a.target, false, a.exact});
      }
      AbsVal v = AbsVal::unknown();
      if (ins.op == Op::kLoad && a.ok) {
        if (a.exact) {
          if (auto slot = mc.got_slot(a.target)) {
            v = AbsVal::import(*slot);
          } else if (auto rit = mc.abs_relocs.find(a.target);
                     rit != mc.abs_relocs.end()) {
            // A pointer slot with a constant index: the loaded value is the
            // relocated absolute address, i.e. base + addend.
            v = AbsVal::mod_off(static_cast<uint64_t>(rit->second));
          }
        } else if (mc.in_data(a.target)) {
          v = AbsVal::table_val(a.target);
        }
      }
      s[ins.r1] = v;
      break;
    }
    case Op::kStore:
    case Op::kStoreB: {
      ResolvedAddr a = resolve_addr(s[ins.r1], ins.imm);
      if (a.ok && refs != nullptr) {
        refs->push_back({off, block, a.target, true, a.exact});
      }
      break;
    }
    case Op::kAddRR:
      s[ins.r1] = add_vals(s[ins.r1], s[ins.r2]);
      break;
    case Op::kAddRI:
      s[ins.r1] = add_vals(s[ins.r1],
                           AbsVal::konst(static_cast<uint64_t>(ins.imm)));
      break;
    case Op::kSubRR:
      s[ins.r1] = sub_vals(s[ins.r1], s[ins.r2]);
      break;
    case Op::kSubRI:
      s[ins.r1] = sub_vals(s[ins.r1],
                           AbsVal::konst(static_cast<uint64_t>(ins.imm)));
      break;
    case Op::kXorRR:
      if (ins.r1 == ins.r2) {
        s[ins.r1] = AbsVal::konst(0);
        break;
      }
      [[fallthrough]];
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kAndRR:
    case Op::kOrRR: {
      const AbsVal &a = s[ins.r1], &b = s[ins.r2];
      if (a.kind == K::kConst && b.kind == K::kConst) {
        uint64_t r = 0;
        switch (ins.op) {
          case Op::kMulRR: r = a.value * b.value; break;
          case Op::kDivRR: r = b.value == 0 ? 0 : a.value / b.value; break;
          case Op::kAndRR: r = a.value & b.value; break;
          case Op::kOrRR: r = a.value | b.value; break;
          default: r = a.value ^ b.value; break;
        }
        s[ins.r1] = AbsVal::konst(r);
      } else {
        s[ins.r1] = AbsVal::unknown();
      }
      break;
    }
    case Op::kShlRI:
    case Op::kShrRI:
      s[ins.r1] = s[ins.r1].kind == K::kConst
                      ? AbsVal::konst(ins.op == Op::kShlRI
                                          ? s[ins.r1].value << ins.imm
                                          : s[ins.r1].value >> ins.imm)
                      : AbsVal::unknown();
      break;
    case Op::kPop:
      s[ins.r1] = AbsVal::unknown();  // stack contents are not modelled
      break;
    case Op::kSyscall:
      s[0] = AbsVal::unknown();
      break;
    default:
      break;  // cmp/branches/push/call/ret/nop/trap: no register writes here
  }
}

}  // namespace

AbsVal join(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  if (a == b) return a;
  if (a.kind == K::kUnknown || b.kind == K::kUnknown) return AbsVal::unknown();
  auto base_of = [](const AbsVal& v) -> std::optional<uint64_t> {
    if (v.kind == K::kModOff || v.kind == K::kModOffVar) return v.value;
    return std::nullopt;
  };
  auto ab = base_of(a), bb = base_of(b);
  if (ab && bb) return AbsVal::mod_off_var(std::min(*ab, *bb));
  return AbsVal::unknown();
}

ModuleDataflow analyze_module(const melf::Binary& bin, const StaticCfg& cfg) {
  ModCtx mc(bin, cfg);
  ModuleDataflow out;

  std::set<uint64_t> entry_like;  ///< blocks whose in-state is pinned unknown
  for (const auto& sym : bin.symbols) {
    if (sym.is_function && cfg.blocks.count(sym.value) != 0) {
      entry_like.insert(sym.value);
    }
  }
  auto preds = predecessors(cfg);
  for (const auto& [off, blk] : cfg.blocks) {
    if (preds.count(off) == 0) entry_like.insert(off);
  }

  RegState all_unknown{};
  std::deque<uint64_t> work(entry_like.begin(), entry_like.end());
  for (uint64_t b : entry_like) out.block_in[b] = all_unknown;

  // Forward fixpoint: states only descend (flat lattices per register), so
  // the worklist terminates without an iteration cap.
  while (!work.empty()) {
    uint64_t boff = work.front();
    work.pop_front();
    auto iit = out.block_in.find(boff);
    if (iit == out.block_in.end()) continue;
    const CfgBlock& blk = cfg.blocks.at(boff);

    RegState s = iit->second;
    uint64_t cur = boff;
    isa::Instr ins;
    for (uint32_t i = 0; i < blk.instr_count && decode_at(bin, cur, ins);
         ++i) {
      transfer(mc, cur, boff, ins, s, nullptr);
      cur += ins.length;
    }

    uint64_t fallthrough = boff + blk.size;
    for (uint64_t t : blk.succs) {
      if (cfg.blocks.count(t) == 0) continue;
      RegState edge = s;
      bool is_call_fall = (blk.term == Op::kCall || blk.term == Op::kCallR) &&
                          t == fallthrough;
      if (is_call_fall) {
        for (int r = 0; r < isa::kNumRegs; ++r) {
          if ((kCallerSavedMask & bit(r)) != 0) edge[r] = AbsVal::unknown();
        }
      }
      if (entry_like.count(t) != 0) continue;  // pinned to all-unknown
      auto [eit, inserted] = out.block_in.try_emplace(t, edge);
      if (inserted) {
        work.push_back(t);
        continue;
      }
      bool changed = false;
      for (int r = 0; r < isa::kNumRegs; ++r) {
        AbsVal j = join(eit->second[r], edge[r]);
        if (!(j == eit->second[r])) {
          eit->second[r] = j;
          changed = true;
        }
      }
      if (changed) work.push_back(t);
    }
  }

  // Final pass: with stable entry states, record memory references and the
  // transfer-register value at every indirect terminator.
  for (const auto& [boff, blk] : cfg.blocks) {
    RegState s = all_unknown;
    if (auto it = out.block_in.find(boff); it != out.block_in.end()) {
      s = it->second;
    }
    uint64_t cur = boff;
    isa::Instr ins;
    for (uint32_t i = 0; i < blk.instr_count && decode_at(bin, cur, ins);
         ++i) {
      if ((ins.op == Op::kCallR || ins.op == Op::kJmpR) &&
          cur + ins.length == boff + blk.size) {
        out.indirect_reg[boff] = s[ins.r1];
      }
      transfer(mc, cur, boff, ins, s, &out.mem_refs);
      cur += ins.length;
    }
  }
  return out;
}

FuncDataflow analyze_function(const melf::Binary& bin, const StaticCfg& cfg,
                              const FuncCfg& f) {
  FuncDataflow out;

  // Per-block facts: def/use masks and net stack delta.
  for (uint64_t boff : f.blocks) {
    const CfgBlock* blk = cfg.block_at(boff);
    if (blk == nullptr) continue;
    BlockFacts facts;
    uint64_t cur = boff;
    isa::Instr ins;
    auto use = [&](int r) {
      if ((facts.def_mask & bit(r)) == 0) facts.use_mask |= bit(r);
    };
    auto def = [&](int r) { facts.def_mask |= bit(r); };
    auto bump = [&](int64_t d) {
      if (facts.stack_delta != kUnknownDepth) facts.stack_delta += d;
    };
    for (uint32_t i = 0; i < blk->instr_count && decode_at(bin, cur, ins);
         ++i) {
      switch (ins.op) {
        case Op::kMovRI: def(ins.r1); break;
        case Op::kMovRR: use(ins.r2); def(ins.r1); break;
        case Op::kLea: def(ins.r1); break;
        case Op::kLoad:
        case Op::kLoadB: use(ins.r2); def(ins.r1); break;
        case Op::kStore:
        case Op::kStoreB: use(ins.r1); use(ins.r2); break;
        case Op::kAddRR:
        case Op::kSubRR:
        case Op::kMulRR:
        case Op::kDivRR:
        case Op::kAndRR:
        case Op::kOrRR:
        case Op::kXorRR: use(ins.r1); use(ins.r2); def(ins.r1); break;
        case Op::kAddRI:
        case Op::kSubRI:
        case Op::kShlRI:
        case Op::kShrRI: use(ins.r1); def(ins.r1); break;
        case Op::kCmpRR: use(ins.r1); use(ins.r2); break;
        case Op::kCmpRI: use(ins.r1); break;
        case Op::kPush: use(ins.r1); bump(-8); break;
        case Op::kPop: def(ins.r1); bump(8); break;
        case Op::kCall:
          for (int r = 1; r <= 5; ++r) use(r);
          for (int r = 0; r < isa::kNumRegs; ++r) {
            if ((kCallerSavedMask & bit(r)) != 0) def(r);
          }
          break;
        case Op::kCallR:
        case Op::kJmpR:
          use(ins.r1);
          for (int r = 1; r <= 5; ++r) use(r);
          if (ins.op == Op::kCallR) {
            for (int r = 0; r < isa::kNumRegs; ++r) {
              if ((kCallerSavedMask & bit(r)) != 0) def(r);
            }
          }
          break;
        case Op::kRet: use(0); break;
        case Op::kSyscall:
          use(0);
          for (int r = 1; r <= 5; ++r) use(r);
          def(0);
          break;
        default: break;
      }
      // SP written non-incrementally poisons the whole block's delta.
      bool writes_sp =
          (ins.op == Op::kMovRI || ins.op == Op::kMovRR || ins.op == Op::kLea ||
           ins.op == Op::kLoad || ins.op == Op::kLoadB ||
           ins.op == Op::kPop) &&
          ins.r1 == isa::kSpReg;
      if (ins.op == Op::kAddRI && ins.r1 == isa::kSpReg) {
        bump(ins.imm);
        writes_sp = false;
      } else if (ins.op == Op::kSubRI && ins.r1 == isa::kSpReg) {
        bump(-ins.imm);
        writes_sp = false;
      }
      if (writes_sp && !(ins.op == Op::kPop && ins.r1 == isa::kSpReg)) {
        // pop r15 both moves and overwrites SP; either way it is unknown.
      }
      if (writes_sp) facts.stack_delta = kUnknownDepth;
      cur += ins.length;
    }
    out.facts[boff] = facts;
  }

  // Intra-function predecessors.
  std::map<uint64_t, std::vector<uint64_t>> preds;
  for (const auto& [boff, succs] : f.succs) {
    for (uint64_t t : succs) preds[t].push_back(boff);
  }

  // Backward liveness to a fixed point.
  for (uint64_t b : f.blocks) {
    out.live_in[b] = 0;
    out.live_out[b] = 0;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = f.blocks.rbegin(); it != f.blocks.rend(); ++it) {
      uint64_t b = *it;
      auto fit = out.facts.find(b);
      if (fit == out.facts.end()) continue;
      uint16_t lo = 0;
      auto sit = f.succs.find(b);
      if (sit == f.succs.end() || sit->second.empty()) {
        lo = bit(0);  // exits: the return value is observable
      } else {
        for (uint64_t t : sit->second) lo |= out.live_in[t];
      }
      uint16_t li = fit->second.use_mask |
                    static_cast<uint16_t>(lo & ~fit->second.def_mask);
      if (lo != out.live_out[b] || li != out.live_in[b]) {
        out.live_out[b] = lo;
        out.live_in[b] = li;
        changed = true;
      }
    }
  }

  // Forward stack depth from the function entry.
  out.depth_in[f.entry] = 0;
  std::deque<uint64_t> work{f.entry};
  while (!work.empty()) {
    uint64_t b = work.front();
    work.pop_front();
    auto dit = out.depth_in.find(b);
    auto fit = out.facts.find(b);
    if (dit == out.depth_in.end() || fit == out.facts.end()) continue;
    int64_t depth_out =
        (dit->second == kUnknownDepth ||
         fit->second.stack_delta == kUnknownDepth)
            ? kUnknownDepth
            : dit->second + fit->second.stack_delta;
    auto sit = f.succs.find(b);
    if (sit == f.succs.end()) continue;
    for (uint64_t t : sit->second) {
      auto [tit, inserted] = out.depth_in.try_emplace(t, depth_out);
      if (inserted) {
        work.push_back(t);
      } else if (tit->second != depth_out && tit->second != kUnknownDepth) {
        tit->second = kUnknownDepth;  // paths disagree
        work.push_back(t);
      }
    }
  }

  // Reaching definitions at block granularity -> data dependences.
  using DefSets = std::array<std::set<uint64_t>, isa::kNumRegs>;
  std::map<uint64_t, DefSets> rd_in;
  changed = true;
  while (changed) {
    changed = false;
    for (uint64_t b : f.blocks) {
      auto fit = out.facts.find(b);
      if (fit == out.facts.end()) continue;
      DefSets in;
      if (auto pit = preds.find(b); pit != preds.end()) {
        for (uint64_t p : pit->second) {
          auto pfit = out.facts.find(p);
          if (pfit == out.facts.end()) continue;
          const DefSets* pin = nullptr;
          if (auto piit = rd_in.find(p); piit != rd_in.end()) {
            pin = &piit->second;
          }
          for (int r = 0; r < isa::kNumRegs; ++r) {
            if ((pfit->second.def_mask & bit(r)) != 0) {
              in[r].insert(p);
            } else if (pin != nullptr) {
              in[r].insert((*pin)[r].begin(), (*pin)[r].end());
            }
          }
        }
      }
      auto [iit, inserted] = rd_in.try_emplace(b, in);
      if (!inserted && iit->second != in) {
        iit->second = std::move(in);
        changed = true;
      } else if (inserted) {
        changed = true;
      }
    }
  }
  for (uint64_t b : f.blocks) {
    auto fit = out.facts.find(b);
    auto iit = rd_in.find(b);
    if (fit == out.facts.end() || iit == rd_in.end()) continue;
    std::set<uint64_t>& deps = out.data_deps[b];
    for (int r = 0; r < isa::kNumRegs; ++r) {
      if ((fit->second.use_mask & bit(r)) != 0) {
        deps.insert(iit->second[r].begin(), iit->second[r].end());
      }
    }
    deps.erase(b);
  }
  return out;
}

}  // namespace dynacut::analysis::slicer
