// Static dataflow over the recovered VX64 CFG (DESIGN.md §11).
//
// Two granularities, both conservative:
//
//  * Module-level constant/offset propagation (analyze_module): a forward
//    block-level fixpoint tracking, per register, whether its value is a
//    known constant, a known module-relative offset (formed by kLea or a
//    kMovRI carrying a kAbs64 relocation), such an offset plus a
//    statically-unknown delta (table base + index), or a value loaded from
//    a GOT slot (a resolved import). This is exactly the strength needed to
//    resolve PLT-stub and jump-table indirect transfers, and to attribute
//    loads/stores to the data symbols they touch.
//
//  * Per-function facts (analyze_function): register def/use and liveness,
//    net stack delta and entry stack depth per block (SP-relative tracking
//    of kPush/kPop/kAddRI/kSubRI on r15), and block-level data dependences
//    from reaching definitions — the raw material of the dependence graph
//    and of cutcheck rules CC010/CC011.
//
// Function entries always join an implicit all-unknown state (callers may
// be invisible to static recovery), so nothing proved here depends on
// having seen every call site.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "analysis/cfg.hpp"
#include "melf/binary.hpp"

namespace dynacut::analysis::slicer {

/// Abstract register value for constant/offset propagation.
struct AbsVal {
  enum class Kind : uint8_t {
    kUnknown,    ///< anything (lattice top)
    kConst,      ///< known integer constant `value`
    kModOff,     ///< load_base + `value` (exact module-relative offset)
    kModOffVar,  ///< load_base + `value` + statically-unknown delta
    kImport,     ///< loaded from GOT slot #`value` (resolved import address)
    kTableVal,   ///< loaded from a pointer table based at offset `value`
  };
  Kind kind = Kind::kUnknown;
  uint64_t value = 0;

  static AbsVal unknown() { return {}; }
  static AbsVal konst(uint64_t v) { return {Kind::kConst, v}; }
  static AbsVal mod_off(uint64_t off) { return {Kind::kModOff, off}; }
  static AbsVal mod_off_var(uint64_t base) { return {Kind::kModOffVar, base}; }
  static AbsVal import(uint64_t slot) { return {Kind::kImport, slot}; }
  static AbsVal table_val(uint64_t base) { return {Kind::kTableVal, base}; }

  bool operator==(const AbsVal&) const = default;
};

/// Lattice join; unequal offsets degrade to kModOffVar over the lower base,
/// everything else incomparable joins to kUnknown.
AbsVal join(const AbsVal& a, const AbsVal& b);

using RegState = std::array<AbsVal, isa::kNumRegs>;

/// A memory access whose address resolved to a module-relative offset.
struct MemRef {
  uint64_t instr = 0;   ///< module-relative offset of the load/store
  uint64_t block = 0;   ///< enclosing block start
  uint64_t target = 0;  ///< resolved data offset (symbol base when !exact)
  bool is_store = false;
  bool exact = false;  ///< target is the exact byte, not just an area base
};

/// Whole-module forward constant/offset propagation at block granularity.
struct ModuleDataflow {
  /// Register state at each block entry (missing = never reached by the
  /// propagation, treated as all-unknown).
  std::map<uint64_t, RegState> block_in;
  /// Value of the transfer register at each kCallR/kJmpR terminator,
  /// keyed by the block start.
  std::map<uint64_t, AbsVal> indirect_reg;
  /// Symbol-resolvable loads and stores, in block order.
  std::vector<MemRef> mem_refs;
};

ModuleDataflow analyze_module(const melf::Binary& bin, const StaticCfg& cfg);

/// Sentinel for an unknown stack depth/delta.
inline constexpr int64_t kUnknownDepth = INT64_MIN;

/// Register def/use and stack behaviour of one block.
struct BlockFacts {
  uint16_t use_mask = 0;  ///< registers read before any write in the block
  uint16_t def_mask = 0;  ///< registers written by the block
  /// Net SP change across the block (kUnknownDepth when SP is assigned
  /// non-incrementally). Calls are balanced by their matching ret.
  int64_t stack_delta = 0;
};

/// Per-function dataflow summary.
struct FuncDataflow {
  std::map<uint64_t, BlockFacts> facts;
  std::map<uint64_t, uint16_t> live_in;
  std::map<uint64_t, uint16_t> live_out;
  /// Stack depth at block entry relative to the function entry (0 there);
  /// kUnknownDepth when paths disagree or SP escapes tracking.
  std::map<uint64_t, int64_t> depth_in;
  /// Block-level data dependences from reaching definitions: consumer
  /// block -> the blocks whose register definitions it may read.
  std::map<uint64_t, std::set<uint64_t>> data_deps;
};

FuncDataflow analyze_function(const melf::Binary& bin, const StaticCfg& cfg,
                              const FuncCfg& f);

}  // namespace dynacut::analysis::slicer
