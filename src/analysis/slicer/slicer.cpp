#include "analysis/slicer/slicer.hpp"

#include <algorithm>

#include "common/hex.hpp"

namespace dynacut::analysis::slicer {
namespace {

bool in_exec(const melf::Binary& bin, uint64_t off) {
  for (const auto& sec : bin.sections) {
    if (sec.kind != melf::SectionKind::kText &&
        sec.kind != melf::SectionKind::kPlt) {
      continue;
    }
    if (off >= sec.offset && off < sec.offset + sec.bytes.size()) return true;
  }
  return false;
}

/// Targets of the pointer table at `base`: the contiguous run of kAbs64
/// relocated 8-byte slots starting there (the builder lays data_ptr slots
/// out back to back). Empty when the base slot carries no relocation.
std::vector<uint64_t> table_targets(
    const melf::Binary& bin, const std::map<uint64_t, int64_t>& abs_relocs,
    uint64_t base) {
  std::vector<uint64_t> out;
  for (uint64_t slot = base;; slot += 8) {
    auto it = abs_relocs.find(slot);
    if (it == abs_relocs.end()) break;
    uint64_t t = static_cast<uint64_t>(it->second);
    if (in_exec(bin, t)) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<uint64_t> entry_function(const SliceModel& m) {
  if (m.bin == nullptr || m.bin->entry == melf::Binary::kNoEntry) {
    return std::nullopt;
  }
  return m.function_of(m.bin->entry);
}

}  // namespace

const IndirectSite* SliceModel::site_at_block(uint64_t block) const {
  auto it = std::lower_bound(
      indirect.begin(), indirect.end(), block,
      [](const IndirectSite& s, uint64_t b) { return s.block < b; });
  return (it != indirect.end() && it->block == block) ? &*it : nullptr;
}

std::optional<uint64_t> SliceModel::function_of(uint64_t off) const {
  if (bin == nullptr) return std::nullopt;
  const melf::Symbol* fn = bin->symbol_containing(off);
  if (fn == nullptr) return std::nullopt;
  return fn->value;
}

const char* witness_kind_name(Witness::Kind k) {
  switch (k) {
    case Witness::Kind::kSeed: return "seed";
    case Witness::Kind::kDominated: return "dominated";
    case Witness::Kind::kCallClosure: return "call-closure";
  }
  return "?";
}

SliceModel analyze(const melf::Binary& bin) {
  return analyze(bin, recover_cfg(bin));
}

SliceModel analyze(const melf::Binary& bin, StaticCfg cfg) {
  SliceModel m;
  m.bin = &bin;
  m.cfg = std::move(cfg);
  m.mdf = analyze_module(bin, m.cfg);
  m.funcs = split_functions(m.cfg, bin);

  std::map<uint64_t, int64_t> abs_relocs;
  for (const auto& rel : bin.relocs) {
    if (rel.kind == melf::RelocKind::kAbs64) {
      abs_relocs[rel.offset] = rel.addend;
    }
  }

  // Per-function dataflow + merged dominator trees.
  for (const auto& [entry, f] : m.funcs) {
    m.fdf[entry] = analyze_function(bin, m.cfg, f);
    for (const auto& [b, d] : dominator_tree(f)) m.deps.idom[b] = d;
    const auto& deps = m.fdf[entry].data_deps;
    m.deps.data_deps.insert(deps.begin(), deps.end());
  }

  // Classify every indirect terminator.
  for (const auto& [boff, val] : m.mdf.indirect_reg) {
    const CfgBlock* blk = m.cfg.block_at(boff);
    if (blk == nullptr) continue;
    IndirectSite site;
    site.block = boff;
    site.is_call = blk->term == isa::Op::kCallR;
    // Offset of the terminator itself: last instruction of the block.
    uint64_t cur = boff;
    isa::Instr ins;
    for (uint32_t i = 0; i + 1 < blk->instr_count && decode_at(bin, cur, ins);
         ++i) {
      cur += ins.length;
    }
    site.instr = cur;

    using K = AbsVal::Kind;
    switch (val.kind) {
      case K::kImport:
        if (val.value < bin.imports.size()) {
          site.kind = IndirectSite::Kind::kPltImport;
          site.import_name = bin.imports[val.value];
        }
        break;
      case K::kModOff:
        site.kind = IndirectSite::Kind::kDirect;
        site.targets = {val.value};
        break;
      case K::kTableVal: {
        auto targets = table_targets(bin, abs_relocs, val.value);
        if (!targets.empty()) {
          site.kind = IndirectSite::Kind::kTable;
          site.targets = std::move(targets);
        }
        break;
      }
      default:
        break;  // kUnknown / kModOffVar / kConst: unresolved
    }
    if (site.kind == IndirectSite::Kind::kUnresolved) {
      m.all_indirect_resolved = false;
    }
    m.indirect.push_back(std::move(site));
  }

  // Caller map: the direct call graph plus resolved indirect transfers into
  // function entries. Resolved targets that are NOT entries pin their
  // function (the CFG is missing edges inside it).
  m.deps.callers = call_sites(m.cfg, bin);
  for (const auto& site : m.indirect) {
    for (uint64_t t : site.targets) {
      const melf::Symbol* to = bin.symbol_containing(t);
      if (to == nullptr) continue;
      if (t == to->value) {
        auto from = m.function_of(site.block);
        if (!from.has_value() || *from != to->value) {
          m.deps.callers[to->value].push_back(site.block);
        }
      } else {
        m.pinned_functions.insert(to->value);
      }
    }
  }

  // Address-taken functions: any kAbs64 relocation (code immediate or data
  // slot) whose value lands inside a function body.
  for (const auto& [off, addend] : abs_relocs) {
    const melf::Symbol* fn = bin.symbol_containing(
        static_cast<uint64_t>(addend));
    if (fn != nullptr) m.deps.address_taken.insert(fn->value);
  }
  return m;
}

FeatureSlice feature_slice(const SliceModel& m, const std::set<uint64_t>& seeds,
                           const SliceOptions& opts) {
  FeatureSlice out;
  auto include = [&](uint64_t b, Witness::Kind kind, uint64_t via,
                     std::string detail) {
    if (!out.blocks.insert(b).second) return false;
    out.witnesses.push_back({b, kind, via, std::move(detail)});
    return true;
  };
  for (uint64_t s : seeds) {
    if (m.cfg.block_at(s) == nullptr || opts.keep_blocks.count(s) != 0) {
      continue;
    }
    include(s, Witness::Kind::kSeed, s, "named by the feature's coverage");
  }
  out.seed_count = out.blocks.size();
  // An unresolved indirect transfer could reach any block; nothing beyond
  // the seeds is provably removable.
  if (!m.all_indirect_resolved) return out;

  std::optional<uint64_t> entry_fn = entry_function(m);
  auto fn_name = [&](uint64_t entry) {
    const melf::Symbol* sym =
        m.bin != nullptr ? m.bin->symbol_containing(entry) : nullptr;
    return sym != nullptr ? sym->name : hex_addr(entry);
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Rule 1: a block whose dominator chain passes through a slice block can
    // only execute after the trap fires — it is unreachable once cut.
    for (const auto& [entry, f] : m.funcs) {
      if (m.pinned_functions.count(entry) != 0) continue;
      for (uint64_t b : f.blocks) {
        if (b == entry || out.blocks.count(b) != 0 ||
            opts.keep_blocks.count(b) != 0) {
          continue;
        }
        for (uint64_t cur = b;;) {
          auto it = m.deps.idom.find(cur);
          if (it == m.deps.idom.end() || it->second == cur) break;
          cur = it->second;
          if (out.blocks.count(cur) != 0) {
            changed |= include(b, Witness::Kind::kDominated, cur,
                               "dominated by removed block " + hex_addr(cur) +
                                   " in '" + fn_name(entry) + "'");
            break;
          }
          if (cur == entry) break;
        }
      }
    }

    // Rule 2: a function whose every caller is in the slice, whose address
    // is never taken and which is not externally reachable joins wholesale.
    for (const auto& [entry, sites] : m.deps.callers) {
      if (sites.empty()) continue;
      auto fit = m.funcs.find(entry);
      if (fit == m.funcs.end()) continue;
      if (m.pinned_functions.count(entry) != 0 ||
          m.deps.address_taken.count(entry) != 0) {
        continue;
      }
      if (entry_fn.has_value() && entry == *entry_fn) continue;
      if (opts.keep_functions.count(fn_name(entry)) != 0) continue;
      const FuncCfg& f = fit->second;
      bool kept = std::any_of(f.blocks.begin(), f.blocks.end(), [&](uint64_t b) {
        return opts.keep_blocks.count(b) != 0;
      });
      if (kept) continue;
      bool covered = std::all_of(f.blocks.begin(), f.blocks.end(),
                                 [&](uint64_t b) {
                                   return out.blocks.count(b) != 0;
                                 });
      if (covered) continue;
      bool all_cut = std::all_of(sites.begin(), sites.end(), [&](uint64_t s) {
        return out.blocks.count(s) != 0;
      });
      if (!all_cut) continue;
      for (uint64_t b : f.blocks) {
        changed |= include(b, Witness::Kind::kCallClosure, entry,
                           "'" + fn_name(entry) +
                               "' is only reached from removed call sites");
      }
    }
  }
  return out;
}

PlanExpansion expand_plan(cutcheck::CutPlan& plan, const SliceOptions& opts) {
  PlanExpansion stats;
  stats.seed_blocks = plan.blocks.size();
  stats.slice_blocks = plan.blocks.size();
  if (plan.binary == nullptr || plan.blocks.empty()) return stats;

  SliceModel m = analyze(*plan.binary);
  SliceOptions eff = opts;
  if (plan.has_redirect) {
    // The error stub must survive the cut it serves.
    const CfgBlock* rb = m.cfg.block_containing(plan.redirect_offset);
    if (rb != nullptr) eff.keep_blocks.insert(rb->offset);
  }

  // Map observed (dynamic) block starts onto the static blocks containing
  // them; traced blocks split at call returns exactly like static ones, but
  // mapping through block_containing also absorbs sub-block starts.
  std::set<uint64_t> seeds;
  std::vector<CovBlock> unmapped;
  for (const auto& b : plan.blocks) {
    const CfgBlock* blk = m.cfg.block_containing(b.offset);
    if (blk != nullptr) {
      seeds.insert(blk->offset);
    } else {
      unmapped.push_back(b);  // outside the recovered CFG: keep verbatim
    }
  }

  FeatureSlice slice = feature_slice(m, seeds, eff);
  std::vector<CovBlock> blocks = std::move(unmapped);
  for (uint64_t b : slice.blocks) {
    const CfgBlock* blk = m.cfg.block_at(b);
    blocks.push_back({plan.module, b, blk != nullptr ? blk->size : 0});
  }
  std::sort(blocks.begin(), blocks.end());
  plan.blocks = std::move(blocks);

  stats.slice_blocks = plan.blocks.size();
  stats.witnesses = slice.witnesses.size() - slice.seed_count;
  return stats;
}

namespace {

/// Module-relative offset of `block`'s terminator instruction (the last
/// decodable instruction inside it), or nullopt on decode failure.
std::optional<uint64_t> terminator_offset(const melf::Binary& bin,
                                          const CfgBlock& block) {
  uint64_t off = block.offset;
  uint64_t end = block.offset + block.size;
  while (off < end) {
    isa::Instr in;
    if (!decode_at(bin, off, in)) return std::nullopt;
    if (off + in.length >= end) return off;
    off += in.length;
  }
  return std::nullopt;
}

}  // namespace

StubPlan plan_stubs(const SliceModel& m, const cutcheck::CutPlan& plan) {
  StubPlan out;
  if (plan.mechanism == cutcheck::Mechanism::kTrap || m.bin == nullptr) {
    return out;
  }
  std::set<uint64_t> cut_starts;
  for (const auto& b : plan.blocks) cut_starts.insert(b.offset);

  // Candidate entries: explicit, or every function symbol whose entry block
  // is cut and whose whole intra-procedural CFG lies inside the cut.
  const bool explicit_entries = !plan.stub_entries.empty();
  std::set<uint64_t> candidates;
  if (explicit_entries) {
    candidates.insert(plan.stub_entries.begin(), plan.stub_entries.end());
  } else {
    for (const auto& [entry, f] : m.funcs) {
      if (cut_starts.count(entry) == 0) continue;
      bool whole = !f.blocks.empty();
      for (uint64_t b : f.blocks) {
        if (cut_starts.count(b) == 0) {
          whole = false;
          break;
        }
      }
      if (whole) candidates.insert(entry);
    }
  }

  // Entries reachable through pointers the callsite pass cannot retarget.
  std::set<uint64_t> pointer_reachable(m.deps.address_taken);
  for (const IndirectSite& site : m.indirect) {
    if (site.kind != IndirectSite::Kind::kTable &&
        site.kind != IndirectSite::Kind::kDirect) {
      continue;
    }
    pointer_reachable.insert(site.targets.begin(), site.targets.end());
  }

  std::set<uint64_t> entries;
  for (uint64_t entry : candidates) {
    if (plan.mechanism == cutcheck::Mechanism::kAuto &&
        pointer_reachable.count(entry) != 0) {
      out.trap_only.push_back(entry);  // int3 must keep covering it
    } else {
      entries.insert(entry);
    }
  }
  out.entries.assign(entries.begin(), entries.end());

  for (uint64_t entry : entries) {
    const melf::Symbol* sym = m.bin->symbol_containing(entry);
    if (sym != nullptr && sym->value == entry && sym->global) {
      out.exports.emplace_back(sym->name, entry);
    }
  }

  // Direct callsites: every block terminated by kCall/kJmp whose static
  // target is a stubbed entry.
  for (const auto& [boff, block] : m.cfg.blocks) {
    if (block.term != isa::Op::kCall && block.term != isa::Op::kJmp) continue;
    auto toff = terminator_offset(*m.bin, block);
    if (!toff) continue;
    isa::Instr in;
    if (!decode_at(*m.bin, *toff, in)) continue;
    if (entries.count(in.target(*toff)) == 0) continue;
    StubSite site;
    site.instr = *toff;
    site.block = boff;
    site.entry = in.target(*toff);
    site.is_call = block.term == isa::Op::kCall;
    if (cut_starts.count(boff) != 0) {
      if (*toff == boff) {
        // A cut block *starting* with the callsite: the redirect is the
        // denial; removal must not overwrite the branch opcode.
        site.skip_trap = true;
        out.skip_trap_blocks.insert(boff);
      } else if (!explicit_entries) {
        // Mid-block inside the cut: the int3 net denies it first.
        out.int3_covered.push_back(site);
        continue;
      }
    }
    out.sites.push_back(site);
  }
  std::sort(out.sites.begin(), out.sites.end(),
            [](const StubSite& a, const StubSite& b) {
              return a.instr < b.instr;
            });
  return out;
}

cutcheck::CutPlan synthesize_plan(std::shared_ptr<const melf::Binary> bin,
                                  const std::string& module,
                                  const std::string& feature,
                                  const std::vector<CovBlock>& observed,
                                  cutcheck::Removal removal,
                                  cutcheck::Trap trap,
                                  const SliceOptions& opts) {
  cutcheck::CutPlan plan;
  plan.feature = feature;
  plan.module = module;
  plan.binary = std::move(bin);
  plan.removal = removal;
  plan.trap = trap;
  for (const auto& b : observed) {
    if (b.module == module) plan.blocks.push_back(b);
  }
  expand_plan(plan, opts);
  return plan;
}

}  // namespace dynacut::analysis::slicer
