// The interprocedural feature slicer (DESIGN.md §11).
//
// Built on the dataflow pass (slicer/dataflow.hpp), this module gives the
// cut pipeline the three static capabilities the paper's coverage-driven
// selection lacks:
//
//  * resolve_indirect / SliceModel.indirect — classifies every kCallR/kJmpR
//    terminator: PLT-stub tail jumps resolve to their import, loads from
//    in-module pointer tables enumerate the table's relocated targets, and
//    exact offsets resolve to a single target. Anything else is marked
//    unresolved, which conservatively pins the whole module against slice
//    expansion (an invisible edge could reach anything).
//
//  * a dependence graph — control dependences from per-function dominator
//    trees, data dependences from reaching definitions, a callee-indexed
//    caller map merging the direct call graph with resolved indirect
//    transfers, and the set of address-taken functions.
//
//  * feature_slice(seeds) — the closure turning observed coverage into the
//    full removable slice: blocks dominated by slice members can only
//    execute after a trapped block, and functions whose every caller is in
//    the slice (not address-taken, not exported, not the module entry)
//    join wholesale. Every inclusion carries a Witness naming the rule and
//    the block/function that justified it.
//
// synthesize_plan / expand_plan put the closure to work: a coverage-seeded
// CutPlan grows into a slice-closed plan that removes the unexecuted
// remainder of the feature's call tree, with cutcheck (CC007–CC012)
// verifying the result.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "analysis/cutcheck/plan.hpp"
#include "analysis/slicer/dataflow.hpp"

namespace dynacut::analysis::slicer {

/// One kCallR/kJmpR terminator and what the dataflow proved about it.
struct IndirectSite {
  enum class Kind : uint8_t {
    kPltImport,   ///< PLT stub tail jump through a GOT slot
    kTable,       ///< load from an in-module pointer table
    kDirect,      ///< register holds one exact module offset
    kUnresolved,  ///< value escapes the abstraction
  };
  uint64_t block = 0;  ///< block whose terminator this is
  uint64_t instr = 0;  ///< module-relative offset of the kCallR/kJmpR
  bool is_call = false;
  Kind kind = Kind::kUnresolved;
  std::string import_name;        ///< kPltImport only
  std::vector<uint64_t> targets;  ///< module-relative, sorted (kTable/kDirect)
};

/// The module's dependence structure, block- and function-indexed.
struct DepGraph {
  /// Immediate dominators, merged across every function subgraph (block
  /// offsets are module-unique, so one map suffices).
  std::map<uint64_t, uint64_t> idom;
  /// Consumer block -> defining blocks it may read (reaching definitions).
  std::map<uint64_t, std::set<uint64_t>> data_deps;
  /// Function entry -> the blocks that call or tail-jump into it, direct
  /// transfers and resolved indirect ones alike.
  std::map<uint64_t, std::vector<uint64_t>> callers;
  /// Function entries whose address is taken by any kAbs64 relocation —
  /// reachable through pointers the CFG cannot see.
  std::set<uint64_t> address_taken;
};

/// Everything the slicer knows about one binary, computed once.
struct SliceModel {
  const melf::Binary* bin = nullptr;  ///< non-owning; caller keeps it alive
  StaticCfg cfg;
  ModuleDataflow mdf;
  std::map<uint64_t, FuncCfg> funcs;
  std::map<uint64_t, FuncDataflow> fdf;  ///< keyed like `funcs`
  std::vector<IndirectSite> indirect;    ///< sorted by block offset
  DepGraph deps;
  /// True when every indirect site resolved (kind != kUnresolved); slice
  /// expansion refuses to grow otherwise.
  bool all_indirect_resolved = true;
  /// Functions containing a resolved indirect target that is not a function
  /// entry (computed-goto style); their internal control flow has edges the
  /// recovered CFG lacks, so dominator reasoning is suspended there.
  std::set<uint64_t> pinned_functions;

  const IndirectSite* site_at_block(uint64_t block) const;
  /// Entry of the function symbol owning `off`, or nullopt.
  std::optional<uint64_t> function_of(uint64_t off) const;
};

SliceModel analyze(const melf::Binary& bin);
/// As above but reusing an already-recovered CFG (the cutcheck path).
SliceModel analyze(const melf::Binary& bin, StaticCfg cfg);

/// Why a block is in the slice.
struct Witness {
  enum class Kind : uint8_t {
    kSeed,         ///< named by the caller
    kDominated,    ///< idom chain passes through a slice block
    kCallClosure,  ///< function's every caller is in the slice
  };
  uint64_t block = 0;
  Kind kind = Kind::kSeed;
  uint64_t via = 0;    ///< dominating block / function entry (non-seed)
  std::string detail;  ///< human-readable justification
};

const char* witness_kind_name(Witness::Kind k);

struct SliceOptions {
  /// Blocks never added by expansion (e.g. the redirect error stub).
  std::set<uint64_t> keep_blocks;
  /// Function symbol names never pulled in by call closure.
  std::set<std::string> keep_functions;
};

struct FeatureSlice {
  std::set<uint64_t> blocks;
  std::vector<Witness> witnesses;  ///< one per block, in insertion order
  size_t seed_count = 0;
};

/// Expands `seeds` (block starts) to the fixpoint of the dominated and
/// call-closure rules. Seeds that are not block starts are dropped. With
/// unresolved indirect sites in the module the result is the seeds alone.
FeatureSlice feature_slice(const SliceModel& m, const std::set<uint64_t>& seeds,
                           const SliceOptions& opts = {});

/// What expanding one plan did.
struct PlanExpansion {
  size_t seed_blocks = 0;   ///< blocks the plan named
  size_t slice_blocks = 0;  ///< blocks after expansion
  size_t witnesses = 0;     ///< non-seed inclusions
};

/// Grows `plan.blocks` in place to the feature slice seeded by them. The
/// redirect target's block (when the plan hosts one) is kept out of the
/// slice automatically. No-op on plans without a binary or blocks.
PlanExpansion expand_plan(cutcheck::CutPlan& plan,
                          const SliceOptions& opts = {});

/// One direct kCall/kJmp whose static target is a stubbed function entry —
/// a rewriter patch point for Mechanism::kStub/kAuto.
struct StubSite {
  uint64_t instr = 0;   ///< module-relative offset of the kCall/kJmp
  uint64_t block = 0;   ///< block whose terminator it is
  uint64_t entry = 0;   ///< stubbed function entry it targets
  bool is_call = false; ///< kCall (vs tail kJmp)
  /// The callsite's own block is inside the cut and *starts* at the callsite
  /// (kCall/kJmp are terminators, so such blocks are single-instruction).
  /// The block is left out of the removal pass — the redirect is the denial;
  /// an int3 on its first byte would overwrite the branch opcode.
  bool skip_trap = false;
};

/// Everything the stub mechanism will do to one module, derived from the
/// slice model so cutcheck (CC013/CC014) and the rewriter agree byte for
/// byte on what gets patched.
struct StubPlan {
  /// Function entries redirected to the deny stub, sorted.
  std::vector<uint64_t> entries;
  /// Entries kAuto demoted to the trap mechanism (address-taken or targeted
  /// by a resolved indirect transfer — a callsite patch cannot cover them).
  std::vector<uint64_t> trap_only;
  /// Direct callsite patches, sorted by instr offset.
  std::vector<StubSite> sites;
  /// Callsites at stubbed entries that are NOT patched: they sit mid-block
  /// inside the cut, so the block's int3 denies them first (derived plans
  /// only — explicit entry lists move these into `sites` for CC014).
  std::vector<StubSite> int3_covered;
  /// Cut blocks the removal pass must skip (see StubSite::skip_trap).
  std::set<uint64_t> skip_trap_blocks;
  /// (symbol name, entry) of stubbed entries that are exported globals —
  /// other modules' GOT slots importing them get redirected too.
  std::vector<std::pair<std::string, uint64_t>> exports;
};

/// Plans the callsite/PLT redirection for `plan` (Mechanism::kStub/kAuto).
/// Entries come from plan.stub_entries when non-empty, otherwise they are
/// derived: function-entry symbols whose every CFG block is in the cut.
/// Under kAuto, address-taken entries and resolved-indirect targets are
/// demoted to trap_only. Callsites inside the cut that do not start their
/// block are excluded when deriving (the int3 net keeps them) but kept for
/// explicit entry lists so CC014 can examine them. Returns an empty plan for
/// Mechanism::kTrap.
StubPlan plan_stubs(const SliceModel& m, const cutcheck::CutPlan& plan);

/// Builds a slice-closed CutPlan from observed coverage: blocks of
/// `observed` belonging to `module` seed the closure over `bin`'s CFG.
cutcheck::CutPlan synthesize_plan(std::shared_ptr<const melf::Binary> bin,
                                  const std::string& module,
                                  const std::string& feature,
                                  const std::vector<CovBlock>& observed,
                                  cutcheck::Removal removal,
                                  cutcheck::Trap trap,
                                  const SliceOptions& opts = {});

}  // namespace dynacut::analysis::slicer
