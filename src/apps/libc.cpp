#include "apps/libc.hpp"

#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::apps {

using melf::FunctionBuilder;
using melf::ProgramBuilder;

namespace {

void emit_strlen(ProgramBuilder& b) {
  auto& f = b.func("strlen");
  f.mov_ri(0, 0)
      .label("loop")
      .mov_rr(6, 1)
      .add_rr(6, 0)
      .loadb(7, 6, 0)
      .cmp_ri(7, 0)
      .je("done")
      .add_ri(0, 1)
      .jmp("loop")
      .label("done")
      .ret();
}

void emit_strcmp(ProgramBuilder& b) {
  auto& f = b.func("strcmp");
  f.label("loop")
      .loadb(6, 1, 0)
      .loadb(7, 2, 0)
      .cmp_rr(6, 7)
      .jne("diff")
      .cmp_ri(6, 0)
      .je("equal")
      .add_ri(1, 1)
      .add_ri(2, 1)
      .jmp("loop")
      .label("diff")
      .mov_ri(0, 1)
      .ret()
      .label("equal")
      .mov_ri(0, 0)
      .ret();
}

void emit_strncmp(ProgramBuilder& b) {
  auto& f = b.func("strncmp");
  f.label("loop")
      .cmp_ri(3, 0)
      .je("equal")
      .loadb(6, 1, 0)
      .loadb(7, 2, 0)
      .cmp_rr(6, 7)
      .jne("diff")
      .cmp_ri(6, 0)
      .je("equal")
      .add_ri(1, 1)
      .add_ri(2, 1)
      .sub_ri(3, 1)
      .jmp("loop")
      .label("diff")
      .mov_ri(0, 1)
      .ret()
      .label("equal")
      .mov_ri(0, 0)
      .ret();
}

void emit_strcpy(ProgramBuilder& b) {
  auto& f = b.func("strcpy");
  f.mov_rr(0, 1)
      .label("loop")
      .loadb(6, 2, 0)
      .storeb(1, 0, 6)
      .cmp_ri(6, 0)
      .je("done")
      .add_ri(1, 1)
      .add_ri(2, 1)
      .jmp("loop")
      .label("done")
      .ret();
}

void emit_memset(ProgramBuilder& b) {
  auto& f = b.func("memset");
  f.label("loop")
      .cmp_ri(3, 0)
      .je("done")
      .storeb(1, 0, 2)
      .add_ri(1, 1)
      .sub_ri(3, 1)
      .jmp("loop")
      .label("done")
      .ret();
}

void emit_memcpy(ProgramBuilder& b) {
  auto& f = b.func("memcpy");
  f.mov_rr(0, 1)
      .label("loop")
      .cmp_ri(3, 0)
      .je("done")
      .loadb(6, 2, 0)
      .storeb(1, 0, 6)
      .add_ri(1, 1)
      .add_ri(2, 1)
      .sub_ri(3, 1)
      .jmp("loop")
      .label("done")
      .ret();
}

void emit_atoi(ProgramBuilder& b) {
  auto& f = b.func("atoi");
  f.mov_ri(0, 0)
      .mov_ri(7, 10)
      .label("loop")
      .loadb(6, 1, 0)
      .cmp_ri(6, '0')
      .jlt("done")
      .cmp_ri(6, '9')
      .jgt("done")
      .mul_rr(0, 7)
      .sub_ri(6, '0')
      .add_rr(0, 6)
      .add_ri(1, 1)
      .jmp("loop")
      .label("done")
      .ret();
}

void emit_utoa(ProgramBuilder& b) {
  auto& f = b.func("utoa");
  f.cmp_ri(1, 0)
      .jne("nonzero")
      .mov_ri(6, '0')
      .storeb(2, 0, 6)
      .mov_ri(6, 0)
      .storeb(2, 1, 6)
      .mov_ri(0, 1)
      .ret();
  // Count digits of r1 into r7, then fill the buffer from the back.
  f.label("nonzero")
      .mov_ri(7, 0)
      .mov_rr(8, 1)
      .mov_ri(9, 10)
      .label("count")
      .cmp_ri(8, 0)
      .je("fill")
      .div_rr(8, 9)
      .add_ri(7, 1)
      .jmp("count")
      .label("fill")
      .mov_rr(0, 7)   // return value: digit count
      .mov_rr(6, 2)
      .add_rr(6, 7)   // r6 = one past last digit
      .mov_ri(10, 0)
      .storeb(6, 0, 10)  // NUL terminator
      .label("fill_loop")
      .cmp_ri(1, 0)
      .je("done")
      .mov_rr(8, 1)
      .div_rr(8, 9)   // r8 = q = value / 10
      .mov_rr(10, 8)
      .mul_rr(10, 9)  // r10 = q * 10
      .mov_rr(4, 1)
      .sub_rr(4, 10)  // digit = value - q*10
      .add_ri(4, '0')
      .sub_ri(6, 1)
      .storeb(6, 0, 4)
      .mov_rr(1, 8)
      .jmp("fill_loop")
      .label("done")
      .ret();
}

void emit_write_str(ProgramBuilder& b) {
  auto& f = b.func("write_str");
  f.push(1)
      .push(2)
      .mov_rr(1, 2)
      .call("strlen")
      .mov_rr(3, 0)
      .pop(2)
      .pop(1)
      .sys(os::sys::kWrite)
      .ret();
}

void emit_recv_line(ProgramBuilder& b) {
  auto& f = b.func("recv_line");
  f.mov_ri(8, 0)  // r8 = bytes received
      .label("loop")
      .mov_rr(6, 3)
      .sub_ri(6, 1)
      .cmp_rr(8, 6)
      .jae("done")  // buffer full (leave room for NUL)
      .mov_rr(10, 2)  // save base
      .mov_rr(9, 3)   // save max
      .add_rr(2, 8)   // recv into base+count
      .mov_ri(3, 1)   // one byte at a time
      .sys(os::sys::kRecv)
      .mov_rr(3, 9)
      .mov_rr(2, 10)
      .cmp_ri(0, 0)
      .je("eof")
      .cmp_ri(0, -1)
      .je("eof")
      .mov_rr(6, 2)
      .add_rr(6, 8)
      .loadb(7, 6, 0)
      .add_ri(8, 1)
      .cmp_ri(7, '\n')
      .je("done")
      .jmp("loop")
      .label("eof")
      .cmp_ri(8, 0)
      .jne("done")
      .mov_ri(0, 0)
      .ret()
      .label("done")
      .mov_rr(6, 2)
      .add_rr(6, 8)
      .mov_ri(7, 0)
      .storeb(6, 0, 7)  // NUL-terminate
      .mov_rr(0, 8)
      .ret();
}

// Thin syscall wrappers. Applications call these through the PLT so that
// executed-PLT-entry analysis (ret2plt / BROP case study, paper §4.2) sees
// the same structure as glibc: fork/socket/... become PLT entries that may
// be used only during particular phases.
void emit_syscall_wrappers(ProgramBuilder& b) {
  auto wrap = [&](const char* name, uint64_t num) {
    b.func(name).sys(num).ret();
  };
  wrap("fork", os::sys::kFork);
  wrap("socket", os::sys::kSocket);
  wrap("bind", os::sys::kBind);
  wrap("listen", os::sys::kListen);
  wrap("accept", os::sys::kAccept);
  wrap("connect", os::sys::kConnect);
  wrap("close", os::sys::kClose);
  wrap("nanosleep", os::sys::kNanosleep);
  wrap("getpid", os::sys::kGetpid);
  wrap("mmap", os::sys::kMmap);
  wrap("munmap", os::sys::kMunmap);
  // exit never returns; no ret needed but harmless to omit entirely.
  b.func("exit").sys(os::sys::kExit);
}

}  // namespace

std::shared_ptr<const melf::Binary> build_libc() {
  ProgramBuilder b("libc.so");
  emit_strlen(b);
  emit_strcmp(b);
  emit_strncmp(b);
  emit_strcpy(b);
  emit_memset(b);
  emit_memcpy(b);
  emit_atoi(b);
  emit_utoa(b);
  emit_write_str(b);
  emit_recv_line(b);
  emit_syscall_wrappers(b);
  return std::make_shared<melf::Binary>(b.link());
}

}  // namespace dynacut::apps
