// The guest C library ("libc.so"): string/memory routines and I/O helpers
// written in VX64 assembly, exported to applications through PLT/GOT
// linkage. Its presence gives the reproduction the same structure the paper
// exploits: traces contain library blocks that tracediff filters out, and
// injected handler libraries resolve their imports against these exports.
#pragma once

#include <memory>

#include "melf/binary.hpp"

namespace dynacut::apps {

/// Builds libc.so. Exported functions (args r1..; result r0; r12-r14
/// preserved; all other registers clobbered):
///   strlen(s)                 -> length
///   strcmp(a, b)              -> 0 if equal else 1
///   strncmp(a, b, n)          -> 0 if first n bytes equal else 1
///   strcpy(dst, src)          -> dst
///   memset(dst, byte, len)
///   memcpy(dst, src, len)     -> dst
///   atoi(s)                   -> unsigned decimal value
///   utoa(value, buf)          -> digits written (NUL-terminated)
///   write_str(fd, s)          -> bytes written
///   recv_line(fd, buf, max)   -> line length incl. '\n' (NUL-terminated),
///                                0 on EOF; blocks until a full line
std::shared_ptr<const melf::Binary> build_libc();

}  // namespace dynacut::apps
