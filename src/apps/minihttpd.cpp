#include "apps/minihttpd.hpp"

#include "apps/synth.hpp"
#include "apps/webcommon.hpp"
#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::apps {

namespace {
namespace sys = os::sys;
using melf::ProgramBuilder;
}  // namespace

std::shared_ptr<const melf::Binary> build_minihttpd() {
  ProgramBuilder b("minihttpd");
  emit_web_runtime(b);

  b.rodata_str("conf_text", "8081 16 128 2");
  b.rodata_str("s_ready", "minihttpd: ready\n");
  b.bss("conf_values", 8 * 8);
  b.bss("heapmem", 2000 * 1024);

  // Config parse (atoi via PLT; init-only blocks).
  auto& ic = b.func("config_read");
  ic.push(12).push(14);
  ic.mov_sym(12, "conf_text").mov_ri(14, 0);
  ic.label("next")
      .mov_rr(1, 12)
      .call_import("atoi")
      .mov_sym(6, "conf_values")
      .mov_rr(7, 14)
      .shl_ri(7, 3)
      .add_rr(6, 7)
      .store(6, 0, 0)
      .add_ri(14, 1)
      .cmp_ri(14, 4)
      .jae("done")
      .label("skip")
      .loadb(7, 12, 0)
      .cmp_ri(7, ' ')
      .je("adv")
      .cmp_ri(7, 0)
      .je("done")
      .add_ri(12, 1)
      .jmp("skip")
      .label("adv")
      .add_ri(12, 1)
      .jmp("next")
      .label("done")
      .pop(14)
      .pop(12)
      .ret();

  SynthSpec mods{"plugin_init", 25, 3, 8, 2, 0x11d1};
  auto init_names = emit_synth_funcs(b, mods);
  emit_call_chain(b, "plugins_load", init_names);
  SynthSpec unused{"plugin_unused", 30, 3, 9, 0, 0x11d2};
  emit_synth_funcs(b, unused);
  emit_memory_toucher(b, "init_heap", "heapmem", 2000 * 1024);

  // Per-request plugin filter chain (Lighttpd drives every request through
  // its module hooks) — keeps these blocks live during serving.
  SynthSpec filters{"plugin_filter", 15, 3, 8, 1, 0x11d3};
  auto filter_names = emit_synth_funcs(b, filters);
  emit_call_chain(b, "run_filters", filter_names);

  // Dispatcher with the same-function 403 exit.
  auto& d = b.func("http_dispatch");
  auto arm = [&](const char* method_sym, const char* arm_label) {
    d.mov_sym(6, "toks")
        .load(1, 6, 0)
        .mov_sym(2, method_sym)
        .call_import("strcmp")
        .cmp_ri(0, 0)
        .je(arm_label);
  };
  d.mov_sym(6, "toks").load(1, 6, 0).cmp_ri(1, 0).je("forbidden");
  arm("m_get", "arm_get");
  arm("m_head", "arm_head");
  arm("m_put", "arm_put");
  arm("m_delete", "arm_delete");
  d.jmp("forbidden");
  d.label("arm_get").call("serve_get").ret();
  d.label("arm_head").call("serve_head").ret();
  d.label("arm_put").call("serve_put").ret();
  d.label("arm_delete").call("serve_delete").ret();
  d.label("forbidden").mark("http_403");
  d.mov_sym(2, "r_403").call("reply").ret();

  auto& get = b.func("serve_get");
  get.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("missing")
      .call("fs_find")
      .cmp_ri(0, 0)
      .je("missing")
      .push(14)
      .mov_rr(14, 0)
      .mov_sym(2, "r_200")
      .call("reply")
      .mov_rr(2, 14)
      .add_ri(2, kFsContentOff)
      .call("reply")
      .mov_sym(2, "s_nl")
      .call("reply")
      .pop(14)
      .ret()
      .label("missing")
      .mov_sym(2, "r_404")
      .call("reply")
      .ret();

  auto& head = b.func("serve_head");
  head.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("missing")
      .call("fs_find")
      .cmp_ri(0, 0)
      .je("missing")
      .mov_sym(2, "r_200nl")
      .call("reply")
      .ret()
      .label("missing")
      .mov_sym(2, "r_404")
      .call("reply")
      .ret();

  auto& put = b.func("serve_put");
  put.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("bad")
      .load(2, 6, 16)
      .cmp_ri(2, 0)
      .jne("have")
      .mov_sym(2, "s_empty")
      .label("have")
      .call("fs_put")
      .cmp_ri(0, 0)
      .je("bad")
      .mov_sym(2, "r_201")
      .call("reply")
      .ret()
      .label("bad")
      .mov_sym(2, "r_403")
      .call("reply")
      .ret();

  auto& del = b.func("serve_delete");
  del.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("missing")
      .call("fs_del")
      .cmp_ri(0, 0)
      .je("missing")
      .mov_sym(2, "r_204")
      .call("reply")
      .ret()
      .label("missing")
      .mov_sym(2, "r_404")
      .call("reply")
      .ret();

  auto& conn = b.func("connection_handle");
  conn.label("loop")
      .mov_rr(1, 13)
      .mov_sym(2, "linebuf")
      .mov_ri(3, 256)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .call("tokenize")
      .call("run_filters")
      .call("http_dispatch")
      .jmp("loop")
      .label("done")
      .mov_rr(1, 13)
      .call_import("close")
      .ret();

  // The init/serving boundary function, named after Lighttpd's own.
  auto& loop = b.func("server_main_loop");
  loop.label("accept_loop")
      .mov_rr(1, 12)
      .call_import("accept")
      .mov_rr(13, 0)
      .call("connection_handle")
      .jmp("accept_loop");

  auto& m = b.func("main");
  m.call("config_read").call("plugins_load").call("init_fs").call(
      "init_heap");
  m.call_import("socket").mov_rr(12, 0);
  m.mov_rr(1, 12).mov_ri(2, kMinihttpdPort).call_import("bind");
  m.mov_rr(1, 12).call_import("listen");
  m.mov_ri(1, 1).mov_sym(2, "s_ready").call_import("write_str");
  m.call("server_main_loop");
  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

}  // namespace dynacut::apps
