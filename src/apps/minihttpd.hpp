// minihttpd: the Lighttpd stand-in — a single-process, event-driven web
// server with a module-heavy initialization phase.
//
// Protocol (port 8081), one request per line: "METHOD /path [content]".
//   GET / HEAD / PUT / DELETE behave like miniweb; anything else gets
//   "403 Forbidden\n" through the shared error exit (mark "http_403" in
//   function "http_dispatch").
//
// Structure: 25 generated module initializers (mod_indexfile-style) run
// once from server_init, ~2.0 MB of heap is touched to size the image like
// the paper's 2.3 MB Lighttpd, then server_main_loop accepts and serves —
// the function Ghavamnia et al. use as Lighttpd's init/serving transition
// point, reproduced here by name. 30 "plugin_unused_*" functions are never
// called.
#pragma once

#include <cstdint>
#include <memory>

#include "melf/binary.hpp"

namespace dynacut::apps {

inline constexpr uint16_t kMinihttpdPort = 8081;

std::shared_ptr<const melf::Binary> build_minihttpd();

}  // namespace dynacut::apps
