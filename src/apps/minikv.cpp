#include "apps/minikv.hpp"

#include "apps/synth.hpp"
#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::apps {

namespace {

namespace sys = os::sys;
using melf::FunctionBuilder;
using melf::ProgramBuilder;

// Slot layout: used(8) | key(32) | value(64) = 104 bytes, 64 slots.
constexpr int kSlotSize = 104;
constexpr int kSlots = 64;
constexpr int kTableBytes = kSlotSize * kSlots;
constexpr int kValueOff = 40;  // 8 + 32

// Register conventions inside minikv: r12 = listen fd, r13 = connection fd
// (both callee-saved and kept live across the serve loop).

void emit_data(ProgramBuilder& b) {
  b.rodata_str("s_pong", "+PONG\n");
  b.rodata_str("s_ok", "+OK\n");
  b.rodata_str("s_nil", "$-1\n");
  b.rodata_str("s_err", "-ERR unknown or disabled command\n");
  b.rodata_str("s_errargs", "-ERR wrong number of arguments\n");
  b.rodata_str("s_oom", "-ERR out of memory\n");
  b.rodata_str("s_colon", ":");
  b.rodata_str("s_dollar", "$");
  b.rodata_str("s_nl", "\n");
  b.rodata_str("s_empty", "");
  b.rodata_str("c_ping", "PING");
  b.rodata_str("c_get", "GET");
  b.rodata_str("c_set", "SET");
  b.rodata_str("c_del", "DEL");
  b.rodata_str("c_setrange", "SETRANGE");
  b.rodata_str("c_stralgo", "STRALGO");
  b.rodata_str("c_config", "CONFIG");
  b.rodata_str("c_shutdown", "SHUTDOWN");
  b.rodata_str("s_loading", "loading config\n");
  b.rodata_str("s_ready", "ready\n");
  b.rodata_str("config_text", "100 2 6379 512 8");

  b.bss("table", kTableBytes);
  b.bss("toks", 4 * 8);
  b.bss("linebuf", 256);
  b.bss("numbuf", 32);
  // Overflow targets: "secret" directly follows "lcs_buf", "admin_mode"
  // directly follows "config_buf" (bss symbols are laid out in definition
  // order, 8-byte aligned).
  b.bss("lcs_buf", 64);
  b.bss("secret", 64);
  b.bss("config_buf", 16);
  b.bss("admin_mode", 8);
  b.bss("cfg_values", 8 * 8);
  // Redis pre-allocates sizeable heap structures during startup; touching
  // this region sizes the process image like the paper's 4.1 MB dump.
  b.bss("heapmem", 4000 * 1024);
}

// --- initialization phase ---------------------------------------------------

void emit_init(ProgramBuilder& b) {
  // init_config: tokenizes the embedded config text with atoi in a loop,
  // storing parsed values — the config-file parsing servers burn init
  // cycles on.
  auto& ic = b.func("init_config");
  ic.push(12).push(14);
  ic.mov_sym(12, "config_text");  // r12 = cursor
  ic.mov_ri(14, 0);               // r14 = value index
  ic.label("next")
      .mov_rr(1, 12)
      .call_import("atoi")
      .mov_sym(6, "cfg_values")
      .mov_rr(7, 14)
      .shl_ri(7, 3)
      .add_rr(6, 7)
      .store(6, 0, 0)
      .add_ri(14, 1)
      .cmp_ri(14, 5)
      .jae("done")
      // advance cursor past the number and the following space
      .label("skip")
      .loadb(7, 12, 0)
      .cmp_ri(7, ' ')
      .je("adv")
      .cmp_ri(7, 0)
      .je("done")
      .add_ri(12, 1)
      .jmp("skip")
      .label("adv")
      .add_ri(12, 1)
      .jmp("next")
      .label("done")
      .pop(14)
      .pop(12)
      .ret();

  // init_table: zero the slot table and pattern-fill the secret buffer.
  auto& it = b.func("init_table");
  it.mov_sym(1, "table")
      .mov_ri(2, 0)
      .mov_ri(3, kTableBytes)
      .call_import("memset")
      .mov_sym(1, "secret")
      .mov_ri(2, 0x5a)
      .mov_ri(3, 64)
      .call_import("memset")
      .mov_sym(1, "lcs_buf")
      .mov_ri(2, 0)
      .mov_ri(3, 64)
      .call_import("memset")
      .ret();

  // init_log: banner output (write_str is shared with serving; the block
  // sequence here is init-only).
  auto& il = b.func("init_log");
  il.mov_ri(1, 1)
      .mov_sym(2, "s_loading")
      .call_import("write_str")
      .mov_ri(1, 1)
      .mov_sym(2, "s_ready")
      .call_import("write_str")
      .ret();
}

// --- request plumbing -------------------------------------------------------

void emit_tokenize(ProgramBuilder& b) {
  // Splits linebuf in place on ' ' / '\n' into up to 4 NUL-terminated
  // tokens whose start pointers land in toks[0..3] (0 = absent).
  auto& f = b.func("tokenize");
  f.mov_sym(6, "linebuf")
      .mov_sym(7, "toks")
      .mov_ri(9, 0)
      .store(7, 0, 9)
      .store(7, 8, 9)
      .store(7, 16, 9)
      .store(7, 24, 9)
      .mov_ri(8, 0);  // token index
  f.label("next_token").cmp_ri(8, 4).jae("done");
  f.label("skip_spaces")
      .loadb(9, 6, 0)
      .cmp_ri(9, ' ')
      .jne("check_end")
      .add_ri(6, 1)
      .jmp("skip_spaces");
  f.label("check_end")
      .cmp_ri(9, 0)
      .je("done")
      .cmp_ri(9, '\n')
      .je("terminate_here");
  // record token start: toks[r8] = r6
  f.mov_rr(10, 8)
      .shl_ri(10, 3)
      .add_rr(10, 7)
      .store(10, 0, 6)
      .add_ri(8, 1);
  f.label("scan")
      .loadb(9, 6, 0)
      .cmp_ri(9, 0)
      .je("done")
      .cmp_ri(9, '\n')
      .je("terminate_here")
      .cmp_ri(9, ' ')
      .je("terminate_space")
      .add_ri(6, 1)
      .jmp("scan");
  f.label("terminate_here")
      .mov_ri(9, 0)
      .storeb(6, 0, 9)
      .jmp("done");
  f.label("terminate_space")
      .mov_ri(9, 0)
      .storeb(6, 0, 9)
      .add_ri(6, 1)
      .jmp("next_token");
  f.label("done").ret();
}

/// reply_num: writes ":" <decimal r1> "\n" to the connection (r13).
void emit_reply_num(ProgramBuilder& b) {
  auto& f = b.func("reply_num");
  f.push(14)
      .mov_rr(14, 1)
      .mov_rr(1, 13)
      .mov_sym(2, "s_colon")
      .call_import("write_str")
      .mov_rr(1, 14)
      .mov_sym(2, "numbuf")
      .call_import("utoa")
      .mov_rr(1, 13)
      .mov_sym(2, "numbuf")
      .call_import("write_str")
      .mov_rr(1, 13)
      .mov_sym(2, "s_nl")
      .call_import("write_str")
      .pop(14)
      .ret();
}

/// reply_str: writes the NUL-terminated string at symbol held in r2.
void emit_reply_helpers(ProgramBuilder& b) {
  auto& f = b.func("reply");
  f.mov_rr(1, 13).call_import("write_str").ret();
}

// --- slot management ---------------------------------------------------------

void emit_slots(ProgramBuilder& b) {
  // find_slot(r1 = key) -> r0 = slot address or 0.
  auto& f = b.func("find_slot");
  f.push(12).push(14).mov_rr(14, 1).mov_sym(12, "table");
  f.label("loop")
      .mov_sym(6, "table")
      .add_ri(6, kTableBytes)
      .cmp_rr(12, 6)
      .jae("notfound")
      .load(7, 12, 0)
      .cmp_ri(7, 0)
      .je("next")
      .mov_rr(1, 14)
      .mov_rr(2, 12)
      .add_ri(2, 8)
      .call_import("strcmp")
      .cmp_ri(0, 0)
      .je("found");
  f.label("next").add_ri(12, kSlotSize).jmp("loop");
  f.label("found").mov_rr(0, 12).pop(14).pop(12).ret();
  f.label("notfound").mov_ri(0, 0).pop(14).pop(12).ret();

  // alloc_slot(r1 = key) -> r0 = fresh slot address or 0 when full.
  auto& a = b.func("alloc_slot");
  a.push(12).push(14).mov_rr(14, 1).mov_sym(12, "table");
  a.label("loop")
      .mov_sym(6, "table")
      .add_ri(6, kTableBytes)
      .cmp_rr(12, 6)
      .jae("full")
      .load(7, 12, 0)
      .cmp_ri(7, 0)
      .je("take")
      .add_ri(12, kSlotSize)
      .jmp("loop");
  a.label("take")
      .mov_ri(7, 1)
      .store(12, 0, 7)
      .mov_rr(1, 12)
      .add_ri(1, 8)
      .mov_rr(2, 14)
      .call_import("strcpy")
      .mov_rr(0, 12)
      .pop(14)
      .pop(12)
      .ret();
  a.label("full").mov_ri(0, 0).pop(14).pop(12).ret();
}

// --- command handlers ---------------------------------------------------------

void emit_cmd_ping(ProgramBuilder& b) {
  b.func("cmd_ping").mov_sym(2, "s_pong").call("reply").ret();
}

void emit_cmd_get(ProgramBuilder& b) {
  auto& f = b.func("cmd_get");
  f.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("nil")
      .call("find_slot")
      .cmp_ri(0, 0)
      .je("nil")
      .push(14)
      .mov_rr(14, 0)
      .mov_sym(2, "s_dollar")
      .call("reply")
      .mov_rr(2, 14)
      .add_ri(2, kValueOff)
      .call("reply")
      .mov_sym(2, "s_nl")
      .call("reply")
      .pop(14)
      .ret()
      .label("nil")
      .mov_sym(2, "s_nil")
      .call("reply")
      .ret();
}

void emit_cmd_set(ProgramBuilder& b) {
  auto& f = b.func("cmd_set");
  f.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("badargs")
      .load(7, 6, 16)
      .cmp_ri(7, 0)
      .je("badargs")
      .call("find_slot")
      .cmp_ri(0, 0)
      .jne("have_slot")
      .mov_sym(6, "toks")
      .load(1, 6, 8)
      .call("alloc_slot")
      .cmp_ri(0, 0)
      .je("oom");
  f.label("have_slot")
      .push(14)
      .mov_rr(14, 0)
      .mov_rr(1, 14)
      .add_ri(1, kValueOff)
      .mov_sym(6, "toks")
      .load(2, 6, 16)
      .call_import("strcpy")
      .pop(14)
      .mov_sym(2, "s_ok")
      .call("reply")
      .ret();
  f.label("badargs").mov_sym(2, "s_errargs").call("reply").ret();
  f.label("oom").mov_sym(2, "s_oom").call("reply").ret();
}

void emit_cmd_del(ProgramBuilder& b) {
  auto& f = b.func("cmd_del");
  f.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("zero")
      .call("find_slot")
      .cmp_ri(0, 0)
      .je("zero")
      .mov_ri(7, 0)
      .store(0, 0, 7)  // used = 0
      .mov_ri(1, 1)
      .call("reply_num")
      .ret()
      .label("zero")
      .mov_ri(1, 0)
      .call("reply_num")
      .ret();
}

void emit_cmd_setrange(ProgramBuilder& b) {
  // SETRANGE key offset value. BUG: `offset` is never validated against the
  // 64-byte value field, so offsets >= 64 write into the next slot (heap
  // overflow analogue) and far offsets fault.
  auto& f = b.func("cmd_setrange");
  f.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("badargs")
      .load(7, 6, 24)
      .cmp_ri(7, 0)
      .je("badargs")
      .call("find_slot")
      .cmp_ri(0, 0)
      .jne("have_slot")
      .mov_sym(6, "toks")
      .load(1, 6, 8)
      .call("alloc_slot")
      .cmp_ri(0, 0)
      .je("oom");
  f.label("have_slot")
      .push(14)
      .mov_rr(14, 0)
      .mov_sym(6, "toks")
      .load(1, 6, 16)
      .call_import("atoi")  // r0 = offset, unchecked
      .mov_rr(1, 14)
      .add_ri(1, kValueOff)
      .add_rr(1, 0)
      .mov_sym(6, "toks")
      .load(2, 6, 24)
      .call_import("strcpy")
      .mov_rr(1, 14)
      .add_ri(1, kValueOff)
      .call_import("strlen")
      .mov_rr(1, 0)
      .call("reply_num")
      .pop(14)
      .ret();
  f.label("badargs").mov_sym(2, "s_errargs").call("reply").ret();
  f.label("oom").mov_sym(2, "s_oom").call("reply").ret();
}

void emit_cmd_stralgo(ProgramBuilder& b) {
  // STRALGO LCS a b. The workspace is 64 bytes; the code checks each input
  // individually (< 64) but not their sum — the missing-combined-check bug
  // standing in for the STRALGO integer overflows. Overflow clobbers
  // "secret", which directly follows "lcs_buf".
  auto& f = b.func("cmd_stralgo");
  f.mov_sym(6, "toks")
      .load(1, 6, 16)  // a
      .cmp_ri(1, 0)
      .je("badargs")
      .load(7, 6, 24)  // b
      .cmp_ri(7, 0)
      .je("badargs");
  f.push(14);
  // r14 = len_a
  f.mov_sym(6, "toks").load(1, 6, 16).call_import("strlen").mov_rr(14, 0);
  f.cmp_ri(0, 64).jae("toolong");
  // r0 = len_b (checked individually — the flawed validation)
  f.mov_sym(6, "toks").load(1, 6, 24).call_import("strlen");
  f.cmp_ri(0, 64).jae("toolong");
  // memcpy(lcs_buf, a, len_a)
  f.mov_sym(1, "lcs_buf")
      .mov_sym(6, "toks")
      .load(2, 6, 16)
      .mov_rr(3, 14)
      .call_import("memcpy");
  // memcpy(lcs_buf + len_a, b, len_b + 1)  -- may run past the buffer
  f.mov_sym(6, "toks").load(1, 6, 24).call_import("strlen");
  f.mov_rr(3, 0)
      .add_ri(3, 1)
      .mov_sym(1, "lcs_buf")
      .add_rr(1, 14)
      .mov_sym(6, "toks")
      .load(2, 6, 24)
      .call_import("memcpy");
  // reply with the combined length
  f.mov_sym(1, "lcs_buf").call_import("strlen").mov_rr(1, 0).call(
      "reply_num");
  f.pop(14).ret();
  f.label("toolong").pop(14).mov_sym(2, "s_errargs").call("reply").ret();
  f.label("badargs").mov_sym(2, "s_errargs").call("reply").ret();
}

void emit_cmd_config(ProgramBuilder& b) {
  // CONFIG SET name value. BUG: `value` is strcpy'd into the 16-byte
  // config_buf; long values run into "admin_mode" (stack/heap overflow
  // analogue of CVE-2016-8339).
  auto& f = b.func("cmd_config");
  f.mov_sym(6, "toks")
      .load(1, 6, 24)  // value
      .cmp_ri(1, 0)
      .je("badargs")
      .mov_rr(2, 1)
      .mov_sym(1, "config_buf")
      .call_import("strcpy")
      .mov_sym(2, "s_ok")
      .call("reply")
      .ret();
  f.label("badargs").mov_sym(2, "s_errargs").call("reply").ret();
}

// --- dispatcher + serve loop ---------------------------------------------------

void emit_dispatch(ProgramBuilder& b) {
  auto& d = b.func("dispatch_command");
  auto arm = [&](const char* cmd_sym, const char* arm_label) {
    d.mov_sym(6, "toks")
        .load(1, 6, 0)
        .mov_sym(2, cmd_sym)
        .call_import("strcmp")
        .cmp_ri(0, 0)
        .je(arm_label);
  };
  d.mov_sym(6, "toks").load(1, 6, 0).cmp_ri(1, 0).je("err");
  arm("c_ping", "arm_ping");
  arm("c_get", "arm_get");
  arm("c_set", "arm_set");
  arm("c_del", "arm_del");
  arm("c_setrange", "arm_setrange");
  arm("c_stralgo", "arm_stralgo");
  arm("c_config", "arm_config");
  arm("c_shutdown", "arm_shutdown");
  d.jmp("err");
  d.label("arm_ping").call("cmd_ping").mov_ri(0, 0).ret();
  d.label("arm_get").call("cmd_get").mov_ri(0, 0).ret();
  d.label("arm_set").call("cmd_set").mov_ri(0, 0).ret();
  d.label("arm_del").call("cmd_del").mov_ri(0, 0).ret();
  d.label("arm_setrange").call("cmd_setrange").mov_ri(0, 0).ret();
  d.label("arm_stralgo").call("cmd_stralgo").mov_ri(0, 0).ret();
  d.label("arm_config").call("cmd_config").mov_ri(0, 0).ret();
  d.label("arm_shutdown").mov_ri(0, 99).ret();
  // The default error handler — the redirect target for disabled commands.
  d.label("err").mark("dispatch_err");
  d.mov_sym(2, "s_err").call("reply").mov_ri(0, 0).ret();
}

void emit_serve(ProgramBuilder& b, uint16_t port) {
  auto& h = b.func("handle_conn");
  h.label("loop")
      .mov_rr(1, 13)
      .mov_sym(2, "linebuf")
      .mov_ri(3, 256)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .call("tokenize")
      .call("dispatch_command")
      .cmp_ri(0, 99)
      .je("shutdown")
      .jmp("loop");
  h.label("done").mov_rr(1, 13).call_import("close").ret();
  h.label("shutdown").mov_ri(1, 0).call_import("exit");

  auto& m = b.func("main");
  m.call("init_config").call("init_table").call("init_heap").call(
      "init_log");
  m.call_import("socket").mov_rr(12, 0);
  m.mov_rr(1, 12).mov_ri(2, port).call_import("bind");
  m.mov_rr(1, 12).call_import("listen");
  m.label("accept_loop")
      .mov_rr(1, 12)
      .call_import("accept")
      .mov_rr(13, 0)
      .call("handle_conn")
      .jmp("accept_loop");
  b.set_entry("main");
}

}  // namespace

std::shared_ptr<const melf::Binary> build_minikv(uint16_t port,
                                                 uint32_t heap_kb) {
  ProgramBuilder b("minikv");
  emit_data(b);
  emit_init(b);
  emit_memory_toucher(b, "init_heap", "heapmem", heap_kb * 1024);
  emit_tokenize(b);
  emit_reply_helpers(b);
  emit_reply_num(b);
  emit_slots(b);
  emit_cmd_ping(b);
  emit_cmd_get(b);
  emit_cmd_set(b);
  emit_cmd_del(b);
  emit_cmd_setrange(b);
  emit_cmd_stralgo(b);
  emit_cmd_config(b);
  emit_dispatch(b);
  emit_serve(b, port);
  return std::make_shared<melf::Binary>(b.link());
}

std::shared_ptr<const melf::Binary> build_kvbench(uint16_t port) {
  ProgramBuilder b("kvbench");
  b.rodata_str("s_set", "SET bench hello\n");
  b.rodata_str("s_get", "GET bench\n");
  b.bss("buf", 128);
  b.bss("ops", 8);

  auto& m = b.func("main");
  m.sys(sys::kSocket).mov_rr(12, 0);
  m.mov_rr(1, 12).mov_ri(2, port).sys(sys::kConnect);
  m.mov_rr(1, 12).mov_sym(2, "s_set").call_import("write_str");
  m.mov_rr(1, 12).mov_sym(2, "buf").mov_ri(3, 128).call_import("recv_line");
  m.label("loop")
      .mov_rr(1, 12)
      .mov_sym(2, "s_get")
      .call_import("write_str")
      .mov_rr(1, 12)
      .mov_sym(2, "buf")
      .mov_ri(3, 128)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .mov_sym(6, "ops")
      .load(7, 6, 0)
      .add_ri(7, 1)
      .store(6, 0, 7)
      .jmp("loop");
  m.label("done").mov_ri(1, 0).sys(sys::kExit);
  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

}  // namespace dynacut::apps
