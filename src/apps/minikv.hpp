// minikv: the Redis stand-in — an in-memory key-value server with a
// well-defined command set, a distinct initialization phase, and three
// deliberately planted vulnerabilities mirroring the Redis CVEs of paper
// Table 1. Used by the feature-removal, live-toggle (Fig. 8) and security
// (Table 1) experiments.
//
// Protocol: one command per '\n'-terminated line on port 6379.
//   PING                        -> "+PONG\n"
//   SET key value               -> "+OK\n"
//   GET key                     -> "$<value>\n" or "$-1\n"
//   DEL key                     -> ":1\n" / ":0\n"
//   SETRANGE key offset value   -> ":<len>\n"   [BUG: offset unchecked —
//                                  CVE-2019-10192/10193 analogue]
//   STRALGO LCS a b             -> ":<len>\n"   [BUG: missing combined
//                                  length check — CVE-2021-32625/29477
//                                  analogue; clobbers the "secret" buffer]
//   CONFIG SET name value       -> "+OK\n"      [BUG: value copied into a
//                                  16-byte buffer — CVE-2016-8339 analogue;
//                                  clobbers "admin_mode"]
//   SHUTDOWN                    -> server exits
//   anything else               -> "-ERR unknown or disabled command\n"
//                                  (error path exported as "dispatch_err"
//                                  inside function "dispatch_command")
//
// Init-phase functions (traced as init-only): init_config, init_table,
// init_log. Observable guest state for the security experiments: bss
// symbols "secret" (64 B, initialized by init to 0x5a bytes via memset) and
// "admin_mode" (u64, 0 unless the CONFIG overflow fires).
#pragma once

#include <cstdint>
#include <memory>

#include "melf/binary.hpp"

namespace dynacut::apps {

inline constexpr uint16_t kMinikvPort = 6379;

/// Builds the server. `port` and `heap_kb` (size of the heap region the
/// init phase touches) are parameterized so fleet benchmarks can spawn
/// hundreds of instances on distinct ports with small heaps; the defaults
/// reproduce the single-instance binary used by the paper experiments.
std::shared_ptr<const melf::Binary> build_minikv(uint16_t port = kMinikvPort,
                                                 uint32_t heap_kb = 4000);

/// Guest benchmark client (the redis-benchmark analogue): connects to
/// minikv, issues one "SET bench hello", then loops "GET bench" forever,
/// incrementing the bss u64 counter "ops" after each reply — sampled by the
/// host to compute throughput (Fig. 8).
std::shared_ptr<const melf::Binary> build_kvbench(uint16_t port = kMinikvPort);

}  // namespace dynacut::apps
