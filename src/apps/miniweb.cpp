#include "apps/miniweb.hpp"

#include "apps/synth.hpp"
#include "apps/webcommon.hpp"
#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::apps {

namespace {
namespace sys = os::sys;
using melf::ProgramBuilder;

// r12 = listen fd, r13 = connection fd throughout the server.

void emit_init(ProgramBuilder& b) {
  b.rodata_str("conf_text", "8080 4 64 30 1");
  b.rodata_str("s_booting", "miniweb: loading modules\n");
  b.rodata_str("s_ready", "miniweb: ready\n");
  b.bss("conf_values", 8 * 8);
  b.bss("heapmem", 2400 * 1024);

  // init_config: parse the numeric config string (atoi via PLT, init-only).
  auto& ic = b.func("init_config");
  ic.push(12).push(14);
  ic.mov_sym(12, "conf_text").mov_ri(14, 0);
  ic.label("next")
      .mov_rr(1, 12)
      .call_import("atoi")
      .mov_sym(6, "conf_values")
      .mov_rr(7, 14)
      .shl_ri(7, 3)
      .add_rr(6, 7)
      .store(6, 0, 0)
      .add_ri(14, 1)
      .cmp_ri(14, 5)
      .jae("done")
      .label("skip")
      .loadb(7, 12, 0)
      .cmp_ri(7, ' ')
      .je("adv")
      .cmp_ri(7, 0)
      .je("done")
      .add_ri(12, 1)
      .jmp("skip")
      .label("adv")
      .add_ri(12, 1)
      .jmp("next")
      .label("done")
      .pop(14)
      .pop(12)
      .ret();
}

}  // namespace

std::shared_ptr<const melf::Binary> build_miniweb() {
  ProgramBuilder b("miniweb");
  emit_web_runtime(b);
  emit_init(b);

  // Module-init chain + unused feature handlers (never called).
  SynthSpec mods{"mod_init", 30, 3, 9, 2, 0xeb1};
  auto init_names = emit_synth_funcs(b, mods);
  emit_call_chain(b, "init_modules", init_names);
  SynthSpec unused{"mod_unused", 40, 3, 10, 0, 0xeb2};
  emit_synth_funcs(b, unused);
  emit_memory_toucher(b, "init_heap", "heapmem", 2400 * 1024);

  // Per-request filter chain (header parsing, access control, logging in a
  // real Nginx): runs on every request, so these blocks stay live while
  // serving.
  SynthSpec filters{"filter", 18, 3, 8, 1, 0xeb3};
  auto filter_names = emit_synth_funcs(b, filters);
  emit_call_chain(b, "run_filters", filter_names);

  // dav_handler: the Listing-1 style dispatcher with a same-function 403.
  auto& d = b.func("dav_handler");
  auto arm = [&](const char* method_sym, const char* arm_label) {
    d.mov_sym(6, "toks")
        .load(1, 6, 0)
        .mov_sym(2, method_sym)
        .call_import("strcmp")
        .cmp_ri(0, 0)
        .je(arm_label);
  };
  d.mov_sym(6, "toks").load(1, 6, 0).cmp_ri(1, 0).je("forbidden");
  arm("m_get", "arm_get");
  arm("m_head", "arm_head");
  arm("m_put", "arm_put");
  arm("m_delete", "arm_delete");
  arm("m_mkcol", "arm_mkcol");
  d.jmp("forbidden");

  d.label("arm_get").call("do_get").ret();
  d.label("arm_head").call("do_head").ret();
  d.label("arm_put").call("do_put").ret();
  d.label("arm_delete").call("do_delete").ret();
  d.label("arm_mkcol").call("do_mkcol").ret();
  d.label("forbidden").mark("dav_403");
  d.mov_sym(2, "r_403").call("reply").ret();

  auto& get = b.func("do_get");
  get.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("missing")
      .call("fs_find")
      .cmp_ri(0, 0)
      .je("missing")
      .push(14)
      .mov_rr(14, 0)
      .mov_sym(2, "r_200")
      .call("reply")
      .mov_rr(2, 14)
      .add_ri(2, kFsContentOff)
      .call("reply")
      .mov_sym(2, "s_nl")
      .call("reply")
      .pop(14)
      .ret()
      .label("missing")
      .mov_sym(2, "r_404")
      .call("reply")
      .ret();

  auto& head = b.func("do_head");
  head.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("missing")
      .call("fs_find")
      .cmp_ri(0, 0)
      .je("missing")
      .mov_sym(2, "r_200nl")
      .call("reply")
      .ret()
      .label("missing")
      .mov_sym(2, "r_404")
      .call("reply")
      .ret();

  auto& put = b.func("do_put");
  put.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("forbidden")
      .load(2, 6, 16)
      .cmp_ri(2, 0)
      .jne("have_content")
      .mov_sym(2, "s_empty")
      .label("have_content")
      .call("fs_put")
      .cmp_ri(0, 0)
      .je("forbidden")
      .mov_sym(2, "r_201")
      .call("reply")
      .ret()
      .label("forbidden")
      .mov_sym(2, "r_403")
      .call("reply")
      .ret();

  auto& del = b.func("do_delete");
  del.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("missing")
      .call("fs_del")
      .cmp_ri(0, 0)
      .je("missing")
      .mov_sym(2, "r_204")
      .call("reply")
      .ret()
      .label("missing")
      .mov_sym(2, "r_404")
      .call("reply")
      .ret();

  auto& mkcol = b.func("do_mkcol");
  mkcol.mov_sym(6, "toks")
      .load(1, 6, 8)
      .cmp_ri(1, 0)
      .je("bad")
      .mov_sym(2, "s_empty")
      .call("fs_put")
      .mov_sym(2, "r_201")
      .call("reply")
      .ret()
      .label("bad")
      .mov_sym(2, "r_403")
      .call("reply")
      .ret();

  // Worker: accept/serve loop.
  auto& conn = b.func("handle_conn");
  conn.label("loop")
      .mov_rr(1, 13)
      .mov_sym(2, "linebuf")
      .mov_ri(3, 256)
      .call_import("recv_line")
      .cmp_ri(0, 0)
      .je("done")
      .call("tokenize")
      .call("run_filters")
      .call("dav_handler")
      .jmp("loop")
      .label("done")
      .mov_rr(1, 13)
      .call_import("close")
      .ret();

  auto& worker = b.func("worker_loop");
  worker.label("accept_loop")
      .mov_rr(1, 12)
      .call_import("accept")
      .mov_rr(13, 0)
      .call("handle_conn")
      .jmp("accept_loop");

  // Master: monitor loop (sleeps; the paper configures 1 worker).
  auto& master = b.func("master_loop");
  master.label("idle")
      .mov_ri(1, 100000)
      .call_import("nanosleep")
      .jmp("idle");

  auto& m = b.func("main");
  m.mov_ri(1, 1).mov_sym(2, "s_booting").call_import("write_str");
  m.call("init_config").call("init_modules").call("init_fs").call(
      "init_heap");
  m.call_import("socket").mov_rr(12, 0);
  m.mov_rr(1, 12).mov_ri(2, kMiniwebPort).call_import("bind");
  m.mov_rr(1, 12).call_import("listen");
  m.mov_ri(1, 1).mov_sym(2, "s_ready").call_import("write_str");
  m.call_import("fork");
  m.cmp_ri(0, 0).je("is_worker");
  m.call("master_loop");
  m.label("is_worker").call("worker_loop");
  b.set_entry("main");

  return std::make_shared<melf::Binary>(b.link());
}

}  // namespace dynacut::apps
