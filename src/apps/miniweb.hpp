// miniweb: the Nginx stand-in — a master/worker web server with the WebDAV
// method set and the request-dispatcher structure the paper's Listing 1
// shows (a switch over methods with a shared 403 exit in the same
// function).
//
// Protocol: one request per line on port 8080: "METHOD /path [content]".
//   GET /p      -> "200 <content>\n" | "404\n"
//   HEAD /p     -> "200\n" | "404\n"
//   PUT /p c    -> "201 created\n"        (WebDAV write — removable feature)
//   DELETE /p   -> "204 deleted\n"        (WebDAV write — removable feature)
//   MKCOL /p    -> "201 created\n"        (WebDAV)
//   else        -> "403 Forbidden\n"      (mark "dav_403" in "dav_handler")
//
// Structure: the master runs init (config parse, 30 generated module-init
// functions, ~2.4 MB of heap touched — sizing the image like the paper's
// 2.7 MB Nginx master), forks one worker through the libc fork PLT entry,
// then idles in a monitor loop; the worker accepts connections and serves.
// 40 generated "mod_unused_*" handlers are never called (static bloat).
#pragma once

#include <cstdint>
#include <memory>

#include "melf/binary.hpp"

namespace dynacut::apps {

inline constexpr uint16_t kMiniwebPort = 8080;

std::shared_ptr<const melf::Binary> build_miniweb();

}  // namespace dynacut::apps
