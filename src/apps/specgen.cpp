#include "apps/specgen.hpp"

#include "apps/synth.hpp"
#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::apps {

std::vector<SpecBench> spec_suite() {
  // total/init/serving function counts are chosen so that, at the synth
  // generator's average blocks-per-function, total-BB counts track the
  // paper's Figure 9 at ~1:10 and init-only fractions of executed blocks
  // match the per-benchmark removal percentages.
  return {
      {"600.perlbench_s", 1300, 104, 146, 3, 1840 * 1024, 600, 1960, 184,
       41.4},
      {"605.mcf_s", 12, 1, 7, 3, 280 * 1024, 605, 18.36, 28, 12.5},
      {"620.omnetpp_s", 1050, 52, 158, 3, 2140 * 1024, 620, 1560, 214, 24.8},
      {"623.xalancbmk_s", 2800, 60, 230, 3, 1910 * 1024, 623, 4600, 191,
       20.7},
      {"625.x264_s", 210, 14, 60, 3, 1560 * 1024, 625, 570, 156, 19.0},
      {"631.deepsjeng_s", 48, 4, 20, 3, 200 * 1024, 631, 81, 2.0, 16.7},
      {"641.leela_s", 100, 4, 36, 3, 97 * 1024, 641, 189, 9.7, 10.0},
  };
}

std::shared_ptr<const melf::Binary> build_spec(const SpecBench& bench) {
  melf::ProgramBuilder b(bench.name);
  b.bss("heap", bench.heap_bytes);

  SynthSpec init_spec{"init_fn", bench.init_funcs, 3, 8, 1,
                      bench.seed * 7 + 1};
  auto init_names = emit_synth_funcs(b, init_spec);
  emit_memory_toucher(b, "init_heap", "heap", bench.heap_bytes);
  init_names.push_back("init_heap");
  emit_call_chain(b, "run_init", init_names);

  SynthSpec serve_spec{"work_fn", bench.serving_funcs, 3, 8, 2,
                       bench.seed * 7 + 2};
  auto work_names = emit_synth_funcs(b, serve_spec);
  emit_call_chain(b, "run_workload", work_names);

  int unused =
      bench.total_funcs - bench.init_funcs - bench.serving_funcs;
  if (unused > 0) {
    SynthSpec unused_spec{"cold_fn", unused, 3, 8, 0, bench.seed * 7 + 3};
    emit_synth_funcs(b, unused_spec);
  }

  auto& m = b.func("main");
  m.call("run_init");
  // The nudge point: CPU benchmarks have no natural ready message, so the
  // generator emits a kNudge marker at the init/serving boundary — the
  // paper similarly picks "the point where the application has fully
  // started".
  m.mov_ri(1, 1).sys(os::sys::kNudge);
  m.push(12).mov_ri(12, static_cast<uint64_t>(bench.loop_iters));
  m.label("loop")
      .cmp_ri(12, 0)
      .je("done")
      .call("run_workload")
      .sub_ri(12, 1)
      .jmp("loop")
      .label("done")
      .pop(12)
      .mov_ri(1, 0)
      .sys(os::sys::kExit);
  b.set_entry("main");
  return std::make_shared<melf::Binary>(b.link());
}

}  // namespace dynacut::apps
