// specgen: the SPECint2017_speed stand-in.
//
// Each benchmark is a seeded synthetic VX64 program whose *structure*
// follows the published per-benchmark numbers of the paper's Figure 7/9
// (total basic blocks, code size, image size, fraction of executed blocks
// that are initialization-only), scaled down for simulation:
//   code/basic-block counts  ~1:10
//   heap/image size          ~1:100
// The scale factors are constant across benchmarks, so every ratio the
// figures report (who has the most init code, image-size ordering, removal
// percentages) is preserved. See EXPERIMENTS.md.
//
// Program shape: main -> init chain (init-only functions + heap toucher)
// -> bounded main loop over serving functions -> exit(0). A configurable
// majority of functions is never called (static bloat, the gray blocks of
// Figure 2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "melf/binary.hpp"

namespace dynacut::apps {

struct SpecBench {
  std::string name;       ///< e.g. "600.perlbench_s"
  int total_funcs = 0;    ///< all functions incl. never-called ones
  int init_funcs = 0;     ///< executed during init only
  int serving_funcs = 0;  ///< executed in the main loop
  int loop_iters = 3;     ///< main-loop repetitions
  uint64_t heap_bytes = 0;  ///< memory touched during init (image size)
  uint64_t seed = 0;

  // Paper values for the corresponding real benchmark (for report tables).
  double paper_code_size_kb = 0;
  double paper_image_size_mb = 0;
  double paper_init_removed_pct = 0;  ///< % of executed BBs removed
};

/// The seven C/C++ INTSpeed benchmarks the paper evaluates.
std::vector<SpecBench> spec_suite();

/// Builds one synthetic benchmark (imports libc for memset).
std::shared_ptr<const melf::Binary> build_spec(const SpecBench& bench);

}  // namespace dynacut::apps
