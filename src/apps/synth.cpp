#include "apps/synth.hpp"

#include "common/rng.hpp"

namespace dynacut::apps {

using melf::FunctionBuilder;
using melf::ProgramBuilder;

std::vector<std::string> emit_synth_funcs(ProgramBuilder& b,
                                          const SynthSpec& spec) {
  Rng rng(spec.seed);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(spec.func_count));

  for (int i = 0; i < spec.func_count; ++i) {
    std::string name = spec.prefix + "_" + std::to_string(i);
    names.push_back(name);
    auto& f = b.func(name);

    if (spec.loop_iters > 0) {
      f.mov_ri(9, static_cast<uint64_t>(spec.loop_iters));
      f.label("top");
    }

    int blocks = static_cast<int>(
        rng.range(static_cast<uint64_t>(spec.min_blocks),
                  static_cast<uint64_t>(spec.max_blocks)));
    f.mov_ri(6, rng.below(1 << 20));
    f.mov_ri(7, rng.below(1 << 20) | 1);
    for (int blk = 0; blk < blocks; ++blk) {
      // A short run of arithmetic, then a forward conditional branch —
      // two basic blocks per iteration, data-dependent but terminating.
      std::string skip = "skip_" + std::to_string(blk);
      switch (rng.below(4)) {
        case 0:
          f.add_rr(6, 7).xor_rr(7, 6);
          break;
        case 1:
          f.mul_rr(6, 7).add_ri(7, 13);
          break;
        case 2:
          f.shl_ri(6, 1).or_rr(6, 7);
          break;
        default:
          f.sub_rr(7, 6).and_rr(6, 7).add_ri(6, 7);
          break;
      }
      f.cmp_ri(6, static_cast<int32_t>(rng.below(1 << 16)));
      if (rng.chance(1, 2)) {
        f.jle(skip);
      } else {
        f.jne(skip);
      }
      f.add_ri(7, 1);
      f.label(skip);
    }

    if (spec.loop_iters > 0) {
      f.sub_ri(9, 1).cmp_ri(9, 0).jne("top");
    }
    f.mov_rr(0, 6);
    f.ret();
  }
  return names;
}

void emit_call_chain(ProgramBuilder& b, const std::string& name,
                     const std::vector<std::string>& callees) {
  auto& f = b.func(name);
  for (const auto& callee : callees) f.call(callee);
  f.ret();
}

void emit_memory_toucher(ProgramBuilder& b, const std::string& name,
                         const std::string& bss_name, uint64_t bytes,
                         uint64_t chunk) {
  auto& f = b.func(name);
  // for (off = 0; off < bytes; off += chunk) memset(bss + off, 0xA5, 64);
  // Touching 64 bytes per page is enough to populate it.
  f.push(12);
  f.mov_ri(12, 0);
  f.label("loop")
      .cmp_ri(12, static_cast<int32_t>(bytes))
      .jae("done")
      .mov_sym(1, bss_name)
      .add_rr(1, 12)
      .mov_ri(2, 0xA5)
      .mov_ri(3, 64)
      .call_import("memset")
      .add_ri(12, static_cast<int32_t>(chunk))
      .jmp("loop")
      .label("done")
      .pop(12)
      .ret();
}

}  // namespace dynacut::apps
