// Synthetic guest-code generation: deterministic, seeded VX64 functions
// with realistic basic-block structure (branches, short loops, arithmetic).
//
// Used for two purposes:
//   * padding the mini servers with module-init chains and never-called
//     feature handlers so their block populations resemble real servers
//     (Fig. 2's gray/red/blue map needs all three classes), and
//   * specgen (src/apps/specgen.*), the SPECint2017 stand-in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "melf/builder.hpp"

namespace dynacut::apps {

struct SynthSpec {
  std::string prefix;        ///< functions are named "<prefix>_<i>"
  int func_count = 10;
  int min_blocks = 2;        ///< rough basic blocks per function
  int max_blocks = 8;
  int loop_iters = 0;        ///< >0 wraps each body in a counted loop
  uint64_t seed = 1;
};

/// Emits `spec.func_count` functions into `b`; returns their names. Every
/// generated function only clobbers caller-saved registers and always
/// terminates.
std::vector<std::string> emit_synth_funcs(melf::ProgramBuilder& b,
                                          const SynthSpec& spec);

/// Emits a driver function `name` that calls each listed function once, in
/// order, then returns.
void emit_call_chain(melf::ProgramBuilder& b, const std::string& name,
                     const std::vector<std::string>& callees);

/// Emits a driver `name` that memsets `bytes` bytes of the bss symbol
/// `bss_name` (in `chunk`-sized strides) — populates pages so process
/// images reach a target size, the way real init phases fault in heap.
void emit_memory_toucher(melf::ProgramBuilder& b, const std::string& name,
                         const std::string& bss_name, uint64_t bytes,
                         uint64_t chunk = 4096);

}  // namespace dynacut::apps
