#include "apps/webcommon.hpp"

namespace dynacut::apps {

using melf::ProgramBuilder;

namespace {
constexpr int kFsBytes = kFsSlotSize * kFsSlots;
}

void emit_web_runtime(ProgramBuilder& b) {
  b.rodata_str("r_200", "200 ");
  b.rodata_str("r_200nl", "200\n");
  b.rodata_str("r_201", "201 created\n");
  b.rodata_str("r_204", "204 deleted\n");
  b.rodata_str("r_403", "403 Forbidden\n");
  b.rodata_str("r_404", "404\n");
  b.rodata_str("s_nl", "\n");
  b.rodata_str("s_empty", "");
  b.rodata_str("m_get", "GET");
  b.rodata_str("m_head", "HEAD");
  b.rodata_str("m_put", "PUT");
  b.rodata_str("m_delete", "DELETE");
  b.rodata_str("m_mkcol", "MKCOL");
  b.rodata_str("p_index", "/index");
  b.rodata_str("c_welcome", "welcome");

  b.bss("fstable", kFsBytes);
  b.bss("toks", 4 * 8);
  b.bss("linebuf", 256);
  b.bss("numbuf", 32);

  // tokenize: split linebuf into toks[0..3] (same scheme as minikv).
  auto& t = b.func("tokenize");
  t.mov_sym(6, "linebuf")
      .mov_sym(7, "toks")
      .mov_ri(9, 0)
      .store(7, 0, 9)
      .store(7, 8, 9)
      .store(7, 16, 9)
      .store(7, 24, 9)
      .mov_ri(8, 0);
  t.label("next_token").cmp_ri(8, 4).jae("done");
  t.label("skip_spaces")
      .loadb(9, 6, 0)
      .cmp_ri(9, ' ')
      .jne("check_end")
      .add_ri(6, 1)
      .jmp("skip_spaces");
  t.label("check_end")
      .cmp_ri(9, 0)
      .je("done")
      .cmp_ri(9, '\n')
      .je("terminate_here");
  t.mov_rr(10, 8).shl_ri(10, 3).add_rr(10, 7).store(10, 0, 6).add_ri(8, 1);
  t.label("scan")
      .loadb(9, 6, 0)
      .cmp_ri(9, 0)
      .je("done")
      .cmp_ri(9, '\n')
      .je("terminate_here")
      .cmp_ri(9, ' ')
      .je("terminate_space")
      .add_ri(6, 1)
      .jmp("scan");
  t.label("terminate_here").mov_ri(9, 0).storeb(6, 0, 9).jmp("done");
  t.label("terminate_space")
      .mov_ri(9, 0)
      .storeb(6, 0, 9)
      .add_ri(6, 1)
      .jmp("next_token");
  t.label("done").ret();

  // reply: write NUL-terminated string (r2) to the connection fd (r13).
  b.func("reply").mov_rr(1, 13).call_import("write_str").ret();

  // fs_find(r1 = path) -> r0 = slot | 0.
  auto& f = b.func("fs_find");
  f.push(12).push(14).mov_rr(14, 1).mov_sym(12, "fstable");
  f.label("loop")
      .mov_sym(6, "fstable")
      .add_ri(6, kFsBytes)
      .cmp_rr(12, 6)
      .jae("notfound")
      .load(7, 12, 0)
      .cmp_ri(7, 0)
      .je("next")
      .mov_rr(1, 14)
      .mov_rr(2, 12)
      .add_ri(2, 8)
      .call_import("strcmp")
      .cmp_ri(0, 0)
      .je("found");
  f.label("next").add_ri(12, kFsSlotSize).jmp("loop");
  f.label("found").mov_rr(0, 12).pop(14).pop(12).ret();
  f.label("notfound").mov_ri(0, 0).pop(14).pop(12).ret();

  // fs_put(r1 = path, r2 = content) -> r0 = slot | 0 (creates on demand).
  auto& p = b.func("fs_put");
  p.push(12).push(14);
  p.mov_rr(14, 2);  // content
  p.push(1).call("fs_find").pop(1).cmp_ri(0, 0).jne("have");
  // allocate: scan for a free slot
  p.mov_sym(12, "fstable");
  p.label("alloc")
      .mov_sym(6, "fstable")
      .add_ri(6, kFsBytes)
      .cmp_rr(12, 6)
      .jae("full")
      .load(7, 12, 0)
      .cmp_ri(7, 0)
      .je("take")
      .add_ri(12, kFsSlotSize)
      .jmp("alloc");
  p.label("take")
      .mov_ri(7, 1)
      .store(12, 0, 7)
      .mov_rr(2, 1)     // path
      .mov_rr(1, 12)
      .add_ri(1, 8)
      .call_import("strcpy")
      .mov_rr(0, 12);
  p.label("have")
      .push(0)
      .mov_rr(1, 0)
      .add_ri(1, kFsContentOff)
      .mov_rr(2, 14)
      .call_import("strcpy")
      .pop(0)
      .pop(14)
      .pop(12)
      .ret();
  p.label("full").mov_ri(0, 0).pop(14).pop(12).ret();

  // fs_del(r1 = path) -> r0 = 1 | 0.
  auto& d = b.func("fs_del");
  d.call("fs_find")
      .cmp_ri(0, 0)
      .je("miss")
      .mov_ri(7, 0)
      .store(0, 0, 7)
      .mov_ri(0, 1)
      .ret()
      .label("miss")
      .mov_ri(0, 0)
      .ret();

  // init_fs: preload "/index".
  b.func("init_fs")
      .mov_sym(1, "p_index")
      .mov_sym(2, "c_welcome")
      .call("fs_put")
      .ret();
}

}  // namespace dynacut::apps
