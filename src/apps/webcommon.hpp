// Shared guest runtime for the two web servers (miniweb, minihttpd):
// request tokenizer, in-memory file table, reply helper and the common
// HTTP response strings.
//
// Defines (in the target builder):
//   bss:  fstable (32 slots of used|path[32]|content[64]), toks (4 ptrs),
//         linebuf (256), numbuf (32)
//   rodata: r_200 "200 ", r_200nl "200\n", r_201 "201 created\n",
//           r_204 "204 deleted\n", r_403 "403 Forbidden\n", r_404 "404\n",
//           s_nl "\n", m_get/m_head/m_put/m_delete/m_mkcol method names
//   funcs: tokenize, reply (r2 = string; writes to conn fd r13),
//          fs_find (r1 path -> r0 slot|0), fs_put (r1 path, r2 content ->
//          r0 slot|0), fs_del (r1 path -> r0 1|0), init_fs (preloads
//          "/index" -> "welcome")
#pragma once

#include "melf/builder.hpp"

namespace dynacut::apps {

inline constexpr int kFsSlotSize = 104;
inline constexpr int kFsSlots = 32;
inline constexpr int kFsContentOff = 40;

void emit_web_runtime(melf::ProgramBuilder& b);

}  // namespace dynacut::apps
