#include "baselines/chisel.hpp"

#include <vector>

#include "common/error.hpp"

namespace dynacut::baselines {

using analysis::CoverageGraph;
using analysis::CovBlock;

ChiselResult chisel_debloat(const melf::Binary& bin,
                            const std::string& module,
                            const CoverageGraph& seed_kept,
                            const Oracle& oracle, int max_rounds) {
  analysis::StaticCfg cfg = analysis::recover_cfg(bin);

  ChiselResult out;
  out.total_blocks = cfg.block_count();

  CoverageGraph kept = seed_kept.only_module(module);
  ++out.oracle_calls;
  if (!oracle(kept)) {
    throw StateError("chisel: the seed kept-set already fails the oracle");
  }

  // ddmin over the kept set: split candidates into `chunks` groups, try
  // dropping each group; finer granularity every round.
  int chunks = 4;
  for (int round = 0; round < max_rounds; ++round) {
    std::vector<CovBlock> blocks = kept.blocks();
    if (blocks.empty()) break;
    size_t per = std::max<size_t>(1, blocks.size() / static_cast<size_t>(chunks));
    bool any_removed = false;

    for (size_t start = 0; start < blocks.size(); start += per) {
      CoverageGraph candidate;
      for (size_t i = 0; i < blocks.size(); ++i) {
        if (i >= start && i < start + per) continue;  // drop this chunk
        candidate.insert(blocks[i]);
      }
      ++out.oracle_calls;
      if (oracle(candidate)) {
        kept = candidate;
        blocks = kept.blocks();
        any_removed = true;
        if (blocks.empty()) break;
      }
    }
    if (!any_removed && per == 1) break;  // converged at single-block level
    chunks *= 2;
  }

  out.kept = kept;
  for (const auto& [off, blk] : cfg.blocks) {
    if (!kept.contains(module, off)) {
      out.removed.insert(CovBlock{module, off, blk.size});
    }
  }
  return out;
}

}  // namespace dynacut::baselines
