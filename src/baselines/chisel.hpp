// chisel_sim: the CHISEL-style baseline (Heo et al., CCS '18) — oracle-
// guided program minimization. Instead of CHISEL's reinforcement-learned
// search over source elements, chisel_sim runs delta debugging over basic
// blocks: starting from a seed kept-set, it repeatedly tries removing
// chunks of candidate blocks and keeps any removal the test oracle (the
// user's property script) accepts. The result is a smaller kept-set than
// trace-plus-heuristics baselines — matching the paper's observation that
// CHISEL removes more than RAZOR (66% vs 53.1%).
#pragma once

#include <functional>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"

namespace dynacut::baselines {

/// Returns true when the program still passes all required tests given
/// only `kept` blocks remaining executable.
using Oracle = std::function<bool(const analysis::CoverageGraph& kept)>;

struct ChiselResult {
  analysis::CoverageGraph kept;
  analysis::CoverageGraph removed;
  size_t total_blocks = 0;
  int oracle_calls = 0;

  double kept_fraction() const {
    return total_blocks == 0
               ? 0.0
               : static_cast<double>(kept.size()) /
                     static_cast<double>(total_blocks);
  }
};

/// Minimizes `module` of `bin`. `seed_kept` is the starting kept-set (e.g.
/// razor's result, or all executed blocks); blocks outside it are removed
/// up front (the oracle must accept the seed). `max_rounds` bounds the
/// ddmin-style passes.
ChiselResult chisel_debloat(const melf::Binary& bin,
                            const std::string& module,
                            const analysis::CoverageGraph& seed_kept,
                            const Oracle& oracle, int max_rounds = 4);

}  // namespace dynacut::baselines
