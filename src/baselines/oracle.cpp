#include "baselines/oracle.hpp"

#include "analysis/cfg.hpp"
#include "os/os.hpp"

namespace dynacut::baselines {

Oracle make_server_oracle(
    std::shared_ptr<const melf::Binary> app,
    std::vector<std::shared_ptr<const melf::Binary>> libs, uint16_t port,
    std::string module, std::vector<ServerTestCase> cases) {
  // The static CFG is computed once and captured; the oracle is called many
  // times during minimization.
  auto cfg = std::make_shared<analysis::StaticCfg>(analysis::recover_cfg(*app));

  return [app, libs, port, module, cases,
          cfg](const analysis::CoverageGraph& kept) -> bool {
    os::Os vos;
    int pid = vos.spawn(app, libs);
    os::Process* p = vos.process(pid);
    const os::LoadedModule* m = p->module_named(module);
    if (m == nullptr) return false;

    // Remove everything not kept (first-byte traps, applied pre-boot).
    const uint8_t trap = 0xCC;
    for (const auto& [off, blk] : cfg->blocks) {
      if (!kept.contains(module, off)) {
        p->mem.poke(m->base + off, &trap, 1);
      }
    }

    auto run_until = [&](auto cond) {
      for (int i = 0; i < 100 && !cond(); ++i) vos.run(100'000);
      return cond();
    };

    if (!run_until([&] { return vos.has_listener(port); })) return false;
    os::HostConn conn = vos.connect(port);
    for (const auto& tc : cases) {
      conn.send(tc.request);
      if (!run_until([&] {
            return conn.pending() >= tc.expected.size() ||
                   vos.process(pid)->state == os::Process::State::kExited;
          })) {
        return false;
      }
      if (conn.recv_all() != tc.expected) return false;
    }
    // Every process of the group must have survived.
    for (int gp : vos.process_group(pid)) {
      if (vos.process(gp)->term_signal != 0) return false;
    }
    return true;
  };
}

}  // namespace dynacut::baselines
