// Test oracles for baseline debloaters: boot a candidate-debloated server
// in a fresh OS instance and check that it still answers the required
// requests. Blocks outside the kept-set are blocked with TRAP before the
// process runs, so any dependence on removed code fails the oracle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/chisel.hpp"
#include "melf/binary.hpp"

namespace dynacut::baselines {

struct ServerTestCase {
  std::string request;   ///< one '\n'-terminated line
  std::string expected;  ///< exact reply
};

/// Builds an Oracle that spawns `app` (+`libs`), traps every static block
/// of `module` absent from the kept-set, then replays `cases` against
/// `port`. Returns false on boot failure, crash, timeout or wrong reply.
Oracle make_server_oracle(std::shared_ptr<const melf::Binary> app,
                          std::vector<std::shared_ptr<const melf::Binary>> libs,
                          uint16_t port, std::string module,
                          std::vector<ServerTestCase> cases);

}  // namespace dynacut::baselines
