#include "baselines/razor.hpp"

#include <set>

namespace dynacut::baselines {

using analysis::CoverageGraph;
using analysis::CovBlock;

RazorResult razor_debloat(const melf::Binary& bin, const std::string& module,
                          const std::vector<trace::TraceLog>& training,
                          int heuristic_hops) {
  analysis::StaticCfg cfg = analysis::recover_cfg(bin);

  // Map traced offsets onto static blocks (a traced block may start inside
  // a static one when dynamic splitting differs; attribute it to the
  // covering static block).
  auto covering_block = [&](uint64_t offset) -> const analysis::CfgBlock* {
    auto it = cfg.blocks.upper_bound(offset);
    if (it == cfg.blocks.begin()) return nullptr;
    --it;
    const analysis::CfgBlock& blk = it->second;
    return offset < blk.offset + blk.size ? &blk : nullptr;
  };

  std::set<uint64_t> kept_offsets;
  CoverageGraph traced =
      CoverageGraph::from_logs(training).only_module(module);
  for (const auto& b : traced.blocks()) {
    // A traced (dynamic) block may span several static blocks when static
    // leaders split it; keep every static block it overlaps.
    const uint64_t end = b.offset + std::max<uint32_t>(b.size, 1);
    const analysis::CfgBlock* blk = covering_block(b.offset);
    uint64_t cursor = b.offset;
    while (blk != nullptr && blk->offset < end) {
      kept_offsets.insert(blk->offset);
      cursor = blk->offset + blk->size;
      if (cursor >= end) break;
      blk = covering_block(cursor);
    }
  }

  // zCode-style expansion: pull in static successors of kept blocks.
  std::set<uint64_t> frontier = kept_offsets;
  for (int hop = 0; hop < heuristic_hops; ++hop) {
    std::set<uint64_t> next;
    for (uint64_t off : frontier) {
      auto it = cfg.blocks.find(off);
      if (it == cfg.blocks.end()) continue;
      for (uint64_t succ : it->second.succs) {
        if (const analysis::CfgBlock* blk = covering_block(succ)) {
          if (kept_offsets.insert(blk->offset).second) {
            next.insert(blk->offset);
          }
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  RazorResult out;
  out.total_blocks = cfg.block_count();
  for (const auto& [off, blk] : cfg.blocks) {
    CovBlock cov{module, off, blk.size};
    if (kept_offsets.count(off)) {
      out.kept.insert(cov);
    } else {
      out.removed.insert(cov);
    }
  }
  return out;
}

}  // namespace dynacut::baselines
