// razor_sim: a faithful-in-spirit reimplementation of RAZOR's debloating
// strategy (Qian et al., USENIX Security '19) used as the static baseline
// in Figure 10.
//
// RAZOR keeps the basic blocks covered by training traces and then expands
// the kept set with control-flow heuristics ("zCode") so related-but-
// untraced code (error paths, the other arms of covered branches) survives;
// everything else is removed once, permanently. razor_sim reproduces that
// pipeline on MELF binaries: traced blocks -> N rounds of static-successor
// expansion over the recovered CFG -> keep/remove partition.
#pragma once

#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/coverage.hpp"
#include "trace/trace.hpp"

namespace dynacut::baselines {

struct RazorResult {
  analysis::CoverageGraph kept;
  analysis::CoverageGraph removed;
  size_t total_blocks = 0;

  double kept_fraction() const {
    return total_blocks == 0
               ? 0.0
               : static_cast<double>(kept.size()) /
                     static_cast<double>(total_blocks);
  }
};

/// Debloats `module` of `bin` given training traces. `heuristic_hops` is
/// the zCode expansion depth (0 = keep exactly the traced blocks; RAZOR's
/// strongest published heuristic corresponds to ~2-3 hops).
RazorResult razor_debloat(const melf::Binary& bin, const std::string& module,
                          const std::vector<trace::TraceLog>& training,
                          int heuristic_hops = 2);

}  // namespace dynacut::baselines
