#include "common/bytes.hpp"

// Header-only today; the TU exists so the target has a concrete archive
// member and a home for future out-of-line helpers.
