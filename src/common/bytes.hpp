// Little-endian byte-buffer reader/writer used by every serializer in the
// repo (MELF binaries, trace files, process images).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace dynacut {

/// Appends little-endian primitives to a growable byte vector.
class ByteWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { raw(&v, sizeof v); }
  void u32(uint32_t v) { raw(&v, sizeof v); }
  void u64(uint64_t v) { raw(&v, sizeof v); }
  void i32(int32_t v) { raw(&v, sizeof v); }
  void i64(int64_t v) { raw(&v, sizeof v); }

  /// Length-prefixed (u32) string.
  void str(std::string_view s) {
    u32(static_cast<uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  /// Length-prefixed (u64) blob.
  void blob(std::span<const uint8_t> b) {
    u64(b.size());
    raw(b.data(), b.size());
  }

  void raw(const void* p, size_t n) {
    const auto* c = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }

  /// Overwrites a previously written u32 at `offset` (for back-patching
  /// lengths/offsets).
  void patch_u32(size_t offset, uint32_t v) {
    DYNACUT_ASSERT(offset + sizeof v <= buf_.size());
    std::memcpy(buf_.data() + offset, &v, sizeof v);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte span. Throws
/// DecodeError on truncation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return take<uint8_t>(); }
  uint16_t u16() { return take<uint16_t>(); }
  uint32_t u32() { return take<uint32_t>(); }
  uint64_t u64() { return take<uint64_t>(); }
  int32_t i32() { return take<int32_t>(); }
  int64_t i64() { return take<int64_t>(); }

  std::string str() {
    uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<uint8_t> blob() {
    uint64_t n = u64();
    need(n);
    std::vector<uint8_t> b(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  void raw(void* out, size_t n) {
    need(n);
    // min() restates need()'s guarantee in a form the optimizer can see, so
    // inlining into fixed-size callers doesn't trip -Warray-bounds.
    std::memcpy(out, data_.data() + pos_, std::min(n, data_.size() - pos_));
    pos_ += n;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T take() {
    T v;
    raw(&v, sizeof v);
    return v;
  }

  void need(size_t n) {
    if (data_.size() - pos_ < n) {
      throw DecodeError("truncated input: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_));
    }
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace dynacut
