// Machine-wide constants shared between the binary format, the VM and the
// OS simulator.
#pragma once

#include <cstdint>

namespace dynacut {

inline constexpr uint64_t kPageSize = 4096;

/// Memory protection bits (VMA permissions).
inline constexpr uint32_t kProtRead = 1;
inline constexpr uint32_t kProtWrite = 2;
inline constexpr uint32_t kProtExec = 4;

inline constexpr uint64_t page_floor(uint64_t addr) {
  return addr & ~(kPageSize - 1);
}
inline constexpr uint64_t page_ceil(uint64_t addr) {
  return (addr + kPageSize - 1) & ~(kPageSize - 1);
}

/// Canonical load addresses used by the guest loader (documented so traces
/// and disassembly are stable across runs).
inline constexpr uint64_t kAppBase = 0x400000;
inline constexpr uint64_t kLibcBase = 0x10000000;
inline constexpr uint64_t kStackTop = 0x7ff0000000;
inline constexpr uint64_t kStackSize = 64 * 1024;
inline constexpr uint64_t kHeapBase = 0x20000000;

}  // namespace dynacut
