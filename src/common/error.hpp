// Error types shared by every DynaCut module.
//
// Errors that indicate misuse of an API or a corrupted input are reported
// with exceptions (per C++ Core Guidelines E.2); programming invariants are
// checked with DYNACUT_ASSERT which terminates.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dynacut {

/// Base class for all DynaCut errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed or truncated serialized artifact (trace file, process image,
/// MELF binary, ...).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// An operation was attempted on an object in the wrong state (e.g. patching
/// an address outside every VMA, restoring a feature that was never removed).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error("state: " + what) {}
};

/// Guest program misbehaviour surfaced to the host as an error (e.g. a guest
/// that cannot be linked or loaded).
class GuestError : public Error {
 public:
  explicit GuestError(const std::string& what) : Error("guest: " + what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "dynacut assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace dynacut

/// Invariant check: aborts on violation. Use for programmer errors only.
#define DYNACUT_ASSERT(expr) \
  ((expr) ? (void)0 : ::dynacut::assert_fail(#expr, __FILE__, __LINE__))
