// Deterministic fault injection for the transactional customization path.
//
// A FaultPlan is threaded (as a nullable pointer) through the operations a
// customization performs — image::checkpoint, rw::ImageRewriter edits,
// library injection, image::restore. Each operation calls fire() at its
// fault point; a disarmed plan only counts the points it passes (so a test
// can first measure how many opportunities a scenario has), while an armed
// plan throws InjectedFault at exactly the nth occurrence of its stage.
// That determinism is what lets tests/txn_test.cpp prove group-atomicity
// under *every* possible failure point rather than a sampled few.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/error.hpp"

namespace dynacut {

/// The customization operations that can be made to fail.
enum class FaultStage : size_t {
  kCheckpoint = 0,  ///< dumping a frozen process into a ProcessImage
  kRewrite,         ///< one code edit (patch/wipe/undo/unmap) on an image
  kInject,          ///< injecting a handler library into an image
  kRestore,         ///< installing a rewritten image into a process
};

inline constexpr size_t kNumFaultStages = 4;

inline const char* fault_stage_name(FaultStage s) {
  switch (s) {
    case FaultStage::kCheckpoint: return "checkpoint";
    case FaultStage::kRewrite: return "rewrite";
    case FaultStage::kInject: return "inject";
    case FaultStage::kRestore: return "restore";
  }
  return "?";
}

/// Thrown by an armed FaultPlan when its trigger point is reached.
class InjectedFault : public Error {
 public:
  InjectedFault(FaultStage stage, size_t nth)
      : Error("injected fault: " + std::string(fault_stage_name(stage)) +
              " #" + std::to_string(nth)),
        stage_(stage),
        nth_(nth) {}

  FaultStage stage() const { return stage_; }
  size_t nth() const { return nth_; }

 private:
  FaultStage stage_;
  size_t nth_;
};

class FaultPlan {
 public:
  /// Disarmed plan: fire() only counts occurrences.
  FaultPlan() = default;

  /// Plan that throws at the nth (0-based) occurrence of `stage`.
  static FaultPlan fail_at(FaultStage stage, size_t nth) {
    FaultPlan p;
    p.armed_ = true;
    p.stage_ = stage;
    p.nth_ = nth;
    return p;
  }

  /// A fault point: counts the occurrence, throws if it is the armed one.
  void fire(FaultStage s) {
    size_t n = counts_[static_cast<size_t>(s)]++;
    if (armed_ && stage_ == s && n == nth_) throw InjectedFault(s, n);
  }

  /// Convenience for the nullable-pointer threading convention.
  static void fire(FaultPlan* plan, FaultStage s) {
    if (plan != nullptr) plan->fire(s);
  }

  /// Occurrences of `s` observed since construction / reset_counts().
  size_t count(FaultStage s) const {
    return counts_[static_cast<size_t>(s)];
  }

  void reset_counts() { counts_ = {}; }
  bool armed() const { return armed_; }

 private:
  bool armed_ = false;
  FaultStage stage_ = FaultStage::kCheckpoint;
  size_t nth_ = 0;
  std::array<size_t, kNumFaultStages> counts_{};
};

}  // namespace dynacut
