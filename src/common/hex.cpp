#include "common/hex.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace dynacut {

std::string hex_addr(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string hex_bytes(std::span<const uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 3);
  char buf[4];
  for (size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%02x", data[i]);
    if (i) out.push_back(' ');
    out += buf;
  }
  return out;
}

std::string hexdump(std::span<const uint8_t> data, uint64_t base_addr) {
  std::string out;
  char buf[32];
  for (size_t line = 0; line < data.size(); line += 16) {
    std::snprintf(buf, sizeof buf, "%016llx  ",
                  static_cast<unsigned long long>(base_addr + line));
    out += buf;
    for (size_t i = line; i < line + 16 && i < data.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%02x ", data[i]);
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

uint64_t parse_u64(const std::string& s) {
  if (s.empty()) throw DecodeError("empty integer literal");
  char* end = nullptr;
  errno = 0;
  uint64_t v = std::strtoull(s.c_str(), &end, 0);
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    throw DecodeError("bad integer literal: " + s);
  }
  return v;
}

}  // namespace dynacut
