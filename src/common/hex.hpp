// Hex formatting helpers for diagnostics and the CRIT-style text codec.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace dynacut {

/// "0x1234abcd" formatting of an address.
std::string hex_addr(uint64_t v);

/// "cc 90 48 ..." formatting of raw bytes.
std::string hex_bytes(std::span<const uint8_t> data);

/// Classic 16-bytes-per-line hexdump with an address column.
std::string hexdump(std::span<const uint8_t> data, uint64_t base_addr = 0);

/// Parses "0x..."/decimal; throws DecodeError on garbage.
uint64_t parse_u64(const std::string& s);

}  // namespace dynacut
