#include "common/log.hpp"

#include <cstdio>

namespace dynacut {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[dynacut %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace dynacut
