// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the framework is doing.
#pragma once

#include <string>

namespace dynacut {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) {
  log_message(LogLevel::kDebug, msg);
}
inline void log_info(const std::string& msg) {
  log_message(LogLevel::kInfo, msg);
}
inline void log_warn(const std::string& msg) {
  log_message(LogLevel::kWarn, msg);
}

}  // namespace dynacut
