// Deterministic, seedable RNG (splitmix64) used by the synthetic workload
// generators. std::mt19937 is avoided so generated guest programs are
// bit-identical across standard libraries.
#pragma once

#include <cstdint>

namespace dynacut {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  /// Bernoulli with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace dynacut
