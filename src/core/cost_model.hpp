// Virtual-time cost model for DynaCut operations.
//
// The paper measures wall-clock seconds on an i5-10210U (CRIU + a Python
// CRIT extension). Our substrate executes in a simulator with a virtual
// clock (1 tick = 1 ns), so the rewrite window is *charged* to the clock
// using this model. Every term is proportional to real work the rewriter
// performed (pages dumped/restored, blocks patched, relocations applied);
// the coefficients below were calibrated once against the paper's Figure 6
// and Figure 7 and are documented in EXPERIMENTS.md. Nothing else is tuned
// per experiment.
#pragma once

#include <cstdint>

namespace dynacut::core {

struct CostModel {
  // checkpoint = base + per_page * pages_dumped
  uint64_t checkpoint_base_ns = 30'000'000;  ///< 30 ms CRIU setup
  uint64_t checkpoint_per_page_ns = 75'000;  ///< 75 µs/page dumped

  // restore = base + per_page * pages_restored
  uint64_t restore_base_ns = 30'000'000;
  uint64_t restore_per_page_ns = 70'000;

  // Incremental paths (soft-dirty dump, in-place delta restore): the fixed
  // setup collapses — no full-image walk, no address-space rebuild — and
  // the per-page terms apply only to pages actually dumped/written back.
  uint64_t checkpoint_delta_base_ns = 4'000'000;  ///< 4 ms dirty-set scan
  uint64_t restore_delta_base_ns = 4'000'000;     ///< 4 ms in-place reconcile

  // code update = per_block * blocks patched (+ per_page for unmaps)
  uint64_t patch_per_block_ns = 1'000'000;  ///< 1 ms/block (CRIT is Python)
  uint64_t unmap_per_page_ns = 50'000;

  // library injection = base + per_reloc
  uint64_t inject_base_ns = 25'000'000;  ///< parse ELF + build pages
  uint64_t inject_per_reloc_ns = 100'000;

  // slice analysis = base + per_block over the module's static CFG
  // (dataflow fixpoint + dominators + closure). Charged to
  // TimingBreakdown::analysis_ns, which is *not* part of the service
  // interruption: the slicer runs against the on-disk image before the
  // group is frozen.
  uint64_t slice_base_ns = 8'000'000;  ///< 8 ms model build
  uint64_t slice_per_block_ns = 20'000;

  uint64_t checkpoint_cost(uint64_t pages) const {
    return checkpoint_base_ns + checkpoint_per_page_ns * pages;
  }
  uint64_t restore_cost(uint64_t pages) const {
    return restore_base_ns + restore_per_page_ns * pages;
  }
  uint64_t checkpoint_delta_cost(uint64_t pages_dumped) const {
    return checkpoint_delta_base_ns + checkpoint_per_page_ns * pages_dumped;
  }
  uint64_t restore_delta_cost(uint64_t pages_restored) const {
    return restore_delta_base_ns + restore_per_page_ns * pages_restored;
  }
  uint64_t patch_cost(uint64_t blocks, uint64_t unmapped_pages) const {
    return patch_per_block_ns * blocks + unmap_per_page_ns * unmapped_pages;
  }
  uint64_t inject_cost(uint64_t relocs) const {
    return inject_base_ns + inject_per_reloc_ns * relocs;
  }
  uint64_t slice_cost(uint64_t blocks) const {
    return slice_base_ns + slice_per_block_ns * blocks;
  }
};

/// Timing breakdown of one customization, in virtual ns (the categories of
/// paper Figure 6 / Figure 7).
struct TimingBreakdown {
  uint64_t checkpoint_ns = 0;
  uint64_t code_update_ns = 0;
  uint64_t inject_ns = 0;
  uint64_t restore_ns = 0;
  /// Offline slice analysis (CutRequest.expand_to_slice). Excluded from
  /// total_ns(): it happens before the group freezes, so it never counts
  /// toward the paper's service-interruption figures.
  uint64_t analysis_ns = 0;

  uint64_t total_ns() const {
    return checkpoint_ns + code_update_ns + inject_ns + restore_ns;
  }
  double total_seconds() const { return static_cast<double>(total_ns()) / 1e9; }

  TimingBreakdown& operator+=(const TimingBreakdown& o) {
    checkpoint_ns += o.checkpoint_ns;
    code_update_ns += o.code_update_ns;
    inject_ns += o.inject_ns;
    restore_ns += o.restore_ns;
    analysis_ns += o.analysis_ns;
    return *this;
  }
};

}  // namespace dynacut::core
