#include "core/dynacut.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "core/handler_lib.hpp"

namespace dynacut::core {

DynaCut::DynaCut(os::Os& os, int root_pid, CostModel model, CheckMode check)
    : os_(os), root_pid_(root_pid), model_(model), check_mode_(check) {
  if (os_.process(root_pid) == nullptr) {
    throw StateError("DynaCut: no process " + std::to_string(root_pid));
  }
}

DynaCut::~DynaCut() {
  // The annotator closure captures `this`; leaving it installed would make
  // the bus call into a dead object on the next trap.
  if (bus_ != nullptr) bus_->set_annotator(nullptr);
}

void DynaCut::set_observer(obs::EventBus* bus, obs::Registry* metrics) {
  if (bus_ != nullptr && bus_ != bus) bus_->set_annotator(nullptr);
  bus_ = bus;
  metrics_ = metrics;
  if (bus_ != nullptr) {
    if (!bus_->has_clock()) {
      bus_->set_clock([this] { return os_.now(); });
    }
    bus_->set_annotator([this](obs::Event& e) { annotate(e); });
  }
}

void DynaCut::annotate(obs::Event& e) {
  // trap.hit and stub.hit get identical feature/policy enrichment, so
  // timeline consumers (fig8/fig10) stay mechanism-agnostic. A stub.hit
  // aggregates a polled delta; a trap.hit is always one delivery.
  const bool is_trap = e.type == obs::ev::kTrapHit;
  const bool is_stub = e.type == obs::ev::kStubHit;
  if (!is_trap && !is_stub) return;
  const uint64_t count = is_stub ? e.attr_u64("hits") : 1;
  if (metrics_ != nullptr) {
    metrics_->add(is_trap ? "trap.hits" : "cut.stub_hits", count);
  }
  const auto& sites = is_trap ? trap_sites_ : stub_sites_;
  auto it = sites.find({e.pid, e.attr_u64("addr")});
  if (it == sites.end()) return;
  e.with("feature", it->second.feature).with("policy", it->second.policy);
  if (metrics_ != nullptr) {
    metrics_->add(std::string(is_trap ? "trap.hits." : "cut.stub_hits.") +
                      it->second.feature,
                  count);
  }
}

analysis::cutcheck::CheckReport DynaCut::run_check(
    const CutRequest& req) const {
  const os::Process* proc = os_.process(root_pid_);
  std::vector<rw::ModuleRef> mods;
  if (proc != nullptr) {
    mods.reserve(proc->modules.size());
    for (const auto& m : proc->modules) mods.push_back({m.name, m.binary});
  }
  auto plans = rw::extract_plans(mods, req.feature.name, req.feature.blocks,
                                 req.removal, req.trap,
                                 req.feature.redirect_module,
                                 req.feature.redirect_offset, req.mechanism);
  return analysis::cutcheck::check_plans(plans, req.check_options);
}

CutRequest DynaCut::expanded_request(const CutRequest& req,
                                     rw::SliceExpansion* stats) const {
  if (!req.expand_to_slice) return req;

  const os::Process* proc = os_.process(root_pid_);
  std::vector<rw::ModuleRef> mods;
  if (proc != nullptr) {
    mods.reserve(proc->modules.size());
    for (const auto& m : proc->modules) mods.push_back({m.name, m.binary});
  }
  auto plans = rw::extract_plans(mods, req.feature.name, req.feature.blocks,
                                 req.removal, req.trap,
                                 req.feature.redirect_module,
                                 req.feature.redirect_offset, req.mechanism);

  // A module's functions imported by any other loaded module are entered
  // from outside its CFG; pin them against call closure.
  analysis::slicer::SliceOptions sopts;
  for (const auto& m : mods) {
    if (m.binary == nullptr) continue;
    for (const auto& imp : m.binary->imports) {
      sopts.keep_functions.insert(imp);
    }
  }

  rw::SliceExpansion exp = rw::expand_plans_to_slice(plans, sopts);
  if (stats != nullptr) *stats = exp;

  CutRequest out = req;
  out.expand_to_slice = false;
  out.feature.blocks.clear();
  for (const auto& plan : plans) {
    out.feature.blocks.insert(out.feature.blocks.end(), plan.blocks.begin(),
                              plan.blocks.end());
  }
  return out;
}

DynaCut::StubPlans DynaCut::plan_stub_redirection(const CutRequest& req) const {
  StubPlans out;
  if (req.mechanism == CutMechanism::kTrap) return out;
  const os::Process* proc = os_.process(root_pid_);
  if (proc == nullptr) return out;
  std::vector<rw::ModuleRef> mods;
  mods.reserve(proc->modules.size());
  for (const auto& m : proc->modules) mods.push_back({m.name, m.binary});
  auto plans = rw::extract_plans(mods, req.feature.name, req.feature.blocks,
                                 req.removal, req.trap,
                                 req.feature.redirect_module,
                                 req.feature.redirect_offset, req.mechanism);
  for (const auto& plan : plans) {
    if (plan.binary == nullptr || plan.blocks.empty()) continue;
    analysis::slicer::SliceModel model =
        analysis::slicer::analyze(*plan.binary);
    analysis::slicer::StubPlan sp = analysis::slicer::plan_stubs(model, plan);
    if (!sp.entries.empty()) out.emplace(plan.module, std::move(sp));
  }
  return out;
}

analysis::cutcheck::CheckReport DynaCut::preflight(
    const CutRequest& req) const {
  auto report = run_check(expanded_request(req));
  if (bus_ != nullptr) {
    for (const auto& d : report.diags) {
      bus_->emit(obs::Event(obs::ev::kCutcheckFinding)
                     .with("feature", req.feature.name)
                     .with("rule", d.rule)
                     .with("severity",
                           analysis::cutcheck::severity_name(d.severity))
                     .with("module", d.module)
                     .with("offset", d.offset));
    }
  }
  return report;
}

analysis::cutcheck::CheckReport DynaCut::preflight(
    const FeatureSpec& spec, RemovalPolicy removal,
    TrapPolicy trap_policy) const {
  return preflight(
      CutRequest{.feature = spec, .removal = removal, .trap = trap_policy});
}

void DynaCut::preflight_or_throw(const CutRequest& req) const {
  CheckMode mode = req.check.value_or(check_mode_);
  if (mode == CheckMode::kOff) return;
  auto report = preflight(req);
  for (const auto& d : report.diags) {
    using analysis::cutcheck::Severity;
    if (d.severity == Severity::kNote) {
      log_debug("cutcheck: " + d.format());
    } else {
      log_warn("cutcheck: " + d.format());
    }
  }
  if (report.ok()) return;
  if (mode == CheckMode::kEnforce) {
    throw StateError("cutcheck rejected plan '" + req.feature.name + "':\n" +
                     report.format());
  }
  log_warn("cutcheck: plan '" + req.feature.name + "' has " +
           std::to_string(report.errors()) +
           " error(s); applying anyway (warn mode)");
}

CustomizeReport DynaCut::disable_feature(const CutRequest& req) {
  if (applied_.count(req.feature.name) != 0) {
    throw StateError("feature already disabled: " + req.feature.name);
  }
  if (req.trap == TrapPolicy::kVerify &&
      req.removal != RemovalPolicy::kBlockFirstByte) {
    throw StateError("verify mode requires the first-byte removal policy");
  }
  if (req.mechanism != CutMechanism::kTrap &&
      req.removal == RemovalPolicy::kUnmapPages) {
    throw StateError(
        "stub mechanism requires mapped code for its int3 safety net; "
        "unmapped residual reachability would SIGSEGV (use first-byte or "
        "wipe removal)");
  }
  return apply(req);
}

CustomizeReport DynaCut::disable_feature(const FeatureSpec& spec,
                                         RemovalPolicy removal,
                                         TrapPolicy trap_policy) {
  return disable_feature(
      CutRequest{.feature = spec, .removal = removal, .trap = trap_policy});
}

CustomizeReport DynaCut::remove_init_code(
    const analysis::CoverageGraph& init_blocks, RemovalPolicy removal) {
  return apply(CutRequest{
      .feature = FeatureSpec{.name = "__init__",
                             .blocks = init_blocks.blocks()},
      .removal = removal,
      .trap = TrapPolicy::kTerminate,
      .label = "__init__"});
}

bool DynaCut::feature_disabled(const std::string& name) const {
  return applied_.count(name) != 0;
}

std::vector<std::string> DynaCut::disabled_features() const {
  std::vector<std::string> out;
  out.reserve(applied_.size());
  for (const auto& [name, edits] : applied_) out.push_back(name);
  return out;
}

std::string DynaCut::tag_with(const std::string& add,
                              const std::string& remove) const {
  std::set<std::string> names;
  for (const auto& [name, edits] : applied_) names.insert(name);
  if (!add.empty()) names.insert(add);
  if (!remove.empty()) names.erase(remove);
  std::string tag;
  for (const auto& name : names) {
    if (!tag.empty()) tag += '+';
    tag += name;
  }
  return tag;
}

std::string DynaCut::feature_set_tag() const { return tag_with({}, {}); }

std::vector<int> DynaCut::live_pids(const PerPidEdits* subset) const {
  std::vector<int> out;
  for (int pid : os_.process_group(root_pid_)) {
    if (subset != nullptr && subset->count(pid) == 0) continue;
    const os::Process* proc = os_.process(pid);
    if (proc != nullptr && proc->state != os::Process::State::kExited) {
      out.push_back(pid);
    }
  }
  return out;
}

void DynaCut::stage_or_rollback(GroupTxn& txn, const std::string& feature,
                                const std::vector<int>& pids,
                                FaultStage& stage,
                                const std::function<void(int)>& body) {
  int cur_pid = root_pid_;
  try {
    for (int pid : pids) {
      cur_pid = pid;
      stage = FaultStage::kCheckpoint;
      body(pid);
    }
  } catch (const InjectedFault& f) {
    txn.abort();
    if (metrics_ != nullptr) metrics_->add("txn.aborts");
    throw CustomizeError(feature, f.stage(), cur_pid, f.what());
  } catch (const CustomizeError&) {
    txn.abort();
    if (metrics_ != nullptr) metrics_->add("txn.aborts");
    throw;
  } catch (const Error& e) {
    txn.abort();
    if (metrics_ != nullptr) metrics_->add("txn.aborts");
    throw CustomizeError(feature, stage, cur_pid, e.what());
  }
}

void DynaCut::finalize_obs(
    CustomizeReport& report, const std::string& label,
    const std::string& action,
    const std::vector<std::pair<std::string, std::string>>& tags) {
  report.obs.label = label;
  if (bus_ != nullptr && bus_->in_txn()) {
    report.obs.txn = bus_->current_txn();
    std::vector<obs::Attr> attrs{
        obs::Attr::s("action", action),
        obs::Attr::u("processes", report.edits.processes),
        obs::Attr::u("blocks_patched", report.edits.blocks_patched),
        obs::Attr::u("pages_unmapped", report.edits.pages_unmapped),
        obs::Attr::u("bytes_patched", report.edits.bytes_patched),
        obs::Attr::u("image_pages", report.edits.image_pages),
        obs::Attr::u("pages_dumped", report.edits.pages_dumped),
        obs::Attr::u("pages_shared", report.edits.pages_shared),
        obs::Attr::u("pages_restored", report.edits.pages_restored),
        obs::Attr::u("pages_touched", report.edits.pages_touched),
        obs::Attr::u("callsites_stubbed", report.edits.callsites_stubbed),
        obs::Attr::u("got_slots_stubbed", report.edits.got_slots_stubbed),
        obs::Attr::u("interruption_ns", report.timing.total_ns())};
    for (const auto& [k, v] : tags) attrs.push_back(obs::Attr::s(k, v));
    report.obs.events = bus_->commit_txn(std::move(attrs));
  }
  if (metrics_ != nullptr) {
    metrics_->add("txn.commits");
    metrics_->add("cut." + action + "s");
    metrics_->add("cut.blocks_patched", report.edits.blocks_patched);
    metrics_->add("cut.pages_unmapped", report.edits.pages_unmapped);
    metrics_->add("cut.bytes_patched", report.edits.bytes_patched);
    if (report.edits.callsites_stubbed != 0) {
      metrics_->add("cut.callsites_stubbed", report.edits.callsites_stubbed);
    }
    if (report.edits.got_slots_stubbed != 0) {
      metrics_->add("cut.got_slots_stubbed", report.edits.got_slots_stubbed);
    }
    metrics_->histogram("cut.stage_ns")
        .observe(report.timing.checkpoint_ns + report.timing.code_update_ns +
                 report.timing.inject_ns);
    metrics_->histogram("cut.commit_ns").observe(report.timing.restore_ns);
    metrics_->histogram("cut.pages_dumped").observe(report.edits.pages_dumped);
  }
}

CustomizeReport DynaCut::apply(const CutRequest& request) {
  // Feature names feed ImageKey feature-set tags (tag_with joins the
  // applied set with '+'): the reserved pre-rewrite tag would overwrite
  // the pristine rollback image's key, and a '+' inside a name makes tags
  // ambiguous ("a+b" vs the set {a, b}). Reject both up front.
  const std::string& requested_name = request.feature.name;
  if (requested_name.empty()) {
    throw StateError("invalid feature name: empty");
  }
  if (requested_name == image::ImageKey::kPreTag) {
    throw StateError("invalid feature name '" + requested_name +
                     "': reserved for pre-rewrite images");
  }
  if (requested_name.find('+') != std::string::npos) {
    throw StateError("invalid feature name '" + requested_name +
                     "': '+' is the feature-set tag separator");
  }

  rw::SliceExpansion slice;
  const CutRequest req = expanded_request(request, &slice);
  preflight_or_throw(req);

  const std::string& feature_name = req.feature.name;
  const std::string& label = req.obs_label();
  CustomizeReport report;
  PerPidEdits per_pid;
  std::vector<int> pids = live_pids();

  // Stub planning is offline analysis over the static binaries — done once
  // before the group freezes, not per pid. skip_trap blocks start with a
  // redirected call/jmp: the redirect is the denial, so remove_blocks must
  // leave their bytes alone.
  const StubPlans stub_plans = plan_stub_redirection(req);
  std::map<std::string, std::set<uint64_t>> skip_blocks;
  for (const auto& [mod, sp] : stub_plans) {
    if (!sp.skip_trap_blocks.empty()) skip_blocks[mod] = sp.skip_trap_blocks;
  }
  std::map<int, std::vector<std::pair<uint64_t, uint64_t>>> per_pid_slots;

  if (request.expand_to_slice) {
    // Offline work before the group freezes: charged outside total_ns().
    report.timing.analysis_ns += model_.slice_cost(slice.expanded);
    if (bus_ != nullptr) {
      bus_->emit(obs::Event(obs::ev::kSliceExpand)
                     .with("feature", feature_name)
                     .with("seed_blocks", static_cast<uint64_t>(slice.seeds))
                     .with("slice_blocks",
                           static_cast<uint64_t>(slice.expanded))
                     .with("witnesses",
                           static_cast<uint64_t>(slice.witnesses)));
    }
  }

  // Stage phase: freeze the whole group, checkpoint every process and
  // rewrite every image. No live process is touched yet, so any failure
  // aborts back to the untouched running group.
  GroupTxn txn(os_, pids, store_, bus_, label, "disable",
               ckpt_mode_ == CkptMode::kIncremental ? &baselines_ : nullptr,
               ckpt_mode_ == CkptMode::kIncremental
                   ? image::RestoreMode::kDelta
                   : image::RestoreMode::kFull,
               tag_with(feature_name, {}));
  FaultStage stage = FaultStage::kCheckpoint;
  stage_or_rollback(txn, feature_name, pids, stage, [&](int pid) {
    image::CkptStats ckpt;
    image::ProcessImage img = txn.dump(pid, faults_, &ckpt);
    report.timing.checkpoint_ns +=
        ckpt.incremental ? model_.checkpoint_delta_cost(ckpt.pages_dumped)
                         : model_.checkpoint_cost(ckpt.pages_total);
    report.edits.image_pages += img.pages.size();
    report.edits.pages_dumped += ckpt.pages_dumped;
    report.edits.pages_shared += ckpt.pages_shared;

    stage = FaultStage::kRewrite;
    rw::ImageRewriter rewriter(img, faults_, bus_);
    std::vector<AppliedEdit> edits;
    std::vector<std::pair<uint64_t, uint8_t>> originals;
    size_t patched_before = report.edits.blocks_patched;
    size_t unmapped_before = report.edits.pages_unmapped;
    remove_blocks(rewriter, img, req.feature.blocks, req.removal, edits,
                  originals, report,
                  skip_blocks.empty() ? nullptr : &skip_blocks);

    if (!stub_plans.empty()) {
      stage = FaultStage::kInject;
      install_stubs(rewriter, img, stub_plans, req, edits,
                    per_pid_slots[pid], report);
    }
    if (!edits.empty()) {
      stage = FaultStage::kInject;
      if (req.trap == TrapPolicy::kRedirect) {
        install_redirects(rewriter, img, req.feature.blocks,
                          req.feature.redirect_module,
                          req.feature.redirect_offset, report);
      } else if (req.trap == TrapPolicy::kVerify) {
        install_verifier(rewriter, img, originals, report);
      }
    }
    report.timing.code_update_ns +=
        model_.patch_cost(report.edits.blocks_patched - patched_before,
                          report.edits.pages_unmapped - unmapped_before);
    report.edits.pages_touched += rewriter.pages_touched();

    txn.stage(pid, std::move(img));
    per_pid[pid] = std::move(edits);
    ++report.edits.processes;
  });

  // Commit phase: persist + restore every staged image; a failure here
  // rolls the group back to the pristine images and throws CustomizeError.
  try {
    txn.commit(feature_name, faults_,
               [&](const image::ProcessImage& img, const image::CkptStats&,
                   const image::RestoreStats& rst) {
                 report.timing.restore_ns +=
                     rst.in_place
                         ? model_.restore_delta_cost(rst.pages_restored)
                         : model_.restore_cost(img.pages.size());
                 report.edits.pages_restored += rst.pages_restored;
               });
  } catch (const CustomizeError&) {
    if (metrics_ != nullptr) metrics_->add("txn.aborts");
    throw;
  }

  // Record the edits only after commit, merging with any earlier rounds of
  // the same feature (remove_init_code can trim repeatedly): replacing the
  // record wholesale would leak the earlier rounds' stashed original bytes
  // and leave the feature only partially restorable.
  PerPidEdits& dst = applied_[feature_name];
  const char* policy = analysis::cutcheck::trap_name(req.trap);
  for (auto& [pid, edits] : per_pid) {
    for (const AppliedEdit& e : edits) {
      // Stub edits (rel32/GOT redirects) never trap — registering them
      // would misattribute an unrelated int3 landing on those bytes.
      if (!e.unmapped && !e.stub) {
        trap_sites_[{pid, e.patch.vaddr}] = TrapSite{feature_name, policy};
      }
    }
    auto& vec = dst[pid];
    vec.insert(vec.end(), std::make_move_iterator(edits.begin()),
               std::make_move_iterator(edits.end()));
  }
  for (const auto& [pid, slots] : per_pid_slots) {
    for (const auto& [slot, entry_addr] : slots) {
      stub_slots_[{pid, slot}] = StubSlotMeta{feature_name, entry_addr, 0};
      stub_sites_[{pid, entry_addr}] = TrapSite{feature_name, policy};
    }
  }

  // The rewrite window is billed to the freeze set: on a multi-core osim
  // only the customized processes stall while the rest of the fleet keeps
  // serving; with one core the whole machine stalls (historical fig8
  // semantics).
  os_.charge_downtime(pids, report.timing.total_ns());
  finalize_obs(report, label, "disable", req.tags);
  log_info("disabled '" + feature_name + "': " +
           std::to_string(report.edits.blocks_patched) +
           " blocks patched, " +
           std::to_string(report.edits.pages_unmapped) +
           " pages unmapped across " +
           std::to_string(report.edits.processes) + " processes");
  return report;
}

void DynaCut::remove_blocks(
    rw::ImageRewriter& rewriter, const image::ProcessImage& img,
    const std::vector<analysis::CovBlock>& blocks, RemovalPolicy removal,
    std::vector<AppliedEdit>& edits,
    std::vector<std::pair<uint64_t, uint8_t>>& originals,
    CustomizeReport& report,
    const std::map<std::string, std::set<uint64_t>>* skip) {
  // Resolve blocks to absolute ranges; skip modules absent from this image.
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // (addr, size)
  for (const auto& b : blocks) {
    const image::ModuleImage* m = img.module_named(b.module);
    if (m == nullptr) continue;
    if (skip != nullptr) {
      auto sit = skip->find(b.module);
      if (sit != skip->end() && sit->second.count(b.offset) != 0) {
        continue;  // the callsite redirect denies this block (skip_trap)
      }
    }
    uint64_t size = b.size == 0 ? 1 : b.size;
    ranges.emplace_back(m->base + b.offset, size);
  }

  switch (removal) {
    case RemovalPolicy::kBlockFirstByte:
      for (const auto& [addr, size] : ranges) {
        AppliedEdit e;
        e.patch = rewriter.block_first_byte(addr);
        originals.emplace_back(addr, e.patch.original[0]);
        report.edits.bytes_patched += e.patch.original.size();
        edits.push_back(std::move(e));
        ++report.edits.blocks_patched;
      }
      return;

    case RemovalPolicy::kWipeBlocks:
      for (const auto& [addr, size] : ranges) {
        AppliedEdit e;
        e.patch = rewriter.wipe(addr, size);
        originals.emplace_back(addr, e.patch.original[0]);
        report.edits.bytes_patched += e.patch.original.size();
        edits.push_back(std::move(e));
        ++report.edits.blocks_patched;
      }
      return;

    case RemovalPolicy::kUnmapPages: {
      // Pages entirely covered by removed blocks can be dropped wholesale;
      // partially covered pages get their covered bytes wiped instead.
      std::map<uint64_t, uint64_t> covered;  // page -> covered bytes
      for (const auto& [addr, size] : ranges) {
        uint64_t cur = addr;
        uint64_t end = addr + size;
        while (cur < end) {
          uint64_t page = page_floor(cur);
          uint64_t chunk = std::min(end, page + kPageSize) - cur;
          covered[page] += chunk;
          cur += chunk;
        }
      }
      auto page_full = [&](uint64_t page) {
        auto it = covered.find(page);
        return it != covered.end() && it->second >= kPageSize;
      };

      // Wipe the partial-page fragments of every block.
      for (const auto& [addr, size] : ranges) {
        uint64_t cur = addr;
        uint64_t end = addr + size;
        bool patched = false;
        while (cur < end) {
          uint64_t page = page_floor(cur);
          uint64_t chunk = std::min(end, page + kPageSize) - cur;
          if (!page_full(page)) {
            AppliedEdit e;
            e.patch = rewriter.wipe(cur, chunk);
            report.edits.bytes_patched += e.patch.original.size();
            edits.push_back(std::move(e));
            patched = true;
          }
          cur += chunk;
        }
        if (patched) ++report.edits.blocks_patched;
        originals.emplace_back(addr, 0);  // unmap mode has no byte heal
      }

      // Drop the fully covered pages (content saved for re-enable).
      for (const auto& [page, bytes] : covered) {
        if (bytes < kPageSize) continue;
        const image::VmaImage* vma = img.vma_at(page);
        if (vma == nullptr) continue;
        AppliedEdit e;
        e.unmapped = true;
        e.vma_prot = vma->prot;
        e.vma_name = vma->name;
        e.patch.vaddr = page;
        e.patch.original = img.read_bytes(page, kPageSize);
        rewriter.unmap_pages(page, kPageSize);
        edits.push_back(std::move(e));
        ++report.edits.pages_unmapped;
      }
      return;
    }
  }
}

void DynaCut::install_redirects(rw::ImageRewriter& rewriter,
                                image::ProcessImage& img,
                                const std::vector<analysis::CovBlock>& blocks,
                                const std::string& redirect_module,
                                uint64_t redirect_offset,
                                CustomizeReport& report) {
  const image::ModuleImage* m = img.module_named(redirect_module);
  if (m == nullptr) {
    throw StateError("redirect: module not loaded: " + redirect_module);
  }
  const melf::Symbol* target_fn =
      m->binary->symbol_containing(redirect_offset);
  if (target_fn == nullptr) {
    throw StateError("redirect: target offset " + hex_addr(redirect_offset) +
                     " is not inside any function of " + redirect_module);
  }

  // Same-function restriction (paper §3.2.2): only trap sites in the error
  // handler's own function may be redirected; others terminate.
  std::vector<std::pair<uint64_t, uint64_t>> entries;  // trap -> target
  for (const auto& b : blocks) {
    if (b.module != redirect_module) continue;
    if (m->binary->symbol_containing(b.offset) == target_fn) {
      entries.emplace_back(m->base + b.offset, m->base + redirect_offset);
    }
  }
  if (entries.empty()) {
    throw StateError(
        "redirect: no removed block shares a function with the error "
        "handler (offset " +
        hex_addr(redirect_offset) + " in " + target_fn->name + ")");
  }

  if (img.module_named(kSigLibName) == nullptr) {
    size_t relocs_before = rewriter.relocs_applied();
    rewriter.inject_library(build_redirect_lib(/*capacity=*/256));
    report.timing.inject_ns +=
        model_.inject_cost(rewriter.relocs_applied() - relocs_before);
  }
  uint64_t count_addr = rewriter.symbol_addr(kSigLibName, "redirect_count");
  uint64_t table_addr = rewriter.symbol_addr(kSigLibName, "redirect_table");
  const melf::Symbol* table_sym =
      img.module_named(kSigLibName)->binary->find_symbol("redirect_table");
  uint64_t capacity = table_sym->size / 16;

  uint64_t n = img.read_u64(count_addr);
  if (n + entries.size() > capacity) {
    throw StateError("redirect table overflow");
  }
  for (const auto& [trap, target] : entries) {
    img.write_u64(table_addr + n * 16, trap);
    img.write_u64(table_addr + n * 16 + 8, target);
    ++n;
  }
  img.write_u64(count_addr, n);

  rewriter.set_sigaction(os::sig::kSigTrap,
                         rewriter.symbol_addr(kSigLibName, "dynacut_handler"),
                         rewriter.symbol_addr(kSigLibName,
                                              "dynacut_restorer"));
}

void DynaCut::install_verifier(
    rw::ImageRewriter& rewriter, image::ProcessImage& img,
    const std::vector<std::pair<uint64_t, uint8_t>>& originals,
    CustomizeReport& report) {
  // Inject once; a second verify-mode feature merges its originals into
  // the existing table (mirrors the redirect path). The capacity headroom
  // at first injection is what makes later merges possible.
  if (img.module_named(kVerifyLibName) == nullptr) {
    size_t relocs_before = rewriter.relocs_applied();
    rewriter.inject_library(build_verifier_lib(
        std::max<size_t>(originals.size(), 256), /*log_capacity=*/1024));
    report.timing.inject_ns +=
        model_.inject_cost(rewriter.relocs_applied() - relocs_before);
  }

  uint64_t count_addr = rewriter.symbol_addr(kVerifyLibName, "orig_count");
  uint64_t table_addr = rewriter.symbol_addr(kVerifyLibName, "orig_table");
  const melf::Symbol* table_sym =
      img.module_named(kVerifyLibName)->binary->find_symbol("orig_table");
  uint64_t capacity = table_sym->size / 16;

  uint64_t n = img.read_u64(count_addr);
  if (n + originals.size() > capacity) {
    throw StateError("verifier orig-table overflow");
  }
  for (const auto& [addr, byte] : originals) {
    img.write_u64(table_addr + n * 16, addr);
    img.write_u64(table_addr + n * 16 + 8, byte);
    ++n;
  }
  img.write_u64(count_addr, n);

  // The handler heals code in place, so code pages of modules containing
  // patched blocks must become writable-on-demand via mprotect; mprotect
  // only changes prot, the pages must stay mapped — nothing else to do here.
  rewriter.set_sigaction(
      os::sig::kSigTrap,
      rewriter.symbol_addr(kVerifyLibName, "dynacut_verify_handler"),
      rewriter.symbol_addr(kVerifyLibName, "dynacut_restorer"));
}

void DynaCut::install_stubs(
    rw::ImageRewriter& rewriter, image::ProcessImage& img,
    const StubPlans& plans, const CutRequest& req,
    std::vector<AppliedEdit>& edits,
    std::vector<std::pair<uint64_t, uint64_t>>& slots,
    CustomizeReport& report) {
  // The stub lib must sit within rel32 range of every redirected callsite;
  // the default inject hint deliberately is not (it mimics high mmap
  // randomization), so place it in the low gap above libc instead.
  if (img.module_named(kStubLibName) == nullptr) {
    auto lib = build_stub_lib(/*capacity=*/256);
    size_t relocs_before = rewriter.relocs_applied();
    rewriter.inject_library(
        lib, img.find_free(lib->image_size(), /*hint=*/0x70000000));
    report.timing.inject_ns +=
        model_.inject_cost(rewriter.relocs_applied() - relocs_before);
  }
  const image::ModuleImage* stub_mod = img.module_named(kStubLibName);
  uint64_t count_addr = rewriter.symbol_addr(kStubLibName, "stub_count");
  uint64_t slots_addr = rewriter.symbol_addr(kStubLibName, "stub_slots");
  const melf::Symbol* slots_sym = stub_mod->binary->find_symbol("stub_slots");
  const uint64_t capacity = slots_sym->size / kStubSlotBytes;

  uint64_t n = img.read_u64(count_addr);
  // One slot per distinct (entry, mode, value): every callsite of the same
  // cut entry shares a slot, so its hit counter aggregates per feature entry.
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, uint64_t> slot_for;
  auto get_slot = [&](uint64_t entry_addr, uint64_t mode,
                      uint64_t value) -> uint64_t {
    auto key = std::make_tuple(entry_addr, mode, value);
    auto it = slot_for.find(key);
    if (it != slot_for.end()) return it->second;
    if (n >= capacity) throw StateError("stub slot table overflow");
    uint64_t slot = n++;
    img.write_u64(slots_addr + slot * kStubSlotBytes + 8, mode);
    img.write_u64(slots_addr + slot * kStubSlotBytes + 16, value);
    slot_for.emplace(key, slot);
    slots.emplace_back(slot, entry_addr);
    return slot;
  };
  auto stub_fn = [&](uint64_t slot) {
    return rewriter.symbol_addr(kStubLibName,
                                "dynacut_stub_" + std::to_string(slot));
  };

  // kRedirect's same-function restriction carries over: only callsites in
  // the error handler's own function may branch to it (pop the call return
  // address first for a call, plain tail jump otherwise); everything else
  // deny-returns the configured result.
  const image::ModuleImage* rmod = nullptr;
  const melf::Symbol* redirect_fn = nullptr;
  if (req.trap == TrapPolicy::kRedirect) {
    rmod = img.module_named(req.feature.redirect_module);
    if (rmod != nullptr) {
      redirect_fn =
          rmod->binary->symbol_containing(req.feature.redirect_offset);
    }
  }

  for (const auto& [mod_name, sp] : plans) {
    const image::ModuleImage* m = img.module_named(mod_name);
    if (m == nullptr) continue;
    for (const auto& site : sp.sites) {
      uint64_t mode = kStubModeDenyRet;
      uint64_t value = req.stub_result;
      if (redirect_fn != nullptr && rmod == m &&
          m->binary->symbol_containing(site.instr) == redirect_fn) {
        mode = site.is_call ? kStubModePopJmp : kStubModeTailJmp;
        value = rmod->base + req.feature.redirect_offset;
      }
      uint64_t slot = get_slot(m->base + site.entry, mode, value);
      AppliedEdit e;
      e.stub = true;
      e.patch = rewriter.redirect_branch(m->base + site.instr, stub_fn(slot));
      report.edits.bytes_patched += e.patch.original.size();
      edits.push_back(std::move(e));
      ++report.edits.callsites_stubbed;
    }
    // PLT half: cross-module imports of a stubbed export go through the
    // importer's GOT slot — repoint the slot and the importer's existing
    // PLT stub becomes the branch into the deny stub.
    for (const auto& [name, entry] : sp.exports) {
      for (const auto& other : img.modules) {
        if (other.name == mod_name || other.name == kStubLibName) continue;
        if (other.binary == nullptr) continue;
        for (size_t i = 0; i < other.binary->imports.size(); ++i) {
          if (other.binary->imports[i] != name) continue;
          uint64_t slot =
              get_slot(m->base + entry, kStubModeDenyRet, req.stub_result);
          AppliedEdit e;
          e.stub = true;
          e.patch = rewriter.redirect_got(
              other.base + other.binary->got_slot_offset(i), stub_fn(slot));
          report.edits.bytes_patched += e.patch.original.size();
          edits.push_back(std::move(e));
          ++report.edits.got_slots_stubbed;
        }
      }
    }
  }
  img.write_u64(count_addr, n);
}

CustomizeReport DynaCut::restore_feature(const std::string& name) {
  auto it = applied_.find(name);
  if (it == applied_.end()) {
    throw StateError("feature not disabled: " + name);
  }

  CustomizeReport report;
  std::vector<int> pids = live_pids(&it->second);

  GroupTxn txn(os_, pids, store_, bus_, name, "restore",
               ckpt_mode_ == CkptMode::kIncremental ? &baselines_ : nullptr,
               ckpt_mode_ == CkptMode::kIncremental
                   ? image::RestoreMode::kDelta
                   : image::RestoreMode::kFull,
               tag_with({}, name));
  FaultStage stage = FaultStage::kCheckpoint;
  stage_or_rollback(txn, name, pids, stage, [&](int pid) {
    image::CkptStats ckpt;
    image::ProcessImage img = txn.dump(pid, faults_, &ckpt);
    report.timing.checkpoint_ns +=
        ckpt.incremental ? model_.checkpoint_delta_cost(ckpt.pages_dumped)
                         : model_.checkpoint_cost(ckpt.pages_total);
    report.edits.image_pages += img.pages.size();
    report.edits.pages_dumped += ckpt.pages_dumped;
    report.edits.pages_shared += ckpt.pages_shared;

    stage = FaultStage::kRewrite;
    rw::ImageRewriter rewriter(img, faults_, bus_);
    const std::vector<AppliedEdit>& edits = it->second.at(pid);
    size_t patched_before = report.edits.blocks_patched;
    size_t unmapped_before = report.edits.pages_unmapped;
    for (auto e = edits.rbegin(); e != edits.rend(); ++e) {
      if (e->unmapped) {
        img.add_vma(e->patch.vaddr, e->patch.original.size(), e->vma_prot,
                    e->vma_name);
        img.write_bytes(e->patch.vaddr, e->patch.original);
        ++report.edits.pages_unmapped;
      } else {
        rewriter.undo(e->patch);
        report.edits.bytes_patched += e->patch.original.size();
        ++report.edits.blocks_patched;
      }
    }
    // Charge the per-pid delta, not the running totals: cumulative counts
    // would over-charge code_update_ns for every process after the first.
    report.timing.code_update_ns +=
        model_.patch_cost(report.edits.blocks_patched - patched_before,
                          report.edits.pages_unmapped - unmapped_before);
    report.edits.pages_touched += rewriter.pages_touched();

    txn.stage(pid, std::move(img));
    ++report.edits.processes;
  });

  try {
    txn.commit(name, faults_,
               [&](const image::ProcessImage& img, const image::CkptStats&,
                   const image::RestoreStats& rst) {
                 report.timing.restore_ns +=
                     rst.in_place
                         ? model_.restore_delta_cost(rst.pages_restored)
                         : model_.restore_cost(img.pages.size());
                 report.edits.pages_restored += rst.pages_restored;
               });
  } catch (const CustomizeError&) {
    if (metrics_ != nullptr) metrics_->add("txn.aborts");
    throw;
  }

  // The traps are gone from the code; stop attributing hits to them. Stub
  // slots likewise: the callsite/GOT redirects were undone above, so their
  // guest counters can never advance again (the injected lib itself stays —
  // a later disable continues from the same slot cursor).
  for (const auto& [pid, edits] : it->second) {
    for (const AppliedEdit& e : edits) {
      if (!e.unmapped) trap_sites_.erase({pid, e.patch.vaddr});
    }
  }
  for (auto sit = stub_slots_.begin(); sit != stub_slots_.end();) {
    if (sit->second.feature == name) {
      stub_sites_.erase({sit->first.first, sit->second.entry_addr});
      sit = stub_slots_.erase(sit);
    } else {
      ++sit;
    }
  }

  applied_.erase(it);
  os_.charge_downtime(pids, report.timing.total_ns());
  finalize_obs(report, name, "restore");
  log_info("restored feature '" + name + "'");
  return report;
}

std::vector<uint64_t> DynaCut::verifier_log(int pid) const {
  const os::Process* p = os_.process(pid);
  if (p == nullptr) throw StateError("verifier_log: no process");
  VerifierLogRead read = read_verifier_log(*p);
  if (read.clamped && bus_ != nullptr) {
    bus_->emit(obs::Event(obs::ev::kWarning, pid)
                   .with("what", "verifier log_count exceeds log capacity")
                   .with("raw_count", read.raw_count)
                   .with("capacity", read.capacity));
  }
  // Surface entries not seen by a previous read as verifier.heal events.
  uint64_t& seen = heals_seen_[pid];
  for (uint64_t i = seen; i < read.addrs.size(); ++i) {
    if (bus_ != nullptr) {
      bus_->emit(obs::Event(obs::ev::kVerifierHeal, pid)
                     .with("addr", read.addrs[i]));
    }
    if (metrics_ != nullptr) metrics_->add("verifier.heals");
  }
  seen = std::max<uint64_t>(seen, read.addrs.size());
  return read.addrs;
}

uint64_t DynaCut::poll_stub_hits() {
  uint64_t total_new = 0;
  int cur_pid = -1;
  StubHitsRead read;
  bool have_read = false;
  // stub_slots_ is keyed (pid, slot) so one guest read serves all of a
  // pid's slots; the guest counter is untrusted, so read_stub_hits clamps.
  for (auto& [key, meta] : stub_slots_) {
    const auto& [pid, slot] = key;
    if (pid != cur_pid) {
      cur_pid = pid;
      have_read = false;
      const os::Process* p = os_.process(pid);
      if (p != nullptr && p->state != os::Process::State::kExited) {
        read = read_stub_hits(*p);
        have_read = true;
        if (read.clamped && bus_ != nullptr) {
          bus_->emit(obs::Event(obs::ev::kWarning, pid)
                         .with("what", "stub_count exceeds slot capacity")
                         .with("raw_count", read.raw_count)
                         .with("capacity", read.capacity));
        }
      }
    }
    if (!have_read || slot >= read.hits.size()) continue;
    const uint64_t hits = read.hits[slot];
    if (hits <= meta.seen_hits) continue;
    const uint64_t delta = hits - meta.seen_hits;
    meta.seen_hits = hits;
    total_new += delta;
    if (bus_ != nullptr) {
      // The annotator enriches the event with feature/policy and charges
      // the cut.stub_hits counters, exactly like a trap.hit delivery.
      bus_->emit(obs::Event(obs::ev::kStubHit, pid)
                     .with("addr", meta.entry_addr)
                     .with("hits", delta)
                     .with("total", hits));
    } else if (metrics_ != nullptr) {
      metrics_->add("cut.stub_hits", delta);
    }
  }
  return total_new;
}

}  // namespace dynacut::core
