// The DynaCut facade: dynamic code customization of running processes.
//
// A DynaCut instance manages one application (a process group rooted at a
// pid). Each customization follows the paper's pipeline:
//
//   checkpoint (freeze + dump to the in-memory image store)
//     -> rewrite the static image (block/wipe/unmap undesired blocks,
//        inject/extend the fault-handler library, set SIGTRAP sigaction)
//     -> restore (install rewritten state, thaw)
//
// and charges the virtual clock for the rewrite window via the CostModel —
// that charge is the paper's "service interruption time". All code edits
// keep undo records, so features can be re-enabled at any time
// (bidirectional customization).
//
// Every customization is transactional across the whole process group
// (core/txn.hpp): the group is frozen, every image checkpointed and
// rewritten (stage), and only then are the rewritten images restored
// (commit). A failure at any point rolls the group back to its pristine
// images and throws CustomizeError — no process is ever left running a
// partially customized group.
//
// Customizations are described by a CutRequest (feature + policies + obs
// labelling) and observed through the obs layer (DESIGN.md §9): attach an
// obs::EventBus/obs::Registry via set_observer() and every customization
// produces a bracketed event trace (txn.stage ... txn.commit, or
// txn.abort + txn.rollback with the staged events retracted) plus metric
// charges on success.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/cutcheck/checker.hpp"
#include "core/cost_model.hpp"
#include "core/txn.hpp"
#include "image/checkpoint.hpp"
#include "image/image.hpp"
#include "obs/bus.hpp"
#include "obs/registry.hpp"
#include "os/os.hpp"
#include "rewriter/rewriter.hpp"

namespace dynacut::core {

/// How undesired code is removed (paper §3.2.1). The enumerators live in
/// analysis::cutcheck so the static verifier and the facade share one
/// vocabulary; the historical core:: names remain the public spelling.
using RemovalPolicy = analysis::cutcheck::Removal;

/// What happens when blocked code is reached (paper §3.2.2).
using TrapPolicy = analysis::cutcheck::Trap;

/// How disabled code is reached-and-denied (ROADMAP item 3): kTrap pays a
/// SIGTRAP round-trip per entry, kStub retargets direct callsites and GOT
/// slots to an injected deny stub (one branch, no signal; int3 stays as the
/// safety net for non-callsite paths), kAuto stubs only entries the slicer
/// proves callsite-only.
using CutMechanism = analysis::cutcheck::Mechanism;

/// What DynaCut does with cutcheck findings before rewriting an image.
enum class CheckMode {
  kEnforce,  ///< reject plans with kError findings (StateError); default
  kWarn,     ///< log findings, apply anyway
  kOff,      ///< skip the verifier entirely
};

/// A feature to disable: its unique basic blocks (usually from
/// analysis::feature_diff) plus, for kRedirect, the error-handler location.
struct FeatureSpec {
  std::string name;
  std::vector<analysis::CovBlock> blocks;
  /// Redirect target (module + module-relative offset of the error path).
  /// Only blocks inside the same function as the target get redirect
  /// entries; other blocks fall through to terminate — the paper's
  /// same-function restriction.
  std::string redirect_module;
  uint64_t redirect_offset = 0;
};

/// One customization request — the single options struct consumed by
/// disable_feature() and preflight(). Designed for designated initializers:
///
///   dc.disable_feature({.feature = spec,
///                       .removal = RemovalPolicy::kUnmapPages,
///                       .trap = TrapPolicy::kRedirect,
///                       .label = "cve-2021-xxxx"});
///
/// Replaces the old positional (spec, removal, trap) surface, which remains
/// available as deprecated shims.
struct CutRequest {
  FeatureSpec feature;
  RemovalPolicy removal = RemovalPolicy::kBlockFirstByte;
  TrapPolicy trap = TrapPolicy::kTerminate;
  /// Per-request override of the instance-wide CheckMode; unset uses
  /// DynaCut::check_mode().
  std::optional<CheckMode> check;
  /// Per-rule cutcheck knobs (suppression, severity overrides); applied to
  /// preflight() and the enforce gate alike.
  analysis::cutcheck::CheckOptions check_options;
  /// Grow the feature's blocks to their static slice before planning
  /// (analysis::slicer::feature_slice): blocks dominated by the cut and
  /// functions only the cut calls join the plan, so the cut removes the
  /// feature's whole call tree instead of just the traced blocks. The
  /// slicer's cost is charged to TimingBreakdown::analysis_ns (offline,
  /// not service interruption) and a `slice.expand` event reports the
  /// growth. Expansion is skipped for modules with unresolved indirect
  /// transfers — the plan then applies as observed.
  bool expand_to_slice = false;
  /// Entry-denial mechanism. kStub/kAuto redirect direct callsites at
  /// wholly-cut functions (and GOT slots importing them) into a tiny
  /// injected error stub, so a disabled-feature probe costs one branch
  /// instead of a signal round-trip; residual reachability keeps the int3
  /// net with the trap policy above. Incompatible with kUnmapPages (the
  /// net needs mapped code).
  CutMechanism mechanism = CutMechanism::kTrap;
  /// Deny return value baked into mode-0 stub slots (the HTTP-403 analogue
  /// for callers that check the callee's result).
  uint64_t stub_result = 403;
  /// Label carried by this customization's obs transaction events; empty
  /// defaults to feature.name.
  std::string label;
  /// Extra string attributes attached to the txn.commit event.
  std::vector<std::pair<std::string, std::string>> tags;

  /// The effective obs label (explicit label or the feature name).
  const std::string& obs_label() const {
    return label.empty() ? feature.name : label;
  }
};

/// What a customization edited, summed across the process group.
struct EditStats {
  size_t processes = 0;       ///< processes customized
  size_t blocks_patched = 0;  ///< blocks patched (blocked/wiped/restored)
  size_t pages_unmapped = 0;  ///< whole pages unmapped (or re-mapped)
  size_t bytes_patched = 0;   ///< code bytes actually written
  uint64_t image_pages = 0;   ///< total pages in the images (logical size)
  uint64_t pages_dumped = 0;  ///< pages actually captured at checkpoint
  uint64_t pages_shared = 0;  ///< pages shared from baselines in O(1)
  uint64_t pages_restored = 0;  ///< pages actually written back at restore
  uint64_t pages_touched = 0;   ///< distinct pages the rewriter edited
  size_t callsites_stubbed = 0;  ///< direct call/jmp rel32 redirects
  size_t got_slots_stubbed = 0;  ///< GOT slots pointed at the deny stub
};

/// Checkpoint strategy for customizations (see image/checkpoint.hpp).
enum class CkptMode {
  kIncremental,  ///< dirty-only dumps + in-place delta restores; default
  kFull,         ///< always full dump + full rebuild (bench/property baseline)
};

/// The customization's footprint on the observability layer.
struct ObsSummary {
  std::string label;  ///< obs label the trace was emitted under
  uint64_t txn = 0;   ///< bus transaction id (0 = no bus attached)
  size_t events = 0;  ///< events committed inside the transaction
};

struct CustomizeReport {
  TimingBreakdown timing;  ///< virtual-time cost (service interruption)
  EditStats edits;
  ObsSummary obs;
};

class DynaCut {
 public:
  /// Manages the process group rooted at `root_pid` inside `os`. Every
  /// customization is pre-flighted by the cutcheck verifier according to
  /// `check` (kEnforce rejects provably unsafe plans before any checkpoint).
  DynaCut(os::Os& os, int root_pid, CostModel model = {},
          CheckMode check = CheckMode::kEnforce);
  ~DynaCut();
  DynaCut(const DynaCut&) = delete;
  DynaCut& operator=(const DynaCut&) = delete;

  void set_check_mode(CheckMode mode) { check_mode_ = mode; }
  CheckMode check_mode() const { return check_mode_; }

  /// Selects the checkpoint/restore strategy. kIncremental (default) keeps
  /// a per-pid Baseline after every commit so the next toggle dumps only
  /// dirty pages and restores only changed ones; kFull forces the original
  /// full-dump/full-rebuild path (and drops the kept baselines) — the two
  /// are observably equivalent, which tests/ckpt_delta_test.cpp asserts.
  void set_ckpt_mode(CkptMode mode) {
    ckpt_mode_ = mode;
    if (mode == CkptMode::kFull) baselines_.clear();
  }
  CkptMode ckpt_mode() const { return ckpt_mode_; }

  /// Attaches the observability layer (both optional, non-owning; nullptr
  /// detaches). Every subsequent customization emits its bracketed event
  /// trace on `bus` and, on success, charges `metrics`. DynaCut installs
  /// itself as the bus annotator so raw OS `trap.hit` events gain
  /// feature/policy attributes; if the bus has no clock yet it is wired to
  /// this OS's virtual clock.
  void set_observer(obs::EventBus* bus, obs::Registry* metrics = nullptr);
  obs::EventBus* event_bus() const { return bus_; }
  obs::Registry* metrics() const { return metrics_; }

  /// Installs a deterministic fault-injection plan (non-owning; pass
  /// nullptr to clear). Every subsequent customization threads it through
  /// checkpoint, image rewriting, library injection and restore — the hook
  /// tests/txn_test.cpp uses to prove group-atomicity under every failure
  /// point.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* fault_plan() const { return faults_; }

  /// Runs the cutcheck verifier on a request without touching any process —
  /// the same plans and rules disable_feature() uses, exposed for tooling
  /// and benches. Emits one `cutcheck.finding` event per diagnostic when a
  /// bus is attached.
  analysis::cutcheck::CheckReport preflight(const CutRequest& req) const;

  /// Disables a feature across every process of the group, atomically:
  /// either every process ends up customized or (on any failure) every
  /// process is rolled back untouched and CustomizeError is thrown naming
  /// the failing pid and stage. Throws StateError on policy violations
  /// before any process is touched (e.g. kRedirect with no block in the
  /// error handler's function, kVerify without kBlockFirstByte).
  CustomizeReport disable_feature(const CutRequest& req);

  [[deprecated("use preflight(const CutRequest&)")]]
  analysis::cutcheck::CheckReport preflight(const FeatureSpec& spec,
                                            RemovalPolicy removal,
                                            TrapPolicy trap_policy) const;

  [[deprecated("use disable_feature(const CutRequest&)")]]
  CustomizeReport disable_feature(const FeatureSpec& spec,
                                  RemovalPolicy removal,
                                  TrapPolicy trap_policy);

  /// Re-enables a previously disabled feature (restores bytes, re-maps
  /// unmapped ranges from the original binary). Transactional like
  /// disable_feature: an aborted restore leaves the feature fully disabled
  /// and every process untouched.
  CustomizeReport restore_feature(const std::string& name);

  /// Drops initialization-only code (from analysis::init_only). Removed
  /// blocks trap-terminate if ever reached, like the paper's default.
  CustomizeReport remove_init_code(const analysis::CoverageGraph& init_blocks,
                                   RemovalPolicy removal);

  bool feature_disabled(const std::string& name) const;

  /// The set of currently disabled features, sorted.
  std::vector<std::string> disabled_features() const;

  /// The current feature-set tag: the sorted '+'-joined disabled-feature
  /// set ("" = pristine). Every commit files its images in store() under
  /// image::ImageKey{pid, the tag as of that commit}, so a fleet
  /// orchestrator can fetch "the image of pid with exactly these cuts" and
  /// image::spawn_from_image it.
  std::string feature_set_tag() const;

  /// The store key of `pid`'s most recently committed image under the
  /// current feature set.
  image::ImageKey image_key(int pid) const {
    return image::ImageKey{pid, feature_set_tag()};
  }

  /// Addresses healed by the verifier library in `pid` (reads the injected
  /// library's log from live guest memory). Newly seen entries are emitted
  /// as `verifier.heal` events; a guest-scribbled out-of-range log count is
  /// clamped and surfaced as an `obs.warning` event instead of driving an
  /// over-read of guest memory.
  std::vector<uint64_t> verifier_log(int pid) const;

  /// Polls every stub-customized process's injected deny-stub library and
  /// emits one `stub.hit` event per slot with new hits since the last poll
  /// (attrs: addr = stubbed entry, hits = delta, total). The stub path
  /// never enters the host — hits are harvested from guest memory like the
  /// verifier log. The annotator enriches the events with feature/policy
  /// exactly as it does trap.hit, and charges the `cut.stub_hits` counter.
  /// Returns the total new hits observed.
  uint64_t poll_stub_hits();

  /// The tmpfs-like store holding the most recent image of each process.
  image::ImageStore& store() { return store_; }
  const CostModel& cost_model() const { return model_; }

 private:
  struct AppliedEdit {
    rw::PatchRecord patch;          // byte-level undo
    bool unmapped = false;          // range was unmapped instead of patched
    bool stub = false;              // callsite/GOT redirect, not a trap site
    uint32_t vma_prot = 0;          // original VMA protection (unmap undo)
    std::string vma_name;
  };

  using PerPidEdits = std::map<int, std::vector<AppliedEdit>>;

  /// What the annotator attaches to a trap at a known customized address.
  struct TrapSite {
    std::string feature;
    const char* policy;  // cutcheck trap_name() string
  };

  CustomizeReport apply(const CutRequest& req);

  /// feature_set_tag() of the prospective set: the current disabled set
  /// with `add` added and `remove` removed (either may be empty) — what
  /// the set will be once the in-flight commit lands.
  std::string tag_with(const std::string& add,
                       const std::string& remove) const;

  /// Live (non-exited) pids of the managed group, restricted to `subset`
  /// keys when given (restore_feature only touches recorded pids).
  std::vector<int> live_pids(const PerPidEdits* subset = nullptr) const;

  /// Wraps a staging loop: runs `body` per pid, converting any failure into
  /// CustomizeError(feature, stage, pid) after aborting `txn`. `body` must
  /// update `stage` as it crosses stage boundaries.
  void stage_or_rollback(GroupTxn& txn, const std::string& feature,
                         const std::vector<int>& pids, FaultStage& stage,
                         const std::function<void(int)>& body);

  /// The cutcheck gate at the top of apply(): extracts per-module plans
  /// from the root process's loaded modules, runs the verifier and acts on
  /// the request's effective check mode. Throws StateError in kEnforce mode
  /// on kError findings.
  void preflight_or_throw(const CutRequest& req) const;

  analysis::cutcheck::CheckReport run_check(const CutRequest& req) const;

  /// Resolves CutRequest.expand_to_slice: returns the request with its
  /// feature blocks grown to the slice closure (and the flag cleared), or
  /// the request unchanged when expansion is off. `stats`, when given,
  /// receives the aggregate expansion counters.
  CutRequest expanded_request(const CutRequest& req,
                              rw::SliceExpansion* stats = nullptr) const;

  /// Module name -> the stub redirection planned for it (slicer::plan_stubs
  /// over the root process's modules) — computed once per apply(), before
  /// the group freezes.
  using StubPlans = std::map<std::string, analysis::slicer::StubPlan>;
  StubPlans plan_stub_redirection(const CutRequest& req) const;

  /// Removal-policy application; fills `edits` and the redirect/original
  /// tables' raw entries. Blocks whose (module, offset) appears in `skip`
  /// are left untouched — their callsite redirect IS the denial
  /// (StubSite::skip_trap).
  void remove_blocks(rw::ImageRewriter& rw, const image::ProcessImage& img,
                     const std::vector<analysis::CovBlock>& blocks,
                     RemovalPolicy removal, std::vector<AppliedEdit>& edits,
                     std::vector<std::pair<uint64_t, uint8_t>>& originals,
                     CustomizeReport& report,
                     const std::map<std::string, std::set<uint64_t>>* skip =
                         nullptr);

  /// One allocated deny-stub slot in one process's injected stub library.
  struct StubSlotMeta {
    std::string feature;
    uint64_t entry_addr = 0;  ///< absolute address of the stubbed entry
    uint64_t seen_hits = 0;   ///< hits already surfaced as stub.hit events
  };

  /// Injects the deny-stub library (once per image, near the app so rel32
  /// reaches it), allocates slots, patches callsites and GOT slots.
  /// `slots` receives the (slot index, absolute entry) pairs allocated for
  /// this pid.
  void install_stubs(rw::ImageRewriter& rw, image::ProcessImage& img,
                     const StubPlans& plans, const CutRequest& req,
                     std::vector<AppliedEdit>& edits,
                     std::vector<std::pair<uint64_t, uint64_t>>& slots,
                     CustomizeReport& report);

  void install_redirects(
      rw::ImageRewriter& rw, image::ProcessImage& img,
      const std::vector<analysis::CovBlock>& blocks,
      const std::string& redirect_module, uint64_t redirect_offset,
      CustomizeReport& report);

  void install_verifier(
      rw::ImageRewriter& rw, image::ProcessImage& img,
      const std::vector<std::pair<uint64_t, uint8_t>>& originals,
      CustomizeReport& report);

  /// Closes the bus transaction with the final edit statistics (filling
  /// report.obs) and charges the registry — success paths only.
  void finalize_obs(CustomizeReport& report, const std::string& label,
                    const std::string& action,
                    const std::vector<std::pair<std::string, std::string>>&
                        tags = {});

  /// Bus annotator: enriches `trap.hit` and `stub.hit` events with the
  /// feature/policy that planted the site and charges the hit counters —
  /// fig8/fig10 timelines stay mechanism-agnostic.
  void annotate(obs::Event& e);

  os::Os& os_;
  int root_pid_;
  CostModel model_;
  CheckMode check_mode_ = CheckMode::kEnforce;
  CkptMode ckpt_mode_ = CkptMode::kIncremental;
  /// Per-pid dump baselines maintained across customizations (incremental
  /// mode): refreshed by every commit, erased by rollbacks.
  image::BaselineMap baselines_;
  FaultPlan* faults_ = nullptr;
  obs::EventBus* bus_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  image::ImageStore store_;
  std::map<std::string, PerPidEdits> applied_;
  /// (pid, trap addr) -> planted-by info, for trap.hit annotation.
  std::map<std::pair<int, uint64_t>, TrapSite> trap_sites_;
  /// (pid, stubbed entry addr) -> planted-by info, for stub.hit annotation.
  std::map<std::pair<int, uint64_t>, TrapSite> stub_sites_;
  /// (pid, slot index) -> slot bookkeeping for poll_stub_hits.
  std::map<std::pair<int, uint64_t>, StubSlotMeta> stub_slots_;
  /// Per-pid count of verifier-log entries already surfaced as events.
  mutable std::map<int, uint64_t> heals_seen_;
};

}  // namespace dynacut::core
