#include "core/handler_lib.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "melf/builder.hpp"
#include "os/syscall.hpp"

namespace dynacut::core {

using melf::ProgramBuilder;

namespace {

/// The 11-byte sigreturn stub registered as the signal restorer (the
/// paper's injected rt_sigreturn restorer code).
void emit_restorer(ProgramBuilder& b) {
  b.func("dynacut_restorer").sys(os::sys::kSigreturn);
}

}  // namespace

std::shared_ptr<const melf::Binary> build_redirect_lib(size_t capacity) {
  ProgramBuilder b(kSigLibName);
  b.data("redirect_count", std::vector<uint8_t>(8, 0));
  b.data("redirect_table", std::vector<uint8_t>(capacity * 16, 0));

  auto& f = b.func("dynacut_handler");
  // r1 = signal frame, r3 = fault (trap) address.
  f.lea_sym(6, "redirect_count")
      .load(7, 6, 0)
      .lea_sym(6, "redirect_table")
      .label("loop")
      .cmp_ri(7, 0)
      .je("not_found")
      .load(8, 6, 0)
      .cmp_rr(8, 3)
      .je("found")
      .add_ri(6, 16)
      .sub_ri(7, 1)
      .jmp("loop")
      .label("found")
      .load(8, 6, 8)
      .store(1, 0, 8)  // frame->saved_ip = redirect target
      .ret()
      .label("not_found")
      .mov_ri(1, 134)
      .sys(os::sys::kExit);

  emit_restorer(b);
  return std::make_shared<melf::Binary>(b.link());
}

std::shared_ptr<const melf::Binary> build_verifier_lib(size_t capacity,
                                                       size_t log_capacity) {
  ProgramBuilder b(kVerifyLibName);
  b.data("orig_count", std::vector<uint8_t>(8, 0));
  b.data("orig_table", std::vector<uint8_t>(capacity * 16, 0));
  b.data("log_count", std::vector<uint8_t>(8, 0));
  b.data_u64("log_cap", log_capacity);
  b.data("log_buf", std::vector<uint8_t>(log_capacity * 8, 0));

  auto& f = b.func("dynacut_verify_handler");
  // r1 = signal frame, r3 = fault (trap) address.
  f.lea_sym(6, "orig_count")
      .load(7, 6, 0)
      .lea_sym(6, "orig_table")
      .label("loop")
      .cmp_ri(7, 0)
      .je("not_found")
      .load(8, 6, 0)
      .cmp_rr(8, 3)
      .je("found")
      .add_ri(6, 16)
      .sub_ri(7, 1)
      .jmp("loop");

  // Found: r9 = original byte; mprotect the page RWX and heal in place.
  f.label("found")
      .load(9, 6, 8)
      .push(1)
      .push(3)
      .push(9)
      .mov_rr(1, 3)
      .mov_ri(6, ~static_cast<uint64_t>(kPageSize - 1))
      .and_rr(1, 6)
      .mov_ri(2, kPageSize)
      .mov_ri(3, kProtRead | kProtWrite | kProtExec)
      .sys(os::sys::kMprotect)
      .pop(9)
      .pop(3)
      .pop(1)
      .storeb(3, 0, 9);  // put the original byte back

  // Log the healed address (bounded).
  f.lea_sym(6, "log_count")
      .load(7, 6, 0)
      .lea_sym(8, "log_cap")
      .load(8, 8, 0)
      .cmp_rr(7, 8)
      .jae("done")
      .lea_sym(8, "log_buf")
      .mov_rr(10, 7)
      .shl_ri(10, 3)
      .add_rr(8, 10)
      .store(8, 0, 3)
      .add_ri(7, 1)
      .store(6, 0, 7)
      .label("done")
      .ret();  // sigreturn resumes at the healed instruction

  f.label("not_found").mov_ri(1, 135).sys(os::sys::kExit);

  emit_restorer(b);
  return std::make_shared<melf::Binary>(b.link());
}

std::shared_ptr<const melf::Binary> build_stub_lib(size_t capacity) {
  ProgramBuilder b(kStubLibName);
  b.data("stub_count", std::vector<uint8_t>(8, 0));
  b.data("stub_slots", std::vector<uint8_t>(capacity * kStubSlotBytes, 0));

  for (size_t i = 0; i < capacity; ++i) {
    const int32_t off = static_cast<int32_t>(i * kStubSlotBytes);
    auto& f = b.func("dynacut_stub_" + std::to_string(i));
    f.lea_sym(11, "stub_slots")
        .load(10, 11, off)  // hits++
        .add_ri(10, 1)
        .store(11, off, 10)
        .load(10, 11, off + 8)   // mode
        .load(11, 11, off + 16)  // value
        .cmp_ri(10, static_cast<int32_t>(kStubModePopJmp))
        .je("pop_jmp")
        .cmp_ri(10, static_cast<int32_t>(kStubModeTailJmp))
        .je("tail")
        .mov_rr(0, 11)  // deny-return: r0 = value
        .ret()
        .label("pop_jmp")
        .pop(10)  // drop the call-pushed return address
        .label("tail")
        .jmpr(11);  // into the app's own error path
  }
  return std::make_shared<melf::Binary>(b.link());
}

StubHitsRead read_stub_hits(const os::Process& p) {
  StubHitsRead out;
  const os::LoadedModule* lib = p.module_named(kStubLibName);
  if (lib == nullptr) return out;
  const melf::Symbol* count_sym = lib->binary->find_symbol("stub_count");
  const melf::Symbol* slots_sym = lib->binary->find_symbol("stub_slots");
  DYNACUT_ASSERT(count_sym != nullptr && slots_sym != nullptr);
  out.capacity = slots_sym->size / kStubSlotBytes;
  p.mem.peek(lib->base + count_sym->value, &out.raw_count, 8);
  // stub_count lives in guest memory: clamp before it drives the peek loop.
  uint64_t count = std::min<uint64_t>(out.raw_count, out.capacity);
  out.clamped = count != out.raw_count;
  out.hits.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    p.mem.peek(lib->base + slots_sym->value + i * kStubSlotBytes,
               &out.hits[i], 8);
  }
  return out;
}

VerifierLogRead read_verifier_log(const os::Process& p) {
  VerifierLogRead out;
  const os::LoadedModule* lib = p.module_named(kVerifyLibName);
  if (lib == nullptr) return out;
  const melf::Symbol* count_sym = lib->binary->find_symbol("log_count");
  const melf::Symbol* buf_sym = lib->binary->find_symbol("log_buf");
  DYNACUT_ASSERT(count_sym != nullptr && buf_sym != nullptr);
  out.capacity = buf_sym->size / 8;
  p.mem.peek(lib->base + count_sym->value, &out.raw_count, 8);
  // The guest owns log_count; trusting it would let a scribbled counter
  // drive the peek loop arbitrarily far past log_buf.
  uint64_t count = std::min<uint64_t>(out.raw_count, out.capacity);
  out.clamped = count != out.raw_count;
  out.addrs.resize(count);
  if (count > 0) {
    p.mem.peek(lib->base + buf_sym->value, out.addrs.data(), count * 8);
  }
  return out;
}

}  // namespace dynacut::core
