// Builders for the position-independent guest libraries DynaCut injects
// into checkpointed images (paper §3.2.2/§3.2.3 and Figure 5).
//
// Both libraries are fully PIC (IP-relative addressing only, no kAbs64
// relocations) so the rewriter can place them at any unused address. Their
// lookup tables are zero-filled .data that the host-side rewriter populates
// after injection, once absolute addresses are known.
#pragma once

#include <cstddef>
#include <memory>

#include "melf/binary.hpp"

namespace dynacut::core {

/// Name under which the redirect handler library is injected.
inline constexpr const char* kSigLibName = "libdynacut_sig.so";
/// Name of the verifier library.
inline constexpr const char* kVerifyLibName = "libdynacut_verify.so";

/// Redirect fault handler: on SIGTRAP it looks the faulting address up in
/// `redirect_table` ((trap_addr, target_addr) pairs, `redirect_count`
/// entries) and rewrites the signal frame's saved IP to the target — e.g.
/// the application's own "403 Forbidden" path. Unknown trap addresses
/// terminate the process with exit code 134.
/// Exports: dynacut_handler, dynacut_restorer, redirect_count,
/// redirect_table (capacity entries).
std::shared_ptr<const melf::Binary> build_redirect_lib(size_t capacity);

/// Verifier handler (§3.2.3): instead of terminating, it restores the
/// original first byte of a wrongly-removed block (found in `orig_table`),
/// logs the address into `log_buf`/`log_count`, and sigreturns so the healed
/// instruction re-executes. Requires the code pages to be W|X (the DynaCut
/// host arranges that when installing verify mode).
/// Exports: dynacut_verify_handler, dynacut_restorer, orig_count,
/// orig_table, log_count, log_buf (log_capacity u64 slots).
std::shared_ptr<const melf::Binary> build_verifier_lib(size_t capacity,
                                                       size_t log_capacity);

}  // namespace dynacut::core
