// Builders for the position-independent guest libraries DynaCut injects
// into checkpointed images (paper §3.2.2/§3.2.3 and Figure 5).
//
// Both libraries are fully PIC (IP-relative addressing only, no kAbs64
// relocations) so the rewriter can place them at any unused address. Their
// lookup tables are zero-filled .data that the host-side rewriter populates
// after injection, once absolute addresses are known.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "melf/binary.hpp"
#include "os/process.hpp"

namespace dynacut::core {

/// Name under which the redirect handler library is injected.
inline constexpr const char* kSigLibName = "libdynacut_sig.so";
/// Name of the verifier library.
inline constexpr const char* kVerifyLibName = "libdynacut_verify.so";
/// Name of the callsite/PLT deny-stub library (Mechanism::kStub).
inline constexpr const char* kStubLibName = "libdynacut_stub.so";

/// Bytes per stub slot record: {hits, mode, value, reserved}, all u64.
inline constexpr size_t kStubSlotBytes = 32;
/// Slot modes (the `mode` field, written by the host after injection).
inline constexpr uint64_t kStubModeDenyRet = 0;  ///< return `value` (errno)
inline constexpr uint64_t kStubModePopJmp = 1;   ///< drop call RA, jmp value
inline constexpr uint64_t kStubModeTailJmp = 2;  ///< jmp value (tail entry)

/// Redirect fault handler: on SIGTRAP it looks the faulting address up in
/// `redirect_table` ((trap_addr, target_addr) pairs, `redirect_count`
/// entries) and rewrites the signal frame's saved IP to the target — e.g.
/// the application's own "403 Forbidden" path. Unknown trap addresses
/// terminate the process with exit code 134.
/// Exports: dynacut_handler, dynacut_restorer, redirect_count,
/// redirect_table (capacity entries).
std::shared_ptr<const melf::Binary> build_redirect_lib(size_t capacity);

/// Verifier handler (§3.2.3): instead of terminating, it restores the
/// original first byte of a wrongly-removed block (found in `orig_table`),
/// logs the address into `log_buf`/`log_count`, and sigreturns so the healed
/// instruction re-executes. Requires the code pages to be W|X (the DynaCut
/// host arranges that when installing verify mode).
/// Exports: dynacut_verify_handler, dynacut_restorer, orig_count,
/// orig_table, log_count, log_buf (log_capacity u64 slots).
std::shared_ptr<const melf::Binary> build_verifier_lib(size_t capacity,
                                                       size_t log_capacity);

/// Deny-stub library (ROADMAP item 3, trap-free cuts): `capacity` slot
/// records plus one tiny entry function per slot. A redirected callsite or
/// GOT slot branches straight into its `dynacut_stub_<i>`, which bumps the
/// slot's hit counter and then denies according to the host-written mode:
/// return `value` (kStubModeDenyRet), pop the call-pushed return address and
/// jump to `value` — the app's own error path (kStubModePopJmp), or tail-jump
/// there (kStubModeTailJmp). Fully PIC; clobbers only caller-saved r10/r11.
/// Exports: stub_count (host-managed allocation cursor), stub_slots,
/// dynacut_stub_<i>.
std::shared_ptr<const melf::Binary> build_stub_lib(size_t capacity);

/// Per-slot hit counters of the injected stub library, read back from live
/// guest memory (the stub.hit poll — the stub path never enters the host,
/// so hits are harvested like the verifier log, not trapped).
struct StubHitsRead {
  std::vector<uint64_t> hits;  ///< one per allocated slot, slot order
  uint64_t raw_count = 0;      ///< in-guest stub_count field, unclamped
  uint64_t capacity = 0;       ///< stub_slots capacity in records
  bool clamped = false;        ///< raw_count exceeded capacity
};

/// Reads `p`'s injected stub library hit counters. The in-guest count is
/// untrusted and clamped to the table's real capacity (see
/// read_verifier_log). Returns an empty read when the library is absent.
StubHitsRead read_stub_hits(const os::Process& p);

/// The verifier library's heal log, read back from live guest memory.
struct VerifierLogRead {
  std::vector<uint64_t> addrs;  ///< healed addresses, oldest first
  uint64_t raw_count = 0;       ///< in-guest log_count field, unclamped
  uint64_t capacity = 0;        ///< log_buf capacity in entries
  bool clamped = false;         ///< raw_count exceeded the buffer capacity
};

/// Reads `p`'s injected verifier library log. The in-guest count field is
/// untrusted (the guest can scribble anything there); the read is clamped
/// to the table's real capacity and `clamped` reports when that happened —
/// the caller surfaces it as an obs warning instead of over-reading guest
/// memory. Returns an empty read when the library is not injected.
VerifierLogRead read_verifier_log(const os::Process& p);

}  // namespace dynacut::core
