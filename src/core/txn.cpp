#include "core/txn.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "image/checkpoint.hpp"

namespace dynacut::core {

GroupTxn::GroupTxn(os::Os& os, std::vector<int> pids,
                   image::ImageStore& store, obs::EventBus* bus,
                   const std::string& label, const std::string& action,
                   image::BaselineMap* baselines, image::RestoreMode mode,
                   std::string commit_tag)
    : os_(os),
      store_(store),
      bus_(bus),
      baselines_(baselines),
      mode_(mode),
      commit_tag_(std::move(commit_tag)),
      pids_(std::move(pids)) {
  os_.freeze_group(pids_);
  if (bus_ != nullptr) {
    bus_->begin_txn(label,
                    {obs::Attr::s("action", action),
                     obs::Attr::u("pids", static_cast<uint64_t>(pids_.size()))});
  }
}

GroupTxn::~GroupTxn() { abort(); }

GroupTxn::Entry* GroupTxn::entry(int pid) {
  for (auto& e : entries_) {
    if (e.pid == pid) return &e;
  }
  return nullptr;
}

image::ProcessImage GroupTxn::dump(int pid, FaultPlan* faults,
                                   image::CkptStats* stats) {
  DYNACUT_ASSERT(!finished_ && entry(pid) == nullptr);
  image::CkptReport rep = image::checkpoint(
      os_, image::CkptRequest{
               .pid = pid, .faults = faults, .bus = bus_,
               .baselines = baselines_});
  if (stats != nullptr) *stats = rep.stats;
  store_.put(image::ImageKey{pid, image::ImageKey::kPreTag}, rep.img);
  entries_.push_back(Entry{pid, rep.img, rep.stats, std::nullopt});
  return std::move(rep.img);
}

void GroupTxn::stage(int pid, image::ProcessImage img) {
  Entry* e = entry(pid);
  DYNACUT_ASSERT(e != nullptr && !e->staged.has_value());
  e->staged = std::move(img);
}

void GroupTxn::commit(const std::string& feature, FaultPlan* faults,
                      const RestoredFn& on_restored) {
  DYNACUT_ASSERT(!finished_);
  size_t restored = 0;
  try {
    for (auto& e : entries_) {
      DYNACUT_ASSERT(e.staged.has_value());
      store_.put(image::ImageKey{e.pid, commit_tag_}, *e.staged);
      image::RestoreStats rst = image::restore(
          os_, image::RestoreRequest{.pid = e.pid,
                                     .img = &*e.staged,
                                     .mode = mode_,
                                     .faults = faults,
                                     .bus = bus_});
      if (baselines_ != nullptr) {
        // The staged image is now the process's authoritative state; the
        // epoch is sampled *after* the restore so the pages the restore
        // installed are clean against the new baseline — only what the
        // guest writes from here on is dirty at the next dump.
        (*baselines_)[e.pid] =
            image::Baseline{*e.staged, os_.mem_epoch(e.pid)};
      }
      if (bus_ != nullptr) {
        bus_->emit(
            obs::Event(obs::ev::kCheckpointDelta, e.pid)
                .with("pages_dumped", e.ckpt.pages_dumped)
                .with("pages_shared", e.ckpt.pages_shared)
                .with("pages_restored", rst.pages_restored)
                .with("pages_kept", rst.pages_kept)
                .with("incremental", static_cast<uint64_t>(e.ckpt.incremental))
                .with("in_place", static_cast<uint64_t>(rst.in_place)));
      }
      if (on_restored) on_restored(*e.staged, e.ckpt, rst);
      ++restored;
    }
  } catch (const Error& err) {
    int pid = restored < entries_.size() ? entries_[restored].pid : -1;
    rollback(restored);
    if (bus_ != nullptr) bus_->abort_txn(err.what());
    finished_ = true;
    throw CustomizeError(feature, FaultStage::kRestore, pid, err.what());
  }
  // The bus transaction stays open: the caller closes it with the final
  // edit statistics once its own bookkeeping is done.
  finished_ = true;
}

void GroupTxn::rollback(size_t restored) {
  log_warn("customize rollback: re-staging " + std::to_string(restored) +
           " restored process(es) from pristine images");
  for (auto& e : entries_) {
    // The baseline may already point at a staged image this rollback is
    // about to overwrite; dirty tracking would still catch the rewrites
    // (restores stamp every page they change), but a fresh full dump next
    // time is the simpler invariant to reason about after a failure.
    if (baselines_ != nullptr) baselines_->erase(e.pid);
    os::Process* p = os_.process(e.pid);
    if (p == nullptr || p->state == os::Process::State::kExited) continue;
    if (p->state != os::Process::State::kFrozen) os_.freeze(e.pid);
    // No fault plan here: rollback must not itself be injectable, or an
    // aborted customization could be made to strand the group.
    image::restore(os_, image::RestoreRequest{.pid = e.pid,
                                              .img = &e.pristine});
  }
  // Pids frozen by the constructor but never dumped stay untouched; thaw.
  os_.thaw_group(pids_);
}

void GroupTxn::abort() {
  if (finished_) return;
  os_.thaw_group(pids_);
  if (bus_ != nullptr) bus_->abort_txn("staging aborted");
  finished_ = true;
}

}  // namespace dynacut::core
