// Transactional customization: the two-phase (stage/commit) protocol that
// makes every DynaCut customization atomic across a whole process group.
//
// The paper's safety argument (§3.2) — rewriting happens on a frozen image
// between dump and restore, so a process never observes half-edited code —
// holds per process. GroupTxn extends it to the group:
//
//   stage phase   freeze *all* processes, checkpoint each one (the pristine
//                 image is kept for rollback and filed in the tmpfs store
//                 under ImageKey{pid, "pre"}), rewrite each image. No live
//                 process is touched; any failure aborts by thawing the
//                 untouched group.
//   commit phase  restore every staged image in order. If a restore fails,
//                 the already-restored (patched) processes are re-frozen
//                 and re-staged from their saved pristine images, so the
//                 group comes back exactly as it was before the call.
//
// Failures surface as CustomizeError naming the feature, the failing stage
// and the pid — the structured contract callers (and retry logic) key on.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "image/checkpoint.hpp"
#include "image/image.hpp"
#include "obs/bus.hpp"
#include "os/os.hpp"

namespace dynacut::core {

using ::dynacut::FaultPlan;
using ::dynacut::FaultStage;
using ::dynacut::fault_stage_name;
using ::dynacut::InjectedFault;
using ::dynacut::kNumFaultStages;

/// A customization failed part-way and was rolled back: no process of the
/// group retains any of its edits. Derives from StateError so call sites
/// that predate the transactional protocol keep catching what they caught.
class CustomizeError : public StateError {
 public:
  CustomizeError(const std::string& feature, FaultStage stage, int pid,
                 const std::string& why)
      : StateError("customize '" + feature + "' failed at " +
                   fault_stage_name(stage) + " of pid " +
                   std::to_string(pid) + " (rolled back): " + why),
        feature_(feature),
        stage_(stage),
        pid_(pid) {}

  const std::string& feature() const { return feature_; }
  FaultStage stage() const { return stage_; }
  int pid() const { return pid_; }

 private:
  std::string feature_;
  FaultStage stage_;
  int pid_;
};

/// One stage/commit transaction over a fixed set of pids. Freezes the whole
/// group on construction; the destructor aborts (thaw-back, no edits) if
/// commit() was never reached.
class GroupTxn {
 public:
  /// Freezes every pid (all-or-nothing). `store` receives the pristine
  /// images at dump() time and the rewritten images at commit() time.
  ///
  /// `bus` (optional) mirrors the transaction onto the observability layer:
  /// construction opens a bus transaction (emitting `txn.stage` labelled
  /// `label`, with `action` = "disable"/"restore"), every event emitted
  /// during staging is buffered, and abort/rollback retracts them and emits
  /// `txn.abort` + `txn.rollback`. A successful commit() leaves the bus
  /// transaction open so the caller can close it via
  /// EventBus::commit_txn with the final edit statistics attached.
  ///
  /// `baselines` (optional, non-owning) switches the transaction to
  /// incremental checkpointing: dump() consults the per-pid baseline for a
  /// dirty-only dump, and commit() refreshes each entry with the restored
  /// image plus a fresh memory epoch. Rollback erases the touched entries
  /// (the group is back on its pristine images; the next dump re-baselines
  /// with a full dump). `mode` selects delta (default) or full restores at
  /// commit time — rollback always restores pristine images via the delta
  /// path, which is observably identical and keeps the group warm.
  ///
  /// `commit_tag` is the feature_set_tag committed images are filed under
  /// in `store` (image::ImageKey{pid, commit_tag}) — the sorted
  /// '+'-joined disabled-feature set the group runs after this commit;
  /// empty means the pristine baseline set.
  GroupTxn(os::Os& os, std::vector<int> pids, image::ImageStore& store,
           obs::EventBus* bus = nullptr, const std::string& label = {},
           const std::string& action = {},
           image::BaselineMap* baselines = nullptr,
           image::RestoreMode mode = image::RestoreMode::kDelta,
           std::string commit_tag = {});
  ~GroupTxn();
  GroupTxn(const GroupTxn&) = delete;
  GroupTxn& operator=(const GroupTxn&) = delete;

  const std::vector<int>& pids() const { return pids_; }

  /// Checkpoints `pid` (already frozen by the constructor), keeps the
  /// pristine image for rollback, files it under
  /// ImageKey{pid, ImageKey::kPreTag}, and returns a working copy for the
  /// rewriter. The dump is incremental when the transaction has a valid
  /// baseline for `pid`; `stats` (optional) receives what the dump did.
  image::ProcessImage dump(int pid, FaultPlan* faults,
                           image::CkptStats* stats = nullptr);

  /// Records the rewritten image to install for `pid` at commit time.
  void stage(int pid, image::ProcessImage img);

  /// Per-restore accounting callback: the staged image, what its dump did
  /// and what its restore just did.
  using RestoredFn = std::function<void(
      const image::ProcessImage&, const image::CkptStats&,
      const image::RestoreStats&)>;

  /// Restores every staged image (in staging order) and thaws the group.
  /// `on_restored` is invoked after each successful per-process restore
  /// (cost-model accounting). Each restore refreshes the pid's baseline
  /// (when attached) and emits a `checkpoint.delta` event pairing the dump
  /// and restore page counts. On any failure the whole group is rolled
  /// back to its pristine images and CustomizeError is thrown.
  void commit(const std::string& feature, FaultPlan* faults,
              const RestoredFn& on_restored = nullptr);

  /// Aborts a transaction whose staging failed: thaws every process the
  /// constructor froze. Memory was never touched (rewrites happen on
  /// images), so thawing alone restores the pre-call world. Idempotent.
  void abort();

  bool finished() const { return finished_; }

 private:
  struct Entry {
    int pid;
    image::ProcessImage pristine;
    image::CkptStats ckpt;
    std::optional<image::ProcessImage> staged;
  };

  Entry* entry(int pid);
  /// Commit failed after `restored` processes were already running patched
  /// code: re-freeze them and re-stage their pristine images; everything
  /// not yet restored is still frozen and untouched, so re-stage those
  /// pristine images too (covers a restore that died mid-installation).
  void rollback(size_t restored);

  os::Os& os_;
  image::ImageStore& store_;
  obs::EventBus* bus_ = nullptr;
  image::BaselineMap* baselines_ = nullptr;
  image::RestoreMode mode_ = image::RestoreMode::kDelta;
  std::string commit_tag_;
  std::vector<int> pids_;
  std::vector<Entry> entries_;
  bool finished_ = false;
};

}  // namespace dynacut::core
