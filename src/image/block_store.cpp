#include "image/block_store.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dynacut::image {

BlockStore& BlockStore::global() {
  static BlockStore store;
  return store;
}

uint64_t BlockStore::hash_bytes(std::span<const uint8_t> bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

PageRef BlockStore::intern(PageRef block) {
  DYNACUT_ASSERT(block != nullptr && block->size() == kPageSize);
  ++stats_.lookups;
  auto& bucket = buckets_[hash(*block)];
  bool collided = false;
  for (auto it = bucket.begin(); it != bucket.end();) {
    PageRef candidate = it->lock();
    if (candidate == nullptr) {
      it = bucket.erase(it);
      continue;
    }
    if (candidate == block) return block;  // already the canonical block
    // Full byte compare: guards hash collisions and entries gone stale via
    // in-place mutation of a uniquely-owned block (see header).
    if (*candidate == *block) {
      ++stats_.dedup_hits;
      // The candidate gains a holder behind its owner's back: a live
      // address space that still owns it uniquely may have its write
      // fast-path raw pointer armed, and we cannot reach that cache from
      // here. Bumping the share epoch disarms every armed cache, so the
      // owner's next write re-checks use_count and COW-clones.
      vm::bump_share_epoch();
      return candidate;
    }
    collided = true;
    ++it;
  }
  if (collided) ++stats_.hash_collisions;
  bucket.push_back(block);
  return block;
}

PageRef BlockStore::intern_bytes(std::span<const uint8_t> bytes) {
  DYNACUT_ASSERT(bytes.size() == kPageSize);
  ++stats_.lookups;
  auto& bucket = buckets_[hash(bytes)];
  bool collided = false;
  for (auto it = bucket.begin(); it != bucket.end();) {
    PageRef candidate = it->lock();
    if (candidate == nullptr) {
      it = bucket.erase(it);
      continue;
    }
    if (std::equal(candidate->begin(), candidate->end(), bytes.begin(),
                   bytes.end())) {
      ++stats_.dedup_hits;
      // Same as intern(): sharing behind the owner's back must disarm any
      // armed write fast-path cache (see there).
      vm::bump_share_epoch();
      return candidate;
    }
    collided = true;
    ++it;
  }
  if (collided) ++stats_.hash_collisions;
  auto block =
      std::make_shared<std::vector<uint8_t>>(bytes.begin(), bytes.end());
  bucket.push_back(block);
  return block;
}

size_t BlockStore::unique_blocks() {
  size_t live = 0;
  for (auto& [h, bucket] : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (it->expired()) {
        it = bucket.erase(it);
      } else {
        ++live;
        ++it;
      }
    }
  }
  return live;
}

uint64_t BlockStore::resident_bytes() { return unique_blocks() * kPageSize; }

void BlockStore::set_hash_for_test(HashFn fn) {
  hash_ = std::move(fn);
  buckets_.clear();  // existing entries are bucketed under the old hash
}

}  // namespace dynacut::image
