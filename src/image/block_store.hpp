// Fleet-wide content-addressed page-block store.
//
// PR 5 made page blocks refcounted *within* one pid's baseline chain: a
// checkpoint shares the live block, every downstream copy shares it again,
// and the first write clones (COW). This store generalizes the sharing
// across the whole fleet: every page that enters an image is interned by
// content (hash of its bytes), so 100 identical minikv workers hold one
// resident copy of .text and a fleet-wide toggle's patched pages are stored
// once, not 100 times.
//
// The table holds weak references only — it never keeps a block alive.
// When the last image/address-space drops a block, the entry dies with it
// and resident_bytes() stops counting it (refcount-aware accounting).
//
// Correctness does not depend on entries staying fresh: a block that is
// uniquely owned (use_count == 1) may legally be mutated in place by its
// owner, leaving its table entry describing stale bytes. Every lookup
// therefore re-validates candidates with a full byte compare — the same
// compare that guards against hash collisions — so a stale entry can only
// cost a missed dedup, never a wrong share. Once intern() hands a block to
// a second holder, use_count > 1 and the clone-on-shared choke points
// (PageStore::writable, AddressSpace::writable_page) keep it immutable.
//
// One hazard needs more than the use_count contract: a dedup hit can give
// a *live, sole-owned* page block a second holder behind its owning
// AddressSpace's back, while that owner's write fast path still holds an
// armed raw pointer into the block (legal when it was uniquely owned).
// intern() cannot reach that cache, so every dedup hit bumps the global
// vm::share_epoch(); AddressSpace::write() re-validates its armed cache
// against the epoch before each fast-path store, forcing the owner's next
// write through writable_page(), which sees the new use_count and clones.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/constants.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::image {

using vm::PageRef;

class BlockStore {
 public:
  /// The fleet-wide store every PageStore interns through. One per host
  /// (process images from different Os instances dedup against each other,
  /// exactly like images on one machine's tmpfs).
  static BlockStore& global();

  /// Returns the canonical block for `block`'s bytes: an existing live
  /// block with identical content when one is known (dedup), otherwise
  /// `block` itself, registered as the new canonical entry. O(1) expected;
  /// hash hits are confirmed with a full byte compare (collision guard).
  PageRef intern(PageRef block);

  /// intern() for raw bytes: returns an existing identical block or a
  /// fresh copy of `bytes`. `bytes` must be exactly one page.
  PageRef intern_bytes(std::span<const uint8_t> bytes);

  struct Stats {
    uint64_t lookups = 0;          ///< intern calls
    uint64_t dedup_hits = 0;       ///< an existing identical block was reused
    uint64_t hash_collisions = 0;  ///< hash matched but bytes did not
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Unique live blocks / their payload bytes. Dead entries (every holder
  /// gone) are pruned as a side effect and not counted.
  size_t unique_blocks();
  uint64_t resident_bytes();

  /// The page hash (FNV-1a 64 over the page bytes).
  static uint64_t hash_bytes(std::span<const uint8_t> bytes);

  using HashFn = std::function<uint64_t(std::span<const uint8_t>)>;
  /// Test hook: replaces the hash (nullptr restores FNV-1a) and clears the
  /// table, so tests can force deterministic hash collisions and prove the
  /// full-bytes compare keeps dedup sound.
  void set_hash_for_test(HashFn fn);

 private:
  uint64_t hash(std::span<const uint8_t> bytes) const {
    return hash_ ? hash_(bytes) : hash_bytes(bytes);
  }

  using WeakRef = std::weak_ptr<std::vector<uint8_t>>;
  /// hash -> candidate blocks. More than one live entry per hash only under
  /// a genuine collision; dead entries are pruned on every bucket walk.
  std::unordered_map<uint64_t, std::vector<WeakRef>> buckets_;
  HashFn hash_;
  Stats stats_;
};

}  // namespace dynacut::image
