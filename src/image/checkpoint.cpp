#include "image/checkpoint.hpp"

#include "common/error.hpp"

namespace dynacut::image {

namespace {

FdImage dump_fd(int fd, const os::FileDesc& desc) {
  FdImage out;
  out.fd = fd;
  out.kind = desc.kind;
  out.live = desc.sock;
  if (desc.kind == os::FileDesc::Kind::kSocket && desc.sock != nullptr) {
    const os::Socket& s = *desc.sock;
    out.sock_kind = static_cast<uint8_t>(s.kind);
    out.port = s.port;
    if (s.kind == os::Socket::Kind::kStream && s.end.conn != nullptr) {
      const auto& rx = s.end.rx();
      const auto& tx = s.end.tx();
      out.rx_bytes.assign(rx.begin(), rx.end());
      out.tx_bytes.assign(tx.begin(), tx.end());
    }
  }
  return out;
}

vm::AddressSpace build_address_space(const ProcessImage& img) {
  vm::AddressSpace mem;
  for (const auto& v : img.vmas) {
    mem.map(v.start, v.end - v.start, v.prot, v.name);
  }
  for (const auto& [addr, bytes] : img.pages) {
    mem.install_page(addr, bytes);
  }
  return mem;
}


}  // namespace

ProcessImage checkpoint(os::Os& os, int pid, FaultPlan* faults,
                        obs::EventBus* bus) {
  FaultPlan::fire(faults, FaultStage::kCheckpoint);
  os::Process* p = os.process(pid);
  if (p == nullptr || p->state == os::Process::State::kExited) {
    throw StateError("checkpoint: no live process " + std::to_string(pid));
  }
  if (p->state != os::Process::State::kFrozen) os.freeze(pid);

  ProcessImage img;
  img.core.proc_name = p->name;
  img.core.pid = p->pid;
  img.core.ppid = p->ppid;
  img.core.cpu = p->cpu;
  img.core.sigactions = p->sigactions;
  img.core.signal_frames = p->signal_frames;

  for (const auto& [start, vma] : p->mem.vmas()) {
    img.vmas.push_back(VmaImage{vma.start, vma.end, vma.prot, vma.name});
  }
  // Unlike stock CRIU we also dump file-backed executable pages — the
  // paper's criu/mem.c modification — which in this substrate simply means
  // dumping every populated page.
  for (uint64_t page : p->mem.populated_pages()) {
    auto bytes = p->mem.page_bytes(page);
    img.pages.emplace(page,
                      std::vector<uint8_t>(bytes.begin(), bytes.end()));
  }
  for (const auto& [fd, desc] : p->fds) {
    img.fds.push_back(dump_fd(fd, desc));
  }
  for (const auto& m : p->modules) {
    img.modules.push_back(ModuleImage{m.name, m.base, m.size, m.binary});
  }
  if (bus != nullptr) {
    bus->emit(obs::Event(obs::ev::kCheckpointDump, pid)
                  .with("pages", static_cast<uint64_t>(img.pages.size()))
                  .with("vmas", static_cast<uint64_t>(img.vmas.size()))
                  .with("modules", static_cast<uint64_t>(img.modules.size())));
  }
  return img;
}

void restore(os::Os& os, int pid, const ProcessImage& img,
             FaultPlan* faults, obs::EventBus* bus) {
  os::Process* p = os.process(pid);
  if (p == nullptr || p->state != os::Process::State::kFrozen) {
    throw StateError("restore: process not frozen: " + std::to_string(pid));
  }
  FaultPlan::fire(faults, FaultStage::kRestore);

  p->mem = build_address_space(img);
  // The whole address space was rebuilt: every decoded instruction the
  // process cached is stale (the asid check would also catch this, but the
  // explicit clear frees the dead pages immediately).
  p->dcache.clear();
  p->cpu = img.core.cpu;
  p->sigactions = img.core.sigactions;
  p->signal_frames = img.core.signal_frames;
  p->name = img.core.proc_name;

  // Re-attach fds: live sockets carried in the image resume untouched
  // (TCP_REPAIR); the serialized queues are authoritative only for detached
  // restores.
  p->fds.clear();
  int max_fd = 2;
  for (const auto& f : img.fds) {
    os::FileDesc desc;
    desc.kind = f.kind;
    desc.sock = f.live;
    p->fds[f.fd] = desc;
    max_fd = std::max(max_fd, f.fd);
  }
  p->next_fd = max_fd + 1;

  p->modules.clear();
  for (const auto& m : img.modules) {
    p->modules.push_back(os::LoadedModule{m.name, m.base, m.size, m.binary});
  }

  p->at_block_start = true;
  os.thaw(pid);
  if (bus != nullptr) {
    bus->emit(obs::Event(obs::ev::kCheckpointRestore, pid)
                  .with("pages", static_cast<uint64_t>(img.pages.size())));
  }
}

int restore_new(os::Os& os, const ProcessImage& img) {
  auto p = std::make_unique<os::Process>();
  p->name = img.core.proc_name;
  p->ppid = 0;
  p->mem = build_address_space(img);
  p->cpu = img.core.cpu;
  p->sigactions = img.core.sigactions;
  p->signal_frames = img.core.signal_frames;
  p->at_block_start = true;

  int max_fd = 2;
  for (const auto& f : img.fds) {
    os::FileDesc desc;
    desc.kind = f.kind;
    if (f.kind == os::FileDesc::Kind::kSocket) {
      auto sock = std::make_shared<os::Socket>();
      sock->kind = static_cast<os::Socket::Kind>(f.sock_kind);
      sock->port = f.port;
      if (sock->kind == os::Socket::Kind::kStream) {
        // Recreate the connection with its buffered inbound bytes; the old
        // peer is gone, so mark the remote side closed.
        auto conn = std::make_shared<os::Conn>();
        conn->to_b.assign(f.rx_bytes.begin(), f.rx_bytes.end());
        conn->a_open = false;
        sock->end = os::SockEnd{conn, /*side_a=*/false};
      }
      desc.sock = sock;
      if (sock->kind == os::Socket::Kind::kListen) {
        os.register_listener(sock);
      }
    }
    p->fds[f.fd] = desc;
    max_fd = std::max(max_fd, f.fd);
  }
  p->next_fd = max_fd + 1;

  for (const auto& m : img.modules) {
    p->modules.push_back(os::LoadedModule{m.name, m.base, m.size, m.binary});
  }
  return os.adopt(std::move(p));
}

std::vector<ProcessImage> checkpoint_group(os::Os& os, int root_pid) {
  std::vector<ProcessImage> out;
  for (int pid : os.process_group(root_pid)) {
    out.push_back(checkpoint(os, pid));
  }
  return out;
}

}  // namespace dynacut::image
