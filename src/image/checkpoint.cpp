#include "image/checkpoint.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dynacut::image {

namespace {

FdImage dump_fd(int fd, const os::FileDesc& desc) {
  FdImage out;
  out.fd = fd;
  out.kind = desc.kind;
  out.live = desc.sock;
  if (desc.kind == os::FileDesc::Kind::kSocket && desc.sock != nullptr) {
    const os::Socket& s = *desc.sock;
    out.sock_kind = static_cast<uint8_t>(s.kind);
    out.port = s.port;
    if (s.kind == os::Socket::Kind::kStream && s.end.conn != nullptr) {
      const auto& rx = s.end.rx();
      const auto& tx = s.end.tx();
      out.rx_bytes.assign(rx.begin(), rx.end());
      out.tx_bytes.assign(tx.begin(), tx.end());
    }
  }
  return out;
}

vm::AddressSpace build_address_space(const ProcessImage& img) {
  vm::AddressSpace mem;
  for (const auto& v : img.vmas) {
    mem.map(v.start, v.end - v.start, v.prot, v.name);
  }
  for (const auto& [addr, block] : img.pages) {
    // Share the image's block; the first write after restore clones it.
    mem.install_page_block(addr, block);
  }
  return mem;
}

/// Reconciles the live address space with the image in place instead of
/// rebuilding it: the asid survives, untouched pages keep their blocks and
/// generation counters, and only real differences cost work.
void delta_restore_mem(vm::AddressSpace& mem, const ProcessImage& img,
                       RestoreStats& st) {
  // --- VMA reconcile ----------------------------------------------------
  // Targets keyed by start; a live VMA with the same extent and name is
  // kept (re-protected if needed), anything else is unmapped, then missing
  // targets are mapped. Unmapping discards the covered pages — the page
  // pass below re-installs whatever the image holds there.
  std::map<uint64_t, const VmaImage*> targets;
  for (const auto& v : img.vmas) targets.emplace(v.start, &v);

  std::vector<vm::Vma> live;
  live.reserve(mem.vmas().size());
  for (const auto& [start, v] : mem.vmas()) live.push_back(v);

  for (const vm::Vma& v : live) {
    auto it = targets.find(v.start);
    if (it != targets.end() && it->second->end == v.end &&
        it->second->name == v.name) {
      if (it->second->prot != v.prot) {
        mem.protect(v.start, v.size(), it->second->prot);
        ++st.vmas_changed;
      }
      targets.erase(it);  // consumed: an exact-extent match
    } else {
      mem.unmap(v.start, v.size());
      ++st.vmas_changed;
    }
  }
  for (const auto& [start, v] : targets) {
    mem.map(v->start, v->end - v->start, v->prot, v->name);
    ++st.vmas_changed;
  }

  // --- Page reconcile ---------------------------------------------------
  // Snapshot the live set before installing anything, then walk the image:
  // same block pointer — nothing to do (the common case after an
  // incremental dump, where the image shares live blocks); same bytes under
  // a different identity — re-share the image's block without a generation
  // bump (decoded code stays valid); different bytes — install, which bumps
  // the generation so the decode cache drops exactly that page.
  std::vector<uint64_t> live_pages = mem.populated_pages();
  for (const auto& [addr, block] : img.pages) {
    if (mem.page_live(addr)) {
      vm::PageRef cur = mem.page_block(addr);
      if (cur == block) {
        ++st.pages_kept;
      } else if (*cur == *block) {
        mem.adopt_page_block(addr, block);
        ++st.pages_kept;
      } else {
        mem.install_page_block(addr, block);
        ++st.pages_restored;
      }
    } else {
      mem.install_page_block(addr, block);
      ++st.pages_restored;
    }
  }
  for (uint64_t addr : live_pages) {
    if (img.pages.count(addr) == 0) {
      mem.drop_page(addr);
      ++st.pages_dropped;
    }
  }
}

/// Resolves the request's effective baseline: an explicit one wins, then
/// the per-pid map; null means a full dump.
const Baseline* effective_baseline(const CkptRequest& req) {
  if (req.baseline != nullptr) return req.baseline;
  if (req.baselines != nullptr) {
    auto it = req.baselines->find(req.pid);
    if (it != req.baselines->end()) return &it->second;
  }
  return nullptr;
}

obs::Event& label_event(obs::Event& e, const std::string& label,
                        const std::vector<std::pair<std::string, std::string>>&
                            tags) {
  if (!label.empty()) e.with("label", label);
  for (const auto& [k, v] : tags) e.with(k, v);
  return e;
}

}  // namespace

CkptReport checkpoint(os::Os& os, const CkptRequest& req) {
  const int pid = req.pid;
  FaultPlan* faults = req.faults;
  obs::EventBus* bus = req.bus;
  const Baseline* baseline = effective_baseline(req);
  FaultPlan::fire(faults, FaultStage::kCheckpoint);
  os::Process* p = os.process(pid);
  if (p == nullptr || p->state == os::Process::State::kExited) {
    throw StateError("checkpoint: no live process " + std::to_string(pid));
  }
  if (p->state != os::Process::State::kFrozen) os.freeze(pid);

  ProcessImage img;
  img.core.proc_name = p->name;
  img.core.pid = p->pid;
  img.core.ppid = p->ppid;
  img.core.cpu = p->cpu;
  img.core.sigactions = p->sigactions;
  img.core.signal_frames = p->signal_frames;

  for (const auto& [start, vma] : p->mem.vmas()) {
    img.vmas.push_back(VmaImage{vma.start, vma.end, vma.prot, vma.name});
  }

  // Unlike stock CRIU we also dump file-backed executable pages — the
  // paper's criu/mem.c modification — which in this substrate simply means
  // dumping every populated page. "Dumping" a page shares its refcounted
  // block into the image (O(1)); the next live write clones it (COW).
  CkptStats st;
  std::optional<std::vector<uint64_t>> dirty;
  if (baseline != nullptr) {
    dirty = p->mem.dirty_pages_since(baseline->epoch);
  }
  if (dirty.has_value()) {
    // Incremental: start from the baseline's page table (pointer shares),
    // then overlay just the dirty set. Dirty pages that are no longer live
    // (dropped or unmapped since the baseline) leave the image too.
    st.incremental = true;
    img.pages = baseline->img.pages;
    for (uint64_t page : *dirty) {
      if (p->mem.page_live(page)) {
        img.pages.put(page, p->mem.page_block(page));
        ++st.pages_dumped;
      } else {
        st.pages_dropped += img.pages.erase(page);
      }
    }
    st.pages_shared = img.pages.size() - st.pages_dumped;
  } else {
    for (uint64_t page : p->mem.populated_pages()) {
      img.pages.put(page, p->mem.page_block(page));
    }
    st.pages_dumped = img.pages.size();
  }
  st.pages_total = img.pages.size();

  for (const auto& [fd, desc] : p->fds) {
    img.fds.push_back(dump_fd(fd, desc));
  }
  for (const auto& m : p->modules) {
    img.modules.push_back(ModuleImage{m.name, m.base, m.size, m.binary});
  }
  if (bus != nullptr) {
    obs::Event e(obs::ev::kCheckpointDump, pid);
    e.with("pages", static_cast<uint64_t>(img.pages.size()))
        .with("pages_dumped", st.pages_dumped)
        .with("pages_shared", st.pages_shared)
        .with("incremental", static_cast<uint64_t>(st.incremental))
        .with("vmas", static_cast<uint64_t>(img.vmas.size()))
        .with("modules", static_cast<uint64_t>(img.modules.size()));
    bus->emit(std::move(label_event(e, req.label, req.tags)));
  }
  return CkptReport{std::move(img), st};
}

ProcessImage checkpoint(os::Os& os, int pid, FaultPlan* faults,
                        obs::EventBus* bus, const Baseline* baseline,
                        CkptStats* stats) {
  CkptReport rep = checkpoint(
      os, CkptRequest{
              .pid = pid, .faults = faults, .bus = bus, .baseline = baseline});
  if (stats != nullptr) *stats = rep.stats;
  return std::move(rep.img);
}

RestoreStats restore(os::Os& os, const RestoreRequest& req) {
  DYNACUT_ASSERT(req.img != nullptr);
  const int pid = req.pid;
  const ProcessImage& img = *req.img;
  FaultPlan* faults = req.faults;
  obs::EventBus* bus = req.bus;
  const RestoreMode mode = req.mode;
  os::Process* p = os.process(pid);
  if (p == nullptr || p->state != os::Process::State::kFrozen) {
    throw StateError("restore: process not frozen: " + std::to_string(pid));
  }
  FaultPlan::fire(faults, FaultStage::kRestore);

  RestoreStats st;
  st.pages_total = img.pages.size();
  if (mode == RestoreMode::kFull) {
    p->mem = build_address_space(img);
    // The whole address space was rebuilt: every decoded instruction the
    // process cached is stale (the asid check would also catch this, but
    // the explicit clear frees the dead pages immediately).
    p->dcache.clear();
    // Fused traces hold generation-slot pointers into the old address
    // space; drop them with it.
    p->sbcache.clear();
    st.pages_restored = img.pages.size();
    st.vmas_changed = img.vmas.size();
  } else {
    // In-place delta: the asid survives, so decode-cache entries for pages
    // the image didn't change stay valid — no dcache.clear(). Superblocks
    // likewise retire lazily: any trace spanning a page the delta rewrote
    // fails its generation check at the next lookup/dispatch.
    delta_restore_mem(p->mem, img, st);
    st.in_place = true;
  }
  p->cpu = img.core.cpu;
  p->sigactions = img.core.sigactions;
  p->signal_frames = img.core.signal_frames;
  p->name = img.core.proc_name;

  // Re-attach fds: live sockets carried in the image resume untouched
  // (TCP_REPAIR); the serialized queues are authoritative only for detached
  // restores.
  p->fds.clear();
  int max_fd = 2;
  for (const auto& f : img.fds) {
    os::FileDesc desc;
    desc.kind = f.kind;
    desc.sock = f.live;
    p->fds[f.fd] = desc;
    max_fd = std::max(max_fd, f.fd);
  }
  p->next_fd = max_fd + 1;

  p->modules.clear();
  for (const auto& m : img.modules) {
    p->modules.push_back(os::LoadedModule{m.name, m.base, m.size, m.binary});
  }

  p->at_block_start = true;
  os.thaw(pid);
  if (bus != nullptr) {
    obs::Event e(obs::ev::kCheckpointRestore, pid);
    e.with("pages", static_cast<uint64_t>(img.pages.size()))
        .with("pages_restored", st.pages_restored)
        .with("pages_kept", st.pages_kept)
        .with("in_place", static_cast<uint64_t>(st.in_place));
    bus->emit(std::move(label_event(e, req.label, req.tags)));
  }
  return st;
}

RestoreStats restore(os::Os& os, int pid, const ProcessImage& img,
                     FaultPlan* faults, obs::EventBus* bus, RestoreMode mode) {
  return restore(os, RestoreRequest{.pid = pid,
                                    .img = &img,
                                    .mode = mode,
                                    .faults = faults,
                                    .bus = bus});
}

int spawn_from_image(os::Os& os, const ProcessImage& img,
                     const SpawnOpts& opts) {
  auto p = std::make_unique<os::Process>();
  p->name = opts.name.empty() ? img.core.proc_name : opts.name;
  p->ppid = 0;
  p->mem = build_address_space(img);
  p->cpu = img.core.cpu;
  p->sigactions = img.core.sigactions;
  p->signal_frames = img.core.signal_frames;
  p->at_block_start = true;

  int max_fd = 2;
  for (const auto& f : img.fds) {
    os::FileDesc desc;
    desc.kind = f.kind;
    if (f.kind == os::FileDesc::Kind::kSocket) {
      auto sock = std::make_shared<os::Socket>();
      sock->kind = static_cast<os::Socket::Kind>(f.sock_kind);
      sock->port = f.port;
      if (sock->kind == os::Socket::Kind::kListen && opts.listen_port) {
        // Scale-out rebind: the guest's bind already ran before the image
        // was dumped, so the new port takes effect at socket re-creation.
        sock->port = *opts.listen_port;
      }
      if (sock->kind == os::Socket::Kind::kStream) {
        // Recreate the connection with its buffered inbound bytes; the old
        // peer is gone, so mark the remote side closed.
        auto conn = std::make_shared<os::Conn>();
        conn->to_b.assign(f.rx_bytes.begin(), f.rx_bytes.end());
        conn->a_open = false;
        sock->end = os::SockEnd{conn, /*side_a=*/false};
      }
      desc.sock = sock;
      if (sock->kind == os::Socket::Kind::kListen) {
        os.register_listener(sock);
      }
    }
    p->fds[f.fd] = desc;
    max_fd = std::max(max_fd, f.fd);
  }
  p->next_fd = max_fd + 1;

  for (const auto& m : img.modules) {
    p->modules.push_back(os::LoadedModule{m.name, m.base, m.size, m.binary});
  }

  if (opts.warm_code) {
    for (const auto& [start, vma] : p->mem.vmas()) {
      if ((vma.prot & kProtExec) != 0) {
        p->dcache.warm(p->mem, vma.start, vma.end);
      }
    }
  }
  return os.adopt(std::move(p));
}

int restore_new(os::Os& os, const ProcessImage& img) {
  return spawn_from_image(os, img);
}

std::vector<ProcessImage> checkpoint_group(os::Os& os, int root_pid,
                                           FaultPlan* faults,
                                           obs::EventBus* bus,
                                           const BaselineMap* baselines,
                                           std::vector<CkptStats>* stats) {
  std::vector<ProcessImage> out;
  for (int pid : os.process_group(root_pid)) {
    CkptReport rep = checkpoint(os, CkptRequest{.pid = pid,
                                                .faults = faults,
                                                .bus = bus,
                                                .baselines = baselines});
    out.push_back(std::move(rep.img));
    if (stats != nullptr) stats->push_back(rep.stats);
  }
  return out;
}

}  // namespace dynacut::image
