// Checkpoint/restore between live osim processes and ProcessImages — the
// `criu dump` / `criu restore` analogue, including the paper's modification
// of dumping executable/file-backed pages (§3.3) and TCP_REPAIR-style
// connection survival.
#pragma once

#include "image/image.hpp"
#include "os/os.hpp"

namespace dynacut::image {

/// Freezes `pid` and dumps its full state. The process stays frozen (and
/// thus makes no progress) until restore() — that window is DynaCut's
/// service-interruption time.
ProcessImage checkpoint(os::Os& os, int pid);

/// Replaces the frozen process's state with `img` and thaws it. Live socket
/// objects referenced by the image's fd table are re-attached (TCP_REPAIR).
void restore(os::Os& os, int pid, const ProcessImage& img);

/// Restores an image as a brand-new process (e.g. booting from a stored
/// post-init image instead of rerunning initialization). Listening sockets
/// are re-created and re-registered; established connections come back with
/// their buffered bytes but a closed peer. Returns the new pid.
int restore_new(os::Os& os, const ProcessImage& img);

/// checkpoint() for a whole process group (Nginx master + workers).
std::vector<ProcessImage> checkpoint_group(os::Os& os, int root_pid);

}  // namespace dynacut::image
