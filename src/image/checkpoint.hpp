// Checkpoint/restore between live osim processes and ProcessImages — the
// `criu dump` / `criu restore` analogue, including the paper's modification
// of dumping executable/file-backed pages (§3.3) and TCP_REPAIR-style
// connection survival.
//
// Two optimizations shrink the freeze window on repeated customizations:
//
//   Incremental dump  — given a Baseline (the previous image plus the
//   memory epoch it was taken at), checkpoint() copies the baseline's page
//   table in O(pages) pointer shares and re-dumps only pages the
//   soft-dirty analogue (vm::AddressSpace::dirty_pages_since) reports as
//   modified. CRIU's pre-copy/soft-dirty trick.
//
//   Delta restore     — restore() diffs the image against live memory and
//   writes back only pages that actually differ, preserving the address
//   space instance (asid) and every decoded-instruction cache entry for
//   untouched pages. The full-rebuild path remains available and
//   observably equivalent (RestoreMode::kFull).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "image/image.hpp"
#include "obs/bus.hpp"
#include "os/os.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::image {

/// A dump baseline for incremental checkpointing: the image of a process
/// plus the epoch its address space was at when the image was authoritative
/// (sampled right after the image was restored or dumped). COW page blocks
/// keep the pair O(metadata): unmodified live pages still share the
/// baseline's blocks.
struct Baseline {
  ProcessImage img;
  vm::MemEpoch epoch;
};

/// Per-pid baselines a customization engine keeps between toggles.
using BaselineMap = std::map<int, Baseline>;

/// What one checkpoint dump did (cost accounting + observability).
struct CkptStats {
  uint64_t pages_total = 0;    ///< pages in the resulting image
  uint64_t pages_dumped = 0;   ///< pages captured from live memory
  uint64_t pages_shared = 0;   ///< pages shared from the baseline in O(1)
  uint64_t pages_dropped = 0;  ///< baseline pages no longer live
  bool incremental = false;    ///< the dirty-tracking path was taken
};

/// One checkpoint dump, described as data — the options struct consumed by
/// checkpoint(). Designed for designated initializers, mirroring
/// core::CutRequest:
///
///   auto [img, stats] = image::checkpoint(os, {.pid = pid,
///                                              .baselines = &baselines,
///                                              .label = "pre-toggle"});
///
/// Replaces the positional (os, pid, faults, bus, baseline, stats) surface,
/// which remains available as a deprecated shim.
struct CkptRequest {
  int pid = 0;
  /// Deterministic fault-injection hook (FaultStage::kCheckpoint fires
  /// before anything is touched).
  FaultPlan* faults = nullptr;
  /// Receives a `checkpoint.dump` event once the dump succeeds.
  obs::EventBus* bus = nullptr;
  /// Incremental-dump baseline: an explicit `baseline` wins; otherwise
  /// `baselines` is consulted by pid. Either may be null.
  const Baseline* baseline = nullptr;
  const BaselineMap* baselines = nullptr;
  /// Obs labelling: attached to the `checkpoint.dump` event as string
  /// attributes (label, then each tag pair).
  std::string label;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// What checkpoint() returns: the image plus what the dump did.
struct CkptReport {
  ProcessImage img;
  CkptStats stats;
};

/// Freezes `req.pid` (a no-op if the group transaction already froze it)
/// and dumps its full state. The process stays frozen (and thus makes no
/// progress) until restore() — that window is DynaCut's
/// service-interruption time.
///
/// With a baseline whose epoch still matches the live address space, the
/// dump is incremental: only pages dirtied since the baseline epoch are
/// captured, everything else is shared from the baseline image. A stale or
/// missing baseline (rebuilt address space, restarted clock) silently falls
/// back to a full dump — the result is identical either way.
CkptReport checkpoint(os::Os& os, const CkptRequest& req);

[[deprecated("use checkpoint(os, image::CkptRequest{.pid = ...})")]]
ProcessImage checkpoint(os::Os& os, int pid, FaultPlan* faults = nullptr,
                        obs::EventBus* bus = nullptr,
                        const Baseline* baseline = nullptr,
                        CkptStats* stats = nullptr);

enum class RestoreMode {
  kDelta,  ///< write back only pages that differ from live memory
  kFull,   ///< rebuild the address space from scratch (new asid, cold caches)
};

/// What one restore did (cost accounting + observability).
struct RestoreStats {
  uint64_t pages_total = 0;     ///< pages in the restored image
  uint64_t pages_restored = 0;  ///< pages whose content actually changed
  uint64_t pages_kept = 0;      ///< live pages already identical (kept warm)
  uint64_t pages_dropped = 0;   ///< live-only pages depopulated
  uint64_t vmas_changed = 0;    ///< VMAs mapped/unmapped/re-protected
  bool in_place = false;        ///< delta path: asid and caches preserved
};

/// One restore, described as data — the options struct consumed by
/// restore(). Designed for designated initializers:
///
///   image::restore(os, {.pid = pid, .img = &img,
///                       .mode = image::RestoreMode::kFull});
///
/// Replaces the positional (os, pid, img, faults, bus, mode) surface, which
/// remains available as a deprecated shim.
struct RestoreRequest {
  int pid = 0;
  const ProcessImage* img = nullptr;  ///< required: the image to install
  RestoreMode mode = RestoreMode::kDelta;
  /// Deterministic fault-injection hook (FaultStage::kRestore fires after
  /// validation but before any mutation, so an injected failure leaves the
  /// process frozen and untouched).
  FaultPlan* faults = nullptr;
  /// Receives a `checkpoint.restore` event on success.
  obs::EventBus* bus = nullptr;
  /// Obs labelling: attached to the `checkpoint.restore` event as string
  /// attributes (label, then each tag pair).
  std::string label;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Replaces the frozen process's state with `*req.img` and thaws it. Live
/// socket objects referenced by the image's fd table are re-attached
/// (TCP_REPAIR).
///
/// RestoreMode::kDelta (the default) reconciles the image against live
/// memory in place: VMAs are mapped/unmapped/re-protected to match, and
/// only pages whose bytes differ are written back — pages the rewrite never
/// touched keep their page generation, so the decode cache stays warm. The
/// observable process state is identical to RestoreMode::kFull.
RestoreStats restore(os::Os& os, const RestoreRequest& req);

[[deprecated("use restore(os, image::RestoreRequest{.pid = ..., .img = ...})")]]
RestoreStats restore(os::Os& os, int pid, const ProcessImage& img,
                     FaultPlan* faults = nullptr, obs::EventBus* bus = nullptr,
                     RestoreMode mode = RestoreMode::kDelta);

/// Options for spawn_from_image().
struct SpawnOpts {
  /// Process name; empty keeps the image's proc_name.
  std::string name;
  /// Rebind every listening socket of the image to this port (scale-out:
  /// each worker forked from one template image serves its own port).
  std::optional<uint16_t> listen_port;
  /// Pre-decode the image's executable VMAs into the fresh decode cache so
  /// the worker starts warm instead of paying cold fetch misses.
  bool warm_code = false;
};

/// CRIU restore-as-template: forks a brand-new serving process on `os`
/// directly from a (possibly customized) stored image. The worker gets a
/// fresh pid/asid/fd table; its pages *share* the image's
/// content-addressed blocks in O(pages) pointer installs, so 100 workers
/// cost one resident image plus their private write sets. Listening
/// sockets are re-created (rebound to `opts.listen_port` when set) and
/// registered; established connections come back detached with their
/// buffered bytes. Returns the new pid.
///
/// A free function of the image layer (not an Os member): it consumes
/// image::ProcessImage, which sits above the OS in the link order.
int spawn_from_image(os::Os& os, const ProcessImage& img,
                     const SpawnOpts& opts = {});

/// Restores an image as a brand-new process (e.g. booting from a stored
/// post-init image instead of rerunning initialization). Listening sockets
/// are re-created and re-registered; established connections come back with
/// their buffered bytes but a closed peer. Returns the new pid.
///
/// Equivalent to spawn_from_image(os, img, {}) — kept as the historical
/// spelling of the default-options case.
int restore_new(os::Os& os, const ProcessImage& img);

/// checkpoint() for a whole process group (Nginx master + workers): every
/// member goes through the same fault hook, per-member `checkpoint.dump`
/// events, and — when `baselines` holds an entry for a member — the same
/// incremental dirty-dump path as a single-process checkpoint. Per-member
/// dump stats are appended to `stats` when provided, in group order.
std::vector<ProcessImage> checkpoint_group(
    os::Os& os, int root_pid, FaultPlan* faults = nullptr,
    obs::EventBus* bus = nullptr, const BaselineMap* baselines = nullptr,
    std::vector<CkptStats>* stats = nullptr);

}  // namespace dynacut::image
