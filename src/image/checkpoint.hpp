// Checkpoint/restore between live osim processes and ProcessImages — the
// `criu dump` / `criu restore` analogue, including the paper's modification
// of dumping executable/file-backed pages (§3.3) and TCP_REPAIR-style
// connection survival.
#pragma once

#include "common/fault.hpp"
#include "image/image.hpp"
#include "obs/bus.hpp"
#include "os/os.hpp"

namespace dynacut::image {

/// Freezes `pid` (a no-op if the group transaction already froze it) and
/// dumps its full state. The process stays frozen (and thus makes no
/// progress) until restore() — that window is DynaCut's
/// service-interruption time. `faults` is the deterministic fault-injection
/// hook (FaultStage::kCheckpoint fires before anything is touched). `bus`
/// (optional) receives a `checkpoint.dump` event once the dump succeeds.
ProcessImage checkpoint(os::Os& os, int pid, FaultPlan* faults = nullptr,
                        obs::EventBus* bus = nullptr);

/// Replaces the frozen process's state with `img` and thaws it. Live socket
/// objects referenced by the image's fd table are re-attached (TCP_REPAIR).
/// FaultStage::kRestore fires after validation but before any mutation, so
/// an injected restore failure leaves the process frozen and untouched.
/// `bus` (optional) receives a `checkpoint.restore` event on success.
void restore(os::Os& os, int pid, const ProcessImage& img,
             FaultPlan* faults = nullptr, obs::EventBus* bus = nullptr);

/// Restores an image as a brand-new process (e.g. booting from a stored
/// post-init image instead of rerunning initialization). Listening sockets
/// are re-created and re-registered; established connections come back with
/// their buffered bytes but a closed peer. Returns the new pid.
int restore_new(os::Os& os, const ProcessImage& img);

/// checkpoint() for a whole process group (Nginx master + workers).
std::vector<ProcessImage> checkpoint_group(os::Os& os, int root_pid);

}  // namespace dynacut::image
