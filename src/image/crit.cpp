#include "image/crit.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/hex.hpp"

namespace dynacut::image {

namespace {

std::string to_hex_blob(std::span<const uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::vector<uint8_t> from_hex_blob(const std::string& s) {
  if (s.size() % 2 != 0) throw DecodeError("odd-length hex blob");
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw DecodeError(std::string("bad hex digit '") + c + "'");
  };
  std::vector<uint8_t> out(s.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(nib(s[2 * i]) << 4 | nib(s[2 * i + 1]));
  }
  return out;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// "key=value" accessor over a token list; throws when missing.
std::string field(const std::vector<std::string>& toks,
                  const std::string& key) {
  for (const auto& t : toks) {
    if (t.rfind(key + "=", 0) == 0) return t.substr(key.size() + 1);
  }
  throw DecodeError("missing field '" + key + "'");
}

uint64_t field_u64(const std::vector<std::string>& toks,
                   const std::string& key) {
  return parse_u64(field(toks, key));
}

}  // namespace

std::string show_core(const ProcessImage& img) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof buf, "core name=%s pid=%d ppid=%d\n",
                img.core.proc_name.c_str(), img.core.pid, img.core.ppid);
  out += buf;
  for (int i = 0; i < isa::kNumRegs; ++i) {
    std::snprintf(buf, sizeof buf, "reg %d %s\n", i,
                  hex_addr(img.core.cpu.regs[static_cast<size_t>(i)]).c_str());
    out += buf;
  }
  out += "ip " + hex_addr(img.core.cpu.ip) + "\n";
  out += "flags " + hex_addr(img.core.cpu.pack_flags()) + "\n";
  for (size_t i = 0; i < img.core.sigactions.size(); ++i) {
    const os::SigAction& sa = img.core.sigactions[i];
    if (sa.handler == 0 && sa.restorer == 0) continue;
    std::snprintf(buf, sizeof buf, "sigaction %zu handler=%s restorer=%s\n",
                  i, hex_addr(sa.handler).c_str(),
                  hex_addr(sa.restorer).c_str());
    out += buf;
  }
  for (uint64_t f : img.core.signal_frames) {
    out += "sigframe " + hex_addr(f) + "\n";
  }
  return out;
}

std::string show_mems(const ProcessImage& img) {
  std::string out;
  char buf[192];
  for (const auto& v : img.vmas) {
    std::snprintf(buf, sizeof buf, "vma %s %s prot=%u name=%s\n",
                  hex_addr(v.start).c_str(), hex_addr(v.end).c_str(), v.prot,
                  v.name.c_str());
    out += buf;
  }
  return out;
}

std::string decode_text(const ProcessImage& img, bool include_pages) {
  std::string out = "crsim-image v1\n";
  out += show_core(img);
  out += show_mems(img);

  for (const auto& [addr, block] : img.pages) {
    if (include_pages) {
      out += "page " + hex_addr(addr) + " " + to_hex_blob(*block) + "\n";
    } else {
      out += "page " + hex_addr(addr) + " <" +
             std::to_string(block->size()) + " bytes>\n";
    }
  }

  char buf[160];
  for (const auto& f : img.fds) {
    std::snprintf(buf, sizeof buf, "fd %d kind=%u sock=%u port=%u rx=",
                  f.fd, static_cast<unsigned>(f.kind),
                  static_cast<unsigned>(f.sock_kind), f.port);
    out += buf;
    out += to_hex_blob(f.rx_bytes) + " tx=" + to_hex_blob(f.tx_bytes) + "\n";
  }

  for (const auto& m : img.modules) {
    out += "module name=" + m.name + " base=" + hex_addr(m.base) +
           " size=" + hex_addr(m.size);
    if (include_pages) {
      out += " melf=" + to_hex_blob(m.binary->encode());
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

ProcessImage encode_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "crsim-image v1") {
    throw DecodeError("crit: bad header");
  }

  ProcessImage img;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto toks = tokens_of(line);
    const std::string& kind = toks[0];

    if (kind == "core") {
      img.core.proc_name = field(toks, "name");
      img.core.pid = static_cast<int>(field_u64(toks, "pid"));
      img.core.ppid = static_cast<int>(field_u64(toks, "ppid"));
    } else if (kind == "reg") {
      if (toks.size() != 3) throw DecodeError("crit: bad reg line");
      uint64_t idx = parse_u64(toks[1]);
      if (idx >= isa::kNumRegs) throw DecodeError("crit: bad reg index");
      img.core.cpu.regs[idx] = parse_u64(toks[2]);
    } else if (kind == "ip") {
      img.core.cpu.ip = parse_u64(toks.at(1));
    } else if (kind == "flags") {
      img.core.cpu.unpack_flags(parse_u64(toks.at(1)));
    } else if (kind == "sigaction") {
      uint64_t signo = parse_u64(toks.at(1));
      if (signo >= os::sig::kNumSignals) {
        throw DecodeError("crit: bad signal number");
      }
      img.core.sigactions[signo] = os::SigAction{
          field_u64(toks, "handler"), field_u64(toks, "restorer")};
    } else if (kind == "sigframe") {
      img.core.signal_frames.push_back(parse_u64(toks.at(1)));
    } else if (kind == "vma") {
      VmaImage v;
      v.start = parse_u64(toks.at(1));
      v.end = parse_u64(toks.at(2));
      v.prot = static_cast<uint32_t>(field_u64(toks, "prot"));
      v.name = field(toks, "name");
      img.vmas.push_back(std::move(v));
    } else if (kind == "page") {
      uint64_t addr = parse_u64(toks.at(1));
      std::vector<uint8_t> bytes = from_hex_blob(toks.at(2));
      if (bytes.size() != kPageSize) {
        throw DecodeError("crit: page blob is not one page");
      }
      img.pages.put_bytes(addr, bytes);
    } else if (kind == "fd") {
      FdImage f;
      f.fd = static_cast<int>(parse_u64(toks.at(1)));
      f.kind = static_cast<os::FileDesc::Kind>(field_u64(toks, "kind"));
      f.sock_kind = static_cast<uint8_t>(field_u64(toks, "sock"));
      f.port = static_cast<uint16_t>(field_u64(toks, "port"));
      f.rx_bytes = from_hex_blob(field(toks, "rx"));
      f.tx_bytes = from_hex_blob(field(toks, "tx"));
      img.fds.push_back(std::move(f));
    } else if (kind == "module") {
      ModuleImage m;
      m.name = field(toks, "name");
      m.base = field_u64(toks, "base");
      m.size = field_u64(toks, "size");
      auto payload = from_hex_blob(field(toks, "melf"));
      m.binary =
          std::make_shared<melf::Binary>(melf::Binary::decode(payload));
      img.modules.push_back(std::move(m));
    } else if (kind == "end") {
      saw_end = true;
      break;
    } else {
      throw DecodeError("crit: unknown record '" + kind + "'");
    }
  }
  if (!saw_end) throw DecodeError("crit: missing end record");
  return img;
}

}  // namespace dynacut::image
