// CRIT-style text codec for process images (paper §3.3).
//
// CRIU ships CRIT, which decodes protobuf image files into editable text
// and encodes them back; DynaCut extends it into a rewriting API. crsim
// mirrors that: `decode_text` renders a ProcessImage as a line-oriented,
// human-readable document (registers, sigactions, VMAs, page hex dumps, fd
// table, module table) and `encode_text` parses the document back into an
// image — so `encode_text(decode_text(img))` is lossless for everything
// serializable. Useful for inspecting images in tests and for hand-crafted
// edits (e.g. `crit x <dir> mems` equivalents).
#pragma once

#include <string>

#include "image/image.hpp"

namespace dynacut::image {

/// Renders the image as text. With `include_pages` false the (large) page
/// hex dumps are omitted — the `crit show core.img`-style summary view.
std::string decode_text(const ProcessImage& img, bool include_pages = true);

/// Parses a document produced by decode_text (with pages included) back
/// into an image. Throws DecodeError on malformed input.
ProcessImage encode_text(const std::string& text);

/// The `crit x <dir> mems` equivalent: one line per VMA.
std::string show_mems(const ProcessImage& img);

/// The `crit show core.img` equivalent: registers + signal state.
std::string show_core(const ProcessImage& img);

}  // namespace dynacut::image
