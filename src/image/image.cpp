#include "image/image.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/hex.hpp"

namespace dynacut::image {

const VmaImage* ProcessImage::vma_at(uint64_t addr) const {
  for (const auto& v : vmas) {
    if (addr >= v.start && addr < v.end) return &v;
  }
  return nullptr;
}

bool ProcessImage::mapped(uint64_t addr, uint64_t n) const {
  uint64_t cur = addr;
  const uint64_t end = addr + n;
  while (cur < end) {
    const VmaImage* v = vma_at(cur);
    if (v == nullptr) return false;
    cur = v->end;
  }
  return true;
}

std::vector<uint8_t> ProcessImage::read_bytes(uint64_t vaddr,
                                              uint64_t n) const {
  if (!mapped(vaddr, n)) {
    throw StateError("image read outside VMAs at " + hex_addr(vaddr));
  }
  std::vector<uint8_t> out(n);
  uint64_t cur = vaddr;
  uint8_t* dst = out.data();
  while (n > 0) {
    uint64_t page = page_floor(cur);
    uint64_t off = cur - page;
    uint64_t chunk = std::min<uint64_t>(n, kPageSize - off);
    auto it = pages.find(page);
    if (it != pages.end()) {
      std::memcpy(dst, it->second->data() + off, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    dst += chunk;
    cur += chunk;
    n -= chunk;
  }
  return out;
}

void ProcessImage::write_bytes(uint64_t vaddr,
                               std::span<const uint8_t> bytes) {
  if (!mapped(vaddr, bytes.size())) {
    throw StateError("image write outside VMAs at " + hex_addr(vaddr));
  }
  uint64_t cur = vaddr;
  const uint8_t* src = bytes.data();
  uint64_t n = bytes.size();
  while (n > 0) {
    uint64_t page = page_floor(cur);
    uint64_t off = cur - page;
    uint64_t chunk = std::min<uint64_t>(n, kPageSize - off);
    std::memcpy(pages.writable(page).data() + off, src, chunk);
    src += chunk;
    cur += chunk;
    n -= chunk;
  }
}

uint8_t ProcessImage::read_u8(uint64_t vaddr) const {
  return read_bytes(vaddr, 1)[0];
}

uint64_t ProcessImage::read_u64(uint64_t vaddr) const {
  auto b = read_bytes(vaddr, 8);
  uint64_t v;
  std::memcpy(&v, b.data(), 8);
  return v;
}

void ProcessImage::write_u64(uint64_t vaddr, uint64_t value) {
  uint8_t b[8];
  std::memcpy(b, &value, 8);
  write_bytes(vaddr, b);
}

void ProcessImage::add_vma(uint64_t start, uint64_t size, uint32_t prot,
                           const std::string& name) {
  DYNACUT_ASSERT(start == page_floor(start));
  size = page_ceil(size);
  uint64_t end = start + size;
  for (const auto& v : vmas) {
    if (start < v.end && v.start < end) {
      throw StateError("add_vma overlaps " + v.name);
    }
  }
  vmas.push_back(VmaImage{start, end, prot, name});
  std::sort(vmas.begin(), vmas.end(),
            [](const VmaImage& a, const VmaImage& b) {
              return a.start < b.start;
            });
}

void ProcessImage::drop_range(uint64_t start, uint64_t size) {
  size = page_ceil(size);
  const uint64_t end = start + size;
  std::vector<VmaImage> next;
  bool touched = false;
  for (const auto& v : vmas) {
    if (v.end <= start || v.start >= end) {
      next.push_back(v);
      continue;
    }
    touched = true;
    if (v.start < start) next.push_back({v.start, start, v.prot, v.name});
    if (v.end > end) next.push_back({end, v.end, v.prot, v.name});
  }
  if (!touched) {
    throw StateError("drop_range of unmapped range at " + hex_addr(start));
  }
  vmas = std::move(next);
  for (uint64_t p = page_floor(start); p < end; p += kPageSize) {
    pages.erase(p);
  }
}

void ProcessImage::grow_vma(uint64_t start, uint64_t extra) {
  for (auto& v : vmas) {
    if (v.start == start) {
      uint64_t new_end = v.end + page_ceil(extra);
      for (const auto& o : vmas) {
        if (&o != &v && v.end <= o.start && o.start < new_end) {
          throw StateError("grow_vma collides with " + o.name);
        }
      }
      v.end = new_end;
      return;
    }
  }
  throw StateError("grow_vma: no VMA starting at " + hex_addr(start));
}

uint64_t ProcessImage::find_free(uint64_t size, uint64_t hint) const {
  size = page_ceil(size);
  uint64_t candidate = page_floor(hint);
  // vmas kept sorted by add_vma; checkpoint also emits them sorted.
  for (const auto& v : vmas) {
    if (v.start >= candidate + size) break;
    if (v.end > candidate) candidate = v.end;
  }
  return candidate;
}

const ModuleImage* ProcessImage::module_named(const std::string& name) const {
  for (const auto& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const ModuleImage* ProcessImage::module_at(uint64_t addr) const {
  for (const auto& m : modules) {
    if (addr >= m.base && addr < m.base + m.size) return &m;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::vector<uint8_t> ProcessImage::encode() const {
  ByteWriter w;
  w.str("CRSIMIMG");

  // core
  w.str(core.proc_name);
  w.i32(core.pid);
  w.i32(core.ppid);
  for (uint64_t r : core.cpu.regs) w.u64(r);
  w.u64(core.cpu.ip);
  w.u64(core.cpu.pack_flags());
  for (const auto& sa : core.sigactions) {
    w.u64(sa.handler);
    w.u64(sa.restorer);
  }
  w.u32(static_cast<uint32_t>(core.signal_frames.size()));
  for (uint64_t f : core.signal_frames) w.u64(f);

  // mm
  w.u32(static_cast<uint32_t>(vmas.size()));
  for (const auto& v : vmas) {
    w.u64(v.start);
    w.u64(v.end);
    w.u32(v.prot);
    w.str(v.name);
  }

  // pagemap + pages
  w.u32(static_cast<uint32_t>(pages.size()));
  for (const auto& [addr, block] : pages) {
    w.u64(addr);
    w.raw(block->data(), block->size());
  }

  // files
  w.u32(static_cast<uint32_t>(fds.size()));
  for (const auto& f : fds) {
    w.i32(f.fd);
    w.u8(static_cast<uint8_t>(f.kind));
    w.u8(f.sock_kind);
    w.u16(f.port);
    w.blob(f.rx_bytes);
    w.blob(f.tx_bytes);
  }

  // modules (MELF payload inline so the image is self-contained)
  w.u32(static_cast<uint32_t>(modules.size()));
  for (const auto& m : modules) {
    w.str(m.name);
    w.u64(m.base);
    w.u64(m.size);
    w.blob(m.binary->encode());
  }
  return w.take();
}

ProcessImage ProcessImage::decode(std::span<const uint8_t> data) {
  ByteReader r(data);
  if (r.str() != "CRSIMIMG") throw DecodeError("bad process image magic");
  ProcessImage img;

  img.core.proc_name = r.str();
  img.core.pid = r.i32();
  img.core.ppid = r.i32();
  for (auto& reg : img.core.cpu.regs) reg = r.u64();
  img.core.cpu.ip = r.u64();
  img.core.cpu.unpack_flags(r.u64());
  for (auto& sa : img.core.sigactions) {
    sa.handler = r.u64();
    sa.restorer = r.u64();
  }
  uint32_t nframes = r.u32();
  for (uint32_t i = 0; i < nframes; ++i) {
    img.core.signal_frames.push_back(r.u64());
  }

  uint32_t nvma = r.u32();
  for (uint32_t i = 0; i < nvma; ++i) {
    VmaImage v;
    v.start = r.u64();
    v.end = r.u64();
    v.prot = r.u32();
    v.name = r.str();
    img.vmas.push_back(std::move(v));
  }

  uint32_t npages = r.u32();
  for (uint32_t i = 0; i < npages; ++i) {
    uint64_t addr = r.u64();
    auto bytes = std::make_shared<std::vector<uint8_t>>(kPageSize);
    r.raw(bytes->data(), bytes->size());
    img.pages.put(addr, std::move(bytes));
  }

  uint32_t nfds = r.u32();
  for (uint32_t i = 0; i < nfds; ++i) {
    FdImage f;
    f.fd = r.i32();
    f.kind = static_cast<os::FileDesc::Kind>(r.u8());
    f.sock_kind = r.u8();
    f.port = r.u16();
    f.rx_bytes = r.blob();
    f.tx_bytes = r.blob();
    img.fds.push_back(std::move(f));
  }

  uint32_t nmods = r.u32();
  for (uint32_t i = 0; i < nmods; ++i) {
    ModuleImage m;
    m.name = r.str();
    m.base = r.u64();
    m.size = r.u64();
    auto payload = r.blob();
    m.binary = std::make_shared<melf::Binary>(melf::Binary::decode(payload));
    img.modules.push_back(std::move(m));
  }

  if (!r.done()) throw DecodeError("trailing bytes in process image");
  return img;
}

// ---------------------------------------------------------------------------
// ImageStore
// ---------------------------------------------------------------------------

std::string ImageKey::str() const {
  if (pid < 0) return "legacy:" + feature_set_tag;
  std::string s = "pid " + std::to_string(pid);
  if (!feature_set_tag.empty()) s += " [" + feature_set_tag + "]";
  return s;
}

void ImageStore::put(const ImageKey& key, const ProcessImage& img) {
  // A COW copy: page blocks are shared, not serialized. Stripping the live
  // socket handles preserves the semantics of the encode/decode round trip
  // this replaced — a stored image must not keep connections alive.
  ProcessImage stored = img;
  for (auto& f : stored.fds) f.live.reset();
  files_[key] = std::move(stored);
}

ProcessImage ImageStore::get(const ImageKey& key) const {
  auto it = files_.find(key);
  if (it == files_.end()) throw StateError("no image for " + key.str());
  return it->second;  // COW copy: O(metadata), pages shared
}

bool ImageStore::contains(const ImageKey& key) const {
  return files_.find(key) != files_.end();
}

size_t ImageStore::erase(const ImageKey& key) { return files_.erase(key); }

std::vector<ImageKey> ImageStore::list() const {
  std::vector<ImageKey> keys;
  keys.reserve(files_.size());
  for (const auto& [k, img] : files_) keys.push_back(k);
  return keys;
}

void ImageStore::put(const std::string& key, const ProcessImage& img) {
  put(legacy_key(key), img);
}

ProcessImage ImageStore::get(const std::string& key) const {
  return get(legacy_key(key));
}

bool ImageStore::contains(const std::string& key) const {
  return contains(legacy_key(key));
}

size_t ImageStore::bytes_used() const {
  size_t total = 0;
  for (const auto& [k, img] : files_) total += img.pages_bytes();
  return total;
}

size_t ImageStore::resident_bytes(std::set<const void*>* seen) const {
  std::set<const void*> local;
  std::set<const void*>& s = seen != nullptr ? *seen : local;
  size_t total = 0;
  for (const auto& [k, img] : files_) total += img.resident_pages_bytes(&s);
  return total;
}

}  // namespace dynacut::image
