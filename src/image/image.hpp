// crsim process images — the CRIU analogue.
//
// A checkpoint produces a ProcessImage split the way CRIU splits its dump:
//   core    — registers, signal dispositions, pending signal frames
//   mm      — the VMA list
//   pagemap — which pages are populated
//   pages   — raw page contents
//   files   — fd table incl. socket state (TCP_REPAIR analogue)
//   modules — loaded-module table (binary name/base; MELF payload inline)
//
// DynaCut's process rewriter (src/rewriter) mutates this object between
// dump and restore; that is the paper's central mechanism.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "image/page_store.hpp"
#include "melf/binary.hpp"
#include "os/process.hpp"
#include "vm/cpu.hpp"

namespace dynacut::image {

/// core image file: execution state.
struct CoreImage {
  std::string proc_name;
  int pid = 0;
  int ppid = 0;
  vm::Cpu cpu;
  std::array<os::SigAction, os::sig::kNumSignals> sigactions{};
  std::vector<uint64_t> signal_frames;
};

/// One mm-image row.
struct VmaImage {
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t prot = 0;
  std::string name;
};

/// files image row. The live Socket object is carried through checkpoint/
/// restore within one OS instance (CRIU's TCP_REPAIR keeps the connection
/// alive); the serialized byte queues allow full (de)serialization and
/// detached restores.
struct FdImage {
  int fd = 0;
  os::FileDesc::Kind kind = os::FileDesc::Kind::kConsole;
  uint8_t sock_kind = 0;  ///< 0 unbound, 1 listen, 2 stream
  uint16_t port = 0;
  std::vector<uint8_t> rx_bytes;  ///< buffered inbound data at dump time
  std::vector<uint8_t> tx_bytes;  ///< buffered outbound data at dump time
  std::shared_ptr<os::Socket> live;  ///< not serialized
};

struct ModuleImage {
  std::string name;
  uint64_t base = 0;
  uint64_t size = 0;
  std::shared_ptr<const melf::Binary> binary;
};

class ProcessImage {
 public:
  CoreImage core;
  std::vector<VmaImage> vmas;  // mm image
  PageStore pages;             // pagemap + pages (COW blocks)
  std::vector<FdImage> fds;
  std::vector<ModuleImage> modules;

  // --- address-based access used by the rewriter ------------------------
  const VmaImage* vma_at(uint64_t addr) const;
  bool mapped(uint64_t addr, uint64_t n = 1) const;

  /// Reads/writes through the page store; zero-fill semantics for mapped but
  /// unpopulated pages; throws StateError outside every VMA.
  std::vector<uint8_t> read_bytes(uint64_t vaddr, uint64_t n) const;
  void write_bytes(uint64_t vaddr, std::span<const uint8_t> bytes);
  uint8_t read_u8(uint64_t vaddr) const;
  uint64_t read_u64(uint64_t vaddr) const;
  void write_u64(uint64_t vaddr, uint64_t value);

  /// Adds a VMA (library injection). Throws on overlap.
  void add_vma(uint64_t start, uint64_t size, uint32_t prot,
               const std::string& name);
  /// Removes pages and VMA coverage for [start, start+size).
  void drop_range(uint64_t start, uint64_t size);
  /// Grows an existing VMA upward by `extra` bytes (paper: "enlarge VMAs").
  void grow_vma(uint64_t start, uint64_t extra);

  /// First gap of `size` bytes at or above `hint`.
  uint64_t find_free(uint64_t size, uint64_t hint) const;

  const ModuleImage* module_named(const std::string& name) const;
  const ModuleImage* module_at(uint64_t addr) const;

  /// Total dumped page payload (the paper's "image size" column in Fig. 7):
  /// the logical size — every page counted, shared or not.
  uint64_t pages_bytes() const { return pages.logical_bytes(); }

  /// Payload actually resident for this image: pages whose blocks are not
  /// already counted in `seen` (dedup by block identity across images).
  uint64_t resident_pages_bytes(std::set<const void*>* seen = nullptr) const {
    return pages.resident_bytes(seen);
  }

  // --- serialization ------------------------------------------------------
  std::vector<uint8_t> encode() const;
  static ProcessImage decode(std::span<const uint8_t> data);
};

/// Typed key an ImageStore entry is filed under: whose image it is and
/// which customized feature set it carries. `feature_set_tag` is the sorted
/// '+'-joined set of disabled features ("" = pristine/uncustomized); the
/// transactional layer files pre-rewrite images under the reserved tag
/// ImageKey::kPreTag. Replaces the historical ad-hoc string keys
/// ("<name>.<pid>", "<name>.<pid>.pre").
struct ImageKey {
  int pid = 0;
  std::string feature_set_tag;

  /// Reserved feature_set_tag for pre-rewrite (pristine) images.
  static constexpr const char* kPreTag = "pre";

  bool operator==(const ImageKey&) const = default;
  bool operator<(const ImageKey& o) const {
    if (pid != o.pid) return pid < o.pid;
    return feature_set_tag < o.feature_set_tag;
  }
  std::string str() const;
};

/// tmpfs-like in-memory image store (the paper checkpoints into tmpfs to
/// keep rewriting off the disk).
///
/// Entries are kept decoded with COW page blocks: put() shares the image's
/// pages instead of serializing them, and get() hands back a shared copy
/// in O(metadata) instead of re-decoding the whole byte stream per call.
/// Live socket handles are stripped on put (exactly what serialization
/// used to do), so a stored image never keeps a connection object alive.
class ImageStore {
 public:
  void put(const ImageKey& key, const ProcessImage& img);
  ProcessImage get(const ImageKey& key) const;
  bool contains(const ImageKey& key) const;
  size_t erase(const ImageKey& key);
  /// Every key in the store, ascending (pid, then tag).
  std::vector<ImageKey> list() const;

  // Deprecated ad-hoc string keys; a string key maps to the reserved
  // legacy ImageKey{-1, key}, disjoint from every typed key.
  [[deprecated("use put(const ImageKey&, ...)")]]
  void put(const std::string& key, const ProcessImage& img);
  [[deprecated("use get(const ImageKey&)")]]
  ProcessImage get(const std::string& key) const;
  [[deprecated("use contains(const ImageKey&)")]]
  bool contains(const std::string& key) const;

  /// Logical page payload across all entries — every page counted once per
  /// image that holds it, shared or not.
  size_t bytes_used() const;

  /// Actually-resident page payload: shared blocks counted once. Pass one
  /// `seen` set across stores *and* live address spaces
  /// (os::Os::resident_pages_bytes) to get true machine-wide resident
  /// bytes — a block is counted by whichever holder sees it first, never
  /// twice. nullptr dedups within this store only.
  size_t resident_bytes(std::set<const void*>* seen = nullptr) const;

 private:
  static ImageKey legacy_key(const std::string& key) { return {-1, key}; }

  std::map<ImageKey, ProcessImage> files_;
};

}  // namespace dynacut::image
