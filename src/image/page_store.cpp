#include "image/page_store.hpp"

#include "common/error.hpp"
#include "common/hex.hpp"
#include "image/block_store.hpp"

namespace dynacut::image {

const std::vector<uint8_t>& PageStore::at(uint64_t page_addr) const {
  auto it = blocks_.find(page_addr);
  if (it == blocks_.end()) {
    throw StateError("image page not populated: " + hex_addr(page_addr));
  }
  return *it->second;
}

PageRef PageStore::block(uint64_t page_addr) const {
  auto it = blocks_.find(page_addr);
  return it == blocks_.end() ? nullptr : it->second;
}

void PageStore::put(uint64_t page_addr, PageRef block) {
  DYNACUT_ASSERT(page_addr == page_floor(page_addr));
  DYNACUT_ASSERT(block != nullptr && block->size() == kPageSize);
  // Intern by content: if any live image or address space already holds an
  // identical block, share that one instead — this is what makes a fleet of
  // identical workers cost one resident copy of .text.
  blocks_[page_addr] = BlockStore::global().intern(std::move(block));
}

void PageStore::put_bytes(uint64_t page_addr, std::span<const uint8_t> bytes) {
  DYNACUT_ASSERT(bytes.size() == kPageSize);
  blocks_[page_addr] = BlockStore::global().intern_bytes(bytes);
}

std::vector<uint8_t>& PageStore::writable(uint64_t page_addr) {
  auto it = blocks_.find(page_addr);
  if (it == blocks_.end()) {
    it = blocks_
             .emplace(page_addr,
                      std::make_shared<std::vector<uint8_t>>(kPageSize, 0))
             .first;
  } else if (it->second.use_count() > 1) {
    it->second = std::make_shared<std::vector<uint8_t>>(*it->second);
  }
  return *it->second;
}

uint64_t PageStore::resident_bytes(std::set<const void*>* seen) const {
  std::set<const void*> local;
  std::set<const void*>& s = seen != nullptr ? *seen : local;
  uint64_t total = 0;
  for (const auto& [addr, block] : blocks_) {
    if (s.insert(block.get()).second) total += block->size();
  }
  return total;
}

}  // namespace dynacut::image
