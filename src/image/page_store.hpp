// Refcounted copy-on-write page storage for process images.
//
// A checkpoint no longer deep-copies page payloads: the image shares the
// live address space's page blocks (vm::PageRef), and every downstream
// copy — the txn layer's ".pre" pristine images, ImageStore entries, the
// rewriter's working copies — shares them again in O(1). Mutation goes
// through writable(), which clones a shared block first, so no holder can
// observe another holder's edits (COW aliasing safety).
//
// put()/put_bytes() additionally intern every block through the fleet-wide
// content-addressed BlockStore (image/block_store.hpp): identical page
// bytes entering any image — even from a different pid or a different Os
// instance — resolve to one shared block, so resident_bytes() across a
// fleet is O(1 image + per-pid deltas).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "common/constants.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::image {

using vm::PageRef;

class PageStore {
 public:
  using Map = std::map<uint64_t, PageRef>;
  using const_iterator = Map::const_iterator;

  bool empty() const { return blocks_.empty(); }
  size_t size() const { return blocks_.size(); }
  size_t count(uint64_t page_addr) const { return blocks_.count(page_addr); }
  const_iterator begin() const { return blocks_.begin(); }
  const_iterator end() const { return blocks_.end(); }
  const_iterator find(uint64_t page_addr) const {
    return blocks_.find(page_addr);
  }

  /// The page's bytes; throws StateError if the page is absent.
  const std::vector<uint8_t>& at(uint64_t page_addr) const;

  /// The page's refcounted block, or nullptr if absent. Sharing the
  /// returned block is O(1); it must never be mutated (use writable()).
  PageRef block(uint64_t page_addr) const;

  /// Shares `block` as the page's content (O(1), no copy).
  void put(uint64_t page_addr, PageRef block);

  /// Copies `bytes` into a fresh block (a page-sized copy).
  void put_bytes(uint64_t page_addr, std::span<const uint8_t> bytes);

  /// The page's block, uniquely owned by this store: creates a zero page if
  /// absent, clones if shared (copy-on-write). Every mutation funnels here.
  std::vector<uint8_t>& writable(uint64_t page_addr);

  size_t erase(uint64_t page_addr) { return blocks_.erase(page_addr); }
  void clear() { blocks_.clear(); }

  /// Dumped payload as the paper counts it: every page, once per image.
  uint64_t logical_bytes() const { return size() * kPageSize; }

  /// Actually-resident payload: bytes of blocks not yet counted in `seen`
  /// (dedup by block identity). Pass one `seen` set across several stores
  /// to measure what page sharing saves; nullptr dedups within this store.
  uint64_t resident_bytes(std::set<const void*>* seen = nullptr) const;

 private:
  Map blocks_;
};

}  // namespace dynacut::image
