#include "isa/disasm.hpp"

#include <cstdio>

#include "common/hex.hpp"

namespace dynacut::isa {

namespace {
std::string reg_name(uint8_t r) {
  if (r == kSpReg) return "sp";
  return "r" + std::to_string(r);
}
}  // namespace

std::string format_instr(const Instr& ins, uint64_t addr) {
  const std::string m = mnemonic(ins.op);
  switch (ins.op) {
    case Op::kMovRI:
      return m + " " + reg_name(ins.r1) + ", " +
             hex_addr(static_cast<uint64_t>(ins.imm));
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kCmpRR:
      return m + " " + reg_name(ins.r1) + ", " + reg_name(ins.r2);
    case Op::kLoad:
    case Op::kLoadB:
      return m + " " + reg_name(ins.r1) + ", [" + reg_name(ins.r2) +
             (ins.imm >= 0 ? "+" : "") + std::to_string(ins.imm) + "]";
    case Op::kStore:
    case Op::kStoreB:
      return m + " [" + reg_name(ins.r1) + (ins.imm >= 0 ? "+" : "") +
             std::to_string(ins.imm) + "], " + reg_name(ins.r2);
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kCmpRI:
      return m + " " + reg_name(ins.r1) + ", " + std::to_string(ins.imm);
    case Op::kShlRI:
    case Op::kShrRI:
      return m + " " + reg_name(ins.r1) + ", " + std::to_string(ins.imm);
    case Op::kJmp:
    case Op::kJe:
    case Op::kJne:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kCall:
      return m + " " + hex_addr(ins.target(addr));
    case Op::kCallR:
    case Op::kJmpR:
    case Op::kPush:
    case Op::kPop:
      return m + " " + reg_name(ins.r1);
    case Op::kLea:
      return m + " " + reg_name(ins.r1) + ", " + hex_addr(ins.target(addr));
    case Op::kRet:
    case Op::kSyscall:
    case Op::kNop:
    case Op::kTrap:
      return m;
  }
  return "(bad)";
}

std::vector<DisasmLine> disassemble(std::span<const uint8_t> code,
                                    uint64_t base) {
  std::vector<DisasmLine> lines;
  size_t pos = 0;
  while (pos < code.size()) {
    DisasmLine line;
    line.addr = base + pos;
    if (auto ins = try_decode(code.subspan(pos))) {
      line.instr = *ins;
      pos += ins->length;
    } else {
      line.valid = false;
      line.raw_byte = code[pos];
      pos += 1;
    }
    lines.push_back(line);
  }
  return lines;
}

std::string disassemble_text(std::span<const uint8_t> code, uint64_t base) {
  std::string out;
  char buf[32];
  for (const auto& line : disassemble(code, base)) {
    std::snprintf(buf, sizeof buf, "%12llx:  ",
                  static_cast<unsigned long long>(line.addr));
    out += buf;
    if (line.valid) {
      out += format_instr(line.instr, line.addr);
    } else {
      std::snprintf(buf, sizeof buf, ".byte 0x%02x", line.raw_byte);
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dynacut::isa
