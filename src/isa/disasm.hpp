// VX64 disassembler — the Capstone stand-in. Turns raw code bytes back into
// text and instruction streams; used by the CFG recoverer, the CRIT text
// codec and diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace dynacut::isa {

/// Formats one decoded instruction, e.g. "mov r1, 0x2a" or "jne 0x4005f0"
/// (branch targets are resolved against `addr`).
std::string format_instr(const Instr& ins, uint64_t addr);

/// One line of disassembly output.
struct DisasmLine {
  uint64_t addr = 0;
  Instr instr;
  bool valid = true;  ///< false for undecodable bytes (printed as ".byte")
  uint8_t raw_byte = 0;
};

/// Linear-sweep disassembly of `code` mapped at `base`. Undecodable bytes
/// become single-byte invalid lines, so the sweep always makes progress.
std::vector<DisasmLine> disassemble(std::span<const uint8_t> code,
                                    uint64_t base);

/// Full textual listing ("<addr>  <mnemonic> ..." per line).
std::string disassemble_text(std::span<const uint8_t> code, uint64_t base);

}  // namespace dynacut::isa
