#include "isa/encode.hpp"

#include <cstring>

#include "common/error.hpp"

namespace dynacut::isa {

namespace {
uint8_t reg(int r) {
  DYNACUT_ASSERT(r >= 0 && r < kNumRegs);
  return static_cast<uint8_t>(r);
}
}  // namespace

void Encoder::put_i32(int32_t v) {
  uint8_t buf[4];
  std::memcpy(buf, &v, 4);
  out_.insert(out_.end(), buf, buf + 4);
}

size_t Encoder::op0(Op op) {
  size_t at = out_.size();
  out_.push_back(static_cast<uint8_t>(op));
  return at;
}

size_t Encoder::op1(Op op, int r) {
  size_t at = op0(op);
  out_.push_back(reg(r));
  return at;
}

size_t Encoder::op2(Op op, int r1, int r2) {
  size_t at = op1(op, r1);
  out_.push_back(reg(r2));
  return at;
}

size_t Encoder::op_ri32(Op op, int r, int32_t imm) {
  size_t at = op1(op, r);
  put_i32(imm);
  return at;
}

size_t Encoder::op_mem(Op op, int r1, int r2, int32_t disp) {
  size_t at = op2(op, r1, r2);
  put_i32(disp);
  return at;
}

size_t Encoder::mov_ri(int rd, uint64_t imm) {
  size_t at = op1(Op::kMovRI, rd);
  uint8_t buf[8];
  std::memcpy(buf, &imm, 8);
  out_.insert(out_.end(), buf, buf + 8);
  return at;
}

size_t Encoder::mov_rr(int rd, int rs) { return op2(Op::kMovRR, rd, rs); }
size_t Encoder::load(int rd, int rb, int32_t d) {
  return op_mem(Op::kLoad, rd, rb, d);
}
size_t Encoder::store(int rb, int32_t d, int rs) {
  return op_mem(Op::kStore, rb, rs, d);
}
size_t Encoder::loadb(int rd, int rb, int32_t d) {
  return op_mem(Op::kLoadB, rd, rb, d);
}
size_t Encoder::storeb(int rb, int32_t d, int rs) {
  return op_mem(Op::kStoreB, rb, rs, d);
}
size_t Encoder::add_rr(int rd, int rs) { return op2(Op::kAddRR, rd, rs); }
size_t Encoder::add_ri(int rd, int32_t imm) {
  return op_ri32(Op::kAddRI, rd, imm);
}
size_t Encoder::sub_rr(int rd, int rs) { return op2(Op::kSubRR, rd, rs); }
size_t Encoder::sub_ri(int rd, int32_t imm) {
  return op_ri32(Op::kSubRI, rd, imm);
}
size_t Encoder::mul_rr(int rd, int rs) { return op2(Op::kMulRR, rd, rs); }
size_t Encoder::div_rr(int rd, int rs) { return op2(Op::kDivRR, rd, rs); }
size_t Encoder::and_rr(int rd, int rs) { return op2(Op::kAndRR, rd, rs); }
size_t Encoder::or_rr(int rd, int rs) { return op2(Op::kOrRR, rd, rs); }
size_t Encoder::xor_rr(int rd, int rs) { return op2(Op::kXorRR, rd, rs); }

size_t Encoder::shl_ri(int rd, uint8_t amount) {
  size_t at = op1(Op::kShlRI, rd);
  out_.push_back(amount);
  return at;
}

size_t Encoder::shr_ri(int rd, uint8_t amount) {
  size_t at = op1(Op::kShrRI, rd);
  out_.push_back(amount);
  return at;
}

size_t Encoder::cmp_rr(int ra, int rb) { return op2(Op::kCmpRR, ra, rb); }
size_t Encoder::cmp_ri(int ra, int32_t imm) {
  return op_ri32(Op::kCmpRI, ra, imm);
}

size_t Encoder::branch(Op op, int32_t rel) {
  DYNACUT_ASSERT(is_direct_transfer(op));
  size_t at = op0(op);
  put_i32(rel);
  return at;
}

size_t Encoder::ret() { return op0(Op::kRet); }
size_t Encoder::callr(int r) { return op1(Op::kCallR, r); }
size_t Encoder::jmpr(int r) { return op1(Op::kJmpR, r); }
size_t Encoder::push(int r) { return op1(Op::kPush, r); }
size_t Encoder::pop(int r) { return op1(Op::kPop, r); }
size_t Encoder::syscall() { return op0(Op::kSyscall); }
size_t Encoder::lea(int rd, int32_t rel) { return op_ri32(Op::kLea, rd, rel); }
size_t Encoder::nop() { return op0(Op::kNop); }
size_t Encoder::trap() { return op0(Op::kTrap); }

void Encoder::patch_rel32(size_t instr_offset, int32_t rel) {
  DYNACUT_ASSERT(instr_offset < out_.size());
  uint8_t byte = out_[instr_offset];
  Op op = static_cast<Op>(byte);
  size_t field;
  if (is_direct_transfer(op)) {
    field = instr_offset + 1;
  } else if (op == Op::kLea) {
    field = instr_offset + 2;
  } else {
    throw StateError("patch_rel32 on non-relative instruction");
  }
  DYNACUT_ASSERT(field + 4 <= out_.size());
  std::memcpy(out_.data() + field, &rel, 4);
}

}  // namespace dynacut::isa
