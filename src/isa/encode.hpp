// Raw VX64 instruction encoder. The melf::ProgramBuilder layers labels,
// functions and relocations on top of this.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace dynacut::isa {

/// Appends encoded instructions to a byte vector. Methods return the offset
/// of the instruction's first byte, which callers use for fixups.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>& out) : out_(out) {}

  size_t mov_ri(int rd, uint64_t imm);
  size_t mov_rr(int rd, int rs);
  size_t load(int rd, int rb, int32_t disp);
  size_t store(int rb, int32_t disp, int rs);
  size_t loadb(int rd, int rb, int32_t disp);
  size_t storeb(int rb, int32_t disp, int rs);
  size_t add_rr(int rd, int rs);
  size_t add_ri(int rd, int32_t imm);
  size_t sub_rr(int rd, int rs);
  size_t sub_ri(int rd, int32_t imm);
  size_t mul_rr(int rd, int rs);
  size_t div_rr(int rd, int rs);
  size_t and_rr(int rd, int rs);
  size_t or_rr(int rd, int rs);
  size_t xor_rr(int rd, int rs);
  size_t shl_ri(int rd, uint8_t amount);
  size_t shr_ri(int rd, uint8_t amount);
  size_t cmp_rr(int ra, int rb);
  size_t cmp_ri(int ra, int32_t imm);
  size_t branch(Op op, int32_t rel);  ///< any of kJmp..kJae, kCall
  size_t ret();
  size_t callr(int r);
  size_t jmpr(int r);
  size_t push(int r);
  size_t pop(int r);
  size_t syscall();
  size_t lea(int rd, int32_t rel);
  size_t nop();
  size_t trap();

  size_t offset() const { return out_.size(); }

  /// Back-patches the rel32 field of a branch/call/lea emitted at
  /// `instr_offset`.
  void patch_rel32(size_t instr_offset, int32_t rel);

 private:
  size_t op0(Op op);
  size_t op1(Op op, int r);
  size_t op2(Op op, int r1, int r2);
  size_t op_ri32(Op op, int r, int32_t imm);
  size_t op_mem(Op op, int r1, int r2, int32_t disp);
  void put_i32(int32_t v);

  std::vector<uint8_t>& out_;
};

}  // namespace dynacut::isa
