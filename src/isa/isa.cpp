#include "isa/isa.hpp"

#include <cstring>

#include "common/error.hpp"

namespace dynacut::isa {

namespace {

struct OpInfo {
  uint8_t length;
  const char* name;
};

/// Indexed by opcode byte; length 0 marks invalid opcodes.
const OpInfo* op_table() {
  static OpInfo table[256] = {};
  static bool init = [] {
    auto set = [&](Op op, uint8_t len, const char* name) {
      table[static_cast<uint8_t>(op)] = {len, name};
    };
    set(Op::kMovRI, 10, "mov");
    set(Op::kMovRR, 3, "mov");
    set(Op::kLoad, 7, "load");
    set(Op::kStore, 7, "store");
    set(Op::kLoadB, 7, "loadb");
    set(Op::kStoreB, 7, "storeb");
    set(Op::kAddRR, 3, "add");
    set(Op::kAddRI, 6, "add");
    set(Op::kSubRR, 3, "sub");
    set(Op::kSubRI, 6, "sub");
    set(Op::kMulRR, 3, "mul");
    set(Op::kDivRR, 3, "div");
    set(Op::kAndRR, 3, "and");
    set(Op::kOrRR, 3, "or");
    set(Op::kXorRR, 3, "xor");
    set(Op::kShlRI, 3, "shl");
    set(Op::kShrRI, 3, "shr");
    set(Op::kCmpRR, 3, "cmp");
    set(Op::kCmpRI, 6, "cmp");
    set(Op::kJmp, 5, "jmp");
    set(Op::kJe, 5, "je");
    set(Op::kJne, 5, "jne");
    set(Op::kJlt, 5, "jlt");
    set(Op::kJle, 5, "jle");
    set(Op::kJgt, 5, "jgt");
    set(Op::kJge, 5, "jge");
    set(Op::kJb, 5, "jb");
    set(Op::kJae, 5, "jae");
    set(Op::kCall, 5, "call");
    set(Op::kRet, 1, "ret");
    set(Op::kCallR, 2, "callr");
    set(Op::kJmpR, 2, "jmpr");
    set(Op::kPush, 2, "push");
    set(Op::kPop, 2, "pop");
    set(Op::kSyscall, 1, "syscall");
    set(Op::kLea, 6, "lea");
    set(Op::kNop, 1, "nop");
    set(Op::kTrap, 1, "trap");
    return true;
  }();
  (void)init;
  return table;
}

int32_t read_i32(std::span<const uint8_t> p) {
  int32_t v;
  std::memcpy(&v, p.data(), sizeof v);
  return v;
}

int64_t read_i64(std::span<const uint8_t> p) {
  int64_t v;
  std::memcpy(&v, p.data(), sizeof v);
  return v;
}

}  // namespace

bool valid_opcode(uint8_t byte) { return op_table()[byte].length != 0; }

uint8_t instr_length(uint8_t opcode_byte) {
  return op_table()[opcode_byte].length;
}

bool is_terminator(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kJe:
    case Op::kJne:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kCall:
    case Op::kRet:
    case Op::kCallR:
    case Op::kJmpR:
    case Op::kSyscall:
    case Op::kTrap:
      return true;
    default:
      return false;
  }
}

bool is_cond_branch(Op op) {
  switch (op) {
    case Op::kJe:
    case Op::kJne:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
      return true;
    default:
      return false;
  }
}

bool is_direct_transfer(Op op) {
  return op == Op::kJmp || op == Op::kCall || is_cond_branch(op);
}

std::optional<Instr> try_decode(std::span<const uint8_t> code) {
  if (code.empty()) return std::nullopt;
  uint8_t byte = code[0];
  uint8_t len = instr_length(byte);
  if (len == 0 || code.size() < len) return std::nullopt;

  Instr ins;
  ins.op = static_cast<Op>(byte);
  ins.length = len;
  switch (ins.op) {
    case Op::kMovRI:
      ins.r1 = code[1] & 0x0f;
      ins.imm = read_i64(code.subspan(2));
      break;
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kAndRR:
    case Op::kOrRR:
    case Op::kXorRR:
    case Op::kCmpRR:
      ins.r1 = code[1] & 0x0f;
      ins.r2 = code[2] & 0x0f;
      break;
    case Op::kLoad:
    case Op::kLoadB:
    case Op::kStore:
    case Op::kStoreB:
      ins.r1 = code[1] & 0x0f;
      ins.r2 = code[2] & 0x0f;
      ins.imm = read_i32(code.subspan(3));
      break;
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kCmpRI:
    case Op::kLea:
      ins.r1 = code[1] & 0x0f;
      ins.imm = read_i32(code.subspan(2));
      break;
    case Op::kShlRI:
    case Op::kShrRI:
      ins.r1 = code[1] & 0x0f;
      ins.imm = code[2];
      break;
    case Op::kJmp:
    case Op::kJe:
    case Op::kJne:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
    case Op::kCall:
      ins.imm = read_i32(code.subspan(1));
      break;
    case Op::kCallR:
    case Op::kJmpR:
    case Op::kPush:
    case Op::kPop:
      ins.r1 = code[1] & 0x0f;
      break;
    case Op::kRet:
    case Op::kSyscall:
    case Op::kNop:
    case Op::kTrap:
      break;
  }
  return ins;
}

Instr decode(std::span<const uint8_t> code) {
  auto ins = try_decode(code);
  if (!ins) {
    throw DecodeError(code.empty() ? "empty code span"
                                   : "invalid or truncated instruction, "
                                     "opcode byte " +
                                         std::to_string(code[0]));
  }
  return *ins;
}

std::string mnemonic(Op op) {
  const char* name = op_table()[static_cast<uint8_t>(op)].name;
  return name ? name : "(bad)";
}

}  // namespace dynacut::isa
