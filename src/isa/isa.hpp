// VX64: the small 64-bit variable-length ISA executed by the simulator.
//
// VX64 stands in for x86-64 in this reproduction. It keeps the three
// properties DynaCut's mechanism depends on:
//   * variable-length encoding (so disassembly/BB recovery is non-trivial),
//   * a one-byte trap instruction TRAP = 0xCC (the int3 analogue),
//   * IP-relative control flow and addressing (so code is position
//     independent and injectable as a shared library).
//
// Registers: r0..r15, 64-bit. r15 doubles as the stack pointer (SP).
// By convention r0 holds syscall numbers / return values and r1..r5 carry
// syscall/function arguments.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace dynacut::isa {

inline constexpr int kNumRegs = 16;
inline constexpr int kSpReg = 15;  ///< r15 is the stack pointer.

/// Longest encoding in the ISA (kMovRI: opcode + reg + imm64). Fetchers and
/// decode caches size speculative reads and page-edge checks with this.
inline constexpr uint8_t kMaxInstrLength = 10;

/// One-byte opcodes. Values are part of the binary format; do not renumber.
enum class Op : uint8_t {
  kMovRI = 0x01,   ///< r1 = imm64
  kMovRR = 0x02,   ///< r1 = r2
  kLoad = 0x03,    ///< r1 = mem64[r2 + disp32]
  kStore = 0x04,   ///< mem64[r1 + disp32] = r2
  kLoadB = 0x05,   ///< r1 = zext(mem8[r2 + disp32])
  kStoreB = 0x06,  ///< mem8[r1 + disp32] = low8(r2)
  kAddRR = 0x07,
  kAddRI = 0x08,  ///< r1 += simm32
  kSubRR = 0x09,
  kSubRI = 0x0A,
  kMulRR = 0x0B,
  kDivRR = 0x0C,  ///< unsigned divide; divisor 0 faults
  kAndRR = 0x0D,
  kOrRR = 0x0E,
  kXorRR = 0x0F,
  kShlRI = 0x10,
  kShrRI = 0x11,
  kCmpRR = 0x12,  ///< sets flags from r1 ? r2
  kCmpRI = 0x13,  ///< sets flags from r1 ? simm32
  kJmp = 0x14,    ///< ip = ip_after + rel32
  kJe = 0x15,
  kJne = 0x16,
  kJlt = 0x17,  ///< signed <
  kJle = 0x18,
  kJgt = 0x19,
  kJge = 0x1A,
  kJb = 0x1B,   ///< unsigned <
  kJae = 0x1C,  ///< unsigned >=
  kCall = 0x1D,
  kRet = 0x1E,
  kCallR = 0x1F,  ///< call through register
  kJmpR = 0x20,   ///< jump through register
  kPush = 0x21,
  kPop = 0x22,
  kSyscall = 0x23,
  kLea = 0x24,  ///< r1 = ip_after + rel32 (PIC address formation)
  kNop = 0x90,
  kTrap = 0xCC,  ///< one-byte breakpoint; raises SIGTRAP (int3 analogue)
};

/// A decoded instruction. `imm` holds imm64, simm32, disp32, rel32 or the
/// shift amount depending on the opcode.
struct Instr {
  Op op = Op::kNop;
  uint8_t r1 = 0;
  uint8_t r2 = 0;
  int64_t imm = 0;
  uint8_t length = 1;  ///< encoded size in bytes

  /// Branch/call target for IP-relative transfers, given the instruction's
  /// own address.
  uint64_t target(uint64_t addr) const {
    return addr + length + static_cast<uint64_t>(imm);
  }
};

/// True if the opcode byte names a valid VX64 instruction.
bool valid_opcode(uint8_t byte);

/// Encoded length of an instruction starting with this opcode byte, or 0 if
/// the opcode is invalid.
uint8_t instr_length(uint8_t opcode_byte);

/// Instructions that end a basic block (any control transfer, syscalls and
/// traps) — the same block boundaries drcov observes.
bool is_terminator(Op op);

/// Conditional branches (terminators with fall-through successors).
bool is_cond_branch(Op op);

/// Direct IP-relative transfers whose static target is recoverable.
bool is_direct_transfer(Op op);

/// Decodes one instruction at the start of `code`. Returns std::nullopt on
/// an invalid opcode or truncated encoding (the executor raises SIGILL).
std::optional<Instr> try_decode(std::span<const uint8_t> code);

/// Decoding that throws DecodeError instead; for host-side tooling.
Instr decode(std::span<const uint8_t> code);

/// Mnemonic of an opcode ("mov", "jne", "trap", ...).
std::string mnemonic(Op op);

}  // namespace dynacut::isa
