#include "melf/binary.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace dynacut::melf {

namespace {
constexpr uint32_t kMagic = 0x464c454d;  // "MELF"
constexpr uint32_t kVersion = 1;
}  // namespace

std::string section_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
      return ".text";
    case SectionKind::kPlt:
      return ".plt";
    case SectionKind::kRodata:
      return ".rodata";
    case SectionKind::kData:
      return ".data";
    case SectionKind::kGot:
      return ".got";
    case SectionKind::kBss:
      return ".bss";
  }
  return "?";
}

uint32_t section_prot(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
    case SectionKind::kPlt:
      return kProtRead | kProtExec;
    case SectionKind::kRodata:
      return kProtRead;
    case SectionKind::kData:
    case SectionKind::kGot:
    case SectionKind::kBss:
      return kProtRead | kProtWrite;
  }
  return 0;
}

uint64_t Binary::image_size() const {
  uint64_t end = 0;
  for (const auto& s : sections) end = std::max(end, s.offset + s.size);
  return page_ceil(end);
}

const Section* Binary::section(SectionKind kind) const {
  for (const auto& s : sections) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

Section* Binary::section(SectionKind kind) {
  return const_cast<Section*>(std::as_const(*this).section(kind));
}

const Symbol* Binary::find_symbol(const std::string& sym_name) const {
  for (const auto& s : symbols) {
    if (s.name == sym_name) return &s;
  }
  return nullptr;
}

const Symbol* Binary::symbol_containing(uint64_t offset) const {
  for (const auto& s : symbols) {
    if (s.is_function && offset >= s.value && offset < s.value + s.size) {
      return &s;
    }
  }
  return nullptr;
}

uint64_t Binary::got_slot_offset(size_t import_index) const {
  const Section* got = section(SectionKind::kGot);
  DYNACUT_ASSERT(got != nullptr && import_index < imports.size());
  return got->offset + import_index * 8;
}

std::optional<uint64_t> Binary::plt_stub_offset(
    const std::string& import_name) const {
  const Section* plt = section(SectionKind::kPlt);
  if (plt == nullptr) return std::nullopt;
  for (size_t i = 0; i < imports.size(); ++i) {
    if (imports[i] == import_name) return plt->offset + i * kPltStubSize;
  }
  return std::nullopt;
}

std::vector<uint8_t> Binary::encode() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(name);
  w.u64(entry);

  w.u32(static_cast<uint32_t>(sections.size()));
  for (const auto& s : sections) {
    w.u8(static_cast<uint8_t>(s.kind));
    w.u64(s.offset);
    w.u64(s.size);
    w.blob(s.bytes);
  }

  w.u32(static_cast<uint32_t>(symbols.size()));
  for (const auto& s : symbols) {
    w.str(s.name);
    w.u8(static_cast<uint8_t>(s.section));
    w.u64(s.value);
    w.u64(s.size);
    w.u8(s.global ? 1 : 0);
    w.u8(s.is_function ? 1 : 0);
  }

  w.u32(static_cast<uint32_t>(relocs.size()));
  for (const auto& r : relocs) {
    w.u8(static_cast<uint8_t>(r.kind));
    w.u64(r.offset);
    w.i64(r.addend);
    w.str(r.symbol);
  }

  w.u32(static_cast<uint32_t>(imports.size()));
  for (const auto& i : imports) w.str(i);

  return w.take();
}

Binary Binary::decode(std::span<const uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw DecodeError("bad MELF magic");
  if (r.u32() != kVersion) throw DecodeError("unsupported MELF version");

  Binary b;
  b.name = r.str();
  b.entry = r.u64();

  uint32_t nsec = r.u32();
  for (uint32_t i = 0; i < nsec; ++i) {
    Section s;
    s.kind = static_cast<SectionKind>(r.u8());
    s.offset = r.u64();
    s.size = r.u64();
    s.bytes = r.blob();
    if (s.bytes.size() > s.size) throw DecodeError("section bytes > size");
    b.sections.push_back(std::move(s));
  }

  uint32_t nsym = r.u32();
  for (uint32_t i = 0; i < nsym; ++i) {
    Symbol s;
    s.name = r.str();
    s.section = static_cast<SectionKind>(r.u8());
    s.value = r.u64();
    s.size = r.u64();
    s.global = r.u8() != 0;
    s.is_function = r.u8() != 0;
    b.symbols.push_back(std::move(s));
  }

  uint32_t nrel = r.u32();
  for (uint32_t i = 0; i < nrel; ++i) {
    Relocation rel;
    rel.kind = static_cast<RelocKind>(r.u8());
    rel.offset = r.u64();
    rel.addend = r.i64();
    rel.symbol = r.str();
    b.relocs.push_back(std::move(rel));
  }

  uint32_t nimp = r.u32();
  for (uint32_t i = 0; i < nimp; ++i) b.imports.push_back(r.str());

  if (!r.done()) throw DecodeError("trailing bytes after MELF payload");
  return b;
}

}  // namespace dynacut::melf
