// MELF ("mini-ELF"): the executable/shared-object container for VX64 guests.
//
// A Binary is position independent: all sections are described by
// module-relative offsets and relocations record where the load base (or an
// imported symbol's address) must be written. The loader (src/os/loader) and
// the DynaCut library injector (src/rewriter) both consume this format —
// exactly the split the paper has between ld.so and DynaCut's CRIU-image
// library injection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/constants.hpp"

namespace dynacut::melf {

enum class SectionKind : uint8_t {
  kText = 0,    ///< program code (R+X)
  kPlt = 1,     ///< import trampolines (R+X)
  kRodata = 2,  ///< read-only data
  kData = 3,    ///< initialized writable data
  kGot = 4,     ///< global offset table, one u64 slot per import (RW)
  kBss = 5,     ///< zero-initialized writable data
};

std::string section_name(SectionKind kind);
uint32_t section_prot(SectionKind kind);

struct Section {
  SectionKind kind = SectionKind::kText;
  uint64_t offset = 0;  ///< module-relative virtual offset (page aligned)
  uint64_t size = 0;    ///< virtual size (>= bytes.size(); larger for .bss)
  std::vector<uint8_t> bytes;
};

struct Symbol {
  std::string name;
  SectionKind section = SectionKind::kText;
  uint64_t value = 0;  ///< module-relative offset
  uint64_t size = 0;
  bool global = false;      ///< exported to other modules
  bool is_function = false;
};

enum class RelocKind : uint8_t {
  /// *(u64*)(base + offset) = base + addend. Used for absolute pointers in
  /// code immediates and data (the paper's "global data relocations").
  kAbs64 = 0,
  /// *(u64*)(base + offset) = address of exported `symbol` in some other
  /// loaded module (the paper's "PLT relocations" filling GOT slots).
  kGotEntry = 1,
};

struct Relocation {
  RelocKind kind = RelocKind::kAbs64;
  uint64_t offset = 0;
  int64_t addend = 0;
  std::string symbol;
};

/// A linked VX64 module (application or shared library).
class Binary {
 public:
  /// Sentinel for `entry`: the module is a library, not an executable.
  static constexpr uint64_t kNoEntry = ~0ull;

  std::string name;
  uint64_t entry = kNoEntry;  ///< module-relative entry point
  std::vector<Section> sections;
  std::vector<Symbol> symbols;
  std::vector<Relocation> relocs;
  std::vector<std::string> imports;  ///< order matches GOT slot order

  /// Total virtual size of the module image (page aligned).
  uint64_t image_size() const;

  const Section* section(SectionKind kind) const;
  Section* section(SectionKind kind);

  const Symbol* find_symbol(const std::string& name) const;

  /// Symbol whose [value, value+size) contains the module-relative offset;
  /// functions only. Nullptr if none.
  const Symbol* symbol_containing(uint64_t offset) const;

  /// Module-relative offset of the GOT slot for import #i.
  uint64_t got_slot_offset(size_t import_index) const;

  /// Module-relative offset of the PLT stub for `import_name`; nullopt when
  /// the import does not exist.
  std::optional<uint64_t> plt_stub_offset(const std::string& import_name) const;

  /// Size in bytes of one PLT stub (lea + load + jmpr).
  static constexpr uint64_t kPltStubSize = 15;

  // --- MELF file format -----------------------------------------------
  std::vector<uint8_t> encode() const;
  static Binary decode(std::span<const uint8_t> data);
};

}  // namespace dynacut::melf
