#include "melf/builder.hpp"

#include <cstring>

#include "common/error.hpp"

namespace dynacut::melf {

namespace {

constexpr uint64_t kFuncAlign = 16;

uint64_t align_up(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

void write_i32_at(std::vector<uint8_t>& buf, size_t pos, int32_t v) {
  DYNACUT_ASSERT(pos + 4 <= buf.size());
  std::memcpy(buf.data() + pos, &v, 4);
}

}  // namespace

// --------------------------------------------------------------------------
// FunctionBuilder
// --------------------------------------------------------------------------

FunctionBuilder::FunctionBuilder(ProgramBuilder* owner, std::string name)
    : owner_(owner), name_(std::move(name)) {}

FunctionBuilder& FunctionBuilder::mov_ri(int rd, uint64_t imm) {
  enc_.mov_ri(rd, imm);
  return *this;
}
FunctionBuilder& FunctionBuilder::mov_rr(int rd, int rs) {
  enc_.mov_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::load(int rd, int rb, int32_t disp) {
  enc_.load(rd, rb, disp);
  return *this;
}
FunctionBuilder& FunctionBuilder::store(int rb, int32_t disp, int rs) {
  enc_.store(rb, disp, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::loadb(int rd, int rb, int32_t disp) {
  enc_.loadb(rd, rb, disp);
  return *this;
}
FunctionBuilder& FunctionBuilder::storeb(int rb, int32_t disp, int rs) {
  enc_.storeb(rb, disp, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::add_rr(int rd, int rs) {
  enc_.add_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::add_ri(int rd, int32_t imm) {
  enc_.add_ri(rd, imm);
  return *this;
}
FunctionBuilder& FunctionBuilder::sub_rr(int rd, int rs) {
  enc_.sub_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::sub_ri(int rd, int32_t imm) {
  enc_.sub_ri(rd, imm);
  return *this;
}
FunctionBuilder& FunctionBuilder::mul_rr(int rd, int rs) {
  enc_.mul_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::div_rr(int rd, int rs) {
  enc_.div_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::and_rr(int rd, int rs) {
  enc_.and_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::or_rr(int rd, int rs) {
  enc_.or_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::xor_rr(int rd, int rs) {
  enc_.xor_rr(rd, rs);
  return *this;
}
FunctionBuilder& FunctionBuilder::shl_ri(int rd, uint8_t n) {
  enc_.shl_ri(rd, n);
  return *this;
}
FunctionBuilder& FunctionBuilder::shr_ri(int rd, uint8_t n) {
  enc_.shr_ri(rd, n);
  return *this;
}
FunctionBuilder& FunctionBuilder::cmp_rr(int ra, int rb) {
  enc_.cmp_rr(ra, rb);
  return *this;
}
FunctionBuilder& FunctionBuilder::cmp_ri(int ra, int32_t imm) {
  enc_.cmp_ri(ra, imm);
  return *this;
}
FunctionBuilder& FunctionBuilder::ret() {
  enc_.ret();
  return *this;
}
FunctionBuilder& FunctionBuilder::callr(int r) {
  enc_.callr(r);
  return *this;
}
FunctionBuilder& FunctionBuilder::jmpr(int r) {
  enc_.jmpr(r);
  return *this;
}
FunctionBuilder& FunctionBuilder::push(int r) {
  enc_.push(r);
  return *this;
}
FunctionBuilder& FunctionBuilder::pop(int r) {
  enc_.pop(r);
  return *this;
}
FunctionBuilder& FunctionBuilder::syscall() {
  enc_.syscall();
  return *this;
}
FunctionBuilder& FunctionBuilder::nop() {
  enc_.nop();
  return *this;
}
FunctionBuilder& FunctionBuilder::trap() {
  enc_.trap();
  return *this;
}

FunctionBuilder& FunctionBuilder::label(std::string_view name) {
  auto [it, inserted] = labels_.emplace(std::string(name), code_.size());
  if (!inserted) {
    throw GuestError("duplicate label '" + std::string(name) +
                     "' in function " + name_);
  }
  return *this;
}

FunctionBuilder& FunctionBuilder::mark(std::string_view symbol_name) {
  marks_.emplace_back(std::string(symbol_name), code_.size());
  return *this;
}

FunctionBuilder& FunctionBuilder::branch_local(isa::Op op,
                                               std::string_view label) {
  size_t at = enc_.branch(op, 0);
  local_fixups_.push_back({at, std::string(label)});
  return *this;
}

FunctionBuilder& FunctionBuilder::jmp(std::string_view l) {
  return branch_local(isa::Op::kJmp, l);
}
FunctionBuilder& FunctionBuilder::je(std::string_view l) {
  return branch_local(isa::Op::kJe, l);
}
FunctionBuilder& FunctionBuilder::jne(std::string_view l) {
  return branch_local(isa::Op::kJne, l);
}
FunctionBuilder& FunctionBuilder::jlt(std::string_view l) {
  return branch_local(isa::Op::kJlt, l);
}
FunctionBuilder& FunctionBuilder::jle(std::string_view l) {
  return branch_local(isa::Op::kJle, l);
}
FunctionBuilder& FunctionBuilder::jgt(std::string_view l) {
  return branch_local(isa::Op::kJgt, l);
}
FunctionBuilder& FunctionBuilder::jge(std::string_view l) {
  return branch_local(isa::Op::kJge, l);
}
FunctionBuilder& FunctionBuilder::jb(std::string_view l) {
  return branch_local(isa::Op::kJb, l);
}
FunctionBuilder& FunctionBuilder::jae(std::string_view l) {
  return branch_local(isa::Op::kJae, l);
}

FunctionBuilder& FunctionBuilder::call(std::string_view func_name) {
  size_t at = enc_.branch(isa::Op::kCall, 0);
  sym_fixups_.push_back({at, SymFixupKind::kCallRel, std::string(func_name)});
  return *this;
}

FunctionBuilder& FunctionBuilder::jmp_sym(std::string_view func_name) {
  size_t at = enc_.branch(isa::Op::kJmp, 0);
  sym_fixups_.push_back({at, SymFixupKind::kJmpRel, std::string(func_name)});
  return *this;
}

FunctionBuilder& FunctionBuilder::call_import(std::string_view import_name) {
  owner_->import(std::string(import_name));
  size_t at = enc_.branch(isa::Op::kCall, 0);
  sym_fixups_.push_back(
      {at, SymFixupKind::kCallRel, std::string(import_name) + "@plt"});
  return *this;
}

FunctionBuilder& FunctionBuilder::lea_sym(int rd, std::string_view sym_name) {
  size_t at = enc_.lea(rd, 0);
  sym_fixups_.push_back({at, SymFixupKind::kLeaRel, std::string(sym_name)});
  return *this;
}

FunctionBuilder& FunctionBuilder::mov_sym(int rd, std::string_view sym_name) {
  size_t at = enc_.mov_ri(rd, 0);
  sym_fixups_.push_back({at, SymFixupKind::kMovAbs, std::string(sym_name)});
  return *this;
}

FunctionBuilder& FunctionBuilder::sys(uint64_t number) {
  enc_.mov_ri(0, number);
  enc_.syscall();
  return *this;
}

// --------------------------------------------------------------------------
// ProgramBuilder
// --------------------------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::string module_name)
    : module_name_(std::move(module_name)) {}

ProgramBuilder::~ProgramBuilder() = default;

FunctionBuilder& ProgramBuilder::func(const std::string& name, bool global) {
  (void)global;  // all function symbols are emitted; `global` is advisory
  auto it = func_index_.find(name);
  if (it != func_index_.end()) return *it->second;
  funcs_.push_back(
      std::unique_ptr<FunctionBuilder>(new FunctionBuilder(this, name)));
  func_index_[name] = funcs_.back().get();
  return *funcs_.back();
}

void ProgramBuilder::import(const std::string& name) {
  for (const auto& i : imports_) {
    if (i == name) return;
  }
  imports_.push_back(name);
}

void ProgramBuilder::rodata(const std::string& name,
                            std::vector<uint8_t> bytes) {
  uint64_t size = bytes.size();
  defs_.push_back({name, SectionKind::kRodata, std::move(bytes), size, {}});
}

void ProgramBuilder::rodata_str(const std::string& name,
                                std::string_view text) {
  std::vector<uint8_t> bytes(text.begin(), text.end());
  bytes.push_back(0);
  rodata(name, std::move(bytes));
}

void ProgramBuilder::data(const std::string& name, std::vector<uint8_t> bytes) {
  uint64_t size = bytes.size();
  defs_.push_back({name, SectionKind::kData, std::move(bytes), size, {}});
}

void ProgramBuilder::data_u64(const std::string& name, uint64_t value) {
  std::vector<uint8_t> bytes(8);
  std::memcpy(bytes.data(), &value, 8);
  data(name, std::move(bytes));
}

void ProgramBuilder::data_ptr(const std::string& name,
                              const std::string& target) {
  DataDef def{name, SectionKind::kData, std::vector<uint8_t>(8, 0), 8, {}};
  def.ptr_relocs.emplace_back(0, target);
  defs_.push_back(std::move(def));
}

void ProgramBuilder::bss(const std::string& name, uint64_t size) {
  defs_.push_back({name, SectionKind::kBss, {}, size, {}});
}

void ProgramBuilder::set_entry(const std::string& func_name) {
  entry_func_ = func_name;
}

Binary ProgramBuilder::link() {
  if (linked_) throw StateError("ProgramBuilder::link called twice");
  linked_ = true;

  Binary bin;
  bin.name = module_name_;
  bin.imports = imports_;

  // 1. Resolve function-local label fixups.
  for (auto& f : funcs_) {
    for (const auto& fix : f->local_fixups_) {
      auto it = f->labels_.find(fix.label);
      if (it == f->labels_.end()) {
        throw GuestError("unresolved label '" + fix.label + "' in function " +
                         f->name_);
      }
      uint8_t len = isa::instr_length(f->code_[fix.instr_offset]);
      int64_t rel = static_cast<int64_t>(it->second) -
                    static_cast<int64_t>(fix.instr_offset + len);
      write_i32_at(f->code_, fix.instr_offset + 1,
                   static_cast<int32_t>(rel));
    }
  }

  // 2. Lay out .text: pack functions with 16-byte alignment.
  std::map<std::string, uint64_t> sym_off;  // symbol -> module offset
  Section text;
  text.kind = SectionKind::kText;
  text.offset = 0;
  for (auto& f : funcs_) {
    uint64_t at = align_up(text.bytes.size(), kFuncAlign);
    text.bytes.resize(at, static_cast<uint8_t>(isa::Op::kNop));
    text.bytes.insert(text.bytes.end(), f->code_.begin(), f->code_.end());
    if (sym_off.count(f->name_)) {
      throw GuestError("duplicate symbol " + f->name_);
    }
    sym_off[f->name_] = at;
    Symbol sym;
    sym.name = f->name_;
    sym.section = SectionKind::kText;
    sym.value = at;
    sym.size = f->code_.size();
    sym.global = true;
    sym.is_function = true;
    bin.symbols.push_back(sym);
    for (const auto& [mark_name, mark_off] : f->marks_) {
      if (sym_off.count(mark_name)) {
        throw GuestError("duplicate symbol " + mark_name);
      }
      sym_off[mark_name] = at + mark_off;
      Symbol ms;
      ms.name = mark_name;
      ms.section = SectionKind::kText;
      ms.value = at + mark_off;
      ms.size = 0;
      ms.global = true;
      ms.is_function = false;
      bin.symbols.push_back(ms);
    }
  }
  text.size = text.bytes.size();

  // 3. .plt: one 15-byte stub per import (lea r11, got; load; jmpr).
  Section plt;
  plt.kind = SectionKind::kPlt;
  plt.offset = page_ceil(text.offset + text.size);

  // 4. .rodata / .data / .got / .bss layout.
  auto layout_defs = [&](SectionKind kind, uint64_t start, Section& sec) {
    sec.kind = kind;
    sec.offset = start;
    uint64_t cursor = 0;
    for (auto& def : defs_) {
      if (def.section != kind) continue;
      cursor = align_up(cursor, 8);
      if (sym_off.count(def.name)) {
        throw GuestError("duplicate symbol " + def.name);
      }
      sym_off[def.name] = start + cursor;
      Symbol sym;
      sym.name = def.name;
      sym.section = kind;
      sym.value = start + cursor;
      sym.size = def.size;
      sym.global = true;
      sym.is_function = false;
      bin.symbols.push_back(sym);
      if (kind != SectionKind::kBss) {
        sec.bytes.resize(cursor, 0);
        sec.bytes.insert(sec.bytes.end(), def.bytes.begin(), def.bytes.end());
        for (const auto& [off, target] : def.ptr_relocs) {
          Relocation rel;
          rel.kind = RelocKind::kAbs64;
          rel.offset = start + cursor + off;
          // addend resolved in step 6 once all symbols are placed.
          rel.symbol = target;
          bin.relocs.push_back(rel);
        }
      }
      cursor += def.size;
    }
    sec.size = cursor;
  };

  uint64_t plt_size = imports_.size() * Binary::kPltStubSize;
  Section rodata, data_sec, got, bss;
  layout_defs(SectionKind::kRodata, page_ceil(plt.offset + plt_size), rodata);
  layout_defs(SectionKind::kData, page_ceil(rodata.offset + rodata.size),
              data_sec);
  got.kind = SectionKind::kGot;
  got.offset = page_ceil(data_sec.offset + data_sec.size);
  got.size = imports_.size() * 8;
  got.bytes.assign(got.size, 0);
  layout_defs(SectionKind::kBss, page_ceil(got.offset + got.size), bss);

  // PLT symbols and stub bytes (needs got.offset, hence after layout).
  {
    isa::Encoder enc(plt.bytes);
    for (size_t i = 0; i < imports_.size(); ++i) {
      uint64_t stub_off = plt.offset + i * Binary::kPltStubSize;
      uint64_t slot_off = got.offset + i * 8;
      // lea r11, rel32(got_slot); load r11, [r11+0]; jmpr r11
      enc.lea(11, static_cast<int32_t>(static_cast<int64_t>(slot_off) -
                                       static_cast<int64_t>(stub_off + 6)));
      enc.load(11, 11, 0);
      enc.jmpr(11);
      sym_off[imports_[i] + "@plt"] = stub_off;
      Symbol sym;
      sym.name = imports_[i] + "@plt";
      sym.section = SectionKind::kPlt;
      sym.value = stub_off;
      sym.size = Binary::kPltStubSize;
      sym.global = false;
      sym.is_function = true;
      bin.symbols.push_back(sym);

      Relocation rel;
      rel.kind = RelocKind::kGotEntry;
      rel.offset = slot_off;
      rel.symbol = imports_[i];
      bin.relocs.push_back(rel);
    }
    plt.size = plt.bytes.size();
    DYNACUT_ASSERT(plt.size == plt_size);
  }

  // 5. Resolve symbolic code fixups now that every symbol has an offset.
  auto resolve = [&](const std::string& name) -> uint64_t {
    auto it = sym_off.find(name);
    if (it == sym_off.end()) {
      throw GuestError("unresolved symbol '" + name + "' in module " +
                       module_name_);
    }
    return it->second;
  };

  for (auto& f : funcs_) {
    uint64_t func_off = sym_off.at(f->name_);
    for (const auto& fix : f->sym_fixups_) {
      uint64_t instr_off = func_off + fix.instr_offset;
      uint64_t target = resolve(fix.symbol);
      switch (fix.kind) {
        case FunctionBuilder::SymFixupKind::kCallRel:
        case FunctionBuilder::SymFixupKind::kJmpRel: {
          int64_t rel = static_cast<int64_t>(target) -
                        static_cast<int64_t>(instr_off + 5);
          write_i32_at(text.bytes, instr_off + 1, static_cast<int32_t>(rel));
          break;
        }
        case FunctionBuilder::SymFixupKind::kLeaRel: {
          int64_t rel = static_cast<int64_t>(target) -
                        static_cast<int64_t>(instr_off + 6);
          write_i32_at(text.bytes, instr_off + 2, static_cast<int32_t>(rel));
          break;
        }
        case FunctionBuilder::SymFixupKind::kMovAbs: {
          Relocation rel;
          rel.kind = RelocKind::kAbs64;
          rel.offset = instr_off + 2;  // imm64 field of kMovRI
          rel.addend = static_cast<int64_t>(target);
          bin.relocs.push_back(rel);
          break;
        }
      }
    }
  }

  // 6. Fill in addends for data_ptr relocations (symbol-relative kAbs64).
  for (auto& rel : bin.relocs) {
    if (rel.kind == RelocKind::kAbs64 && !rel.symbol.empty()) {
      rel.addend = static_cast<int64_t>(resolve(rel.symbol));
      rel.symbol.clear();
    }
  }

  bin.sections = {std::move(text),     std::move(plt), std::move(rodata),
                  std::move(data_sec), std::move(got), std::move(bss)};

  if (!entry_func_.empty()) bin.entry = resolve(entry_func_);
  return bin;
}

}  // namespace dynacut::melf
