// ProgramBuilder: the assembler DSL guest applications are written in.
//
// A builder collects functions (each a stream of VX64 instructions with
// function-local labels), data/rodata/bss definitions and imports, then
// links them into a relocatable MELF Binary:
//   * functions are packed into .text in definition order,
//   * every import gets a PLT stub (.plt) and a GOT slot (.got),
//   * symbolic references (call/jmp/lea across functions and to data)
//     become rel32 fixups, absolute references become kAbs64 relocations.
//
// Register conventions used by all guests in this repo:
//   r0    syscall number / return value
//   r1-r5 arguments
//   r6-r10 caller-saved temporaries
//   r11   scratch, clobbered by PLT stubs
//   r12-r14 callee-saved
//   r15   stack pointer
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "isa/encode.hpp"
#include "melf/binary.hpp"

namespace dynacut::melf {

class ProgramBuilder;

/// Builds one function's code. Obtained from ProgramBuilder::func().
class FunctionBuilder {
 public:
  // --- plain instructions (thin wrappers over isa::Encoder) -----------
  FunctionBuilder& mov_ri(int rd, uint64_t imm);
  FunctionBuilder& mov_rr(int rd, int rs);
  FunctionBuilder& load(int rd, int rb, int32_t disp);
  FunctionBuilder& store(int rb, int32_t disp, int rs);
  FunctionBuilder& loadb(int rd, int rb, int32_t disp);
  FunctionBuilder& storeb(int rb, int32_t disp, int rs);
  FunctionBuilder& add_rr(int rd, int rs);
  FunctionBuilder& add_ri(int rd, int32_t imm);
  FunctionBuilder& sub_rr(int rd, int rs);
  FunctionBuilder& sub_ri(int rd, int32_t imm);
  FunctionBuilder& mul_rr(int rd, int rs);
  FunctionBuilder& div_rr(int rd, int rs);
  FunctionBuilder& and_rr(int rd, int rs);
  FunctionBuilder& or_rr(int rd, int rs);
  FunctionBuilder& xor_rr(int rd, int rs);
  FunctionBuilder& shl_ri(int rd, uint8_t n);
  FunctionBuilder& shr_ri(int rd, uint8_t n);
  FunctionBuilder& cmp_rr(int ra, int rb);
  FunctionBuilder& cmp_ri(int ra, int32_t imm);
  FunctionBuilder& ret();
  FunctionBuilder& callr(int r);
  FunctionBuilder& jmpr(int r);
  FunctionBuilder& push(int r);
  FunctionBuilder& pop(int r);
  FunctionBuilder& syscall();
  FunctionBuilder& nop();
  FunctionBuilder& trap();

  // --- labels and function-local branches ------------------------------
  FunctionBuilder& label(std::string_view name);
  /// Exports the current position as a module-level (non-function) symbol —
  /// used to name error-handler entry points inside a dispatcher function.
  FunctionBuilder& mark(std::string_view symbol_name);
  FunctionBuilder& jmp(std::string_view label);
  FunctionBuilder& je(std::string_view label);
  FunctionBuilder& jne(std::string_view label);
  FunctionBuilder& jlt(std::string_view label);
  FunctionBuilder& jle(std::string_view label);
  FunctionBuilder& jgt(std::string_view label);
  FunctionBuilder& jge(std::string_view label);
  FunctionBuilder& jb(std::string_view label);
  FunctionBuilder& jae(std::string_view label);

  // --- symbolic references --------------------------------------------
  /// Direct call to another function in this module.
  FunctionBuilder& call(std::string_view func_name);
  /// Tail-jump to another function in this module.
  FunctionBuilder& jmp_sym(std::string_view func_name);
  /// Call an imported function through its PLT stub (clobbers r11).
  FunctionBuilder& call_import(std::string_view import_name);
  /// rd = address of a symbol in this module (IP-relative, PIC-safe).
  FunctionBuilder& lea_sym(int rd, std::string_view sym_name);
  /// rd = absolute address of a symbol (emits a kAbs64 relocation; not
  /// PIC-safe — applications only, never injected libraries).
  FunctionBuilder& mov_sym(int rd, std::string_view sym_name);

  // --- composite helpers ------------------------------------------------
  /// mov r0, number; syscall.
  FunctionBuilder& sys(uint64_t number);

  /// Current offset within this function (for tests and size accounting).
  size_t size() const { return code_.size(); }

  const std::string& name() const { return name_; }

 private:
  friend class ProgramBuilder;
  FunctionBuilder(ProgramBuilder* owner, std::string name);

  FunctionBuilder& branch_local(isa::Op op, std::string_view label);

  struct LocalFixup {
    size_t instr_offset;
    std::string label;
  };
  enum class SymFixupKind { kCallRel, kJmpRel, kLeaRel, kMovAbs };
  struct SymFixup {
    size_t instr_offset;
    SymFixupKind kind;
    std::string symbol;  ///< function/data symbol or "import@plt"
  };

  ProgramBuilder* owner_;
  std::string name_;
  std::vector<uint8_t> code_;
  isa::Encoder enc_{code_};
  std::map<std::string, size_t, std::less<>> labels_;
  std::vector<std::pair<std::string, size_t>> marks_;
  std::vector<LocalFixup> local_fixups_;
  std::vector<SymFixup> sym_fixups_;
};

/// Assembles and links a whole MELF module.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string module_name);
  ~ProgramBuilder();

  ProgramBuilder(const ProgramBuilder&) = delete;
  ProgramBuilder& operator=(const ProgramBuilder&) = delete;

  /// Starts (or resumes) building the named function.
  FunctionBuilder& func(const std::string& name, bool global = true);

  /// Declares an import satisfied by another module at load time.
  void import(const std::string& name);

  // --- data definitions -------------------------------------------------
  void rodata(const std::string& name, std::vector<uint8_t> bytes);
  /// NUL-terminated string in .rodata.
  void rodata_str(const std::string& name, std::string_view text);
  void data(const std::string& name, std::vector<uint8_t> bytes);
  void data_u64(const std::string& name, uint64_t value);
  /// 8-byte slot in .data holding the absolute address of `target` (emits a
  /// kAbs64 relocation) — function-pointer tables etc.
  void data_ptr(const std::string& name, const std::string& target);
  void bss(const std::string& name, uint64_t size);

  void set_entry(const std::string& func_name);

  /// Lays out sections, resolves fixups, produces the final Binary.
  /// The builder must not be reused afterwards.
  Binary link();

 private:
  friend class FunctionBuilder;

  struct DataDef {
    std::string name;
    SectionKind section;
    std::vector<uint8_t> bytes;
    uint64_t size;
    std::vector<std::pair<uint64_t, std::string>> ptr_relocs;  // off, target
  };

  std::string module_name_;
  std::string entry_func_;
  std::vector<std::unique_ptr<FunctionBuilder>> funcs_;
  std::map<std::string, FunctionBuilder*> func_index_;
  std::vector<std::string> imports_;
  std::vector<DataDef> defs_;
  bool linked_ = false;
};

}  // namespace dynacut::melf
