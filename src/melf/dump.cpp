#include "melf/dump.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hex.hpp"
#include "isa/disasm.hpp"

namespace dynacut::melf {

std::string dump_headers(const Binary& bin) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "MELF module %s, entry %s, image %s\n",
                bin.name.c_str(),
                bin.entry == Binary::kNoEntry ? "(none)"
                                              : hex_addr(bin.entry).c_str(),
                hex_addr(bin.image_size()).c_str());
  out += buf;

  out += "\nSections:\n";
  for (const auto& sec : bin.sections) {
    std::snprintf(buf, sizeof buf, "  %-8s off %-10s size %-10s prot %u%s\n",
                  section_name(sec.kind).c_str(),
                  hex_addr(sec.offset).c_str(), hex_addr(sec.size).c_str(),
                  section_prot(sec.kind),
                  sec.bytes.empty() ? "  (zero-fill)" : "");
    out += buf;
  }

  out += "\nSymbols:\n";
  std::vector<const Symbol*> syms;
  for (const auto& s : bin.symbols) syms.push_back(&s);
  std::sort(syms.begin(), syms.end(), [](const Symbol* a, const Symbol* b) {
    return a->value < b->value;
  });
  for (const Symbol* s : syms) {
    std::snprintf(buf, sizeof buf, "  %-10s %6llu %c%c %s\n",
                  hex_addr(s->value).c_str(),
                  static_cast<unsigned long long>(s->size),
                  s->global ? 'g' : 'l', s->is_function ? 'F' : 'O',
                  s->name.c_str());
    out += buf;
  }

  if (!bin.imports.empty()) {
    out += "\nImports (PLT/GOT):\n";
    for (size_t i = 0; i < bin.imports.size(); ++i) {
      std::snprintf(buf, sizeof buf, "  %-20s plt %-10s got %-10s\n",
                    bin.imports[i].c_str(),
                    hex_addr(*bin.plt_stub_offset(bin.imports[i])).c_str(),
                    hex_addr(bin.got_slot_offset(i)).c_str());
      out += buf;
    }
  }

  if (!bin.relocs.empty()) {
    std::snprintf(buf, sizeof buf, "\nRelocations: %zu (%zu GOT entries)\n",
                  bin.relocs.size(),
                  static_cast<size_t>(std::count_if(
                      bin.relocs.begin(), bin.relocs.end(),
                      [](const Relocation& r) {
                        return r.kind == RelocKind::kGotEntry;
                      })));
    out += buf;
  }
  return out;
}

std::string dump_disasm(const Binary& bin) {
  std::string out;
  for (const auto& sec : bin.sections) {
    if (sec.kind != SectionKind::kText && sec.kind != SectionKind::kPlt) {
      continue;
    }
    out += "\nDisassembly of " + section_name(sec.kind) + ":\n";
    auto lines = isa::disassemble(sec.bytes, sec.offset);
    for (const auto& line : lines) {
      // Symbol label when a symbol starts here.
      for (const auto& s : bin.symbols) {
        if (s.value == line.addr && (s.is_function || s.size == 0)) {
          out += "\n<" + s.name + ">:\n";
        }
      }
      char buf[96];
      std::snprintf(buf, sizeof buf, "  %8llx:  ",
                    static_cast<unsigned long long>(line.addr));
      out += buf;
      if (line.valid) {
        out += isa::format_instr(line.instr, line.addr);
      } else {
        std::snprintf(buf, sizeof buf, ".byte 0x%02x", line.raw_byte);
        out += buf;
      }
      out += "\n";
    }
  }
  return out;
}

std::string dump_all(const Binary& bin) {
  return dump_headers(bin) + dump_disasm(bin);
}

}  // namespace dynacut::melf
