// objdump-style textual rendering of MELF binaries: header, section table,
// symbol table, import/PLT table and full disassembly. Used by tooling,
// examples and debugging sessions ("the attacker has access to the target
// binaries" — this is what they'd look at).
#pragma once

#include <string>

#include "melf/binary.hpp"

namespace dynacut::melf {

/// Section + symbol + import tables ("objdump -h -t").
std::string dump_headers(const Binary& bin);

/// Disassembles .text and .plt with symbol-anchored labels
/// ("objdump -d").
std::string dump_disasm(const Binary& bin);

/// Everything.
std::string dump_all(const Binary& bin);

}  // namespace dynacut::melf
