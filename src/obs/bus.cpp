#include "obs/bus.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace dynacut::obs {

std::string Event::json() const {
  // Built with sequential appends: `"literal" + <rvalue string>` trips a
  // GCC 12 -Wrestrict false positive under -O2.
  std::string out = "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"t\":";
  out += std::to_string(vclock);
  out += ",\"type\":\"";
  out += json_escape(type);
  out += "\"";
  if (pid >= 0) {
    out += ",\"pid\":";
    out += std::to_string(pid);
  }
  if (txn != 0) {
    out += ",\"txn\":";
    out += std::to_string(txn);
  }
  for (const auto& a : attrs) {
    out += ",\"";
    out += json_escape(a.key);
    out += "\":";
    if (a.is_num) {
      out += std::to_string(a.num);
    } else {
      out += "\"";
      out += json_escape(a.str);
      out += "\"";
    }
  }
  out += "}";
  return out;
}

void EventBus::add_sink(Sink* s) {
  DYNACUT_ASSERT(s != nullptr && !dispatching_);
  if (std::find(sinks_.begin(), sinks_.end(), s) == sinks_.end()) {
    sinks_.push_back(s);
  }
}

void EventBus::remove_sink(Sink* s) {
  DYNACUT_ASSERT(!dispatching_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), s), sinks_.end());
}

void EventBus::dispatch(Event e) {
  if (dispatching_) {
    // Emitted from inside a sink: queue, the outer dispatch drains it after
    // the current event so every sink sees the same seq-consistent order.
    pending_.push_back(std::move(e));
    return;
  }
  dispatching_ = true;
  for (Sink* s : sinks_) s->on_event(e);
  ++delivered_;
  while (!pending_.empty()) {
    Event next = std::move(pending_.front());
    pending_.pop_front();
    for (Sink* s : sinks_) s->on_event(next);
    ++delivered_;
  }
  dispatching_ = false;
}

uint64_t EventBus::deliver(Event e) {
  if (annotator_) annotator_(e);
  e.seq = ++seq_;
  e.vclock = now();
  uint64_t seq = e.seq;
  dispatch(std::move(e));
  return seq;
}

uint64_t EventBus::emit(Event e) {
  if (txn_ != 0) {
    if (annotator_) annotator_(e);
    e.seq = ++seq_;
    e.vclock = now();
    e.txn = txn_;
    uint64_t seq = e.seq;
    staged_.push_back(std::move(e));
    return seq;
  }
  return deliver(std::move(e));
}

uint64_t EventBus::begin_txn(const std::string& label,
                             std::vector<Attr> attrs) {
  DYNACUT_ASSERT(txn_ == 0);  // transactions do not nest
  Event e(ev::kTxnStage);
  e.with("label", label);
  for (auto& a : attrs) e.attrs.push_back(std::move(a));
  uint64_t id = deliver(std::move(e));
  txn_ = id;
  txn_label_ = label;
  return id;
}

size_t EventBus::commit_txn(std::vector<Attr> attrs) {
  if (txn_ == 0) return 0;
  uint64_t id = txn_;
  std::string label = std::move(txn_label_);
  std::vector<Event> staged = std::move(staged_);
  staged_.clear();
  txn_ = 0;

  // Flush in staging order — events keep their original seq/vclock stamps —
  // then close the bracket.
  for (auto& e : staged) dispatch(std::move(e));

  Event commit(ev::kTxnCommit);
  commit.txn = id;
  commit.with("label", label)
      .with("staged", static_cast<uint64_t>(staged.size()));
  for (auto& a : attrs) commit.attrs.push_back(std::move(a));
  deliver(std::move(commit));
  return staged.size();
}

void EventBus::abort_txn(const std::string& why) {
  if (txn_ == 0) return;
  uint64_t id = txn_;
  std::string label = std::move(txn_label_);
  size_t dropped = staged_.size();
  retracted_ += dropped;
  staged_.clear();
  txn_ = 0;

  Event abort(ev::kTxnAbort);
  abort.txn = id;
  abort.with("label", label)
      .with("why", why)
      .with("retracted", static_cast<uint64_t>(dropped));
  deliver(std::move(abort));
  Event rb(ev::kTxnRollback);
  rb.txn = id;
  rb.with("label", label);
  deliver(std::move(rb));
}

}  // namespace dynacut::obs
