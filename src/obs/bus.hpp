// The observability event bus (DESIGN.md §9).
//
// A single-threaded pub/sub hub for obs::Events. Emitters (core::DynaCut,
// core::GroupTxn, image::checkpoint, rw::ImageRewriter, os::Os) push
// events; pluggable Sinks (ring buffer for tests, JSONL writer for benches)
// receive them stamped with a monotone sequence number and the virtual
// clock.
//
// Transactions and retraction-on-abort: a customization opens a bus
// transaction before staging (begin_txn emits `txn.stage`). Every event
// emitted while the transaction is open is *staged*, not delivered — sinks
// never observe a rewrite that might still be rolled back. commit_txn
// flushes the staged events (original timestamps, fresh delivery) and
// closes with `txn.commit`; abort_txn retracts the staged events
// unseen and emits `txn.abort` + `txn.rollback`. An observer therefore
// sees either the full bracketed trace of an applied customization or only
// the stage/abort/rollback skeleton of one that never happened.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace dynacut::obs {

/// Receives delivered events. Implementations must not add or remove sinks
/// from inside on_event; emitting further events from a sink is allowed
/// (they are queued and delivered after the current one).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& e) = 0;
};

class EventBus {
 public:
  using Clock = std::function<uint64_t()>;
  using Annotator = std::function<void(Event&)>;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// The virtual-clock source events are stamped with (os::Os wires its own
  /// clock in when given the bus). Unset, events are stamped 0.
  void set_clock(Clock c) { clock_ = std::move(c); }
  bool has_clock() const { return static_cast<bool>(clock_); }
  uint64_t now() const { return clock_ ? clock_() : 0; }

  /// One pluggable enrichment hook, called on every event before stamping.
  /// core::DynaCut uses it to attach feature/policy attributes to raw
  /// `trap.hit` events the OS emits. Last setter wins; nullptr clears.
  void set_annotator(Annotator a) { annotator_ = std::move(a); }

  void add_sink(Sink* s);
  void remove_sink(Sink* s);

  /// Emits an event: annotate, stamp seq + vclock, then deliver — or stage,
  /// if a transaction is open. Returns the assigned sequence number.
  uint64_t emit(Event e);

  // --- transactions -------------------------------------------------------
  /// Opens a transaction and emits `txn.stage` (delivered immediately — the
  /// stage marker survives an abort). Only one transaction may be open.
  /// Returns the transaction id (the stage event's sequence number).
  uint64_t begin_txn(const std::string& label, std::vector<Attr> attrs = {});

  /// Flushes the staged events to the sinks and closes the bracket with
  /// `txn.commit` (carrying `attrs`). Returns the number of staged events
  /// committed. No-op returning 0 when no transaction is open.
  size_t commit_txn(std::vector<Attr> attrs = {});

  /// Retracts the staged events (sinks never see them) and emits
  /// `txn.abort` + `txn.rollback`. No-op when no transaction is open, so
  /// abort paths can call it blindly.
  void abort_txn(const std::string& why);

  bool in_txn() const { return txn_ != 0; }
  uint64_t current_txn() const { return txn_; }

  /// Events delivered to sinks / retracted by aborts since construction.
  uint64_t events_delivered() const { return delivered_; }
  uint64_t events_retracted() const { return retracted_; }

 private:
  /// Stamps and hands the event to every sink, queueing re-entrant emits.
  uint64_t deliver(Event e);
  /// Hands an already-stamped event to every sink.
  void dispatch(Event e);

  Clock clock_;
  Annotator annotator_;
  std::vector<Sink*> sinks_;
  uint64_t seq_ = 0;
  uint64_t delivered_ = 0;
  uint64_t retracted_ = 0;

  uint64_t txn_ = 0;  ///< open transaction id; 0 = none
  std::string txn_label_;
  std::vector<Event> staged_;

  bool dispatching_ = false;
  std::deque<Event> pending_;  ///< events emitted from inside a sink
};

}  // namespace dynacut::obs
