// Structured observability events (DESIGN.md §9).
//
// Every interesting thing DynaCut does to a process — staging a
// transaction, dumping a checkpoint, patching a block, delivering a trap —
// is described by one Event: a dotted taxonomy name, a virtual-clock
// timestamp, the subject pid and a flat list of typed attributes. Events
// are plain data; the EventBus (obs/bus.hpp) stamps and routes them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dynacut::obs {

/// The event taxonomy. Sinks key on these exact strings; new types must be
/// added here and documented in DESIGN.md §9.
namespace ev {
inline constexpr const char* kTxnStage = "txn.stage";
inline constexpr const char* kTxnCommit = "txn.commit";
inline constexpr const char* kTxnAbort = "txn.abort";
inline constexpr const char* kTxnRollback = "txn.rollback";
inline constexpr const char* kCheckpointDump = "checkpoint.dump";
inline constexpr const char* kCheckpointRestore = "checkpoint.restore";
inline constexpr const char* kCheckpointDelta = "checkpoint.delta";
inline constexpr const char* kRewritePatch = "rewrite.patch";
inline constexpr const char* kRewriteWipe = "rewrite.wipe";
inline constexpr const char* kRewriteUnmap = "rewrite.unmap";
inline constexpr const char* kRewriteInject = "rewrite.inject";
inline constexpr const char* kRewriteStub = "rewrite.stub";
inline constexpr const char* kTrapHit = "trap.hit";
inline constexpr const char* kStubHit = "stub.hit";
inline constexpr const char* kSchedSteal = "sched.steal";
inline constexpr const char* kSbBuild = "sb.build";
inline constexpr const char* kSbRetire = "sb.retire";
inline constexpr const char* kSbDeopt = "sb.deopt";
inline constexpr const char* kVerifierHeal = "verifier.heal";
inline constexpr const char* kCutcheckFinding = "cutcheck.finding";
inline constexpr const char* kSliceExpand = "slice.expand";
inline constexpr const char* kWarning = "obs.warning";
}  // namespace ev

/// One event attribute: a key plus either a string or an unsigned number.
struct Attr {
  std::string key;
  std::string str;
  uint64_t num = 0;
  bool is_num = false;

  static Attr s(std::string k, std::string v) {
    Attr a;
    a.key = std::move(k);
    a.str = std::move(v);
    return a;
  }
  static Attr u(std::string k, uint64_t v) {
    Attr a;
    a.key = std::move(k);
    a.num = v;
    a.is_num = true;
    return a;
  }
};

struct Event {
  std::string type;     ///< taxonomy name (ev::k*)
  uint64_t vclock = 0;  ///< virtual-clock timestamp, stamped by the bus
  uint64_t seq = 0;     ///< bus-assigned monotone sequence number
  uint64_t txn = 0;     ///< enclosing bus transaction id; 0 = none
  int pid = -1;         ///< subject process; -1 = none
  std::vector<Attr> attrs;

  Event() = default;
  explicit Event(std::string t, int p = -1) : type(std::move(t)), pid(p) {}

  Event& with(std::string key, std::string v) & {
    attrs.push_back(Attr::s(std::move(key), std::move(v)));
    return *this;
  }
  Event& with(std::string key, uint64_t v) & {
    attrs.push_back(Attr::u(std::move(key), v));
    return *this;
  }
  Event&& with(std::string key, std::string v) && {
    attrs.push_back(Attr::s(std::move(key), std::move(v)));
    return std::move(*this);
  }
  Event&& with(std::string key, uint64_t v) && {
    attrs.push_back(Attr::u(std::move(key), v));
    return std::move(*this);
  }

  const Attr* find(const std::string& key) const {
    for (const auto& a : attrs) {
      if (a.key == key) return &a;
    }
    return nullptr;
  }
  /// Attribute as a string ("" if absent or numeric).
  std::string attr_str(const std::string& key) const {
    const Attr* a = find(key);
    return (a != nullptr && !a->is_num) ? a->str : std::string();
  }
  /// Attribute as a number (`fallback` if absent or a string).
  uint64_t attr_u64(const std::string& key, uint64_t fallback = 0) const {
    const Attr* a = find(key);
    return (a != nullptr && a->is_num) ? a->num : fallback;
  }

  /// One JSON object with a stable key order: seq, t, type, [pid], [txn],
  /// then the attributes in insertion order. Exactly the JSONL line format.
  std::string json() const;
};

}  // namespace dynacut::obs
