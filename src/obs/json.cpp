#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace dynacut::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent validator over the RFC 8259 grammar.
class Validator {
 public:
  explicit Validator(std::string_view t) : t_(t) {}

  bool run(std::string* why) {
    skip_ws();
    if (!value()) {
      fail(why);
      return false;
    }
    skip_ws();
    if (pos_ != t_.size()) {
      err_ = "trailing data";
      fail(why);
      return false;
    }
    return true;
  }

 private:
  void fail(std::string* why) const {
    if (why != nullptr) {
      *why = err_.empty() ? "malformed JSON" : err_;
      *why += " at offset " + std::to_string(pos_);
    }
  }

  bool eof() const { return pos_ >= t_.size(); }
  char peek() const { return eof() ? '\0' : t_[pos_]; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (t_[pos_] == ' ' || t_[pos_] == '\t' ||
                      t_[pos_] == '\n' || t_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) {
      err_ = "bad literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) {
      err_ = "expected string";
      return false;
    }
    while (!eof()) {
      char c = t_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "raw control character in string";
        return false;
      }
      if (c == '\\') {
        if (eof()) break;
        char e = t_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(t_[pos_])) == 0) {
              err_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          err_ = "bad escape";
          return false;
        }
      }
    }
    err_ = "unterminated string";
    return false;
  }

  bool digits() {
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      err_ = "bad number";
      return false;
    }
    if (eat('.') && !digits()) {
      err_ = "bad fraction";
      return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) {
        err_ = "bad exponent";
        return false;
      }
    }
    return true;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) {
        err_ = "expected ':'";
        return false;
      }
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) {
        err_ = "expected ',' or '}'";
        return false;
      }
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) {
        err_ = "expected ',' or ']'";
        return false;
      }
    }
  }

  bool value() {
    if (depth_ > 128) {
      err_ = "nesting too deep";
      return false;
    }
    ++depth_;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth_;
    return ok;
  }

  std::string_view t_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* why) {
  return Validator(text).run(why);
}

}  // namespace dynacut::obs
