// Minimal JSON utilities for the observability layer: string escaping for
// the emitters and a full-grammar validator (no DOM) that the obs tests and
// bench/obs_smoke use to assert every emitted line is well-formed JSON.
#pragma once

#include <string>
#include <string_view>

namespace dynacut::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included): ", \, and control characters become escape sequences.
std::string json_escape(std::string_view s);

/// True iff `text` is exactly one syntactically valid JSON value (RFC 8259
/// grammar) with nothing but whitespace around it. On failure, `why` (if
/// non-null) receives a short description with the byte offset.
bool json_valid(std::string_view text, std::string* why = nullptr);

}  // namespace dynacut::obs
