// Standard probes for the TimelineRecorder's pulled-sample timeline.
//
// Header-only on purpose: the obs library proper depends only on
// dynacut_common (so os/image/rewriter can all link it), while these probes
// read live process state and therefore need the os and analysis layers.
// Consumers that use them (benches, tests) already link both.
#pragma once

#include <functional>
#include <string>

#include "analysis/cfg.hpp"
#include "os/os.hpp"

namespace dynacut::obs {

/// Percentage of `cfg`'s basic blocks that are *live* in `pid`'s real
/// memory: the block's page is mapped and its first byte is not a trap —
/// the paper's Figure 10 metric. Exited/unknown pids score 0.
inline double live_block_pct(const os::Os& vos, int pid,
                             const std::string& module,
                             const analysis::StaticCfg& cfg) {
  const os::Process* p = vos.process(pid);
  if (p == nullptr || p->state == os::Process::State::kExited) return 0.0;
  const os::LoadedModule* m = p->module_named(module);
  if (m == nullptr || cfg.block_count() == 0) return 0.0;
  size_t live = 0;
  for (const auto& [off, blk] : cfg.blocks) {
    uint64_t addr = m->base + off;
    uint8_t byte = 0;
    if (!p->mem.read(addr, &byte, 1, kProtExec).ok) continue;  // unmapped
    if (byte != 0xCC) ++live;
  }
  return 100.0 * static_cast<double>(live) /
         static_cast<double>(cfg.block_count());
}

/// A live-BB probe bound to one process, ready for
/// TimelineRecorder::set_live_probe. The referenced objects must outlive
/// the returned closure.
inline std::function<double()> make_live_bb_probe(
    const os::Os& vos, int pid, std::string module,
    const analysis::StaticCfg& cfg) {
  return [&vos, pid, module = std::move(module), &cfg] {
    return live_block_pct(vos, pid, module, cfg);
  };
}

}  // namespace dynacut::obs
