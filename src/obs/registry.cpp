#include "obs/registry.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace dynacut::obs {

void Histogram::observe(uint64_t v) {
  if (count == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  ++buckets[std::bit_width(v)];
}

std::string Histogram::json() const {
  // Sequential appends: `"literal" + <rvalue string>` trips a GCC 12
  // -Wrestrict false positive under -O2.
  std::string out = "{\"count\":";
  out += std::to_string(count);
  out += ",\"sum\":";
  out += std::to_string(sum);
  out += ",\"min\":";
  out += std::to_string(min);
  out += ",\"max\":";
  out += std::to_string(max);
  out += ",\"buckets\":{";
  bool first = true;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += std::to_string(i);
    out += "\":";
    out += std::to_string(buckets[i]);
  }
  out += "}}";
  return out;
}

uint64_t Registry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string Registry::snapshot_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    char buf[40];
    // JSON has no inf/nan literals; clamp to 0 rather than emit garbage.
    std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(v) ? v : 0.0);
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(name);
    out += "\":";
    out += h.json();
  }
  out += "}}";
  return out;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace dynacut::obs
