// The obs metrics registry (DESIGN.md §9): counters, gauges and
// virtual-time histograms, snapshot-able to deterministic JSON.
//
// Determinism is a feature: metric maps are ordered, histogram buckets are
// power-of-two, and nothing samples wall-clock time — two identical runs
// produce byte-identical snapshots, which the obs tests assert.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace dynacut::obs {

/// Power-of-two-bucket histogram over unsigned values (virtual-time
/// latencies, byte counts, page counts). Bucket i holds values whose
/// bit-width is i, i.e. [2^(i-1), 2^i) for i >= 1 and {0} for i = 0.
struct Histogram {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::array<uint64_t, 65> buckets{};

  void observe(uint64_t v);
  /// {"count":..,"sum":..,"min":..,"max":..,"buckets":{"<i>":n,...}} with
  /// only non-empty buckets listed.
  std::string json() const;
};

class Registry {
 public:
  /// Adds `v` to counter `name`, creating it at zero.
  void add(const std::string& name, uint64_t v = 1) { counters_[name] += v; }
  /// Counter value (0 if never charged).
  uint64_t counter(const std::string& name) const;

  void set_gauge(const std::string& name, double v) { gauges_[name] = v; }
  double gauge(const std::string& name) const;

  /// The histogram `name`, created empty on first use.
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  const Histogram* find_histogram(const std::string& name) const;

  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with keys in lexicographic order — deterministic across identical runs.
  std::string snapshot_json() const;

  void clear();

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dynacut::obs
