#include "obs/sinks.hpp"

#include "common/error.hpp"

namespace dynacut::obs {

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      out_(owned_.get()) {
  if (!owned_->is_open()) {
    throw StateError("JsonlSink: cannot open " + path);
  }
}

}  // namespace dynacut::obs
