// Standard event sinks: a bounded in-memory ring buffer (tests, ad-hoc
// inspection) and a JSONL writer (benches, offline analysis).
#pragma once

#include <deque>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/bus.hpp"

namespace dynacut::obs {

/// Keeps the most recent `capacity` events.
class RingBufferSink : public Sink {
 public:
  explicit RingBufferSink(size_t capacity = 4096) : capacity_(capacity) {}

  void on_event(const Event& e) override {
    ++total_;
    events_.push_back(e);
    if (events_.size() > capacity_) events_.pop_front();
  }

  const std::deque<Event>& events() const { return events_; }
  /// Events received since construction/clear(), including evicted ones.
  size_t total() const { return total_; }

  /// Retained events of one taxonomy type, in arrival order.
  std::vector<const Event*> of_type(const std::string& type) const {
    std::vector<const Event*> out;
    for (const auto& e : events_) {
      if (e.type == type) out.push_back(&e);
    }
    return out;
  }
  size_t count(const std::string& type) const { return of_type(type).size(); }

  void clear() {
    events_.clear();
    total_ = 0;
  }

 private:
  size_t capacity_;
  size_t total_ = 0;
  std::deque<Event> events_;
};

/// Writes one JSON object per event, newline-terminated (JSON Lines).
class JsonlSink : public Sink {
 public:
  /// Writes to a caller-owned stream (e.g. a std::ostringstream in tests).
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  /// Opens (truncates) `path` and writes there; throws on open failure.
  explicit JsonlSink(const std::string& path);

  void on_event(const Event& e) override {
    *out_ << e.json() << '\n';
    ++lines_;
  }

  size_t lines() const { return lines_; }
  void flush() { out_->flush(); }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  size_t lines_ = 0;
};

}  // namespace dynacut::obs
