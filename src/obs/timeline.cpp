#include "obs/timeline.hpp"

#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace dynacut::obs {

void TimelineRecorder::on_event(const Event& e) {
  if (e.type != ev::kTxnCommit) return;
  std::string action = e.attr_str("action");
  if (action != "disable" && action != "restore") return;
  std::string feature = e.attr_str("label");
  if (feature.empty()) return;
  bool disabled = action == "disable";
  if (disabled) {
    disabled_.insert(feature);
  } else {
    disabled_.erase(feature);
  }
  toggles_.push_back(Toggle{e.vclock, feature, action, disabled});
}

const TimelineRecorder::Sample& TimelineRecorder::sample() {
  Sample s;
  s.vclock = bus_.now();
  s.live_pct = probe_ ? probe_() : 0.0;
  s.disabled = disabled_features();
  samples_.push_back(std::move(s));
  return samples_.back();
}

std::string TimelineRecorder::json() const {
  // Sequential appends: `"literal" + <rvalue string>` trips a GCC 12
  // -Wrestrict false positive under -O2.
  std::string out = "{\"toggles\":[";
  bool first = true;
  for (const auto& t : toggles_) {
    if (!first) out += ",";
    first = false;
    out += "{\"t\":";
    out += std::to_string(t.vclock);
    out += ",\"feature\":\"";
    out += json_escape(t.feature);
    out += "\",\"action\":\"";
    out += json_escape(t.action);
    out += "\"}";
  }
  out += "],\"samples\":[";
  first = true;
  for (const auto& s : samples_) {
    if (!first) out += ",";
    first = false;
    char pct[40];
    std::snprintf(pct, sizeof(pct), "%.17g",
                  std::isfinite(s.live_pct) ? s.live_pct : 0.0);
    out += "{\"t\":";
    out += std::to_string(s.vclock);
    out += ",\"live_pct\":";
    out += pct;
    out += ",\"disabled\":[";
    bool f2 = true;
    for (const auto& d : s.disabled) {
      if (!f2) out += ",";
      f2 = false;
      out += "\"";
      out += json_escape(d);
      out += "\"";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace dynacut::obs
