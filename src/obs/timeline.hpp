// Timeline recorder (DESIGN.md §9): the obs-layer primitive behind the
// paper's Figure 8 (throughput/toggle timeline) and Figure 10 (live-BB
// percentage over a program's lifetime).
//
// The recorder subscribes to an EventBus and derives the *toggle* timeline
// — which features were disabled/restored and at what virtual time — from
// committed `txn.commit` events, so benches no longer keep that bookkeeping
// by hand. Aborted customizations never reach the recorder (the bus
// retracts their events), so the disabled-feature set only ever reflects
// customizations that actually happened.
//
// The *sample* timeline (live-BB percentage) is pulled, not pushed: the
// caller installs a probe (see obs/probes.hpp for the standard live-BB one)
// and calls sample() at its own cadence.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "obs/bus.hpp"

namespace dynacut::obs {

class TimelineRecorder : public Sink {
 public:
  /// One committed customization, as observed on the bus.
  struct Toggle {
    uint64_t vclock = 0;
    std::string feature;   ///< the txn label
    std::string action;    ///< "disable" | "restore"
    bool disabled = false; ///< true when the action disables the feature
  };

  /// One pulled sample of the live state.
  struct Sample {
    uint64_t vclock = 0;
    double live_pct = 0.0;
    std::vector<std::string> disabled;  ///< sorted disabled-feature set
  };

  /// Subscribes to `bus` (unsubscribes on destruction).
  explicit TimelineRecorder(EventBus& bus) : bus_(bus) { bus_.add_sink(this); }
  ~TimelineRecorder() override { bus_.remove_sink(this); }
  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  /// Probe returning the current live-BB percentage (or any scalar the
  /// caller wants on the sample timeline). Unset, samples record 0.
  void set_live_probe(std::function<double()> probe) {
    probe_ = std::move(probe);
  }

  void on_event(const Event& e) override;

  /// Probes now and appends (and returns) a sample.
  const Sample& sample();

  const std::vector<Toggle>& toggles() const { return toggles_; }
  const std::vector<Sample>& samples() const { return samples_; }
  /// The currently disabled features, sorted.
  std::vector<std::string> disabled_features() const {
    return {disabled_.begin(), disabled_.end()};
  }

  /// {"toggles":[...],"samples":[...]} — both timelines as one JSON object.
  std::string json() const;

 private:
  EventBus& bus_;
  std::function<double()> probe_;
  std::set<std::string> disabled_;
  std::vector<Toggle> toggles_;
  std::vector<Sample> samples_;
};

}  // namespace dynacut::obs
