#include "os/loader.hpp"

#include "common/error.hpp"
#include "common/hex.hpp"

namespace dynacut::os {

uint64_t resolve_symbol(const Process& p, const std::string& name) {
  for (const auto& m : p.modules) {
    if (const melf::Symbol* s = m.binary->find_symbol(name)) {
      if (s->global) return m.base + s->value;
    }
  }
  return 0;
}

void load_module(Process& p, std::shared_ptr<const melf::Binary> bin,
                 uint64_t base) {
  if (base != page_floor(base)) {
    throw GuestError("module base not page aligned: " + hex_addr(base));
  }

  // Map every section as its own VMA (so .text pages can later be unmapped
  // independently of data) and copy initialized bytes.
  for (const auto& sec : bin->sections) {
    if (sec.size == 0) continue;
    p.mem.map(base + sec.offset, sec.size, melf::section_prot(sec.kind),
              bin->name + ":" + melf::section_name(sec.kind));
    if (!sec.bytes.empty()) {
      p.mem.poke(base + sec.offset, sec.bytes.data(), sec.bytes.size());
    }
  }

  // Register before relocating so kGotEntry can resolve self-exports too.
  p.modules.push_back(
      LoadedModule{bin->name, base, bin->image_size(), bin});

  for (const auto& rel : bin->relocs) {
    uint64_t value = 0;
    switch (rel.kind) {
      case melf::RelocKind::kAbs64:
        value = base + static_cast<uint64_t>(rel.addend);
        break;
      case melf::RelocKind::kGotEntry:
        value = resolve_symbol(p, rel.symbol);
        if (value == 0) {
          throw GuestError("unresolved import '" + rel.symbol +
                           "' while loading " + bin->name);
        }
        break;
    }
    p.mem.poke(base + rel.offset, &value, 8);
  }
}

}  // namespace dynacut::os
