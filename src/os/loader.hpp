// Guest module loader: maps MELF binaries into a process address space and
// applies relocations — the ELF-loader analogue. The DynaCut rewriter
// performs the same steps on checkpointed images when injecting handler
// libraries (src/rewriter/inject.cpp).
#pragma once

#include <memory>

#include "melf/binary.hpp"
#include "os/process.hpp"

namespace dynacut::os {

/// Maps `bin` at `base`, copies section bytes, applies kAbs64 relocations
/// against `base` and kGotEntry relocations against the global symbols of
/// modules already loaded in `p` (and `bin` itself). Registers the module.
/// Throws GuestError on overlap or unresolved imports.
void load_module(Process& p, std::shared_ptr<const melf::Binary> bin,
                 uint64_t base);

/// Resolves a global symbol across every module loaded in `p`; returns its
/// absolute address or 0.
uint64_t resolve_symbol(const Process& p, const std::string& name);

}  // namespace dynacut::os
