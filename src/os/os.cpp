#include "os/os.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "obs/bus.hpp"
#include "vm/exec.hpp"

namespace dynacut::os {

void Os::set_event_bus(obs::EventBus* bus) {
  bus_ = bus;
  if (bus_ != nullptr && !bus_->has_clock()) {
    bus_->set_clock([this] { return clock_; });
  }
}

// ---------------------------------------------------------------------------
// Process lifecycle
// ---------------------------------------------------------------------------

int Os::spawn(std::shared_ptr<const melf::Binary> app,
              std::vector<std::shared_ptr<const melf::Binary>> libs,
              const std::string& name) {
  if (app->entry == melf::Binary::kNoEntry) {
    throw GuestError("cannot spawn module without entry point: " + app->name);
  }
  auto p = std::make_unique<Process>();
  p->pid = next_pid_++;
  p->name = name.empty() ? app->name : name;

  uint64_t lib_base = kLibcBase;
  for (auto& lib : libs) {
    load_module(*p, lib, lib_base);
    lib_base = page_ceil(lib_base + lib->image_size()) + kPageSize;
  }
  load_module(*p, app, kAppBase);

  p->mem.map(kStackTop - kStackSize, kStackSize, kProtRead | kProtWrite,
             "[stack]");
  p->cpu.sp() = kStackTop - 64;
  p->cpu.ip = kAppBase + app->entry;
  p->fds[1] = FileDesc{FileDesc::Kind::kConsole, nullptr};

  int pid = p->pid;
  procs_[pid] = std::move(p);
  log_debug("spawned pid " + std::to_string(pid) + " (" + app->name + ")");
  return pid;
}

Process* Os::process(int pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

const Process* Os::process(int pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

std::vector<int> Os::pids() const {
  std::vector<int> out;
  for (const auto& [pid, p] : procs_) out.push_back(pid);
  return out;
}

std::vector<int> Os::process_group(int root) const {
  std::vector<int> out;
  if (procs_.count(root) == 0) return out;
  out.push_back(root);
  // Processes are pid-ordered and children have larger pids than parents,
  // so one forward pass collects the whole tree.
  for (const auto& [pid, p] : procs_) {
    if (pid == root || p->state == Process::State::kExited) continue;
    if (std::find(out.begin(), out.end(), p->ppid) != out.end()) {
      out.push_back(pid);
    }
  }
  return out;
}

void Os::kill(int pid) {
  if (Process* p = process(pid)) {
    p->state = Process::State::kExited;
    p->term_signal = 9;
  }
}

void Os::freeze(int pid) {
  Process* p = process(pid);
  if (p == nullptr || p->state == Process::State::kExited) {
    throw StateError("freeze: no live process " + std::to_string(pid));
  }
  if (p->state == Process::State::kFrozen) {
    throw StateError("freeze: already frozen " + std::to_string(pid));
  }
  // block_kind is preserved so thaw() can return a blocked process to
  // kBlocked and let it re-check its wait condition.
  p->state = Process::State::kFrozen;
}

void Os::thaw(int pid) {
  Process* p = process(pid);
  if (p == nullptr || p->state != Process::State::kFrozen) {
    throw StateError("thaw: process not frozen " + std::to_string(pid));
  }
  p->state = p->block_kind == Process::BlockKind::kNone
                 ? Process::State::kRunnable
                 : Process::State::kBlocked;
}

vm::MemEpoch Os::mem_epoch(int pid) {
  Process* p = process(pid);
  if (p == nullptr || p->state == Process::State::kExited) {
    throw StateError("mem_epoch: no live process " + std::to_string(pid));
  }
  return p->mem.snapshot_epoch();
}

std::optional<std::vector<uint64_t>> Os::dirty_pages_since(
    int pid, const vm::MemEpoch& since) const {
  const Process* p = process(pid);
  if (p == nullptr || p->state == Process::State::kExited) {
    throw StateError("dirty_pages_since: no live process " +
                     std::to_string(pid));
  }
  return p->mem.dirty_pages_since(since);
}

void Os::freeze_group(const std::vector<int>& pids) {
  size_t frozen = 0;
  try {
    for (; frozen < pids.size(); ++frozen) freeze(pids[frozen]);
  } catch (...) {
    for (size_t i = 0; i < frozen; ++i) thaw(pids[i]);
    throw;
  }
}

void Os::thaw_group(const std::vector<int>& pids) {
  for (int pid : pids) {
    Process* p = process(pid);
    if (p != nullptr && p->state == Process::State::kFrozen) thaw(pid);
  }
}

bool Os::all_exited() const {
  for (const auto& [pid, p] : procs_) {
    if (p->state != Process::State::kExited) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Host networking
// ---------------------------------------------------------------------------

bool Os::has_listener(uint16_t port) const {
  auto it = listeners_.find(port);
  return it != listeners_.end() && !it->second.expired();
}

HostConn Os::connect(uint16_t port) {
  auto it = listeners_.find(port);
  std::shared_ptr<Socket> listener =
      it == listeners_.end() ? nullptr : it->second.lock();
  if (listener == nullptr || listener->kind != Socket::Kind::kListen) {
    throw StateError("connect: no listener on port " + std::to_string(port));
  }
  auto conn = std::make_shared<Conn>();
  listener->backlog.push_back(SockEnd{conn, /*side_a=*/false});
  return HostConn(SockEnd{conn, /*side_a=*/true});
}

void Os::register_listener(const std::shared_ptr<Socket>& sock) {
  if (sock == nullptr || sock->kind != Socket::Kind::kListen) {
    throw StateError("register_listener: not a listening socket");
  }
  listeners_[sock->port] = sock;
}

int Os::adopt(std::unique_ptr<Process> p) {
  p->pid = next_pid_++;
  int pid = p->pid;
  procs_[pid] = std::move(p);
  return pid;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

bool Os::try_unblock(Process& p) {
  switch (p.block_kind) {
    case Process::BlockKind::kNone:
      return true;
    case Process::BlockKind::kRecv: {
      auto it = p.fds.find(p.block_fd);
      if (it == p.fds.end() || it->second.sock == nullptr) return true;
      Socket& s = *it->second.sock;
      if (s.kind != Socket::Kind::kStream) return true;
      if (!s.end.rx().empty() || !s.end.peer_open()) {
        p.block_kind = Process::BlockKind::kNone;
        return true;
      }
      return false;
    }
    case Process::BlockKind::kAccept: {
      auto it = p.fds.find(p.block_fd);
      if (it == p.fds.end() || it->second.sock == nullptr) return true;
      Socket& s = *it->second.sock;
      if (!s.backlog.empty()) {
        p.block_kind = Process::BlockKind::kNone;
        return true;
      }
      return false;
    }
    case Process::BlockKind::kSleep:
      if (clock_ >= p.wake_at) {
        p.block_kind = Process::BlockKind::kNone;
        return true;
      }
      return false;
  }
  return true;
}

uint64_t Os::run(uint64_t max_instr) {
  uint64_t retired = 0;
  while (retired < max_instr) {
    bool ran = false;
    uint64_t earliest_wake = ~0ull;

    for (auto& [pid, p] : procs_) {
      if (p->state == Process::State::kBlocked) {
        if (try_unblock(*p)) {
          p->state = Process::State::kRunnable;
        } else if (p->block_kind == Process::BlockKind::kSleep) {
          earliest_wake = std::min(earliest_wake, p->wake_at);
        }
      }
    }

    for (auto& [pid, p] : procs_) {
      if (p->state != Process::State::kRunnable) continue;
      run_quantum(*p, max_instr - retired, retired);
      ran = true;
      if (retired >= max_instr) break;
    }

    if (!ran) {
      if (earliest_wake != ~0ull && earliest_wake > clock_) {
        clock_ = earliest_wake;  // idle until the next timer
        continue;
      }
      break;  // deadlocked or waiting on external input
    }
  }
  return retired;
}

void Os::run_ticks(uint64_t ticks) {
  const uint64_t deadline = clock_ + ticks;
  while (clock_ < deadline) {
    uint64_t before = clock_;
    // Bound each inner run so we re-check the deadline frequently.
    uint64_t retired = run(kQuantum * 16);
    if (retired == 0 && clock_ == before) {
      clock_ = deadline;  // fully idle: jump forward
      break;
    }
  }
}

void Os::run_quantum(Process& p, uint64_t budget, uint64_t& retired) {
  uint64_t quota = std::min<uint64_t>(kQuantum, budget);
  yielded_ = false;
  uint64_t done = 0;
  while (done < quota) {
    if (p.state != Process::State::kRunnable) break;
    if (p.at_block_start && sink_ != nullptr) {
      sink_->on_block(p, p.cpu.ip);
    }
    p.at_block_start = false;

    // Execute through the decode cache — and, on hot paths, the superblock
    // cache, where one call can retire a multi-block fused trace. `n`
    // counts every attempted instruction — including one that trapped or
    // faulted — matching the per-step accounting this loop used to do:
    // both engines charge per attempt, so instructions_retired is
    // identical with superblocks on or off. Superblocks are bypassed while
    // a sink is attached (coverage needs an event per basic block).
    vm::SuperblockCache* sbc =
        (superblocks_ && sink_ == nullptr) ? &p.sbcache : nullptr;
    uint64_t n = 0;
    vm::StepResult r =
        vm::run_block(p.mem, p.cpu, &p.dcache, sbc, quota - done, n);
    done += n;
    retired += n;
    clock_ += n;
    p.instructions_retired += n;
    if (p.sbcache.events_pending()) drain_sb_events(p);
    if (n == 0) break;  // defensive: run_block always attempts >= 1

    switch (r.kind) {
      case vm::StepKind::kOk:
        if (r.block_end) p.at_block_start = true;
        break;
      case vm::StepKind::kSyscall:
        do_syscall(p);
        p.at_block_start = true;
        break;
      case vm::StepKind::kTrap:
        deliver_signal(p, sig::kSigTrap, r.fault_addr);
        break;
      case vm::StepKind::kFault: {
        int signo = r.fault == vm::FaultType::kSegv  ? sig::kSigSegv
                    : r.fault == vm::FaultType::kIll ? sig::kSigIll
                                                     : sig::kSigFpe;
        deliver_signal(p, signo, r.fault_addr);
        break;
      }
    }
    if (yielded_) break;
  }
}

void Os::drain_sb_events(Process& p) {
  // The vm layer queues superblock lifecycle records (it must not depend on
  // obs); the kernel drains them onto the bus after each run_block call.
  auto events = p.sbcache.take_events();
  if (bus_ == nullptr) return;
  for (const auto& e : events) {
    switch (e.kind) {
      case vm::SuperblockCache::SbEvent::kBuild:
        bus_->emit(obs::Event(obs::ev::kSbBuild, p.pid)
                       .with("entry", e.entry)
                       .with("instrs", e.detail));
        break;
      case vm::SuperblockCache::SbEvent::kRetire:
        bus_->emit(obs::Event(obs::ev::kSbRetire, p.pid)
                       .with("entry", e.entry)
                       .with("instrs", e.detail));
        break;
      case vm::SuperblockCache::SbEvent::kDeopt:
        bus_->emit(obs::Event(obs::ev::kSbDeopt, p.pid)
                       .with("entry", e.entry)
                       .with("resume_ip", e.detail));
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

void Os::deliver_signal(Process& p, int signo, uint64_t fault_addr) {
  const SigAction& act = p.sigactions[signo];
  if (signo == sig::kSigTrap && bus_ != nullptr) {
    // The DynaCut annotator (if installed) enriches this raw event with the
    // owning feature and its trap policy; here the kernel-side view only
    // knows the address and what the dispatch will do.
    bus_->emit(obs::Event(obs::ev::kTrapHit, p.pid)
                   .with("addr", fault_addr)
                   .with("ip", p.cpu.ip)
                   .with("action", act.handler == 0 ? std::string("kill")
                                                   : std::string("handler")));
  }
  if (act.handler == 0) {
    p.state = Process::State::kExited;
    p.term_signal = signo;
    log_debug("pid " + std::to_string(p.pid) + " killed by signal " +
              std::to_string(signo) + " at " + hex_addr(p.cpu.ip));
    return;
  }

  const uint64_t frame = (p.cpu.sp() - sig::frame::kSize) & ~7ull;
  try {
    p.mem.poke(frame + sig::frame::kSavedIp, &p.cpu.ip, 8);
    uint64_t flags = p.cpu.pack_flags();
    p.mem.poke(frame + sig::frame::kFlags, &flags, 8);
    p.mem.poke(frame + sig::frame::kRegs, p.cpu.regs.data(), 16 * 8);
    uint64_t s = static_cast<uint64_t>(signo);
    p.mem.poke(frame + sig::frame::kSigNo, &s, 8);
    p.mem.poke(frame + sig::frame::kFaultAddr, &fault_addr, 8);
    // Return address for the handler's `ret`: the registered restorer stub.
    uint64_t ra_slot = frame - 8;
    p.mem.poke(ra_slot, &act.restorer, 8);
    p.cpu.sp() = ra_slot;
  } catch (const StateError&) {
    // Unwritable stack: no way to deliver; kill (kernel does the same).
    p.state = Process::State::kExited;
    p.term_signal = signo;
    return;
  }

  p.signal_frames.push_back(frame);
  p.cpu.regs[1] = frame;
  p.cpu.regs[2] = static_cast<uint64_t>(signo);
  p.cpu.regs[3] = fault_addr;
  p.cpu.ip = act.handler;
  p.at_block_start = true;
}

void Os::do_sigreturn(Process& p) {
  if (p.signal_frames.empty()) {
    p.state = Process::State::kExited;
    p.term_signal = sig::kSigSegv;
    return;
  }
  uint64_t frame = p.signal_frames.back();
  p.signal_frames.pop_back();
  try {
    // Read the (possibly handler-modified) frame back — this is where a
    // redirected saved_ip takes effect.
    uint64_t ip, flags;
    p.mem.peek(frame + sig::frame::kSavedIp, &ip, 8);
    p.mem.peek(frame + sig::frame::kFlags, &flags, 8);
    p.mem.peek(frame + sig::frame::kRegs, p.cpu.regs.data(), 16 * 8);
    p.cpu.ip = ip;
    p.cpu.unpack_flags(flags);
  } catch (const StateError&) {
    p.state = Process::State::kExited;
    p.term_signal = sig::kSigSegv;
    return;
  }
  p.at_block_start = true;
}

// ---------------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------------

void Os::block_on_fd(Process& p, Process::BlockKind kind, int fd) {
  // Rewind onto the SYSCALL instruction (1 byte) so it re-executes when the
  // condition clears; r0 still holds the syscall number.
  p.cpu.ip -= 1;
  p.state = Process::State::kBlocked;
  p.block_kind = kind;
  p.block_fd = fd;
}

uint64_t Os::do_fork(Process& parent) {
  auto child = std::make_unique<Process>();
  child->pid = next_pid_++;
  child->ppid = parent.pid;
  child->name = parent.name;
  child->mem = parent.mem;  // deep copy: VMAs + populated pages
  child->cpu = parent.cpu;
  child->fds = parent.fds;  // shares Socket objects (dup semantics)
  child->next_fd = parent.next_fd;
  child->sigactions = parent.sigactions;
  child->signal_frames = parent.signal_frames;
  child->modules = parent.modules;
  child->cpu.regs[0] = 0;  // child's fork() return value
  child->at_block_start = true;
  int pid = child->pid;
  procs_[pid] = std::move(child);
  clock_ += costs_.fork_extra;
  return static_cast<uint64_t>(pid);
}

void Os::do_syscall(Process& p) {
  auto& r = p.cpu.regs;
  const uint64_t num = r[0];
  if (syscall_hook_) syscall_hook_(p, num);
  const uint64_t a1 = r[1], a2 = r[2], a3 = r[3];
  clock_ += costs_.base;

  auto ret = [&](uint64_t v) { r[0] = v; };

  switch (num) {
    case sys::kExit:
      p.state = Process::State::kExited;
      p.exit_code = static_cast<int>(a1);
      return;

    case sys::kWrite:
    case sys::kSend: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end()) return ret(sys::kErr);
      std::vector<uint8_t> buf(a3);
      if (!p.mem.read(a2, buf.data(), a3, kProtRead).ok) {
        return ret(sys::kErr);
      }
      clock_ += a3 / costs_.per_io_byte_div;
      if (it->second.kind == FileDesc::Kind::kConsole) {
        p.stdout_buf.append(buf.begin(), buf.end());
        return ret(a3);
      }
      Socket& s = *it->second.sock;
      if (s.kind != Socket::Kind::kStream || !s.end.peer_open()) {
        return ret(sys::kErr);
      }
      auto& q = s.end.tx();
      q.insert(q.end(), buf.begin(), buf.end());
      return ret(a3);
    }

    case sys::kRead:
    case sys::kRecv: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end()) return ret(sys::kErr);
      if (it->second.kind == FileDesc::Kind::kConsole) return ret(0);
      Socket& s = *it->second.sock;
      if (s.kind != Socket::Kind::kStream) return ret(sys::kErr);
      auto& q = s.end.rx();
      if (q.empty()) {
        if (!s.end.peer_open()) return ret(0);  // EOF
        return block_on_fd(p, Process::BlockKind::kRecv,
                           static_cast<int>(a1));
      }
      uint64_t n = std::min<uint64_t>(a3, q.size());
      std::vector<uint8_t> buf(q.begin(), q.begin() + static_cast<long>(n));
      if (!p.mem.write(a2, buf.data(), n, kProtWrite).ok) {
        return ret(sys::kErr);
      }
      q.erase(q.begin(), q.begin() + static_cast<long>(n));
      clock_ += n / costs_.per_io_byte_div;
      return ret(n);
    }

    case sys::kSocket: {
      int fd = p.next_fd++;
      auto sock = std::make_shared<Socket>();
      p.fds[fd] = FileDesc{FileDesc::Kind::kSocket, sock};
      return ret(static_cast<uint64_t>(fd));
    }

    case sys::kBind: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr) {
        return ret(sys::kErr);
      }
      it->second.sock->port = static_cast<uint16_t>(a2);
      return ret(0);
    }

    case sys::kListen: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr) {
        return ret(sys::kErr);
      }
      auto& sock = it->second.sock;
      sock->kind = Socket::Kind::kListen;
      listeners_[sock->port] = sock;
      return ret(0);
    }

    case sys::kAccept: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr ||
          it->second.sock->kind != Socket::Kind::kListen) {
        return ret(sys::kErr);
      }
      Socket& listener = *it->second.sock;
      if (listener.backlog.empty()) {
        return block_on_fd(p, Process::BlockKind::kAccept,
                           static_cast<int>(a1));
      }
      auto conn_sock = std::make_shared<Socket>();
      conn_sock->kind = Socket::Kind::kStream;
      conn_sock->end = listener.backlog.front();
      listener.backlog.pop_front();
      int fd = p.next_fd++;
      p.fds[fd] = FileDesc{FileDesc::Kind::kSocket, conn_sock};
      clock_ += costs_.accept_extra;
      return ret(static_cast<uint64_t>(fd));
    }

    case sys::kConnect: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr) {
        return ret(sys::kErr);
      }
      auto lit = listeners_.find(static_cast<uint16_t>(a2));
      std::shared_ptr<Socket> listener =
          lit == listeners_.end() ? nullptr : lit->second.lock();
      if (listener == nullptr) return ret(sys::kErr);
      auto conn = std::make_shared<Conn>();
      listener->backlog.push_back(SockEnd{conn, /*side_a=*/false});
      it->second.sock->kind = Socket::Kind::kStream;
      it->second.sock->end = SockEnd{conn, /*side_a=*/true};
      return ret(0);
    }

    case sys::kClose: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end()) return ret(sys::kErr);
      if (it->second.sock && it->second.sock->kind == Socket::Kind::kStream) {
        it->second.sock->end.close();
      }
      p.fds.erase(it);
      return ret(0);
    }

    case sys::kFork:
      return ret(do_fork(p));

    case sys::kSigaction: {
      if (a1 >= sig::kNumSignals) return ret(sys::kErr);
      p.sigactions[a1] = SigAction{a2, a3};
      return ret(0);
    }

    case sys::kSigreturn:
      do_sigreturn(p);
      return;

    case sys::kNanosleep:
      p.state = Process::State::kBlocked;
      p.block_kind = Process::BlockKind::kSleep;
      p.wake_at = clock_ + a1;
      return ret(0);

    case sys::kMmap: {
      uint64_t hint = a1 == 0 ? kHeapBase : a1;
      uint64_t size = page_ceil(a2);
      if (size == 0) return ret(sys::kErr);
      uint64_t addr = p.mem.find_free(size, hint);
      p.mem.map(addr, size, static_cast<uint32_t>(a3), "[anon]");
      return ret(addr);
    }

    case sys::kMunmap:
      try {
        p.mem.unmap(page_floor(a1), page_ceil(a2));
        return ret(0);
      } catch (const StateError&) {
        return ret(sys::kErr);
      }

    case sys::kMprotect:
      try {
        p.mem.protect(page_floor(a1), page_ceil(a2),
                      static_cast<uint32_t>(a3));
        return ret(0);
      } catch (const StateError&) {
        return ret(sys::kErr);
      }

    case sys::kGetpid:
      return ret(static_cast<uint64_t>(p.pid));

    case sys::kNudge:
      nudges_.emplace_back(p.pid, a1);
      if (nudge_hook_) nudge_hook_(p, a1);
      return ret(0);

    case sys::kYield:
      yielded_ = true;
      return ret(0);

    case sys::kClock:
      return ret(clock_);

    default:
      // Unknown syscall: SIGSYS-like default — kill the process.
      p.state = Process::State::kExited;
      p.term_signal = 31;
      return;
  }
}

}  // namespace dynacut::os
