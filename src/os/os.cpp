#include "os/os.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "obs/bus.hpp"
#include "vm/exec.hpp"

namespace dynacut::os {

namespace {
constexpr uint64_t kNoDeadline = ~0ull;
}  // namespace

void Os::set_event_bus(obs::EventBus* bus) {
  bus_ = bus;
  if (bus_ != nullptr && !bus_->has_clock()) {
    bus_->set_clock([this] { return now(); });
  }
}

// ---------------------------------------------------------------------------
// Process lifecycle
// ---------------------------------------------------------------------------

int Os::spawn(std::shared_ptr<const melf::Binary> app,
              std::vector<std::shared_ptr<const melf::Binary>> libs,
              const std::string& name) {
  if (app->entry == melf::Binary::kNoEntry) {
    throw GuestError("cannot spawn module without entry point: " + app->name);
  }
  auto p = std::make_unique<Process>();
  p->pid = next_pid_++;
  p->name = name.empty() ? app->name : name;
  p->core = assign_core();

  uint64_t lib_base = kLibcBase;
  for (auto& lib : libs) {
    load_module(*p, lib, lib_base);
    lib_base = page_ceil(lib_base + lib->image_size()) + kPageSize;
  }
  load_module(*p, app, kAppBase);

  p->mem.map(kStackTop - kStackSize, kStackSize, kProtRead | kProtWrite,
             "[stack]");
  p->cpu.sp() = kStackTop - 64;
  p->cpu.ip = kAppBase + app->entry;
  p->fds[1] = FileDesc{FileDesc::Kind::kConsole, nullptr};

  int pid = p->pid;
  procs_[pid] = std::move(p);
  log_debug("spawned pid " + std::to_string(pid) + " (" + app->name + ")");
  return pid;
}

Process* Os::process(int pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

const Process* Os::process(int pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

std::vector<int> Os::pids() const {
  std::vector<int> out;
  for (const auto& [pid, p] : procs_) out.push_back(pid);
  return out;
}

std::vector<int> Os::process_group(int root) const {
  std::vector<int> out;
  if (procs_.count(root) == 0) return out;
  out.push_back(root);
  // Processes are pid-ordered and children have larger pids than parents,
  // so one forward pass collects the whole tree.
  for (const auto& [pid, p] : procs_) {
    if (pid == root || p->state == Process::State::kExited) continue;
    if (std::find(out.begin(), out.end(), p->ppid) != out.end()) {
      out.push_back(pid);
    }
  }
  return out;
}

void Os::kill(int pid) {
  if (Process* p = process(pid)) {
    p->state = Process::State::kExited;
    p->term_signal = 9;
  }
}

void Os::freeze(int pid) {
  Process* p = process(pid);
  if (p == nullptr || p->state == Process::State::kExited) {
    throw StateError("freeze: no live process " + std::to_string(pid));
  }
  if (p->state == Process::State::kFrozen) {
    throw StateError("freeze: already frozen " + std::to_string(pid));
  }
  // block_kind is preserved so thaw() can return a blocked process to
  // kBlocked and let it re-check its wait condition.
  p->state = Process::State::kFrozen;
}

void Os::thaw(int pid) {
  Process* p = process(pid);
  if (p == nullptr || p->state != Process::State::kFrozen) {
    throw StateError("thaw: process not frozen " + std::to_string(pid));
  }
  p->state = p->block_kind == Process::BlockKind::kNone
                 ? Process::State::kRunnable
                 : Process::State::kBlocked;
}

vm::MemEpoch Os::mem_epoch(int pid) {
  Process* p = process(pid);
  if (p == nullptr || p->state == Process::State::kExited) {
    throw StateError("mem_epoch: no live process " + std::to_string(pid));
  }
  return p->mem.snapshot_epoch();
}

std::optional<std::vector<uint64_t>> Os::dirty_pages_since(
    int pid, const vm::MemEpoch& since) const {
  const Process* p = process(pid);
  if (p == nullptr || p->state == Process::State::kExited) {
    throw StateError("dirty_pages_since: no live process " +
                     std::to_string(pid));
  }
  return p->mem.dirty_pages_since(since);
}

void Os::freeze_group(const std::vector<int>& pids) {
  size_t frozen = 0;
  try {
    for (; frozen < pids.size(); ++frozen) freeze(pids[frozen]);
  } catch (...) {
    for (size_t i = 0; i < frozen; ++i) thaw(pids[i]);
    throw;
  }
}

void Os::thaw_group(const std::vector<int>& pids) {
  for (int pid : pids) {
    Process* p = process(pid);
    if (p != nullptr && p->state == Process::State::kFrozen) thaw(pid);
  }
}

bool Os::all_exited() const {
  for (const auto& [pid, p] : procs_) {
    if (p->state != Process::State::kExited) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Virtual cores
// ---------------------------------------------------------------------------

void Os::set_cores(size_t n) {
  if (n == 0) throw StateError("set_cores: need at least one core");
  const uint64_t t = now();
  cores_.assign(n, Core{});
  for (auto& c : cores_) c.clock = t;
  // Re-shard live processes round-robin in pid order — deterministic and
  // independent of their previous placement.
  assign_next_ = 0;
  for (auto& [pid, p] : procs_) {
    p->queued = false;  // the old queues are gone
    if (p->state == Process::State::kExited) continue;
    p->core = assign_core();
  }
}

size_t Os::assign_core() { return assign_next_++ % cores_.size(); }

Os::CoreStats Os::core_stats(size_t core) const {
  if (core >= cores_.size()) {
    throw StateError("core_stats: no core " + std::to_string(core));
  }
  const Core& c = cores_[core];
  return CoreStats{c.clock, c.retired, c.steals};
}

int Os::core_of(int pid) const {
  const Process* p = process(pid);
  return p == nullptr ? -1 : static_cast<int>(p->core);
}

void Os::pin(int pid, size_t core) {
  if (core >= cores_.size()) {
    throw StateError("pin: no core " + std::to_string(core));
  }
  Process* p = process(pid);
  if (p == nullptr) throw StateError("pin: no process " + std::to_string(pid));
  if (p->queued && p->core != core) {
    auto& dq = cores_[p->core].ready;
    dq.erase(std::remove(dq.begin(), dq.end(), pid), dq.end());
    p->queued = false;
  }
  p->core = core;
}

uint64_t Os::total_retired() const {
  uint64_t sum = 0;
  for (const auto& c : cores_) sum += c.retired;
  return sum;
}

uint64_t Os::total_sigtraps() const {
  uint64_t sum = 0;
  for (const auto& [pid, p] : procs_) sum += p->sigtraps;
  return sum;
}

uint64_t Os::now() const {
  if (running_core_ >= 0) return cores_[static_cast<size_t>(running_core_)].clock;
  uint64_t mx = 0;
  for (const auto& c : cores_) mx = std::max(mx, c.clock);
  return mx;
}

uint64_t Os::min_core_clock() const {
  uint64_t mn = ~0ull;
  for (const auto& c : cores_) mn = std::min(mn, c.clock);
  return mn;
}

void Os::advance_clock(uint64_t ticks) {
  for (auto& c : cores_) c.clock += ticks;
}

void Os::charge_downtime(const std::vector<int>& pids, uint64_t ticks) {
  if (cores_.size() == 1) {
    // The lone core is the one doing the rewrite: the whole machine stalls.
    // This is the historical single-core fig8 semantics.
    cores_[0].clock += ticks;
    return;
  }
  const uint64_t until = now() + ticks;
  for (int pid : pids) {
    if (Process* p = process(pid)) {
      p->not_before = std::max(p->not_before, until);
    }
  }
}

// ---------------------------------------------------------------------------
// Host networking
// ---------------------------------------------------------------------------

bool Os::has_listener(uint16_t port) const {
  const auto& shard = listeners_[port % kNetShards];
  auto it = shard.find(port);
  return it != shard.end() && !it->second.expired();
}

HostConn Os::connect(uint16_t port) {
  auto& shard = listeners_[port % kNetShards];
  auto it = shard.find(port);
  std::shared_ptr<Socket> listener =
      it == shard.end() ? nullptr : it->second.lock();
  if (listener == nullptr || listener->kind != Socket::Kind::kListen) {
    throw StateError("connect: no listener on port " + std::to_string(port));
  }
  auto conn = std::make_shared<Conn>();
  listener->backlog.push_back(SockEnd{conn, /*side_a=*/false});
  return HostConn(SockEnd{conn, /*side_a=*/true});
}

void Os::register_listener(const std::shared_ptr<Socket>& sock) {
  if (sock == nullptr || sock->kind != Socket::Kind::kListen) {
    throw StateError("register_listener: not a listening socket");
  }
  listeners_[sock->port % kNetShards][sock->port] = sock;
}

int Os::adopt(std::unique_ptr<Process> p) {
  p->pid = next_pid_++;
  p->core = assign_core();
  p->queued = false;
  int pid = p->pid;
  procs_[pid] = std::move(p);
  return pid;
}

uint64_t Os::resident_pages_bytes(std::set<const void*>* seen) const {
  std::set<const void*> local;
  std::set<const void*>& s = seen != nullptr ? *seen : local;
  uint64_t total = 0;
  for (const auto& [pid, p] : procs_) total += p->mem.resident_bytes(&s);
  return total;
}

// ---------------------------------------------------------------------------
// Scheduler
//
// N virtual cores, each with a rotating ready deque and its own clock.
// Execution proceeds in bounded-skew rounds:
//
//   1. scan: unblock waiters whose condition cleared, enqueue every
//      eligible runnable pid on its core (a pid is in at most one deque;
//      entries are removed only by popping, so Process::queued is exact).
//   2. steal: a core with an empty deque takes one pid from the back of
//      the most-loaded deque (>= 2 entries); victim ties are broken by the
//      seeded RNG — the only non-structural scheduling decision.
//   3. frontier: the minimum clock among cores with work. Cores with no
//      work fast-forward to it (idle time passes for them too).
//   4. execute: each core pops and runs quanta until its clock passes
//      frontier + kSkewWindow, rotating finished processes to the back.
//
// The skew window keeps per-core clocks comparable (cross-core latency
// differences are bounded by kSkewWindow + one quantum), which is what
// makes "the furthest clock" a meaningful machine-wide time. With one core
// this specializes to strict round-robin with a persistent rotation point.
// ---------------------------------------------------------------------------

bool Os::try_unblock(Process& p) {
  switch (p.block_kind) {
    case Process::BlockKind::kNone:
      return true;
    case Process::BlockKind::kRecv: {
      auto it = p.fds.find(p.block_fd);
      if (it == p.fds.end() || it->second.sock == nullptr) return true;
      Socket& s = *it->second.sock;
      if (s.kind != Socket::Kind::kStream) return true;
      if (!s.end.rx().empty() || !s.end.peer_open()) {
        p.block_kind = Process::BlockKind::kNone;
        return true;
      }
      return false;
    }
    case Process::BlockKind::kAccept: {
      auto it = p.fds.find(p.block_fd);
      if (it == p.fds.end() || it->second.sock == nullptr) return true;
      Socket& s = *it->second.sock;
      if (!s.backlog.empty()) {
        p.block_kind = Process::BlockKind::kNone;
        return true;
      }
      return false;
    }
    case Process::BlockKind::kSleep:
      if (cores_[p.core].clock >= p.wake_at) {
        p.block_kind = Process::BlockKind::kNone;
        return true;
      }
      return false;
  }
  return true;
}

void Os::steal_work() {
  if (cores_.size() < 2) return;
  for (size_t thief = 0; thief < cores_.size(); ++thief) {
    if (!cores_[thief].ready.empty()) continue;
    // Victim: the most-loaded core with at least two queued pids; ties
    // broken by reservoir sampling on the seeded RNG so the choice is
    // deterministic per seed but not structurally biased to low cores.
    size_t victim = thief;
    size_t victim_size = 1;
    uint64_t ties = 0;
    for (size_t vi = 0; vi < cores_.size(); ++vi) {
      if (vi == thief) continue;
      size_t sz = cores_[vi].ready.size();
      if (sz < 2) continue;
      if (sz > victim_size) {
        victim = vi;
        victim_size = sz;
        ties = 1;
      } else if (sz == victim_size) {
        ++ties;
        if (rng_.below(ties) == 0) victim = vi;
      }
    }
    if (victim == thief) continue;
    int pid = cores_[victim].ready.back();
    cores_[victim].ready.pop_back();
    cores_[thief].ready.push_back(pid);
    cores_[thief].steals++;
    if (Process* p = process(pid)) p->core = thief;
    if (bus_ != nullptr) {
      bus_->emit(obs::Event(obs::ev::kSchedSteal, pid)
                     .with("from", static_cast<uint64_t>(victim))
                     .with("to", static_cast<uint64_t>(thief)));
    }
  }
}

uint64_t Os::run(uint64_t max_instr) {
  return run_bounded(max_instr, kNoDeadline);
}

uint64_t Os::run_bounded(uint64_t max_instr, uint64_t tick_deadline) {
  uint64_t retired = 0;
  while (retired < max_instr) {
    // --- 1. scan: unblock + enqueue --------------------------------------
    uint64_t earliest_wake = kNoDeadline;
    for (auto& [pid, p] : procs_) {
      if (p->state == Process::State::kBlocked) {
        if (try_unblock(*p)) {
          p->state = Process::State::kRunnable;
        } else if (p->block_kind == Process::BlockKind::kSleep) {
          earliest_wake = std::min(earliest_wake, p->wake_at);
        }
      }
      if (p->state != Process::State::kRunnable) continue;
      Core& c = cores_[p->core];
      if (c.clock < p->not_before) {
        // Downtime-charged: acts like a sleeper until its core clock
        // catches up with the charge.
        earliest_wake = std::min(earliest_wake, p->not_before);
      } else if (!p->queued) {
        c.ready.push_back(pid);
        p->queued = true;
      }
    }

    // --- 2. steal ---------------------------------------------------------
    steal_work();

    // --- 3. frontier ------------------------------------------------------
    uint64_t frontier = kNoDeadline;
    for (const auto& c : cores_) {
      if (!c.ready.empty() && c.clock < tick_deadline) {
        frontier = std::min(frontier, c.clock);
      }
    }

    if (frontier == kNoDeadline) {
      // No core has schedulable work under the deadline.
      bool work_past_deadline = false;
      for (const auto& c : cores_) work_past_deadline |= !c.ready.empty();
      if (work_past_deadline) break;  // run_ticks: deadline reached
      if (earliest_wake == kNoDeadline) break;  // deadlock / external input
      // Fully idle: jump to the next timer, clamped to the deadline so a
      // distant sleeper cannot drag run_ticks past its window.
      const uint64_t target = std::min(earliest_wake, tick_deadline);
      for (auto& c : cores_) c.clock = std::max(c.clock, target);
      if (target == earliest_wake) continue;  // the sleeper is now due
      break;                                  // deadline reached first
    }

    // Idle cores experience the passage of time too: pull them up to the
    // frontier so stolen or newly woken work starts at a coherent clock.
    for (auto& c : cores_) {
      if (c.ready.empty() && c.clock < frontier) c.clock = frontier;
    }

    // --- 4. execute one bounded-skew window per core -----------------------
    const uint64_t window_end = frontier > kNoDeadline - kSkewWindow
                                    ? kNoDeadline
                                    : frontier + kSkewWindow;
    for (size_t ci = 0; ci < cores_.size() && retired < max_instr; ++ci) {
      Core& c = cores_[ci];
      running_core_ = static_cast<int>(ci);
      while (!c.ready.empty() && c.clock < window_end &&
             c.clock < tick_deadline && retired < max_instr) {
        int pid = c.ready.front();
        c.ready.pop_front();
        auto it = procs_.find(pid);
        if (it == procs_.end()) continue;
        Process& p = *it->second;
        if (!p.queued || p.core != ci) continue;  // stale entry
        p.queued = false;
        if (p.state != Process::State::kRunnable) continue;
        if (c.clock < p.not_before) continue;  // re-enqueued once eligible
        run_quantum(p, max_instr - retired, retired, tick_deadline);
        if (p.state == Process::State::kRunnable) {
          c.ready.push_back(pid);  // rotate to the back
          p.queued = true;
        }
      }
      running_core_ = -1;
    }
  }
  return retired;
}

void Os::run_ticks(uint64_t ticks) {
  const uint64_t deadline = now() + ticks;
  while (min_core_clock() < deadline) {
    const uint64_t before = min_core_clock();
    const uint64_t retired = run_bounded(~0ull, deadline);
    if (retired == 0 && min_core_clock() == before) break;
  }
  // Cores that went idle before the deadline simply experience it passing.
  for (auto& c : cores_) c.clock = std::max(c.clock, deadline);
  // The deadline is enforced per operation inside run_quantum: a core stops
  // issuing once its clock reaches it, so pure compute lands exactly on the
  // deadline and the only possible overshoot is the cost of one syscall
  // that *started* before it.
  assert(min_core_clock() >= deadline);
}

void Os::run_quantum(Process& p, uint64_t budget, uint64_t& retired,
                     uint64_t tick_deadline) {
  Core& c = cores_[p.core];
  uint64_t quota = std::min<uint64_t>(kQuantum, budget);
  yielded_ = false;
  uint64_t done = 0;
  while (done < quota) {
    if (p.state != Process::State::kRunnable) break;
    if (c.clock >= tick_deadline) break;
    if (p.at_block_start && sink_ != nullptr) {
      sink_->on_block(p, p.cpu.ip);
    }
    p.at_block_start = false;

    // Execute through the decode cache — and, on hot paths, the superblock
    // cache, where one call can retire a multi-block fused trace. `n`
    // counts every attempted instruction — including one that trapped or
    // faulted — matching the per-step accounting this loop used to do:
    // both engines charge per attempt, so instructions_retired is
    // identical with superblocks on or off. Superblocks are bypassed while
    // a sink is attached (coverage needs an event per basic block).
    vm::SuperblockCache* sbc =
        (superblocks_ && sink_ == nullptr) ? &p.sbcache : nullptr;
    // Each instruction costs >= 1 tick, so clamping the attempt budget to
    // the remaining ticks makes compute land exactly on a run_ticks
    // deadline instead of overshooting by the rest of the quantum.
    uint64_t chunk = quota - done;
    if (tick_deadline != kNoDeadline) {
      chunk = std::min(chunk, tick_deadline - c.clock);
    }
    uint64_t n = 0;
    vm::StepResult r =
        vm::run_block(p.mem, p.cpu, &p.dcache, sbc, chunk, n);
    done += n;
    retired += n;
    c.clock += n;
    c.retired += n;
    p.instructions_retired += n;
    if (p.sbcache.events_pending()) drain_sb_events(p);
    if (n == 0) break;  // defensive: run_block always attempts >= 1

    switch (r.kind) {
      case vm::StepKind::kOk:
        if (r.block_end) p.at_block_start = true;
        break;
      case vm::StepKind::kSyscall:
        do_syscall(p);
        p.at_block_start = true;
        break;
      case vm::StepKind::kTrap:
        deliver_signal(p, sig::kSigTrap, r.fault_addr);
        break;
      case vm::StepKind::kFault: {
        int signo = r.fault == vm::FaultType::kSegv  ? sig::kSigSegv
                    : r.fault == vm::FaultType::kIll ? sig::kSigIll
                                                     : sig::kSigFpe;
        deliver_signal(p, signo, r.fault_addr);
        break;
      }
    }
    if (yielded_) break;
  }
}

void Os::drain_sb_events(Process& p) {
  // The vm layer queues superblock lifecycle records (it must not depend on
  // obs); the kernel drains them onto the bus after each run_block call.
  auto events = p.sbcache.take_events();
  if (bus_ == nullptr) return;
  for (const auto& e : events) {
    switch (e.kind) {
      case vm::SuperblockCache::SbEvent::kBuild:
        bus_->emit(obs::Event(obs::ev::kSbBuild, p.pid)
                       .with("entry", e.entry)
                       .with("instrs", e.detail));
        break;
      case vm::SuperblockCache::SbEvent::kRetire:
        bus_->emit(obs::Event(obs::ev::kSbRetire, p.pid)
                       .with("entry", e.entry)
                       .with("instrs", e.detail));
        break;
      case vm::SuperblockCache::SbEvent::kDeopt:
        bus_->emit(obs::Event(obs::ev::kSbDeopt, p.pid)
                       .with("entry", e.entry)
                       .with("resume_ip", e.detail));
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

void Os::deliver_signal(Process& p, int signo, uint64_t fault_addr) {
  const SigAction& act = p.sigactions[signo];
  if (signo == sig::kSigTrap) ++p.sigtraps;
  if (signo == sig::kSigTrap && bus_ != nullptr) {
    // The DynaCut annotator (if installed) enriches this raw event with the
    // owning feature and its trap policy; here the kernel-side view only
    // knows the address and what the dispatch will do.
    bus_->emit(obs::Event(obs::ev::kTrapHit, p.pid)
                   .with("addr", fault_addr)
                   .with("ip", p.cpu.ip)
                   .with("core", static_cast<uint64_t>(p.core))
                   .with("action", act.handler == 0 ? std::string("kill")
                                                    : std::string("handler")));
  }
  if (act.handler == 0) {
    p.state = Process::State::kExited;
    p.term_signal = signo;
    log_debug("pid " + std::to_string(p.pid) + " killed by signal " +
              std::to_string(signo) + " at " + hex_addr(p.cpu.ip));
    return;
  }

  const uint64_t frame = (p.cpu.sp() - sig::frame::kSize) & ~7ull;
  try {
    p.mem.poke(frame + sig::frame::kSavedIp, &p.cpu.ip, 8);
    uint64_t flags = p.cpu.pack_flags();
    p.mem.poke(frame + sig::frame::kFlags, &flags, 8);
    p.mem.poke(frame + sig::frame::kRegs, p.cpu.regs.data(), 16 * 8);
    uint64_t s = static_cast<uint64_t>(signo);
    p.mem.poke(frame + sig::frame::kSigNo, &s, 8);
    p.mem.poke(frame + sig::frame::kFaultAddr, &fault_addr, 8);
    // Return address for the handler's `ret`: the registered restorer stub.
    uint64_t ra_slot = frame - 8;
    p.mem.poke(ra_slot, &act.restorer, 8);
    p.cpu.sp() = ra_slot;
  } catch (const StateError&) {
    // Unwritable stack: no way to deliver; kill (kernel does the same).
    p.state = Process::State::kExited;
    p.term_signal = signo;
    return;
  }

  p.signal_frames.push_back(frame);
  p.cpu.regs[1] = frame;
  p.cpu.regs[2] = static_cast<uint64_t>(signo);
  p.cpu.regs[3] = fault_addr;
  p.cpu.ip = act.handler;
  p.at_block_start = true;
}

void Os::do_sigreturn(Process& p) {
  if (p.signal_frames.empty()) {
    p.state = Process::State::kExited;
    p.term_signal = sig::kSigSegv;
    return;
  }
  uint64_t frame = p.signal_frames.back();
  p.signal_frames.pop_back();
  try {
    // Read the (possibly handler-modified) frame back — this is where a
    // redirected saved_ip takes effect.
    uint64_t ip, flags;
    p.mem.peek(frame + sig::frame::kSavedIp, &ip, 8);
    p.mem.peek(frame + sig::frame::kFlags, &flags, 8);
    p.mem.peek(frame + sig::frame::kRegs, p.cpu.regs.data(), 16 * 8);
    p.cpu.ip = ip;
    p.cpu.unpack_flags(flags);
  } catch (const StateError&) {
    p.state = Process::State::kExited;
    p.term_signal = sig::kSigSegv;
    return;
  }
  p.at_block_start = true;
}

// ---------------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------------

void Os::block_on_fd(Process& p, Process::BlockKind kind, int fd) {
  // Rewind onto the SYSCALL instruction (1 byte) so it re-executes when the
  // condition clears; r0 still holds the syscall number.
  p.cpu.ip -= 1;
  p.state = Process::State::kBlocked;
  p.block_kind = kind;
  p.block_fd = fd;
}

uint64_t Os::do_fork(Process& parent) {
  auto child = std::make_unique<Process>();
  child->pid = next_pid_++;
  child->ppid = parent.pid;
  child->name = parent.name;
  child->mem = parent.mem;  // deep copy: VMAs + populated pages
  child->cpu = parent.cpu;
  child->fds = parent.fds;  // shares Socket objects (dup semantics)
  child->next_fd = parent.next_fd;
  child->sigactions = parent.sigactions;
  child->signal_frames = parent.signal_frames;
  child->modules = parent.modules;
  child->core = assign_core();
  child->cpu.regs[0] = 0;  // child's fork() return value
  child->at_block_start = true;
  int pid = child->pid;
  procs_[pid] = std::move(child);
  cores_[parent.core].clock += costs_.fork_extra;
  return static_cast<uint64_t>(pid);
}

void Os::do_syscall(Process& p) {
  auto& r = p.cpu.regs;
  const uint64_t num = r[0];
  if (syscall_hook_) syscall_hook_(p, num);
  const uint64_t a1 = r[1], a2 = r[2], a3 = r[3];
  Core& core = cores_[p.core];
  core.clock += costs_.base;

  auto ret = [&](uint64_t v) { r[0] = v; };

  switch (num) {
    case sys::kExit:
      p.state = Process::State::kExited;
      p.exit_code = static_cast<int>(a1);
      return;

    case sys::kWrite:
    case sys::kSend: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end()) return ret(sys::kErr);
      std::vector<uint8_t> buf(a3);
      if (!p.mem.read(a2, buf.data(), a3, kProtRead).ok) {
        return ret(sys::kErr);
      }
      core.clock += a3 / costs_.per_io_byte_div;
      if (it->second.kind == FileDesc::Kind::kConsole) {
        p.stdout_buf.append(buf.begin(), buf.end());
        return ret(a3);
      }
      Socket& s = *it->second.sock;
      if (s.kind != Socket::Kind::kStream || !s.end.peer_open()) {
        return ret(sys::kErr);
      }
      auto& q = s.end.tx();
      q.insert(q.end(), buf.begin(), buf.end());
      return ret(a3);
    }

    case sys::kRead:
    case sys::kRecv: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end()) return ret(sys::kErr);
      if (it->second.kind == FileDesc::Kind::kConsole) return ret(0);
      Socket& s = *it->second.sock;
      if (s.kind != Socket::Kind::kStream) return ret(sys::kErr);
      auto& q = s.end.rx();
      if (q.empty()) {
        if (!s.end.peer_open()) return ret(0);  // EOF
        return block_on_fd(p, Process::BlockKind::kRecv,
                           static_cast<int>(a1));
      }
      uint64_t n = std::min<uint64_t>(a3, q.size());
      std::vector<uint8_t> buf(q.begin(), q.begin() + static_cast<long>(n));
      if (!p.mem.write(a2, buf.data(), n, kProtWrite).ok) {
        return ret(sys::kErr);
      }
      q.erase(q.begin(), q.begin() + static_cast<long>(n));
      core.clock += n / costs_.per_io_byte_div;
      return ret(n);
    }

    case sys::kSocket: {
      int fd = p.next_fd++;
      auto sock = std::make_shared<Socket>();
      p.fds[fd] = FileDesc{FileDesc::Kind::kSocket, sock};
      return ret(static_cast<uint64_t>(fd));
    }

    case sys::kBind: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr) {
        return ret(sys::kErr);
      }
      it->second.sock->port = static_cast<uint16_t>(a2);
      return ret(0);
    }

    case sys::kListen: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr) {
        return ret(sys::kErr);
      }
      auto& sock = it->second.sock;
      sock->kind = Socket::Kind::kListen;
      listeners_[sock->port % kNetShards][sock->port] = sock;
      return ret(0);
    }

    case sys::kAccept: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr ||
          it->second.sock->kind != Socket::Kind::kListen) {
        return ret(sys::kErr);
      }
      Socket& listener = *it->second.sock;
      if (listener.backlog.empty()) {
        return block_on_fd(p, Process::BlockKind::kAccept,
                           static_cast<int>(a1));
      }
      auto conn_sock = std::make_shared<Socket>();
      conn_sock->kind = Socket::Kind::kStream;
      conn_sock->end = listener.backlog.front();
      listener.backlog.pop_front();
      int fd = p.next_fd++;
      p.fds[fd] = FileDesc{FileDesc::Kind::kSocket, conn_sock};
      core.clock += costs_.accept_extra;
      return ret(static_cast<uint64_t>(fd));
    }

    case sys::kConnect: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end() || it->second.sock == nullptr) {
        return ret(sys::kErr);
      }
      auto& shard = listeners_[static_cast<uint16_t>(a2) % kNetShards];
      auto lit = shard.find(static_cast<uint16_t>(a2));
      std::shared_ptr<Socket> listener =
          lit == shard.end() ? nullptr : lit->second.lock();
      if (listener == nullptr) return ret(sys::kErr);
      auto conn = std::make_shared<Conn>();
      listener->backlog.push_back(SockEnd{conn, /*side_a=*/false});
      it->second.sock->kind = Socket::Kind::kStream;
      it->second.sock->end = SockEnd{conn, /*side_a=*/true};
      return ret(0);
    }

    case sys::kClose: {
      auto it = p.fds.find(static_cast<int>(a1));
      if (it == p.fds.end()) return ret(sys::kErr);
      if (it->second.sock && it->second.sock->kind == Socket::Kind::kStream) {
        it->second.sock->end.close();
      }
      p.fds.erase(it);
      return ret(0);
    }

    case sys::kFork:
      return ret(do_fork(p));

    case sys::kSigaction: {
      if (a1 >= sig::kNumSignals) return ret(sys::kErr);
      p.sigactions[a1] = SigAction{a2, a3};
      return ret(0);
    }

    case sys::kSigreturn:
      do_sigreturn(p);
      return;

    case sys::kNanosleep:
      p.state = Process::State::kBlocked;
      p.block_kind = Process::BlockKind::kSleep;
      p.wake_at = core.clock + a1;
      return ret(0);

    case sys::kMmap: {
      uint64_t hint = a1 == 0 ? kHeapBase : a1;
      uint64_t size = page_ceil(a2);
      if (size == 0) return ret(sys::kErr);
      uint64_t addr = p.mem.find_free(size, hint);
      p.mem.map(addr, size, static_cast<uint32_t>(a3), "[anon]");
      return ret(addr);
    }

    case sys::kMunmap:
      try {
        p.mem.unmap(page_floor(a1), page_ceil(a2));
        return ret(0);
      } catch (const StateError&) {
        return ret(sys::kErr);
      }

    case sys::kMprotect:
      try {
        p.mem.protect(page_floor(a1), page_ceil(a2),
                      static_cast<uint32_t>(a3));
        return ret(0);
      } catch (const StateError&) {
        return ret(sys::kErr);
      }

    case sys::kGetpid:
      return ret(static_cast<uint64_t>(p.pid));

    case sys::kNudge:
      nudges_.emplace_back(p.pid, a1);
      if (nudge_hook_) nudge_hook_(p, a1);
      return ret(0);

    case sys::kYield:
      yielded_ = true;
      return ret(0);

    case sys::kClock:
      return ret(core.clock);

    default:
      // Unknown syscall: SIGSYS-like default — kill the process.
      p.state = Process::State::kExited;
      p.term_signal = 31;
      return;
  }
}

}  // namespace dynacut::os
