// osim: the userspace OS simulator hosting guest processes.
//
// Single-core round-robin scheduler with a virtual clock (1 tick per retired
// instruction plus per-syscall costs). Blocking syscalls park the process
// and transparently re-execute when the condition clears. Signals are
// delivered through guest-stack frames with an rt_sigreturn-style unwind —
// the substrate DynaCut's trap-handling and redirection run on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "os/loader.hpp"
#include "os/process.hpp"
#include "os/socket.hpp"

namespace dynacut::obs {
class EventBus;
}

namespace dynacut::os {

/// Receives basic-block entry events (the drcov tracer implements this).
class BlockSink {
 public:
  virtual ~BlockSink() = default;
  virtual void on_block(const Process& p, uint64_t ip) = 0;
};

/// Per-syscall virtual-time costs (ticks; 1 tick ~ 1ns of the paper's
/// hardware). Exposed so benches can document the cost model.
struct SyscallCosts {
  uint64_t base = 60;
  uint64_t per_io_byte_div = 4;  ///< io adds len/div ticks
  uint64_t fork_extra = 20000;
  uint64_t accept_extra = 500;
};

class Os {
 public:
  Os() = default;
  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // --- processes --------------------------------------------------------
  /// Loads libraries (at the libc region) and the application (at kAppBase),
  /// maps a stack and creates a runnable process. Returns its pid.
  int spawn(std::shared_ptr<const melf::Binary> app,
            std::vector<std::shared_ptr<const melf::Binary>> libs = {},
            const std::string& name = "");

  Process* process(int pid);
  const Process* process(int pid) const;
  std::vector<int> pids() const;
  /// `root` plus all live descendants (an Nginx-style master+workers group).
  std::vector<int> process_group(int root) const;
  void kill(int pid);

  // --- scheduling & time -------------------------------------------------
  /// Runs until every process is exited/blocked/frozen or `max_instr`
  /// instructions retire. Returns instructions retired.
  uint64_t run(uint64_t max_instr = ~0ull);

  /// Runs until the virtual clock advances by `ticks` (idle gaps with only
  /// sleepers skip forward; fully idle systems jump to the deadline).
  void run_ticks(uint64_t ticks);

  bool all_exited() const;
  uint64_t now() const { return clock_; }
  /// Charges externally-imposed downtime (e.g. DynaCut's rewrite window).
  void advance_clock(uint64_t ticks) { clock_ += ticks; }

  // --- checkpoint support -------------------------------------------------
  void freeze(int pid);
  void thaw(int pid);

  /// Takes a checkpoint epoch on `pid`'s address space — the soft-dirty
  /// analogue of `echo 4 > /proc/pid/clear_refs`. Throws StateError if the
  /// pid is not live.
  vm::MemEpoch mem_epoch(int pid);

  /// Pages of `pid` modified since `since` was taken, or nullopt when the
  /// epoch no longer matches the live address space (it was rebuilt and its
  /// clock restarted) — callers fall back to a full dump.
  std::optional<std::vector<uint64_t>> dirty_pages_since(
      int pid, const vm::MemEpoch& since) const;

  /// Freezes every pid in `pids` with the strong guarantee: if any freeze
  /// fails (dead pid, already frozen), the ones frozen so far are thawed
  /// back and the error rethrown. This is the stage window of DynaCut's
  /// transactional customization — the whole group stops together.
  void freeze_group(const std::vector<int>& pids);
  /// Thaws every pid in `pids` that is currently frozen (exited or
  /// already-thawed pids are skipped, so abort paths can call it blindly).
  void thaw_group(const std::vector<int>& pids);

  // --- host networking -----------------------------------------------------
  /// Connects to a guest listener; throws StateError if no one listens.
  HostConn connect(uint16_t port);
  bool has_listener(uint16_t port) const;
  /// Registers a listening socket (used by process-image restore).
  void register_listener(const std::shared_ptr<Socket>& sock);

  /// Adopts an externally constructed process (image restore into a new
  /// process). Assigns and returns a fresh pid.
  int adopt(std::unique_ptr<Process> p);

  // --- instrumentation ----------------------------------------------------
  void set_block_sink(BlockSink* sink) { sink_ = sink; }

  /// Enables/disables superblock (fused-trace) execution. On by default;
  /// automatically bypassed while a block sink is attached, because
  /// coverage tracing needs an event per basic block and a fused trace
  /// retires many blocks without surfacing. Tests that pin down pure
  /// interpreter/decode-cache behaviour turn it off explicitly.
  void set_superblocks(bool enabled) { superblocks_ = enabled; }
  bool superblocks_enabled() const { return superblocks_; }

  /// Scheduler quantum in instructions — exposed for accounting tests
  /// (a trap on the quantum boundary must be charged once per attempt).
  static constexpr uint64_t kQuantum = 256;
  /// (pid, code) markers emitted by the kNudge syscall.
  const std::vector<std::pair<int, uint64_t>>& nudges() const {
    return nudges_;
  }
  /// Invoked synchronously when a guest issues kNudge — lets a tracer dump
  /// coverage at the exact init/serving boundary (the paper's DynamoRIO
  /// nudge extension).
  void set_nudge_hook(std::function<void(const Process&, uint64_t)> hook) {
    nudge_hook_ = std::move(hook);
  }

  /// Invoked before every syscall executes (args still in registers).
  /// Powers the paper's §5 future-work extension: inferring the end of the
  /// initialization phase from syscall activity (see trace::PhaseDetector).
  void set_syscall_hook(std::function<void(const Process&, uint64_t)> hook) {
    syscall_hook_ = std::move(hook);
  }

  /// Wires the observability event bus in (non-owning; nullptr detaches).
  /// The OS emits `trap.hit` for every SIGTRAP it dispatches — pid, address
  /// and whether a handler took it or the process was killed. If the bus has
  /// no clock source yet, it is given this OS's virtual clock.
  void set_event_bus(obs::EventBus* bus);
  obs::EventBus* event_bus() const { return bus_; }

  SyscallCosts& costs() { return costs_; }

 private:
  void run_quantum(Process& p, uint64_t budget, uint64_t& retired);
  void drain_sb_events(Process& p);
  void do_syscall(Process& p);
  void deliver_signal(Process& p, int signo, uint64_t fault_addr);
  void do_sigreturn(Process& p);
  bool try_unblock(Process& p);
  void block_on_fd(Process& p, Process::BlockKind kind, int fd);
  uint64_t do_fork(Process& p);

  std::map<int, std::unique_ptr<Process>> procs_;
  int next_pid_ = 100;
  uint64_t clock_ = 0;
  std::map<uint16_t, std::weak_ptr<Socket>> listeners_;
  BlockSink* sink_ = nullptr;
  std::vector<std::pair<int, uint64_t>> nudges_;
  std::function<void(const Process&, uint64_t)> nudge_hook_;
  std::function<void(const Process&, uint64_t)> syscall_hook_;
  obs::EventBus* bus_ = nullptr;
  SyscallCosts costs_;
  bool yielded_ = false;
  bool superblocks_ = true;
};

}  // namespace dynacut::os
