// osim: the userspace OS simulator hosting guest processes.
//
// A deterministic multi-core scheduler with per-core virtual clocks (1 tick
// per retired instruction plus per-syscall costs). Each virtual core owns a
// rotating ready queue; cores advance in bounded-skew rounds so their clocks
// stay comparable, and idle cores steal work from the most loaded core
// (victim ties broken by a seeded RNG — the only scheduling decision that is
// not structurally forced, so one seed pins the whole schedule). Blocking
// syscalls park the process and transparently re-execute when the condition
// clears. Signals are delivered through guest-stack frames with an
// rt_sigreturn-style unwind — the substrate DynaCut's trap-handling and
// redirection run on. With one core (the default) the scheduler specializes
// to a single rotating ready queue: strict round-robin that keeps its
// position across run() calls, so budget-sliced driving cannot starve
// high-pid processes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "os/loader.hpp"
#include "os/process.hpp"
#include "os/socket.hpp"

namespace dynacut::obs {
class EventBus;
}

namespace dynacut::os {

/// Receives basic-block entry events (the drcov tracer implements this).
class BlockSink {
 public:
  virtual ~BlockSink() = default;
  virtual void on_block(const Process& p, uint64_t ip) = 0;
};

/// Per-syscall virtual-time costs (ticks; 1 tick ~ 1ns of the paper's
/// hardware). Exposed so benches can document the cost model.
struct SyscallCosts {
  uint64_t base = 60;
  uint64_t per_io_byte_div = 4;  ///< io adds len/div ticks
  uint64_t fork_extra = 20000;
  uint64_t accept_extra = 500;
};

class Os {
 public:
  Os() = default;
  Os(const Os&) = delete;
  Os& operator=(const Os&) = delete;

  // --- processes --------------------------------------------------------
  /// Loads libraries (at the libc region) and the application (at kAppBase),
  /// maps a stack and creates a runnable process. Returns its pid.
  int spawn(std::shared_ptr<const melf::Binary> app,
            std::vector<std::shared_ptr<const melf::Binary>> libs = {},
            const std::string& name = "");

  Process* process(int pid);
  const Process* process(int pid) const;
  std::vector<int> pids() const;
  /// `root` plus all live descendants (an Nginx-style master+workers group).
  std::vector<int> process_group(int root) const;
  void kill(int pid);

  // --- virtual cores -----------------------------------------------------
  /// Reconfigures the machine to `n` virtual cores (n >= 1; default 1).
  /// Live processes are re-sharded round-robin in pid order, every core
  /// clock starts at now(), and per-core counters reset. Deterministic:
  /// the same spawn/run/set_cores call sequence with the same seed always
  /// produces the same schedule.
  void set_cores(size_t n);
  size_t num_cores() const { return cores_.size(); }

  /// Seeds the work-stealing victim choice — the only scheduling decision
  /// not structurally forced. Same seed => bit-identical schedules, retired
  /// counts and obs timelines.
  void set_seed(uint64_t seed) { rng_ = Rng(seed); }

  /// Per-core scheduler counters (bench/obs surface).
  struct CoreStats {
    uint64_t clock = 0;    ///< this core's virtual clock
    uint64_t retired = 0;  ///< instructions retired on this core
    uint64_t steals = 0;   ///< pids stolen *into* this core
  };
  CoreStats core_stats(size_t core) const;
  /// The core `pid` is currently scheduled on (-1 if no such pid).
  int core_of(int pid) const;
  /// Moves `pid` to `core` (takes effect at the next scheduling round).
  void pin(int pid, size_t core);
  /// Instructions retired machine-wide since construction.
  uint64_t total_retired() const;
  /// SIGTRAP deliveries machine-wide (sum of Process::sigtraps over live
  /// and exited processes).
  uint64_t total_sigtraps() const;

  // --- scheduling & time -------------------------------------------------
  /// Runs until every process is exited/blocked/frozen or `max_instr`
  /// instructions retire. Returns instructions retired.
  uint64_t run(uint64_t max_instr = ~0ull);

  /// Runs until every core's clock advances past now() + `ticks` (idle gaps
  /// with only sleepers skip forward; fully idle systems jump to the
  /// deadline). The deadline is honored per operation: a core stops issuing
  /// as soon as its clock reaches it, so the overshoot is bounded by one
  /// operation's cost (zero for pure compute), never a whole run() budget.
  void run_ticks(uint64_t ticks);

  bool all_exited() const;
  /// The virtual clock: the executing core's clock during execution (this
  /// is what the event bus stamps), otherwise the furthest core clock.
  uint64_t now() const;
  /// Charges externally-imposed downtime to every core (a machine-wide
  /// stall). For freeze-set-scoped downtime use charge_downtime().
  void advance_clock(uint64_t ticks);

  /// Charges DynaCut's rewrite window to exactly the processes that were
  /// frozen: each pid cannot run again before its core clock reaches
  /// now + ticks, while every other process keeps executing. With a single
  /// core the whole machine stalls instead (the lone core is busy doing the
  /// rewrite) — the historical fig8 semantics.
  void charge_downtime(const std::vector<int>& pids, uint64_t ticks);

  // --- checkpoint support -------------------------------------------------
  void freeze(int pid);
  void thaw(int pid);

  /// Takes a checkpoint epoch on `pid`'s address space — the soft-dirty
  /// analogue of `echo 4 > /proc/pid/clear_refs`. Throws StateError if the
  /// pid is not live.
  vm::MemEpoch mem_epoch(int pid);

  /// Pages of `pid` modified since `since` was taken, or nullopt when the
  /// epoch no longer matches the live address space (it was rebuilt and its
  /// clock restarted) — callers fall back to a full dump.
  std::optional<std::vector<uint64_t>> dirty_pages_since(
      int pid, const vm::MemEpoch& since) const;

  /// Freezes every pid in `pids` with the strong guarantee: if any freeze
  /// fails (dead pid, already frozen), the ones frozen so far are thawed
  /// back and the error rethrown. This is the stage window of DynaCut's
  /// transactional customization — the freeze set stops together while
  /// every process outside it keeps running.
  void freeze_group(const std::vector<int>& pids);
  /// Thaws every pid in `pids` that is currently frozen (exited or
  /// already-thawed pids are skipped, so abort paths can call it blindly).
  void thaw_group(const std::vector<int>& pids);

  // --- host networking -----------------------------------------------------
  /// Connects to a guest listener; throws StateError if no one listens.
  HostConn connect(uint16_t port);
  bool has_listener(uint16_t port) const;
  /// Registers a listening socket (used by process-image restore).
  void register_listener(const std::shared_ptr<Socket>& sock);

  /// Adopts an externally constructed process (image restore into a new
  /// process). Assigns and returns a fresh pid. This is the OS-level hook
  /// image::spawn_from_image (CRIU restore-as-template, defined in the
  /// image layer above this one) builds on.
  int adopt(std::unique_ptr<Process> p);

  /// Payload bytes of page blocks held by live address spaces, deduped by
  /// block identity. Thread one `seen` set through this and
  /// image::ImageStore::resident_bytes to get true machine-wide resident
  /// bytes under content-addressed sharing — each shared block counts once,
  /// at whichever holder sees it first.
  uint64_t resident_pages_bytes(std::set<const void*>* seen = nullptr) const;

  // --- instrumentation ----------------------------------------------------
  void set_block_sink(BlockSink* sink) { sink_ = sink; }

  /// Enables/disables superblock (fused-trace) execution. On by default;
  /// automatically bypassed while a block sink is attached, because
  /// coverage tracing needs an event per basic block and a fused trace
  /// retires many blocks without surfacing. Tests that pin down pure
  /// interpreter/decode-cache behaviour turn it off explicitly.
  void set_superblocks(bool enabled) { superblocks_ = enabled; }
  bool superblocks_enabled() const { return superblocks_; }

  /// Scheduler quantum in instructions — exposed for accounting tests
  /// (a trap on the quantum boundary must be charged once per attempt).
  static constexpr uint64_t kQuantum = 256;
  /// Bounded-skew window in ticks: per scheduling round, a core executes
  /// until its clock passes the round frontier (the minimum clock among
  /// cores with work) by this much. Keeps per-core clocks comparable so
  /// cross-core latencies are meaningful.
  static constexpr uint64_t kSkewWindow = kQuantum * 4;

  /// (pid, code) markers emitted by the kNudge syscall.
  const std::vector<std::pair<int, uint64_t>>& nudges() const {
    return nudges_;
  }
  /// Invoked synchronously when a guest issues kNudge — lets a tracer dump
  /// coverage at the exact init/serving boundary (the paper's DynamoRIO
  /// nudge extension).
  void set_nudge_hook(std::function<void(const Process&, uint64_t)> hook) {
    nudge_hook_ = std::move(hook);
  }

  /// Invoked before every syscall executes (args still in registers).
  /// Powers the paper's §5 future-work extension: inferring the end of the
  /// initialization phase from syscall activity (see trace::PhaseDetector).
  void set_syscall_hook(std::function<void(const Process&, uint64_t)> hook) {
    syscall_hook_ = std::move(hook);
  }

  /// Wires the observability event bus in (non-owning; nullptr detaches).
  /// The OS emits `trap.hit` for every SIGTRAP it dispatches — pid, address,
  /// owning core and whether a handler took it or the process was killed —
  /// and `sched.steal` for every work-stealing migration. If the bus has no
  /// clock source yet, it is given this OS's virtual clock (per-core during
  /// execution, so event timestamps are core-local).
  void set_event_bus(obs::EventBus* bus);
  obs::EventBus* event_bus() const { return bus_; }

  SyscallCosts& costs() { return costs_; }

 private:
  /// One virtual core: its clock, rotating ready queue and counters.
  struct Core {
    uint64_t clock = 0;
    uint64_t retired = 0;
    uint64_t steals = 0;
    std::deque<int> ready;  ///< runnable pids, rotated per quantum
  };

  uint64_t run_bounded(uint64_t max_instr, uint64_t tick_deadline);
  void run_quantum(Process& p, uint64_t budget, uint64_t& retired,
                   uint64_t tick_deadline);
  void steal_work();
  size_t assign_core();
  uint64_t min_core_clock() const;
  void drain_sb_events(Process& p);
  void do_syscall(Process& p);
  void deliver_signal(Process& p, int signo, uint64_t fault_addr);
  void do_sigreturn(Process& p);
  bool try_unblock(Process& p);
  void block_on_fd(Process& p, Process::BlockKind kind, int fd);
  uint64_t do_fork(Process& p);

  std::map<int, std::unique_ptr<Process>> procs_;
  int next_pid_ = 100;
  std::vector<Core> cores_{1};
  int running_core_ = -1;  ///< core executing right now; -1 outside run
  size_t assign_next_ = 0;
  Rng rng_{0};
  /// Listener table, sharded by port hash so fleets with hundreds of
  /// listening servers don't funnel through one map.
  static constexpr size_t kNetShards = 16;
  std::map<uint16_t, std::weak_ptr<Socket>> listeners_[kNetShards];
  BlockSink* sink_ = nullptr;
  std::vector<std::pair<int, uint64_t>> nudges_;
  std::function<void(const Process&, uint64_t)> nudge_hook_;
  std::function<void(const Process&, uint64_t)> syscall_hook_;
  obs::EventBus* bus_ = nullptr;
  SyscallCosts costs_;
  bool yielded_ = false;
  bool superblocks_ = true;
};

}  // namespace dynacut::os
