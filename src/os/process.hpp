// The osim process: address space, CPU, fds, signal state, loaded modules.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "melf/binary.hpp"
#include "os/socket.hpp"
#include "os/syscall.hpp"
#include "vm/addrspace.hpp"
#include "vm/cpu.hpp"
#include "vm/exec.hpp"
#include "vm/superblock.hpp"

namespace dynacut::os {

/// A module mapped into a process (application, libc.so, injected handler
/// libraries). The drcov-style tracer keys coverage entries by module.
struct LoadedModule {
  std::string name;
  uint64_t base = 0;
  uint64_t size = 0;
  std::shared_ptr<const melf::Binary> binary;

  bool contains(uint64_t addr) const {
    return addr >= base && addr < base + size;
  }
};

/// Registered disposition for one signal. handler==0 means default action
/// (terminate the process).
struct SigAction {
  uint64_t handler = 0;
  uint64_t restorer = 0;
};

struct FileDesc {
  enum class Kind { kConsole, kSocket };
  Kind kind = Kind::kConsole;
  std::shared_ptr<Socket> sock;
};

struct Process {
  enum class State {
    kRunnable,
    kBlocked,  ///< parked in a blocking syscall; see `block`
    kFrozen,   ///< checkpointed by DynaCut; invisible to the scheduler
    kExited,
  };

  enum class BlockKind { kNone, kRecv, kAccept, kSleep };

  int pid = 0;
  int ppid = 0;
  std::string name;
  State state = State::kRunnable;

  vm::AddressSpace mem;
  vm::Cpu cpu;

  /// Per-process decoded-instruction cache. Invalidation is automatic
  /// (page generations + asid); checkpoint restore clears it explicitly
  /// since the whole address space is rebuilt.
  vm::DecodeCache dcache;

  /// Per-process superblock (fused-trace) cache layered above the decode
  /// cache. Same invalidation currency; full restore clears it explicitly.
  /// Unused (no traces built) while a tracer sink is attached — coverage
  /// needs per-basic-block events.
  vm::SuperblockCache sbcache;

  std::map<int, FileDesc> fds;
  int next_fd = 3;

  std::array<SigAction, sig::kNumSignals> sigactions{};
  std::vector<uint64_t> signal_frames;  ///< kernel-side frame address stack

  std::vector<LoadedModule> modules;

  BlockKind block_kind = BlockKind::kNone;
  int block_fd = -1;
  uint64_t wake_at = 0;  ///< for kSleep

  /// Virtual core this process is scheduled on. Scheduler-owned; work
  /// stealing and Os::pin move it.
  size_t core = 0;
  /// True while the pid sits in a core's ready queue. Scheduler-owned —
  /// queue entries are removed only by popping, so this flag is the single
  /// source of truth for membership.
  bool queued = false;
  /// Earliest core-clock tick this process may run again. DynaCut charges
  /// its rewrite window here (Os::charge_downtime) so downtime is billed to
  /// the frozen set only, not the whole machine.
  uint64_t not_before = 0;

  std::string stdout_buf;  ///< bytes written to fd 1, host-observable

  int exit_code = 0;
  int term_signal = 0;  ///< non-zero if killed by a signal

  /// True right after process start, a control transfer, or a signal
  /// delivery/return — i.e. when cpu.ip is the first instruction of a basic
  /// block. Drives the tracer.
  bool at_block_start = true;

  uint64_t instructions_retired = 0;

  /// SIGTRAP deliveries since start. Benches diff this across a request to
  /// show a stub cut denies without any signal round-trip while a trap cut
  /// pays one per entry.
  uint64_t sigtraps = 0;

  const LoadedModule* module_at(uint64_t addr) const {
    for (const auto& m : modules) {
      if (m.contains(addr)) return &m;
    }
    return nullptr;
  }

  const LoadedModule* module_named(const std::string& module_name) const {
    for (const auto& m : modules) {
      if (m.name == module_name) return &m;
    }
    return nullptr;
  }
};

}  // namespace dynacut::os
