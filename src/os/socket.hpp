// In-memory TCP-like sockets connecting guest processes with each other and
// with host-side test/benchmark drivers.
//
// A Conn is a duplex byte pipe with two sides (a/b). Kernel Socket objects
// and host-side HostConn wrappers both reference Conns through shared
// pointers, so connections survive checkpoint/restore of the owning process
// — the moral equivalent of CRIU's TCP_REPAIR.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dynacut::os {

struct Conn {
  std::deque<uint8_t> to_a;  ///< bytes waiting for side a
  std::deque<uint8_t> to_b;  ///< bytes waiting for side b
  bool a_open = true;
  bool b_open = true;
};

/// One endpoint of a Conn.
struct SockEnd {
  std::shared_ptr<Conn> conn;
  bool side_a = false;

  std::deque<uint8_t>& rx() const { return side_a ? conn->to_a : conn->to_b; }
  std::deque<uint8_t>& tx() const { return side_a ? conn->to_b : conn->to_a; }
  bool peer_open() const { return side_a ? conn->b_open : conn->a_open; }
  void close() const {
    (side_a ? conn->a_open : conn->b_open) = false;
  }
};

/// Kernel socket object (shared across fork'd fd tables).
struct Socket {
  enum class Kind { kUnbound, kListen, kStream };
  Kind kind = Kind::kUnbound;
  uint16_t port = 0;
  std::deque<SockEnd> backlog;  ///< pending peer endpoints (listen sockets)
  SockEnd end;                  ///< connected endpoint (stream sockets)
};

/// Host-side handle to a connection with a guest server. Non-blocking:
/// recv-style calls return whatever is buffered.
class HostConn {
 public:
  HostConn() = default;
  explicit HostConn(SockEnd end) : end_(std::move(end)) {}

  bool valid() const { return end_.conn != nullptr; }

  void send(std::string_view data) {
    auto& q = end_.tx();
    q.insert(q.end(), data.begin(), data.end());
  }

  /// Drains all currently buffered bytes.
  std::string recv_all() {
    auto& q = end_.rx();
    std::string out(q.begin() + static_cast<long>(consumed_), q.end());
    q.clear();
    consumed_ = scanned_ = 0;
    return out;
  }

  /// Pops one '\n'-terminated line if complete, else empty. Consumed bytes
  /// are tracked as an offset and drained in bulk, and the newline scan
  /// resumes where the last one stopped, so popping a pipelined batch of N
  /// lines is O(bytes) total instead of O(bytes * N).
  std::string recv_line() {
    auto& q = end_.rx();
    scanned_ = std::max(scanned_, consumed_);
    for (; scanned_ < q.size(); ++scanned_) {
      if (q[scanned_] == '\n') {
        std::string line(q.begin() + static_cast<long>(consumed_),
                         q.begin() + static_cast<long>(scanned_) + 1);
        consumed_ = ++scanned_;
        if (consumed_ == q.size()) {
          q.clear();
          consumed_ = scanned_ = 0;
        }
        return line;
      }
    }
    return {};
  }

  size_t pending() const { return end_.rx().size() - consumed_; }
  bool peer_open() const { return end_.peer_open(); }
  void close() { end_.close(); }

 private:
  SockEnd end_;
  /// Bytes at the front of rx() already returned by recv_line but not yet
  /// erased from the deque (erased in bulk once the buffer fully drains).
  size_t consumed_ = 0;
  /// Scan resume point: rx() bytes before this hold no unconsumed '\n'.
  size_t scanned_ = 0;
};

}  // namespace dynacut::os
