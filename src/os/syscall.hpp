// Syscall numbers and signal numbers of the osim kernel ABI.
//
// ABI: r0 = syscall number and return value; r1..r5 = arguments.
// Errors return (uint64_t)-1. Blocking syscalls that cannot complete park
// the process and re-execute transparently once the condition clears.
#pragma once

#include <cstdint>

namespace dynacut::os::sys {

inline constexpr uint64_t kExit = 0;       ///< exit(code)
inline constexpr uint64_t kWrite = 1;      ///< write(fd, buf, len) -> len
inline constexpr uint64_t kRead = 2;       ///< read(fd, buf, len) -> n | 0 EOF
inline constexpr uint64_t kSocket = 3;     ///< socket() -> fd
inline constexpr uint64_t kBind = 4;       ///< bind(fd, port)
inline constexpr uint64_t kListen = 5;     ///< listen(fd)
inline constexpr uint64_t kAccept = 6;     ///< accept(fd) -> conn fd [blocks]
inline constexpr uint64_t kSend = 7;       ///< send(fd, buf, len) -> len
inline constexpr uint64_t kRecv = 8;       ///< recv(fd, buf, len) [blocks]
inline constexpr uint64_t kClose = 9;      ///< close(fd)
inline constexpr uint64_t kFork = 10;      ///< fork() -> child pid | 0
inline constexpr uint64_t kSigaction = 11; ///< sigaction(signo, handler, restorer)
inline constexpr uint64_t kSigreturn = 12; ///< return from signal handler
inline constexpr uint64_t kNanosleep = 13; ///< nanosleep(ticks)
inline constexpr uint64_t kMmap = 14;      ///< mmap(hint, size, prot) -> addr
inline constexpr uint64_t kMunmap = 15;    ///< munmap(addr, size)
inline constexpr uint64_t kGetpid = 16;    ///< getpid() -> pid
inline constexpr uint64_t kNudge = 17;     ///< nudge(code): host-visible marker
inline constexpr uint64_t kYield = 18;     ///< end scheduling quantum
inline constexpr uint64_t kClock = 19;     ///< clock() -> virtual ticks
inline constexpr uint64_t kConnect = 20;   ///< connect(fd, port)
inline constexpr uint64_t kMprotect = 21;  ///< mprotect(addr, size, prot)

inline constexpr uint64_t kMaxSyscall = 22;

inline constexpr uint64_t kErr = static_cast<uint64_t>(-1);

}  // namespace dynacut::os::sys

namespace dynacut::os::sig {

inline constexpr int kSigIll = 4;
inline constexpr int kSigTrap = 5;  ///< raised by the 0xCC TRAP instruction
inline constexpr int kSigFpe = 8;
inline constexpr int kSigSegv = 11;
inline constexpr int kNumSignals = 32;

/// Signal-frame layout, written to the guest stack on delivery. The handler
/// receives a pointer to this frame in r1 and may rewrite kSavedIp — that is
/// DynaCut's control-flow redirection mechanism (paper §3.2.2).
namespace frame {
inline constexpr uint64_t kSavedIp = 0;
inline constexpr uint64_t kFlags = 8;
inline constexpr uint64_t kRegs = 16;  ///< 16 * u64
inline constexpr uint64_t kSigNo = 144;
inline constexpr uint64_t kFaultAddr = 152;
inline constexpr uint64_t kSize = 160;
}  // namespace frame

}  // namespace dynacut::os::sig
