#include "rewriter/rewriter.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/hex.hpp"
#include "isa/isa.hpp"

namespace dynacut::rw {

namespace {
/// Default injection region: high, away from app/libc/stack — stands in for
/// the paper's "randomized but unused location".
constexpr uint64_t kInjectHint = 0x7f1d00000000;
}  // namespace

void ImageRewriter::touch_pages(uint64_t vaddr, uint64_t size) {
  if (size == 0) return;  // page_ceil would over-count an empty edit
  for (uint64_t p = page_floor(vaddr); p < vaddr + size; p += kPageSize) {
    touched_pages_.insert(p);
  }
}

PatchRecord ImageRewriter::apply_bytes(uint64_t vaddr,
                                       std::span<const uint8_t> bytes) {
  FaultPlan::fire(faults_, FaultStage::kRewrite);
  PatchRecord rec;
  rec.vaddr = vaddr;
  rec.original = img_.read_bytes(vaddr, bytes.size());
  img_.write_bytes(vaddr, bytes);
  bytes_patched_ += bytes.size();
  touch_pages(vaddr, bytes.size());
  return rec;
}

PatchRecord ImageRewriter::write_bytes(uint64_t vaddr,
                                       std::span<const uint8_t> bytes) {
  PatchRecord rec = apply_bytes(vaddr, bytes);
  emit(obs::Event(obs::ev::kRewritePatch, img_.core.pid)
           .with("addr", vaddr)
           .with("bytes", static_cast<uint64_t>(bytes.size())));
  return rec;
}

PatchRecord ImageRewriter::block_first_byte(uint64_t vaddr) {
  const uint8_t trap = static_cast<uint8_t>(isa::Op::kTrap);
  PatchRecord rec = apply_bytes(vaddr, std::span(&trap, 1));
  emit(obs::Event(obs::ev::kRewritePatch, img_.core.pid)
           .with("addr", vaddr)
           .with("bytes", uint64_t{1})
           .with("kind", std::string("block")));
  return rec;
}

PatchRecord ImageRewriter::wipe(uint64_t vaddr, uint64_t size) {
  std::vector<uint8_t> traps(size, static_cast<uint8_t>(isa::Op::kTrap));
  PatchRecord rec = apply_bytes(vaddr, traps);
  emit(obs::Event(obs::ev::kRewriteWipe, img_.core.pid)
           .with("addr", vaddr)
           .with("bytes", size));
  return rec;
}

PatchRecord ImageRewriter::redirect_branch(uint64_t vaddr, uint64_t target) {
  const uint8_t op = img_.read_u8(vaddr);
  if (op != static_cast<uint8_t>(isa::Op::kCall) &&
      op != static_cast<uint8_t>(isa::Op::kJmp)) {
    throw StateError("redirect_branch: not a direct call/jmp at " +
                     hex_addr(vaddr));
  }
  const uint8_t len = isa::instr_length(op);
  const int64_t rel = static_cast<int64_t>(target) -
                      static_cast<int64_t>(vaddr + len);
  if (rel < INT32_MIN || rel > INT32_MAX) {
    throw StateError("redirect_branch: target " + hex_addr(target) +
                     " out of rel32 range from " + hex_addr(vaddr));
  }
  const auto rel32 = static_cast<int32_t>(rel);
  uint8_t bytes[4];
  std::memcpy(bytes, &rel32, 4);
  PatchRecord rec = apply_bytes(vaddr + 1, std::span<const uint8_t>(bytes, 4));
  emit(obs::Event(obs::ev::kRewriteStub, img_.core.pid)
           .with("addr", vaddr)
           .with("target", target)
           .with("kind", std::string("branch")));
  return rec;
}

PatchRecord ImageRewriter::redirect_got(uint64_t slot_vaddr, uint64_t target) {
  uint8_t bytes[8];
  std::memcpy(bytes, &target, 8);
  PatchRecord rec = apply_bytes(slot_vaddr,
                                std::span<const uint8_t>(bytes, 8));
  emit(obs::Event(obs::ev::kRewriteStub, img_.core.pid)
           .with("addr", slot_vaddr)
           .with("target", target)
           .with("kind", std::string("got")));
  return rec;
}

void ImageRewriter::undo(const PatchRecord& rec) {
  FaultPlan::fire(faults_, FaultStage::kRewrite);
  img_.write_bytes(rec.vaddr, rec.original);
  // An undo is not a new customization: it must not inflate bytes_patched
  // (the cost model would double-charge every patch/undo cycle).
  bytes_restored_ += rec.original.size();
  touch_pages(rec.vaddr, rec.original.size());
  emit(obs::Event(obs::ev::kRewritePatch, img_.core.pid)
           .with("addr", rec.vaddr)
           .with("bytes", static_cast<uint64_t>(rec.original.size()))
           .with("kind", std::string("undo")));
}

void ImageRewriter::unmap_pages(uint64_t vaddr, uint64_t size) {
  FaultPlan::fire(faults_, FaultStage::kRewrite);
  uint64_t start = page_floor(vaddr);
  uint64_t end = page_ceil(vaddr + size);
  img_.drop_range(start, end - start);
  touch_pages(start, end - start);
  emit(obs::Event(obs::ev::kRewriteUnmap, img_.core.pid)
           .with("addr", start)
           .with("bytes", end - start));
}

void ImageRewriter::grow_vma(uint64_t vma_start, uint64_t extra) {
  img_.grow_vma(vma_start, extra);
}

void ImageRewriter::make_code_writable(const std::string& module_name) {
  const image::ModuleImage* m = img_.module_named(module_name);
  if (m == nullptr) {
    throw StateError("make_code_writable: no module " + module_name);
  }
  for (auto& v : img_.vmas) {
    if (v.start >= m->base && v.end <= m->base + m->size &&
        (v.prot & kProtExec) != 0) {
      v.prot |= kProtWrite;
    }
  }
}

void ImageRewriter::set_sigaction(int signo, uint64_t handler,
                                  uint64_t restorer) {
  if (signo < 0 || signo >= os::sig::kNumSignals) {
    throw StateError("set_sigaction: bad signal " + std::to_string(signo));
  }
  img_.core.sigactions[static_cast<size_t>(signo)] =
      os::SigAction{handler, restorer};
}

uint64_t ImageRewriter::inject_library(
    std::shared_ptr<const melf::Binary> lib, uint64_t base) {
  FaultPlan::fire(faults_, FaultStage::kInject);
  if (img_.module_named(lib->name) != nullptr) {
    throw StateError("inject_library: module already present: " + lib->name);
  }
  if (base == 0) {
    base = img_.find_free(lib->image_size(), kInjectHint);
  }
  if (base != page_floor(base)) {
    throw StateError("inject_library: base not page aligned");
  }

  // Create VMAs and page content for every section — the mm/pagemap/pages
  // edits of paper §3.3.
  for (const auto& sec : lib->sections) {
    if (sec.size == 0) continue;
    img_.add_vma(base + sec.offset, sec.size, melf::section_prot(sec.kind),
                 lib->name + ":" + melf::section_name(sec.kind));
    if (!sec.bytes.empty()) {
      img_.write_bytes(base + sec.offset, sec.bytes);
      touch_pages(base + sec.offset, sec.bytes.size());
    }
  }

  // Register the module before relocating so self-exports resolve.
  img_.modules.push_back(
      image::ModuleImage{lib->name, base, lib->image_size(), lib});

  for (const auto& rel : lib->relocs) {
    uint64_t value = 0;
    switch (rel.kind) {
      case melf::RelocKind::kAbs64:
        // "Global data relocations are performed by adding the VMA base
        // address of the library to the st_value field of the symbol."
        value = base + static_cast<uint64_t>(rel.addend);
        break;
      case melf::RelocKind::kGotEntry: {
        // "Find the external libc function symbol offset from the libc
        // binary; add the runtime VMA base address of libc; write the new
        // address to the GOT of the signal handler library."
        // Resolution is tracked with an explicit flag: a symbol can
        // legitimately resolve to address 0 (st_value 0 in the module
        // mapped at base 0 — the main executable).
        bool found = false;
        for (const auto& m : img_.modules) {
          const melf::Symbol* s = m.binary->find_symbol(rel.symbol);
          if (s != nullptr && s->global) {
            value = m.base + s->value;
            found = true;
            break;
          }
        }
        if (!found) {
          throw StateError("inject_library: unresolved import '" +
                           rel.symbol + "'");
        }
        break;
      }
    }
    img_.write_u64(base + rel.offset, value);
    ++relocs_applied_;
  }
  emit(obs::Event(obs::ev::kRewriteInject, img_.core.pid)
           .with("lib", lib->name)
           .with("base", base)
           .with("bytes", lib->image_size())
           .with("relocs", static_cast<uint64_t>(lib->relocs.size())));
  return base;
}

void ImageRewriter::unload_library(const std::string& name) {
  const image::ModuleImage* m = img_.module_named(name);
  if (m == nullptr) throw StateError("unload_library: no module " + name);
  uint64_t base = m->base;
  uint64_t size = m->size;
  img_.modules.erase(
      std::remove_if(img_.modules.begin(), img_.modules.end(),
                     [&](const image::ModuleImage& mi) {
                       return mi.name == name;
                     }),
      img_.modules.end());
  // Drop each VMA of the module individually (sections are not contiguous
  // at page granularity but all live inside [base, base+size)).
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (const auto& v : img_.vmas) {
    if (v.start >= base && v.end <= base + size) {
      ranges.emplace_back(v.start, v.end - v.start);
    }
  }
  for (const auto& [start, len] : ranges) img_.drop_range(start, len);
}

uint64_t ImageRewriter::symbol_addr(const std::string& module_name,
                                    const std::string& symbol) const {
  const image::ModuleImage* m = img_.module_named(module_name);
  if (m == nullptr) throw StateError("symbol_addr: no module " + module_name);
  const melf::Symbol* s = m->binary->find_symbol(symbol);
  if (s == nullptr) {
    throw StateError("symbol_addr: no symbol " + symbol + " in " +
                     module_name);
  }
  return m->base + s->value;
}

std::vector<analysis::cutcheck::CutPlan> extract_plans(
    const std::vector<ModuleRef>& modules, const std::string& feature,
    const std::vector<analysis::CovBlock>& blocks,
    analysis::cutcheck::Removal removal, analysis::cutcheck::Trap trap,
    const std::string& redirect_module, uint64_t redirect_offset,
    analysis::cutcheck::Mechanism mechanism) {
  auto module_binary =
      [&](const std::string& name) -> std::shared_ptr<const melf::Binary> {
    for (const auto& m : modules) {
      if (m.name == name) return m.binary;
    }
    return nullptr;
  };

  std::vector<analysis::cutcheck::CutPlan> plans;
  auto plan_for =
      [&](const std::string& module) -> analysis::cutcheck::CutPlan& {
    for (auto& p : plans) {
      if (p.module == module) return p;
    }
    analysis::cutcheck::CutPlan p;
    p.feature = feature;
    p.module = module;
    p.binary = module_binary(module);
    p.removal = removal;
    p.trap = trap;
    p.mechanism = mechanism;
    plans.push_back(std::move(p));
    return plans.back();
  };

  for (const auto& b : blocks) plan_for(b.module).blocks.push_back(b);
  if (trap == analysis::cutcheck::Trap::kRedirect &&
      !redirect_module.empty()) {
    analysis::cutcheck::CutPlan& p = plan_for(redirect_module);
    p.has_redirect = true;
    p.redirect_offset = redirect_offset;
  }
  return plans;
}

SliceExpansion expand_plans_to_slice(
    std::vector<analysis::cutcheck::CutPlan>& plans,
    const analysis::slicer::SliceOptions& opts) {
  SliceExpansion total;
  for (auto& plan : plans) {
    analysis::slicer::PlanExpansion e = analysis::slicer::expand_plan(plan,
                                                                      opts);
    total.seeds += e.seed_blocks;
    total.expanded += e.slice_blocks;
    total.witnesses += e.witnesses;
  }
  return total;
}

}  // namespace dynacut::rw
