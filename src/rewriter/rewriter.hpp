// The DynaCut process rewriter (paper §3.2.1/§3.3): mutates a checkpointed
// ProcessImage between dump and restore.
//
// Supported transforms — the same list the paper's CRIT extension provides:
//   * update memory contents (arbitrary byte patches),
//   * replace the first byte of a basic block with TRAP (int3 blocking),
//   * wipe whole blocks with TRAP bytes (anti-ROP variant),
//   * unmap code pages / grow VMAs,
//   * inject a position-independent shared library (ELF-walk, page
//     creation, global-data + GOT/PLT relocation against loaded modules),
//   * rewrite the SIGTRAP sigaction to point into the injected library,
//     with the library's own restorer stub.
//
// Every code edit records the original bytes so features can be restored
// ("bidirectional" customization).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "analysis/cutcheck/plan.hpp"
#include "analysis/slicer/slicer.hpp"
#include "common/fault.hpp"
#include "image/image.hpp"
#include "melf/binary.hpp"
#include "obs/bus.hpp"

namespace dynacut::rw {

/// A loaded module as the plan extractor needs it. Both image::ModuleImage
/// and os::LoadedModule convert trivially.
struct ModuleRef {
  std::string name;
  std::shared_ptr<const melf::Binary> binary;
};

/// Splits a feature's blocks into per-module cut plans — the unit the
/// cutcheck verifier lints and the exact inputs remove_blocks will act on.
/// Modules named by blocks but absent from `modules` yield a plan with a
/// null binary (the rewriter would silently skip them; the checker warns).
/// Under Trap::kRedirect the redirect module always gets a plan, so
/// redirect validity is checked even when no block lands in it.
std::vector<analysis::cutcheck::CutPlan> extract_plans(
    const std::vector<ModuleRef>& modules, const std::string& feature,
    const std::vector<analysis::CovBlock>& blocks,
    analysis::cutcheck::Removal removal, analysis::cutcheck::Trap trap,
    const std::string& redirect_module = {}, uint64_t redirect_offset = 0,
    analysis::cutcheck::Mechanism mechanism =
        analysis::cutcheck::Mechanism::kTrap);

/// Aggregate of slicer::expand_plan over a feature's per-module plans.
struct SliceExpansion {
  size_t seeds = 0;      ///< blocks the plans named before expansion
  size_t expanded = 0;   ///< blocks after expansion
  size_t witnesses = 0;  ///< non-seed inclusions across all plans
};

/// Grows every loaded-module plan in place to its static feature slice
/// (analysis::slicer::expand_plan); plans with a null binary pass through
/// untouched. `opts.keep_functions` typically carries the imports of the
/// *other* loaded modules, so cross-module entry points survive closure.
SliceExpansion expand_plans_to_slice(
    std::vector<analysis::cutcheck::CutPlan>& plans,
    const analysis::slicer::SliceOptions& opts = {});

/// Undo record for one code edit.
struct PatchRecord {
  uint64_t vaddr = 0;
  std::vector<uint8_t> original;
};

class ImageRewriter {
 public:
  /// `faults` is the deterministic fault-injection hook: every code edit
  /// (patch/wipe/undo/unmap) fires FaultStage::kRewrite before mutating the
  /// image, and inject_library fires FaultStage::kInject — each *before*
  /// its mutation, so an injected failure leaves the image consistent.
  /// `bus` (optional) receives a `rewrite.*` event after each successful
  /// edit; under an open bus transaction those events are staged and
  /// retracted if the customization aborts.
  explicit ImageRewriter(image::ProcessImage& img, FaultPlan* faults = nullptr,
                         obs::EventBus* bus = nullptr)
      : img_(img), faults_(faults), bus_(bus) {}

  // --- raw memory edits -------------------------------------------------
  /// Patches bytes and returns an undo record.
  PatchRecord write_bytes(uint64_t vaddr, std::span<const uint8_t> bytes);

  /// Blocks the basic block at `vaddr` by replacing its first byte with
  /// TRAP (0xCC). Returns the undo record.
  PatchRecord block_first_byte(uint64_t vaddr);

  /// Wipes [vaddr, vaddr+size) entirely with TRAP bytes — prevents gadget
  /// reuse inside the block. Returns the undo record.
  PatchRecord wipe(uint64_t vaddr, uint64_t size);

  /// Reverts a previous edit.
  void undo(const PatchRecord& rec);

  // --- VMA surgery --------------------------------------------------------
  /// Unmaps the page range fully covering [vaddr, vaddr+size).
  void unmap_pages(uint64_t vaddr, uint64_t size);
  void grow_vma(uint64_t vma_start, uint64_t extra);

  /// Marks code pages writable+executable (verifier self-healing support).
  void make_code_writable(const std::string& module_name);

  // --- stub redirection (Mechanism::kStub/kAuto) --------------------------
  /// Retargets the direct kCall/kJmp at `vaddr` to `target` by patching its
  /// rel32 — the trap-free deny: one branch into the stub instead of a
  /// SIGTRAP round-trip. Validates the opcode and that `target` is in rel32
  /// range (throws StateError otherwise). Returns the undo record.
  PatchRecord redirect_branch(uint64_t vaddr, uint64_t target);

  /// Points the 8-byte GOT slot at `slot_vaddr` to `target` — the PLT-slot
  /// half of the stub mechanism. Returns the undo record.
  PatchRecord redirect_got(uint64_t slot_vaddr, uint64_t target);

  // --- signal plumbing -----------------------------------------------------
  void set_sigaction(int signo, uint64_t handler, uint64_t restorer);

  // --- library injection ----------------------------------------------------
  /// Injects `lib` as a new module. If base==0, picks an unused address from
  /// `hint` (default: a high randomized-looking region). Applies kAbs64
  /// relocations against the chosen base and kGotEntry relocations against
  /// the image's loaded modules. Returns the load base.
  uint64_t inject_library(std::shared_ptr<const melf::Binary> lib,
                          uint64_t base = 0);

  /// Removes a previously injected module and its VMAs.
  void unload_library(const std::string& name);

  /// Absolute address of `symbol` exported by module `module_name` in the
  /// image; throws StateError if missing.
  uint64_t symbol_addr(const std::string& module_name,
                       const std::string& symbol) const;

  /// Counters consumed by the cost model. bytes_patched counts forward
  /// edits only; undos accumulate in bytes_restored. pages_touched is the
  /// number of *distinct* pages any edit landed on.
  size_t bytes_patched() const { return bytes_patched_; }
  size_t bytes_restored() const { return bytes_restored_; }
  size_t pages_touched() const { return touched_pages_.size(); }
  size_t relocs_applied() const { return relocs_applied_; }

 private:
  /// Records the pages covered by an edit of `size` bytes at `vaddr`.
  /// Zero-length edits touch nothing.
  void touch_pages(uint64_t vaddr, uint64_t size);

  /// The byte-edit core shared by write_bytes/block_first_byte/wipe; fires
  /// the rewrite fault point and mutates the image but emits nothing (the
  /// public wrappers each emit their own taxonomy type).
  PatchRecord apply_bytes(uint64_t vaddr, std::span<const uint8_t> bytes);

  void emit(obs::Event e) {
    if (bus_ != nullptr) bus_->emit(std::move(e));
  }

  image::ProcessImage& img_;
  FaultPlan* faults_ = nullptr;
  obs::EventBus* bus_ = nullptr;
  size_t bytes_patched_ = 0;
  size_t bytes_restored_ = 0;
  std::set<uint64_t> touched_pages_;
  size_t relocs_applied_ = 0;
};

}  // namespace dynacut::rw
