// Automatic initialization-phase detection (the paper's §5 future-work
// item, implemented): instead of requiring the user to nudge the tracer
// when the server "looks ready", monitor syscall activity and declare the
// init/serving transition at the first accept(2) — the moment a server
// enters its request loop. Ghavamnia et al. hand-pick the equivalent
// transition functions (ngx_worker_process_cycle, server_main_loop); the
// syscall signal needs no source knowledge at all.
#pragma once

#include <functional>
#include <set>

#include "os/os.hpp"

namespace dynacut::trace {

class PhaseDetector {
 public:
  using Callback = std::function<void(const os::Process&)>;

  /// Installs itself as `os`'s syscall hook (the single hook slot — do not
  /// combine with another syscall hook). `on_init_end` fires exactly once
  /// per process, at its first accept().
  PhaseDetector(os::Os& os, Callback on_init_end)
      : os_(os), cb_(std::move(on_init_end)) {
    os_.set_syscall_hook([this](const os::Process& p, uint64_t num) {
      if (num != os::sys::kAccept) return;
      if (!fired_.insert(p.pid).second) return;
      cb_(p);
    });
  }

  ~PhaseDetector() { os_.set_syscall_hook(nullptr); }
  PhaseDetector(const PhaseDetector&) = delete;
  PhaseDetector& operator=(const PhaseDetector&) = delete;

  bool fired(int pid) const { return fired_.count(pid) != 0; }

 private:
  os::Os& os_;
  Callback cb_;
  std::set<int> fired_;
};

}  // namespace dynacut::trace
