#include "trace/trace.hpp"

#include "common/error.hpp"
#include "vm/exec.hpp"

namespace dynacut::trace {

const ModuleRec* TraceLog::module_named(const std::string& name) const {
  for (const auto& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::vector<uint8_t> TraceLog::encode() const {
  ByteWriter w;
  w.str("DRCOVSIM");
  w.str(process_name);
  w.i32(pid);
  w.u32(static_cast<uint32_t>(modules.size()));
  for (const auto& m : modules) {
    w.str(m.name);
    w.u64(m.base);
    w.u64(m.size);
  }
  w.u32(static_cast<uint32_t>(blocks.size()));
  for (const auto& b : blocks) {
    w.u32(b.module_id);
    w.u64(b.offset);
    w.u32(b.size);
  }
  return w.take();
}

TraceLog TraceLog::decode(std::span<const uint8_t> data) {
  ByteReader r(data);
  if (r.str() != "DRCOVSIM") throw DecodeError("bad trace log magic");
  TraceLog log;
  log.process_name = r.str();
  log.pid = r.i32();
  uint32_t nmod = r.u32();
  for (uint32_t i = 0; i < nmod; ++i) {
    ModuleRec m;
    m.name = r.str();
    m.base = r.u64();
    m.size = r.u64();
    log.modules.push_back(std::move(m));
  }
  uint32_t nblk = r.u32();
  for (uint32_t i = 0; i < nblk; ++i) {
    BlockRec b;
    b.module_id = r.u32();
    b.offset = r.u64();
    b.size = r.u32();
    if (b.module_id >= log.modules.size()) {
      throw DecodeError("block references missing module");
    }
    log.blocks.push_back(b);
  }
  if (!r.done()) throw DecodeError("trailing bytes in trace log");
  return log;
}

void Tracer::on_block(const os::Process& p, uint64_t ip) {
  if (only_pid_ != 0 && p.pid != only_pid_) return;
  PerProc& d = data_[p.pid];
  if (!d.seen.insert(ip).second) return;
  vm::BlockInfo info = vm::block_at(p.mem, ip);
  d.order.emplace_back(ip, static_cast<uint32_t>(info.size));
}

TraceLog Tracer::dump(int pid) const {
  const os::Process* p = os_.process(pid);
  if (p == nullptr) throw StateError("dump: no process " + std::to_string(pid));

  TraceLog log;
  log.process_name = p->name;
  log.pid = pid;
  for (const auto& m : p->modules) {
    log.modules.push_back(ModuleRec{m.name, m.base, m.size});
  }

  auto it = data_.find(pid);
  if (it == data_.end()) return log;
  for (const auto& [addr, size] : it->second.order) {
    BlockRec rec;
    rec.size = size;
    const os::LoadedModule* m = p->module_at(addr);
    if (m != nullptr) {
      // Module table position == index in p->modules by construction.
      rec.module_id =
          static_cast<uint32_t>(m - p->modules.data());
      rec.offset = addr - m->base;
    } else {
      // Block outside any module (shouldn't happen for our guests): record
      // it against a synthetic "[unknown]" module at base 0.
      if (log.modules.empty() || log.modules.back().name != "[unknown]") {
        log.modules.push_back(ModuleRec{"[unknown]", 0, 0});
      }
      rec.module_id = static_cast<uint32_t>(log.modules.size() - 1);
      rec.offset = addr;
    }
    log.blocks.push_back(rec);
  }
  return log;
}

TraceLog Tracer::dump_and_reset(int pid) {
  TraceLog log = dump(pid);
  data_.erase(pid);
  return log;
}

size_t Tracer::block_count(int pid) const {
  auto it = data_.find(pid);
  return it == data_.end() ? 0 : it->second.order.size();
}

}  // namespace dynacut::trace
