// tracesim: the DynamoRIO-drcov stand-in.
//
// A Tracer attaches to the OS as a BlockSink and records, per process, every
// basic block the first time it executes — as <module, offset, size> tuples
// plus a module table, which is exactly the information drcov logs and the
// paper's tracediff.py consumes. The nudge mechanism (dump_and_reset)
// reproduces the paper's extension for dumping initialization-phase coverage
// mid-run (§3.1).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "os/os.hpp"

namespace dynacut::trace {

/// One module row of a coverage log.
struct ModuleRec {
  std::string name;
  uint64_t base = 0;
  uint64_t size = 0;
};

/// One basic-block row: module-relative offset and block byte size.
struct BlockRec {
  uint32_t module_id = 0;  ///< index into TraceLog::modules
  uint64_t offset = 0;
  uint32_t size = 0;

  friend bool operator==(const BlockRec&, const BlockRec&) = default;
};

/// A coverage log of one traced process (one drcov output file).
struct TraceLog {
  std::string process_name;
  int pid = 0;
  std::vector<ModuleRec> modules;
  std::vector<BlockRec> blocks;  ///< first-execution order

  const ModuleRec* module_named(const std::string& name) const;

  std::vector<uint8_t> encode() const;
  static TraceLog decode(std::span<const uint8_t> data);
};

/// Basic-block coverage tracer. Attach with Os::set_block_sink. By default
/// traces every process; restrict with trace_only().
class Tracer : public os::BlockSink {
 public:
  explicit Tracer(os::Os& os) : os_(os) { os_.set_block_sink(this); }
  ~Tracer() override { os_.set_block_sink(nullptr); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Restricts tracing to one pid (0 = trace all).
  void trace_only(int pid) { only_pid_ = pid; }

  void on_block(const os::Process& p, uint64_t ip) override;

  /// Snapshot of the coverage collected so far for `pid`.
  TraceLog dump(int pid) const;

  /// The nudge: dumps coverage and clears the code cache so subsequent
  /// execution is recorded afresh (used to split init/serving phases).
  TraceLog dump_and_reset(int pid);

  /// Deduplicated block count recorded so far for `pid`.
  size_t block_count(int pid) const;

 private:
  struct PerProc {
    std::vector<std::pair<uint64_t, uint32_t>> order;  // (abs addr, size)
    std::unordered_set<uint64_t> seen;
  };

  os::Os& os_;
  int only_pid_ = 0;
  std::map<int, PerProc> data_;
};

}  // namespace dynacut::trace
