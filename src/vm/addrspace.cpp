#include "vm/addrspace.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/hex.hpp"

namespace dynacut::vm {

uint64_t AddressSpace::next_asid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {
std::atomic<uint64_t> g_share_epoch{1};
}  // namespace

uint64_t share_epoch() {
  return g_share_epoch.load(std::memory_order_relaxed);
}

void bump_share_epoch() {
  g_share_epoch.fetch_add(1, std::memory_order_relaxed);
}

uint64_t AddressSpace::page_generation(uint64_t page_addr) const {
  auto it = page_gens_.find(page_floor(page_addr));
  return it == page_gens_.end() ? 0 : it->second;
}

const uint64_t* AddressSpace::page_generation_slot(uint64_t page_addr) const {
  return &page_gens_[page_floor(page_addr)];
}

void AddressSpace::bump_generations(uint64_t start, uint64_t end) {
  for (uint64_t p = page_floor(start); p < end; p += kPageSize) {
    ++page_gens_[p];
  }
}

void AddressSpace::bump_exec_generations(uint64_t addr, uint64_t n) {
  uint64_t end = addr + n;
  uint64_t cur = addr;
  while (cur < end) {
    const Vma* v = vma_at(cur);
    // vma_at never misses here: callers bump only after a checked write.
    uint64_t vma_end = v == nullptr ? end : v->end;
    if (v != nullptr && (v->prot & kProtExec) != 0) {
      bump_generations(cur, std::min(end, vma_end));
    }
    cur = std::max(cur + 1, std::min(end, vma_end));
  }
}

MemEpoch AddressSpace::snapshot_epoch() {
  // The write fast path stamps a page only when it (re)establishes its
  // cache; crossing an epoch boundary must force a fresh stamp.
  invalidate_caches();
  return MemEpoch{asid_, epoch_++};
}

std::optional<std::vector<uint64_t>> AddressSpace::dirty_pages_since(
    const MemEpoch& since) const {
  if (!since.valid() || since.asid != asid_ || since.epoch >= epoch_) {
    return std::nullopt;
  }
  std::vector<uint64_t> out;
  for (const auto& [page, stamp] : page_stamps_) {
    if (stamp > since.epoch) out.push_back(page);
  }
  return out;
}

void AddressSpace::map(uint64_t start, uint64_t size, uint32_t prot,
                       const std::string& name) {
  DYNACUT_ASSERT(start == page_floor(start));
  size = page_ceil(size);
  if (size == 0) throw StateError("map of empty region");
  uint64_t end = start + size;
  // Overlap check against neighbours.
  auto it = vmas_.upper_bound(start);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) {
      throw StateError("map overlaps existing VMA " + prev->second.name +
                       " at " + hex_addr(start));
    }
  }
  if (it != vmas_.end() && it->second.start < end) {
    throw StateError("map overlaps existing VMA " + it->second.name + " at " +
                     hex_addr(it->second.start));
  }
  vmas_[start] = Vma{start, end, prot, name};
  bump_generations(start, end);
  invalidate_caches();
}

void AddressSpace::unmap(uint64_t start, uint64_t size) {
  invalidate_caches();
  bump_generations(start, start + page_ceil(size));
  DYNACUT_ASSERT(start == page_floor(start));
  size = page_ceil(size);
  uint64_t end = start + size;
  bool touched = false;

  // Collect affected VMAs, then rewrite them.
  std::vector<Vma> affected;
  for (auto it = vmas_.begin(); it != vmas_.end();) {
    const Vma& v = it->second;
    if (v.end <= start || v.start >= end) {
      ++it;
      continue;
    }
    affected.push_back(v);
    it = vmas_.erase(it);
    touched = true;
  }
  if (!touched) {
    throw StateError("unmap of unmapped range at " + hex_addr(start));
  }
  for (const Vma& v : affected) {
    if (v.start < start) {
      vmas_[v.start] = Vma{v.start, start, v.prot, v.name};
    }
    if (v.end > end) {
      vmas_[end] = Vma{end, v.end, v.prot, v.name};
    }
  }
  // Discard pages in the unmapped range; the discard is a content change
  // the next delta dump must see.
  for (uint64_t p = start; p < end; p += kPageSize) {
    if (pages_.erase(p) != 0) page_stamps_[p] = epoch_;
  }
}

void AddressSpace::protect(uint64_t start, uint64_t size, uint32_t prot) {
  invalidate_caches();
  DYNACUT_ASSERT(start == page_floor(start));
  size = page_ceil(size);
  uint64_t end = start + size;
  bump_generations(start, end);

  std::vector<Vma> affected;
  for (auto it = vmas_.begin(); it != vmas_.end();) {
    const Vma& v = it->second;
    if (v.end <= start || v.start >= end) {
      ++it;
      continue;
    }
    affected.push_back(v);
    it = vmas_.erase(it);
  }
  if (affected.empty()) {
    throw StateError("protect of unmapped range at " + hex_addr(start));
  }
  for (const Vma& v : affected) {
    if (v.start < start) vmas_[v.start] = Vma{v.start, start, v.prot, v.name};
    uint64_t mid_start = std::max(v.start, start);
    uint64_t mid_end = std::min(v.end, end);
    vmas_[mid_start] = Vma{mid_start, mid_end, prot, v.name};
    if (v.end > end) vmas_[end] = Vma{end, v.end, v.prot, v.name};
  }
}

const Vma* AddressSpace::vma_at(uint64_t addr) const {
  if (cached_vma_ != nullptr && cached_vma_->contains(addr)) {
    return cached_vma_;
  }
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return nullptr;
  --it;
  if (!it->second.contains(addr)) return nullptr;
  cached_vma_ = &it->second;
  return cached_vma_;
}

uint64_t AddressSpace::find_free(uint64_t size, uint64_t hint) const {
  size = page_ceil(size);
  uint64_t candidate = page_floor(hint);
  for (const auto& [start, v] : vmas_) {
    if (start >= candidate + size) break;  // gap before this VMA fits
    if (v.end > candidate) candidate = v.end;
  }
  return candidate;
}

AddressSpace::Page& AddressSpace::writable_page(uint64_t page_addr) {
  auto it = pages_.find(page_addr);
  if (it == pages_.end()) {
    it = pages_.emplace(page_addr, std::make_shared<Page>(kPageSize, 0))
             .first;
  } else if (it->second.use_count() > 1) {
    // Copy-on-write: the block is visible through a checkpoint image (or a
    // copied address space) — clone before mutating. The old raw cache
    // pointer would now write into the shared block; drop it.
    if (cached_page_addr_ == page_addr) {
      cached_page_addr_ = ~0ull;
      cached_page_ = nullptr;
      cached_page_writable_ = false;
    }
    it->second = std::make_shared<Page>(*it->second);
  }
  page_stamps_[page_addr] = epoch_;
  return *it->second;
}

const AddressSpace::Page* AddressSpace::find_page(uint64_t page_addr) const {
  auto it = pages_.find(page_addr);
  return it == pages_.end() ? nullptr : it->second.get();
}

Access AddressSpace::check_range(uint64_t addr, uint64_t n,
                                 uint32_t need_prot) const {
  uint64_t cur = addr;
  uint64_t end = addr + n;
  while (cur < end) {
    const Vma* v = vma_at(cur);
    if (v == nullptr || (v->prot & need_prot) != need_prot) {
      return {false, cur};
    }
    cur = v->end;
  }
  return {true, 0};
}

Access AddressSpace::read(uint64_t addr, void* out, uint64_t n,
                          uint32_t need_prot) const {
  // Fast path: access within the cached VMA and the cached page.
  if (cached_vma_ != nullptr && addr >= cached_vma_->start && n > 0 &&
      addr + n <= cached_vma_->end &&
      (cached_vma_->prot & need_prot) == need_prot) {
    uint64_t page = page_floor(addr);
    if (page == page_floor(addr + n - 1)) {
      if (page != cached_page_addr_) {
        auto it = pages_.find(page);
        if (it != pages_.end()) {
          cached_page_addr_ = page;
          cached_page_ = it->second.get();
          cached_page_writable_ = false;  // possibly shared: read-only view
        }
      }
      if (page == cached_page_addr_) {
        std::memcpy(out, cached_page_->data() + (addr - page), n);
        return {true, 0};
      }
    }
  }

  Access a = check_range(addr, n, need_prot);
  if (!a.ok) return a;
  auto* dst = static_cast<uint8_t*>(out);
  uint64_t cur = addr;
  while (n > 0) {
    uint64_t page = page_floor(cur);
    uint64_t off = cur - page;
    uint64_t chunk = std::min<uint64_t>(n, kPageSize - off);
    if (const Page* p = find_page(page)) {
      std::memcpy(dst, p->data() + off, chunk);
    } else {
      std::memset(dst, 0, chunk);
    }
    dst += chunk;
    cur += chunk;
    n -= chunk;
  }
  return {true, 0};
}

Access AddressSpace::write(uint64_t addr, const void* src, uint64_t n,
                           uint32_t need_prot) {
  if (cached_vma_ != nullptr && addr >= cached_vma_->start && n > 0 &&
      addr + n <= cached_vma_->end &&
      (cached_vma_->prot & need_prot) == need_prot) {
    uint64_t page = page_floor(addr);
    if (page == page_floor(addr + n - 1)) {
      // The raw pointer is only usable if the block is uniquely owned,
      // already stamped this epoch, and no one shared a block behind our
      // back since arming (share_epoch moved: BlockStore::intern may have
      // handed this very block to a new holder); otherwise take the
      // COW/stamp slow step once and re-arm.
      if (page != cached_page_addr_ || !cached_page_writable_ ||
          cached_share_epoch_ != share_epoch()) {
        Page& p = writable_page(page);
        cached_page_addr_ = page;
        cached_page_ = &p;
        cached_page_writable_ = true;
        cached_share_epoch_ = share_epoch();
      }
      std::memcpy(cached_page_->data() + (addr - page), src, n);
      if ((cached_vma_->prot & kProtExec) != 0) ++page_gens_[page];
      return {true, 0};
    }
  }

  Access a = check_range(addr, n, need_prot);
  if (!a.ok) return a;
  const auto* s = static_cast<const uint8_t*>(src);
  uint64_t cur = addr;
  while (n > 0) {
    uint64_t page = page_floor(cur);
    uint64_t off = cur - page;
    uint64_t chunk = std::min<uint64_t>(n, kPageSize - off);
    std::memcpy(writable_page(page).data() + off, s, chunk);
    s += chunk;
    cur += chunk;
    n -= chunk;
  }
  bump_exec_generations(addr, cur - addr);
  return {true, 0};
}

void AddressSpace::peek(uint64_t addr, void* out, uint64_t n) const {
  Access a = check_range(addr, n, 0);
  if (!a.ok) {
    throw StateError("peek of unmapped address " + hex_addr(a.fault_addr));
  }
  Access r = read(addr, out, n, 0);
  DYNACUT_ASSERT(r.ok);
}

void AddressSpace::poke(uint64_t addr, const void* src, uint64_t n) {
  Access a = check_range(addr, n, 0);
  if (!a.ok) {
    throw StateError("poke of unmapped address " + hex_addr(a.fault_addr));
  }
  Access w = write(addr, src, n, 0);
  DYNACUT_ASSERT(w.ok);
}

std::vector<uint8_t> AddressSpace::peek_bytes(uint64_t addr,
                                              uint64_t n) const {
  std::vector<uint8_t> out(n);
  peek(addr, out.data(), n);
  return out;
}

void AddressSpace::poke_bytes(uint64_t addr, std::span<const uint8_t> bytes) {
  poke(addr, bytes.data(), bytes.size());
}

std::vector<uint64_t> AddressSpace::populated_pages() const {
  std::vector<uint64_t> out;
  out.reserve(pages_.size());
  for (const auto& [addr, page] : pages_) {
    // A page can linger after its VMA was unmapped and the range remapped;
    // only report pages still inside a VMA.
    if (vma_at(addr) != nullptr) out.push_back(addr);
  }
  return out;
}

uint64_t AddressSpace::resident_bytes(std::set<const void*>* seen) const {
  std::set<const void*> local;
  std::set<const void*>& s = seen != nullptr ? *seen : local;
  uint64_t total = 0;
  for (const auto& [addr, block] : pages_) {
    if (s.insert(block.get()).second) total += block->size();
  }
  return total;
}

std::span<const uint8_t> AddressSpace::page_bytes(uint64_t page_addr) const {
  const Page* p = find_page(page_addr);
  if (p == nullptr) {
    throw StateError("page not populated: " + hex_addr(page_addr));
  }
  return {p->data(), p->size()};
}

void AddressSpace::install_page(uint64_t page_addr,
                                std::span<const uint8_t> bytes) {
  DYNACUT_ASSERT(page_addr == page_floor(page_addr));
  DYNACUT_ASSERT(bytes.size() == kPageSize);
  Page& p = writable_page(page_addr);
  std::copy(bytes.begin(), bytes.end(), p.begin());
  ++page_gens_[page_addr];
}

PageRef AddressSpace::page_block(uint64_t page_addr) const {
  auto it = pages_.find(page_addr);
  if (it == pages_.end()) {
    throw StateError("page not populated: " + hex_addr(page_addr));
  }
  // The block is shared from here on: the write fast path must not keep
  // scribbling into it through its raw pointer.
  if (cached_page_addr_ == page_addr) cached_page_writable_ = false;
  return it->second;
}

void AddressSpace::install_page_block(uint64_t page_addr, PageRef block) {
  DYNACUT_ASSERT(page_addr == page_floor(page_addr));
  DYNACUT_ASSERT(block != nullptr && block->size() == kPageSize);
  invalidate_caches();
  pages_[page_addr] = std::move(block);
  page_stamps_[page_addr] = epoch_;
  ++page_gens_[page_addr];
}

void AddressSpace::adopt_page_block(uint64_t page_addr, PageRef block) {
  DYNACUT_ASSERT(page_addr == page_floor(page_addr));
  DYNACUT_ASSERT(block != nullptr && block->size() == kPageSize);
  invalidate_caches();
  pages_[page_addr] = std::move(block);
  // No generation bump, no dirty stamp: bytes are unchanged by contract.
}

void AddressSpace::drop_page(uint64_t page_addr) {
  DYNACUT_ASSERT(page_addr == page_floor(page_addr));
  if (pages_.erase(page_addr) == 0) return;
  invalidate_caches();
  page_stamps_[page_addr] = epoch_;
  ++page_gens_[page_addr];
}

}  // namespace dynacut::vm
