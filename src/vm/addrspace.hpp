// Per-process virtual address space: a VMA list plus sparse 4 KiB pages.
//
// This is the object CRIU-style checkpointing serializes (mm + pagemap +
// pages) and the process rewriter mutates. Pages are populated lazily on
// first write; reads inside a VMA of an unpopulated page observe zeros —
// mirroring anonymous-memory semantics, and giving the checkpointer the
// same "dump only populated pages" behaviour the paper relies on.
//
// Pages are refcounted blocks (PageRef): checkpointing shares the live
// block into the image instead of copying it, and the first write after a
// share clones the block (copy-on-write). A block referenced by more than
// one owner is immutable by contract — every mutation path goes through
// writable_page(), which clones a shared block before touching it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace dynacut::vm {

/// One refcounted 4 KiB page block, shared between live address spaces and
/// checkpoint images. Shared blocks (use_count > 1) are never mutated.
using PageRef = std::shared_ptr<std::vector<uint8_t>>;

/// Machine-wide share epoch. Every path that hands a block to a new holder
/// *with the owner's involvement* (page_block, a whole-space copy) disarms
/// that owner's write fast-path cache directly. Content-addressed dedup
/// (image::BlockStore::intern) is the one path that shares a live block
/// *behind its owner's back* — it cannot reach the owning space, so it
/// bumps this epoch instead, and AddressSpace::write() re-validates its
/// armed raw-pointer cache against it before every fast-path store. A
/// mismatch forces one writable_page() walk, which sees the new use_count
/// and clones (COW) before mutating.
uint64_t share_epoch();
void bump_share_epoch();

/// A virtual memory area (page-aligned [start, end) range).
struct Vma {
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t prot = 0;
  std::string name;  ///< "miniweb:.text", "[stack]", "[heap]", ...

  uint64_t size() const { return end - start; }
  bool contains(uint64_t addr) const { return addr >= start && addr < end; }
};

enum class FaultType : uint8_t {
  kNone = 0,
  kSegv,  ///< unmapped address or protection violation
  kIll,   ///< undecodable instruction
  kFpe,   ///< divide by zero
};

/// Outcome of a checked memory access.
struct Access {
  bool ok = true;
  uint64_t fault_addr = 0;
};

/// A checkpoint epoch: a point on one address space's modification clock.
/// The soft-dirty-bit analogue — dirty_pages_since(epoch) names every page
/// modified after the epoch was taken. The asid pins the epoch to the
/// address-space *instance*: a rebuilt space (full restore, restore_new,
/// copy-assignment) restarts its clock, so a stale epoch must never be
/// trusted there — asid mismatch invalidates it.
struct MemEpoch {
  uint64_t asid = 0;
  uint64_t epoch = 0;
  bool valid() const { return asid != 0; }
};

class AddressSpace {
 public:
  AddressSpace() = default;
  // Copies/moves must not carry cache pointers into another object's maps.
  // Copies take a fresh asid (decode caches keyed to the source must not
  // trust the copy); moves keep the source's asid because the map nodes —
  // and thus any generation-slot pointers handed out — move along with it.
  // A copy shares every page block with the source, so the source's write
  // caches must drop their raw pointers (the blocks are no longer unique).
  AddressSpace(const AddressSpace& o)
      : vmas_(o.vmas_),
        pages_(o.pages_),
        page_gens_(o.page_gens_),
        page_stamps_(o.page_stamps_),
        epoch_(o.epoch_) {
    o.invalidate_caches();
  }
  AddressSpace& operator=(const AddressSpace& o) {
    vmas_ = o.vmas_;
    pages_ = o.pages_;
    page_gens_ = o.page_gens_;
    page_stamps_ = o.page_stamps_;
    epoch_ = o.epoch_;
    asid_ = next_asid();
    invalidate_caches();
    o.invalidate_caches();
    return *this;
  }
  AddressSpace(AddressSpace&& o) noexcept
      : vmas_(std::move(o.vmas_)),
        pages_(std::move(o.pages_)),
        page_gens_(std::move(o.page_gens_)),
        page_stamps_(std::move(o.page_stamps_)),
        epoch_(o.epoch_),
        asid_(o.asid_) {}
  AddressSpace& operator=(AddressSpace&& o) noexcept {
    vmas_ = std::move(o.vmas_);
    pages_ = std::move(o.pages_);
    page_gens_ = std::move(o.page_gens_);
    page_stamps_ = std::move(o.page_stamps_);
    epoch_ = o.epoch_;
    asid_ = o.asid_;
    invalidate_caches();
    o.invalidate_caches();
    return *this;
  }

  /// Maps a new VMA. Throws StateError if it overlaps an existing one.
  void map(uint64_t start, uint64_t size, uint32_t prot,
           const std::string& name);

  /// Unmaps [start, start+size); partial unmaps split VMAs. Pages in the
  /// range are discarded. Throws StateError if the range touches no VMA.
  void unmap(uint64_t start, uint64_t size);

  /// Changes protection of [start, start+size), splitting VMAs as needed.
  void protect(uint64_t start, uint64_t size, uint32_t prot);

  const Vma* vma_at(uint64_t addr) const;
  const std::map<uint64_t, Vma>& vmas() const { return vmas_; }

  /// Finds a free gap of `size` bytes at or above `hint` (page aligned).
  uint64_t find_free(uint64_t size, uint64_t hint) const;

  // --- checked guest accesses (return faults, never throw) -------------
  Access read(uint64_t addr, void* out, uint64_t n, uint32_t need_prot) const;
  Access write(uint64_t addr, const void* src, uint64_t n, uint32_t need_prot);

  // --- host/debugger accesses (ignore protections, throw on unmapped) --
  void peek(uint64_t addr, void* out, uint64_t n) const;
  void poke(uint64_t addr, const void* src, uint64_t n);
  std::vector<uint8_t> peek_bytes(uint64_t addr, uint64_t n) const;
  void poke_bytes(uint64_t addr, std::span<const uint8_t> bytes);

  /// Addresses of populated (written-to) pages, ascending. This is what the
  /// checkpointer dumps.
  std::vector<uint64_t> populated_pages() const;

  /// Raw content of one populated page; throws if not populated.
  std::span<const uint8_t> page_bytes(uint64_t page_addr) const;

  /// Payload bytes of blocks this space holds that are not yet counted in
  /// `seen` (dedup by block identity). Thread one `seen` set across every
  /// address space and image store on the machine to measure true resident
  /// bytes under COW/content-addressed sharing; nullptr dedups within this
  /// space only.
  uint64_t resident_bytes(std::set<const void*>* seen = nullptr) const;

  /// Whether one page is populated AND still inside a VMA — the per-page
  /// form of the populated_pages() filter, used when re-checking a dirty
  /// set (dirty pages may have been dropped or unmapped since stamping).
  bool page_live(uint64_t page_addr) const {
    return pages_.count(page_addr) != 0 && vma_at(page_addr) != nullptr;
  }

  /// Installs page content directly (used by restore). Copies the bytes and
  /// bumps the page generation (content changed).
  void install_page(uint64_t page_addr, std::span<const uint8_t> bytes);

  // --- copy-on-write block sharing (checkpoint/restore hot path) --------
  /// Shares out the refcounted block of one populated page (O(1), no copy);
  /// throws if not populated. The block becomes shared: the next write to
  /// the page clones it first, so holders see an immutable snapshot.
  PageRef page_block(uint64_t page_addr) const;

  /// Installs a shared block as the page's content in O(1). Counts as a
  /// content change: bumps the page generation and dirty-stamps the page.
  void install_page_block(uint64_t page_addr, PageRef block);

  /// Re-shares a block whose bytes are identical to the page's current
  /// content (delta restore re-canonicalizing identity against the staged
  /// image). No generation bump — decoded code stays valid — and no dirty
  /// stamp: the page is byte-for-byte what the new baseline says it is.
  void adopt_page_block(uint64_t page_addr, PageRef block);

  /// Depopulates one page (reads observe zeros again). Bumps the page
  /// generation and dirty-stamps the page. No-op if not populated.
  void drop_page(uint64_t page_addr);

  uint64_t vma_count() const { return vmas_.size(); }

  // --- checkpoint epochs (dirty tracking) --------------------------------
  /// Takes a checkpoint epoch: every later page modification is "dirty
  /// since" the returned epoch. The soft-dirty analogue of CRIU's pre-copy.
  MemEpoch snapshot_epoch();

  /// Pages modified after `since` was taken, ascending. Returns nullopt if
  /// the epoch belongs to another address-space instance (asid mismatch —
  /// the space was rebuilt and its clock restarted), in which case callers
  /// must fall back to a full dump. The dirty set may include pages that
  /// were since depopulated or unmapped — callers re-check liveness.
  std::optional<std::vector<uint64_t>> dirty_pages_since(
      const MemEpoch& since) const;

  // --- code-cache support ----------------------------------------------
  /// Identity of this address-space instance. Decode caches record the asid
  /// they indexed; a mismatch (the process memory was copy-assigned or
  /// rebuilt by checkpoint restore) means every cached decode is stale.
  uint64_t asid() const { return asid_; }

  /// Monotonic modification counter for one page, the invalidation key of
  /// decoded-instruction caches. Bumped by byte writes landing on pages of
  /// executable VMAs, by install_page, and by map/protect/unmap over the
  /// page (protection flips and re-mapping both change what a fetch sees).
  /// Counters are never removed, so decoded entries keyed (page, gen) go
  /// stale — they can never be revived by a counter reset.
  uint64_t page_generation(uint64_t page_addr) const;

  /// Stable pointer to the page's generation counter (created at 0 on first
  /// use). Valid for this object's lifetime — entries are never erased and
  /// std::map nodes don't move — letting caches poll invalidation with one
  /// dereference per executed instruction.
  const uint64_t* page_generation_slot(uint64_t page_addr) const;

 private:
  using Page = std::vector<uint8_t>;  // always kPageSize long

  /// The page's block, uniquely owned: creates a zero page if absent,
  /// clones if shared (copy-on-write), and dirty-stamps it. Every byte
  /// mutation funnels through here.
  Page& writable_page(uint64_t page_addr);
  const Page* find_page(uint64_t page_addr) const;
  void invalidate_caches() const {
    cached_vma_ = nullptr;
    cached_page_addr_ = ~0ull;
    cached_page_ = nullptr;
    cached_page_writable_ = false;
  }

  /// Checks [addr, addr+n) lies inside VMAs with `need_prot`; returns the
  /// faulting address otherwise.
  Access check_range(uint64_t addr, uint64_t n, uint32_t need_prot) const;

  static uint64_t next_asid();

  /// Bumps the generation of every page overlapping [start, end) — used by
  /// the VMA-layout mutators, which change what an instruction fetch sees
  /// without necessarily touching page bytes.
  void bump_generations(uint64_t start, uint64_t end);

  /// Bumps generations for a byte write to [addr, addr+n) if it lands on
  /// executable VMAs (data-page writes don't concern instruction caches).
  void bump_exec_generations(uint64_t addr, uint64_t n);

  std::map<uint64_t, Vma> vmas_;      // keyed by start
  std::map<uint64_t, PageRef> pages_;  // keyed by page address

  // Page modification counters (see page_generation). Bump-only; mutable so
  // page_generation_slot can register a zero entry from const readers.
  mutable std::map<uint64_t, uint64_t> page_gens_;

  // Dirty tracking: the epoch each page was last modified in. Stamps are
  // written at the current epoch_ by every content mutation (first write
  // per page per epoch, install, drop, unmap-discard) and compared against
  // snapshot_epoch() marks. Entries are never erased — a page that vanished
  // is precisely one the delta dump must notice.
  std::map<uint64_t, uint64_t> page_stamps_;
  uint64_t epoch_ = 1;

  uint64_t asid_ = next_asid();

  // Hot-path caches (guest execution hits the same VMA/page repeatedly).
  // std::map nodes are pointer-stable across inserts, so these stay valid
  // until a VMA or page is removed; every structural change invalidates.
  // cached_page_writable_ marks that the cached block is uniquely owned
  // AND already dirty-stamped at the current epoch — only then may the
  // write fast path scribble through the raw pointer. Sharing a block out
  // (page_block, whole-space copy) or advancing the epoch clears it;
  // sharing behind this space's back (BlockStore dedup) bumps the global
  // share_epoch(), which the fast path checks against cached_share_epoch_.
  mutable const Vma* cached_vma_ = nullptr;
  mutable uint64_t cached_page_addr_ = ~0ull;
  mutable Page* cached_page_ = nullptr;
  mutable bool cached_page_writable_ = false;
  mutable uint64_t cached_share_epoch_ = 0;
};

}  // namespace dynacut::vm
