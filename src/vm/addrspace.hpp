// Per-process virtual address space: a VMA list plus sparse 4 KiB pages.
//
// This is the object CRIU-style checkpointing serializes (mm + pagemap +
// pages) and the process rewriter mutates. Pages are populated lazily on
// first write; reads inside a VMA of an unpopulated page observe zeros —
// mirroring anonymous-memory semantics, and giving the checkpointer the
// same "dump only populated pages" behaviour the paper relies on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace dynacut::vm {

/// A virtual memory area (page-aligned [start, end) range).
struct Vma {
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t prot = 0;
  std::string name;  ///< "miniweb:.text", "[stack]", "[heap]", ...

  uint64_t size() const { return end - start; }
  bool contains(uint64_t addr) const { return addr >= start && addr < end; }
};

enum class FaultType : uint8_t {
  kNone = 0,
  kSegv,  ///< unmapped address or protection violation
  kIll,   ///< undecodable instruction
  kFpe,   ///< divide by zero
};

/// Outcome of a checked memory access.
struct Access {
  bool ok = true;
  uint64_t fault_addr = 0;
};

class AddressSpace {
 public:
  AddressSpace() = default;
  // Copies/moves must not carry cache pointers into another object's maps.
  // Copies take a fresh asid (decode caches keyed to the source must not
  // trust the copy); moves keep the source's asid because the map nodes —
  // and thus any generation-slot pointers handed out — move along with it.
  AddressSpace(const AddressSpace& o)
      : vmas_(o.vmas_), pages_(o.pages_), page_gens_(o.page_gens_) {}
  AddressSpace& operator=(const AddressSpace& o) {
    vmas_ = o.vmas_;
    pages_ = o.pages_;
    page_gens_ = o.page_gens_;
    asid_ = next_asid();
    invalidate_caches();
    return *this;
  }
  AddressSpace(AddressSpace&& o) noexcept
      : vmas_(std::move(o.vmas_)),
        pages_(std::move(o.pages_)),
        page_gens_(std::move(o.page_gens_)),
        asid_(o.asid_) {}
  AddressSpace& operator=(AddressSpace&& o) noexcept {
    vmas_ = std::move(o.vmas_);
    pages_ = std::move(o.pages_);
    page_gens_ = std::move(o.page_gens_);
    asid_ = o.asid_;
    invalidate_caches();
    o.invalidate_caches();
    return *this;
  }

  /// Maps a new VMA. Throws StateError if it overlaps an existing one.
  void map(uint64_t start, uint64_t size, uint32_t prot,
           const std::string& name);

  /// Unmaps [start, start+size); partial unmaps split VMAs. Pages in the
  /// range are discarded. Throws StateError if the range touches no VMA.
  void unmap(uint64_t start, uint64_t size);

  /// Changes protection of [start, start+size), splitting VMAs as needed.
  void protect(uint64_t start, uint64_t size, uint32_t prot);

  const Vma* vma_at(uint64_t addr) const;
  const std::map<uint64_t, Vma>& vmas() const { return vmas_; }

  /// Finds a free gap of `size` bytes at or above `hint` (page aligned).
  uint64_t find_free(uint64_t size, uint64_t hint) const;

  // --- checked guest accesses (return faults, never throw) -------------
  Access read(uint64_t addr, void* out, uint64_t n, uint32_t need_prot) const;
  Access write(uint64_t addr, const void* src, uint64_t n, uint32_t need_prot);

  // --- host/debugger accesses (ignore protections, throw on unmapped) --
  void peek(uint64_t addr, void* out, uint64_t n) const;
  void poke(uint64_t addr, const void* src, uint64_t n);
  std::vector<uint8_t> peek_bytes(uint64_t addr, uint64_t n) const;
  void poke_bytes(uint64_t addr, std::span<const uint8_t> bytes);

  /// Addresses of populated (written-to) pages, ascending. This is what the
  /// checkpointer dumps.
  std::vector<uint64_t> populated_pages() const;

  /// Raw content of one populated page; throws if not populated.
  std::span<const uint8_t> page_bytes(uint64_t page_addr) const;

  /// Installs page content directly (used by restore).
  void install_page(uint64_t page_addr, std::span<const uint8_t> bytes);

  uint64_t vma_count() const { return vmas_.size(); }

  // --- code-cache support ----------------------------------------------
  /// Identity of this address-space instance. Decode caches record the asid
  /// they indexed; a mismatch (the process memory was copy-assigned or
  /// rebuilt by checkpoint restore) means every cached decode is stale.
  uint64_t asid() const { return asid_; }

  /// Monotonic modification counter for one page, the invalidation key of
  /// decoded-instruction caches. Bumped by byte writes landing on pages of
  /// executable VMAs, by install_page, and by map/protect/unmap over the
  /// page (protection flips and re-mapping both change what a fetch sees).
  /// Counters are never removed, so decoded entries keyed (page, gen) go
  /// stale — they can never be revived by a counter reset.
  uint64_t page_generation(uint64_t page_addr) const;

  /// Stable pointer to the page's generation counter (created at 0 on first
  /// use). Valid for this object's lifetime — entries are never erased and
  /// std::map nodes don't move — letting caches poll invalidation with one
  /// dereference per executed instruction.
  const uint64_t* page_generation_slot(uint64_t page_addr) const;

 private:
  using Page = std::vector<uint8_t>;  // always kPageSize long

  Page& ensure_page(uint64_t page_addr);
  const Page* find_page(uint64_t page_addr) const;
  void invalidate_caches() const {
    cached_vma_ = nullptr;
    cached_page_addr_ = ~0ull;
    cached_page_ = nullptr;
  }

  /// Checks [addr, addr+n) lies inside VMAs with `need_prot`; returns the
  /// faulting address otherwise.
  Access check_range(uint64_t addr, uint64_t n, uint32_t need_prot) const;

  static uint64_t next_asid();

  /// Bumps the generation of every page overlapping [start, end) — used by
  /// the VMA-layout mutators, which change what an instruction fetch sees
  /// without necessarily touching page bytes.
  void bump_generations(uint64_t start, uint64_t end);

  /// Bumps generations for a byte write to [addr, addr+n) if it lands on
  /// executable VMAs (data-page writes don't concern instruction caches).
  void bump_exec_generations(uint64_t addr, uint64_t n);

  std::map<uint64_t, Vma> vmas_;        // keyed by start
  std::map<uint64_t, Page> pages_;      // keyed by page address

  // Page modification counters (see page_generation). Bump-only; mutable so
  // page_generation_slot can register a zero entry from const readers.
  mutable std::map<uint64_t, uint64_t> page_gens_;
  uint64_t asid_ = next_asid();

  // Hot-path caches (guest execution hits the same VMA/page repeatedly).
  // std::map nodes are pointer-stable across inserts, so these stay valid
  // until a VMA or page is removed; every structural change invalidates.
  mutable const Vma* cached_vma_ = nullptr;
  mutable uint64_t cached_page_addr_ = ~0ull;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace dynacut::vm
