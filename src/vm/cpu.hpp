// CPU register state of one VX64 hardware thread.
#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"

namespace dynacut::vm {

struct Cpu {
  std::array<uint64_t, isa::kNumRegs> regs{};
  uint64_t ip = 0;

  // Comparison flags, set by cmp. zf: equal; lt_s: signed less-than;
  // lt_u: unsigned less-than.
  bool zf = false;
  bool lt_s = false;
  bool lt_u = false;

  uint64_t& sp() { return regs[isa::kSpReg]; }
  uint64_t sp() const { return regs[isa::kSpReg]; }

  /// Flags packed into one word for signal frames / checkpoints.
  uint64_t pack_flags() const {
    return (zf ? 1u : 0u) | (lt_s ? 2u : 0u) | (lt_u ? 4u : 0u);
  }
  void unpack_flags(uint64_t f) {
    zf = f & 1;
    lt_s = f & 2;
    lt_u = f & 4;
  }
};

}  // namespace dynacut::vm
