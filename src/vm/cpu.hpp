// CPU register state of one VX64 hardware thread.
#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"

namespace dynacut::vm {

struct Cpu {
  std::array<uint64_t, isa::kNumRegs> regs{};
  uint64_t ip = 0;

  // Comparison flags, set by cmp. zf: equal; lt_s: signed less-than;
  // lt_u: unsigned less-than.
  bool zf = false;
  bool lt_s = false;
  bool lt_u = false;

  uint64_t& sp() { return regs[isa::kSpReg]; }
  uint64_t sp() const { return regs[isa::kSpReg]; }

  /// Flags packed into one word for signal frames / checkpoints.
  uint64_t pack_flags() const {
    return (zf ? 1u : 0u) | (lt_s ? 2u : 0u) | (lt_u ? 4u : 0u);
  }
  void unpack_flags(uint64_t f) {
    zf = f & 1;
    lt_s = f & 2;
    lt_u = f & 4;
  }
};

// Flag/branch semantics shared by every execution engine (the single-step
// interpreter in exec.cpp and the superblock dispatcher in superblock.cpp).
// One definition so a fused trace can never disagree with the interpreter
// about whether a branch is taken.

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
inline void set_flags(Cpu& cpu, uint64_t a, uint64_t b) {
  cpu.zf = a == b;
  cpu.lt_u = a < b;
  cpu.lt_s = static_cast<int64_t>(a) < static_cast<int64_t>(b);
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
inline bool branch_taken(const Cpu& cpu, isa::Op op) {
  switch (op) {
    case isa::Op::kJe:
      return cpu.zf;
    case isa::Op::kJne:
      return !cpu.zf;
    case isa::Op::kJlt:
      return cpu.lt_s;
    case isa::Op::kJle:
      return cpu.lt_s || cpu.zf;
    case isa::Op::kJgt:
      return !cpu.lt_s && !cpu.zf;
    case isa::Op::kJge:
      return !cpu.lt_s;
    case isa::Op::kJb:
      return cpu.lt_u;
    case isa::Op::kJae:
      return !cpu.lt_u;
    default:
      return true;  // kJmp
  }
}

}  // namespace dynacut::vm
