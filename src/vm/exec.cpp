#include "vm/exec.hpp"

#include <algorithm>
#include <cstring>

#include "vm/superblock.hpp"

namespace dynacut::vm {

namespace {

using isa::Instr;
using isa::Op;

/// Fetches and decodes the instruction at `ip` from raw page bytes. Returns
/// fault info on unmapped/non-executable memory or an invalid encoding.
StepResult fetch(const AddressSpace& mem, uint64_t ip, Instr& out) {
  // Fast path: speculatively read a maximal instruction in one go — almost
  // always hits the cached page.
  uint8_t fast[isa::kMaxInstrLength];
  if (mem.read(ip, fast, sizeof fast, kProtExec).ok) {
    auto ins = isa::try_decode(fast);
    if (!ins) return {StepKind::kFault, FaultType::kIll, ip, false};
    out = *ins;
    return {StepKind::kOk, FaultType::kNone, 0, false};
  }

  uint8_t opcode;
  Access a = mem.read(ip, &opcode, 1, kProtExec);
  if (!a.ok) return {StepKind::kFault, FaultType::kSegv, a.fault_addr, false};
  uint8_t len = isa::instr_length(opcode);
  if (len == 0) return {StepKind::kFault, FaultType::kIll, ip, false};
  uint8_t buf[16];
  buf[0] = opcode;
  if (len > 1) {
    a = mem.read(ip + 1, buf + 1, len - 1, kProtExec);
    if (!a.ok) {
      return {StepKind::kFault, FaultType::kSegv, a.fault_addr, false};
    }
  }
  auto ins = isa::try_decode({buf, len});
  if (!ins) return {StepKind::kFault, FaultType::kIll, ip, false};
  out = *ins;
  return {StepKind::kOk, FaultType::kNone, 0, false};
}

// set_flags / branch_taken live in cpu.hpp, shared with the superblock
// dispatcher so the two engines can never disagree on branch semantics.

/// Executes one already-decoded instruction at cpu.ip. Force-inlined into
/// the step/run_block loops: the call overhead is measurable at the
/// instructions-per-second scale even in unoptimized builds.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
inline StepResult
execute(AddressSpace& mem, Cpu& cpu, const Instr& ins) {
  const uint64_t next_ip = cpu.ip + ins.length;
  auto& r = cpu.regs;
  StepResult result;
  result.block_end = isa::is_terminator(ins.op);

  auto segv = [&](uint64_t addr) {
    return StepResult{StepKind::kFault, FaultType::kSegv, addr, false};
  };

  switch (ins.op) {
    case Op::kMovRI:
      r[ins.r1] = static_cast<uint64_t>(ins.imm);
      break;
    case Op::kMovRR:
      r[ins.r1] = r[ins.r2];
      break;
    case Op::kLoad: {
      uint64_t v;
      Access a = mem.read(r[ins.r2] + ins.imm, &v, 8, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      r[ins.r1] = v;
      break;
    }
    case Op::kStore: {
      Access a = mem.write(r[ins.r1] + ins.imm, &r[ins.r2], 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      break;
    }
    case Op::kLoadB: {
      uint8_t v;
      Access a = mem.read(r[ins.r2] + ins.imm, &v, 1, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      r[ins.r1] = v;
      break;
    }
    case Op::kStoreB: {
      uint8_t v = static_cast<uint8_t>(r[ins.r2]);
      Access a = mem.write(r[ins.r1] + ins.imm, &v, 1, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      break;
    }
    case Op::kAddRR:
      r[ins.r1] += r[ins.r2];
      break;
    case Op::kAddRI:
      r[ins.r1] += static_cast<uint64_t>(ins.imm);
      break;
    case Op::kSubRR:
      r[ins.r1] -= r[ins.r2];
      break;
    case Op::kSubRI:
      r[ins.r1] -= static_cast<uint64_t>(ins.imm);
      break;
    case Op::kMulRR:
      r[ins.r1] *= r[ins.r2];
      break;
    case Op::kDivRR:
      if (r[ins.r2] == 0) {
        return {StepKind::kFault, FaultType::kFpe, cpu.ip, false};
      }
      r[ins.r1] /= r[ins.r2];
      break;
    case Op::kAndRR:
      r[ins.r1] &= r[ins.r2];
      break;
    case Op::kOrRR:
      r[ins.r1] |= r[ins.r2];
      break;
    case Op::kXorRR:
      r[ins.r1] ^= r[ins.r2];
      break;
    case Op::kShlRI:
      r[ins.r1] <<= (ins.imm & 63);
      break;
    case Op::kShrRI:
      r[ins.r1] >>= (ins.imm & 63);
      break;
    case Op::kCmpRR:
      set_flags(cpu, r[ins.r1], r[ins.r2]);
      break;
    case Op::kCmpRI:
      set_flags(cpu, r[ins.r1], static_cast<uint64_t>(ins.imm));
      break;
    case Op::kJmp:
    case Op::kJe:
    case Op::kJne:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
      cpu.ip = branch_taken(cpu, ins.op) ? ins.target(cpu.ip) : next_ip;
      return result;
    case Op::kCall: {
      uint64_t ra = next_ip;
      cpu.sp() -= 8;
      Access a = mem.write(cpu.sp(), &ra, 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      cpu.ip = ins.target(cpu.ip);
      return result;
    }
    case Op::kCallR: {
      uint64_t ra = next_ip;
      cpu.sp() -= 8;
      Access a = mem.write(cpu.sp(), &ra, 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      cpu.ip = r[ins.r1];
      return result;
    }
    case Op::kRet: {
      uint64_t ra;
      Access a = mem.read(cpu.sp(), &ra, 8, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      cpu.sp() += 8;
      cpu.ip = ra;
      return result;
    }
    case Op::kJmpR:
      cpu.ip = r[ins.r1];
      return result;
    case Op::kPush: {
      cpu.sp() -= 8;
      Access a = mem.write(cpu.sp(), &r[ins.r1], 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      break;
    }
    case Op::kPop: {
      uint64_t v;
      Access a = mem.read(cpu.sp(), &v, 8, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      cpu.sp() += 8;
      r[ins.r1] = v;
      break;
    }
    case Op::kSyscall:
      cpu.ip = next_ip;
      result.kind = StepKind::kSyscall;
      return result;
    case Op::kTrap:
      // ip intentionally NOT advanced: the signal frame records the trap
      // address so a handler can patch/redirect and re-execute.
      result.kind = StepKind::kTrap;
      result.fault_addr = cpu.ip;
      return result;
    case Op::kLea:
      r[ins.r1] = ins.target(cpu.ip);
      break;
    case Op::kNop:
      break;
  }

  cpu.ip = next_ip;
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// DecodeCache
// ---------------------------------------------------------------------------

void DecodeCache::clear() {
  pages_.clear();
  last_page_ = ~0ull;
  last_entry_ = nullptr;
}

void DecodeCache::sync(const AddressSpace& mem) {
  if (asid_ != mem.asid()) {
    clear();
    asid_ = mem.asid();
  }
}

DecodeCache::PageEntry* DecodeCache::entry_for(const AddressSpace& mem,
                                               uint64_t page_addr) {
  PageEntry* e;
  if (page_addr == last_page_) {
    e = last_entry_;
  } else {
    auto [it, inserted] = pages_.try_emplace(page_addr);
    e = &it->second;
    if (inserted) {
      e->live_gen = mem.page_generation_slot(page_addr);
      e->gen = *e->live_gen;
      e->slots.resize(kPageSize);
    }
    last_page_ = page_addr;
    last_entry_ = e;
  }
  if (*e->live_gen != e->gen) {
    // The page (or its mapping) changed since the slots were decoded: wipe
    // and adopt the new generation. Slots refill lazily against the new
    // bytes.
    std::fill(e->slots.begin(), e->slots.end(), Slot{});
    e->gen = *e->live_gen;
    ++invalidations_;
  }
  return e;
}

bool DecodeCache::fill_slot(const AddressSpace& mem, uint64_t ip, Slot& s) {
  uint8_t buf[isa::kMaxInstrLength];
  if (!mem.read(ip, buf, sizeof buf, kProtExec).ok) return false;
  auto ins = isa::try_decode(buf);
  if (!ins) {
    s.state = kBad;
  } else {
    s.ins = *ins;
    s.state = kValid;
  }
  return true;
}

StepResult DecodeCache::fetch(AddressSpace& mem, uint64_t ip,
                              isa::Instr& out) {
  sync(mem);
  const uint64_t page = page_floor(ip);
  const uint64_t off = ip - page;
  if (off + isa::kMaxInstrLength > kPageSize) {
    // Possible page-straddler: serve uncached (its decode would also depend
    // on the next page's generation).
    ++misses_;
    return vm::fetch(mem, ip, out);
  }
  PageEntry* e = entry_for(mem, page);
  Slot& s = e->slots[off];
  if (s.state == kUnknown) {
    ++misses_;
    if (!fill_slot(mem, ip, s)) {
      return vm::fetch(mem, ip, out);  // not executable: precise fault
    }
  } else {
    ++hits_;
  }
  if (s.state == kBad) return {StepKind::kFault, FaultType::kIll, ip, false};
  out = s.ins;
  return {StepKind::kOk, FaultType::kNone, 0, false};
}

size_t DecodeCache::warm(AddressSpace& mem, uint64_t start, uint64_t end) {
  size_t decoded = 0;
  uint64_t ip = start;
  while (ip < end) {
    isa::Instr ins;
    if (fetch(mem, ip, ins).kind == StepKind::kFault) {
      ++ip;  // undecodable/pad byte: resync one byte forward
      continue;
    }
    ip += ins.length;
    ++decoded;
  }
  return decoded;
}

// ---------------------------------------------------------------------------
// Stepping
// ---------------------------------------------------------------------------

StepResult step(AddressSpace& mem, Cpu& cpu) { return step(mem, cpu, nullptr); }

StepResult step(AddressSpace& mem, Cpu& cpu, DecodeCache* cache) {
  Instr ins;
  StepResult fr = cache != nullptr ? cache->fetch(mem, cpu.ip, ins)
                                   : fetch(mem, cpu.ip, ins);
  if (fr.kind != StepKind::kOk) return fr;
  return execute(mem, cpu, ins);
}

StepResult run_block(AddressSpace& mem, Cpu& cpu, DecodeCache* cache,
                     uint64_t max_instr, uint64_t& retired) {
  retired = 0;
  StepResult r{};
  if (max_instr == 0) return r;

  if (cache == nullptr) {
    while (retired < max_instr) {
      r = step(mem, cpu);
      ++retired;
      if (r.kind != StepKind::kOk || r.block_end) break;
    }
    return r;
  }

  cache->sync(mem);
  uint64_t n = 0;     // local retired counter (flushed on every exit)
  uint64_t hits = 0;  // local stats accumulator — off the per-instr path
  bool stop = false;
  while (!stop) {
    const uint64_t page = page_floor(cpu.ip);
    DecodeCache::PageEntry* e =
        cpu.ip - page + isa::kMaxInstrLength <= kPageSize
            ? cache->entry_for(mem, page)
            : nullptr;
    const uint64_t n_at_entry = n;
    if (e != nullptr) {
      // Straight-line fast path: stay on this page's decoded array. One
      // generation dereference per instruction keeps self-modifying stores
      // (e.g. the verifier handler healing its own page) precise.
      const uint64_t* live_gen = e->live_gen;
      const uint64_t gen = e->gen;
      DecodeCache::Slot* slots = e->slots.data();
      while (n < max_instr && *live_gen == gen) {
        const uint64_t off = cpu.ip - page;
        if (off + isa::kMaxInstrLength > kPageSize) break;  // page edge
        DecodeCache::Slot& s = slots[off];
        if (s.state == DecodeCache::kValid) {
          ++hits;
        } else {
          if (s.state == DecodeCache::kUnknown) {
            // Count the miss only if the fill succeeds: on a failed fill the
            // slot stays kUnknown and the no-progress fallback step() below
            // re-enters DecodeCache::fetch, which counts that same attempt
            // exactly once (and faults precisely).
            if (!cache->fill_slot(mem, cpu.ip, s)) break;  // fault: slow path
            ++cache->misses_;
          } else {
            ++hits;  // a known-bad slot is still a cache-served fetch
          }
          if (s.state == DecodeCache::kBad) {
            r = {StepKind::kFault, FaultType::kIll, cpu.ip, false};
            ++n;
            stop = true;
            break;
          }
        }
        r = execute(mem, cpu, s.ins);
        ++n;
        if (r.kind != StepKind::kOk || r.block_end) {
          stop = true;
          break;
        }
      }
    }
    if (stop || n >= max_instr) break;
    if (n == n_at_entry) {  // fast path made no progress this round
      // Page-edge instruction, non-executable fetch, or a generation bump
      // raced the entry lookup: take the generic single-step path so the
      // loop always advances.
      r = step(mem, cpu, cache);
      ++n;
      if (r.kind != StepKind::kOk || r.block_end || n >= max_instr) break;
    }
  }
  cache->hits_ += hits;
  retired = n;
  return r;
}

StepResult run_block(AddressSpace& mem, Cpu& cpu, DecodeCache* cache,
                     SuperblockCache* sbc, uint64_t max_instr,
                     uint64_t& retired) {
  if (sbc == nullptr) return run_block(mem, cpu, cache, max_instr, retired);

  retired = 0;
  StepResult r{};
  if (max_instr == 0) return r;

  uint64_t n = 0;
  while (n < max_instr) {
    SuperblockCache::Ref ref = sbc->lookup(mem, cpu.ip);
    if (ref.sb != nullptr) {
      SbExit why = SbExit::kBranch;
      r = sbc->dispatch(mem, cpu, ref, max_instr - n, n, why);
      if (why == SbExit::kBudget) break;
      if (why != SbExit::kDeopt) {
        // kEvent / kBranch: surface exactly like the interpreter path would.
        retired = n;
        return r;
      }
      // kDeopt: the trace went stale mid-dispatch. cpu.ip is at the next
      // unstarted instruction; finish the round on the interpreter path,
      // which re-fetches (and so re-validates) precisely.
      if (n >= max_instr) break;
    }
    uint64_t sub = 0;
    r = run_block(mem, cpu, cache, max_instr - n, sub);
    n += sub;
    if (r.kind != StepKind::kOk || r.block_end) {
      retired = n;
      return r;
    }
    // kOk without block_end: the interpreter round spent the remaining
    // budget; the loop condition ends us.
  }
  retired = n;
  return r;
}

BlockInfo block_at(const AddressSpace& mem, uint64_t addr,
                   uint64_t max_bytes) {
  BlockInfo info;
  uint64_t cur = addr;
  while (cur - addr < max_bytes) {
    uint8_t buf[16];
    Access a = mem.read(cur, buf, 1, kProtExec);
    if (!a.ok) break;
    uint8_t len = isa::instr_length(buf[0]);
    if (len == 0) break;
    if (len > 1 && !mem.read(cur + 1, buf + 1, len - 1, kProtExec).ok) break;
    auto ins = isa::try_decode({buf, len});
    if (!ins) break;
    info.size = cur + len - addr;
    info.instr_count += 1;
    if (isa::is_terminator(ins->op)) {
      info.terminated = true;
      break;
    }
    cur += len;
  }
  return info;
}

}  // namespace dynacut::vm
