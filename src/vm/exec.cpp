#include "vm/exec.hpp"

#include <cstring>

namespace dynacut::vm {

namespace {

using isa::Instr;
using isa::Op;

/// Fetches and decodes the instruction at cpu.ip. Returns fault info on
/// unmapped/non-executable memory or an invalid encoding.
StepResult fetch(const AddressSpace& mem, uint64_t ip, Instr& out) {
  // Fast path: speculatively read a maximal instruction (10 bytes) in one
  // go — almost always hits the cached page.
  uint8_t fast[10];
  if (mem.read(ip, fast, sizeof fast, kProtExec).ok) {
    auto ins = isa::try_decode(fast);
    if (!ins) return {StepKind::kFault, FaultType::kIll, ip, false};
    out = *ins;
    return {StepKind::kOk, FaultType::kNone, 0, false};
  }

  uint8_t opcode;
  Access a = mem.read(ip, &opcode, 1, kProtExec);
  if (!a.ok) return {StepKind::kFault, FaultType::kSegv, a.fault_addr, false};
  uint8_t len = isa::instr_length(opcode);
  if (len == 0) return {StepKind::kFault, FaultType::kIll, ip, false};
  uint8_t buf[16];
  buf[0] = opcode;
  if (len > 1) {
    a = mem.read(ip + 1, buf + 1, len - 1, kProtExec);
    if (!a.ok) {
      return {StepKind::kFault, FaultType::kSegv, a.fault_addr, false};
    }
  }
  auto ins = isa::try_decode({buf, len});
  if (!ins) return {StepKind::kFault, FaultType::kIll, ip, false};
  out = *ins;
  return {StepKind::kOk, FaultType::kNone, 0, false};
}

void set_flags(Cpu& cpu, uint64_t a, uint64_t b) {
  cpu.zf = a == b;
  cpu.lt_u = a < b;
  cpu.lt_s = static_cast<int64_t>(a) < static_cast<int64_t>(b);
}

bool branch_taken(const Cpu& cpu, Op op) {
  switch (op) {
    case Op::kJe:
      return cpu.zf;
    case Op::kJne:
      return !cpu.zf;
    case Op::kJlt:
      return cpu.lt_s;
    case Op::kJle:
      return cpu.lt_s || cpu.zf;
    case Op::kJgt:
      return !cpu.lt_s && !cpu.zf;
    case Op::kJge:
      return !cpu.lt_s;
    case Op::kJb:
      return cpu.lt_u;
    case Op::kJae:
      return !cpu.lt_u;
    default:
      return true;  // kJmp
  }
}

}  // namespace

StepResult step(AddressSpace& mem, Cpu& cpu) {
  Instr ins;
  StepResult fr = fetch(mem, cpu.ip, ins);
  if (fr.kind != StepKind::kOk) return fr;

  const uint64_t next_ip = cpu.ip + ins.length;
  auto& r = cpu.regs;
  StepResult result;
  result.block_end = isa::is_terminator(ins.op);

  auto segv = [&](uint64_t addr) {
    return StepResult{StepKind::kFault, FaultType::kSegv, addr, false};
  };

  switch (ins.op) {
    case Op::kMovRI:
      r[ins.r1] = static_cast<uint64_t>(ins.imm);
      break;
    case Op::kMovRR:
      r[ins.r1] = r[ins.r2];
      break;
    case Op::kLoad: {
      uint64_t v;
      Access a = mem.read(r[ins.r2] + ins.imm, &v, 8, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      r[ins.r1] = v;
      break;
    }
    case Op::kStore: {
      Access a = mem.write(r[ins.r1] + ins.imm, &r[ins.r2], 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      break;
    }
    case Op::kLoadB: {
      uint8_t v;
      Access a = mem.read(r[ins.r2] + ins.imm, &v, 1, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      r[ins.r1] = v;
      break;
    }
    case Op::kStoreB: {
      uint8_t v = static_cast<uint8_t>(r[ins.r2]);
      Access a = mem.write(r[ins.r1] + ins.imm, &v, 1, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      break;
    }
    case Op::kAddRR:
      r[ins.r1] += r[ins.r2];
      break;
    case Op::kAddRI:
      r[ins.r1] += static_cast<uint64_t>(ins.imm);
      break;
    case Op::kSubRR:
      r[ins.r1] -= r[ins.r2];
      break;
    case Op::kSubRI:
      r[ins.r1] -= static_cast<uint64_t>(ins.imm);
      break;
    case Op::kMulRR:
      r[ins.r1] *= r[ins.r2];
      break;
    case Op::kDivRR:
      if (r[ins.r2] == 0) {
        return {StepKind::kFault, FaultType::kFpe, cpu.ip, false};
      }
      r[ins.r1] /= r[ins.r2];
      break;
    case Op::kAndRR:
      r[ins.r1] &= r[ins.r2];
      break;
    case Op::kOrRR:
      r[ins.r1] |= r[ins.r2];
      break;
    case Op::kXorRR:
      r[ins.r1] ^= r[ins.r2];
      break;
    case Op::kShlRI:
      r[ins.r1] <<= (ins.imm & 63);
      break;
    case Op::kShrRI:
      r[ins.r1] >>= (ins.imm & 63);
      break;
    case Op::kCmpRR:
      set_flags(cpu, r[ins.r1], r[ins.r2]);
      break;
    case Op::kCmpRI:
      set_flags(cpu, r[ins.r1], static_cast<uint64_t>(ins.imm));
      break;
    case Op::kJmp:
    case Op::kJe:
    case Op::kJne:
    case Op::kJlt:
    case Op::kJle:
    case Op::kJgt:
    case Op::kJge:
    case Op::kJb:
    case Op::kJae:
      cpu.ip = branch_taken(cpu, ins.op) ? ins.target(cpu.ip) : next_ip;
      return result;
    case Op::kCall: {
      uint64_t ra = next_ip;
      cpu.sp() -= 8;
      Access a = mem.write(cpu.sp(), &ra, 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      cpu.ip = ins.target(cpu.ip);
      return result;
    }
    case Op::kCallR: {
      uint64_t ra = next_ip;
      cpu.sp() -= 8;
      Access a = mem.write(cpu.sp(), &ra, 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      cpu.ip = r[ins.r1];
      return result;
    }
    case Op::kRet: {
      uint64_t ra;
      Access a = mem.read(cpu.sp(), &ra, 8, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      cpu.sp() += 8;
      cpu.ip = ra;
      return result;
    }
    case Op::kJmpR:
      cpu.ip = r[ins.r1];
      return result;
    case Op::kPush: {
      cpu.sp() -= 8;
      Access a = mem.write(cpu.sp(), &r[ins.r1], 8, kProtWrite);
      if (!a.ok) return segv(a.fault_addr);
      break;
    }
    case Op::kPop: {
      uint64_t v;
      Access a = mem.read(cpu.sp(), &v, 8, kProtRead);
      if (!a.ok) return segv(a.fault_addr);
      cpu.sp() += 8;
      r[ins.r1] = v;
      break;
    }
    case Op::kSyscall:
      cpu.ip = next_ip;
      result.kind = StepKind::kSyscall;
      return result;
    case Op::kTrap:
      // ip intentionally NOT advanced: the signal frame records the trap
      // address so a handler can patch/redirect and re-execute.
      result.kind = StepKind::kTrap;
      result.fault_addr = cpu.ip;
      return result;
    case Op::kLea:
      r[ins.r1] = ins.target(cpu.ip);
      break;
    case Op::kNop:
      break;
  }

  cpu.ip = next_ip;
  return result;
}

BlockInfo block_at(const AddressSpace& mem, uint64_t addr,
                   uint64_t max_bytes) {
  BlockInfo info;
  uint64_t cur = addr;
  while (cur - addr < max_bytes) {
    uint8_t buf[16];
    Access a = mem.read(cur, buf, 1, kProtExec);
    if (!a.ok) break;
    uint8_t len = isa::instr_length(buf[0]);
    if (len == 0) break;
    if (len > 1 && !mem.read(cur + 1, buf + 1, len - 1, kProtExec).ok) break;
    auto ins = isa::try_decode({buf, len});
    if (!ins) break;
    info.size = cur + len - addr;
    info.instr_count += 1;
    if (isa::is_terminator(ins->op)) break;
    cur += len;
  }
  return info;
}

}  // namespace dynacut::vm
