// The VX64 executor: single-steps a CPU over an address space.
//
// The executor is policy-free: syscalls, traps and faults are reported to
// the caller (the OS simulator), which implements kernel behaviour.
//
// Hot-loop execution goes through a DecodeCache: per-page arrays of decoded
// instructions keyed by (page address, page generation). AddressSpace bumps
// a page's generation on every byte write to executable memory and on every
// map/protect/unmap over it, so live rewrites — int3 patches, trap-handler
// byte heals, block wipes, unmaps — take effect on the very next fetched
// instruction; there is no window where a stale decode can execute.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"
#include "vm/addrspace.hpp"
#include "vm/cpu.hpp"

namespace dynacut::vm {

enum class StepKind : uint8_t {
  kOk,       ///< instruction retired normally
  kSyscall,  ///< SYSCALL executed; ip already advanced past it
  kTrap,     ///< TRAP (0xCC) reached; ip still points at the trap byte
  kFault,    ///< SIGSEGV/SIGILL/SIGFPE condition; ip unchanged
};

struct StepResult {
  StepKind kind = StepKind::kOk;
  FaultType fault = FaultType::kNone;
  uint64_t fault_addr = 0;
  bool block_end = false;  ///< the retired instruction was a BB terminator
};

class DecodeCache;
class SuperblockCache;

/// Executes exactly one instruction. Never throws on guest misbehaviour —
/// all guest errors surface as kFault/kTrap results. With a cache, the
/// fetch+decode is served from (and fills) the cache; without one it reads
/// raw page bytes every time.
StepResult step(AddressSpace& mem, Cpu& cpu);
StepResult step(AddressSpace& mem, Cpu& cpu, DecodeCache* cache);

/// Executes instructions until a basic-block terminator retires, a syscall/
/// trap/fault surfaces, or `max_instr` instructions have been attempted.
/// `retired` returns the number of attempts (faulting/trapping instructions
/// count once, matching the per-step accounting of the OS scheduler).
/// Straight-line spans inside one cached page run off the decoded array
/// with a single generation check per instruction — no fetch, no decode.
StepResult run_block(AddressSpace& mem, Cpu& cpu, DecodeCache* cache,
                     uint64_t max_instr, uint64_t& retired);

/// Superblock-aware variant: hot entries execute as fused threaded-code
/// traces (vm/superblock.hpp) and may retire *many* basic blocks before
/// returning — internal direct branches re-enter the trace without
/// surfacing. The call still returns on the first terminator that leaves
/// every trace, on syscalls/traps/faults, and when the budget is spent;
/// `retired` keeps the exact per-attempt accounting of the 5-arg form. A
/// mid-trace deoptimization (page generation bump) transparently resumes
/// on the interpreter path within the same call. `sbc == nullptr` behaves
/// exactly like the 5-arg overload.
StepResult run_block(AddressSpace& mem, Cpu& cpu, DecodeCache* cache,
                     SuperblockCache* sbc, uint64_t max_instr,
                     uint64_t& retired);

/// Per-page decoded-instruction cache. One per guest CPU/process; pass it
/// to step()/run_block(). Correctness contract:
///   * an entry is valid only while AddressSpace::page_generation(page)
///     equals the generation recorded at fill time (checked per fetch);
///   * the whole cache resets when it observes a different asid — the
///     process memory was rebuilt, e.g. by checkpoint restore;
///   * instructions that could straddle a page boundary (offset within
///     kMaxInstrLength of the page end) are never cached.
class DecodeCache {
 public:
  DecodeCache() = default;
  // Non-copyable: entries hold generation-slot pointers into a specific
  // AddressSpace and are meaningless for any other process image.
  DecodeCache(const DecodeCache&) = delete;
  DecodeCache& operator=(const DecodeCache&) = delete;

  /// Drops every cached page (stats are kept). Called by checkpoint restore;
  /// also self-triggers on an asid change.
  void clear();

  /// Pre-decodes [start, end) of `mem` into the cache — the warm-start path
  /// of image::spawn_from_image, so a worker forked from an image starts
  /// its code already decoded instead of paying cold misses. Fills follow
  /// the demand-miss contract (page-straddlers stay uncached, undecodable
  /// bytes resync one byte forward) and count as misses. Returns the number
  /// of instructions decoded.
  size_t warm(AddressSpace& mem, uint64_t start, uint64_t end);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t invalidations() const { return invalidations_; }
  size_t cached_pages() const { return pages_.size(); }

 private:
  friend StepResult step(AddressSpace&, Cpu&, DecodeCache*);
  friend StepResult run_block(AddressSpace&, Cpu&, DecodeCache*, uint64_t,
                              uint64_t&);
  friend StepResult run_block(AddressSpace&, Cpu&, DecodeCache*,
                              SuperblockCache*, uint64_t, uint64_t&);

  struct Slot {
    isa::Instr ins;
    uint8_t state = 0;  ///< kUnknown / kValid / kBad
  };
  static constexpr uint8_t kUnknown = 0;  ///< offset not decoded yet
  static constexpr uint8_t kValid = 1;    ///< ins holds the decode
  static constexpr uint8_t kBad = 2;      ///< undecodable: fetch is SIGILL

  struct PageEntry {
    const uint64_t* live_gen = nullptr;  ///< the page's generation counter
    uint64_t gen = 0;                    ///< generation the slots decode
    std::vector<Slot> slots;             ///< one per byte offset in the page
  };

  /// Resets the cache if `mem` is not the address space it was filled from.
  void sync(const AddressSpace& mem);

  /// Returns the (validated, possibly freshly wiped) entry for a page.
  PageEntry* entry_for(const AddressSpace& mem, uint64_t page_addr);

  /// Decodes the instruction at `ip` into `s`. False if the bytes are not
  /// readable as code (caller falls back to the uncached fetch for the
  /// precise fault address).
  bool fill_slot(const AddressSpace& mem, uint64_t ip, Slot& s);

  /// Cache-served fetch+decode of the instruction at `ip`.
  StepResult fetch(AddressSpace& mem, uint64_t ip, isa::Instr& out);

  std::unordered_map<uint64_t, PageEntry> pages_;
  uint64_t asid_ = 0;  ///< address space the entries were filled from
  uint64_t last_page_ = ~0ull;      // one-entry lookup memo for hot pages
  PageEntry* last_entry_ = nullptr;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

/// Decodes the basic block starting at `addr`: its byte size (distance to
/// the end of its terminator) and instruction count. Walks at most
/// `max_bytes`. Returns 0 size if the first instruction is undecodable.
/// `terminated` distinguishes a complete block (the walk retired a real
/// terminator) from a scan that stopped at `max_bytes`, an undecodable
/// byte, or unreadable memory — a partial prefix that consumers like the
/// superblock builder must refuse to treat as a block.
struct BlockInfo {
  uint64_t size = 0;
  uint32_t instr_count = 0;
  bool terminated = false;
};
BlockInfo block_at(const AddressSpace& mem, uint64_t addr,
                   uint64_t max_bytes = 4096);

}  // namespace dynacut::vm
