// The VX64 executor: single-steps a CPU over an address space.
//
// The executor is policy-free: syscalls, traps and faults are reported to
// the caller (the OS simulator), which implements kernel behaviour.
#pragma once

#include <cstdint>

#include "vm/addrspace.hpp"
#include "vm/cpu.hpp"

namespace dynacut::vm {

enum class StepKind : uint8_t {
  kOk,       ///< instruction retired normally
  kSyscall,  ///< SYSCALL executed; ip already advanced past it
  kTrap,     ///< TRAP (0xCC) reached; ip still points at the trap byte
  kFault,    ///< SIGSEGV/SIGILL/SIGFPE condition; ip unchanged
};

struct StepResult {
  StepKind kind = StepKind::kOk;
  FaultType fault = FaultType::kNone;
  uint64_t fault_addr = 0;
  bool block_end = false;  ///< the retired instruction was a BB terminator
};

/// Executes exactly one instruction. Never throws on guest misbehaviour —
/// all guest errors surface as kFault/kTrap results.
StepResult step(AddressSpace& mem, Cpu& cpu);

/// Decodes the basic block starting at `addr`: its byte size (distance to
/// the end of its terminator) and instruction count. Walks at most
/// `max_bytes`. Returns 0 size if the first instruction is undecodable.
struct BlockInfo {
  uint64_t size = 0;
  uint32_t instr_count = 0;
};
BlockInfo block_at(const AddressSpace& mem, uint64_t addr,
                   uint64_t max_bytes = 4096);

}  // namespace dynacut::vm
