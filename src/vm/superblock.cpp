#include "vm/superblock.hpp"

#include <algorithm>
#include <set>

namespace dynacut::vm {

namespace {

using isa::Instr;
using isa::Op;

/// Decodes the instruction at `ip` for the trace builder. Requires every
/// byte to be readable as code; the builder never fuses past a byte the
/// executor could not fetch.
bool decode_at(const AddressSpace& mem, uint64_t ip, Instr& out) {
  uint8_t buf[isa::kMaxInstrLength];
  if (mem.read(ip, buf, sizeof buf, kProtExec).ok) {
    auto ins = isa::try_decode(buf);
    if (!ins) return false;
    out = *ins;
    return true;
  }
  uint8_t opcode;
  if (!mem.read(ip, &opcode, 1, kProtExec).ok) return false;
  uint8_t len = isa::instr_length(opcode);
  if (len == 0) return false;
  uint8_t full[16];
  full[0] = opcode;
  if (len > 1 && !mem.read(ip + 1, full + 1, len - 1, kProtExec).ok) {
    return false;
  }
  auto ins = isa::try_decode({full, len});
  if (!ins) return false;
  out = *ins;
  return true;
}

/// Dense dispatch-table index for an opcode. The jump table in dispatch()
/// lists its handlers in exactly this order — keep the two in sync.
constexpr uint8_t dense_index(Op op) {
  if (op == Op::kNop) return 0x24;
  if (op == Op::kTrap) return 0x25;
  return static_cast<uint8_t>(static_cast<uint8_t>(op) - 1);  // 0x01..0x24
}

}  // namespace

// ---------------------------------------------------------------------------
// Cache maintenance
// ---------------------------------------------------------------------------

void SuperblockCache::clear() {
  entry_points_.clear();
  blocks_.clear();
  heat_.clear();
}

void SuperblockCache::sync(const AddressSpace& mem) {
  if (asid_ != mem.asid()) {
    clear();
    asid_ = mem.asid();
  }
}

void SuperblockCache::push_event(SbEvent::Kind kind, uint64_t entry,
                                 uint64_t detail) {
  // Bounded: callers that never drain (raw vm benches) must not leak.
  if (events_.size() < 4096) events_.push_back({kind, entry, detail});
}

void SuperblockCache::retire(Superblock* sb, bool deopt, uint64_t resume_ip) {
  for (const auto& o : sb->ops_) {
    auto it = entry_points_.find(o.ip);
    if (it != entry_points_.end() && it->second.sb == sb) {
      entry_points_.erase(it);
    }
  }
  ++retires_;
  push_event(SbEvent::kRetire, sb->entry_, sb->instr_count());
  if (deopt) {
    ++deopts_;
    push_event(SbEvent::kDeopt, sb->entry_, resume_ip);
  }
  blocks_.erase(sb);
}

// ---------------------------------------------------------------------------
// Trace selection + threading
// ---------------------------------------------------------------------------

SuperblockCache::Ref SuperblockCache::lookup(const AddressSpace& mem,
                                             uint64_t ip) {
  sync(mem);
  auto it = entry_points_.find(ip);
  if (it != entry_points_.end()) {
    Ref ref = it->second;
    if (!ref.sb->pages_valid()) {
      // A spanned page changed (int3 patch, wipe, unmap, heal) since the
      // trace last ran: retire before anything executes from it. The
      // interpreter path re-fetches and sees the new bytes immediately.
      retire(ref.sb, /*deopt=*/false, 0);
      return {};
    }
    return ref;
  }
  if (blocks_.size() >= kMaxSuperblocks) return {};
  if (heat_.size() > (1u << 16)) heat_.clear();  // runaway-workload bound
  if (++heat_[ip] < kHotThreshold) return {};
  heat_.erase(ip);
  Superblock* sb = build(mem, ip);
  if (sb == nullptr) return {};
  return {sb, 0};
}

Superblock* SuperblockCache::build(const AddressSpace& mem, uint64_t entry) {
  auto owned = std::make_unique<Superblock>();
  Superblock* sb = owned.get();
  sb->entry_ = entry;
  std::unordered_map<uint64_t, int32_t> index_of;
  std::set<uint64_t> pages;

  // Walk whole basic blocks across fallthrough and direct-branch edges.
  // Only complete, terminated blocks are appended: a scan that ran into an
  // undecodable byte or the byte limit without reaching a terminator
  // (BlockInfo::terminated == false) is never fused — a trace must know
  // where every one of its paths exits.
  uint64_t ip = entry;
  while (true) {
    BlockInfo bi = block_at(mem, ip, kMaxBlockBytes);
    if (!bi.terminated) break;
    if (sb->ops_.size() + bi.instr_count > kMaxOps) break;

    std::set<uint64_t> block_pages;
    for (uint64_t page = page_floor(ip); page < ip + bi.size;
         page += kPageSize) {
      if (pages.count(page) == 0) block_pages.insert(page);
    }
    if (pages.size() + block_pages.size() > kMaxPages) break;

    uint64_t cur = ip;
    for (uint32_t i = 0; i < bi.instr_count; ++i) {
      Instr ins;
      if (!decode_at(mem, cur, ins)) return nullptr;  // disagrees with the
      // block scan — cannot happen single-threaded, but a half-threaded
      // block must never be registered.
      Superblock::ThreadedOp op;
      op.op = ins.op;
      op.r1 = ins.r1;
      op.r2 = ins.r2;
      op.length = ins.length;
      op.hidx = dense_index(ins.op);
      op.imm = ins.imm;
      op.ip = cur;
      op.target = ins.target(cur);  // resolved once, never recomputed
      index_of.emplace(cur, static_cast<int32_t>(sb->ops_.size()));
      sb->ops_.push_back(op);
      cur += ins.length;
    }
    pages.insert(block_pages.begin(), block_pages.end());

    const Superblock::ThreadedOp& last = sb->ops_.back();
    uint64_t next_ip;
    if (last.op == Op::kJmp || last.op == Op::kCall) {
      next_ip = last.target;  // fuse through the direct transfer
    } else if (isa::is_cond_branch(last.op)) {
      next_ip = last.ip + last.length;  // fuse along the fallthrough
    } else {
      break;  // ret/callr/jmpr/syscall/trap: trace ends here
    }
    if (index_of.count(next_ip) != 0) break;  // loop closed inside the trace
    ip = next_ip;
  }
  if (sb->ops_.empty()) return nullptr;

  // Thread the ops: successors become trace indices where the target is
  // inside the trace, kExit (with the precomputed address) where it leaves.
  auto index_or_exit = [&](uint64_t at) {
    auto f = index_of.find(at);
    return f == index_of.end() ? Superblock::kExit : f->second;
  };
  for (size_t i = 0; i < sb->ops_.size(); ++i) {
    Superblock::ThreadedOp& o = sb->ops_[i];
    if (!isa::is_terminator(o.op)) {
      o.next = static_cast<int32_t>(i + 1);  // same block, always present
    } else if (o.op == Op::kJmp || o.op == Op::kCall) {
      o.taken = index_or_exit(o.target);
    } else if (isa::is_cond_branch(o.op)) {
      o.taken = index_or_exit(o.target);
      o.next = index_or_exit(o.ip + o.length);
    }
    // ret/callr/jmpr/syscall/trap: both successors stay kExit.
  }

  for (uint64_t page : pages) {
    sb->pages_.emplace_back(mem.page_generation_slot(page),
                            mem.page_generation(page));
  }

  for (const auto& [op_ip, idx] : index_of) {
    // First trace wins: an ip already claimed by a live superblock keeps
    // its mapping (the overlap executes identically either way).
    entry_points_.try_emplace(op_ip, Ref{sb, idx});
  }
  blocks_.emplace(sb, std::move(owned));
  ++builds_;
  push_event(SbEvent::kBuild, entry, sb->instr_count());
  return sb;
}

// ---------------------------------------------------------------------------
// Threaded-code dispatch
// ---------------------------------------------------------------------------
//
// With GNU extensions (GCC/Clang) the dispatch is direct-threaded: every
// handler ends in its own computed goto through the dense jump table, so the
// branch predictor sees one indirect-jump site per handler instead of a
// single shared switch site, and straight-line successors are a register
// increment (build invariant: next == idx + 1 for every non-terminator)
// rather than a loaded index — no pointer chase on the critical path.
// Elsewhere the same handler bodies compile as a plain switch loop.

#if defined(__GNUC__) || defined(__clang__)
#define DYNACUT_DIRECT_THREADING 1
#endif

#if DYNACUT_DIRECT_THREADING
#define VX_OP(name) h_##name:
// The budget is re-checked before entering the next handler; replicating
// the check keeps it a predictable not-taken branch at every site.
#define VX_DISPATCH()                     \
  do {                                    \
    if (n >= max_instr) goto budget_exit; \
    goto* jt[code[idx].hidx];             \
  } while (0)
#else
#define VX_OP(name) case Op::name:
#define VX_DISPATCH() goto loop_top
#endif
// Straight-line epilogue: charge the op, advance to the next trace slot.
#define VX_NEXT()    \
  do {               \
    ++n;             \
    ++idx;           \
    VX_DISPATCH();   \
  } while (0)

StepResult SuperblockCache::dispatch(AddressSpace& mem, Cpu& cpu,
                                     const Ref& ref, uint64_t max_instr,
                                     uint64_t& attempted, SbExit& why) {
  Superblock* sb = ref.sb;
  const Superblock::ThreadedOp* const code = sb->ops_.data();
  uint64_t* const r = cpu.regs.data();
  int32_t idx = ref.idx;
  uint64_t n = 0;
  StepResult res{};
  ++entries_;

  // Exit helpers. Every path out of the handlers leaves cpu.ip at the exact
  // address the interpreter would: retired transfers land on their target,
  // faults/traps stay on the instruction, budget stops point at the first
  // instruction not attempted.
  auto fault = [&](const Superblock::ThreadedOp& o, FaultType t,
                   uint64_t addr) {
    cpu.ip = o.ip;
    ++n;
    res = {StepKind::kFault, t, addr, false};
    why = SbExit::kEvent;
  };
  // Re-validation after a guest store: a write that landed on a spanned
  // executable page (self-modifying code, verifier heal) makes the rest of
  // the trace stale. The store itself retired; execution resumes at the
  // next architectural instruction on the interpreter path.
  auto deopt_check = [&](uint64_t resume_ip) {
    if (sb->pages_valid()) return false;
    cpu.ip = resume_ip;
    retire(sb, /*deopt=*/true, resume_ip);
    why = SbExit::kDeopt;
    res = StepResult{};
    return true;
  };

#if DYNACUT_DIRECT_THREADING
  // Handler order mirrors dense_index(): 0x00..0x23 are kMovRI..kLea in
  // opcode order, then kNop, kTrap. All nine relative branches share one
  // handler (it reads o.op for the condition).
  static const void* const jt[] = {
      &&h_kMovRI,   // 0x00
      &&h_kMovRR,   // 0x01
      &&h_kLoad,    // 0x02
      &&h_kStore,   // 0x03
      &&h_kLoadB,   // 0x04
      &&h_kStoreB,  // 0x05
      &&h_kAddRR,   // 0x06
      &&h_kAddRI,   // 0x07
      &&h_kSubRR,   // 0x08
      &&h_kSubRI,   // 0x09
      &&h_kMulRR,   // 0x0A
      &&h_kDivRR,   // 0x0B
      &&h_kAndRR,   // 0x0C
      &&h_kOrRR,    // 0x0D
      &&h_kXorRR,   // 0x0E
      &&h_kShlRI,   // 0x0F
      &&h_kShrRI,   // 0x10
      &&h_kCmpRR,   // 0x11
      &&h_kCmpRI,   // 0x12
      &&h_branch,   // 0x13 kJmp
      &&h_branch,   // 0x14 kJe
      &&h_branch,   // 0x15 kJne
      &&h_branch,   // 0x16 kJlt
      &&h_branch,   // 0x17 kJle
      &&h_branch,   // 0x18 kJgt
      &&h_branch,   // 0x19 kJge
      &&h_branch,   // 0x1A kJb
      &&h_branch,   // 0x1B kJae
      &&h_kCall,    // 0x1C
      &&h_kRet,     // 0x1D
      &&h_kCallR,   // 0x1E
      &&h_kJmpR,    // 0x1F
      &&h_kPush,    // 0x20
      &&h_kPop,     // 0x21
      &&h_kSyscall, // 0x22
      &&h_kLea,     // 0x23
      &&h_kNop,     // 0x24
      &&h_kTrap,    // 0x25
  };
  VX_DISPATCH();
#else
loop_top:
  if (n >= max_instr) goto budget_exit;
  switch (code[idx].op) {
#endif

  VX_OP(kMovRI) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] = static_cast<uint64_t>(o.imm);
    VX_NEXT();
  }
  VX_OP(kMovRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] = r[o.r2];
    VX_NEXT();
  }
  VX_OP(kLoad) {
    const Superblock::ThreadedOp& o = code[idx];
    uint64_t v;
    Access a = mem.read(r[o.r2] + o.imm, &v, 8, kProtRead);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    r[o.r1] = v;
    VX_NEXT();
  }
  VX_OP(kStore) {
    const Superblock::ThreadedOp& o = code[idx];
    Access a = mem.write(r[o.r1] + o.imm, &r[o.r2], 8, kProtWrite);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    ++n;
    if (deopt_check(o.ip + o.length)) goto exit;
    ++idx;
    VX_DISPATCH();
  }
  VX_OP(kLoadB) {
    const Superblock::ThreadedOp& o = code[idx];
    uint8_t v;
    Access a = mem.read(r[o.r2] + o.imm, &v, 1, kProtRead);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    r[o.r1] = v;
    VX_NEXT();
  }
  VX_OP(kStoreB) {
    const Superblock::ThreadedOp& o = code[idx];
    uint8_t v = static_cast<uint8_t>(r[o.r2]);
    Access a = mem.write(r[o.r1] + o.imm, &v, 1, kProtWrite);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    ++n;
    if (deopt_check(o.ip + o.length)) goto exit;
    ++idx;
    VX_DISPATCH();
  }
  VX_OP(kAddRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] += r[o.r2];
    VX_NEXT();
  }
  VX_OP(kAddRI) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] += static_cast<uint64_t>(o.imm);
    VX_NEXT();
  }
  VX_OP(kSubRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] -= r[o.r2];
    VX_NEXT();
  }
  VX_OP(kSubRI) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] -= static_cast<uint64_t>(o.imm);
    VX_NEXT();
  }
  VX_OP(kMulRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] *= r[o.r2];
    VX_NEXT();
  }
  VX_OP(kDivRR) {
    const Superblock::ThreadedOp& o = code[idx];
    if (r[o.r2] == 0) {
      fault(o, FaultType::kFpe, o.ip);
      goto exit;
    }
    r[o.r1] /= r[o.r2];
    VX_NEXT();
  }
  VX_OP(kAndRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] &= r[o.r2];
    VX_NEXT();
  }
  VX_OP(kOrRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] |= r[o.r2];
    VX_NEXT();
  }
  VX_OP(kXorRR) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] ^= r[o.r2];
    VX_NEXT();
  }
  VX_OP(kShlRI) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] <<= (o.imm & 63);
    VX_NEXT();
  }
  VX_OP(kShrRI) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] >>= (o.imm & 63);
    VX_NEXT();
  }
  VX_OP(kCmpRR) {
    const Superblock::ThreadedOp& o = code[idx];
    set_flags(cpu, r[o.r1], r[o.r2]);
    VX_NEXT();
  }
  VX_OP(kCmpRI) {
    const Superblock::ThreadedOp& o = code[idx];
    set_flags(cpu, r[o.r1], static_cast<uint64_t>(o.imm));
    VX_NEXT();
  }

#if DYNACUT_DIRECT_THREADING
h_branch:
#else
  case Op::kJmp:
  case Op::kJe:
  case Op::kJne:
  case Op::kJlt:
  case Op::kJle:
  case Op::kJgt:
  case Op::kJge:
  case Op::kJb:
  case Op::kJae:
#endif
  {
    const Superblock::ThreadedOp& o = code[idx];
    const bool taken = branch_taken(cpu, o.op);
    ++n;
    const int32_t nx = taken ? o.taken : o.next;
    if (nx == Superblock::kExit) {
      cpu.ip = taken ? o.target : o.ip + o.length;
      res.block_end = true;
      why = SbExit::kBranch;
      goto exit;
    }
    idx = nx;  // branch resolved to a trace index: the loop stays hot
    VX_DISPATCH();
  }

  VX_OP(kCall) {
    const Superblock::ThreadedOp& o = code[idx];
    uint64_t ra = o.ip + o.length;
    cpu.sp() -= 8;
    // On a push fault sp stays decremented — the interpreter's execute()
    // behaves identically, and deopt consistency depends on matching it.
    Access a = mem.write(cpu.sp(), &ra, 8, kProtWrite);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    ++n;
    if (o.taken == Superblock::kExit) {
      cpu.ip = o.target;
      res.block_end = true;
      why = SbExit::kBranch;
      goto exit;
    }
    if (deopt_check(o.target)) goto exit;  // the ra push may hit a W+X page
    idx = o.taken;
    VX_DISPATCH();
  }
  VX_OP(kCallR) {
    const Superblock::ThreadedOp& o = code[idx];
    uint64_t ra = o.ip + o.length;
    cpu.sp() -= 8;
    Access a = mem.write(cpu.sp(), &ra, 8, kProtWrite);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    ++n;
    cpu.ip = r[o.r1];
    res.block_end = true;
    why = SbExit::kBranch;
    goto exit;
  }
  VX_OP(kRet) {
    const Superblock::ThreadedOp& o = code[idx];
    uint64_t ra;
    Access a = mem.read(cpu.sp(), &ra, 8, kProtRead);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    cpu.sp() += 8;
    cpu.ip = ra;
    ++n;
    res.block_end = true;
    why = SbExit::kBranch;
    goto exit;
  }
  VX_OP(kJmpR) {
    const Superblock::ThreadedOp& o = code[idx];
    cpu.ip = r[o.r1];
    ++n;
    res.block_end = true;
    why = SbExit::kBranch;
    goto exit;
  }
  VX_OP(kPush) {
    const Superblock::ThreadedOp& o = code[idx];
    cpu.sp() -= 8;
    Access a = mem.write(cpu.sp(), &r[o.r1], 8, kProtWrite);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    ++n;
    if (deopt_check(o.ip + o.length)) goto exit;
    ++idx;
    VX_DISPATCH();
  }
  VX_OP(kPop) {
    const Superblock::ThreadedOp& o = code[idx];
    uint64_t v;
    Access a = mem.read(cpu.sp(), &v, 8, kProtRead);
    if (!a.ok) {
      fault(o, FaultType::kSegv, a.fault_addr);
      goto exit;
    }
    cpu.sp() += 8;
    r[o.r1] = v;
    VX_NEXT();
  }
  VX_OP(kSyscall) {
    const Superblock::ThreadedOp& o = code[idx];
    cpu.ip = o.ip + o.length;
    ++n;
    res.kind = StepKind::kSyscall;
    res.block_end = true;
    why = SbExit::kEvent;
    goto exit;
  }
  VX_OP(kTrap) {
    const Superblock::ThreadedOp& o = code[idx];
    // ip intentionally NOT advanced (same contract as the interpreter):
    // the signal frame records the trap address for patch/re-execute.
    cpu.ip = o.ip;
    ++n;
    res.kind = StepKind::kTrap;
    res.fault_addr = o.ip;
    res.block_end = true;
    why = SbExit::kEvent;
    goto exit;
  }
  VX_OP(kLea) {
    const Superblock::ThreadedOp& o = code[idx];
    r[o.r1] = o.target;
    VX_NEXT();
  }
  VX_OP(kNop) {
    VX_NEXT();
  }

#if !DYNACUT_DIRECT_THREADING
  }
  goto loop_top;  // unreachable: every handler ends in a jump
#endif

budget_exit:
  cpu.ip = code[idx].ip;
  why = SbExit::kBudget;
exit:
  sb_instrs_ += n;
  attempted += n;
  return res;
}

#undef VX_OP
#undef VX_DISPATCH
#undef VX_NEXT

}  // namespace dynacut::vm
