// Superblock translation cache: JIT-style threaded-code execution for hot
// VX64 paths (DESIGN.md §12).
//
// The decode cache (exec.hpp) removed fetch+decode from the hot loop but
// still dispatches one instruction at a time, paying a page lookup, a slot
// consult and a generation dereference per instruction. This layer goes one
// step further, the way DBI engines (DynamoRIO, Pin) do: once a block entry
// gets hot, the straight-line chain reachable from it across fallthrough
// and *direct* branches is fused into a superblock — a trace of pre-resolved
// "threaded code" ops (opcode + register indices + immediate + precomputed
// branch target) executed by a tight dispatch loop. Branches whose target
// lies inside the trace re-enter it by index, so a serving loop runs
// entirely inside one superblock with no per-iteration cache traffic.
//
// Correctness contract (same invariant currency as the decode cache):
//   * a superblock records the `(generation-slot, generation)` pair of every
//     page it spans; it is validated against all of them at dispatch entry
//     and re-validated after every instruction that writes guest memory.
//     Any mismatch retires the superblock and *deoptimizes*: dispatch stops
//     at a consistent architectural state (every instruction either fully
//     retired or not started) and the caller resumes on the interpreter
//     path, which re-fetches precisely. int3 patches, verifier byte-heals,
//     wipes and unmaps therefore take effect on the very next fetched
//     instruction, exactly as they do under the decode cache.
//   * traps, faults and syscalls inside a trace surface as ordinary
//     StepResults with the interpreter's ip semantics (trap/fault: ip on
//     the instruction; syscall: ip after it).
//   * the whole cache drops on an asid change (address space rebuilt).
//   * indirect transfers (ret / callr / jmpr) and syscalls end traces;
//     unterminated block scans (BlockInfo::terminated == false) are never
//     fused.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"
#include "vm/addrspace.hpp"
#include "vm/cpu.hpp"
#include "vm/exec.hpp"

namespace dynacut::vm {

/// Why a superblock dispatch returned to run_block.
enum class SbExit : uint8_t {
  kEvent,   ///< trap/syscall/fault surfaced; see the StepResult
  kBranch,  ///< a terminator retired with a target outside the trace
  kBudget,  ///< instruction budget exhausted; cpu.ip at the next instruction
  kDeopt,   ///< a spanned page's generation bumped mid-trace; superblock
            ///< retired, caller resumes on the interpreter path
};

/// One fused trace in threaded-code form. Built and owned by
/// SuperblockCache; immutable after construction.
class Superblock {
 public:
  /// Index value meaning "successor is outside the trace".
  static constexpr int32_t kExit = -1;

  /// A pre-resolved instruction: everything the dispatch loop needs, with
  /// no decode, no operand resolution and no target arithmetic at run time.
  struct ThreadedOp {
    isa::Op op = isa::Op::kNop;
    uint8_t r1 = 0;
    uint8_t r2 = 0;
    uint8_t length = 1;  ///< encoded size (ip advance / syscall resume)
    uint8_t hidx = 0;    ///< dense dispatch-table index (superblock.cpp)
    int32_t taken = kExit;  ///< trace index of the taken successor
    int32_t next = kExit;   ///< trace index of the fallthrough successor
    int64_t imm = 0;        ///< immediate / displacement / shift amount
    uint64_t ip = 0;        ///< architectural address of this instruction
    uint64_t target = 0;    ///< precomputed static transfer / lea target
  };

  uint64_t entry() const { return entry_; }
  uint32_t instr_count() const { return static_cast<uint32_t>(ops_.size()); }
  uint32_t page_count() const { return static_cast<uint32_t>(pages_.size()); }

 private:
  friend class SuperblockCache;

  /// True while every spanned page still has the generation the trace was
  /// decoded against.
  bool pages_valid() const {
    for (const auto& [slot, gen] : pages_) {
      if (*slot != gen) return false;
    }
    return true;
  }

  uint64_t entry_ = 0;
  std::vector<ThreadedOp> ops_;
  /// (live generation-slot pointer, generation at build time) per page the
  /// trace's instruction bytes span. Slot pointers are stable for the
  /// address space's lifetime (AddressSpace::page_generation_slot).
  std::vector<std::pair<const uint64_t*, uint64_t>> pages_;
};

/// Per-process superblock cache. One per guest CPU, owned next to the
/// DecodeCache (os::Process); pass it to run_block. Non-copyable for the
/// same reason the decode cache is: traces hold generation-slot pointers
/// into one specific AddressSpace.
class SuperblockCache {
 public:
  /// Dispatch entries into a trace before it is built. Low enough that a
  /// serving loop compiles within its first scheduler quantum, high enough
  /// that straight-through init code is never traced.
  static constexpr uint32_t kHotThreshold = 8;
  /// Trace limits: whole blocks are appended until one of these trips.
  static constexpr size_t kMaxOps = 512;
  static constexpr size_t kMaxPages = 8;
  static constexpr uint64_t kMaxBlockBytes = 4096;
  static constexpr size_t kMaxSuperblocks = 4096;

  SuperblockCache() = default;
  SuperblockCache(const SuperblockCache&) = delete;
  SuperblockCache& operator=(const SuperblockCache&) = delete;

  /// Drops every trace and heat counter (stats are kept). Called by
  /// checkpoint restore; also self-triggers on an asid change.
  void clear();

  // --- stats -------------------------------------------------------------
  uint64_t builds() const { return builds_; }
  uint64_t retires() const { return retires_; }
  uint64_t deopts() const { return deopts_; }
  /// Number of dispatch entries (trace activations).
  uint64_t entries() const { return entries_; }
  /// Instructions retired inside superblock dispatch.
  uint64_t sb_instrs() const { return sb_instrs_; }
  size_t superblocks() const { return blocks_.size(); }

  // --- lifecycle events for the observability layer ----------------------
  // The vm layer must not depend on obs, so build/retire/deopt are queued
  // here as plain records; os::run_quantum drains them onto the event bus
  // (sb.build / sb.retire / sb.deopt) after every run_block call.
  struct SbEvent {
    enum Kind : uint8_t { kBuild, kRetire, kDeopt } kind;
    uint64_t entry = 0;   ///< trace entry address
    uint64_t detail = 0;  ///< build/retire: instr count; deopt: resume ip
  };
  bool events_pending() const { return !events_.empty(); }
  std::vector<SbEvent> take_events() { return std::move(events_); }

  // --- execution interface (used by run_block) ---------------------------
  /// A dispatchable position inside a trace (sb == nullptr: no trace).
  struct Ref {
    Superblock* sb = nullptr;
    int32_t idx = 0;
  };

  /// Returns a validated trace position covering `ip`, or counts heat and
  /// (at kHotThreshold) builds one. A trace whose pages went stale is
  /// retired here — before anything executes from it.
  Ref lookup(const AddressSpace& mem, uint64_t ip);

  /// Executes the trace from `ref` until an exit (see SbExit). Appends the
  /// number of attempted instructions to `attempted`; cpu is left at a
  /// consistent architectural state for every exit kind.
  StepResult dispatch(AddressSpace& mem, Cpu& cpu, const Ref& ref,
                      uint64_t max_instr, uint64_t& attempted, SbExit& why);

 private:
  /// Resets the cache if `mem` is not the address space it was built from.
  void sync(const AddressSpace& mem);

  /// Traces and threads a superblock starting at `entry`. Returns nullptr
  /// if nothing fusable starts there (unterminated scan, undecodable entry,
  /// cache full).
  Superblock* build(const AddressSpace& mem, uint64_t entry);

  /// Unregisters and frees one trace. `deopt` marks a mid-dispatch exit
  /// (counted separately; entry-check retirements are plain retires).
  void retire(Superblock* sb, bool deopt, uint64_t resume_ip);

  void push_event(SbEvent::Kind kind, uint64_t entry, uint64_t detail);

  std::unordered_map<uint64_t, Ref> entry_points_;  ///< every traced ip
  std::unordered_map<Superblock*, std::unique_ptr<Superblock>> blocks_;
  std::unordered_map<uint64_t, uint32_t> heat_;
  std::vector<SbEvent> events_;
  uint64_t asid_ = 0;

  uint64_t builds_ = 0;
  uint64_t retires_ = 0;
  uint64_t deopts_ = 0;
  uint64_t entries_ = 0;
  uint64_t sb_instrs_ = 0;
};

}  // namespace dynacut::vm
