// Tests for coverage-graph algebra and the paper's two differential
// analyses: tracediff feature discovery and init-phase identification.
#include <gtest/gtest.h>

#include "analysis/coverage.hpp"
#include "apps/libc.hpp"
#include "common/rng.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::analysis {
namespace {

CovBlock blk(const std::string& m, uint64_t off, uint32_t size = 4) {
  return CovBlock{m, off, size};
}

CoverageGraph graph(std::initializer_list<CovBlock> blocks) {
  CoverageGraph g;
  for (const auto& b : blocks) g.insert(b);
  return g;
}

TEST(CoverageGraph, InsertAndContains) {
  CoverageGraph g = graph({blk("app", 0x10), blk("app", 0x20)});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.contains("app", 0x10));
  EXPECT_FALSE(g.contains("app", 0x30));
  EXPECT_FALSE(g.contains("libc", 0x10));
}

TEST(CoverageGraph, InsertIsIdempotent) {
  CoverageGraph g = graph({blk("app", 0x10), blk("app", 0x10)});
  EXPECT_EQ(g.size(), 1u);
}

TEST(CoverageGraph, MergeIsUnion) {
  CoverageGraph a = graph({blk("app", 1), blk("app", 2)});
  CoverageGraph b = graph({blk("app", 2), blk("app", 3)});
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(CoverageGraph, DiffKeepsOnlyUnique) {
  CoverageGraph a = graph({blk("app", 1), blk("app", 2), blk("app", 3)});
  CoverageGraph b = graph({blk("app", 2)});
  CoverageGraph d = a.diff(b);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.contains("app", 1));
  EXPECT_FALSE(d.contains("app", 2));
  EXPECT_TRUE(d.contains("app", 3));
}

TEST(CoverageGraph, DiffWithSelfIsEmpty) {
  CoverageGraph a = graph({blk("app", 1), blk("app", 2)});
  EXPECT_TRUE(a.diff(a).empty());
}

TEST(CoverageGraph, IntersectKeepsCommon) {
  CoverageGraph a = graph({blk("app", 1), blk("app", 2)});
  CoverageGraph b = graph({blk("app", 2), blk("app", 3)});
  CoverageGraph i = a.intersect(b);
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.contains("app", 2));
}

TEST(CoverageGraph, ModuleFilters) {
  CoverageGraph g = graph({blk("app", 1), blk("libc.so", 2), blk("app", 3)});
  EXPECT_EQ(g.only_module("app").size(), 2u);
  EXPECT_EQ(g.without_module("libc.so").size(), 2u);
  EXPECT_EQ(g.only_module("libc.so").size(), 1u);
  EXPECT_TRUE(g.only_module("nothing").empty());
}

TEST(CoverageGraph, TotalBytes) {
  CoverageGraph g = graph({blk("app", 1, 10), blk("app", 20, 5)});
  EXPECT_EQ(g.total_bytes(), 15u);
}

TEST(CoverageGraph, BlocksSortedByModuleThenOffset) {
  CoverageGraph g =
      graph({blk("z", 1), blk("a", 9), blk("a", 2), blk("z", 0)});
  auto v = g.blocks();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0].module, "a");
  EXPECT_EQ(v[0].offset, 2u);
  EXPECT_EQ(v[1].offset, 9u);
  EXPECT_EQ(v[2].module, "z");
  EXPECT_EQ(v[2].offset, 0u);
}

// Set-algebra properties over seeded random graphs.
class CoverageAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CoverageAlgebra, DiffDisjointFromOtherAndSubsetOfSelf) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  CoverageGraph a, b;
  for (int i = 0; i < 60; ++i) {
    a.insert(blk("m", rng.below(40) * 8));
    b.insert(blk("m", rng.below(40) * 8));
  }
  CoverageGraph d = a.diff(b);
  for (const auto& block : d.blocks()) {
    EXPECT_TRUE(a.contains(block.module, block.offset));
    EXPECT_FALSE(b.contains(block.module, block.offset));
  }
  // a = (a \ b) ∪ (a ∩ b)
  CoverageGraph recomposed = d;
  recomposed.merge(a.intersect(b));
  EXPECT_EQ(recomposed.size(), a.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageAlgebra, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// End-to-end tracediff on the toy server (paper Fig. 4 workflow)
// ---------------------------------------------------------------------------

struct TracedRun {
  trace::TraceLog log;
  std::shared_ptr<const melf::Binary> bin;
};

/// Boots toysrv, sends `requests`, returns the full-run coverage.
TracedRun traced_run(const std::string& requests) {
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  conn.send(requests);
  vos.run();
  return {tracer.dump(pid), bin};
}

TEST(FeatureDiff, FindsFeatureUniqueBlocks) {
  TracedRun with_b = traced_run("A\nB\nQ\n");   // undesired run includes B
  TracedRun without_b = traced_run("A\nA\nQ\n");  // wanted run: A only

  CoverageGraph unique_b =
      feature_diff({with_b.log}, {without_b.log}, "toysrv");
  ASSERT_FALSE(unique_b.empty());

  // Every unique block must lie in handle_b or dispatch's arm_b block.
  const melf::Symbol* handle_b = with_b.bin->find_symbol("handle_b");
  const melf::Symbol* dispatch = with_b.bin->find_symbol("dispatch");
  for (const auto& b : unique_b.blocks()) {
    bool in_handle_b = b.offset >= handle_b->value &&
                       b.offset < handle_b->value + handle_b->size;
    bool in_dispatch = b.offset >= dispatch->value &&
                       b.offset < dispatch->value + dispatch->size;
    EXPECT_TRUE(in_handle_b || in_dispatch)
        << "stray block at offset " << b.offset;
  }
  // And handle_b's entry block must be among them.
  EXPECT_TRUE(unique_b.contains("toysrv", handle_b->value));
}

TEST(FeatureDiff, LibraryBlocksFilteredOut) {
  TracedRun with_b = traced_run("B\nQ\n");
  TracedRun without_b = traced_run("A\nQ\n");
  CoverageGraph unique_b =
      feature_diff({with_b.log}, {without_b.log}, "toysrv");
  for (const auto& b : unique_b.blocks()) {
    EXPECT_EQ(b.module, "toysrv");  // no libc.so blocks
  }
}

TEST(FeatureDiff, MergedWantedTracesShrinkTheDiff) {
  TracedRun undesired = traced_run("A\nB\nQ\n");
  TracedRun wanted1 = traced_run("Q\n");        // barely exercises dispatch
  TracedRun wanted2 = traced_run("A\nA\nQ\n");  // exercises A fully

  CoverageGraph diff_narrow =
      feature_diff({undesired.log}, {wanted1.log}, "toysrv");
  CoverageGraph diff_merged =
      feature_diff({undesired.log}, {wanted1.log, wanted2.log}, "toysrv");
  // More wanted traces => fewer (or equal) blocks misclassified as unique.
  EXPECT_LE(diff_merged.size(), diff_narrow.size());
  EXPECT_LT(diff_merged.size(), diff_narrow.size());
}

TEST(InitOnly, SplitsInitFromServing) {
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();  // init finished; parked in accept
  trace::TraceLog init_log = tracer.dump_and_reset(pid);
  auto conn = vos.connect(80);
  conn.send("A\nB\nQ\n");
  vos.run();
  trace::TraceLog serving_log = tracer.dump(pid);

  CoverageGraph init_blocks = init_only(init_log, serving_log, "toysrv");
  ASSERT_FALSE(init_blocks.empty());

  const melf::Symbol* init_fn = bin->find_symbol("init");
  EXPECT_TRUE(init_blocks.contains("toysrv", init_fn->value));
  // Nothing in dispatch/handlers may be classified init-only.
  for (const char* live : {"dispatch", "handle_a", "handle_b", "serve_loop"}) {
    const melf::Symbol* s = bin->find_symbol(live);
    for (const auto& b : init_blocks.blocks()) {
      EXPECT_FALSE(b.offset >= s->value && b.offset < s->value + s->size)
          << "init-only misclassified block inside " << live;
    }
  }
}

TEST(InitOnly, SharedBlocksAreKept) {
  // main's call-into-serve_loop block spans init and serving; any block
  // executed again post-nudge must not be marked init-only.
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  trace::TraceLog init_log = tracer.dump_and_reset(pid);
  auto conn = vos.connect(80);
  conn.send("A\nQ\n");
  vos.run();
  trace::TraceLog serving_log = tracer.dump(pid);

  CoverageGraph init_blocks = init_only(init_log, serving_log, "toysrv");
  CoverageGraph serving =
      CoverageGraph::from_log(serving_log).only_module("toysrv");
  EXPECT_TRUE(init_blocks.intersect(serving).empty());
}

}  // namespace
}  // namespace dynacut::analysis
