// Behavioural tests for the evaluation applications: minikv (+ planted
// CVEs + bench client), miniweb (master/worker WebDAV), minihttpd, and the
// specgen synthetic SPEC suite.
#include <gtest/gtest.h>

#include "apps/libc.hpp"
#include "apps/minihttpd.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "apps/specgen.hpp"
#include "apps/synth.hpp"
#include "os/os.hpp"

namespace dynacut::apps {
namespace {

// NOTE: servers with periodic timers (miniweb's master monitor loop) never
// fully idle, so Os::run() would not return; all harnesses therefore use
// bounded runs and poll for the condition they wait on.

/// Runs the OS until `done` holds or the instruction budget is spent.
template <typename Pred>
void run_until(os::Os& vos, Pred done, int rounds = 200,
               uint64_t instr_per_round = 100'000) {
  for (int i = 0; i < rounds && !done(); ++i) vos.run(instr_per_round);
}

struct Server {
  os::Os vos;
  int pid = 0;
  os::HostConn conn;

  Server(std::shared_ptr<const melf::Binary> bin, uint16_t port) {
    pid = vos.spawn(bin, {build_libc()});
    run_until(vos, [&] { return vos.has_listener(port); });
    conn = vos.connect(port);
  }

  std::string request(const std::string& line) {
    conn.send(line);
    run_until(vos, [&] { return conn.pending() > 0; });
    return conn.recv_all();
  }

  uint64_t peek_u64(const std::string& module, const std::string& symbol) {
    const os::Process* p = vos.process(pid);
    const os::LoadedModule* m = p->module_named(module);
    uint64_t addr = m->base + m->binary->find_symbol(symbol)->value;
    uint64_t v = 0;
    p->mem.peek(addr, &v, 8);
    return v;
  }
};

// ---------------------------------------------------------------------------
// minikv
// ---------------------------------------------------------------------------

TEST(Minikv, BootsAndAnnouncesReady) {
  os::Os vos;
  int pid = vos.spawn(build_minikv(), {build_libc()});
  vos.run();
  EXPECT_NE(vos.process(pid)->stdout_buf.find("ready"), std::string::npos);
  EXPECT_TRUE(vos.has_listener(kMinikvPort));
}

TEST(Minikv, PingPong) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("PING\n"), "+PONG\n");
}

TEST(Minikv, SetGetRoundtrip) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("SET name redis\n"), "+OK\n");
  EXPECT_EQ(s.request("GET name\n"), "$redis\n");
}

TEST(Minikv, GetMissingIsNil) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("GET nothing\n"), "$-1\n");
}

TEST(Minikv, SetOverwrites) {
  Server s(build_minikv(), kMinikvPort);
  s.request("SET k v1\n");
  s.request("SET k v2\n");
  EXPECT_EQ(s.request("GET k\n"), "$v2\n");
}

TEST(Minikv, DelRemoves) {
  Server s(build_minikv(), kMinikvPort);
  s.request("SET k v\n");
  EXPECT_EQ(s.request("DEL k\n"), ":1\n");
  EXPECT_EQ(s.request("GET k\n"), "$-1\n");
  EXPECT_EQ(s.request("DEL k\n"), ":0\n");
}

TEST(Minikv, UnknownCommandHitsErrorPath) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("FLUSHALL\n"), "-ERR unknown or disabled command\n");
  // Server stays up.
  EXPECT_EQ(s.request("PING\n"), "+PONG\n");
}

TEST(Minikv, WrongArgCounts) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("SET onlykey\n"), "-ERR wrong number of arguments\n");
  EXPECT_EQ(s.request("STRALGO LCS\n"),
            "-ERR wrong number of arguments\n");
}

TEST(Minikv, SetrangeInBounds) {
  Server s(build_minikv(), kMinikvPort);
  s.request("SET k aaaaaa\n");
  EXPECT_EQ(s.request("SETRANGE k 2 ZZ\n"), ":4\n");  // "aaZZ"
  EXPECT_EQ(s.request("GET k\n"), "$aaZZ\n");
}

TEST(Minikv, StralgoInBounds) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("STRALGO LCS abc defg\n"), ":7\n");
}

TEST(Minikv, ShutdownExitsServer) {
  Server s(build_minikv(), kMinikvPort);
  s.conn.send("SHUTDOWN\n");
  s.vos.run();
  EXPECT_TRUE(s.vos.all_exited());
  EXPECT_EQ(s.vos.process(s.pid)->exit_code, 0);
}

TEST(Minikv, MultipleConnectionsServedSequentially) {
  Server s(build_minikv(), kMinikvPort);
  s.request("SET shared 1\n");
  s.conn.close();
  s.vos.run();
  auto conn2 = s.vos.connect(kMinikvPort);
  conn2.send("GET shared\n");
  s.vos.run();
  EXPECT_EQ(conn2.recv_all(), "$1\n");
}

// --- the planted CVEs ------------------------------------------------------

TEST(MinikvCve, StralgoOverflowClobbersSecret) {
  // CVE-2021-32625 analogue: each input < 64 but the sum overflows the
  // 64-byte workspace into "secret".
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.peek_u64("minikv", "secret") & 0xff, 0x5aull);  // init pattern
  std::string a(40, 'X'), b(40, 'Y');
  s.request("STRALGO LCS " + a + " " + b + "\n");
  EXPECT_NE(s.peek_u64("minikv", "secret") & 0xff, 0x5aull);  // corrupted
}

TEST(MinikvCve, StralgoRespectsPerInputCheck) {
  // Inputs >= 64 are rejected by the (flawed) validation that does exist.
  Server s(build_minikv(), kMinikvPort);
  std::string a(80, 'X');
  EXPECT_EQ(s.request("STRALGO LCS " + a + " b\n"),
            "-ERR wrong number of arguments\n");
  EXPECT_EQ(s.peek_u64("minikv", "secret") & 0xff, 0x5aull);
}

TEST(MinikvCve, SetrangeOverflowCorruptsAdjacentSlot) {
  // CVE-2019-10192 analogue: unchecked offset writes into the next slot.
  Server s(build_minikv(), kMinikvPort);
  s.request("SET victim precious\n");   // slot 0
  s.request("SET attacker x\n");        // slot 1... order: victim first
  // Overwrite past slot 0's 64-byte value field: offset 64 lands on slot
  // 1's "used" flag / key area when attacking from slot 0.
  s.request("SETRANGE victim 72 HACKED\n");
  // The second slot's key got clobbered: "GET attacker" no longer finds it.
  EXPECT_EQ(s.request("GET attacker\n"), "$-1\n");
}

TEST(MinikvCve, ConfigOverflowSetsAdminMode) {
  // CVE-2016-8339 analogue: 16-byte config_buf, adjacent admin_mode.
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.peek_u64("minikv", "admin_mode"), 0u);
  EXPECT_EQ(s.request("CONFIG SET maxmem 12345678901234567890AAAA\n"),
            "+OK\n");
  EXPECT_NE(s.peek_u64("minikv", "admin_mode"), 0u);  // privilege escalation
}

TEST(MinikvCve, ConfigInBoundsIsHarmless) {
  Server s(build_minikv(), kMinikvPort);
  EXPECT_EQ(s.request("CONFIG SET maxmem 123\n"), "+OK\n");
  EXPECT_EQ(s.peek_u64("minikv", "admin_mode"), 0u);
}

TEST(Minikv, BenchClientCountsOps) {
  os::Os vos;
  int server = vos.spawn(build_minikv(), {build_libc()});
  vos.run();
  int client = vos.spawn(build_kvbench(), {build_libc()}, "kvbench");
  vos.run(400'000);
  const os::Process* c = vos.process(client);
  const os::LoadedModule* m = c->module_named("kvbench");
  uint64_t ops = 0;
  c->mem.peek(m->base + m->binary->find_symbol("ops")->value, &ops, 8);
  EXPECT_GT(ops, 10u);
  EXPECT_EQ(vos.process(server)->term_signal, 0);
}

// ---------------------------------------------------------------------------
// miniweb
// ---------------------------------------------------------------------------

TEST(Miniweb, MasterForksOneWorker) {
  os::Os vos;
  int pid = vos.spawn(build_miniweb(), {build_libc()});
  run_until(vos, [&] { return vos.process_group(pid).size() == 2; });
  EXPECT_EQ(vos.process_group(pid).size(), 2u);
  EXPECT_NE(vos.process(pid)->stdout_buf.find("ready"), std::string::npos);
}

struct Web {
  os::Os vos;
  int master = 0;
  os::HostConn conn;

  explicit Web(std::shared_ptr<const melf::Binary> bin, uint16_t port) {
    master = vos.spawn(bin, {build_libc()});
    run_until(vos, [&] { return vos.has_listener(port); });
    conn = vos.connect(port);
  }
  std::string request(const std::string& line) {
    conn.send(line);
    run_until(vos, [&] { return conn.pending() > 0; });
    return conn.recv_all();
  }
};

TEST(Miniweb, GetPreloadedIndex) {
  Web w(build_miniweb(), kMiniwebPort);
  EXPECT_EQ(w.request("GET /index\n"), "200 welcome\n");
}

TEST(Miniweb, GetMissingIs404) {
  Web w(build_miniweb(), kMiniwebPort);
  EXPECT_EQ(w.request("GET /nope\n"), "404\n");
}

TEST(Miniweb, HeadVariants) {
  Web w(build_miniweb(), kMiniwebPort);
  EXPECT_EQ(w.request("HEAD /index\n"), "200\n");
  EXPECT_EQ(w.request("HEAD /nope\n"), "404\n");
}

TEST(Miniweb, PutThenGetThenDelete) {
  Web w(build_miniweb(), kMiniwebPort);
  EXPECT_EQ(w.request("PUT /doc hello\n"), "201 created\n");
  EXPECT_EQ(w.request("GET /doc\n"), "200 hello\n");
  EXPECT_EQ(w.request("DELETE /doc\n"), "204 deleted\n");
  EXPECT_EQ(w.request("GET /doc\n"), "404\n");
  EXPECT_EQ(w.request("DELETE /doc\n"), "404\n");
}

TEST(Miniweb, MkcolCreatesEmpty) {
  Web w(build_miniweb(), kMiniwebPort);
  EXPECT_EQ(w.request("MKCOL /dir\n"), "201 created\n");
  EXPECT_EQ(w.request("GET /dir\n"), "200 \n");
}

TEST(Miniweb, UnknownMethodIs403) {
  Web w(build_miniweb(), kMiniwebPort);
  EXPECT_EQ(w.request("PATCH /x\n"), "403 Forbidden\n");
  EXPECT_EQ(w.request("GET /index\n"), "200 welcome\n");  // still alive
}

TEST(Miniweb, UnusedModulesExistButNeverRun) {
  auto bin = build_miniweb();
  EXPECT_NE(bin->find_symbol("mod_unused_0"), nullptr);
  EXPECT_NE(bin->find_symbol("mod_unused_39"), nullptr);
  EXPECT_NE(bin->find_symbol("mod_init_29"), nullptr);
}

TEST(Miniweb, ImageSizedLikeNginx) {
  // The touched heap should give a multi-MB process footprint (paper: 2.7MB
  // master + 2.2MB worker).
  os::Os vos;
  int pid = vos.spawn(build_miniweb(), {build_libc()});
  run_until(vos, [&] { return vos.has_listener(kMiniwebPort); });
  size_t pages = vos.process(pid)->mem.populated_pages().size();
  EXPECT_GT(pages * kPageSize, 2000u * 1024);
  EXPECT_LT(pages * kPageSize, 4000u * 1024);
}

// ---------------------------------------------------------------------------
// minihttpd
// ---------------------------------------------------------------------------

TEST(Minihttpd, SingleProcess) {
  os::Os vos;
  int pid = vos.spawn(build_minihttpd(), {build_libc()});
  vos.run();
  EXPECT_EQ(vos.process_group(pid).size(), 1u);
  EXPECT_TRUE(vos.has_listener(kMinihttpdPort));
}

TEST(Minihttpd, ServesRequests) {
  Web w(build_minihttpd(), kMinihttpdPort);
  EXPECT_EQ(w.request("GET /index\n"), "200 welcome\n");
  EXPECT_EQ(w.request("PUT /a data\n"), "201 created\n");
  EXPECT_EQ(w.request("GET /a\n"), "200 data\n");
  EXPECT_EQ(w.request("DELETE /a\n"), "204 deleted\n");
  EXPECT_EQ(w.request("MKCOL /x\n"), "403 Forbidden\n");  // not supported
}

TEST(Minihttpd, HasServerMainLoopBoundaryFunction) {
  auto bin = build_minihttpd();
  const melf::Symbol* s = bin->find_symbol("server_main_loop");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->is_function);
}

// ---------------------------------------------------------------------------
// synth + specgen
// ---------------------------------------------------------------------------

TEST(Synth, GeneratedFunctionsTerminate) {
  melf::ProgramBuilder b("synthrun");
  SynthSpec spec{"fn", 20, 3, 9, 2, 42};
  auto names = emit_synth_funcs(b, spec);
  emit_call_chain(b, "all", names);
  auto& m = b.func("main");
  m.call("all").mov_ri(1, 0).sys(os::sys::kExit);
  b.set_entry("main");
  os::Os vos;
  int pid = vos.spawn(std::make_shared<melf::Binary>(b.link()));
  uint64_t retired = vos.run(5'000'000);
  EXPECT_TRUE(vos.all_exited());
  EXPECT_EQ(vos.process(pid)->term_signal, 0);
  EXPECT_LT(retired, 5'000'000u);
}

TEST(Synth, DeterministicForSeed) {
  auto build = [] {
    melf::ProgramBuilder b("det");
    emit_synth_funcs(b, SynthSpec{"fn", 5, 3, 6, 0, 99});
    b.func("main").mov_ri(1, 0).sys(os::sys::kExit);
    b.set_entry("main");
    return melf::Binary(b.link()).encode();
  };
  EXPECT_EQ(build(), build());
}

TEST(Specgen, SuiteHasSevenBenchmarks) {
  auto suite = spec_suite();
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite[0].name, "600.perlbench_s");
  EXPECT_EQ(suite[1].name, "605.mcf_s");
}

TEST(Specgen, McfRunsToCompletionAndNudges) {
  auto suite = spec_suite();
  const SpecBench& mcf = suite[1];
  os::Os vos;
  int pid = vos.spawn(build_spec(mcf), {build_libc()});
  vos.run();
  ASSERT_TRUE(vos.all_exited());
  EXPECT_EQ(vos.process(pid)->term_signal, 0);
  EXPECT_EQ(vos.process(pid)->exit_code, 0);
  // The init/serving boundary marker was emitted exactly once.
  ASSERT_EQ(vos.nudges().size(), 1u);
  EXPECT_EQ(vos.nudges()[0].first, pid);
}

TEST(Specgen, TotalFunctionCountsRespected) {
  auto suite = spec_suite();
  const SpecBench& deepsjeng = suite[5];
  auto bin = build_spec(deepsjeng);
  int funcs = 0;
  for (const auto& s : bin->symbols) {
    if (s.is_function && s.name.rfind("@plt") == std::string::npos) ++funcs;
  }
  // total_funcs synthetic + main/run_init/run_workload/init_heap drivers.
  EXPECT_GE(funcs, deepsjeng.total_funcs);
  EXPECT_LE(funcs, deepsjeng.total_funcs + 6);
}

TEST(Specgen, HeapSizedImage) {
  auto suite = spec_suite();
  const SpecBench& mcf = suite[1];
  os::Os vos;
  int pid = vos.spawn(build_spec(mcf), {build_libc()});
  // Run until the nudge (init finished) — image should include the heap.
  while (vos.nudges().empty() && !vos.all_exited()) vos.run(100'000);
  size_t pages = vos.process(pid)->mem.populated_pages().size();
  EXPECT_GT(pages * kPageSize, mcf.heap_bytes);
}

}  // namespace
}  // namespace dynacut::apps
