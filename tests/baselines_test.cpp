// Tests for the static-debloater baselines (razor_sim, chisel_sim) and the
// server oracle they minimize against.
#include <gtest/gtest.h>

#include "apps/libc.hpp"
#include "baselines/chisel.hpp"
#include "baselines/oracle.hpp"
#include "baselines/razor.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::baselines {
namespace {

using analysis::CoverageGraph;

trace::TraceLog trace_toysrv(const std::string& requests) {
  os::Os vos;
  trace::Tracer tracer(vos);
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  conn.send(requests);
  vos.run();
  return tracer.dump(pid);
}

TEST(Razor, KeepsTracedBlocksRemovesRest) {
  auto bin = testing::build_toysrv();
  RazorResult res = razor_debloat(*bin, "toysrv", {trace_toysrv("A\nQ\n")});

  EXPECT_GT(res.total_blocks, 0u);
  EXPECT_GT(res.kept.size(), 0u);
  EXPECT_GT(res.removed.size(), 0u);
  EXPECT_EQ(res.kept.size() + res.removed.size(), res.total_blocks);
  EXPECT_GT(res.kept_fraction(), 0.0);
  EXPECT_LT(res.kept_fraction(), 1.0);
  // Traced code kept; kept/removed disjoint by construction.
  EXPECT_TRUE(res.kept.contains("toysrv",
                                bin->find_symbol("handle_a")->value));
  EXPECT_TRUE(res.kept.intersect(res.removed).empty());
}

TEST(Razor, HeuristicExpansionGrowsKeptSet) {
  auto bin = testing::build_toysrv();
  auto log = trace_toysrv("A\nQ\n");
  RazorResult h0 = razor_debloat(*bin, "toysrv", {log}, 0);
  RazorResult h2 = razor_debloat(*bin, "toysrv", {log}, 2);
  RazorResult h5 = razor_debloat(*bin, "toysrv", {log}, 5);
  EXPECT_LT(h0.kept.size(), h2.kept.size());
  EXPECT_LE(h2.kept.size(), h5.kept.size());
}

TEST(Razor, MoreTrainingTracesKeepMore) {
  auto bin = testing::build_toysrv();
  RazorResult narrow = razor_debloat(*bin, "toysrv", {trace_toysrv("Q\n")});
  RazorResult broad = razor_debloat(
      *bin, "toysrv", {trace_toysrv("Q\n"), trace_toysrv("A\nB\nQ\n")});
  EXPECT_GT(broad.kept.size(), narrow.kept.size());
}

TEST(Razor, UntrainedFeatureIsRemoved) {
  auto bin = testing::build_toysrv();
  // Train without B; handle_b must be gone (the static-debloating downside
  // the paper's Figure 1(b) criticizes: B is unusable forever).
  RazorResult res =
      razor_debloat(*bin, "toysrv", {trace_toysrv("A\nQ\n")}, 0);
  EXPECT_FALSE(
      res.kept.contains("toysrv", bin->find_symbol("handle_b")->value));
}

TEST(Oracle, AcceptsFullKeptSetRejectsEmptyish) {
  auto bin = testing::build_toysrv();
  auto oracle = make_server_oracle(
      bin, {apps::build_libc()}, 80, "toysrv",
      {{"A\n", "alpha\n"}, {"X\n", "err\n"}});

  // Keep everything -> passes.
  analysis::StaticCfg cfg = analysis::recover_cfg(*bin);
  CoverageGraph all;
  for (const auto& [off, blk] : cfg.blocks) {
    all.insert(analysis::CovBlock{"toysrv", off, blk.size});
  }
  EXPECT_TRUE(oracle(all));

  // Keep nothing -> the server can't even boot.
  EXPECT_FALSE(oracle(CoverageGraph{}));
}

TEST(Oracle, DetectsWrongReply) {
  auto bin = testing::build_toysrv();
  auto oracle = make_server_oracle(bin, {apps::build_libc()}, 80, "toysrv",
                                   {{"A\n", "WRONG\n"}});
  analysis::StaticCfg cfg = analysis::recover_cfg(*bin);
  CoverageGraph all;
  for (const auto& [off, blk] : cfg.blocks) {
    all.insert(analysis::CovBlock{"toysrv", off, blk.size});
  }
  EXPECT_FALSE(oracle(all));
}

TEST(Chisel, MinimizesBelowRazor) {
  auto bin = testing::build_toysrv();
  auto log = trace_toysrv("A\nB\nQ\n");
  // Level-4 heuristics: deep enough that the untrained error path survives
  // (RAZOR's higher zCode levels exist for exactly this reason).
  RazorResult razor = razor_debloat(*bin, "toysrv", {log}, 4);

  // Requirement: only feature A (and the error path) must keep working.
  auto oracle = make_server_oracle(
      bin, {apps::build_libc()}, 80, "toysrv",
      {{"A\n", "alpha\n"}, {"X\n", "err\n"}});

  ChiselResult chisel =
      chisel_debloat(*bin, "toysrv", razor.kept, oracle, 6);

  EXPECT_LT(chisel.kept.size(), razor.kept.size());
  EXPECT_GT(chisel.oracle_calls, 1);
  EXPECT_LT(chisel.kept_fraction(), razor.kept_fraction());
  // The minimized server still passes its own oracle.
  EXPECT_TRUE(oracle(chisel.kept));
  // And B is gone: chisel removed at least the B handler entry.
  EXPECT_FALSE(
      chisel.kept.contains("toysrv", bin->find_symbol("handle_b")->value));
}

TEST(Chisel, ThrowsWhenSeedFailsOracle) {
  auto bin = testing::build_toysrv();
  auto oracle = make_server_oracle(bin, {apps::build_libc()}, 80, "toysrv",
                                   {{"A\n", "alpha\n"}});
  EXPECT_THROW(
      chisel_debloat(*bin, "toysrv", CoverageGraph{}, oracle, 2),
      StateError);
}

}  // namespace
}  // namespace dynacut::baselines
