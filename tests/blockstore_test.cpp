// The fleet-wide content-addressed BlockStore: dedup across pids and Os
// instances, refcount-aware accounting (weak entries die with their last
// holder), the full-byte compare that guards hash collisions, and the two
// consumers built on top of it — image::spawn_from_image (instant scale-out
// bit-identical to a replayed boot) and the seen-threaded resident-bytes
// accounting that counts a shared block once machine-wide.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/libc.hpp"
#include "image/block_store.hpp"
#include "image/checkpoint.hpp"
#include "image/image.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "vm/addrspace.hpp"

namespace dynacut::image {
namespace {

vm::PageRef page_of(uint8_t fill) {
  auto p = std::make_shared<std::vector<uint8_t>>(kPageSize, fill);
  return p;
}

// ---------------------------------------------------------------------------
// Interning primitives
// ---------------------------------------------------------------------------

TEST(BlockStore, InternDedupsIdenticalBytes) {
  BlockStore& bs = BlockStore::global();
  vm::PageRef a = page_of(0x5a);
  vm::PageRef canon = bs.intern(a);
  EXPECT_EQ(canon.get(), a.get());  // first holder becomes canonical

  bs.reset_stats();
  vm::PageRef b = bs.intern(page_of(0x5a));
  EXPECT_EQ(b.get(), a.get());  // identical bytes -> the same block
  EXPECT_EQ(bs.stats().dedup_hits, 1u);

  vm::PageRef c = bs.intern_bytes(std::span<const uint8_t>(*a));
  EXPECT_EQ(c.get(), a.get());

  vm::PageRef d = bs.intern(page_of(0xa5));
  EXPECT_NE(d.get(), a.get());  // different bytes stay distinct
}

TEST(BlockStore, EntriesDieWithTheirLastHolder) {
  BlockStore& bs = BlockStore::global();
  const size_t base = bs.unique_blocks();
  const uint64_t base_bytes = bs.resident_bytes();
  {
    vm::PageRef a = bs.intern(page_of(0x11));
    vm::PageRef b = bs.intern(page_of(0x22));
    EXPECT_EQ(bs.unique_blocks(), base + 2);
    EXPECT_EQ(bs.resident_bytes(), base_bytes + 2 * kPageSize);
  }
  // The table holds weak refs only: both blocks are gone, and so is the
  // accounting for them.
  EXPECT_EQ(bs.unique_blocks(), base);
  EXPECT_EQ(bs.resident_bytes(), base_bytes);
}

TEST(BlockStore, FullByteCompareGuardsHashCollisions) {
  BlockStore& bs = BlockStore::global();
  // Constant hash: every page collides. Dedup must still be exact.
  bs.set_hash_for_test([](std::span<const uint8_t>) { return 42ull; });
  bs.reset_stats();

  vm::PageRef a = bs.intern(page_of(0x01));
  vm::PageRef b = bs.intern(page_of(0x02));
  EXPECT_NE(a.get(), b.get());  // collision did NOT merge distinct bytes
  EXPECT_GE(bs.stats().hash_collisions, 1u);

  vm::PageRef a2 = bs.intern(page_of(0x01));
  EXPECT_EQ(a2.get(), a.get());  // identical bytes still dedup
  EXPECT_EQ(bs.stats().dedup_hits, 1u);

  bs.set_hash_for_test(nullptr);
}

// Dedup can hand a live, sole-owned page block to a second holder behind
// its owning AddressSpace's back — while the owner's write fast-path raw
// pointer is still armed from an earlier legal in-place write. The
// share-epoch bump on every dedup hit must disarm that cache so the
// owner's next write COW-clones instead of corrupting the new holder.
TEST(BlockStore, DedupDisarmsOwnersWriteFastPath) {
  BlockStore& bs = BlockStore::global();
  vm::AddressSpace owner;
  owner.map(0x1000, kPageSize, kProtRead | kProtWrite, "data");
  std::vector<uint8_t> fill(kPageSize, 0x77);
  owner.poke_bytes(0x1000, fill);

  // Register the live block (an image shared it once), then drop that
  // holder: the owner is the sole holder again and may write in place.
  bs.intern(owner.page_block(0x1000));

  // A legal in-place write arms the owner's write fast-path raw pointer
  // (the block is uniquely owned, so no clone happens). Write the byte the
  // page already holds so the table entry stays byte-accurate.
  uint8_t same = 0x77;
  owner.poke(0x1000, &same, 1);

  // Another pid's checkpoint interns byte-identical content: dedup hands
  // the owner's live block to a second holder behind the owner's back.
  bs.reset_stats();
  vm::PageRef other = bs.intern_bytes(std::span<const uint8_t>(fill));
  ASSERT_EQ(bs.stats().dedup_hits, 1u);  // the hazardous path was taken

  // The owner's next write must not scribble into the now-shared block.
  uint8_t diff = 0x99;
  owner.poke(0x1000, &diff, 1);
  EXPECT_EQ((*other)[0], 0x77);                     // new holder unharmed
  EXPECT_EQ(owner.peek_bytes(0x1000, 1)[0], 0x99);  // owner's write landed
  EXPECT_NE(owner.page_block(0x1000).get(), other.get());  // COW split
}

// Same hazard through intern(PageRef): a second space's checkpoint dedups
// onto the armed owner's block.
TEST(BlockStore, InternPageRefAlsoDisarms) {
  BlockStore& bs = BlockStore::global();
  vm::AddressSpace owner;
  owner.map(0x2000, kPageSize, kProtRead | kProtWrite, "data");
  std::vector<uint8_t> fill(kPageSize, 0x3c);
  owner.poke_bytes(0x2000, fill);
  bs.intern(owner.page_block(0x2000));
  uint8_t same = 0x3c;
  owner.poke(0x2000, &same, 1);  // arm the fast path

  vm::PageRef other = bs.intern(page_of(0x3c));
  uint8_t diff = 0x11;
  owner.poke(0x2000, &diff, 1);
  EXPECT_EQ((*other)[0], 0x3c);
  EXPECT_EQ(owner.peek_bytes(0x2000, 1)[0], 0x11);
}

// ---------------------------------------------------------------------------
// Fleet dedup: images of different pids share resident blocks
// ---------------------------------------------------------------------------

TEST(BlockStore, ImagesOfDifferentPidsShareBlocks) {
  os::Os vos;
  auto libc = apps::build_libc();
  int pa = vos.spawn(testing::build_toysrv(80), {libc});
  int pb = vos.spawn(testing::build_toysrv(81), {libc});
  vos.run();

  ProcessImage img_a = checkpoint(vos, {.pid = pa}).img;
  ProcessImage img_b = checkpoint(vos, {.pid = pb}).img;

  ImageStore store;
  store.put(ImageKey{pa, ImageKey::kPreTag}, img_a);
  const uint64_t one = store.resident_bytes();
  store.put(ImageKey{pb, ImageKey::kPreTag}, img_b);
  const uint64_t both = store.resident_bytes();

  // The two processes run the same binary (only the port immediate
  // differs), so the second image adds a small delta, not a full copy.
  EXPECT_EQ(store.bytes_used(), img_a.pages_bytes() + img_b.pages_bytes());
  EXPECT_LT(both - one, img_b.pages_bytes() / 2);
  EXPECT_LT(both, store.bytes_used());
}

// ---------------------------------------------------------------------------
// spawn_from_image
// ---------------------------------------------------------------------------

TEST(SpawnFromImage, BitIdenticalToReplayedBoot) {
  auto bin = testing::build_toysrv();
  auto libc = apps::build_libc();

  // Donor: boot to the listener, checkpoint.
  os::Os donor;
  int dp = donor.spawn(bin, {libc});
  donor.run();
  ProcessImage img = checkpoint(donor, {.pid = dp}).img;

  // Clone: fork a fresh Os's first process from the image — no guest
  // instruction runs. Replay: the same boot re-executed from the binary.
  os::Os cloned;
  int cp = spawn_from_image(cloned, img);
  os::Os replayed;
  int rp = replayed.spawn(bin, {libc});
  replayed.run();
  ASSERT_EQ(cp, rp);

  ProcessImage ci = checkpoint(cloned, {.pid = cp}).img;
  ProcessImage ri = checkpoint(replayed, {.pid = rp}).img;
  EXPECT_EQ(ci.encode(), ri.encode());

  // And the clone is a live server, not just matching bytes (the restore
  // thaws the comparison checkpoint's freeze).
  restore(cloned, {.pid = cp, .img = &ci});
  auto conn = cloned.connect(80);
  conn.send("A\nQ\n");
  cloned.run();
  EXPECT_EQ(conn.recv_all(), "alpha\n");
  EXPECT_EQ(cloned.process(cp)->stdout_buf, "");  // init never re-ran
}

TEST(SpawnFromImage, MixedFleetSameSeedIsDeterministic) {
  auto bin = testing::build_toysrv();
  auto run_fleet = [&] {
    os::Os vos;
    vos.set_seed(5);
    vos.set_cores(2);
    auto libc = apps::build_libc();
    int tp = vos.spawn(bin, {libc});
    vos.run();
    ProcessImage img = checkpoint(vos, {.pid = tp}).img;
    // Mixed fleet: two workers forked from the image onto fresh ports,
    // one booted from the binary the ordinary way.
    int w1 = spawn_from_image(vos, img, {.listen_port = 81});
    int w2 = spawn_from_image(vos, img, {.listen_port = 82});
    int w3 = vos.spawn(testing::build_toysrv(83), {libc});
    vos.run();
    std::string out;
    for (uint16_t port : {uint16_t{81}, uint16_t{82}, uint16_t{83}}) {
      auto conn = vos.connect(port);
      conn.send("A\nB\nQ\n");
      vos.run();
      out += conn.recv_all();
    }
    (void)w1;
    (void)w2;
    (void)w3;
    return std::make_pair(vos.total_retired(), out);
  };
  auto a = run_fleet();
  auto b = run_fleet();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.second, "alpha\nbeta\nalpha\nbeta\nalpha\nbeta\n");
}

// ---------------------------------------------------------------------------
// Machine-wide seen-threaded accounting
// ---------------------------------------------------------------------------

TEST(ResidentBytes, SeenSetCountsSharedBlocksOnce) {
  os::Os vos;
  int tp = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  vos.run();
  ProcessImage img = checkpoint(vos, {.pid = tp}).img;
  ImageStore store;
  store.put(ImageKey{tp, ImageKey::kPreTag}, img);
  for (int i = 0; i < 3; ++i) {
    spawn_from_image(vos, img,
                     {.listen_port = static_cast<uint16_t>(81 + i)});
  }

  const uint64_t solo = vos.process(tp)->mem.resident_bytes();
  // Naive per-holder sums double-count every shared block...
  uint64_t naive = store.resident_bytes();
  for (int pid : {tp, tp + 1, tp + 2, tp + 3}) {
    naive += vos.process(pid)->mem.resident_bytes();
  }
  // ...the seen set threads through all holders and counts each once.
  std::set<const void*> seen;
  const uint64_t fleet =
      vos.resident_pages_bytes(&seen) + store.resident_bytes(&seen);
  EXPECT_LT(fleet, naive / 2);
  // O(1 image + deltas): the whole 4-process fleet plus the stored image
  // fits well inside two copies of one process.
  EXPECT_LT(fleet, 2 * solo);
  EXPECT_GE(fleet, solo);
}

}  // namespace
}  // namespace dynacut::image
