// Tests for static CFG recovery (total-BB counting), PLT-usage analysis and
// the gadget scanner.
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "apps/libc.hpp"
#include "isa/encode.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::analysis {
namespace {

using melf::Binary;
using melf::ProgramBuilder;

TEST(Cfg, StraightLineFunctionIsOneBlock) {
  ProgramBuilder b("line");
  b.func("f").mov_ri(1, 1).add_ri(1, 2).ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  ASSERT_EQ(cfg.block_count(), 1u);
  const CfgBlock& blk = cfg.blocks.begin()->second;
  EXPECT_EQ(blk.instr_count, 3u);
  EXPECT_TRUE(blk.succs.empty());  // ret
}

TEST(Cfg, DiamondHasFourBlocks) {
  ProgramBuilder b("diamond");
  auto& f = b.func("f");
  f.cmp_ri(1, 0)
      .je("right")
      .mov_ri(2, 1)  // left
      .jmp("join")
      .label("right")
      .mov_ri(2, 2)
      .label("join")
      .ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  EXPECT_EQ(cfg.block_count(), 4u);
}

TEST(Cfg, BranchTargetsSplitBlocks) {
  // A backward branch into the middle of a straight line must split it.
  ProgramBuilder b("split");
  auto& f = b.func("f");
  f.mov_ri(1, 0)
      .label("mid")
      .add_ri(1, 1)
      .cmp_ri(1, 5)
      .jlt("mid")
      .ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  // Blocks: [entry..jlt], [mid..jlt], [ret]; mid is a leader.
  EXPECT_EQ(cfg.block_count(), 3u);
}

TEST(Cfg, CallCreatesEdgeAndFallthrough) {
  ProgramBuilder b("calls");
  b.func("callee").ret();
  b.func("caller").call("callee").mov_ri(1, 0).ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  uint64_t callee = bin.find_symbol("callee")->value;
  uint64_t caller = bin.find_symbol("caller")->value;
  const CfgBlock& first = cfg.blocks.at(caller);
  EXPECT_EQ(first.succs.size(), 2u);  // call target + fallthrough
  EXPECT_NE(std::find(first.succs.begin(), first.succs.end(), callee),
            first.succs.end());
}

TEST(Cfg, UnreachableFunctionsStillCounted) {
  // Angr-style totals include never-called functions (symbol roots).
  ProgramBuilder b("cold");
  b.func("used").ret();
  b.func("cold").mov_ri(1, 1).ret();
  Binary bin = b.link();
  EXPECT_GE(total_block_count(bin), 2u);
}

TEST(Cfg, TotalCountsCoverRealApps) {
  // Sanity ranges for the evaluation apps; exact numbers are asserted by
  // determinism (same binary => same count).
  size_t kv = total_block_count(*apps::build_minikv());
  size_t web = total_block_count(*apps::build_miniweb());
  EXPECT_GT(kv, 100u);
  EXPECT_GT(web, 500u);  // padded with synthetic modules
  EXPECT_EQ(kv, total_block_count(*apps::build_minikv()));  // deterministic
}

TEST(Cfg, StaticBlocksSupersetOfTracedBlocks) {
  // Every dynamically observed toysrv block must exist statically (the
  // traced block's start must fall on a static block start or inside one,
  // since dynamic blocks split at call returns the static CFG also splits).
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  conn.send("A\nB\nQ\n");
  vos.run();
  trace::TraceLog log = tracer.dump(pid);

  StaticCfg cfg = recover_cfg(*bin);
  for (const auto& blk : log.blocks) {
    if (log.modules[blk.module_id].name != "toysrv") continue;
    // Find the static block containing this offset.
    auto it = cfg.blocks.upper_bound(blk.offset);
    ASSERT_NE(it, cfg.blocks.begin()) << "offset " << blk.offset;
    --it;
    EXPECT_LT(blk.offset, it->second.offset + it->second.size)
        << "traced block at " << blk.offset << " not covered statically";
  }
}

// ---------------------------------------------------------------------------
// Dominators and recovery corner cases (slicer prerequisites)
// ---------------------------------------------------------------------------

/// A single-.text binary from hand-assembled bytes, for layouts the
/// ProgramBuilder cannot express (cross-function jumps, overlapping
/// decodings).
Binary raw_binary(std::vector<uint8_t> text,
                  std::vector<melf::Symbol> symbols) {
  Binary bin;
  bin.name = "hand";
  melf::Section sec;
  sec.kind = melf::SectionKind::kText;
  sec.offset = 0;
  sec.size = text.size();
  sec.bytes = std::move(text);
  bin.sections.push_back(std::move(sec));
  bin.symbols = std::move(symbols);
  return bin;
}

melf::Symbol func_symbol(const std::string& name, uint64_t value,
                         uint64_t size) {
  melf::Symbol s;
  s.name = name;
  s.value = value;
  s.size = size;
  s.global = true;
  s.is_function = true;
  return s;
}

TEST(Cfg, DominatorsOfIrreducibleLoop) {
  // entry -> {l1, l2}; l1 <-> l2: a two-entry (irreducible) loop. Neither
  // loop block dominates the other; both are immediately dominated by the
  // entry, and each exit block by the loop block that reaches it.
  ProgramBuilder b("irr");
  auto& f = b.func("f");
  f.cmp_ri(1, 0).je("l2");
  f.label("l1").add_ri(1, 1).cmp_ri(1, 10).jlt("l2").ret();
  f.label("l2").add_ri(1, 2).cmp_ri(1, 20).jlt("l1").ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  auto funcs = split_functions(cfg, bin);
  ASSERT_EQ(funcs.size(), 1u);
  const FuncCfg& fc = funcs.begin()->second;
  auto idom = dominator_tree(fc);
  ASSERT_EQ(idom.size(), fc.blocks.size());

  uint64_t entry = fc.entry;
  uint64_t l1 = entry + 11;  // cmp(6) + je(5)
  uint64_t ret1 = l1 + 17;   // add(6) + cmp(6) + jlt(5)
  uint64_t l2 = ret1 + 1;
  uint64_t ret2 = l2 + 17;
  ASSERT_TRUE(fc.blocks.count(l1) && fc.blocks.count(l2) &&
              fc.blocks.count(ret1) && fc.blocks.count(ret2));
  EXPECT_EQ(idom.at(entry), entry);
  EXPECT_EQ(idom.at(l1), entry);  // reachable around the loop both ways
  EXPECT_EQ(idom.at(l2), entry);
  EXPECT_EQ(idom.at(ret1), l1);
  EXPECT_EQ(idom.at(ret2), l2);
}

TEST(Cfg, MultiEntrySubgraphKeepsDominatorsPartial) {
  // Function f's tail block is only entered by a jump from g: inside f's
  // subgraph it has no predecessors, so the dominator tree (rooted at f's
  // entry) must omit it rather than invent a dominator.
  std::vector<uint8_t> code;
  isa::Encoder enc(code);
  enc.ret();            // f entry: returns immediately
  enc.mov_ri(1, 2);     // f tail, offset 1: only reachable from g
  enc.ret();            // offset 11
  enc.branch(isa::Op::kJmp, -16);  // g at 12: target 12+5-16 = 1
  Binary bin = raw_binary(code, {func_symbol("f", 0, 12),
                                 func_symbol("g", 12, code.size() - 12)});
  StaticCfg cfg = recover_cfg(bin);
  ASSERT_TRUE(cfg.block_at(1) != nullptr);

  auto funcs = split_functions(cfg, bin);
  ASSERT_EQ(funcs.size(), 2u);
  const FuncCfg& fc = funcs.at(0);
  EXPECT_TRUE(fc.blocks.count(1));  // owned by f's symbol...
  auto idom = dominator_tree(fc);
  EXPECT_EQ(idom.count(1), 0u);  // ...but not dominated by f's entry
  EXPECT_EQ(idom.at(0), 0u);
}

TEST(Cfg, JumpIntoImmediateDecodesBothStreams) {
  // je +2 jumps into the byte 7..8 *inside* the mov's imm64: the traversal
  // must decode both the outer instruction stream and the overlapping inner
  // one, and instr_starts must carry offsets from both.
  std::vector<uint8_t> code;
  isa::Encoder enc(code);
  enc.branch(isa::Op::kJe, 2);  // 0: -> 7 or fallthrough 5
  enc.mov_ri(1, 0x1E90);       // 5: imm bytes 7.. decode as nop, ret
  enc.ret();                    // 15
  Binary bin = raw_binary(code, {func_symbol("f", 0, code.size())});
  StaticCfg cfg = recover_cfg(bin);

  EXPECT_TRUE(cfg.is_instr_start(5));   // outer mov
  EXPECT_TRUE(cfg.is_instr_start(7));   // inner nop
  EXPECT_TRUE(cfg.is_instr_start(8));   // inner ret
  EXPECT_FALSE(cfg.is_instr_start(6));  // never decoded at
  const CfgBlock* outer = cfg.block_at(5);
  const CfgBlock* inner = cfg.block_at(7);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->size, 11u);  // mov + ret: overlaps inner's bytes
  EXPECT_EQ(inner->size, 2u);   // nop + ret
  EXPECT_EQ(cfg.block_containing(8), inner);
}

TEST(Cfg, FallthroughOnlySplitEndsWithNopTerminator) {
  // The block before a backward-branch target ends only because the next
  // instruction is a leader: its terminator must be the kNop sentinel and
  // its single successor the leader.
  ProgramBuilder b("fall");
  auto& f = b.func("f");
  f.mov_ri(1, 0).label("mid").add_ri(1, 1).cmp_ri(1, 5).jlt("mid").ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  uint64_t entry = bin.find_symbol("f")->value;
  const CfgBlock* head = cfg.block_at(entry);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->term, isa::Op::kNop);
  ASSERT_EQ(head->succs.size(), 1u);
  EXPECT_EQ(head->succs[0], entry + 10);  // mid
  EXPECT_NE(cfg.block_at(entry + 10), nullptr);
}

TEST(Cfg, RegisterCallGetsFallthroughEdge) {
  // kCallR returns to the next instruction like a direct call: the block
  // must end at the callr with exactly the fallthrough successor (the
  // callee edge is only known to the slicer).
  ProgramBuilder b("rcall");
  b.func("target").ret();
  auto& f = b.func("f");
  f.lea_sym(1, "target").callr(1).mov_ri(2, 1).ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  uint64_t entry = bin.find_symbol("f")->value;
  const CfgBlock* head = cfg.block_at(entry);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->term, isa::Op::kCallR);
  ASSERT_EQ(head->succs.size(), 1u);
  EXPECT_EQ(head->succs[0], entry + head->size);
  const CfgBlock* fall = cfg.block_at(entry + head->size);
  ASSERT_NE(fall, nullptr);
  EXPECT_EQ(fall->term, isa::Op::kRet);
}

// ---------------------------------------------------------------------------
// PLT analysis
// ---------------------------------------------------------------------------

struct PhaseCov {
  CoverageGraph init;
  CoverageGraph serving;
  std::shared_ptr<const Binary> bin;
};

PhaseCov minikv_phases() {
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = apps::build_minikv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  trace::TraceLog init_log = tracer.dump_and_reset(pid);
  auto conn = vos.connect(apps::kMinikvPort);
  conn.send("SET a 1\nGET a\nPING\n");
  vos.run();
  trace::TraceLog serving_log = tracer.dump(pid);
  return {CoverageGraph::from_log(init_log),
          CoverageGraph::from_log(serving_log), bin};
}

TEST(Plt, ClassifiesInitOnlyEntries) {
  PhaseCov pc = minikv_phases();
  PltUsage usage = analyze_plt(*pc.bin, "minikv", pc.init, pc.serving);

  EXPECT_EQ(usage.total_entries, pc.bin->imports.size());
  EXPECT_FALSE(usage.executed.empty());
  EXPECT_FALSE(usage.init_only.empty());
  EXPECT_FALSE(usage.serving.empty());

  auto has = [](const std::vector<std::string>& v, const char* name) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  // socket/bind/listen/memset run only during startup.
  EXPECT_TRUE(has(usage.init_only, "socket"));
  EXPECT_TRUE(has(usage.init_only, "bind"));
  EXPECT_TRUE(has(usage.init_only, "listen"));
  EXPECT_TRUE(has(usage.init_only, "memset"));
  // recv_line/strcmp serve requests.
  EXPECT_TRUE(has(usage.serving, "recv_line"));
  EXPECT_TRUE(has(usage.serving, "strcmp"));
  // init_only and serving are disjoint; both are subsets of executed.
  for (const auto& e : usage.init_only) {
    EXPECT_FALSE(has(usage.serving, e.c_str())) << e;
    EXPECT_TRUE(has(usage.executed, e.c_str()));
  }
}

TEST(Plt, BlocksForEntriesMatchStubOffsets) {
  auto bin = apps::build_minikv();
  auto blocks = plt_blocks(*bin, "minikv", {"socket", "bind"});
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].offset, *bin->plt_stub_offset("socket"));
  EXPECT_EQ(blocks[0].size, melf::Binary::kPltStubSize);
  // Unknown entries are skipped, not invented.
  EXPECT_TRUE(plt_blocks(*bin, "minikv", {"no_such_import"}).empty());
}

// ---------------------------------------------------------------------------
// Gadget scanner
// ---------------------------------------------------------------------------

TEST(Gadgets, FindsRetSequences) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  GadgetStats stats = scan_gadgets(vos.process(pid)->mem);
  EXPECT_GT(stats.gadget_starts, 10u);
  EXPECT_GT(stats.executable_bytes, 0u);
}

TEST(Gadgets, WipingCodeRemovesGadgets) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  os::Process* p = vos.process(pid);
  GadgetStats before = scan_gadgets(p->mem);

  // Wipe the whole app .text with traps (host-side, simulating the
  // aggressive wipe policy).
  const os::LoadedModule* app = p->module_named("toysrv");
  const melf::Section* text =
      app->binary->section(melf::SectionKind::kText);
  std::vector<uint8_t> traps(text->size, 0xCC);
  p->mem.poke_bytes(app->base + text->offset, traps);

  GadgetStats after = scan_gadgets(p->mem);
  EXPECT_LT(after.gadget_starts, before.gadget_starts);
}

TEST(Gadgets, UnmappingCodeRemovesGadgetsEntirely) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  os::Process* p = vos.process(pid);
  const os::LoadedModule* libc = p->module_named("libc.so");
  GadgetStats before = scan_gadgets(p->mem);
  // Unmap libc .text: its gadget contribution disappears.
  const melf::Section* text =
      libc->binary->section(melf::SectionKind::kText);
  p->mem.unmap(libc->base + text->offset, page_ceil(text->size));
  GadgetStats after = scan_gadgets(p->mem);
  EXPECT_LT(after.gadget_starts, before.gadget_starts);
  EXPECT_LT(after.executable_bytes, before.executable_bytes);
}

TEST(Gadgets, RespectsMaxInstrs) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  const os::Process* p = vos.process(pid);
  GadgetStats narrow = scan_gadgets(p->mem, 1);
  GadgetStats wide = scan_gadgets(p->mem, 8);
  EXPECT_LE(narrow.gadget_starts, wide.gadget_starts);
}

}  // namespace
}  // namespace dynacut::analysis
