// Tests for static CFG recovery (total-BB counting), PLT-usage analysis and
// the gadget scanner.
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/gadget.hpp"
#include "analysis/plt.hpp"
#include "apps/libc.hpp"
#include "apps/minikv.hpp"
#include "apps/miniweb.hpp"
#include "melf/builder.hpp"
#include "os/os.hpp"
#include "test_guests.hpp"
#include "trace/trace.hpp"

namespace dynacut::analysis {
namespace {

using melf::Binary;
using melf::ProgramBuilder;

TEST(Cfg, StraightLineFunctionIsOneBlock) {
  ProgramBuilder b("line");
  b.func("f").mov_ri(1, 1).add_ri(1, 2).ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  ASSERT_EQ(cfg.block_count(), 1u);
  const CfgBlock& blk = cfg.blocks.begin()->second;
  EXPECT_EQ(blk.instr_count, 3u);
  EXPECT_TRUE(blk.succs.empty());  // ret
}

TEST(Cfg, DiamondHasFourBlocks) {
  ProgramBuilder b("diamond");
  auto& f = b.func("f");
  f.cmp_ri(1, 0)
      .je("right")
      .mov_ri(2, 1)  // left
      .jmp("join")
      .label("right")
      .mov_ri(2, 2)
      .label("join")
      .ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  EXPECT_EQ(cfg.block_count(), 4u);
}

TEST(Cfg, BranchTargetsSplitBlocks) {
  // A backward branch into the middle of a straight line must split it.
  ProgramBuilder b("split");
  auto& f = b.func("f");
  f.mov_ri(1, 0)
      .label("mid")
      .add_ri(1, 1)
      .cmp_ri(1, 5)
      .jlt("mid")
      .ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  // Blocks: [entry..jlt], [mid..jlt], [ret]; mid is a leader.
  EXPECT_EQ(cfg.block_count(), 3u);
}

TEST(Cfg, CallCreatesEdgeAndFallthrough) {
  ProgramBuilder b("calls");
  b.func("callee").ret();
  b.func("caller").call("callee").mov_ri(1, 0).ret();
  Binary bin = b.link();
  StaticCfg cfg = recover_cfg(bin);
  uint64_t callee = bin.find_symbol("callee")->value;
  uint64_t caller = bin.find_symbol("caller")->value;
  const CfgBlock& first = cfg.blocks.at(caller);
  EXPECT_EQ(first.succs.size(), 2u);  // call target + fallthrough
  EXPECT_NE(std::find(first.succs.begin(), first.succs.end(), callee),
            first.succs.end());
}

TEST(Cfg, UnreachableFunctionsStillCounted) {
  // Angr-style totals include never-called functions (symbol roots).
  ProgramBuilder b("cold");
  b.func("used").ret();
  b.func("cold").mov_ri(1, 1).ret();
  Binary bin = b.link();
  EXPECT_GE(total_block_count(bin), 2u);
}

TEST(Cfg, TotalCountsCoverRealApps) {
  // Sanity ranges for the evaluation apps; exact numbers are asserted by
  // determinism (same binary => same count).
  size_t kv = total_block_count(*apps::build_minikv());
  size_t web = total_block_count(*apps::build_miniweb());
  EXPECT_GT(kv, 100u);
  EXPECT_GT(web, 500u);  // padded with synthetic modules
  EXPECT_EQ(kv, total_block_count(*apps::build_minikv()));  // deterministic
}

TEST(Cfg, StaticBlocksSupersetOfTracedBlocks) {
  // Every dynamically observed toysrv block must exist statically (the
  // traced block's start must fall on a static block start or inside one,
  // since dynamic blocks split at call returns the static CFG also splits).
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = testing::build_toysrv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  auto conn = vos.connect(80);
  conn.send("A\nB\nQ\n");
  vos.run();
  trace::TraceLog log = tracer.dump(pid);

  StaticCfg cfg = recover_cfg(*bin);
  for (const auto& blk : log.blocks) {
    if (log.modules[blk.module_id].name != "toysrv") continue;
    // Find the static block containing this offset.
    auto it = cfg.blocks.upper_bound(blk.offset);
    ASSERT_NE(it, cfg.blocks.begin()) << "offset " << blk.offset;
    --it;
    EXPECT_LT(blk.offset, it->second.offset + it->second.size)
        << "traced block at " << blk.offset << " not covered statically";
  }
}

// ---------------------------------------------------------------------------
// PLT analysis
// ---------------------------------------------------------------------------

struct PhaseCov {
  CoverageGraph init;
  CoverageGraph serving;
  std::shared_ptr<const Binary> bin;
};

PhaseCov minikv_phases() {
  os::Os vos;
  trace::Tracer tracer(vos);
  auto bin = apps::build_minikv();
  int pid = vos.spawn(bin, {apps::build_libc()});
  vos.run();
  trace::TraceLog init_log = tracer.dump_and_reset(pid);
  auto conn = vos.connect(apps::kMinikvPort);
  conn.send("SET a 1\nGET a\nPING\n");
  vos.run();
  trace::TraceLog serving_log = tracer.dump(pid);
  return {CoverageGraph::from_log(init_log),
          CoverageGraph::from_log(serving_log), bin};
}

TEST(Plt, ClassifiesInitOnlyEntries) {
  PhaseCov pc = minikv_phases();
  PltUsage usage = analyze_plt(*pc.bin, "minikv", pc.init, pc.serving);

  EXPECT_EQ(usage.total_entries, pc.bin->imports.size());
  EXPECT_FALSE(usage.executed.empty());
  EXPECT_FALSE(usage.init_only.empty());
  EXPECT_FALSE(usage.serving.empty());

  auto has = [](const std::vector<std::string>& v, const char* name) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  // socket/bind/listen/memset run only during startup.
  EXPECT_TRUE(has(usage.init_only, "socket"));
  EXPECT_TRUE(has(usage.init_only, "bind"));
  EXPECT_TRUE(has(usage.init_only, "listen"));
  EXPECT_TRUE(has(usage.init_only, "memset"));
  // recv_line/strcmp serve requests.
  EXPECT_TRUE(has(usage.serving, "recv_line"));
  EXPECT_TRUE(has(usage.serving, "strcmp"));
  // init_only and serving are disjoint; both are subsets of executed.
  for (const auto& e : usage.init_only) {
    EXPECT_FALSE(has(usage.serving, e.c_str())) << e;
    EXPECT_TRUE(has(usage.executed, e.c_str()));
  }
}

TEST(Plt, BlocksForEntriesMatchStubOffsets) {
  auto bin = apps::build_minikv();
  auto blocks = plt_blocks(*bin, "minikv", {"socket", "bind"});
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].offset, *bin->plt_stub_offset("socket"));
  EXPECT_EQ(blocks[0].size, melf::Binary::kPltStubSize);
  // Unknown entries are skipped, not invented.
  EXPECT_TRUE(plt_blocks(*bin, "minikv", {"no_such_import"}).empty());
}

// ---------------------------------------------------------------------------
// Gadget scanner
// ---------------------------------------------------------------------------

TEST(Gadgets, FindsRetSequences) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  GadgetStats stats = scan_gadgets(vos.process(pid)->mem);
  EXPECT_GT(stats.gadget_starts, 10u);
  EXPECT_GT(stats.executable_bytes, 0u);
}

TEST(Gadgets, WipingCodeRemovesGadgets) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  os::Process* p = vos.process(pid);
  GadgetStats before = scan_gadgets(p->mem);

  // Wipe the whole app .text with traps (host-side, simulating the
  // aggressive wipe policy).
  const os::LoadedModule* app = p->module_named("toysrv");
  const melf::Section* text =
      app->binary->section(melf::SectionKind::kText);
  std::vector<uint8_t> traps(text->size, 0xCC);
  p->mem.poke_bytes(app->base + text->offset, traps);

  GadgetStats after = scan_gadgets(p->mem);
  EXPECT_LT(after.gadget_starts, before.gadget_starts);
}

TEST(Gadgets, UnmappingCodeRemovesGadgetsEntirely) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  os::Process* p = vos.process(pid);
  const os::LoadedModule* libc = p->module_named("libc.so");
  GadgetStats before = scan_gadgets(p->mem);
  // Unmap libc .text: its gadget contribution disappears.
  const melf::Section* text =
      libc->binary->section(melf::SectionKind::kText);
  p->mem.unmap(libc->base + text->offset, page_ceil(text->size));
  GadgetStats after = scan_gadgets(p->mem);
  EXPECT_LT(after.gadget_starts, before.gadget_starts);
  EXPECT_LT(after.executable_bytes, before.executable_bytes);
}

TEST(Gadgets, RespectsMaxInstrs) {
  os::Os vos;
  int pid = vos.spawn(testing::build_toysrv(), {apps::build_libc()});
  const os::Process* p = vos.process(pid);
  GadgetStats narrow = scan_gadgets(p->mem, 1);
  GadgetStats wide = scan_gadgets(p->mem, 8);
  EXPECT_LE(narrow.gadget_starts, wide.gadget_starts);
}

}  // namespace
}  // namespace dynacut::analysis
